//! The paper's most-requested future-work scenario: a cloud game stream
//! sharing a last-mile link with HTTP adaptive video ("e.g., Netflix").
//! DASH traffic is ON/OFF — bursts of segment fetches separated by idle
//! buffer-full periods — which stresses the game systems very differently
//! from iperf's constant pressure.
//!
//! ```sh
//! cargo run --release --example netflix_competition [stadia|geforce|luna]
//! ```

use gsrepro_gamestream::client::{StreamClient, StreamClientConfig};
use gsrepro_gamestream::server::StreamServer;
use gsrepro_gamestream::SystemKind;
use gsrepro_netsim::net::{AgentId, NetworkBuilder};
use gsrepro_netsim::queue::QueueSpec;
use gsrepro_netsim::{LinkSpec, Shaper};
use gsrepro_simcore::rng::stream_id;
use gsrepro_simcore::{BitRate, SimDuration, SimTime};
use gsrepro_tcp::{CcaKind, DashConfig, DashServer, TcpReceiver, TcpSenderConfig};

fn main() {
    let system = match std::env::args().nth(1).as_deref() {
        Some("geforce") => SystemKind::GeForce,
        Some("luna") => SystemKind::Luna,
        _ => SystemKind::Stadia,
    };

    // A 25 Mb/s "home connection" with a 2x-BDP queue.
    let capacity = BitRate::from_mbps(25);
    let rtt = SimDuration::from_micros(16_500);
    let queue = capacity.bdp(rtt).mul_f64(2.0);

    let mut b = NetworkBuilder::new(404);
    let servers = b.add_node("internet");
    let home = b.add_node("home");
    b.link(
        servers,
        home,
        LinkSpec {
            shaper: Shaper::rate(capacity),
            delay: SimDuration::from_micros(8_250),
            queue: QueueSpec::DropTail { limit: queue },
            jitter: SimDuration::ZERO,
            loss_prob: 0.0,
            dup_prob: 0.0,
        },
    );
    b.link(
        home,
        servers,
        LinkSpec::lan(SimDuration::from_micros(8_250)),
    );

    let media = b.flow(format!("{}-media", system.label()));
    let feedback = b.flow("feedback");
    let dash_data = b.flow("dash-video");
    let dash_ack = b.flow("dash-ack");

    let profile = system.profile();
    let gclient = b.add_agent(
        home,
        Box::new(StreamClient::new(StreamClientConfig::new(
            feedback,
            servers,
            AgentId(1),
        ))),
    );
    b.add_agent(
        servers,
        Box::new(StreamServer::new(
            media,
            home,
            gclient,
            profile.build_source(404, stream_id("frames")),
            profile.build_controller(),
        )),
    );

    // The DASH session starts at t = 60 s and binge-watches to the end.
    let dash_cfg = TcpSenderConfig::new(dash_data, home, AgentId(3), CcaKind::Cubic)
        .active_during(SimTime::from_secs(60), SimTime::from_secs(300));
    let dash = b.add_agent(
        servers,
        Box::new(DashServer::new(dash_cfg, DashConfig::default())),
    );
    b.add_agent(home, Box::new(TcpReceiver::new(dash_ack, servers, dash)));

    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(300));

    println!("{system} vs DASH video on a 25 Mb/s home link (video joins at 60 s)\n");
    println!("{:<22}{:>10}{:>10}", "window", "game Mb/s", "video Mb/s");
    for (label, a, z) in [
        ("0-60 s   game alone", 0u64, 60u64),
        ("60-120 s video joins", 60, 120),
        ("120-300 s steady    ", 120, 300),
    ] {
        let g = sim.goodput_mbps(media, SimTime::from_secs(a), SimTime::from_secs(z));
        let v = sim.goodput_mbps(dash_data, SimTime::from_secs(a), SimTime::from_secs(z));
        println!("{label:<22}{g:>10.1}{v:>10.1}");
    }

    let d: &DashServer = sim.net.agent(dash);
    println!("\nDASH session: {} segments fetched", d.segments_fetched());
    println!(
        "ladder picks (0 = 1.5 Mb/s ... 3 = 12 Mb/s): {:?}",
        d.level_history()
    );
    println!("player stalls: {}", d.stall_time());

    let c: &StreamClient = sim.net.agent(gclient);
    let fps = c.mean_fps(SimTime::from_secs(120), SimTime::from_secs(300));
    println!("\ngame frame rate while sharing: {fps:.1} f/s");
    println!(
        "game media loss overall: {:.2}%",
        sim.net.monitor().stats(media).loss_rate() * 100.0
    );
    println!("\nunlike iperf, DASH leaves idle gaps: the game keeps most of its bitrate");
    println!("and the video still reaches a sustainable rung — the coexistence the");
    println!("paper's future-work section asks about.");
}
