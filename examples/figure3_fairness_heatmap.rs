//! A slice of Figure 3 at one capacity: the normalized bitrate difference
//! `(game − tcp) / capacity` for every system × CCA × queue size, rendered
//! as an ASCII heat table.
//!
//! ```sh
//! cargo run --release --example figure3_fairness_heatmap [capacity_mbps]
//! ```

use gsrepro_testbed::config::{Condition, Timeline, CCAS, QUEUE_MULTS};
use gsrepro_testbed::report::{heat_glyph, TextTable};
use gsrepro_testbed::{metrics, run_many, SystemKind};

fn main() {
    let capacity: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);

    let timeline = Timeline::scaled(0.35);
    let mut conditions = Vec::new();
    for &cca in &CCAS {
        for &q in &QUEUE_MULTS {
            for &sys in &SystemKind::ALL {
                conditions
                    .push(Condition::new(sys, Some(cca), capacity, q).with_timeline(timeline));
            }
        }
    }

    eprintln!("running {} conditions × 2 iterations...", conditions.len());
    let results = run_many(&conditions, 2, gsrepro_testbed::runner::default_threads());

    println!("\nFigure 3 slice at {capacity} Mb/s — (game − tcp)/capacity");
    println!("warm/+ = game takes more than fair; cool/− = TCP takes more\n");
    for &cca in &CCAS {
        println!("== competing with {cca} ==");
        let mut t = TextTable::new(vec!["system \\ queue", "0.5x", "2x", "7x"]);
        for &sys in &SystemKind::ALL {
            let mut row = vec![sys.label().to_string()];
            for &q in &QUEUE_MULTS {
                let cr = results
                    .iter()
                    .find(|r| {
                        r.condition.system == sys
                            && r.condition.cca == Some(cca)
                            && (r.condition.queue_mult - q).abs() < 1e-9
                    })
                    .expect("condition present");
                let ratios: Vec<f64> = cr
                    .runs
                    .iter()
                    .map(|r| metrics::fairness(r, &cr.condition))
                    .collect();
                let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
                row.push(format!("{mean:+.2} {}", heat_glyph(mean)));
            }
            t.row(row);
        }
        println!("{}", t.render());
    }
    println!("paper expectations: vs Cubic — Stadia warm, Luna ≈neutral, GeForce cool;");
    println!("                    vs BBR   — Stadia ≈neutral, Luna cool, GeForce coolest.");
}
