//! Quickstart: one run of one condition — Stadia competing with a TCP
//! Cubic flow at the paper's "normal" 25 Mb/s constraint with a 2×-BDP
//! router queue — on a shortened timeline, printing the key observables.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gsrepro_testbed::config::{Condition, Timeline};
use gsrepro_testbed::{metrics, run_condition, CcaKind, SystemKind};

fn main() {
    // A 1/4-length timeline keeps this example under a few seconds while
    // preserving the arrive→compete→depart structure (competitor active
    // for the middle third).
    let timeline = Timeline::scaled(0.25);
    let cond =
        Condition::new(SystemKind::Stadia, Some(CcaKind::Cubic), 25, 2.0).with_timeline(timeline);

    println!("condition: {}", cond.label());
    println!(
        "bottleneck: {} with a {}-byte drop-tail queue ({}x BDP)",
        cond.capacity,
        cond.queue_bytes().as_u64(),
        cond.queue_mult
    );

    let run = run_condition(&cond, 0);

    let tl = &cond.timeline;
    let before = run.game_window(tl.original_window.0, tl.original_window.1);
    let during = run.game_window(tl.fairness_window.0, tl.fairness_window.1);
    let tcp = run.iperf_window(tl.fairness_window.0, tl.fairness_window.1);
    println!(
        "\ngame bitrate before competitor : {:6.1} Mb/s",
        before.mean()
    );
    println!(
        "game bitrate during competitor : {:6.1} Mb/s",
        during.mean()
    );
    println!("tcp  bitrate during competitor : {:6.1} Mb/s", tcp.mean());
    println!(
        "fair share                     : {:6.1} Mb/s",
        cond.fair_share_mbps()
    );

    let fairness = metrics::fairness(&run, &cond);
    let resp = metrics::response_time(&run, tl);
    let rec = metrics::recovery_time(&run, tl);
    println!("\nfairness  (game−tcp)/capacity  : {fairness:+.2}");
    println!(
        "response time                  : {:.1} s{}",
        resp.secs,
        if resp.never { " (never settled)" } else { "" }
    );
    println!(
        "recovery time                  : {:.1} s{}",
        rec.secs,
        if rec.never { " (never recovered)" } else { "" }
    );

    let rtt_before = run.rtt_window(tl.original_window.0, tl.original_window.1);
    let rtt_during = run.rtt_window(tl.iperf_start, tl.iperf_stop);
    println!(
        "\nping RTT before competitor     : {:6.1} ms",
        rtt_before.mean()
    );
    println!(
        "ping RTT during competitor     : {:6.1} ms",
        rtt_during.mean()
    );

    let fps = run.fps_window(tl.iperf_start, tl.iperf_stop);
    println!("frame rate during competitor   : {:6.1} f/s", fps.mean());
    println!(
        "media loss during competitor   : {:6.2} %",
        run.game_loss_window(tl.iperf_start, tl.iperf_stop) * 100.0
    );
}
