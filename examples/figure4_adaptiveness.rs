//! A miniature of Figure 4: response time, recovery time, adaptiveness,
//! and fairness for all three systems at one condition, against both TCP
//! Cubic and TCP BBR.
//!
//! ```sh
//! cargo run --release --example figure4_adaptiveness
//! ```

use gsrepro_testbed::config::{Condition, Timeline, CCAS};
use gsrepro_testbed::report::TextTable;
use gsrepro_testbed::{metrics, run_many, SystemKind};

fn main() {
    let timeline = Timeline::scaled(0.4);
    let mut conditions = Vec::new();
    for &cca in &CCAS {
        for &sys in &SystemKind::ALL {
            conditions.push(Condition::new(sys, Some(cca), 25, 2.0).with_timeline(timeline));
        }
    }

    eprintln!("running {} conditions × 2 iterations...", conditions.len());
    let results = run_many(&conditions, 2, gsrepro_testbed::runner::default_threads());

    for &cca in &CCAS {
        println!("\n== 25 Mb/s, 2x BDP queue, vs {cca} ==");
        // Gather raw response/recovery, then normalize per panel.
        let mut rows: Vec<(SystemKind, f64, f64, f64)> = Vec::new();
        for &sys in &SystemKind::ALL {
            let cr = results
                .iter()
                .find(|r| r.condition.system == sys && r.condition.cca == Some(cca))
                .expect("condition present");
            let n = cr.runs.len() as f64;
            let c: f64 = cr
                .runs
                .iter()
                .map(|r| metrics::response_time(r, &cr.condition.timeline).secs)
                .sum::<f64>()
                / n;
            let e: f64 = cr
                .runs
                .iter()
                .map(|r| metrics::recovery_time(r, &cr.condition.timeline).secs)
                .sum::<f64>()
                / n;
            let fair: f64 = cr
                .runs
                .iter()
                .map(|r| metrics::fairness(r, &cr.condition))
                .sum::<f64>()
                / n;
            rows.push((sys, c, e, fair));
        }
        let c_max = rows.iter().map(|r| r.1).fold(0.0, f64::max);
        let e_max = rows.iter().map(|r| r.2).fold(0.0, f64::max);

        let mut t = TextTable::new(vec![
            "system",
            "response C (s)",
            "recovery E (s)",
            "adaptiveness A",
            "fairness",
        ]);
        for (sys, c, e, fair) in rows {
            let a = metrics::adaptiveness(c, c_max, e, e_max);
            t.row(vec![
                sys.label().to_string(),
                format!("{c:.1}"),
                format!("{e:.1}"),
                format!("{a:.2}"),
                format!("{fair:+.2}"),
            ]);
        }
        println!("{}", t.render());
    }
    println!("paper expectations: response is faster than recovery; Stadia most adaptive;");
    println!("GeForce always left of fair (negative); Luna fair vs Cubic, unfair vs BBR.");
}
