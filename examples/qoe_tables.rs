//! Miniature Tables 3-5: ping RTT (solo and competing) and displayed frame
//! rate for all systems at one capacity, all queue sizes.
//!
//! ```sh
//! cargo run --release --example qoe_tables [capacity_mbps]
//! ```

use gsrepro_testbed::config::{Condition, Timeline, CCAS, QUEUE_MULTS};
use gsrepro_testbed::report::{mean_sd, TextTable};
use gsrepro_testbed::{run_many, SystemKind};

fn main() {
    let capacity: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let timeline = Timeline::scaled(0.35);

    let mut conditions = Vec::new();
    for &q in &QUEUE_MULTS {
        for &sys in &SystemKind::ALL {
            conditions.push(Condition::new(sys, None, capacity, q).with_timeline(timeline));
            for &cca in &CCAS {
                conditions
                    .push(Condition::new(sys, Some(cca), capacity, q).with_timeline(timeline));
            }
        }
    }

    eprintln!("running {} conditions × 2 iterations...", conditions.len());
    let results = run_many(&conditions, 2, gsrepro_testbed::runner::default_threads());

    println!("\nRTT (ms) at {capacity} Mb/s, measured while the competitor runs (or would run)");
    let mut t = TextTable::new(vec!["queue", "system", "solo", "vs cubic", "vs bbr"]);
    for &q in &QUEUE_MULTS {
        for &sys in &SystemKind::ALL {
            let mut cells = vec![format!("{q}x"), sys.label().to_string()];
            for cca in [
                None,
                Some(gsrepro_testbed::CcaKind::Cubic),
                Some(gsrepro_testbed::CcaKind::Bbr),
            ] {
                let cr = results
                    .iter()
                    .find(|r| {
                        r.condition.system == sys
                            && r.condition.cca == cca
                            && (r.condition.queue_mult - q).abs() < 1e-9
                    })
                    .expect("condition present");
                let tl = &cr.condition.timeline;
                let s = cr.rtt_pooled(tl.iperf_start, tl.iperf_stop);
                cells.push(mean_sd(s.mean(), s.stddev()));
            }
            t.row(cells);
        }
    }
    println!("{}", t.render());

    println!("frame rate (f/s) during the competitor window");
    let mut t = TextTable::new(vec!["queue", "system", "vs cubic", "vs bbr"]);
    for &q in &QUEUE_MULTS {
        for &sys in &SystemKind::ALL {
            let mut cells = vec![format!("{q}x"), sys.label().to_string()];
            for cca in [
                gsrepro_testbed::CcaKind::Cubic,
                gsrepro_testbed::CcaKind::Bbr,
            ] {
                let cr = results
                    .iter()
                    .find(|r| {
                        r.condition.system == sys
                            && r.condition.cca == Some(cca)
                            && (r.condition.queue_mult - q).abs() < 1e-9
                    })
                    .expect("condition present");
                let tl = &cr.condition.timeline;
                let s = cr.fps_pooled(tl.iperf_start, tl.iperf_stop);
                cells.push(mean_sd(s.mean(), s.stddev()));
            }
            t.row(cells);
        }
    }
    println!("{}", t.render());
    println!("paper expectations: solo RTT ≈ 16-20 ms; vs Cubic RTT pinned at the queue");
    println!("limit (≈110 ms at 7x); vs BBR at 7x about half of Cubic's. Frame rates stay");
    println!("50+ vs Cubic but degrade vs BBR at small queues (Stadia/Luna most).");
}
