//! Reproduces the related-work methodology of Carrascosa & Bellalta
//! ("Cloud-gaming: Analysis of Google Stadia traffic", 2022): limit a live
//! game stream's link in a staircase of capacities and watch the system
//! adapt its bitrate — and recover when the cap lifts.
//!
//! ```sh
//! cargo run --release --example capacity_staircase [stadia|geforce|luna]
//! ```

use gsrepro_gamestream::client::{StreamClient, StreamClientConfig};
use gsrepro_gamestream::server::StreamServer;
use gsrepro_gamestream::SystemKind;
use gsrepro_netsim::net::{AgentId, NetworkBuilder};
use gsrepro_netsim::queue::QueueSpec;
use gsrepro_netsim::{LinkSpec, Shaper};
use gsrepro_simcore::rng::stream_id;
use gsrepro_simcore::{BitRate, SimDuration, SimTime};

fn main() {
    let system = match std::env::args().nth(1).as_deref() {
        Some("geforce") => SystemKind::GeForce,
        Some("luna") => SystemKind::Luna,
        _ => SystemKind::Stadia,
    };

    let rtt = SimDuration::from_micros(16_500);
    // Start wide open; the staircase narrows and reopens.
    let stair: &[(u64, u64)] = &[
        // (time s, capacity Mb/s)
        (30, 20),
        (60, 12),
        (90, 6),
        (120, 12),
        (150, 20),
        (180, 40),
    ];

    let mut b = NetworkBuilder::new(31);
    let server_node = b.add_node("server");
    let client_node = b.add_node("client");
    let bottleneck = b.link(
        server_node,
        client_node,
        LinkSpec {
            shaper: Shaper::rate(BitRate::from_mbps(40)),
            delay: SimDuration::from_micros(8_250),
            // Fixed 2x-BDP-at-25 queue, as a home router would have.
            queue: QueueSpec::DropTail {
                limit: BitRate::from_mbps(25).bdp(rtt).mul_f64(2.0),
            },
            jitter: SimDuration::ZERO,
            loss_prob: 0.0,
            dup_prob: 0.0,
        },
    );
    b.link(
        client_node,
        server_node,
        LinkSpec::lan(SimDuration::from_micros(8_250)),
    );

    let media = b.flow("media");
    let feedback = b.flow("feedback");
    let profile = system.profile();
    let client = b.add_agent(
        client_node,
        Box::new(StreamClient::new(StreamClientConfig::new(
            feedback,
            server_node,
            AgentId(1),
        ))),
    );
    b.add_agent(
        server_node,
        Box::new(StreamServer::with_fps_policy(
            media,
            client_node,
            client,
            profile.build_source(31, stream_id("frames")),
            profile.build_controller(),
            profile.fps_policy,
        )),
    );

    let mut sim = b.build();
    for &(at, cap) in stair {
        sim.schedule_link_rate(
            bottleneck,
            Some(BitRate::from_mbps(cap)),
            SimTime::from_secs(at),
        );
    }
    sim.run_until(SimTime::from_secs(210));

    println!("{system} under a capacity staircase (Carrascosa & Bellalta methodology)\n");
    println!(
        "{:<14}{:>10}{:>12}{:>10}{:>9}",
        "window", "cap Mb/s", "game Mb/s", "fps", "loss %"
    );
    let st = sim.net.monitor().stats(media);
    let c: &StreamClient = sim.net.agent(client);
    let mut caps = vec![40u64];
    caps.extend(stair.iter().map(|&(_, c)| c));
    let mut bounds: Vec<u64> = vec![0];
    bounds.extend(stair.iter().map(|&(t, _)| t));
    bounds.push(210);
    for (i, pair) in bounds.windows(2).enumerate() {
        let (a, z) = (pair[0], pair[1]);
        let gp = st.mean_goodput_mbps(SimTime::from_secs(a + 5), SimTime::from_secs(z));
        let fps = c.mean_fps(SimTime::from_secs(a + 5), SimTime::from_secs(z));
        let loss = st.loss_rate_over(SimTime::from_secs(a + 5), SimTime::from_secs(z)) * 100.0;
        println!(
            "{:<14}{:>10}{:>12.1}{:>10.1}{:>9.2}",
            format!("{a}-{z} s"),
            caps[i],
            gp,
            fps,
            loss
        );
    }
    println!("\nexpectation (per Carrascosa & Bellalta): the stream tracks each capacity");
    println!("step downward within seconds, and recovers its bitrate when the cap lifts.");
}
