//! The last of the paper's future-work competitor mixes: live video
//! conferencing. A conferencing flow is itself a GCC-controlled real-time
//! stream (WebRTC), just with a much lower ceiling (~3.5 Mb/s) — so this
//! example pits two delay-sensitive real-time flows against each other,
//! rather than real-time vs bulk.
//!
//! ```sh
//! cargo run --release --example videoconference_competition [stadia|geforce|luna]
//! ```

use gsrepro_gamestream::client::{StreamClient, StreamClientConfig};
use gsrepro_gamestream::controller::gcc::{GccConfig, GccController};
use gsrepro_gamestream::frame::{FrameSource, FrameSourceConfig};
use gsrepro_gamestream::server::StreamServer;
use gsrepro_gamestream::SystemKind;
use gsrepro_netsim::net::{AgentId, NetworkBuilder};
use gsrepro_netsim::queue::QueueSpec;
use gsrepro_netsim::{LinkSpec, Shaper};
use gsrepro_simcore::rng::stream_id;
use gsrepro_simcore::{BitRate, SimDuration, SimTime};

fn main() {
    let system = match std::env::args().nth(1).as_deref() {
        Some("geforce") => SystemKind::GeForce,
        Some("luna") => SystemKind::Luna,
        _ => SystemKind::Stadia,
    };

    // A tighter home link: 15 Mb/s, 2x BDP.
    let capacity = BitRate::from_mbps(15);
    let rtt = SimDuration::from_micros(16_500);
    let queue = capacity.bdp(rtt).mul_f64(2.0);

    let mut b = NetworkBuilder::new(505);
    let servers = b.add_node("internet");
    let home = b.add_node("home");
    b.link(
        servers,
        home,
        LinkSpec {
            shaper: Shaper::rate(capacity),
            delay: SimDuration::from_micros(8_250),
            queue: QueueSpec::DropTail { limit: queue },
            jitter: SimDuration::ZERO,
            loss_prob: 0.0,
            dup_prob: 0.0,
        },
    );
    b.link(
        home,
        servers,
        LinkSpec::lan(SimDuration::from_micros(8_250)),
    );

    let game_flow = b.flow(format!("{}-media", system.label()));
    let game_fb = b.flow("game-feedback");
    let conf_flow = b.flow("conference");
    let conf_fb = b.flow("conf-feedback");

    // Game stream (agents 0/1).
    let profile = system.profile();
    let gclient = b.add_agent(
        home,
        Box::new(StreamClient::new(StreamClientConfig::new(
            game_fb,
            servers,
            AgentId(1),
        ))),
    );
    b.add_agent(
        servers,
        Box::new(StreamServer::new(
            game_flow,
            home,
            gclient,
            profile.build_source(505, stream_id("frames")),
            profile.build_controller(),
        )),
    );

    // Conference stream (agents 2/3): GCC at a 3.5 Mb/s ceiling, 30 f/s
    // camera, running alongside for the whole session.
    let cclient = b.add_agent(
        home,
        Box::new(StreamClient::new(StreamClientConfig::new(
            conf_fb,
            servers,
            AgentId(3),
        ))),
    );
    let conf_cfg = GccConfig {
        min_rate: BitRate::from_kbps(300),
        max_rate: BitRate::from_mbps_f64(3.5),
        ..GccConfig::default()
    };
    let conf_frames = FrameSourceConfig {
        fps: 30,
        ..FrameSourceConfig::default()
    };
    b.add_agent(
        servers,
        Box::new(StreamServer::new(
            conf_flow,
            home,
            cclient,
            FrameSource::new(conf_frames, 505, stream_id("conf-frames")),
            Box::new(GccController::new(conf_cfg)),
        )),
    );

    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(180));

    println!("{system} vs a 3.5 Mb/s video conference on a 15 Mb/s link\n");
    println!("{:<18}{:>11}{:>11}", "window", "game Mb/s", "conf Mb/s");
    for (label, a, z) in [
        ("0-60 s", 0u64, 60u64),
        ("60-120 s", 60, 120),
        ("120-180 s", 120, 180),
    ] {
        let g = sim.goodput_mbps(game_flow, SimTime::from_secs(a), SimTime::from_secs(z));
        let c = sim.goodput_mbps(conf_flow, SimTime::from_secs(a), SimTime::from_secs(z));
        println!("{label:<18}{g:>11.1}{c:>11.1}");
    }
    let gc: &StreamClient = sim.net.agent(gclient);
    let cc: &StreamClient = sim.net.agent(cclient);
    println!(
        "\ngame fps (steady) {:.1}, conference fps {:.1}",
        gc.mean_fps(SimTime::from_secs(120), SimTime::from_secs(180)),
        cc.mean_fps(SimTime::from_secs(120), SimTime::from_secs(180)),
    );
    println!("\ntwo real-time flows coexist far more gently than game-vs-iperf: the");
    println!("conference takes only its ceiling and the game cedes just that much.");
}
