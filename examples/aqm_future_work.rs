//! The paper's future-work question: what if the bottleneck ran Active
//! Queue Management instead of drop-tail? This example repeats the
//! bloated-queue (7x BDP) condition — where drop-tail hurts most — under
//! drop-tail, CoDel, and FQ-CoDel, and compares RTT and fairness.
//!
//! ```sh
//! cargo run --release --example aqm_future_work
//! ```

use gsrepro_testbed::config::{Aqm, Condition, Timeline};
use gsrepro_testbed::report::{mean_sd, TextTable};
use gsrepro_testbed::{metrics, run_many, CcaKind, SystemKind};

fn main() {
    let timeline = Timeline::scaled(0.35);
    let aqms = [Aqm::DropTail, Aqm::CoDel, Aqm::FqCoDel];

    let mut conditions = Vec::new();
    for &aqm in &aqms {
        for &sys in &SystemKind::ALL {
            conditions.push(
                Condition::new(sys, Some(CcaKind::Cubic), 25, 7.0)
                    .with_aqm(aqm)
                    .with_timeline(timeline),
            );
        }
    }

    eprintln!("running {} conditions × 2 iterations...", conditions.len());
    let results = run_many(&conditions, 2, gsrepro_testbed::runner::default_threads());

    println!("\nGame system vs TCP Cubic, 25 Mb/s, 7x-BDP (bloated) queue");
    let mut t = TextTable::new(vec![
        "qdisc",
        "system",
        "RTT during competition (ms)",
        "fairness (game-tcp)/cap",
        "frame rate (f/s)",
    ]);
    for &aqm in &aqms {
        for &sys in &SystemKind::ALL {
            let cr = results
                .iter()
                .find(|r| r.condition.aqm == aqm && r.condition.system == sys)
                .expect("condition present");
            let tl = &cr.condition.timeline;
            let rtt = cr.rtt_pooled(tl.iperf_start, tl.iperf_stop);
            let fair: f64 = cr
                .runs
                .iter()
                .map(|r| metrics::fairness(r, &cr.condition))
                .sum::<f64>()
                / cr.runs.len() as f64;
            let fps = cr.fps_pooled(tl.iperf_start, tl.iperf_stop);
            t.row(vec![
                aqm.label().to_string(),
                sys.label().to_string(),
                mean_sd(rtt.mean(), rtt.stddev()),
                format!("{fair:+.2}"),
                format!("{:.1}", fps.mean()),
            ]);
        }
    }
    println!("{}", t.render());
    println!("expectation: CoDel/FQ-CoDel cut the bloated-queue RTT from ~110 ms toward");
    println!("~20-30 ms, and FQ-CoDel's per-flow scheduling pushes fairness toward 0.");
}
