//! Pure-TCP dynamics on the testbed bottleneck — the related-work
//! behaviours the game-stream results build on (paper §2.2):
//!
//! 1. two Cubic flows share fairly (intra-protocol balance),
//! 2. two BBR flows share fairly,
//! 3. Cubic vs BBR is imbalanced and the imbalance depends on queue size
//!    (Miyazawa et al.; Claypool et al.; Ware et al.),
//! 4. Cubic fills large queues (RTT → queue limit) while BBR's 2×BDP
//!    in-flight cap keeps RTT near 1 BDP of queueing.
//!
//! ```sh
//! cargo run --release --example tcp_dynamics
//! ```

use gsrepro_netsim::apps::{EchoTo, PingAgent};
use gsrepro_netsim::net::{AgentId, NetworkBuilder};
use gsrepro_netsim::queue::QueueSpec;
use gsrepro_netsim::{LinkSpec, Shaper};
use gsrepro_simcore::{BitRate, SimDuration, SimTime};
use gsrepro_tcp::{CcaKind, TcpReceiver, TcpSender, TcpSenderConfig};

struct Outcome {
    g1: f64,
    g2: f64,
    rtt: f64,
}

fn duel(cca1: CcaKind, cca2: CcaKind, queue_mult: f64, seed: u64) -> Outcome {
    let capacity = BitRate::from_mbps(25);
    let rtt = SimDuration::from_micros(16_500);
    let queue = capacity.bdp(rtt).mul_f64(queue_mult);

    let mut b = NetworkBuilder::new(seed);
    let server = b.add_node("server");
    let client = b.add_node("client");
    b.link(
        server,
        client,
        LinkSpec {
            shaper: Shaper::rate(capacity),
            delay: SimDuration::from_micros(8_250),
            queue: QueueSpec::DropTail { limit: queue },
            jitter: SimDuration::ZERO,
            loss_prob: 0.0,
            dup_prob: 0.0,
        },
    );
    b.link(
        client,
        server,
        LinkSpec::lan(SimDuration::from_micros(8_250)),
    );

    let mut flows = vec![];
    for (i, cca) in [cca1, cca2].into_iter().enumerate() {
        let data = b.flow(format!("f{i}"));
        let acks = b.flow(format!("a{i}"));
        let recv_id = AgentId(i as u32 * 2 + 1);
        let s = b.add_agent(
            server,
            Box::new(TcpSender::new(TcpSenderConfig::new(
                data, client, recv_id, cca,
            ))),
        );
        b.add_agent(client, Box::new(TcpReceiver::new(acks, server, s)));
        flows.push(data);
    }
    // Ping alongside, as the testbed does.
    let ping_flow = b.flow("ping");
    let ping = b.add_agent(
        client,
        Box::new(PingAgent::new(
            ping_flow,
            server,
            AgentId(5),
            SimDuration::from_millis(200),
        )),
    );
    b.add_agent(server, Box::new(EchoTo::new(ping_flow, ping)));

    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(60));
    let w = |f| sim.goodput_mbps(f, SimTime::from_secs(20), SimTime::from_secs(60));
    let p: &PingAgent = sim.net.agent(ping);
    Outcome {
        g1: w(flows[0]),
        g2: w(flows[1]),
        rtt: p.rtt_samples().mean(),
    }
}

fn main() {
    println!("25 Mb/s bottleneck, 16.5 ms base RTT, 60 s runs, throughput over [20,60) s\n");
    println!(
        "{:<22}{:>8}{:>8}{:>10}",
        "pairing", "flow1", "flow2", "RTT ms"
    );
    for (label, c1, c2, q) in [
        ("cubic vs cubic @2x", CcaKind::Cubic, CcaKind::Cubic, 2.0),
        ("bbr   vs bbr   @2x", CcaKind::Bbr, CcaKind::Bbr, 2.0),
        ("cubic vs bbr   @0.5x", CcaKind::Cubic, CcaKind::Bbr, 0.5),
        ("cubic vs bbr   @2x", CcaKind::Cubic, CcaKind::Bbr, 2.0),
        ("cubic vs bbr   @7x", CcaKind::Cubic, CcaKind::Bbr, 7.0),
        ("cubic solo     @7x", CcaKind::Cubic, CcaKind::Cubic, 7.0),
    ] {
        let o = duel(c1, c2, q, 99);
        println!("{:<22}{:>8.1}{:>8.1}{:>10.1}", label, o.g1, o.g2, o.rtt);
    }
    println!("\nexpectations: intra-protocol pairs split ~12.5/12.5; cubic-vs-bbr is");
    println!("imbalanced with the winner depending on queue size (BBR wins small queues,");
    println!("Cubic wins bloated ones); RTT at 7x is queue-limited when Cubic is present.");
}
