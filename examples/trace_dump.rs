//! Packet-level tracing — the simulator's `tcpdump`. Runs a few seconds of
//! a Stadia-vs-Cubic contest with tracing enabled and prints the last
//! packet events around the bottleneck, plus a per-flow breakdown.
//!
//! ```sh
//! cargo run --release --example trace_dump
//! ```

use gsrepro_gamestream::client::{StreamClient, StreamClientConfig};
use gsrepro_gamestream::server::StreamServer;
use gsrepro_gamestream::SystemKind;
use gsrepro_netsim::net::{AgentId, NetworkBuilder};
use gsrepro_netsim::queue::QueueSpec;
use gsrepro_netsim::{LinkSpec, Shaper, TraceKind};
use gsrepro_simcore::rng::stream_id;
use gsrepro_simcore::{BitRate, SimDuration, SimTime};
use gsrepro_tcp::{CcaKind, TcpReceiver, TcpSender, TcpSenderConfig};

fn main() {
    let capacity = BitRate::from_mbps(25);
    let queue = capacity.bdp(SimDuration::from_micros(16_500)).mul_f64(0.5);

    let mut b = NetworkBuilder::new(7).trace_capacity(50_000);
    let servers = b.add_node("servers");
    let client = b.add_node("client");
    b.link(
        servers,
        client,
        LinkSpec {
            shaper: Shaper::rate(capacity),
            delay: SimDuration::from_micros(8_250),
            queue: QueueSpec::DropTail { limit: queue },
            jitter: SimDuration::ZERO,
            loss_prob: 0.0,
            dup_prob: 0.0,
        },
    );
    b.link(
        client,
        servers,
        LinkSpec::lan(SimDuration::from_micros(8_250)),
    );

    let media = b.flow("stadia-media");
    let feedback = b.flow("feedback");
    let tcp_data = b.flow("cubic");
    let tcp_ack = b.flow("cubic-ack");

    let profile = SystemKind::Stadia.profile();
    let gclient = b.add_agent(
        client,
        Box::new(StreamClient::new(StreamClientConfig::new(
            feedback,
            servers,
            AgentId(1),
        ))),
    );
    b.add_agent(
        servers,
        Box::new(StreamServer::new(
            media,
            client,
            gclient,
            profile.build_source(7, stream_id("frames")),
            profile.build_controller(),
        )),
    );
    let recv_id = AgentId(3);
    let sender = b.add_agent(
        servers,
        Box::new(TcpSender::new(
            TcpSenderConfig::new(tcp_data, client, recv_id, CcaKind::Cubic)
                .active_during(SimTime::from_secs(2), SimTime::from_secs(10)),
        )),
    );
    b.add_agent(client, Box::new(TcpReceiver::new(tcp_ack, servers, sender)));

    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(10));

    let trace = sim.net.trace().expect("tracing enabled");
    println!(
        "captured {} events (retaining last {})",
        trace.total_recorded(),
        trace.len()
    );

    println!("\nper-flow event counts:");
    for (flow, label) in [
        (media, "stadia-media"),
        (tcp_data, "cubic"),
        (feedback, "feedback"),
    ] {
        let evs = trace.for_flow(flow);
        let drops = evs
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::QueueDrop | TraceKind::LinkDrop))
            .count();
        println!(
            "  {label:<14} {:>6} events, {:>4} drops in window",
            evs.len(),
            drops
        );
    }

    println!("\nlast 20 packet events:");
    let total = trace.len();
    for e in trace.events().skip(total.saturating_sub(20)) {
        println!("  {e}");
    }

    println!("\nfirst CSV lines:");
    for line in trace.to_csv().lines().take(5) {
        println!("  {line}");
    }
}
