//! The paper's other future-work scenario: a game stream competing with a
//! *mixture* of traffic rather than a single bulk download — here, one TCP
//! Cubic flow plus one TCP BBR flow plus an on/off CBR stream standing in
//! for ABR video. This example composes the topology directly from the
//! library crates, showing the public API beneath the testbed harness.
//!
//! ```sh
//! cargo run --release --example mixed_traffic
//! ```

use gsrepro_gamestream::client::{StreamClient, StreamClientConfig};
use gsrepro_gamestream::server::StreamServer;
use gsrepro_gamestream::SystemKind;
use gsrepro_netsim::apps::{CbrSource, SinkAgent};
use gsrepro_netsim::net::{AgentId, NetworkBuilder};
use gsrepro_netsim::queue::QueueSpec;
use gsrepro_netsim::{LinkSpec, Shaper};
use gsrepro_simcore::rng::stream_id;
use gsrepro_simcore::{BitRate, SimDuration, SimTime};
use gsrepro_tcp::{CcaKind, TcpReceiver, TcpSender, TcpSenderConfig};

fn main() {
    let capacity = BitRate::from_mbps(35);
    let rtt = SimDuration::from_micros(16_500);
    let queue = capacity.bdp(rtt).mul_f64(2.0);

    let mut b = NetworkBuilder::new(2024);
    let servers = b.add_node("servers");
    let router = b.add_node("router");
    let client = b.add_node("client");
    b.duplex(servers, router, LinkSpec::lan(SimDuration::from_millis(4)));
    b.link(
        router,
        client,
        LinkSpec {
            shaper: Shaper::rate(capacity),
            delay: SimDuration::from_micros(4_250),
            queue: QueueSpec::DropTail { limit: queue },
            jitter: SimDuration::ZERO,
            loss_prob: 0.0,
            dup_prob: 0.0,
        },
    );
    b.link(
        client,
        router,
        LinkSpec::lan(SimDuration::from_micros(4_250)),
    );

    let game = b.flow("luna-media");
    let feedback = b.flow("feedback");
    let cubic_f = b.flow("cubic");
    let cubic_ack = b.flow("cubic-ack");
    let bbr_f = b.flow("bbr");
    let bbr_ack = b.flow("bbr-ack");
    let video = b.flow("abr-video");

    // Agent 0/1: game client/server (Luna profile).
    let profile = SystemKind::Luna.profile();
    let gclient = b.add_agent(
        client,
        Box::new(StreamClient::new(StreamClientConfig::new(
            feedback,
            servers,
            AgentId(1),
        ))),
    );
    b.add_agent(
        servers,
        Box::new(StreamServer::new(
            game,
            client,
            gclient,
            profile.build_source(2024, stream_id("frames")),
            profile.build_controller(),
        )),
    );

    // Two TCP flows arriving at different times.
    let cubic_recv = AgentId(3);
    let s1 = b.add_agent(
        servers,
        Box::new(TcpSender::new(
            TcpSenderConfig::new(cubic_f, client, cubic_recv, CcaKind::Cubic)
                .active_during(SimTime::from_secs(30), SimTime::from_secs(150)),
        )),
    );
    b.add_agent(client, Box::new(TcpReceiver::new(cubic_ack, servers, s1)));
    let bbr_recv = AgentId(5);
    let s2 = b.add_agent(
        servers,
        Box::new(TcpSender::new(
            TcpSenderConfig::new(bbr_f, client, bbr_recv, CcaKind::Bbr)
                .active_during(SimTime::from_secs(60), SimTime::from_secs(120)),
        )),
    );
    b.add_agent(client, Box::new(TcpReceiver::new(bbr_ack, servers, s2)));

    // ABR-video-ish cross traffic: 6 Mb/s on/off bursts from 90 s.
    let vsink = b.add_agent(client, Box::new(SinkAgent::new()));
    b.add_agent(
        servers,
        Box::new(
            CbrSource::new(
                video,
                client,
                vsink,
                BitRate::from_mbps(6),
                gsrepro_simcore::Bytes(1200),
            )
            .active_during(SimTime::from_secs(90), SimTime::from_secs(180)),
        ),
    );

    let mut sim = b.build();
    let end = SimTime::from_secs(180);
    sim.run_until(end);

    println!("Luna vs mixed traffic on a 35 Mb/s bottleneck (2x BDP queue)\n");
    println!("phase                          game   cubic  bbr    video  (Mb/s)");
    let phases = [
        ("0-30 s   game alone        ", 0, 30),
        ("30-60 s  + cubic           ", 30, 60),
        ("60-90 s  + cubic + bbr     ", 60, 90),
        ("90-120 s + all three       ", 90, 120),
        ("120-150 s cubic + video    ", 120, 150),
        ("150-180 s video only       ", 150, 180),
    ];
    for (label, a, z) in phases {
        let w = |f| {
            sim.net
                .monitor()
                .stats(f)
                .mean_goodput_mbps(SimTime::from_secs(a), SimTime::from_secs(z))
        };
        println!(
            "{label}  {:5.1}  {:5.1}  {:5.1}  {:5.1}",
            w(game),
            w(cubic_f),
            w(bbr_f),
            w(video)
        );
    }
    let st = sim.net.monitor().stats(game);
    println!(
        "\ngame media loss over the run: {:.2}%",
        st.loss_rate() * 100.0
    );
}
