//! Figure 2, one panel, as an ASCII time-series: the game system's bitrate
//! before, during, and after a competing TCP flow, one row per queue size.
//!
//! ```sh
//! cargo run --release --example figure2_bitrate_timeseries [stadia|geforce|luna] [cubic|bbr]
//! ```

use gsrepro_testbed::config::{Condition, Timeline, QUEUE_MULTS};
use gsrepro_testbed::{run_many, CcaKind, SystemKind};

fn sparkline(series: &[f64], max: f64) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    series
        .iter()
        .map(|&v| {
            let idx = ((v / max).clamp(0.0, 1.0) * 7.0).round() as usize;
            GLYPHS[idx]
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let system = match args.get(1).map(|s| s.as_str()) {
        Some("geforce") => SystemKind::GeForce,
        Some("luna") => SystemKind::Luna,
        _ => SystemKind::Stadia,
    };
    let cca = match args.get(2).map(|s| s.as_str()) {
        Some("bbr") => CcaKind::Bbr,
        _ => CcaKind::Cubic,
    };

    // Half-length timeline: competitor active for the middle third.
    let timeline = Timeline::scaled(0.5);
    let conditions: Vec<Condition> = QUEUE_MULTS
        .iter()
        .map(|&q| Condition::new(system, Some(cca), 25, q).with_timeline(timeline))
        .collect();

    eprintln!("running 3 conditions × 3 iterations (a minute or two)...");
    let results = run_many(&conditions, 3, gsrepro_testbed::runner::default_threads());

    println!(
        "\n[{} vs {}] 25 Mb/s; competitor active {:.0}-{:.0} s; fair share = 12.5 Mb/s",
        system,
        cca,
        timeline.iperf_start.as_secs_f64(),
        timeline.iperf_stop.as_secs_f64()
    );
    for cr in &results {
        let series = cr.game_series_ci();
        // Downsample to ~100 columns.
        let step = (series.len() / 100).max(1);
        let vals: Vec<f64> = series
            .chunks(step)
            .map(|c| c.iter().map(|&(_, m, _)| m).sum::<f64>() / c.len() as f64)
            .collect();
        println!(
            "\nqueue {:>4}x BDP  0..{:.0}s, y-max 25 Mb/s",
            cr.condition.queue_mult,
            timeline.end.as_secs_f64()
        );
        println!("  {}", sparkline(&vals, 25.0));
        let tl = &cr.condition.timeline;
        let before = cr.game_means(tl.original_window.0, tl.original_window.1);
        let during = cr.game_means(tl.fairness_window.0, tl.fairness_window.1);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "  before {:.1} Mb/s   during {:.1} Mb/s   tcp during {:.1} Mb/s",
            mean(&before),
            mean(&during),
            mean(&cr.iperf_means(tl.fairness_window.0, tl.fairness_window.1)),
        );
    }
}
