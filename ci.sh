#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, tests, and a smoke-scale
# end-to-end reproduction. Run from the repo root; exits non-zero on the
# first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test (workspace)"
cargo test -q --workspace

echo "== CCA conformance kit (golden step-response fixtures)"
cargo run --release -p gsrepro-bench --bin conformance

echo "== smoke reproduction"
cargo run --release -p gsrepro-bench --bin full_reproduction -- --smoke

echo "== traced smoke run + trace schema validation"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run --release -p gsrepro-bench --bin figure2 -- --smoke --iters 1 --trace "$trace_dir"
cargo run --release -p gsrepro-bench --bin validate_trace -- "$trace_dir"

echo "== dynamic-paths smoke + scenario trace validation"
scenario_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$scenario_dir"' EXIT
cargo run --release -p gsrepro-bench --bin dynamic_paths -- --smoke --iters 1 --trace "$scenario_dir"
cargo run --release -p gsrepro-bench --bin validate_trace -- "$scenario_dir" --require-scenario

echo "== oracle-enabled smoke (figure2 grid with --checks)"
cargo run --release -p gsrepro-bench --bin figure2 -- --smoke --iters 1 --checks

echo "== scorecard snapshot (release, oracle-enabled grids)"
cargo test --release -q -p gsrepro-testbed --test scorecard_snapshot -- --ignored

echo "CI OK"
