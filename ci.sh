#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, tests, and a smoke-scale
# end-to-end reproduction. Run from the repo root; exits non-zero on the
# first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test (workspace)"
cargo test -q --workspace

echo "== CCA conformance kit (golden step-response fixtures)"
cargo run --release -p gsrepro-bench --bin conformance

echo "== smoke reproduction"
cargo run --release -p gsrepro-bench --bin full_reproduction -- --smoke

echo "== traced smoke run + trace schema validation"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run --release -p gsrepro-bench --bin figure2 -- --smoke --iters 1 --trace "$trace_dir"
cargo run --release -p gsrepro-bench --bin validate_trace -- "$trace_dir"

echo "== dynamic-paths smoke + scenario trace validation"
scenario_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$scenario_dir"' EXIT
cargo run --release -p gsrepro-bench --bin dynamic_paths -- --smoke --iters 1 --trace "$scenario_dir"
cargo run --release -p gsrepro-bench --bin validate_trace -- "$scenario_dir" --require-scenario

echo "== oracle-enabled smoke (figure2 grid with --checks)"
cargo run --release -p gsrepro-bench --bin figure2 -- --smoke --iters 1 --checks

echo "== oracle-enabled 3-D AQM smoke (scorecard3d with --checks)"
cargo run --release -p gsrepro-bench --bin scorecard3d -- --smoke --iters 1 --checks --quiet

echo "== scorecard snapshot (release, oracle-enabled grids)"
cargo test --release -q -p gsrepro-testbed --test scorecard_snapshot -- --ignored

echo "== model-oracle gate (Ware inflight-cap model, smoke grid under --checks)"
# The bench binary itself exits non-zero on any `diverged` verdict in a
# model-applicable cell, so a CCA regression fails CI even before the
# snapshot diff; the snapshot test then pins the exact per-cell verdicts
# and the model scorecard matrix against tests/fixtures/model_oracle.txt.
cargo run --release -q -p gsrepro-bench --bin model_oracle -- --smoke --checks --quiet
cargo test --release -q -p gsrepro-testbed --test model_snapshot -- --ignored

echo "== perf smoke gate (>30% below committed BENCH_hotpath.json fails)"
# Short full-timeline run of the headline condition only (3 iterations,
# plus the binary's built-in warm-up). The 30% margin absorbs shared-host
# noise (±10% per run is routine); a real hot-path regression — an
# accidental de-batching, a scheduler slow path — overshoots it.
committed="$(sed -n 's/^  "events_per_sec": \([0-9]*\),$/\1/p' BENCH_hotpath.json | head -n1)"
perf_out="$(mktemp)"
trap 'rm -rf "$trace_dir" "$scenario_dir" "$perf_out"' EXIT
cargo run --release -p gsrepro-bench --bin perf -- --iters 3 --csv "$perf_out"
measured="$(sed -n 's/^  "events_per_sec": \([0-9]*\),$/\1/p' "$perf_out" | head -n1)"
floor=$(( committed * 7 / 10 ))
echo "perf gate: measured ${measured} events/s, committed ${committed}, floor ${floor}"
if [ "$measured" -lt "$floor" ]; then
    echo "perf gate FAILED: hot path is >30% below the committed baseline" >&2
    exit 1
fi

echo "== fleet smoke gate (forced kill/resume must be bit-identical)"
# A tiny campaign run three ways: (a) straight through, (b) halted after 2
# shards with a checkpoint manifest, (c) resumed from that manifest. The
# aggregate digest — an exact hash over every per-condition sketch — must
# match between (a) and (c), which is the fleet engine's whole contract.
fleet_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$scenario_dir" "$perf_out" "$fleet_dir"' EXIT
fleet() { cargo run --release -q -p gsrepro-bench --bin fleet -- --smoke --threads 2 "$@"; }
fleet --csv "$fleet_dir/straight.json"
if fleet --csv "$fleet_dir/halted.json" --manifest "$fleet_dir/fleet.manifest" \
    --halt-after-shards 2; then
    echo "halted fleet run must exit non-zero" >&2; exit 1
fi
fleet --csv "$fleet_dir/resumed.json" --manifest "$fleet_dir/fleet.manifest"
digest() { sed -n 's/^  "digest": "\([0-9a-f]*\)",$/\1/p' "$1"; }
d_straight="$(digest "$fleet_dir/straight.json")"
d_resumed="$(digest "$fleet_dir/resumed.json")"
echo "fleet gate: straight ${d_straight}, resumed ${d_resumed}"
if [ -z "$d_straight" ] || [ "$d_straight" != "$d_resumed" ]; then
    echo "fleet gate FAILED: resumed aggregates differ from uninterrupted run" >&2
    exit 1
fi
# Schema sanity: the resumed JSON must carry the headline keys ci and the
# README document.
for key in '"schema": 1' '"sessions_per_sec"' '"p99"' '"never_response_frac"'; do
    grep -q "$key" "$fleet_dir/resumed.json" || {
        echo "fleet gate FAILED: BENCH_fleet.json is missing $key" >&2; exit 1; }
done
# Throughput floor vs the committed fleet headline, with the same generous
# margin logic as the perf gate (smoke sessions are shorter than the
# committed 100k-session sweep's, so only guard against collapse: >70%
# below the committed sessions/s fails).
if [ -f BENCH_fleet.json ]; then
    committed_sps="$(sed -n 's/^  "sessions_per_sec": \([0-9]*\)\..*,$/\1/p' BENCH_fleet.json | head -n1)"
    measured_sps="$(sed -n 's/^  "sessions_per_sec": \([0-9]*\)\..*,$/\1/p' "$fleet_dir/resumed.json" | head -n1)"
    floor_sps=$(( committed_sps * 3 / 10 ))
    echo "fleet gate: measured ${measured_sps} sessions/s, committed ${committed_sps}, floor ${floor_sps}"
    if [ "$measured_sps" -lt "$floor_sps" ]; then
        echo "fleet gate FAILED: campaign throughput collapsed vs committed BENCH_fleet.json" >&2
        exit 1
    fi
fi

echo "== chaos smoke gate (seeded fuzz must be clean; pinned repro replays bit-identically)"
# 200 adversarial trials (random conditions × disturbance schedules) with
# every invariant oracle armed, a watchdog per leg, and a bit-identity
# rerun as a determinism oracle. Any non-clean verdict exits non-zero.
# Seed 42 also covers the two trials that exposed the TCP RTO re-arm
# livelock, keeping that fix pinned at campaign scale.
chaos() { cargo run --release -q -p gsrepro-bench --bin chaos -- "$@"; }
chaos --trials 200 --seed 42
# The committed repro is a shrunk planted-bug catch (queue-skew knob):
# replaying it twice must produce byte-identical output, and the verdict
# must still be the planted nondeterminism — proving both the repro codec
# and the campaign's ability to catch a one-line bug.
chaos_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$scenario_dir" "$perf_out" "$fleet_dir" "$chaos_dir"' EXIT
chaos --replay crates/testbed/tests/fixtures/chaos_pinned.repro > "$chaos_dir/a.txt"
chaos --replay crates/testbed/tests/fixtures/chaos_pinned.repro > "$chaos_dir/b.txt"
cmp "$chaos_dir/a.txt" "$chaos_dir/b.txt" || {
    echo "chaos gate FAILED: repro replay is not bit-identical" >&2; exit 1; }
grep -q "verdict: nondeterminism" "$chaos_dir/a.txt" || {
    echo "chaos gate FAILED: pinned repro no longer catches its planted bug" >&2; exit 1; }

echo "CI OK"
