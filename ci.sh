#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, tests, and a smoke-scale
# end-to-end reproduction. Run from the repo root; exits non-zero on the
# first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test (workspace)"
cargo test -q --workspace

echo "== CCA conformance kit (golden step-response fixtures)"
cargo run --release -p gsrepro-bench --bin conformance

echo "== smoke reproduction"
cargo run --release -p gsrepro-bench --bin full_reproduction -- --smoke

echo "== traced smoke run + trace schema validation"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run --release -p gsrepro-bench --bin figure2 -- --smoke --iters 1 --trace "$trace_dir"
cargo run --release -p gsrepro-bench --bin validate_trace -- "$trace_dir"

echo "== dynamic-paths smoke + scenario trace validation"
scenario_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$scenario_dir"' EXIT
cargo run --release -p gsrepro-bench --bin dynamic_paths -- --smoke --iters 1 --trace "$scenario_dir"
cargo run --release -p gsrepro-bench --bin validate_trace -- "$scenario_dir" --require-scenario

echo "== oracle-enabled smoke (figure2 grid with --checks)"
cargo run --release -p gsrepro-bench --bin figure2 -- --smoke --iters 1 --checks

echo "== scorecard snapshot (release, oracle-enabled grids)"
cargo test --release -q -p gsrepro-testbed --test scorecard_snapshot -- --ignored

echo "== perf smoke gate (>30% below committed BENCH_hotpath.json fails)"
# Short full-timeline run of the headline condition only (3 iterations,
# plus the binary's built-in warm-up). The 30% margin absorbs shared-host
# noise (±10% per run is routine); a real hot-path regression — an
# accidental de-batching, a scheduler slow path — overshoots it.
committed="$(sed -n 's/^  "events_per_sec": \([0-9]*\),$/\1/p' BENCH_hotpath.json | head -n1)"
perf_out="$(mktemp)"
trap 'rm -rf "$trace_dir" "$scenario_dir" "$perf_out"' EXIT
cargo run --release -p gsrepro-bench --bin perf -- --iters 3 --csv "$perf_out"
measured="$(sed -n 's/^  "events_per_sec": \([0-9]*\),$/\1/p' "$perf_out" | head -n1)"
floor=$(( committed * 7 / 10 ))
echo "perf gate: measured ${measured} events/s, committed ${committed}, floor ${floor}"
if [ "$measured" -lt "$floor" ]; then
    echo "perf gate FAILED: hot path is >30% below the committed baseline" >&2
    exit 1
fi

echo "CI OK"
