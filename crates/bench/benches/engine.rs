//! Microbenchmarks of the simulation substrate: event throughput, link
//! shaping, queue disciplines, and a full TCP flow per second of simulated
//! time. These quantify the cost of a paper-scale run (540 s × 810 runs).

use criterion::{criterion_group, criterion_main, Criterion};
use gsrepro_netsim::apps::{CbrSource, SinkAgent};
use gsrepro_netsim::net::{AgentId, NetworkBuilder};
use gsrepro_netsim::queue::{DropTailQueue, Queue, QueueSpec, QueuedPkt};
use gsrepro_netsim::wire::{Ecn, FlowId, PktRef};
use gsrepro_netsim::LinkSpec;
use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimTime};
use gsrepro_tcp::{CcaKind, TcpReceiver, TcpSender, TcpSenderConfig};

fn bench_event_engine(c: &mut Criterion) {
    c.bench_function("cbr_10s_25mbps", |b| {
        b.iter(|| {
            let mut nb = NetworkBuilder::new(1);
            let s = nb.add_node("s");
            let d = nb.add_node("d");
            nb.duplex(
                s,
                d,
                LinkSpec::bottleneck(
                    BitRate::from_mbps(25),
                    Bytes(100_000),
                    SimDuration::from_millis(8),
                ),
            );
            let f = nb.flow("x");
            let sink = nb.add_agent(d, Box::new(SinkAgent::new()));
            nb.add_agent(
                s,
                Box::new(CbrSource::new(
                    f,
                    d,
                    sink,
                    BitRate::from_mbps(20),
                    Bytes(1200),
                )),
            );
            let mut sim = nb.build();
            sim.run_until(SimTime::from_secs(10));
            sim.events_processed()
        })
    });
}

/// Multi-hop forwarding: a 3-node path (server → router → client) carrying
/// mixed media-sized CBR and a competing TCP Cubic flow through a shaped
/// bottleneck. Every media packet crosses two links and the TCP flow adds
/// ack traffic on the reverse path, so per-hop packet-handling cost
/// dominates — exactly what the packet pool and slab scheduler target.
fn bench_multihop_forwarding(c: &mut Criterion) {
    c.bench_function("multihop_3node_mixed_10s", |b| {
        b.iter(|| {
            let mut nb = NetworkBuilder::new(11);
            let s = nb.add_node("server");
            let r = nb.add_node("router");
            let d = nb.add_node("client");
            nb.duplex(s, r, LinkSpec::lan(SimDuration::from_millis(2)));
            nb.link(
                r,
                d,
                LinkSpec::bottleneck(
                    BitRate::from_mbps(25),
                    Bytes(100_000),
                    SimDuration::from_millis(8),
                ),
            );
            nb.link(d, r, LinkSpec::lan(SimDuration::from_millis(8)));
            let media = nb.flow("media");
            let data = nb.flow("tcp");
            let acks = nb.flow("acks");
            let sink = nb.add_agent(d, Box::new(SinkAgent::new()));
            nb.add_agent(
                s,
                Box::new(CbrSource::new(
                    media,
                    d,
                    sink,
                    BitRate::from_mbps(10),
                    Bytes(1200),
                )),
            );
            let cfg = TcpSenderConfig::new(data, d, AgentId(3), CcaKind::Cubic);
            let sender = nb.add_agent(s, Box::new(TcpSender::new(cfg)));
            nb.add_agent(d, Box::new(TcpReceiver::new(acks, s, sender)));
            let mut sim = nb.build();
            sim.run_until(SimTime::from_secs(10));
            sim.events_processed()
        })
    });
}

fn bench_queue_disciplines(c: &mut Criterion) {
    let mk_pkt = |i: u64| QueuedPkt {
        pkt: PktRef(i as u32),
        flow: FlowId((i % 4) as u32),
        size: Bytes(1200),
        ecn: Ecn::NotEct,
        enqueued_at: SimTime::ZERO,
    };
    let mut group = c.benchmark_group("queues");
    group.bench_function("drop_tail_enq_deq", |b| {
        b.iter(|| {
            let mut q = DropTailQueue::bytes(Bytes(1_000_000));
            let mut dropped = vec![];
            for i in 0..1_000u64 {
                let _ = q.enqueue(mk_pkt(i), SimTime::from_millis(i));
                if i % 2 == 0 {
                    q.dequeue(SimTime::from_millis(i), &mut dropped);
                }
            }
            q.len_pkts()
        })
    });
    for (name, spec) in [
        ("codel", QueueSpec::codel_default(Bytes(1_000_000))),
        ("fq_codel", QueueSpec::fq_codel_default(Bytes(1_000_000))),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut q = spec.build();
                let mut dropped = vec![];
                for i in 0..1_000u64 {
                    let _ = q.enqueue(mk_pkt(i), SimTime::from_millis(i));
                    if i % 2 == 0 {
                        q.dequeue(SimTime::from_millis(i), &mut dropped);
                    }
                }
                q.len_pkts()
            })
        });
    }
    group.finish();
}

fn bench_tcp_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcp_10s");
    group.sample_size(10);
    for cca in [CcaKind::Cubic, CcaKind::Bbr] {
        group.bench_function(cca.label(), |b| {
            b.iter(|| {
                let mut nb = NetworkBuilder::new(7);
                let s = nb.add_node("s");
                let d = nb.add_node("d");
                nb.link(
                    s,
                    d,
                    LinkSpec::bottleneck(
                        BitRate::from_mbps(25),
                        Bytes(100_000),
                        SimDuration::from_millis(8),
                    ),
                );
                nb.link(d, s, LinkSpec::lan(SimDuration::from_millis(8)));
                let data = nb.flow("d");
                let acks = nb.flow("a");
                let cfg = TcpSenderConfig::new(data, d, AgentId(1), cca);
                let sender = nb.add_agent(s, Box::new(TcpSender::new(cfg)));
                nb.add_agent(d, Box::new(TcpReceiver::new(acks, s, sender)));
                let mut sim = nb.build();
                sim.run_until(SimTime::from_secs(10));
                sim.events_processed()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_engine,
    bench_multihop_forwarding,
    bench_queue_disciplines,
    bench_tcp_flow
);
criterion_main!(benches);
