//! Macro-benchmarks: one full paper-timeline testbed run per condition
//! archetype, plus ablations called out in DESIGN.md (D2: controller swap;
//! D3: BBR in-flight cap via queue size; AQM future work).
//!
//! These are wall-clock benches of the *reproduction machinery*; the
//! figures themselves come from the `--bin` targets.

use criterion::{criterion_group, criterion_main, Criterion};
use gsrepro_tcp::CcaKind;
use gsrepro_testbed::config::{Condition, Timeline};
use gsrepro_testbed::runner::run_condition;
use gsrepro_testbed::SystemKind;

fn short_cond(sys: SystemKind, cca: Option<CcaKind>) -> Condition {
    Condition::new(sys, cca, 25, 2.0).with_timeline(Timeline::scaled(0.1))
}

fn bench_condition_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("testbed_run_54s");
    group.sample_size(10);
    for sys in SystemKind::ALL {
        for cca in [Some(CcaKind::Cubic), Some(CcaKind::Bbr), None] {
            let label = format!(
                "{}-{}",
                sys.label(),
                cca.map(|c| c.label()).unwrap_or("solo")
            );
            let cond = short_cond(sys, cca);
            group.bench_function(&label, |b| {
                b.iter(|| {
                    let r = run_condition(&cond, 0);
                    r.game_bins_mbps.len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_condition_run);
criterion_main!(benches);
