//! Regenerates Table 3: RTT without a competing flow.

fn main() {
    let (opts, csv) = gsrepro_bench::parse_args();
    let solo = gsrepro_testbed::experiments::run_solo_grid(opts);
    let t = gsrepro_testbed::experiments::table3(&solo);
    println!("{t}");
    gsrepro_bench::maybe_write_csv(&csv, &t.csv());
}
