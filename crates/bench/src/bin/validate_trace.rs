//! Validate exported flight-recorder traces against the telemetry schema.
//!
//! Usage: `validate_trace <dir> [--require-scenario]`. Parses every `.csv`
//! and `.jsonl` in the directory with the simcore telemetry codecs, checks
//! the event stream invariants (non-empty, timestamps non-decreasing),
//! requires the decision-grade series a paper condition must produce
//! (cwnd, queue_depth, enc_rate), and checks that each run's CSV and JSONL
//! agree. With `--require-scenario`, every run must additionally carry at
//! least one `link_scenario` event — proof the scheduled path disturbances
//! actually executed. Exits non-zero on the first violation — CI runs this
//! after a traced smoke grid.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::exit;

use gsrepro_simcore::telemetry::{
    parse_csv, parse_jsonl, validate_events, EventKind, TelemetryEvent,
};

fn fail(msg: String) -> ! {
    eprintln!("validate_trace: {msg}");
    exit(1);
}

fn load(path: &Path) -> Vec<TelemetryEvent> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("reading {}: {e}", path.display())));
    let events = match path.extension().and_then(|s| s.to_str()) {
        Some("csv") => parse_csv(&text),
        Some("jsonl") => parse_jsonl(&text),
        _ => unreachable!("only .csv/.jsonl files are collected"),
    }
    .unwrap_or_else(|e| fail(format!("{}: {e}", path.display())));
    validate_events(&events).unwrap_or_else(|e| fail(format!("{}: {e}", path.display())));
    events
}

/// Kinds that every traced paper condition must have produced. Cwnd is
/// only demanded of competing runs — solo conditions (label `*-solo-*`)
/// have no TCP flow to produce it.
const REQUIRED: [EventKind; 2] = [EventKind::QueueDepth, EventKind::EncoderRate];

fn main() {
    let mut dir = None;
    let mut require_scenario = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--require-scenario" => require_scenario = true,
            other if dir.is_none() && !other.starts_with('-') => dir = Some(other.to_string()),
            other => fail(format!(
                "unexpected argument {other}; usage: validate_trace <dir> [--require-scenario]"
            )),
        }
    }
    let dir =
        dir.unwrap_or_else(|| fail("usage: validate_trace <dir> [--require-scenario]".into()));

    // Pair up <stem>.csv / <stem>.jsonl.
    let mut stems: BTreeMap<String, (Option<PathBuf>, Option<PathBuf>)> = BTreeMap::new();
    let entries = std::fs::read_dir(&dir).unwrap_or_else(|e| fail(format!("reading {dir}: {e}")));
    for entry in entries {
        let path = entry
            .unwrap_or_else(|e| fail(format!("reading {dir}: {e}")))
            .path();
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        let slot = stems.entry(stem.to_string()).or_default();
        match path.extension().and_then(|s| s.to_str()) {
            Some("csv") => slot.0 = Some(path),
            Some("jsonl") => slot.1 = Some(path),
            _ => {}
        }
    }
    if stems.is_empty() {
        fail(format!("no .csv/.jsonl traces found in {dir}"));
    }

    let mut runs = 0usize;
    let mut events = 0usize;
    for (stem, (csv, jsonl)) in &stems {
        let (Some(csv), Some(jsonl)) = (csv, jsonl) else {
            fail(format!("{stem}: missing csv or jsonl half of the pair"));
        };
        let from_csv = load(csv);
        let from_jsonl = load(jsonl);
        if from_csv != from_jsonl {
            fail(format!("{stem}: csv and jsonl exports disagree"));
        }
        for kind in REQUIRED {
            if !from_csv.iter().any(|e| e.kind == kind) {
                fail(format!("{stem}: no {} events in trace", kind.name()));
            }
        }
        if !stem.contains("-solo-") && !from_csv.iter().any(|e| e.kind == EventKind::Cwnd) {
            fail(format!("{stem}: no cwnd events in competing-run trace"));
        }
        if require_scenario && !from_csv.iter().any(|e| e.kind == EventKind::LinkScenario) {
            fail(format!(
                "{stem}: --require-scenario set but no link_scenario events in trace"
            ));
        }
        runs += 1;
        events += from_csv.len();
    }
    println!("validate_trace: {runs} runs OK ({events} events)");
}
