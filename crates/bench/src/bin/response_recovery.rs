//! Regenerates the technical report's response/recovery-time breakdown
//! (the per-condition C and E values that Figure 4 aggregates).

fn main() {
    let (opts, csv) = gsrepro_bench::parse_args();
    let grid = gsrepro_testbed::experiments::run_full_grid(opts);
    let t = gsrepro_testbed::experiments::response_recovery(&grid);
    println!("{t}");
    if csv.is_some() {
        let mut out =
            String::from("capacity,queue,system,cca,response_s,never_resp,recovery_s,never_rec\n");
        for (cap, q, sys, cca, c, cn, e, en) in &t.rows {
            out.push_str(&format!(
                "{cap},{q},{},{},{c:.2},{cn:.2},{e:.2},{en:.2}\n",
                sys.label(),
                cca.label()
            ));
        }
        gsrepro_bench::maybe_write_csv(&csv, &out);
    }
}
