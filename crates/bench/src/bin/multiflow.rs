//! Future-work experiment: a game system against *multiple* competing TCP
//! flows (the paper only tests one). For N ∈ {1, 2, 3, 4} Cubic flows at
//! 25 Mb/s / 2×-BDP, reports the game's share vs its N-flow fair share
//! capacity/(N+1).

use gsrepro_gamestream::client::{StreamClient, StreamClientConfig};
use gsrepro_gamestream::server::StreamServer;
use gsrepro_gamestream::SystemKind;
use gsrepro_netsim::net::{AgentId, NetworkBuilder};
use gsrepro_netsim::queue::QueueSpec;
use gsrepro_netsim::{LinkSpec, Shaper};
use gsrepro_simcore::rng::stream_id;
use gsrepro_simcore::{BitRate, SimDuration, SimTime};
use gsrepro_tcp::{CcaKind, TcpReceiver, TcpSender, TcpSenderConfig};
use gsrepro_testbed::metrics::jains_index;
use gsrepro_testbed::report::TextTable;

/// Returns (game goodput, total TCP goodput, Jain's index over the
/// game + per-TCP-flow goodputs).
fn run(system: SystemKind, n_flows: u32, secs: u64, seed: u64) -> (f64, f64, f64) {
    let capacity = BitRate::from_mbps(25);
    let rtt = SimDuration::from_micros(16_500);
    let queue = capacity.bdp(rtt).mul_f64(2.0);

    let mut b = NetworkBuilder::new(seed);
    let servers = b.add_node("servers");
    let client = b.add_node("client");
    b.link(
        servers,
        client,
        LinkSpec {
            shaper: Shaper::rate(capacity),
            delay: SimDuration::from_micros(8_250),
            queue: QueueSpec::DropTail { limit: queue },
            jitter: SimDuration::ZERO,
            loss_prob: 0.0,
            dup_prob: 0.0,
        },
    );
    b.link(
        client,
        servers,
        LinkSpec::lan(SimDuration::from_micros(8_250)),
    );

    let media = b.flow("media");
    let feedback = b.flow("feedback");
    let profile = system.profile();
    let gclient = b.add_agent(
        client,
        Box::new(StreamClient::new(StreamClientConfig::new(
            feedback,
            servers,
            AgentId(1),
        ))),
    );
    b.add_agent(
        servers,
        Box::new(StreamServer::new(
            media,
            client,
            gclient,
            profile.build_source(seed, stream_id("frames")),
            profile.build_controller(),
        )),
    );

    let mut tcp_flows = Vec::new();
    for i in 0..n_flows {
        let data = b.flow(format!("cubic{i}"));
        let acks = b.flow(format!("ack{i}"));
        let recv_id = AgentId(2 + i * 2 + 1);
        // Stagger starts slightly, as real flows would.
        let start = SimTime::from_secs(30 + i as u64 * 2);
        let cfg = TcpSenderConfig::new(data, client, recv_id, CcaKind::Cubic)
            .active_during(start, SimTime::from_secs(secs));
        let s = b.add_agent(servers, Box::new(TcpSender::new(cfg)));
        b.add_agent(client, Box::new(TcpReceiver::new(acks, servers, s)));
        tcp_flows.push(data);
    }

    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(secs));
    let from = SimTime::from_secs(60);
    let to = SimTime::from_secs(secs);
    let game = sim.goodput_mbps(media, from, to);
    let per_flow: Vec<f64> = tcp_flows
        .iter()
        .map(|&f| sim.goodput_mbps(f, from, to))
        .collect();
    let tcp_total: f64 = per_flow.iter().sum();
    let mut all = vec![game];
    all.extend(per_flow);
    (game, tcp_total, jains_index(&all))
}

fn main() {
    let (opts, _) = gsrepro_bench::parse_args();
    let secs = (opts.timeline.end.as_secs_f64() / 2.0).max(120.0) as u64;
    println!("game share vs number of competing Cubic flows (25 Mb/s, 2x BDP)\n");
    let mut t = TextTable::new(vec![
        "system",
        "N",
        "game Mb/s",
        "TCP total",
        "fair share",
        "game/fair",
        "jain",
    ]);
    for sys in SystemKind::ALL {
        for n in 1..=4u32 {
            let (game, tcp, jain) = run(sys, n, secs, 1000 + n as u64);
            let fair = 25.0 / (n + 1) as f64;
            t.row(vec![
                sys.label().to_string(),
                n.to_string(),
                format!("{game:.1}"),
                format!("{tcp:.1}"),
                format!("{fair:.1}"),
                format!("{:.2}", game / fair),
                format!("{jain:.3}"),
            ]);
        }
    }
    println!("{}", t.render());
    println!("reading: a ratio > 1 means the game defends more than its N-flow fair");
    println!("share; the paper predicts Stadia > 1, Luna ≈ 1, GeForce < 1 vs Cubic.");
    println!("jain is Jain's fairness index over the game + per-TCP-flow goodputs");
    println!("(1 = perfectly even split across the N+1 flows).");
}
