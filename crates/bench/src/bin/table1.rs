//! Regenerates Table 1: unconstrained steady-state bitrates.

fn main() {
    let (opts, _) = gsrepro_bench::parse_args();
    let t1 = gsrepro_testbed::experiments::table1(opts);
    println!("Table 1 — game system bitrates, unconstrained (paper: Stadia 27.5 (2.3), GeForce 24.5 (1.8), Luna 23.7 (0.9))\n");
    println!("{t1}");
}
