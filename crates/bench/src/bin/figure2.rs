//! Regenerates Figure 2: bitrate vs time at 25 Mb/s, all queues and CCAs.

fn main() {
    let (opts, csv) = gsrepro_bench::parse_args();
    let fig = gsrepro_testbed::experiments::figure2(opts);
    println!("{fig}");
    gsrepro_bench::maybe_write_csv(&csv, &fig.csv());
    if let Some(path) = &csv {
        // Companion gnuplot script for visual inspection.
        let gp = gsrepro_testbed::report::gnuplot_figure2(
            path,
            fig.timeline.iperf_start.as_secs_f64(),
            fig.timeline.iperf_stop.as_secs_f64(),
        );
        let gp_path = format!("{path}.gp");
        if let Err(e) = std::fs::write(&gp_path, gp) {
            eprintln!("error: failed to write gnuplot script {gp_path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {gp_path}");
    }
}
