//! Sensitivity analysis: do the headline fairness signs survive Internet
//! weather? Re-runs a representative slice of Figure 3 with increasing WAN
//! jitter (the noise the simulator's clean paths lack relative to the
//! paper's campus-to-cloud testbed).

use gsrepro_simcore::SimDuration;
use gsrepro_testbed::config::Condition;
use gsrepro_testbed::report::TextTable;
use gsrepro_testbed::{metrics, run_many, CcaKind, SystemKind};

fn main() {
    let (opts, _) = gsrepro_bench::parse_args();
    let jitters_ms = [0u64, 2, 5];
    let slice = [
        (SystemKind::Stadia, CcaKind::Cubic, 2.0),
        (SystemKind::GeForce, CcaKind::Cubic, 2.0),
        (SystemKind::Luna, CcaKind::Cubic, 2.0),
        (SystemKind::Stadia, CcaKind::Bbr, 0.5),
        (SystemKind::Luna, CcaKind::Bbr, 0.5),
    ];

    let mut conditions = Vec::new();
    for &j in &jitters_ms {
        for &(sys, cca, q) in &slice {
            conditions.push(
                Condition::new(sys, Some(cca), 25, q)
                    .with_wan_jitter(SimDuration::from_millis(j))
                    .with_timeline(opts.timeline),
            );
        }
    }
    eprintln!(
        "running {} conditions × {} iterations...",
        conditions.len(),
        opts.iterations
    );
    let results = run_many(&conditions, opts.iterations, opts.threads);

    println!("fairness vs WAN jitter (25 Mb/s slice of Figure 3)\n");
    let mut t = TextTable::new(vec!["condition", "0 ms", "2 ms", "5 ms"]);
    for &(sys, cca, q) in &slice {
        let mut row = vec![format!("{sys} vs {cca} @{q}x")];
        for &j in &jitters_ms {
            let cr = results
                .iter()
                .find(|r| {
                    r.condition.system == sys
                        && r.condition.cca == Some(cca)
                        && (r.condition.queue_mult - q).abs() < 1e-9
                        && r.condition.wan_jitter == SimDuration::from_millis(j)
                })
                .expect("condition present");
            let f = cr
                .runs
                .iter()
                .map(|r| metrics::fairness(r, &cr.condition))
                .sum::<f64>()
                / cr.runs.len() as f64;
            row.push(format!("{f:+.2}"));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("the reproduction's conclusions should not depend on perfectly clean paths:");
    println!("signs (who wins) are expected to be stable across the jitter sweep.");
}
