//! Runs every experiment and prints every table and figure, sharing the
//! expensive grids. This is the one-shot artifact regeneration entry point.

use gsrepro_testbed::experiments as ex;

fn main() {
    let (opts, _) = gsrepro_bench::parse_args();
    eprintln!(
        "full reproduction: {} iterations/condition, {} threads (paper: 15 iterations)",
        opts.iterations, opts.threads
    );

    println!("{}", ex::table2_text());

    eprintln!("[1/4] Table 1 (unconstrained bitrates)...");
    println!("\n{}", ex::table1(opts.clone()));

    eprintln!("[2/4] solo grid (Table 3, solo loss)...");
    let solo = ex::run_solo_grid(opts.clone());
    eprintln!("[3/4] full competing grid (Figures 2-4, Tables 4-5)...");
    let grid = ex::run_full_grid(opts.clone());

    println!("\n{}", ex::table3(&solo));
    println!("\n{}", ex::table4(&grid));
    println!("\n{}", ex::table5(&grid));
    let (l1, l2) = ex::loss_tables(&solo, &grid);
    println!("\n{l1}\n{l2}");
    println!("\n{}", ex::figure3(&grid));
    println!("\n{}", ex::figure4(&grid));

    eprintln!("[4/4] Figure 2 (bitrate time series)...");
    let fig2 = ex::figure2(opts);
    println!("\n{fig2}");
}
