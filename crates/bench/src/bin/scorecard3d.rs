//! The 3-D AQM scorecard: {GeForce NOW, Stadia, Luna} × {Cubic, BBRv1,
//! BBRv2} × {drop-tail, CoDel, FQ-CoDel} at 25 Mb/s / 2× BDP. Prints the
//! 27 per-cell QoE rows, grades the AQM claims (CoDel cuts RTT, BBRv2 is
//! marked not dropped, FQ isolates the game flow), and optionally dumps
//! the table as CSV.

use gsrepro_testbed::experiments as ex;

fn main() {
    let (opts, csv) = gsrepro_bench::parse_args();
    eprintln!("running 3-D AQM grid (27 cells)...");
    let grid = ex::run_aqm3d_grid(opts);
    let table = ex::aqm3d(&grid);
    println!("{table}");
    let sc = gsrepro_testbed::scorecard::aqm_scorecard(&grid);
    println!("{sc}");
    gsrepro_bench::maybe_write_csv(&csv, &table.csv());
}
