//! Run the CCA conformance kit against the committed golden fixtures.
//!
//! Usage: `conformance [--bless]`. Drives every congestion controller
//! (Reno, Cubic, BBR v1, BBR v2, Vegas) through its standard scripted-ack
//! step-response and diffs the trajectory against the fixture under
//! `crates/tcp/tests/fixtures/cca/`. Exits non-zero on the first
//! divergence — CI runs this as the "are the control laws still the
//! control laws" gate. With `--bless`, rewrites the fixtures from the
//! current implementation instead (review the diff before committing).

use std::path::PathBuf;
use std::process::exit;

use gsrepro_tcp::conformance::{check_fixture, ALL_KINDS};

fn fixture_dir() -> PathBuf {
    // bench and tcp are workspace siblings.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../tcp/tests/fixtures/cca")
}

fn main() {
    let mut bless = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--bless" => bless = true,
            "--help" | "-h" => {
                eprintln!("usage: conformance [--bless]");
                exit(0);
            }
            other => {
                eprintln!("conformance: unexpected argument {other}; usage: conformance [--bless]");
                exit(2);
            }
        }
    }

    let dir = fixture_dir();
    for kind in ALL_KINDS {
        match check_fixture(kind, &dir, bless) {
            Ok(()) if bless => println!("conformance: {kind} fixture blessed"),
            Ok(()) => println!("conformance: {kind} OK"),
            Err(e) => {
                eprintln!("conformance: {kind} FAILED\n{e}");
                exit(1);
            }
        }
    }
    println!(
        "conformance: {} controllers match their golden fixtures",
        ALL_KINDS.len()
    );
}
