//! Settling-time report for dynamic-path scenarios: how fast each system's
//! encoder rate, RTT, and frame rate re-settle after a bottleneck rate
//! step. The paper measures steady paths; this binary drives the scenario
//! engine the same way its testbed scripts would have reconfigured `tbf`
//! mid-run.
//!
//! Scenario: each system streams solo on a 25 Mb/s, 2×BDP-queue path that
//! steps down to 10 Mb/s at ~100 s and back to 25 Mb/s at ~200 s (times
//! scale with the timeline, so `--smoke` keeps the same shape). For every
//! disturbance, the settling time of each series is the time until its
//! 5 s-smoothed value first reaches the stable tail of that segment
//! (see `metrics::settle_after`).
//!
//! Usage: `cargo run --release -p gsrepro-bench --bin dynamic_paths
//! [--smoke] [--iters N] [--csv PATH] [--trace DIR]`.

use gsrepro_bench::{maybe_write_csv, parse_args};
use gsrepro_gamestream::SystemKind;
use gsrepro_simcore::stats::Samples;
use gsrepro_simcore::{BitRate, SimDuration, SimTime};
use gsrepro_testbed::config::{Condition, PathScenario};
use gsrepro_testbed::metrics::{settle_after, SettleTime};
use gsrepro_testbed::report::{Csv, TextTable};
use gsrepro_testbed::runner::{run_many_traced, RunResult};

/// RTT samples arrive every 200 ms; rebin to a uniform 1 s series so the
/// settling scan can treat it like the bitrate bins. Empty bins inherit
/// the previous value (a gap is "no news", not "RTT zero").
fn bin_rtt(rtt: &[(f64, f64)], end_s: f64) -> Vec<f64> {
    let n = end_s.ceil() as usize;
    let mut sums = vec![0.0; n];
    let mut counts = vec![0u32; n];
    for &(t, v) in rtt {
        let i = t as usize;
        if i < n {
            sums[i] += v;
            counts[i] += 1;
        }
    }
    let mut out = vec![0.0; n];
    let mut last = rtt.first().map(|s| s.1).unwrap_or(0.0);
    for i in 0..n {
        if counts[i] > 0 {
            last = sums[i] / counts[i] as f64;
        }
        out[i] = last;
    }
    out
}

/// Settle a series after a disturbance at `from`, scanning to `to`. The
/// target is the stable tail of the segment itself: mean ± sd over its
/// last 40% (by then every system has reached its new operating point).
fn settle(bins: &[f64], width: SimDuration, from: SimTime, to: SimTime) -> SettleTime {
    let w = width.as_secs_f64();
    let (f, t) = (from.as_secs_f64(), to.as_secs_f64());
    let tail_from = f + 0.6 * (t - f);
    let mut s = Samples::new();
    for (i, &v) in bins.iter().enumerate() {
        let mid = (i as f64 + 0.5) * w;
        if mid >= tail_from && mid < t {
            s.add(v);
        }
    }
    settle_after(bins, width, from, to, s.mean(), s.stddev())
}

/// Per-series settling for one run and one disturbance window.
fn run_settles(run: &RunResult, from: SimTime, to: SimTime) -> [SettleTime; 3] {
    let rtt_bins = bin_rtt(&run.rtt, to.as_secs_f64());
    [
        settle(&run.game_bins_mbps, run.bin_width, from, to),
        settle(&rtt_bins, SimDuration::from_secs(1), from, to),
        settle(&run.fps_bins, run.fps_bin_width, from, to),
    ]
}

fn main() {
    let (opts, csv) = parse_args();
    let end = opts.timeline.end;
    // The paper timeline is 540 s; place the step at the 100 s / 200 s
    // marks and scale them with `--smoke`'s shorter timeline.
    let frac = |f: f64| SimTime::from_millis((end.as_secs_f64() * f * 1000.0) as u64);
    let (step_down, step_up) = (frac(100.0 / 540.0), frac(200.0 / 540.0));
    let scenario = PathScenario::RateStep {
        rate: BitRate::from_mbps(10),
        from: step_down,
        to: step_up,
    };

    let systems = [SystemKind::Stadia, SystemKind::Luna, SystemKind::GeForce];
    let conditions: Vec<Condition> = systems
        .iter()
        .map(|&sys| {
            Condition::new(sys, None, 25, 2.0)
                .with_timeline(opts.timeline)
                .with_scenario(scenario)
        })
        .collect();
    let results = run_many_traced(
        &conditions,
        opts.iterations,
        opts.threads,
        opts.trace.as_ref(),
    );

    // Disturbance windows: each scan runs to the next disturbance (or the
    // timeline end for the last one).
    let disturbances = [
        ("25→10 Mb/s", step_down, step_up),
        ("10→25 Mb/s", step_up, end),
    ];

    let mut table = TextTable::new(vec![
        "system",
        "disturbance",
        "at (s)",
        "bitrate settle (s)",
        "rtt settle (s)",
        "fps settle (s)",
    ]);
    let mut out = Csv::new(&[
        "system",
        "disturbance",
        "at_s",
        "bitrate_settle_s",
        "bitrate_never",
        "rtt_settle_s",
        "rtt_never",
        "fps_settle_s",
        "fps_never",
    ]);

    for (sys, cr) in systems.iter().zip(&results) {
        for &(what, from, to) in &disturbances {
            // Mean settling across iterations; count the never-settled runs.
            let mut means = [Samples::new(), Samples::new(), Samples::new()];
            let mut nevers = [0u32; 3];
            for run in &cr.runs {
                for (i, st) in run_settles(run, from, to).iter().enumerate() {
                    means[i].add(st.secs);
                    nevers[i] += st.never as u32;
                }
            }
            let cell = |i: usize| {
                if nevers[i] as usize == cr.runs.len() {
                    "never".to_string()
                } else {
                    format!("{:.1}", means[i].mean())
                }
            };
            table.row(vec![
                sys.label().to_string(),
                what.to_string(),
                format!("{:.0}", from.as_secs_f64()),
                cell(0),
                cell(1),
                cell(2),
            ]);
            out.row(&[
                sys.label().to_string(),
                what.to_string(),
                format!("{:.1}", from.as_secs_f64()),
                format!("{:.2}", means[0].mean()),
                nevers[0].to_string(),
                format!("{:.2}", means[1].mean()),
                nevers[1].to_string(),
                format!("{:.2}", means[2].mean()),
                nevers[2].to_string(),
            ]);
        }
    }

    println!("Dynamic paths: settling time after bottleneck rate steps");
    println!(
        "(solo stream, 25 Mb/s path, 2×BDP queue; step to 10 Mb/s over [{:.0} s, {:.0} s))",
        step_down.as_secs_f64(),
        step_up.as_secs_f64()
    );
    println!("{}", table.render());
    maybe_write_csv(&csv, &out.finish());
}
