//! Echoes Table 2: the experimental parameters.

fn main() {
    println!("{}", gsrepro_testbed::experiments::table2_text());
}
