//! Runs the three DESIGN.md ablations:
//!
//! * D2 — controller-archetype swap across system profiles,
//! * D3 — BBR PROBE_BW cwnd-gain sweep vs Cubic at a bloated queue,
//! * D1 — queue-discipline sweep (drop-tail / CoDel / FQ-CoDel).

use gsrepro_testbed::ablation;
use gsrepro_testbed::report::TextTable;

fn main() {
    let (opts, _) = gsrepro_bench::parse_args();

    eprintln!("[1/3] D2 controller swap (18 conditions)...");
    let swap = ablation::controller_swap(opts.timeline, opts.iterations, opts.threads);
    println!("{swap}");

    eprintln!("[2/3] D3 BBR cwnd-gain sweep...");
    let cells = ablation::bbr_cwnd_gain(&[1.0, 1.5, 2.0, 3.0, 4.0], 7.0, 90, 11);
    println!("\nD3 ablation — BBR cwnd_gain vs Cubic, 25 Mb/s, 7x BDP (paper: the 2x cap");
    println!("is why RTT halves vs the Cubic-only column)\n");
    let mut t = TextTable::new(vec!["cwnd_gain", "BBR share", "RTT (ms)"]);
    for c in &cells {
        t.row(vec![
            format!("{:.1}", c.gain),
            format!("{:.2}", c.bbr_share),
            format!("{:.1}", c.rtt_ms),
        ]);
    }
    println!("{}", t.render());

    eprintln!("[3/3] D1 AQM sweep (9 conditions)...");
    let aqm = ablation::aqm_sweep(opts.timeline, opts.iterations, opts.threads);
    println!("\nD1 ablation — queue discipline at 25 Mb/s, 7x BDP, vs Cubic\n");
    let mut t = TextTable::new(vec!["qdisc", "system", "fairness", "RTT (ms)"]);
    for c in &aqm {
        t.row(vec![
            c.aqm.label().to_string(),
            c.system.label().to_string(),
            format!("{:+.2}", c.fairness),
            format!("{:.1}", c.rtt_ms),
        ]);
    }
    println!("{}", t.render());
}
