//! Regenerates Figure 4: adaptiveness vs fairness.

fn main() {
    let (opts, csv) = gsrepro_bench::parse_args();
    let grid = gsrepro_testbed::experiments::run_full_grid(opts);
    let fig = gsrepro_testbed::experiments::figure4(&grid);
    println!("{fig}");
    gsrepro_bench::maybe_write_csv(&csv, &fig.csv());
}
