//! Scheduler and link-drain microbenchmarks.
//!
//! Isolates the simulation substrate from protocol logic so scheduler work
//! has a signal that macro runs (where agent logic dominates) would bury:
//!
//! * steady-state schedule/pop throughput of the timing-wheel scheduler,
//!   with a delay mix shaped like a paper run (same-instant loopbacks,
//!   sub-ms wakeups, ms-scale propagation, RTO-scale timers),
//! * the same workload on a plain `BinaryHeap` reference scheduler, so the
//!   wheel's advantage (or regression) is a printed ratio,
//! * cancel throughput (schedule + cancel, no fire),
//! * batched vs per-packet link drain through a shaped token bucket.
//!
//! Usage: `cargo run --release -p gsrepro-bench --bin sched_bench`

use gsrepro_netsim::queue::{QueueSpec, QueuedPkt};
use gsrepro_netsim::wire::{Ecn, FlowId, PktRef};
use gsrepro_netsim::LinkSpec;
use gsrepro_simcore::engine::{Engine, Scheduler, World};
use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Deterministic delay mix, roughly matching the event-type shares measured
/// in a paper-scale run (arrivals ~2/3, wakeups ~1/6, timers ~1/6).
#[derive(Clone)]
struct DelayMix {
    state: u64,
}

impl DelayMix {
    fn new(seed: u64) -> Self {
        DelayMix { state: seed | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: plenty for spreading bench timestamps.
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_delay(&mut self) -> SimDuration {
        let r = self.next_u64();
        match r % 100 {
            // Same-instant loopback delivery (fast lane).
            0..=9 => SimDuration::ZERO,
            // Shaper wakeups: 1 µs – 1 ms.
            10..=29 => SimDuration::from_nanos(1_000 + r % 1_000_000),
            // Propagation delays: 5 – 30 ms.
            30..=84 => SimDuration::from_nanos(5_000_000 + r % 25_000_000),
            // RTO-scale timers: ~200 ms – 1 s.
            _ => SimDuration::from_nanos(200_000_000 + r % 800_000_000),
        }
    }
}

/// Minimal world: events carry no payload and schedule nothing; the bench
/// loop does the scheduling so the scheduler is the only thing measured.
struct Sink;

impl World for Sink {
    type Event = u64;
    fn handle(&mut self, _event: u64, _sched: &mut Scheduler<u64>) {}
}

/// Steady-state schedule+pop through the timing wheel: keep `backlog` events
/// pending, pop one / push one, `ops` times.
fn bench_wheel(backlog: usize, ops: u64) -> f64 {
    let mut eng: Engine<Sink> = Engine::new();
    let mut w = Sink;
    let mut mix = DelayMix::new(7);
    for i in 0..backlog {
        let d = mix.next_delay();
        eng.scheduler().schedule_in(d, i as u64);
    }
    let start = Instant::now();
    for i in 0..ops {
        eng.step(&mut w);
        let d = mix.next_delay();
        eng.scheduler().schedule_in(d, i);
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// The pre-wheel scheduler: one monolithic `BinaryHeap` over every pending
/// event, same (time, seq) ordering. Kept as the reference the wheel is
/// measured against.
struct HeapRef {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
}

impl HeapRef {
    fn new() -> Self {
        HeapRef {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
        }
    }

    fn schedule_in(&mut self, d: SimDuration, ev: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((self.now + d, seq, ev)));
    }

    fn pop(&mut self) -> Option<u64> {
        self.heap.pop().map(|Reverse((t, _, ev))| {
            self.now = t;
            ev
        })
    }
}

fn bench_heap_ref(backlog: usize, ops: u64) -> f64 {
    let mut sched = HeapRef::new();
    let mut mix = DelayMix::new(7);
    for i in 0..backlog {
        let d = mix.next_delay();
        sched.schedule_in(d, i as u64);
    }
    let start = Instant::now();
    for i in 0..ops {
        sched.pop();
        let d = mix.next_delay();
        sched.schedule_in(d, i);
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// Cancel throughput: schedule a cancellable timer and immediately cancel
/// it — the dominant pattern for RTO timers that are re-armed on every ack.
fn bench_cancel(ops: u64) -> f64 {
    let mut eng: Engine<Sink> = Engine::new();
    let mut mix = DelayMix::new(11);
    let start = Instant::now();
    for i in 0..ops {
        let d = SimDuration::from_nanos(200_000_000 + mix.next_u64() % 800_000_000);
        let h = eng.scheduler().schedule_cancellable_in(d, i);
        eng.scheduler().cancel(h);
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// Link drain: `n` media-sized packets through a 25 Mb/s token bucket.
/// `batched = false` replays the pre-batching pattern (one `service_batch`
/// call capped at one delivery per activation); `batched = true` lets one
/// activation drain everything the bank allows.
///
/// Both modes call `service_batch` directly, so the ratio isolates the
/// *per-packet drain cost* and lands near 1.0 by design: the two paths do
/// almost identical work per packet. Batching's real saving in the full
/// simulator — one scheduler event per banked train instead of one
/// wakeup/dispatch round-trip per packet — sits in the event loop, and
/// shows up in `perf`'s events/s, not in a direct-call microbench.
fn bench_link_drain(n: usize, batched: bool) -> f64 {
    use gsrepro_netsim::link::{LinkId, Shaper};
    use gsrepro_netsim::net::NodeId;
    let spec = LinkSpec {
        shaper: Shaper::TokenBucket {
            rate: BitRate::from_mbps(25),
            // Bank enough for the whole train so the drain itself (not
            // token accrual) is what the clock sees.
            burst: Bytes(1_000_000_000),
        },
        delay: SimDuration::from_millis(8),
        jitter: SimDuration::ZERO,
        loss_prob: 0.0,
        dup_prob: 0.0,
        queue: QueueSpec::DropTail {
            limit: Bytes(u64::MAX / 2),
        },
    };
    let mut link = spec.build(LinkId(0), NodeId(0), NodeId(1));
    let mut out: Vec<QueuedPkt> = Vec::with_capacity(n);
    let mut dropped: Vec<QueuedPkt> = Vec::new();
    let now = SimTime::from_secs(1);
    for i in 0..n {
        let item = QueuedPkt {
            pkt: PktRef(i as u32),
            size: Bytes(1228),
            flow: FlowId(0),
            ecn: Ecn::NotEct,
            enqueued_at: now,
        };
        assert!(link.offer(item, now).is_ok(), "offer rejected");
    }
    let start = Instant::now();
    if batched {
        link.service_batch(now, usize::MAX, &mut out, &mut dropped);
    } else {
        while out.len() < n {
            if link.service_batch(now, 1, &mut out, &mut dropped).is_none() && out.len() < n {
                panic!("link stalled mid-drain");
            }
        }
    }
    assert_eq!(out.len(), n, "drain left packets behind");
    n as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    const BACKLOG: usize = 600;
    const OPS: u64 = 4_000_000;

    // Warm-up passes so page faults and lazy allocs don't land in the
    // timings. The drain warm-ups run at full size in *both* modes: the
    // drain allocates ~3 MB of queue and output buffers per call, and a
    // smaller warm-up leaves the first timed variant paying every page
    // fault while the second reuses warm allocator pages — enough skew to
    // invert the comparison.
    bench_wheel(BACKLOG, OPS / 8);
    bench_heap_ref(BACKLOG, OPS / 8);
    bench_link_drain(100_000, true);
    bench_link_drain(100_000, false);

    let wheel = bench_wheel(BACKLOG, OPS);
    let heap = bench_heap_ref(BACKLOG, OPS);
    let cancel = bench_cancel(OPS);
    let drain_batched = bench_link_drain(100_000, true);
    let drain_single = bench_link_drain(100_000, false);

    println!("scheduler microbench (backlog={BACKLOG}, ops={OPS}):");
    println!("  wheel schedule+pop : {:>12.0} ops/s", wheel);
    println!(
        "  heap  schedule+pop : {:>12.0} ops/s  (wheel is {:.2}x)",
        heap,
        wheel / heap
    );
    println!("  schedule+cancel    : {:>12.0} ops/s", cancel);
    println!("link drain (100k pkts, 25 Mb/s bucket, banked tokens):");
    println!("  batched            : {:>12.0} pkts/s", drain_batched);
    println!(
        "  one-per-activation : {:>12.0} pkts/s  (batched is {:.2}x)",
        drain_single,
        drain_batched / drain_single
    );
}
