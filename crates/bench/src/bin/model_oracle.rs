//! The model oracle: bulk-Cubic-vs-bulk-BBR cells measured on the
//! simulator and graded against the Ware BBRv1 inflight-cap model's
//! closed-form convergence shares (see `testbed::model` and the
//! EXPERIMENTS.md "Model oracle" section).
//!
//! Exits non-zero if any model-applicable cell diverges, so CI can gate
//! on it directly. `--smoke` runs the CI-sized grid, `--checks` audits
//! every cell with the invariant oracles, `--csv` dumps the table.

use gsrepro_testbed::config::Timeline;
use gsrepro_testbed::model::{self, OracleSpec};

fn main() {
    let (opts, csv) = gsrepro_bench::parse_args();
    // `--smoke` replaces the option set with a scaled timeline; the
    // oracle has its own grid sizes, so detect it from the timeline.
    let smoke = opts.timeline.end < Timeline::paper().end;
    let mut spec = if smoke {
        OracleSpec::smoke()
    } else {
        OracleSpec::paper()
    };
    spec.checks = opts.checks;
    spec.threads = opts.threads;

    let report = model::run_model_oracle(&spec);
    let sc = model::model_scorecard(&report);

    println!(
        "model oracle — Ware inflight-cap stable root p* = (1 - 1/X)/2 vs measured Cubic share"
    );
    println!(
        "({} cells, {:.0} s each, tolerance ±{}, checks {})\n",
        report.cells.len(),
        spec.duration.as_secs_f64(),
        model::MODEL_TOLERANCE,
        if spec.checks { "on" } else { "off" }
    );
    println!("{}", report.table().render());
    println!("{sc}");

    if spec.checks {
        let audited: u64 = report
            .cells
            .iter()
            .map(|c| c.measured.checks_performed)
            .sum();
        println!("invariant oracle evaluations across the grid: {audited}");
    }

    if let Some(path) = &csv {
        let mut out = String::from(
            "capacity_mbps,base_rtt_ms,queue_mult,pred_loss_share,meas_loss_share,abs_err,jain,utilization,verdict\n",
        );
        for c in &report.cells {
            out.push_str(&format!(
                "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{}\n",
                c.cell.capacity_mbps,
                c.cell.base_rtt.as_millis_f64(),
                c.cell.queue_mult,
                c.prediction.loss_share,
                c.measured.loss_share,
                c.abs_err,
                c.measured.jain,
                c.measured.utilization,
                c.verdict.label()
            ));
        }
        gsrepro_bench::maybe_write_csv(&csv, &out);
        let _ = path;
    }

    let diverged = report.diverged();
    if diverged > 0 {
        eprintln!("error: {diverged} model-applicable cell(s) diverged from the Ware prediction");
        std::process::exit(1);
    }
}
