//! Regenerates Table 4: RTT with a competing flow.

fn main() {
    let (opts, csv) = gsrepro_bench::parse_args();
    let grid = gsrepro_testbed::experiments::run_full_grid(opts);
    let t = gsrepro_testbed::experiments::table4(&grid);
    println!("{t}");
    gsrepro_bench::maybe_write_csv(&csv, &t.csv());
}
