//! Chaos campaign driver: thousands of seeded adversarial trials against
//! the full testbed — random conditions × random disturbance schedules —
//! with every invariant oracle armed, a watchdog bounding each run, and a
//! bit-identity rerun as a determinism oracle. Failures are shrunk to
//! minimal repro files that `--replay` re-executes deterministically.
//!
//! Usage: `cargo run --release -p gsrepro-bench --bin chaos --
//!   [--trials N] [--seed N] [--threads N] [--scale F] [--max-steps N]
//!   [--perturb KNOB] [--shrink-limit N] [--emit-repro PATH]
//!   [--replay FILE]`
//!
//! `KNOB` ∈ {`none`, `seed-skew-on-outage`, `queue-skew-on-shrink`,
//! `tiny-budget=N`}: each plants one bug class the campaign must catch
//! and shrink (the campaign validating itself). Exit status: with
//! `--perturb none`, non-zero iff any verdict is non-clean; with a knob,
//! non-zero iff the planted bug was *not* caught. `--replay` re-runs one
//! repro file and prints a deterministic verdict line (byte-identical
//! across invocations — `ci.sh` pins this).

use gsrepro_testbed::chaos::{run_trial, ChaosSpec, ChaosVerdict, Perturbation, Trial};
use gsrepro_testbed::runner::default_threads;

const FLAGS: &str = "flags: --trials N | --seed N | --threads N | --scale F | --max-steps N | \
                     --perturb KNOB | --shrink-limit N | --emit-repro PATH | --replay FILE";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{FLAGS}");
    std::process::exit(2);
}

fn describe(v: &ChaosVerdict) -> String {
    match v {
        ChaosVerdict::Clean => "clean".into(),
        ChaosVerdict::OracleViolation { report } => {
            format!(
                "oracle-violation ({})",
                report.lines().next().unwrap_or("").trim()
            )
        }
        ChaosVerdict::Nondeterminism { digest_a, digest_b } => {
            format!("nondeterminism (digests {digest_a:016x} / {digest_b:016x})")
        }
        ChaosVerdict::Panic { message } => {
            format!("panic ({})", message.lines().next().unwrap_or("").trim())
        }
        ChaosVerdict::Timeout { error } => format!("timeout ({error})"),
    }
}

fn main() {
    let mut spec = ChaosSpec {
        threads: default_threads(),
        ..ChaosSpec::default()
    };
    let mut emit_repro: Option<String> = None;
    let mut replay: Option<String> = None;

    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trials" => {
                spec.trials = next(&mut args, "--trials")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--trials must be a positive integer"));
                if spec.trials == 0 {
                    usage_error("--trials must be ≥ 1");
                }
            }
            "--seed" => {
                spec.seed = next(&mut args, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--seed must be an integer"));
            }
            "--threads" => {
                spec.threads = next(&mut args, "--threads")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--threads must be a positive integer"));
            }
            "--scale" => {
                spec.scale = next(&mut args, "--scale")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--scale must be a float"));
                if !(spec.scale > 0.0 && spec.scale <= 1.0) {
                    usage_error("--scale must be in (0, 1]");
                }
            }
            "--max-steps" => {
                spec.max_disturbances = next(&mut args, "--max-steps")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--max-steps must be a positive integer"));
                if spec.max_disturbances == 0 {
                    usage_error("--max-steps must be ≥ 1");
                }
            }
            "--perturb" => {
                spec.perturb = Perturbation::parse(&next(&mut args, "--perturb"))
                    .unwrap_or_else(|e| usage_error(&e));
            }
            "--shrink-limit" => {
                spec.shrink_limit = next(&mut args, "--shrink-limit")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--shrink-limit must be an integer"));
            }
            "--emit-repro" => emit_repro = Some(next(&mut args, "--emit-repro")),
            "--replay" => replay = Some(next(&mut args, "--replay")),
            other => usage_error(&format!("unknown flag {other}")),
        }
    }

    // Oracle violations panic by design and are caught + classified per
    // leg; keep their backtrace spew out of campaign output. Anything
    // else still prints (it is a real, unclassified bug surfacing).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let text = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        if !text.starts_with("invariant violation") {
            default_hook(info);
        }
    }));

    if let Some(path) = replay {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: reading repro {path}: {e}");
            std::process::exit(2);
        });
        let trial = Trial::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: parsing repro {path}: {e}");
            std::process::exit(2);
        });
        // Deterministic output: same repro file → byte-identical lines.
        println!(
            "chaos replay: {} steps, perturb {}",
            trial.schedule.steps.len(),
            trial.perturb.label()
        );
        let verdict = run_trial(&trial);
        println!("verdict: {}", describe(&verdict));
        return;
    }

    println!(
        "chaos: {} trials, seed {}, scale {}, max-steps {}, perturb {}, {} threads",
        spec.trials,
        spec.seed,
        spec.scale,
        spec.max_disturbances,
        spec.perturb.label(),
        spec.threads
    );
    let started = std::time::Instant::now();
    let report = gsrepro_testbed::chaos::run_chaos(&spec);
    let hist = report
        .histogram()
        .iter()
        .map(|(tag, n)| format!("{tag} {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "verdicts: {hist} ({} trials in {:.1} s)",
        report.trials,
        started.elapsed().as_secs_f64()
    );

    let mut emitted = false;
    for f in &report.failures {
        println!("trial {}: {}", f.trial, describe(&f.verdict));
        if let Some((min, stats)) = &f.shrunk {
            println!(
                "  shrunk: {} -> {} steps, scale {} -> {}, links {} -> {}, {} candidate runs",
                stats.steps_before,
                stats.steps_after,
                stats.scale_before,
                stats.scale_after,
                stats.links_before,
                stats.links_after,
                stats.tests
            );
            if let (Some(path), false) = (&emit_repro, emitted) {
                std::fs::write(path, min.serialize()).unwrap_or_else(|e| {
                    eprintln!("error: writing repro {path}: {e}");
                    std::process::exit(2);
                });
                println!("  repro written: {path}");
                emitted = true;
            }
        }
    }
    if report.shrink_tests > 0 {
        println!(
            "shrinker: {} failures minimized with {} candidate runs",
            report
                .failures
                .iter()
                .filter(|f| f.shrunk.is_some())
                .count(),
            report.shrink_tests
        );
    }

    // Self-validating exit status: a clean fuzz must be clean; a planted
    // bug must be caught.
    let caught = report.trials - report.counts[0];
    match spec.perturb {
        Perturbation::None => {
            if caught > 0 {
                eprintln!("chaos: {caught} non-clean verdicts (expected none)");
                std::process::exit(1);
            }
        }
        _ => {
            if caught == 0 {
                eprintln!("chaos: planted perturbation was never caught");
                std::process::exit(1);
            }
        }
    }
}
