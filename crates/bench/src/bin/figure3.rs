//! Regenerates Figure 3: normalized bitrate-difference heatmaps.

fn main() {
    let (opts, csv) = gsrepro_bench::parse_args();
    let grid = gsrepro_testbed::experiments::run_full_grid(opts);
    let fig = gsrepro_testbed::experiments::figure3(&grid);
    println!("{fig}");
    gsrepro_bench::maybe_write_csv(&csv, &fig.csv());
}
