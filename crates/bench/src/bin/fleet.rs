//! Fleet-scale campaign bench: sweep ≥ 100k seeded streaming sessions
//! through the simulator with flat memory, streaming every session into
//! bounded per-condition percentile sketches, and checkpointing shard
//! progress to a resumable manifest.
//!
//! The sweep covers the paper's central contested bottleneck (25 Mb/s,
//! 2× BDP queue) for all three systems against both competitor CCAs —
//! 6 conditions, `sessions / 6` seeded iterations each — on a scaled
//! timeline so a single machine can push through fleet-sized session
//! counts. Emits schema-versioned `BENCH_fleet.json` with per-condition
//! mean/σ/p50/p95/p99 for encoder rate, goodput, RTT, fps, loss and
//! settle times, plus the `sessions_per_sec` headline `ci.sh`'s fleet
//! gate tracks, and prints an `aggregate digest` line the resume gate
//! compares across kill/resume splits.
//!
//! Usage: `cargo run --release -p gsrepro-bench --bin fleet --
//!   [--sessions N] [--smoke] [--scale F] [--shard-size N] [--threads N]
//!   [--manifest PATH] [--halt-after-shards K] [--checks] [--csv PATH]`
//!
//! `--manifest` enables checkpoint/resume: re-running the same command
//! after a kill continues where the sweep stopped and produces aggregates
//! bit-identical to an uninterrupted run. `--halt-after-shards` stops
//! early on purpose (CI uses it to force a resume). `--csv` overrides the
//! JSON output path.

use std::path::PathBuf;

use gsrepro_bench::maybe_write_csv;
use gsrepro_gamestream::SystemKind;
use gsrepro_tcp::CcaKind;
use gsrepro_testbed::campaign::{run_campaign, CampaignSpec, CondAggregate, METRICS};
use gsrepro_testbed::config::{Condition, Timeline};
use gsrepro_testbed::report::percentile_table;

/// Bump when the JSON layout changes shape (consumers: ci.sh).
const SCHEMA: u32 = 1;

const FLAGS: &str = "flags: --sessions N | --smoke | --scale F | --shard-size N | --threads N | \
                     --manifest PATH | --halt-after-shards K | --checks | --csv PATH";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{FLAGS}");
    std::process::exit(2);
}

struct FleetArgs {
    sessions: u64,
    scale: f64,
    shard_size: u32,
    threads: usize,
    manifest: Option<PathBuf>,
    halt_after_shards: Option<usize>,
    checks: bool,
    csv: Option<String>,
}

fn parse_fleet_args() -> FleetArgs {
    let mut fa = FleetArgs {
        sessions: 100_002, // divisible by the 6 conditions
        scale: 0.02,
        shard_size: 64,
        threads: gsrepro_testbed::runner::default_threads(),
        manifest: None,
        halt_after_shards: None,
        checks: false,
        csv: None,
    };
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sessions" => {
                fa.sessions = next(&mut args, "--sessions")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--sessions must be a positive integer"));
                if fa.sessions == 0 {
                    usage_error("--sessions must be at least 1");
                }
            }
            "--smoke" => {
                fa.sessions = 60;
                fa.shard_size = 4;
            }
            "--scale" => {
                fa.scale = next(&mut args, "--scale")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--scale must be a float in (0, 1]"));
                if !(fa.scale > 0.0 && fa.scale <= 1.0) {
                    usage_error("--scale must be in (0, 1]");
                }
            }
            "--shard-size" => {
                fa.shard_size = next(&mut args, "--shard-size")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--shard-size must be a positive integer"));
            }
            "--threads" => {
                fa.threads = next(&mut args, "--threads")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--threads must be a positive integer"));
            }
            "--manifest" => fa.manifest = Some(PathBuf::from(next(&mut args, "--manifest"))),
            "--halt-after-shards" => {
                fa.halt_after_shards = Some(
                    next(&mut args, "--halt-after-shards")
                        .parse()
                        .unwrap_or_else(|_| usage_error("--halt-after-shards must be an integer")),
                );
            }
            "--checks" => fa.checks = true,
            "--csv" => {
                let path = next(&mut args, "--csv");
                if let Err(e) = std::fs::write(&path, "") {
                    usage_error(&format!("cannot write --csv path {path}: {e}"));
                }
                fa.csv = Some(path);
            }
            "--help" | "-h" => {
                eprintln!("{FLAGS}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    fa
}

fn json_metric(agg: &CondAggregate, i: usize) -> String {
    let s = agg.metric(i);
    format!(
        "\"{}\": {{ \"n\": {}, \"mean\": {:.4}, \"sd\": {:.4}, \
         \"p50\": {:.4}, \"p95\": {:.4}, \"p99\": {:.4}, \"min\": {:.4}, \"max\": {:.4} }}",
        METRICS[i],
        s.count(),
        s.mean(),
        s.stddev(),
        s.quantile(0.50),
        s.quantile(0.95),
        s.quantile(0.99),
        s.min(),
        s.max(),
    )
}

fn json_condition(label: &str, agg: &CondAggregate) -> String {
    let metrics: Vec<String> = (0..METRICS.len()).map(|i| json_metric(agg, i)).collect();
    let frac = |n: u64| {
        if agg.runs == 0 {
            0.0
        } else {
            n as f64 / agg.runs as f64
        }
    };
    format!(
        "    {{\n      \"condition\": \"{label}\",\n      \"sessions\": {},\n      \
         \"never_response_frac\": {:.4},\n      \"never_recovery_frac\": {:.4},\n      {}\n    }}",
        agg.runs,
        frac(agg.never_response),
        frac(agg.never_recovery),
        metrics.join(",\n      "),
    )
}

fn main() {
    let fa = parse_fleet_args();
    gsrepro_testbed::runner::set_grid_log(false);

    // The paper's central contested bottleneck, all systems × both CCAs.
    let tl = Timeline::scaled(fa.scale);
    let conditions: Vec<Condition> = [SystemKind::Stadia, SystemKind::GeForce, SystemKind::Luna]
        .into_iter()
        .flat_map(|sys| {
            [CcaKind::Cubic, CcaKind::Bbr]
                .into_iter()
                .map(move |cca| Condition::new(sys, Some(cca), 25, 2.0).with_timeline(tl))
        })
        .collect();
    let iterations = (fa.sessions as usize).div_ceil(conditions.len()) as u32;

    let mut spec = CampaignSpec::new(conditions, iterations);
    spec.shard_size = fa.shard_size;
    spec.threads = fa.threads;
    spec.checks = fa.checks;
    spec.manifest = fa.manifest.clone();
    spec.halt_after_shards = fa.halt_after_shards;

    eprintln!(
        "fleet: {} conditions × {} sessions (scale {}, shards of {}, {} thread(s))",
        spec.conditions.len(),
        iterations,
        fa.scale,
        spec.shard_size,
        spec.threads,
    );

    let result = match run_campaign(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    if let Some(note) = &result.torn_tail {
        eprintln!("fleet: {note}");
    }
    eprintln!(
        "fleet: {} sessions this run ({} resumed shard(s), {} pending) in {:.1} s — {:.1} sessions/s",
        result.sessions_this_run,
        result.resumed_shards,
        result.pending_shards,
        result.wall_secs,
        result.sessions_per_sec(),
    );

    // Percentile tables for the metrics the paper discusses most.
    for (i, &name) in METRICS.iter().enumerate() {
        if !matches!(name, "encoder_rate_mbps" | "rtt_ms" | "response_s") {
            continue;
        }
        let rows: Vec<(String, &gsrepro_testbed::MetricSketch)> = result
            .conditions
            .iter()
            .map(|(c, a)| (c.label(), a.metric(i)))
            .collect();
        println!("{}", percentile_table(name, &rows));
    }
    println!("aggregate digest: {:016x}", result.digest());

    let body: Vec<String> = result
        .conditions
        .iter()
        .map(|(c, a)| json_condition(&c.label(), a))
        .collect();
    let json = format!(
        "{{\n  \"schema\": {SCHEMA},\n  \
         \"sessions_total\": {},\n  \
         \"sessions_this_run\": {},\n  \
         \"complete\": {},\n  \
         \"scale\": {},\n  \
         \"shard_size\": {},\n  \
         \"resumed_shards\": {},\n  \
         \"sessions_per_sec\": {:.2},\n  \
         \"wall_secs\": {:.1},\n  \
         \"digest\": \"{:016x}\",\n  \
         \"conditions\": [\n{}\n  ]\n}}\n",
        result.sessions_total(),
        result.sessions_this_run,
        result.complete(),
        fa.scale,
        spec.shard_size,
        result.resumed_shards,
        result.sessions_per_sec(),
        result.wall_secs,
        result.digest(),
        body.join(",\n"),
    );

    let path = fa.csv.unwrap_or_else(|| "BENCH_fleet.json".to_string());
    maybe_write_csv(&Some(path), &json);

    if !result.complete() {
        // Deliberate halts (CI's forced-resume gate) exit non-zero so a
        // truncated sweep can't be mistaken for a finished one.
        std::process::exit(3);
    }
}
