//! Verifies every encoded paper claim against freshly-run grids and prints
//! the PASS/PARTIAL/FAIL scorecard (the summary EXPERIMENTS.md reports).

use gsrepro_testbed::experiments as ex;

fn main() {
    let (opts, _) = gsrepro_bench::parse_args();
    eprintln!("running solo grid...");
    let solo = ex::run_solo_grid(opts.clone());
    eprintln!("running competing grid...");
    let grid = ex::run_full_grid(opts);
    let sc = gsrepro_testbed::scorecard::scorecard(&solo, &grid);
    println!("{sc}");
}
