//! Harm-based analysis (the paper's future-work pointer to Ware et al.):
//! throughput, delay, and frame-rate harm inflicted on each game system by
//! each competitor, relative to the solo run under the same condition.

use gsrepro_testbed::experiments as ex;

fn main() {
    let (opts, csv) = gsrepro_bench::parse_args();
    eprintln!("running solo grid...");
    let solo = ex::run_solo_grid(opts.clone());
    eprintln!("running competing grid...");
    let grid = ex::run_full_grid(opts);
    let harm = ex::harm_table(&solo, &grid);
    println!("{harm}");
    if csv.is_some() {
        let mut out = String::from("capacity,queue,system,cca,tput_harm,delay_harm,fps_harm\n");
        for (cap, q, sys, cca, ht, hd, hf) in &harm.rows {
            out.push_str(&format!(
                "{cap},{q},{},{},{ht:.4},{hd:.4},{hf:.4}\n",
                sys.label(),
                cca.label()
            ));
        }
        gsrepro_bench::maybe_write_csv(&csv, &out);
    }
}
