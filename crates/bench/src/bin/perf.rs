//! End-to-end hot-path benchmark: simulated seconds per wall second and
//! engine events per second for a bottlenecked Cubic-vs-stream condition —
//! the workload class that dominates a paper-scale grid (540 s × 810 runs).
//!
//! Emits `BENCH_hotpath.json`:
//!
//! ```json
//! {
//!   "condition": "luna_cubic_b25_q2.0",
//!   "iterations": 5,
//!   "events_per_sec": 1.23e6,
//!   "sim_secs_per_wall_sec": 210.5
//! }
//! ```
//!
//! Usage: `cargo run --release -p gsrepro-bench --bin perf [--smoke]
//! [--iters N] [--csv PATH]` — `--csv` overrides the JSON output path.

use gsrepro_bench::{maybe_write_csv, parse_args};
use gsrepro_gamestream::SystemKind;
use gsrepro_simcore::SimDuration;
use gsrepro_tcp::CcaKind;
use gsrepro_testbed::config::Condition;
use gsrepro_testbed::runner::run_condition;

fn main() {
    let (opts, csv) = parse_args();

    // The paper's central competing-flow scenario: a 25 Mb/s bottleneck
    // with a 2×BDP queue, game stream vs one TCP Cubic flow.
    let cond = Condition::new(SystemKind::Luna, Some(CcaKind::Cubic), 25, 2.0)
        .with_timeline(opts.timeline);
    let label = cond.label();
    let sim_secs_per_run = (cond.timeline.end + SimDuration::from_secs(1)).as_secs_f64();

    let mut events = 0u64;
    let mut wall = 0.0f64;
    for iter in 0..opts.iterations {
        let run = run_condition(&cond, iter);
        events += run.events_processed;
        wall += run.wall_secs;
        eprintln!(
            "iter {iter}: {} events in {:.3} s ({:.2}M events/s)",
            run.events_processed,
            run.wall_secs,
            run.events_processed as f64 / run.wall_secs / 1e6,
        );
    }

    let events_per_sec = events as f64 / wall;
    let sim_secs_per_wall_sec = sim_secs_per_run * opts.iterations as f64 / wall;
    let json = format!(
        "{{\n  \"condition\": \"{label}\",\n  \"iterations\": {},\n  \
         \"events_per_sec\": {events_per_sec:.0},\n  \
         \"sim_secs_per_wall_sec\": {sim_secs_per_wall_sec:.1}\n}}\n",
        opts.iterations,
    );
    print!("{json}");

    let path = csv
        .clone()
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    maybe_write_csv(&Some(path), &json);
}
