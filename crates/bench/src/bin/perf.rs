//! End-to-end hot-path benchmark: engine events per second and simulated
//! seconds per wall second across a small grid of representative paper
//! conditions — the workload class that dominates a paper-scale grid
//! (540 s × 810 runs).
//!
//! Methodology:
//! * one untimed warm-up run per condition (page faults, lazy allocs and
//!   branch-predictor training land outside the timings),
//! * `--iters N` timed runs per condition (default 5), each a distinct
//!   seed, reporting **min / median / max** — single numbers are
//!   meaningless on shared hardware where run-to-run spread reaches ±10%,
//! * scheduler occupancy counters per condition (where events landed:
//!   fast lane / current bucket / wheel / overflow heap, cascade volume,
//!   slab high-watermark), so a throughput regression can be localised to
//!   scheduler behaviour without a profiler.
//!
//! Emits schema-versioned `BENCH_hotpath.json`. The top-level
//! `events_per_sec` key is the **median** over the headline condition
//! (`luna-cubic-b25-q2`, the paper's central competing-flow scenario) and
//! is what `ci.sh`'s perf smoke gate compares against.
//!
//! Usage: `cargo run --release -p gsrepro-bench --bin perf [--smoke]
//! [--iters N] [--csv PATH]` — `--csv` overrides the JSON output path.

use gsrepro_bench::{maybe_write_csv, median, parse_args};
use gsrepro_gamestream::SystemKind;
use gsrepro_simcore::{SchedStats, SimDuration};
use gsrepro_tcp::CcaKind;
use gsrepro_testbed::config::Condition;
use gsrepro_testbed::runner::run_condition;

/// Bump when the JSON layout changes shape (consumers: ci.sh, DESIGN.md).
const SCHEMA: u32 = 2;

/// The condition the headline number and the CI gate track.
const HEADLINE: &str = "luna-cubic-b25-q2";

struct CondReport {
    label: String,
    rates: Vec<f64>,
    wall_total: f64,
    sim_secs_per_run: f64,
    sched: SchedStats,
}

fn accumulate(total: &mut SchedStats, s: &SchedStats) {
    total.lane_scheduled += s.lane_scheduled;
    total.cur_scheduled += s.cur_scheduled;
    total.wheel_scheduled += s.wheel_scheduled;
    total.overflow_scheduled += s.overflow_scheduled;
    total.cascaded += s.cascaded;
    total.cancelled += s.cancelled;
    total.slab_high_watermark = total.slab_high_watermark.max(s.slab_high_watermark);
}

fn bench_condition(cond: &Condition, iterations: u32) -> CondReport {
    let label = cond.label();
    let sim_secs_per_run = (cond.timeline.end + SimDuration::from_secs(1)).as_secs_f64();

    // Warm-up: same work, clock ignored.
    run_condition(cond, 0);

    let mut rates = Vec::with_capacity(iterations as usize);
    let mut wall_total = 0.0;
    let mut sched = SchedStats::default();
    for iter in 0..iterations {
        let run = run_condition(cond, iter);
        let rate = run.events_processed as f64 / run.wall_secs;
        eprintln!(
            "{label} iter {iter}: {} events in {:.3} s ({:.2}M events/s)",
            run.events_processed,
            run.wall_secs,
            rate / 1e6,
        );
        rates.push(rate);
        wall_total += run.wall_secs;
        accumulate(&mut sched, &run.sched);
    }
    rates.sort_by(|a, b| a.total_cmp(b));
    CondReport {
        label,
        rates,
        wall_total,
        sim_secs_per_run,
        sched,
    }
}

/// Median of a condition's timed rates, or a contextual config-error
/// exit (code 2) — fleet automation must be able to tell "bench was
/// invoked with no timed iterations" from a simulation failure.
fn median_or_die(label: &str, rates: &[f64]) -> f64 {
    median(rates).unwrap_or_else(|| {
        eprintln!("error: condition {label} produced no timed iterations (check --iters)");
        std::process::exit(2);
    })
}

fn json_condition(r: &CondReport) -> String {
    let med = median_or_die(&r.label, &r.rates);
    let s = &r.sched;
    let placed = s.lane_scheduled + s.cur_scheduled + s.wheel_scheduled + s.overflow_scheduled;
    let share = |n: u64| {
        if placed == 0 {
            0.0
        } else {
            n as f64 / placed as f64
        }
    };
    format!(
        "    {{\n      \"condition\": \"{}\",\n      \
         \"events_per_sec\": {{ \"min\": {:.0}, \"median\": {:.0}, \"max\": {:.0} }},\n      \
         \"sim_secs_per_wall_sec\": {:.1},\n      \
         \"sched\": {{\n        \
         \"scheduled\": {placed},\n        \
         \"lane_share\": {:.4},\n        \
         \"cur_share\": {:.4},\n        \
         \"wheel_share\": {:.4},\n        \
         \"overflow_share\": {:.6},\n        \
         \"cascaded\": {},\n        \
         \"cancelled\": {},\n        \
         \"slab_high_watermark\": {}\n      }}\n    }}",
        r.label,
        r.rates[0],
        med,
        r.rates[r.rates.len() - 1],
        r.sim_secs_per_run * r.rates.len() as f64 / r.wall_total,
        share(s.lane_scheduled),
        share(s.cur_scheduled),
        share(s.wheel_scheduled),
        share(s.overflow_scheduled),
        s.cascaded,
        s.cancelled,
        s.slab_high_watermark,
    )
}

fn main() {
    let (opts, csv) = parse_args();

    // A cross-section of the grid: the headline competing-Cubic scenario,
    // the BBR counterpart (different ack clocking and pacing cadence), a
    // second streaming system (different encoder adaptation), and a solo
    // run (no competing flow — the scheduler sees mostly media traffic).
    let conditions = [
        Condition::new(SystemKind::Luna, Some(CcaKind::Cubic), 25, 2.0),
        Condition::new(SystemKind::Luna, Some(CcaKind::Bbr), 25, 2.0),
        Condition::new(SystemKind::GeForce, Some(CcaKind::Cubic), 25, 2.0),
        Condition::new(SystemKind::Luna, None, 25, 2.0),
    ];

    let mut reports = Vec::new();
    for cond in conditions {
        let cond = cond.with_timeline(opts.timeline);
        reports.push(bench_condition(&cond, opts.iterations));
    }

    let headline = reports
        .iter()
        .find(|r| r.label == HEADLINE)
        .unwrap_or(&reports[0]);
    let headline_rate = median_or_die(&headline.label, &headline.rates);
    let headline_ratio =
        headline.sim_secs_per_run * headline.rates.len() as f64 / headline.wall_total;

    let body: Vec<String> = reports.iter().map(json_condition).collect();
    let json = format!(
        "{{\n  \"schema\": {SCHEMA},\n  \
         \"condition\": \"{}\",\n  \
         \"iterations\": {},\n  \
         \"events_per_sec\": {headline_rate:.0},\n  \
         \"sim_secs_per_wall_sec\": {headline_ratio:.1},\n  \
         \"conditions\": [\n{}\n  ]\n}}\n",
        headline.label,
        opts.iterations,
        body.join(",\n"),
    );
    print!("{json}");

    let path = csv
        .clone()
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    maybe_write_csv(&Some(path), &json);
}
