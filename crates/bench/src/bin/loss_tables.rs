//! Regenerates the technical report's loss-rate tables.

fn main() {
    let (opts, csv) = gsrepro_bench::parse_args();
    let solo = gsrepro_testbed::experiments::run_solo_grid(opts.clone());
    let grid = gsrepro_testbed::experiments::run_full_grid(opts);
    let (a, b) = gsrepro_testbed::experiments::loss_tables(&solo, &grid);
    println!("{a}\n{b}");
    if csv.is_some() {
        let mut out = a.csv();
        out.push_str(&b.csv());
        gsrepro_bench::maybe_write_csv(&csv, &out);
    }
}
