//! # gsrepro-bench
//!
//! Regeneration harness for every table and figure in Xu & Claypool
//! (IMC '22), plus performance benches for the simulator itself.
//!
//! Each paper artifact has a binary (run with `--release`):
//!
//! | artifact | binary |
//! |---|---|
//! | Table 1 | `cargo run --release -p gsrepro-bench --bin table1` |
//! | Table 2 | `... --bin table2` |
//! | Figure 2 | `... --bin figure2` |
//! | Figure 3 | `... --bin figure3` |
//! | Figure 4 | `... --bin figure4` |
//! | Table 3 | `... --bin table3` |
//! | Table 4 | `... --bin table4` |
//! | Table 5 | `... --bin table5` |
//! | loss tables | `... --bin loss_tables` |
//! | 3-D AQM scorecard | `... --bin scorecard3d` |
//! | model oracle (Ware) | `... --bin model_oracle` |
//! | everything | `... --bin full_reproduction` |
//!
//! Every binary accepts `--iters N` (default 5; the paper used 15),
//! `--full` (15 iterations), `--smoke` (tiny scaled run for CI),
//! `--csv PATH` to dump machine-readable data, `--trace DIR` to export
//! per-run flight-recorder traces, and `--checks` to run with the
//! invariant oracles enabled (see EXPERIMENTS.md).

use gsrepro_testbed::experiments::ExperimentOpts;
use gsrepro_testbed::runner::TraceSpec;

/// Checked median of an already-sorted slice: `None` when empty (the old
/// perf-harness local helper indexed `sorted[n/2 - 1]` and panicked on an
/// empty slice).
pub fn median(sorted: &[f64]) -> Option<f64> {
    gsrepro_simcore::stats::median_sorted(sorted)
}

/// Checked percentile (`0 ≤ q ≤ 1`, linear interpolation) of an
/// already-sorted slice: `None` when empty.
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    gsrepro_simcore::stats::percentile_sorted(sorted, q)
}

const FLAGS: &str =
    "flags: --full | --smoke | --iters N | --threads N | --csv PATH | --trace DIR | --checks | --quiet";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{FLAGS}");
    std::process::exit(2);
}

/// Parse the shared CLI flags. Returns (opts, csv path).
pub fn parse_args() -> (ExperimentOpts, Option<String>) {
    let mut opts = ExperimentOpts::quick();
    let mut csv = None;
    let mut trace = None;
    let mut checks = false;
    let mut quiet = false;
    let mut explicit_iters = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => explicit_iters = Some(15),
            "--smoke" => opts = ExperimentOpts::smoke(),
            "--iters" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage_error("--iters needs a value"));
                opts.iterations = v
                    .parse()
                    .unwrap_or_else(|_| usage_error("--iters must be a positive integer"));
                if opts.iterations == 0 {
                    usage_error("--iters must be at least 1");
                }
                explicit_iters = Some(opts.iterations);
            }
            "--threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage_error("--threads needs a value"));
                opts.threads = v
                    .parse()
                    .unwrap_or_else(|_| usage_error("--threads must be a positive integer"));
            }
            "--csv" => {
                let path = args
                    .next()
                    .unwrap_or_else(|| usage_error("--csv needs a path"));
                // Validate the path up front: failing *after* a long grid
                // run would throw the results away.
                if let Err(e) = std::fs::write(&path, "") {
                    usage_error(&format!("cannot write --csv path {path}: {e}"));
                }
                csv = Some(path);
            }
            "--trace" => {
                let dir = args
                    .next()
                    .unwrap_or_else(|| usage_error("--trace needs a directory"));
                // Create (and thereby validate) the directory up front, for
                // the same reason as --csv.
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    usage_error(&format!("cannot create --trace dir {dir}: {e}"));
                }
                trace = Some(TraceSpec::new(dir));
            }
            "--checks" => checks = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!("{FLAGS}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
    }
    // An explicit --iters/--full wins regardless of flag order (--smoke
    // replaces the whole option set otherwise).
    if let Some(n) = explicit_iters {
        opts.iterations = n;
    }
    // --trace and --checks survive a later --smoke: it replaces the whole
    // option set.
    opts.trace = trace;
    opts.checks = checks;
    // Bench binaries keep the historical per-grid throughput line on
    // stderr; library users (tests, the fleet engine) default to silence.
    gsrepro_testbed::runner::set_grid_log(!quiet);
    (opts, csv)
}

/// Write CSV if a path was requested.
pub fn maybe_write_csv(path: &Option<String>, contents: &str) {
    if let Some(p) = path {
        if let Err(e) = std::fs::write(p, contents) {
            eprintln!("error: failed to write {p}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {p}");
    }
}
