//! Property-based tests for the queue disciplines and the token-bucket
//! shaper: FIFO order, byte accounting, capacity respect, and AQM
//! invariants across randomized workloads.

use gsrepro_netsim::queue::{DropTailQueue, Queue, QueueSpec, QueuedPkt};
use gsrepro_netsim::wire::{Ecn, FlowId, PktRef};
use gsrepro_simcore::{Bytes, SimTime};
use proptest::prelude::*;

/// Queues carry pool handles, not packets; the `id` doubles as the handle
/// so FIFO order can be asserted on what comes out.
fn pkt(id: u64, flow: u32, size: u64) -> QueuedPkt {
    QueuedPkt {
        pkt: PktRef(id as u32),
        flow: FlowId(flow),
        size: Bytes(size),
        ecn: Ecn::NotEct,
        enqueued_at: SimTime::ZERO,
    }
}

/// A randomized enqueue/dequeue schedule applied to any queue type.
/// Returns (accepted, delivered + queued + aqm-dropped, aqm-dropped,
/// delivered ids): the first two must match for a conserving queue.
fn churn(
    q: &mut dyn Queue,
    ops: &[(bool, u16, u64)], // (enqueue?, flow, size 64..1500)
) -> (u64, u64, u64, Vec<u64>) {
    let mut accepted = 0u64;
    let mut delivered = 0u64;
    let mut aqm_dropped = 0u64;
    let mut out_ids = Vec::new();
    let mut scratch = Vec::new();
    let mut id = 0u64;
    for (i, &(is_enq, flow, size)) in ops.iter().enumerate() {
        let now = SimTime::from_millis(i as u64);
        if is_enq {
            let p = pkt(id, flow as u32 % 8, 64 + size % 1437);
            id += 1;
            if q.enqueue(p, now).is_ok() {
                accepted += 1;
            }
        } else {
            scratch.clear();
            if let Some(p) = q.dequeue(now, &mut scratch) {
                delivered += 1;
                out_ids.push(p.pkt.0 as u64);
            }
            aqm_dropped += scratch.len() as u64;
        }
    }
    let accounted = delivered + q.len_pkts() as u64 + aqm_dropped;
    (accepted, accounted, aqm_dropped, out_ids)
}

/// Like [`churn`], but every packet is ECN-capable (ECT). Returns
/// (accepted, accounted, aqm-dropped, CE-marked deliveries, delivered ids).
/// A conforming AQM CE-marks ECT packets instead of dropping them, so the
/// conservation identity must close with `aqm_dropped == 0` and every
/// would-be drop surfacing as a delivered CE-marked packet.
fn churn_ect(q: &mut dyn Queue, ops: &[(bool, u16, u64)]) -> (u64, u64, u64, u64, Vec<u64>) {
    let mut accepted = 0u64;
    let mut delivered = 0u64;
    let mut aqm_dropped = 0u64;
    let mut marked = 0u64;
    let mut out_ids = Vec::new();
    let mut scratch = Vec::new();
    let mut id = 0u64;
    for (i, &(is_enq, flow, size)) in ops.iter().enumerate() {
        let now = SimTime::from_millis(i as u64);
        if is_enq {
            let p = QueuedPkt {
                ecn: Ecn::Ect,
                ..pkt(id, flow as u32 % 8, 64 + size % 1437)
            };
            id += 1;
            if q.enqueue(p, now).is_ok() {
                accepted += 1;
            }
        } else {
            scratch.clear();
            if let Some(p) = q.dequeue(now, &mut scratch) {
                delivered += 1;
                if p.ecn == Ecn::Ce {
                    marked += 1;
                }
                out_ids.push(p.pkt.0 as u64);
            }
            aqm_dropped += scratch.len() as u64;
        }
    }
    let accounted = delivered + q.len_pkts() as u64 + aqm_dropped;
    (accepted, accounted, aqm_dropped, marked, out_ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drop-tail preserves FIFO order and conserves packets.
    #[test]
    fn drop_tail_fifo_and_conservation(
        ops in prop::collection::vec((any::<bool>(), any::<u16>(), 0u64..2000), 1..500),
        limit in 2_000u64..100_000,
    ) {
        let mut q = DropTailQueue::bytes(Bytes(limit));
        let (accepted, accounted, _dropped, out_ids) = churn(&mut q, &ops);
        // Every accepted packet is either delivered or still queued.
        prop_assert_eq!(accepted, accounted);
        // FIFO: output ids strictly increasing.
        prop_assert!(out_ids.windows(2).all(|w| w[0] < w[1]));
        // Byte limit never exceeded.
        prop_assert!(q.len_bytes().as_u64() <= limit);
    }

    /// CoDel conserves packets (delivered + dropped + queued = accepted)
    /// and respects its byte limit.
    #[test]
    fn codel_conservation(
        ops in prop::collection::vec((any::<bool>(), any::<u16>(), 0u64..2000), 1..500),
    ) {
        let spec = QueueSpec::codel_default(Bytes(30_000));
        let mut q = spec.build();
        let (accepted, accounted, _, out_ids) = churn(&mut q, &ops);
        prop_assert_eq!(accepted, accounted);
        prop_assert!(q.len_bytes().as_u64() <= 30_000);
        prop_assert!(out_ids.windows(2).all(|w| w[0] < w[1]), "CoDel must stay FIFO");
    }

    /// FQ-CoDel conserves packets and bytes across random multi-flow churn.
    #[test]
    fn fq_codel_conservation(
        ops in prop::collection::vec((any::<bool>(), any::<u16>(), 0u64..2000), 1..500),
    ) {
        let spec = QueueSpec::fq_codel_default(Bytes(50_000));
        let mut q = spec.build();
        let (accepted, accounted, _, _) = churn(&mut q, &ops);
        prop_assert_eq!(accepted, accounted);
        prop_assert!(q.len_bytes().as_u64() <= 50_000);
        // Draining fully zeroes the accounting.
        let mut scratch = Vec::new();
        while q.dequeue(SimTime::from_secs(10_000), &mut scratch).is_some() {}
        prop_assert_eq!(q.len_pkts(), 0);
        prop_assert_eq!(q.len_bytes().as_u64(), 0);
    }

    /// With all-ECT traffic CoDel never drops on dequeue: the conservation
    /// identity closes with zero AQM drops, every would-be drop arriving as
    /// a delivered CE-marked packet, and FIFO order intact.
    #[test]
    fn codel_ecn_marks_conserve(
        ops in prop::collection::vec((any::<bool>(), any::<u16>(), 0u64..2000), 1..500),
    ) {
        let spec = QueueSpec::codel_default(Bytes(30_000));
        let mut q = spec.build();
        let (accepted, accounted, aqm_dropped, _marked, out_ids) = churn_ect(&mut q, &ops);
        prop_assert_eq!(accepted, accounted);
        prop_assert_eq!(aqm_dropped, 0, "ECT traffic must be marked, not dropped");
        prop_assert!(out_ids.windows(2).all(|w| w[0] < w[1]), "marking must stay FIFO");
        prop_assert!(q.len_bytes().as_u64() <= 30_000);
    }

    /// FQ-CoDel under all-ECT traffic: no AQM drops, conservation closes,
    /// and a full drain zeroes the aggregate accounting.
    #[test]
    fn fq_codel_ecn_marks_conserve(
        ops in prop::collection::vec((any::<bool>(), any::<u16>(), 0u64..2000), 1..500),
    ) {
        let spec = QueueSpec::fq_codel_default(Bytes(50_000));
        let mut q = spec.build();
        let (accepted, accounted, aqm_dropped, _marked, _) = churn_ect(&mut q, &ops);
        prop_assert_eq!(accepted, accounted);
        prop_assert_eq!(aqm_dropped, 0, "ECT traffic must be marked, not dropped");
        prop_assert!(q.len_bytes().as_u64() <= 50_000);
        let mut scratch = Vec::new();
        while q.dequeue(SimTime::from_secs(10_000), &mut scratch).is_some() {}
        prop_assert_eq!(q.len_pkts(), 0);
        prop_assert_eq!(q.len_bytes().as_u64(), 0);
    }

    /// FQ-CoDel delivers every flow that has backlog within a bounded
    /// number of dequeues (no starvation).
    #[test]
    fn fq_codel_no_starvation(heavy in 10u64..60, flows in 2u32..6) {
        let spec = QueueSpec::fq_codel_default(Bytes(1_000_000));
        let mut q = spec.build();
        let now = SimTime::ZERO;
        let mut id = 0;
        // One heavy flow, plus (flows-1) light flows with one packet each.
        for _ in 0..heavy {
            q.enqueue(pkt(id, 0, 1000), now).expect("fits");
            id += 1;
        }
        for fl in 1..flows {
            q.enqueue(pkt(id, fl, 1000), now).expect("fits");
            id += 1;
        }
        let mut scratch = Vec::new();
        let mut seen = std::collections::HashSet::new();
        // Within flows × 3 dequeues every flow must appear at least once.
        for _ in 0..(flows as usize * 3) {
            if let Some(p) = q.dequeue(now, &mut scratch) {
                seen.insert(p.flow.0);
            }
        }
        for fl in 0..flows {
            prop_assert!(seen.contains(&fl), "flow {} starved (saw {:?})", fl, seen);
        }
    }
}
