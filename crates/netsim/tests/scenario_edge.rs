//! Edge-case semantics of [`ScenarioSpec`] (documented in the module
//! docs of `scenario.rs`) and validity of chaos-generated schedules.
//!
//! Three edge cases get pinned semantics: zero-duration windows are
//! no-ops, overlapping windows are last-writer-wins (the first close
//! resets the value), and steps scheduled in the past clamp to "now".
//! Inputs with *no* sane semantics — probabilities outside [0, 1], a
//! zero shaped rate — are rejected as structured errors before anything
//! is scheduled, instead of tripping a link-layer assertion mid-run.

use gsrepro_netsim::apps::{CbrSource, SinkAgent};
use gsrepro_netsim::{
    FlowId, LinkId, LinkProfile, LinkSpec, NetworkBuilder, ScenarioGen, ScenarioSpec, Sim,
};
use gsrepro_simcore::rng::rng_for;
use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimError, SimTime};
use proptest::prelude::*;

/// 12 Mb/s CBR into a 10 Mb/s bottleneck: a standing queue and steady
/// deliveries, so every disturbance has traffic to act on.
fn overloaded_sim(seed: u64) -> (Sim, FlowId, LinkId) {
    let mut b = NetworkBuilder::new(seed);
    let s = b.add_node("s");
    let c = b.add_node("c");
    let l = b.link(
        s,
        c,
        LinkSpec::bottleneck(
            BitRate::from_mbps(10),
            Bytes(50_000),
            SimDuration::from_millis(2),
        ),
    );
    b.link(c, s, LinkSpec::lan(SimDuration::from_millis(2)));
    let f = b.flow("x");
    let sink = b.add_agent(c, Box::new(SinkAgent::new()));
    b.add_agent(
        s,
        Box::new(CbrSource::new(
            f,
            c,
            sink,
            BitRate::from_mbps(12),
            Bytes(1200),
        )),
    );
    (b.build(), f, l)
}

#[test]
fn zero_duration_outage_is_a_no_op() {
    let (mut plain, f, _) = overloaded_sim(7);
    plain.run_until(SimTime::from_secs(5));
    let baseline = plain.net.monitor().stats(f).delivered_pkts;

    let (mut sim, f, l) = overloaded_sim(7);
    sim.apply_scenario(&ScenarioSpec::new().outage(
        SimTime::from_secs(2),
        SimTime::from_secs(2),
        l,
    ));
    sim.run_until(SimTime::from_secs(5));
    let st = sim.net.monitor().stats(f);
    // Down and up apply back-to-back at the same instant, in FIFO order:
    // no packet can observe the outage, so deliveries are unchanged.
    assert_eq!(st.delivered_pkts, baseline);
    assert_eq!(st.link_drop_pkts, 0, "zero-duration outage dropped packets");
}

#[test]
fn overlapping_loss_windows_are_last_writer_wins() {
    // Windows [1 s, 3 s] and [2 s, 5 s], both total loss. Every step sets
    // an absolute probability, so the first window's close (p = 0 at 3 s)
    // wins even though the second window claims to be open until 5 s.
    let (mut sim, f, l) = overloaded_sim(11);
    sim.apply_scenario(
        &ScenarioSpec::new()
            .loss_window(SimTime::from_secs(1), SimTime::from_secs(3), l, 1.0)
            .loss_window(SimTime::from_secs(2), SimTime::from_secs(5), l, 1.0),
    );
    sim.run_until(SimTime::from_secs(6));
    let st = sim.net.monitor().stats(f);
    // Inside the union of the opens (past the in-flight edge bin),
    // everything is lost...
    let lost_window = st.delivered_bins.mean_over(
        SimTime::from_millis(1_500),
        SimTime::from_millis(2_900),
        1.0,
    );
    assert_eq!(lost_window, 0.0, "total-loss window leaked deliveries");
    // ...but after the first close the link must deliver again, well
    // before the second window's close at 5 s.
    let revived = st.delivered_bins.mean_over(
        SimTime::from_millis(3_200),
        SimTime::from_millis(4_800),
        1.0,
    );
    assert!(
        revived > 0.0,
        "first window's close must reset loss to 0 (last-writer-wins)"
    );
}

#[test]
fn past_steps_clamp_to_now_and_are_counted() {
    let (mut sim, f, l) = overloaded_sim(13);
    sim.run_until(SimTime::from_secs(5));
    assert_eq!(sim.past_clamps(), 0);
    // A step "at 1 s" applied when the clock reads 5 s: clamped to now.
    sim.apply_scenario(&ScenarioSpec::new().rate(SimTime::from_secs(1), l, BitRate::from_mbps(2)));
    sim.run_until(SimTime::from_secs(8));
    assert!(sim.past_clamps() >= 1, "past schedule was not counted");
    assert_eq!(
        sim.net.link(l).rate(),
        Some(BitRate::from_mbps(2)),
        "clamped step must still apply"
    );
    // The crash throttles deliveries after the clamp: evidence it took
    // effect at ~5 s rather than being silently dropped.
    let st = sim.net.monitor().stats(f);
    let before = st
        .delivered_bins
        .mean_over(SimTime::from_secs(3), SimTime::from_secs(5), 1.0);
    let after = st
        .delivered_bins
        .mean_over(SimTime::from_secs(6), SimTime::from_secs(8), 1.0);
    assert!(
        after < before / 2.0,
        "2 Mb/s crash must throttle deliveries"
    );
}

#[test]
fn invalid_probabilities_and_rates_are_rejected_structurally() {
    let l = LinkId(0);
    for (spec, what) in [
        (
            ScenarioSpec::new().loss_window(SimTime::ZERO, SimTime::from_secs(1), l, 1.5),
            "loss probability 1.5",
        ),
        (
            ScenarioSpec::new().loss_window(SimTime::ZERO, SimTime::from_secs(1), l, f64::NAN),
            "NaN loss probability",
        ),
        (
            ScenarioSpec::new().duplication_window(SimTime::ZERO, SimTime::from_secs(1), l, -0.1),
            "negative duplication probability",
        ),
        (
            ScenarioSpec::new().rate(SimTime::from_secs(1), l, BitRate::ZERO),
            "zero shaped rate",
        ),
    ] {
        let err = spec.validate().expect_err(what);
        assert!(matches!(err, SimError::InvalidScenario { .. }), "{what}");
        // The Sim-level entry point refuses before scheduling anything.
        let (mut sim, _, _) = overloaded_sim(1);
        assert!(sim.try_apply_scenario(&spec).is_err(), "{what}");
    }
}

#[test]
#[should_panic(expected = "ends before it starts")]
fn inverted_windows_are_rejected_at_build_time() {
    let _ = ScenarioSpec::new().outage(SimTime::from_secs(2), SimTime::from_secs(1), LinkId(0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chaos-generated schedules are always valid `ScenarioSpec`s: every
    /// sample passes `validate()`, stays inside the horizon, respects
    /// per-link capabilities (no rate/queue steps on unshaped links),
    /// and reproduces bit-identically from its seed.
    #[test]
    fn generated_schedules_are_always_valid(
        seed in 0u64..10_000,
        horizon_secs in 1u64..60,
        max_disturbances in 1usize..12,
    ) {
        let gen = ScenarioGen {
            horizon: SimTime::from_secs(horizon_secs),
            max_disturbances,
            links: vec![
                LinkProfile::shaped(LinkId(4), BitRate::from_mbps(25), Bytes(100_000)),
                LinkProfile::plain(LinkId(0)),
            ],
        };
        let spec = gen.sample(&mut rng_for(seed, 0));
        prop_assert!(spec.validate().is_ok(), "invalid spec from seed {seed}");
        prop_assert!(!spec.steps.is_empty());
        prop_assert!(spec.steps.len() <= 2 * max_disturbances);
        for st in &spec.steps {
            prop_assert!(st.at < SimTime::from_secs(horizon_secs).max(SimTime::from_nanos(2 << 16)));
            if st.link == LinkId(0) {
                prop_assert!(
                    !matches!(
                        st.action,
                        gsrepro_netsim::ScenarioAction::Rate(_)
                            | gsrepro_netsim::ScenarioAction::QueueLimit(_)
                    ),
                    "unshaped link got a shaped-only action"
                );
            }
        }
        // Same seed, same schedule — the repro contract.
        prop_assert_eq!(gen.sample(&mut rng_for(seed, 0)), spec);
    }
}
