//! Property-based conservation tests: randomized scenario schedules run
//! against a checks-enabled sim, so the runtime invariant oracles — token
//! conservation across re-rates, queue byte accounting across limit
//! changes, packet conservation end to end — are exercised on inputs no
//! hand-written fixture would pick. A violated oracle panics mid-run, so
//! each property's "assertion" is mostly that the run completes at all;
//! the explicit asserts then confirm the oracles actually gathered
//! evidence and the endpoint accounting closes.

use gsrepro_netsim::apps::{CbrSource, SinkAgent};
use gsrepro_netsim::{FlowId, LinkSpec, NetworkBuilder, ScenarioSpec, Sim};
use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimTime};
use proptest::prelude::*;

const QUEUE_LIMIT: u64 = 50_000;

/// An overloaded two-node bottleneck (12 Mb/s offered into 10 Mb/s
/// shaped) with the invariant oracles armed — every scenario step lands
/// on a link with banked tokens and standing queue.
fn checked_sim(seed: u64, scenario: &ScenarioSpec) -> (Sim, FlowId) {
    let mut b = NetworkBuilder::new(seed).checks(true);
    let s = b.add_node("s");
    let c = b.add_node("c");
    let l = b.link(
        s,
        c,
        LinkSpec::bottleneck(
            BitRate::from_mbps(10),
            Bytes(QUEUE_LIMIT),
            SimDuration::from_millis(2),
        ),
    );
    b.link(c, s, LinkSpec::lan(SimDuration::from_millis(2)));
    let f = b.flow("x");
    let sink = b.add_agent(c, Box::new(SinkAgent::new()));
    b.add_agent(
        s,
        Box::new(CbrSource::new(
            f,
            c,
            sink,
            BitRate::from_mbps(12),
            Bytes(1200),
        )),
    );
    // The builder hands out LinkId(0) for the first link; rebuild the
    // scenario against it rather than threading the id out of the closure.
    let mut sim = b.build();
    let spec = ScenarioSpec {
        steps: scenario
            .steps
            .iter()
            .map(|st| gsrepro_netsim::ScenarioStep { link: l, ..*st })
            .collect(),
    };
    sim.apply_scenario(&spec);
    (sim, f)
}

/// Run to 10 s and return the endpoint digest used by the properties.
fn digest(seed: u64, scenario: &ScenarioSpec) -> (u64, u64, u64, u64, u64) {
    let (mut sim, f) = checked_sim(seed, scenario);
    sim.run_until(SimTime::from_secs(10));
    let st = sim.net.monitor().stats(f);
    let performed = sim.net.checks().performed();
    (
        st.sent_pkts,
        st.delivered_pkts,
        st.dropped_pkts(),
        sim.events_processed(),
        performed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Token-bucket credit is conserved across arbitrary rate re-shapes:
    /// a random schedule of rate steps (including repeats at the same
    /// instant) never forges or destroys tokens — the token-conservation
    /// oracle audits every step and panics on the first discrepancy.
    #[test]
    fn rate_steps_conserve_tokens(
        steps in prop::collection::vec((100u64..9_000, 1u64..30), 1..8),
        seed in 0u64..1_000,
    ) {
        let mut spec = ScenarioSpec::new();
        for &(at_ms, mbps) in &steps {
            spec = spec.rate(
                SimTime::from_millis(at_ms),
                gsrepro_netsim::LinkId(0),
                BitRate::from_mbps(mbps),
            );
        }
        let (sent, delivered, dropped, events, performed) = digest(seed, &spec);
        // The oracles ran (clock checks alone are ~1/event) and the run
        // did real work through every re-rate.
        prop_assert!(performed > 1_000, "only {performed} checks ran");
        prop_assert!(events > 0);
        prop_assert!(delivered > 0, "no packets survived the schedule");
        // Endpoint conservation: nothing materializes from nowhere. The
        // strict identity (with in-flight) is the oracle's job per event;
        // at the endpoint the inequality must close without duplication.
        prop_assert!(
            delivered + dropped <= sent,
            "delivered {delivered} + dropped {dropped} > sent {sent}"
        );
        // Determinism: the same schedule and seed replays bit-identically.
        prop_assert_eq!(digest(seed, &spec), (sent, delivered, dropped, events, performed));
    }

    /// Queue-limit shrinks evict newest-first without losing track of a
    /// byte: random shrink/restore schedules keep the queue-bound oracle
    /// (len_bytes ≤ limit, per event) and the packet-conservation oracle
    /// (evictions counted as queue drops) satisfied throughout.
    #[test]
    fn queue_limit_steps_conserve_bytes(
        steps in prop::collection::vec((100u64..9_000, 2_000u64..60_000), 1..8),
        seed in 0u64..1_000,
    ) {
        let mut spec = ScenarioSpec::new();
        for &(at_ms, limit) in &steps {
            spec = spec.queue_limit(
                SimTime::from_millis(at_ms),
                gsrepro_netsim::LinkId(0),
                Bytes(limit),
            );
        }
        let (sent, delivered, dropped, _events, performed) = digest(seed, &spec);
        prop_assert!(performed > 1_000, "only {performed} checks ran");
        // 12 Mb/s into 10 Mb/s keeps a standing queue, so shrinks below
        // the standing depth evict and overload drops occur regardless.
        prop_assert!(dropped > 0, "overloaded bottleneck never dropped");
        prop_assert!(
            delivered + dropped <= sent,
            "delivered {delivered} + dropped {dropped} > sent {sent}"
        );
    }
}

/// End-to-end regression for the FQ-CoDel `set_byte_limit` aggregate fix:
/// a scenario queue-limit shrink on a multi-flow FQ-CoDel bottleneck runs
/// with the oracles armed. The queue-bound oracle audits
/// `len_bytes ≤ limit` on every event, so a discipline that hands each
/// sub-flow the full shared limit (the old bug: two flows could hold
/// 2 × limit in aggregate after a shrink) panics mid-run instead of
/// silently over-buffering.
#[test]
fn fq_codel_scenario_queue_limit_shrink_stays_checked() {
    let mut b = NetworkBuilder::new(11).checks(true);
    let s = b.add_node("s");
    let c = b.add_node("c");
    let mut spec = LinkSpec::bottleneck(
        BitRate::from_mbps(10),
        Bytes(QUEUE_LIMIT),
        SimDuration::from_millis(2),
    );
    spec.queue = gsrepro_netsim::QueueSpec::fq_codel_default(Bytes(QUEUE_LIMIT));
    let l = b.link(s, c, spec);
    b.link(c, s, LinkSpec::lan(SimDuration::from_millis(2)));
    // Two competing flows so the shared limit is genuinely split across
    // sub-queues when the shrink lands.
    let sink = b.add_agent(c, Box::new(SinkAgent::new()));
    let f1 = b.flow("a");
    let f2 = b.flow("b");
    b.add_agent(
        s,
        Box::new(CbrSource::new(
            f1,
            c,
            sink,
            BitRate::from_mbps(7),
            Bytes(1200),
        )),
    );
    b.add_agent(
        s,
        Box::new(CbrSource::new(
            f2,
            c,
            sink,
            BitRate::from_mbps(7),
            Bytes(1200),
        )),
    );
    let mut sim = b.build();
    // Shrink far below the standing backlog mid-run, then restore: the
    // shrink must evict down to the new aggregate and admission must obey
    // it until the restore.
    sim.apply_scenario(
        &ScenarioSpec::new()
            .queue_limit(SimTime::from_secs(3), l, Bytes(4_000))
            .queue_limit(SimTime::from_secs(6), l, Bytes(QUEUE_LIMIT)),
    );
    sim.run_until(SimTime::from_secs(10));
    let performed = sim.net.checks().performed();
    assert!(performed > 1_000, "only {performed} checks ran");
    let (s1, s2) = (sim.net.monitor().stats(f1), sim.net.monitor().stats(f2));
    assert!(s1.delivered_pkts > 0 && s2.delivered_pkts > 0);
    // 14 Mb/s into 10 Mb/s with a 4 kB dip guarantees queue drops — the
    // conservation oracle has real evictions to account for.
    assert!(s1.queue_drop_pkts + s2.queue_drop_pkts > 0);
    for st in [&s1, &s2] {
        assert!(
            st.delivered_pkts + st.dropped_pkts() <= st.sent_pkts,
            "endpoint conservation must close"
        );
    }
}
