//! Property-based conservation tests: randomized scenario schedules run
//! against a checks-enabled sim, so the runtime invariant oracles — token
//! conservation across re-rates, queue byte accounting across limit
//! changes, packet conservation end to end — are exercised on inputs no
//! hand-written fixture would pick. A violated oracle panics mid-run, so
//! each property's "assertion" is mostly that the run completes at all;
//! the explicit asserts then confirm the oracles actually gathered
//! evidence and the endpoint accounting closes.

use gsrepro_netsim::apps::{CbrSource, SinkAgent};
use gsrepro_netsim::{FlowId, LinkSpec, NetworkBuilder, ScenarioSpec, Sim};
use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimTime};
use proptest::prelude::*;

const QUEUE_LIMIT: u64 = 50_000;

/// An overloaded two-node bottleneck (12 Mb/s offered into 10 Mb/s
/// shaped) with the invariant oracles armed — every scenario step lands
/// on a link with banked tokens and standing queue.
fn checked_sim(seed: u64, scenario: &ScenarioSpec) -> (Sim, FlowId) {
    let mut b = NetworkBuilder::new(seed).checks(true);
    let s = b.add_node("s");
    let c = b.add_node("c");
    let l = b.link(
        s,
        c,
        LinkSpec::bottleneck(
            BitRate::from_mbps(10),
            Bytes(QUEUE_LIMIT),
            SimDuration::from_millis(2),
        ),
    );
    b.link(c, s, LinkSpec::lan(SimDuration::from_millis(2)));
    let f = b.flow("x");
    let sink = b.add_agent(c, Box::new(SinkAgent::new()));
    b.add_agent(
        s,
        Box::new(CbrSource::new(
            f,
            c,
            sink,
            BitRate::from_mbps(12),
            Bytes(1200),
        )),
    );
    // The builder hands out LinkId(0) for the first link; rebuild the
    // scenario against it rather than threading the id out of the closure.
    let mut sim = b.build();
    let spec = ScenarioSpec {
        steps: scenario
            .steps
            .iter()
            .map(|st| gsrepro_netsim::ScenarioStep { link: l, ..*st })
            .collect(),
    };
    sim.apply_scenario(&spec);
    (sim, f)
}

/// Run to 10 s and return the endpoint digest used by the properties.
fn digest(seed: u64, scenario: &ScenarioSpec) -> (u64, u64, u64, u64, u64) {
    let (mut sim, f) = checked_sim(seed, scenario);
    sim.run_until(SimTime::from_secs(10));
    let st = sim.net.monitor().stats(f);
    let performed = sim.net.checks().performed();
    (
        st.sent_pkts,
        st.delivered_pkts,
        st.dropped_pkts(),
        sim.events_processed(),
        performed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Token-bucket credit is conserved across arbitrary rate re-shapes:
    /// a random schedule of rate steps (including repeats at the same
    /// instant) never forges or destroys tokens — the token-conservation
    /// oracle audits every step and panics on the first discrepancy.
    #[test]
    fn rate_steps_conserve_tokens(
        steps in prop::collection::vec((100u64..9_000, 1u64..30), 1..8),
        seed in 0u64..1_000,
    ) {
        let mut spec = ScenarioSpec::new();
        for &(at_ms, mbps) in &steps {
            spec = spec.rate(
                SimTime::from_millis(at_ms),
                gsrepro_netsim::LinkId(0),
                BitRate::from_mbps(mbps),
            );
        }
        let (sent, delivered, dropped, events, performed) = digest(seed, &spec);
        // The oracles ran (clock checks alone are ~1/event) and the run
        // did real work through every re-rate.
        prop_assert!(performed > 1_000, "only {performed} checks ran");
        prop_assert!(events > 0);
        prop_assert!(delivered > 0, "no packets survived the schedule");
        // Endpoint conservation: nothing materializes from nowhere. The
        // strict identity (with in-flight) is the oracle's job per event;
        // at the endpoint the inequality must close without duplication.
        prop_assert!(
            delivered + dropped <= sent,
            "delivered {delivered} + dropped {dropped} > sent {sent}"
        );
        // Determinism: the same schedule and seed replays bit-identically.
        prop_assert_eq!(digest(seed, &spec), (sent, delivered, dropped, events, performed));
    }

    /// Queue-limit shrinks evict newest-first without losing track of a
    /// byte: random shrink/restore schedules keep the queue-bound oracle
    /// (len_bytes ≤ limit, per event) and the packet-conservation oracle
    /// (evictions counted as queue drops) satisfied throughout.
    #[test]
    fn queue_limit_steps_conserve_bytes(
        steps in prop::collection::vec((100u64..9_000, 2_000u64..60_000), 1..8),
        seed in 0u64..1_000,
    ) {
        let mut spec = ScenarioSpec::new();
        for &(at_ms, limit) in &steps {
            spec = spec.queue_limit(
                SimTime::from_millis(at_ms),
                gsrepro_netsim::LinkId(0),
                Bytes(limit),
            );
        }
        let (sent, delivered, dropped, _events, performed) = digest(seed, &spec);
        prop_assert!(performed > 1_000, "only {performed} checks ran");
        // 12 Mb/s into 10 Mb/s keeps a standing queue, so shrinks below
        // the standing depth evict and overload drops occur regardless.
        prop_assert!(dropped > 0, "overloaded bottleneck never dropped");
        prop_assert!(
            delivered + dropped <= sent,
            "delivered {delivered} + dropped {dropped} > sent {sent}"
        );
    }
}
