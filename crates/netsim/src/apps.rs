//! Simple built-in agents: traffic sinks and sources, and the testbed's
//! `ping` measurement pair.
//!
//! The paper runs a `ping` from the game client to the game server for the
//! whole 9-minute trace and reports mean RTT with standard deviation
//! (Tables 3 and 4). [`PingAgent`] + [`EchoAgent`] reproduce that probe:
//! one 84-byte echo request per second by default, RTT samples recorded at
//! the requester.

use gsrepro_simcore::stats::Samples;
use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimTime};

use crate::net::{Agent, AgentId, Ctx, NodeId, PacketSpec};
use crate::wire::{Ecn, FlowId, Packet, Payload, PingEcho};

/// Counts and discards everything it receives. Destination for raw traffic
/// generators.
#[derive(Default)]
pub struct SinkAgent {
    pkts: u64,
    bytes: Bytes,
}

impl SinkAgent {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packets received.
    pub fn received_pkts(&self) -> u64 {
        self.pkts
    }

    /// Bytes received.
    pub fn received_bytes(&self) -> Bytes {
        self.bytes
    }
}

impl Agent for SinkAgent {
    fn on_packet(&mut self, pkt: Packet, _ctx: &mut Ctx) {
        self.pkts += 1;
        self.bytes += pkt.size;
    }
}

/// Constant-bitrate UDP source: sends fixed-size [`Payload::Raw`] packets at
/// a fixed rate. Used for calibration tests and as background cross-traffic.
pub struct CbrSource {
    flow: FlowId,
    dst: NodeId,
    dst_agent: AgentId,
    rate: BitRate,
    pkt_size: Bytes,
    /// When to stop sending; `SimTime::MAX` = never.
    stop_at: SimTime,
    /// When to start sending.
    start_at: SimTime,
}

impl CbrSource {
    /// A source that runs for the whole simulation.
    pub fn new(
        flow: FlowId,
        dst: NodeId,
        dst_agent: AgentId,
        rate: BitRate,
        pkt_size: Bytes,
    ) -> Self {
        CbrSource {
            flow,
            dst,
            dst_agent,
            rate,
            pkt_size,
            stop_at: SimTime::MAX,
            start_at: SimTime::ZERO,
        }
    }

    /// Restrict sending to `[start, stop)`.
    pub fn active_during(mut self, start: SimTime, stop: SimTime) -> Self {
        self.start_at = start;
        self.stop_at = stop;
        self
    }

    fn interval(&self) -> SimDuration {
        self.rate.tx_time(self.pkt_size)
    }
}

impl Agent for CbrSource {
    fn on_start(&mut self, ctx: &mut Ctx) {
        let delay = self.start_at.saturating_since(ctx.now());
        ctx.set_timer(delay, 0);
    }

    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx) {
        if ctx.now() >= self.stop_at {
            return;
        }
        ctx.send(PacketSpec {
            flow: self.flow,
            dst: self.dst,
            dst_agent: self.dst_agent,
            size: self.pkt_size,
            ecn: Ecn::NotEct,
            payload: Payload::Raw,
        });
        ctx.set_timer(self.interval(), 0);
    }
}

/// Wire size of one ping packet (64-byte ICMP payload + IP header, as the
/// default `ping` sends).
pub const PING_SIZE: Bytes = Bytes(84);

/// Sends periodic echo requests and records RTT samples from the replies.
pub struct PingAgent {
    flow: FlowId,
    dst: NodeId,
    dst_agent: AgentId,
    interval: SimDuration,
    next_seq: u64,
    rtt: Samples,
    /// Reply arrival time (seconds) for each sample in `rtt`, so analysis
    /// can window samples to the paper's measurement intervals.
    rtt_times: Vec<f64>,
    sent: u64,
    received: u64,
}

impl PingAgent {
    /// Ping `dst`/`dst_agent` every `interval` (the testbed used 1 s).
    pub fn new(flow: FlowId, dst: NodeId, dst_agent: AgentId, interval: SimDuration) -> Self {
        PingAgent {
            flow,
            dst,
            dst_agent,
            interval,
            next_seq: 0,
            rtt: Samples::new(),
            rtt_times: Vec::new(),
            sent: 0,
            received: 0,
        }
    }

    /// RTT samples collected so far (milliseconds).
    pub fn rtt_samples(&self) -> &Samples {
        &self.rtt
    }

    /// All RTT samples as (reply time s, RTT ms) pairs.
    pub fn rtt_with_times(&self) -> Vec<(f64, f64)> {
        self.rtt_times
            .iter()
            .zip(self.rtt.values())
            .map(|(&t, &v)| (t, v))
            .collect()
    }

    /// RTT samples whose replies arrived within `[from, to)`.
    pub fn rtt_between(&self, from: SimTime, to: SimTime) -> Samples {
        let mut out = Samples::new();
        let (f, t) = (from.as_secs_f64(), to.as_secs_f64());
        for (i, &v) in self.rtt.values().iter().enumerate() {
            let at = self.rtt_times[i];
            if at >= f && at < t {
                out.add(v);
            }
        }
        out
    }

    /// Echo requests sent.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Echo replies received.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Fraction of probes lost.
    pub fn probe_loss(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            1.0 - self.received as f64 / self.sent as f64
        }
    }
}

impl Agent for PingAgent {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        if let Payload::Ping(echo) = pkt.payload {
            if echo.is_reply {
                self.received += 1;
                let rtt = ctx.now().saturating_since(echo.t_origin);
                self.rtt.add(rtt.as_millis_f64());
                self.rtt_times.push(ctx.now().as_secs_f64());
            }
        }
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx) {
        self.sent += 1;
        ctx.send(PacketSpec {
            flow: self.flow,
            dst: self.dst,
            dst_agent: self.dst_agent,
            size: PING_SIZE,
            ecn: Ecn::NotEct,
            payload: Payload::Ping(PingEcho {
                seq: self.next_seq,
                is_reply: false,
                t_origin: ctx.now(),
            }),
        });
        self.next_seq += 1;
        ctx.set_timer(self.interval, 0);
    }
}

/// Replies to echo requests (and ignores everything else).
pub struct EchoAgent {
    flow: FlowId,
}

impl EchoAgent {
    /// Replies are attributed to `flow` for accounting.
    pub fn new(flow: FlowId) -> Self {
        EchoAgent { flow }
    }
}

impl Agent for EchoAgent {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        if let Payload::Ping(echo) = pkt.payload {
            if !echo.is_reply {
                ctx.send(PacketSpec {
                    flow: self.flow,
                    dst: pkt.src,
                    dst_agent: pkt.dst_agent, // same agent slot convention not used; see tests
                    size: PING_SIZE,
                    ecn: Ecn::NotEct,
                    payload: Payload::Ping(PingEcho {
                        seq: echo.seq,
                        is_reply: true,
                        t_origin: echo.t_origin,
                    }),
                });
            }
        }
    }
}

/// An [`EchoAgent`] that knows the requester's agent id explicitly. Use this
/// when the requester is not at the same agent index on its node.
pub struct EchoTo {
    flow: FlowId,
    reply_to: AgentId,
}

impl EchoTo {
    /// Echo replies go to `reply_to` on the packet's source node.
    pub fn new(flow: FlowId, reply_to: AgentId) -> Self {
        EchoTo { flow, reply_to }
    }
}

impl Agent for EchoTo {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        if let Payload::Ping(echo) = pkt.payload {
            if !echo.is_reply {
                ctx.send(PacketSpec {
                    flow: self.flow,
                    dst: pkt.src,
                    dst_agent: self.reply_to,
                    size: PING_SIZE,
                    ecn: Ecn::NotEct,
                    payload: Payload::Ping(PingEcho {
                        seq: echo.seq,
                        is_reply: true,
                        t_origin: echo.t_origin,
                    }),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::net::NetworkBuilder;
    use gsrepro_simcore::SimTime;

    #[test]
    fn ping_measures_round_trip() {
        let mut b = NetworkBuilder::new(5);
        let c = b.add_node("client");
        let s = b.add_node("server");
        b.duplex(c, s, LinkSpec::lan(SimDuration::from_micros(8_250)));
        let f = b.flow("ping");
        // Agent 0 on client = pinger; agent 1 on server = echo.
        let pinger = b.add_agent(
            c,
            Box::new(PingAgent::new(f, s, AgentId(1), SimDuration::from_secs(1))),
        );
        b.add_agent(s, Box::new(EchoTo::new(f, pinger)));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(30));
        let p: &PingAgent = sim.net.agent(pinger);
        assert!(p.sent() >= 29);
        assert_eq!(p.probe_loss(), 0.0);
        // RTT = 2 x 8.25 ms = 16.5 ms, the paper's equalized path.
        assert!(
            (p.rtt_samples().mean() - 16.5).abs() < 0.01,
            "rtt {}",
            p.rtt_samples().mean()
        );
        assert!(p.rtt_samples().stddev() < 0.01);
    }

    #[test]
    fn cbr_active_window_is_respected() {
        let mut b = NetworkBuilder::new(6);
        let s = b.add_node("s");
        let c = b.add_node("c");
        b.duplex(s, c, LinkSpec::lan(SimDuration::from_millis(1)));
        let f = b.flow("x");
        let sink = b.add_agent(c, Box::new(SinkAgent::new()));
        b.add_agent(
            s,
            Box::new(
                CbrSource::new(f, c, sink, BitRate::from_mbps(1), Bytes(1000))
                    .active_during(SimTime::from_secs(2), SimTime::from_secs(4)),
            ),
        );
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(10));
        let st = sim.net.monitor().stats(f);
        // Bins before 2 s and after 4 s must be empty.
        assert_eq!(
            st.mean_goodput_mbps(SimTime::ZERO, SimTime::from_secs(2)),
            0.0
        );
        let active = st.mean_goodput_mbps(SimTime::from_secs(2), SimTime::from_secs(4));
        assert!((active - 1.0).abs() < 0.1, "active goodput {active}");
        let after = st.mean_goodput_mbps(SimTime::from_secs(5), SimTime::from_secs(10));
        assert_eq!(after, 0.0);
    }

    #[test]
    fn sink_counts_bytes() {
        let mut b = NetworkBuilder::new(7);
        let s = b.add_node("s");
        let c = b.add_node("c");
        b.duplex(s, c, LinkSpec::lan(SimDuration::from_millis(1)));
        let f = b.flow("x");
        let sink = b.add_agent(c, Box::new(SinkAgent::new()));
        b.add_agent(
            s,
            Box::new(CbrSource::new(
                f,
                c,
                sink,
                BitRate::from_kbps(80),
                Bytes(100),
            )),
        );
        let mut sim = b.build();
        // 80 kb/s with 100-B packets = 100 packets/s.
        sim.run_until(SimTime::from_secs(1));
        let sk: &SinkAgent = sim.net.agent(sink);
        assert!(sk.received_pkts() >= 99 && sk.received_pkts() <= 101);
        assert_eq!(sk.received_bytes().as_u64(), sk.received_pkts() * 100);
    }
}
