//! Bottleneck queue disciplines.
//!
//! The paper's router ran a byte-limited drop-tail queue (`tc tbf ... limit
//! <bytes>`), sized at 0.5x, 2x, or 7x the bandwidth-delay product
//! ([`DropTailQueue`]). The paper's future-work section asks how the systems
//! would behave under Active Queue Management; [`CoDelQueue`] (RFC 8289) and
//! [`FqCoDelQueue`] (RFC 8290) answer that in the `aqm_future_work` example
//! and the ablation benches.
//!
//! Queues never see full [`crate::wire::Packet`]s: packet storage lives in
//! the network's [`crate::wire::PacketPool`] and disciplines shuffle
//! [`QueuedPkt`] entries — the pool handle plus the few header fields a
//! discipline actually consults (size, flow, enqueue time, ECN codepoint).
//! That keeps every enqueue/dequeue a 32-byte move on the simulator's
//! hottest path.

use gsrepro_simcore::{Bytes, SimDuration, SimTime};
use std::collections::VecDeque;

use crate::wire::{Ecn, FlowId, PktRef};

/// What a queue holds per packet: the pool handle and the header fields
/// disciplines inspect. `Copy`, 32 bytes — moving one is four registers.
#[derive(Clone, Copy, Debug)]
pub struct QueuedPkt {
    /// Handle to the full packet in the network's pool.
    pub pkt: PktRef,
    /// Wire size (for byte limits and token accounting).
    pub size: Bytes,
    /// Flow (for FQ hashing and drop accounting).
    pub flow: FlowId,
    /// ECN codepoint, copied from the packet at enqueue. An AQM that
    /// decides to drop an [`Ecn::Ect`] entry rewrites this to [`Ecn::Ce`]
    /// and delivers it instead (RFC 3168 § 5); the network propagates the
    /// mark back into the pooled packet and accounts it.
    pub ecn: Ecn,
    /// Time this entry entered the queue it currently occupies; set by the
    /// discipline on enqueue, read by CoDel as the sojourn clock.
    pub enqueued_at: SimTime,
}

/// A buffering/drop policy for a link.
///
/// Queues never shape traffic — rate limiting is the link's token bucket —
/// they only decide what to hold and what to drop. Entries dropped at
/// enqueue are returned in `Err`; entries dropped at *dequeue* time (CoDel
/// does this) are pushed into `dropped`. The caller owns drop accounting
/// and must release each dropped entry's pool slot.
pub trait Queue {
    /// Offer an entry. `Err(item)` means it was dropped (tail drop or
    /// overflow). The discipline stamps `enqueued_at = now` on acceptance.
    fn enqueue(&mut self, item: QueuedPkt, now: SimTime) -> Result<(), QueuedPkt>;

    /// Take the next entry to transmit. AQM disciplines may drop entries
    /// here; they are appended to `dropped`.
    fn dequeue(&mut self, now: SimTime, dropped: &mut Vec<QueuedPkt>) -> Option<QueuedPkt>;

    /// Wire size of the entry `dequeue` would return, without removing it.
    /// AQM head drops may make this an over-estimate; the link only uses it
    /// to size token-bucket waits, and re-checks after the actual dequeue.
    fn peek_size(&self) -> Option<Bytes>;

    /// Current occupancy in bytes.
    fn len_bytes(&self) -> Bytes;

    /// Current occupancy in packets.
    fn len_pkts(&self) -> usize;

    /// Configured capacity in bytes, if byte-limited.
    fn capacity_bytes(&self) -> Option<Bytes>;

    /// Change the byte limit at runtime (emulating `tc qdisc change ...
    /// limit`). Overflow policy on a shrink: most-recently-queued entries
    /// are evicted first (tail drop — the packets a smaller buffer would
    /// never have admitted) until the backlog fits; evictions are appended
    /// to `dropped` and the caller owns their pool slots. A packet-limited
    /// discipline gains a byte limit alongside its packet limit.
    fn set_byte_limit(&mut self, limit: Bytes, dropped: &mut Vec<QueuedPkt>);
}

/// Declarative queue configuration, used by topology builders.
#[derive(Clone, Debug)]
pub enum QueueSpec {
    /// Byte-limited FIFO tail-drop — the paper's router configuration.
    DropTail {
        /// Maximum queued bytes (the `tbf limit`).
        limit: Bytes,
    },
    /// Packet-limited FIFO tail-drop.
    DropTailPkts {
        /// Maximum queued packets.
        limit: usize,
    },
    /// CoDel (RFC 8289) with a byte-limited backstop.
    CoDel {
        /// Hard byte limit (CoDel still needs a finite buffer).
        limit: Bytes,
        /// Sojourn-time target (RFC default 5 ms).
        target: SimDuration,
        /// Sliding interval (RFC default 100 ms).
        interval: SimDuration,
        /// Path MTU: the below-target backlog guard (RFC 8289 § 4.2 "one
        /// maximum packet's worth").
        mtu: Bytes,
    },
    /// FQ-CoDel (RFC 8290): per-flow queues with DRR and CoDel each.
    FqCoDel {
        /// Hard byte limit across all flow queues.
        limit: Bytes,
        /// CoDel target.
        target: SimDuration,
        /// CoDel interval.
        interval: SimDuration,
        /// DRR quantum (RFC default 1514 bytes).
        quantum: Bytes,
        /// Path MTU for each sub-queue's below-target guard.
        mtu: Bytes,
    },
}

/// Default path MTU for the AQM below-target guard: a full Ethernet frame,
/// matching the testbed's 1500-byte paths.
pub const DEFAULT_MTU: Bytes = Bytes(1514);

impl QueueSpec {
    /// Drop-tail with the RFC-default CoDel parameters filled in.
    pub fn codel_default(limit: Bytes) -> Self {
        QueueSpec::CoDel {
            limit,
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
            mtu: DEFAULT_MTU,
        }
    }

    /// FQ-CoDel with RFC-default parameters.
    pub fn fq_codel_default(limit: Bytes) -> Self {
        QueueSpec::FqCoDel {
            limit,
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
            quantum: Bytes(1514),
            mtu: DEFAULT_MTU,
        }
    }

    /// Override the AQM path MTU (no-op for drop-tail variants).
    pub fn with_mtu(mut self, new_mtu: Bytes) -> Self {
        match &mut self {
            QueueSpec::CoDel { mtu, .. } | QueueSpec::FqCoDel { mtu, .. } => *mtu = new_mtu,
            QueueSpec::DropTail { .. } | QueueSpec::DropTailPkts { .. } => {}
        }
        self
    }

    /// Instantiate the queue.
    pub fn build(&self) -> Discipline {
        match *self {
            QueueSpec::DropTail { limit } => Discipline::DropTail(DropTailQueue::bytes(limit)),
            QueueSpec::DropTailPkts { limit } => {
                Discipline::DropTail(DropTailQueue::packets(limit))
            }
            QueueSpec::CoDel {
                limit,
                target,
                interval,
                mtu,
            } => Discipline::CoDel(CoDelQueue::new(limit, target, interval).with_mtu(mtu)),
            QueueSpec::FqCoDel {
                limit,
                target,
                interval,
                quantum,
                mtu,
            } => Discipline::FqCoDel(
                FqCoDelQueue::new(limit, target, interval, quantum).with_mtu(mtu),
            ),
        }
    }
}

/// A concrete queue discipline, dispatched by `match` instead of vtable.
///
/// Links hold this enum rather than a `Box<dyn Queue>`: every packet pays
/// the enqueue/dequeue call, and with a closed set of disciplines a direct
/// branch (almost always predicted — a link's discipline never changes)
/// beats an indirect call the CPU cannot see through. The [`Queue`] trait
/// remains for generic test harnesses; `Discipline` implements it too.
pub enum Discipline {
    /// Byte- or packet-limited FIFO tail-drop.
    DropTail(DropTailQueue),
    /// CoDel (RFC 8289).
    CoDel(CoDelQueue),
    /// FQ-CoDel (RFC 8290).
    FqCoDel(FqCoDelQueue),
}

macro_rules! dispatch {
    ($self:ident, $q:ident => $body:expr) => {
        match $self {
            Discipline::DropTail($q) => $body,
            Discipline::CoDel($q) => $body,
            Discipline::FqCoDel($q) => $body,
        }
    };
}

impl Discipline {
    /// See [`Queue::enqueue`].
    #[inline]
    pub fn enqueue(&mut self, item: QueuedPkt, now: SimTime) -> Result<(), QueuedPkt> {
        dispatch!(self, q => q.enqueue(item, now))
    }

    /// See [`Queue::dequeue`].
    #[inline]
    pub fn dequeue(&mut self, now: SimTime, dropped: &mut Vec<QueuedPkt>) -> Option<QueuedPkt> {
        dispatch!(self, q => q.dequeue(now, dropped))
    }

    /// See [`Queue::peek_size`].
    #[inline]
    pub fn peek_size(&self) -> Option<Bytes> {
        dispatch!(self, q => q.peek_size())
    }

    /// See [`Queue::len_bytes`].
    #[inline]
    pub fn len_bytes(&self) -> Bytes {
        dispatch!(self, q => q.len_bytes())
    }

    /// See [`Queue::len_pkts`].
    #[inline]
    pub fn len_pkts(&self) -> usize {
        dispatch!(self, q => q.len_pkts())
    }

    /// See [`Queue::capacity_bytes`].
    #[inline]
    pub fn capacity_bytes(&self) -> Option<Bytes> {
        dispatch!(self, q => q.capacity_bytes())
    }

    /// See [`Queue::set_byte_limit`].
    pub fn set_byte_limit(&mut self, limit: Bytes, dropped: &mut Vec<QueuedPkt>) {
        dispatch!(self, q => q.set_byte_limit(limit, dropped))
    }
}

impl Queue for Discipline {
    fn enqueue(&mut self, item: QueuedPkt, now: SimTime) -> Result<(), QueuedPkt> {
        Discipline::enqueue(self, item, now)
    }

    fn dequeue(&mut self, now: SimTime, dropped: &mut Vec<QueuedPkt>) -> Option<QueuedPkt> {
        Discipline::dequeue(self, now, dropped)
    }

    fn peek_size(&self) -> Option<Bytes> {
        Discipline::peek_size(self)
    }

    fn len_bytes(&self) -> Bytes {
        Discipline::len_bytes(self)
    }

    fn len_pkts(&self) -> usize {
        Discipline::len_pkts(self)
    }

    fn capacity_bytes(&self) -> Option<Bytes> {
        Discipline::capacity_bytes(self)
    }

    fn set_byte_limit(&mut self, limit: Bytes, dropped: &mut Vec<QueuedPkt>) {
        Discipline::set_byte_limit(self, limit, dropped)
    }
}

// ---------------------------------------------------------------------------
// Drop-tail
// ---------------------------------------------------------------------------

/// FIFO tail-drop queue, limited by bytes (like `tbf limit`) or by packets.
///
/// Absent limits are stored as `u64::MAX` / `usize::MAX` sentinels rather
/// than `Option`s: the admission test on the per-packet hot path is then two
/// unconditional compares instead of two discriminant branches.
pub struct DropTailQueue {
    q: VecDeque<QueuedPkt>,
    bytes: Bytes,
    byte_limit: Bytes,
    pkt_limit: usize,
    byte_limited: bool,
}

impl DropTailQueue {
    /// Byte-limited drop-tail. A packet is accepted only if it fits entirely
    /// within `limit` — matching `tbf`, which drops when the backlog would
    /// exceed the configured limit.
    pub fn bytes(limit: Bytes) -> Self {
        DropTailQueue {
            q: VecDeque::new(),
            bytes: Bytes::ZERO,
            byte_limit: limit,
            pkt_limit: usize::MAX,
            byte_limited: true,
        }
    }

    /// Packet-limited drop-tail.
    pub fn packets(limit: usize) -> Self {
        DropTailQueue {
            q: VecDeque::new(),
            bytes: Bytes::ZERO,
            byte_limit: Bytes(u64::MAX),
            pkt_limit: limit,
            byte_limited: false,
        }
    }
}

impl Queue for DropTailQueue {
    fn enqueue(&mut self, mut item: QueuedPkt, now: SimTime) -> Result<(), QueuedPkt> {
        if self.bytes.as_u64().saturating_add(item.size.as_u64()) > self.byte_limit.as_u64()
            || self.q.len() >= self.pkt_limit
        {
            return Err(item);
        }
        item.enqueued_at = now;
        self.bytes += item.size;
        self.q.push_back(item);
        Ok(())
    }

    fn dequeue(&mut self, _now: SimTime, _dropped: &mut Vec<QueuedPkt>) -> Option<QueuedPkt> {
        let item = self.q.pop_front()?;
        self.bytes -= item.size;
        Some(item)
    }

    fn peek_size(&self) -> Option<Bytes> {
        self.q.front().map(|p| p.size)
    }

    fn len_bytes(&self) -> Bytes {
        self.bytes
    }

    fn len_pkts(&self) -> usize {
        self.q.len()
    }

    fn capacity_bytes(&self) -> Option<Bytes> {
        self.byte_limited.then_some(self.byte_limit)
    }

    fn set_byte_limit(&mut self, limit: Bytes, dropped: &mut Vec<QueuedPkt>) {
        self.byte_limit = limit;
        self.byte_limited = true;
        while self.bytes > limit {
            let item = self.q.pop_back().expect("backlog implies entries");
            self.bytes -= item.size;
            dropped.push(item);
        }
    }
}

// ---------------------------------------------------------------------------
// CoDel (RFC 8289)
// ---------------------------------------------------------------------------

/// Controlled-delay AQM (RFC 8289).
///
/// Tracks packet sojourn time; once sojourn exceeds `target` continuously
/// for `interval`, CoDel enters the dropping state and drops head packets at
/// intervals shrinking with the square root of the drop count. ECN-capable
/// packets ([`Ecn::Ect`]) are CE-marked and delivered instead of dropped,
/// with the control law advancing exactly as if they had been dropped
/// (RFC 8289 § 4.1, as in Linux `codel_impl.h`).
pub struct CoDelQueue {
    q: VecDeque<QueuedPkt>,
    bytes: Bytes,
    limit: Bytes,
    target: SimDuration,
    interval: SimDuration,
    /// Below-target guard: CoDel never drops while the backlog is under one
    /// maximum packet (RFC 8289 § 4.2). Configurable because the guard must
    /// track the *path's* MTU — at small MTUs a 1514-byte constant keeps the
    /// queue permanently "nearly empty" and dropping never engages.
    mtu: Bytes,

    // Control-law state, names per RFC 8289 pseudocode.
    first_above_time: Option<SimTime>,
    drop_next: SimTime,
    count: u32,
    last_count: u32,
    dropping: bool,
}

impl CoDelQueue {
    /// New CoDel queue with a hard byte limit and the given target/interval.
    /// The below-target guard defaults to [`DEFAULT_MTU`]; override with
    /// [`CoDelQueue::with_mtu`] for non-Ethernet paths.
    pub fn new(limit: Bytes, target: SimDuration, interval: SimDuration) -> Self {
        CoDelQueue {
            q: VecDeque::new(),
            bytes: Bytes::ZERO,
            limit,
            target,
            interval,
            mtu: DEFAULT_MTU,
            first_above_time: None,
            drop_next: SimTime::ZERO,
            count: 0,
            last_count: 0,
            dropping: false,
        }
    }

    /// Set the path MTU used by the below-target backlog guard.
    pub fn with_mtu(mut self, mtu: Bytes) -> Self {
        self.mtu = mtu;
        self
    }

    fn control_law(&self, t: SimTime) -> SimTime {
        // interval / sqrt(count)
        let denom = (self.count.max(1) as f64).sqrt();
        t + SimDuration::from_secs_f64(self.interval.as_secs_f64() / denom)
    }

    /// Pop the head and decide whether it should be dropped (sojourn above
    /// target). Returns `(entry, ok_to_deliver)`.
    fn do_dequeue(&mut self, now: SimTime) -> Option<(QueuedPkt, bool)> {
        let item = self.q.pop_front()?;
        self.bytes -= item.size;
        let sojourn = now.saturating_since(item.enqueued_at);
        if sojourn < self.target || self.bytes < self.mtu {
            // Went below target (or queue nearly empty): reset the clock.
            self.first_above_time = None;
            Some((item, true))
        } else {
            let fat = *self.first_above_time.get_or_insert(now + self.interval);
            Some((item, now < fat))
        }
    }
}

impl Queue for CoDelQueue {
    fn enqueue(&mut self, mut item: QueuedPkt, now: SimTime) -> Result<(), QueuedPkt> {
        if self.bytes + item.size > self.limit {
            return Err(item);
        }
        item.enqueued_at = now;
        self.bytes += item.size;
        self.q.push_back(item);
        Ok(())
    }

    fn dequeue(&mut self, now: SimTime, dropped: &mut Vec<QueuedPkt>) -> Option<QueuedPkt> {
        let (mut item, mut ok) = self.do_dequeue(now)?;

        if self.dropping {
            if ok {
                self.dropping = false;
            } else {
                while self.dropping && now >= self.drop_next {
                    self.count += 1;
                    if item.ecn == Ecn::Ect {
                        // ECN-capable: mark CE and deliver; the control law
                        // advances exactly as for a drop, so marked and
                        // dropped trajectories share the same schedule.
                        item.ecn = Ecn::Ce;
                        self.drop_next = self.control_law(self.drop_next);
                        return Some(item);
                    }
                    dropped.push(item);
                    match self.do_dequeue(now) {
                        Some((p, k)) => {
                            item = p;
                            ok = k;
                            if ok {
                                self.dropping = false;
                            } else {
                                self.drop_next = self.control_law(self.drop_next);
                            }
                        }
                        None => {
                            self.dropping = false;
                            return None;
                        }
                    }
                }
            }
        } else if !ok {
            // Enter dropping state: drop (or CE-mark) this packet.
            self.dropping = true;
            // RFC: if we recently dropped, resume from a higher count.
            let delta = self.count.saturating_sub(self.last_count);
            self.count = if delta > 1 && now.saturating_since(self.drop_next) < self.interval * 16 {
                delta
            } else {
                1
            };
            self.drop_next = self.control_law(now);
            self.last_count = self.count;
            if item.ecn == Ecn::Ect {
                item.ecn = Ecn::Ce;
            } else {
                dropped.push(item);
                let (p, _) = self.do_dequeue(now)?;
                item = p;
            }
        }
        Some(item)
    }

    fn peek_size(&self) -> Option<Bytes> {
        self.q.front().map(|p| p.size)
    }

    fn len_bytes(&self) -> Bytes {
        self.bytes
    }

    fn len_pkts(&self) -> usize {
        self.q.len()
    }

    fn capacity_bytes(&self) -> Option<Bytes> {
        Some(self.limit)
    }

    fn set_byte_limit(&mut self, limit: Bytes, dropped: &mut Vec<QueuedPkt>) {
        self.limit = limit;
        while self.bytes > limit {
            let item = self.q.pop_back().expect("backlog implies entries");
            self.bytes -= item.size;
            dropped.push(item);
        }
    }
}

// ---------------------------------------------------------------------------
// FQ-CoDel (RFC 8290)
// ---------------------------------------------------------------------------

const FQ_BUCKETS: usize = 64;

struct FqFlow {
    codel: CoDelQueue,
    deficit: i64,
}

/// Bit `b` set ⇔ bucket `b` is on the corresponding DRR list. With exactly
/// 64 buckets the membership test the dequeue loop runs per packet is one
/// AND against a register instead of two `Vec<bool>` loads.
type BucketMask = u64;

/// Flow-queuing CoDel (RFC 8290): packets are hashed by flow into one of 64
/// sub-queues, serviced by deficit round-robin with new flows prioritized,
/// each sub-queue running its own CoDel.
pub struct FqCoDelQueue {
    flows: Vec<FqFlow>,
    new_flows: VecDeque<usize>,
    old_flows: VecDeque<usize>,
    in_new: BucketMask,
    in_old: BucketMask,
    bytes: Bytes,
    limit: Bytes,
    quantum: Bytes,
    pkts: usize,
}

impl FqCoDelQueue {
    /// New FQ-CoDel queue. The shared byte limit is enforced here at
    /// admission; sub-queue CoDels get an unlimited backstop so no
    /// per-flow copy of the shared limit can drift out of sync with it
    /// (per-flow byte accounting stays purely aggregate).
    pub fn new(limit: Bytes, target: SimDuration, interval: SimDuration, quantum: Bytes) -> Self {
        let flows = (0..FQ_BUCKETS)
            .map(|_| FqFlow {
                codel: CoDelQueue::new(Bytes(u64::MAX), target, interval),
                deficit: 0,
            })
            .collect();
        FqCoDelQueue {
            flows,
            new_flows: VecDeque::new(),
            old_flows: VecDeque::new(),
            in_new: 0,
            in_old: 0,
            bytes: Bytes::ZERO,
            limit,
            quantum,
            pkts: 0,
        }
    }

    /// Set the path MTU used by every sub-queue's below-target guard.
    pub fn with_mtu(mut self, mtu: Bytes) -> Self {
        for f in &mut self.flows {
            f.codel.mtu = mtu;
        }
        self
    }

    fn bucket(flow: FlowId) -> usize {
        // Multiplicative hash; flows in the testbed are few, collisions are
        // acceptable (RFC 8290 uses a similar stochastic hash).
        (flow.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize % FQ_BUCKETS
    }
}

impl Queue for FqCoDelQueue {
    fn enqueue(&mut self, item: QueuedPkt, now: SimTime) -> Result<(), QueuedPkt> {
        if self.bytes + item.size > self.limit {
            return Err(item);
        }
        let b = Self::bucket(item.flow);
        let size = item.size;
        self.flows[b].codel.enqueue(item, now)?;
        self.bytes += size;
        self.pkts += 1;
        if (self.in_new | self.in_old) & (1 << b) == 0 {
            self.in_new |= 1 << b;
            self.flows[b].deficit = self.quantum.as_u64() as i64;
            self.new_flows.push_back(b);
        }
        Ok(())
    }

    fn dequeue(&mut self, now: SimTime, dropped: &mut Vec<QueuedPkt>) -> Option<QueuedPkt> {
        loop {
            // Pick the next flow: new list first, then old list.
            let (b, from_new) = if let Some(&b) = self.new_flows.front() {
                (b, true)
            } else if let Some(&b) = self.old_flows.front() {
                (b, false)
            } else {
                return None;
            };

            if self.flows[b].deficit <= 0 {
                // Refill and rotate to the old list.
                self.flows[b].deficit += self.quantum.as_u64() as i64;
                if from_new {
                    self.new_flows.pop_front();
                    self.in_new &= !(1 << b);
                } else {
                    self.old_flows.pop_front();
                    self.in_old &= !(1 << b);
                }
                self.old_flows.push_back(b);
                self.in_old |= 1 << b;
                continue;
            }

            let before = dropped.len();
            match self.flows[b].codel.dequeue(now, dropped) {
                Some(item) => {
                    // Account for CoDel's internal drops.
                    for d in &dropped[before..] {
                        self.bytes -= d.size;
                        self.pkts -= 1;
                    }
                    self.bytes -= item.size;
                    self.pkts -= 1;
                    self.flows[b].deficit -= item.size.as_u64() as i64;
                    return Some(item);
                }
                None => {
                    for d in &dropped[before..] {
                        self.bytes -= d.size;
                        self.pkts -= 1;
                    }
                    // Queue empty: remove from its list. A new flow that
                    // empties leaves the lists entirely (RFC: becomes old,
                    // but with no backlog removal is the common shortcut).
                    if from_new {
                        self.new_flows.pop_front();
                        self.in_new &= !(1 << b);
                    } else {
                        self.old_flows.pop_front();
                        self.in_old &= !(1 << b);
                    }
                }
            }
        }
    }

    fn peek_size(&self) -> Option<Bytes> {
        // Exact peek across DRR is intrusive; report the head of the next
        // non-empty candidate list. Links use this only to size token waits.
        for &b in self.new_flows.iter().chain(self.old_flows.iter()) {
            if let Some(s) = self.flows[b].codel.peek_size() {
                return Some(s);
            }
        }
        None
    }

    fn len_bytes(&self) -> Bytes {
        self.bytes
    }

    fn len_pkts(&self) -> usize {
        self.pkts
    }

    fn capacity_bytes(&self) -> Option<Bytes> {
        Some(self.limit)
    }

    fn set_byte_limit(&mut self, limit: Bytes, dropped: &mut Vec<QueuedPkt>) {
        // The shared limit lives only here: handing every sub-flow CoDel a
        // full copy of it (the old behaviour) let per-flow backstops shadow
        // the aggregate and drift from it across scenario steps. Admission
        // is the aggregate check in `enqueue`; sub-queues stay unlimited.
        self.limit = limit;
        while self.bytes > limit {
            // Evict from the tail of the fattest flow (RFC 8290 §4.1.2
            // drops from the biggest queue; tail-first matches the other
            // disciplines' shrink policy).
            let b = self
                .flows
                .iter()
                .enumerate()
                .max_by_key(|(_, f)| f.codel.bytes.as_u64())
                .map(|(i, _)| i)
                .expect("FQ_BUCKETS > 0");
            let item = self.flows[b]
                .codel
                .q
                .pop_back()
                .expect("fattest flow has entries while backlog > 0");
            self.flows[b].codel.bytes -= item.size;
            self.bytes -= item.size;
            self.pkts -= 1;
            dropped.push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: u32, size: u64) -> QueuedPkt {
        qpkt(0, flow, size)
    }

    /// `id` goes into the pool handle, which queues carry opaquely —
    /// handy as an identity check in FIFO tests.
    fn qpkt(id: u32, flow: u32, size: u64) -> QueuedPkt {
        QueuedPkt {
            pkt: PktRef(id),
            flow: FlowId(flow),
            size: Bytes(size),
            ecn: Ecn::NotEct,
            enqueued_at: SimTime::ZERO,
        }
    }

    fn ect_pkt(flow: u32, size: u64) -> QueuedPkt {
        QueuedPkt {
            ecn: Ecn::Ect,
            ..pkt(flow, size)
        }
    }

    #[test]
    fn drop_tail_respects_byte_limit() {
        let mut q = DropTailQueue::bytes(Bytes(3000));
        let now = SimTime::ZERO;
        assert!(q.enqueue(pkt(1, 1500), now).is_ok());
        assert!(q.enqueue(pkt(1, 1500), now).is_ok());
        // Third packet would exceed 3000 bytes.
        assert!(q.enqueue(pkt(1, 1500), now).is_err());
        assert_eq!(q.len_bytes(), Bytes(3000));
        assert_eq!(q.len_pkts(), 2);
        // Small packet still refused (3000 + 1 > 3000).
        assert!(q.enqueue(pkt(1, 1), now).is_err());
        let mut dropped = vec![];
        q.dequeue(now, &mut dropped);
        assert!(q.enqueue(pkt(1, 1500), now).is_ok());
        assert!(dropped.is_empty());
    }

    #[test]
    fn drop_tail_is_fifo() {
        let mut q = DropTailQueue::bytes(Bytes(10_000));
        for i in 0..5u32 {
            q.enqueue(qpkt(i, 1, 100), SimTime::ZERO).unwrap();
        }
        let mut dropped = vec![];
        for i in 0..5u32 {
            assert_eq!(
                q.dequeue(SimTime::ZERO, &mut dropped).unwrap().pkt,
                PktRef(i)
            );
        }
        assert!(q.dequeue(SimTime::ZERO, &mut dropped).is_none());
    }

    #[test]
    fn drop_tail_packet_limit() {
        let mut q = DropTailQueue::packets(2);
        assert!(q.enqueue(pkt(1, 1), SimTime::ZERO).is_ok());
        assert!(q.enqueue(pkt(1, 1), SimTime::ZERO).is_ok());
        assert!(q.enqueue(pkt(1, 1), SimTime::ZERO).is_err());
        assert_eq!(q.capacity_bytes(), None);
    }

    #[test]
    fn enqueue_stamps_sojourn_clock() {
        let mut q = DropTailQueue::bytes(Bytes(10_000));
        let mut item = pkt(1, 100);
        item.enqueued_at = SimTime::from_secs(99); // stale value must be overwritten
        q.enqueue(item, SimTime::from_millis(3)).unwrap();
        let mut dropped = vec![];
        let out = q.dequeue(SimTime::from_millis(3), &mut dropped).unwrap();
        assert_eq!(out.enqueued_at, SimTime::from_millis(3));
    }

    #[test]
    fn codel_passes_packets_below_target() {
        let mut q = CoDelQueue::new(
            Bytes(100_000),
            SimDuration::from_millis(5),
            SimDuration::from_millis(100),
        );
        let mut dropped = vec![];
        // Packets that sit for < 5 ms are never dropped.
        for i in 0..100 {
            let now = SimTime::from_millis(i * 10);
            q.enqueue(pkt(1, 1000), now).unwrap();
            let out = q.dequeue(now + SimDuration::from_millis(1), &mut dropped);
            assert!(out.is_some());
        }
        assert!(dropped.is_empty());
    }

    #[test]
    fn codel_drops_under_persistent_delay() {
        let mut q = CoDelQueue::new(
            Bytes(1_000_000),
            SimDuration::from_millis(5),
            SimDuration::from_millis(100),
        );
        let mut dropped = vec![];
        // Fill a standing queue, then dequeue slowly so sojourn stays high.
        let mut now;
        let mut delivered = 0;
        for step in 0..2_000u64 {
            now = SimTime::from_millis(step);
            q.enqueue(pkt(1, 1000), now).unwrap();
            if step % 2 == 0 {
                // Drain at half the arrival rate → persistent backlog.
                if q.dequeue(now, &mut dropped).is_some() {
                    delivered += 1;
                }
            }
        }
        assert!(delivered > 0);
        assert!(
            !dropped.is_empty(),
            "CoDel must drop under persistent standing queue"
        );
    }

    /// Drive a CoDel through a persistent standing queue of `size`-byte
    /// packets (arrivals at twice the drain rate), returning
    /// `(delivered, dropped, ce_marked)`.
    fn run_standing_queue(mut q: CoDelQueue, size: u64, ecn: Ecn) -> (u64, usize, u64) {
        let mut dropped = vec![];
        let mut delivered = 0u64;
        let mut marked = 0u64;
        for step in 0..2_000u64 {
            let now = SimTime::from_millis(step);
            let mut item = pkt(1, size);
            item.ecn = ecn;
            q.enqueue(item, now).unwrap();
            if step % 2 == 0 {
                if let Some(out) = q.dequeue(now, &mut dropped) {
                    delivered += 1;
                    if out.ecn == Ecn::Ce {
                        marked += 1;
                    }
                }
            }
        }
        (delivered, dropped.len(), marked)
    }

    #[test]
    fn codel_marks_ect_instead_of_dropping() {
        let mk = || {
            CoDelQueue::new(
                Bytes(1_000_000),
                SimDuration::from_millis(5),
                SimDuration::from_millis(100),
            )
        };
        let (_, drops, marks) = run_standing_queue(mk(), 1000, Ecn::NotEct);
        assert!(drops > 0, "non-ECT traffic must be dropped");
        assert_eq!(marks, 0);
        let (_, e_drops, e_marks) = run_standing_queue(mk(), 1000, Ecn::Ect);
        assert_eq!(e_drops, 0, "ECT traffic is never dropped by the AQM");
        assert!(e_marks > 0, "ECT traffic is CE-marked instead");
        // Mark-instead-of-drop keeps the control-law schedule: the signal
        // count is the same order as the drop count (marked packets are
        // delivered, so the drain pattern differs slightly).
        assert!(
            e_marks as usize >= drops / 2,
            "marks {e_marks} vs drops {drops}"
        );
    }

    #[test]
    fn codel_mtu_guard_gates_dropping_at_small_mtus() {
        // A standing queue of 300-byte packets that never exceeds ~1200 B
        // backlog: sojourn sits far above target, but the old hardcoded
        // 1514-byte guard reads the queue as "nearly empty" and dropping
        // never engages. With the guard at the path MTU, CoDel drops.
        let run = |mtu: Option<Bytes>| {
            let mut q = CoDelQueue::new(
                Bytes(100_000),
                SimDuration::from_millis(5),
                SimDuration::from_millis(100),
            );
            if let Some(m) = mtu {
                q = q.with_mtu(m);
            }
            let mut dropped = vec![];
            // Prime a 3-packet backlog, then 1-in-1-out forever: each
            // packet waits ~3 service intervals (30 ms >> 5 ms target).
            for _ in 0..3 {
                q.enqueue(pkt(1, 300), SimTime::ZERO).unwrap();
            }
            for step in 0..300u64 {
                let now = SimTime::from_millis(step * 10);
                q.enqueue(pkt(1, 300), now).unwrap();
                q.dequeue(now, &mut dropped);
            }
            dropped.len()
        };
        assert_eq!(
            run(None),
            0,
            "Ethernet-MTU guard treats a sub-1514 B backlog as empty"
        );
        assert!(
            run(Some(Bytes(300))) > 0,
            "with the configured MTU the same persistent delay must drop"
        );
    }

    #[test]
    fn fq_codel_isolates_flows() {
        let mut q = FqCoDelQueue::new(
            Bytes(1_000_000),
            SimDuration::from_millis(5),
            SimDuration::from_millis(100),
            Bytes(1514),
        );
        let now = SimTime::ZERO;
        // Flow 1 floods; flow 2 sends one packet.
        for _ in 0..50 {
            q.enqueue(pkt(1, 1000), now).unwrap();
        }
        q.enqueue(pkt(2, 1000), now).unwrap();
        let mut dropped = vec![];
        // Flow 2's packet must come out within the first few dequeues
        // (DRR round-robin), not after all 50 of flow 1's.
        let mut seen_flow2_at = None;
        for i in 0..51 {
            let p = q.dequeue(now, &mut dropped).unwrap();
            if p.flow == FlowId(2) {
                seen_flow2_at = Some(i);
                break;
            }
        }
        let pos = seen_flow2_at.expect("flow 2 packet never dequeued");
        assert!(pos <= 2, "flow 2 should be scheduled early, was at {pos}");
    }

    #[test]
    fn fq_codel_byte_accounting_with_drops() {
        let mut q = FqCoDelQueue::new(
            Bytes(1_000_000),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
            Bytes(1514),
        );
        let mut dropped = vec![];
        let mut now = SimTime::ZERO;
        for step in 0..1_000u64 {
            now = SimTime::from_millis(step);
            q.enqueue(pkt(1, 1000), now).unwrap();
            if step % 3 == 0 {
                q.dequeue(now, &mut dropped);
            }
        }
        // Drain fully; accounting must come back to exactly zero.
        while q.dequeue(now, &mut dropped).is_some() {}
        assert_eq!(q.len_bytes(), Bytes::ZERO);
        assert_eq!(q.len_pkts(), 0);
    }

    #[test]
    fn fq_codel_marks_ect_instead_of_dropping() {
        let mut q = FqCoDelQueue::new(
            Bytes(1_000_000),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
            Bytes(1514),
        );
        let mut dropped = vec![];
        let mut marked = 0u64;
        let mut now = SimTime::ZERO;
        for step in 0..1_000u64 {
            now = SimTime::from_millis(step);
            q.enqueue(ect_pkt(1, 1000), now).unwrap();
            if step % 3 == 0 {
                if let Some(out) = q.dequeue(now, &mut dropped) {
                    if out.ecn == Ecn::Ce {
                        marked += 1;
                    }
                }
            }
        }
        while let Some(out) = q.dequeue(now, &mut dropped) {
            if out.ecn == Ecn::Ce {
                marked += 1;
            }
        }
        assert_eq!(dropped.len(), 0, "ECT flood must not be AQM-dropped");
        assert!(marked > 0, "persistent delay must CE-mark ECT packets");
        assert_eq!(q.len_bytes(), Bytes::ZERO);
        assert_eq!(q.len_pkts(), 0);
    }

    #[test]
    fn fq_codel_shrink_keeps_shared_limit_aggregate() {
        // Regression for set_byte_limit handing every sub-flow the full
        // shared limit: the shared limit must live only at the aggregate,
        // shrink evictions must come from the fattest flow, and per-bucket
        // accounting must stay exact so admission after the step is still
        // governed purely by the shared limit.
        let mut q = FqCoDelQueue::new(
            Bytes(100_000),
            SimDuration::from_millis(5),
            SimDuration::from_millis(100),
            Bytes(1514),
        );
        // Flow 1 queues 8 kB, flow 2 queues 2 kB (distinct buckets).
        for i in 0..8u32 {
            q.enqueue(qpkt(i, 1, 1000), SimTime::ZERO).unwrap();
        }
        for i in 8..10u32 {
            q.enqueue(qpkt(i, 2, 1000), SimTime::ZERO).unwrap();
        }
        let mut dropped = vec![];
        q.set_byte_limit(Bytes(6000), &mut dropped);
        assert_eq!(q.capacity_bytes(), Some(Bytes(6000)));
        assert_eq!(q.len_bytes(), Bytes(6000));
        assert_eq!(q.len_pkts(), 6);
        // All four evictions come from flow 1 — the fattest — tail first.
        let evicted: Vec<u32> = dropped.iter().map(|p| p.pkt.0).collect();
        assert_eq!(evicted, vec![7, 6, 5, 4]);
        assert!(dropped.iter().all(|p| p.flow == FlowId(1)));
        // Admission headroom is the shared limit, not a per-flow copy of
        // it: flow 2 can immediately use bytes freed by flow 1's eviction
        // once the aggregate has room.
        assert!(q.enqueue(qpkt(90, 2, 1000), SimTime::ZERO).is_err());
        while q.dequeue(SimTime::ZERO, &mut dropped).is_some() {
            if q.len_bytes() + Bytes(1000) <= Bytes(6000) {
                break;
            }
        }
        assert!(q.enqueue(qpkt(91, 2, 1000), SimTime::ZERO).is_ok());
        // Aggregate accounting is exact after the step + churn.
        let mut n = q.len_pkts();
        while q.dequeue(SimTime::ZERO, &mut dropped).is_some() {
            n -= 1;
        }
        assert_eq!(n, 0);
        assert_eq!(q.len_bytes(), Bytes::ZERO);
    }

    #[test]
    fn shrink_evicts_tail_first_across_disciplines() {
        let specs = [
            QueueSpec::DropTail { limit: Bytes(5000) },
            QueueSpec::codel_default(Bytes(5000)),
            QueueSpec::fq_codel_default(Bytes(5000)),
        ];
        for spec in &specs {
            let mut q = spec.build();
            for i in 0..5u32 {
                q.enqueue(qpkt(i, 1, 1000), SimTime::ZERO).unwrap();
            }
            let mut dropped = vec![];
            q.set_byte_limit(Bytes(2500), &mut dropped);
            // 2 packets fit; the 3 most recent are evicted, newest first.
            assert_eq!(q.len_bytes(), Bytes(2000), "{spec:?}");
            assert_eq!(q.len_pkts(), 2, "{spec:?}");
            let ids: Vec<u32> = dropped.iter().map(|p| p.pkt.0).collect();
            assert_eq!(ids, vec![4, 3, 2], "{spec:?}");
            // Oldest entries survive in FIFO order.
            let out = q.dequeue(SimTime::ZERO, &mut dropped).unwrap();
            assert_eq!(out.pkt, PktRef(0), "{spec:?}");
            // A grow is drop-free and admits traffic again.
            q.set_byte_limit(Bytes(10_000), &mut dropped);
            assert!(q.enqueue(qpkt(9, 1, 4000), SimTime::ZERO).is_ok());
        }
    }

    #[test]
    fn queue_spec_builds_each_variant() {
        let specs = [
            QueueSpec::DropTail { limit: Bytes(1000) },
            QueueSpec::DropTailPkts { limit: 10 },
            QueueSpec::codel_default(Bytes(1000)),
            QueueSpec::fq_codel_default(Bytes(1000)),
        ];
        for spec in &specs {
            let mut q = spec.build();
            assert!(q.enqueue(pkt(1, 500), SimTime::ZERO).is_ok());
            assert_eq!(q.len_pkts(), 1);
            assert_eq!(q.peek_size(), Some(Bytes(500)));
        }
    }
}
