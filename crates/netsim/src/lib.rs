//! # gsrepro-netsim
//!
//! A packet-level, discrete-event network simulator — the software
//! replacement for the physical testbed of Xu & Claypool (IMC '22): a
//! Raspberry Pi router running `tc netem` (added delay) and `tbf`
//! (token-bucket rate limit with a byte-limited drop-tail queue), Ethernet
//! links, and Wireshark/ping measurement points.
//!
//! The crate provides:
//!
//! * [`wire`] — packet and payload definitions (TCP segments, media chunks,
//!   stream feedback, ping echoes),
//! * [`queue`] — buffering/drop policies: byte- or packet-limited drop-tail
//!   (what the paper's router ran), plus CoDel and FQ-CoDel for the paper's
//!   future-work AQM question,
//! * [`link`] — unidirectional links with exact integer token-bucket
//!   shaping, propagation delay, optional random loss and jitter (fault
//!   injection),
//! * [`net`] — the [`Network`] world: nodes, static shortest-path routing,
//!   [`Agent`]s (protocol endpoints) and the event loop glue,
//! * [`monitor`] — per-flow delivered/dropped/sent accounting with the
//!   paper's 0.5 s bitrate bins,
//! * [`apps`] — simple agents: ping (RTT probe), echo responder, and a
//!   constant-bitrate UDP source for tests and calibration,
//! * [`checks`] — runtime invariant oracles (packet conservation, queue
//!   bounds, token conservation, telemetry cross-checks); zero cost when
//!   disabled, structured panic on the first violation when enabled via
//!   [`net::NetworkBuilder::checks`].
//!
//! Protocol behaviour (TCP congestion control, game-stream rate adaptation)
//! lives in the `gsrepro-tcp` and `gsrepro-gamestream` crates, which
//! implement [`Agent`].

pub mod apps;
pub mod checks;
pub mod link;
pub mod monitor;
pub mod net;
pub mod queue;
pub mod scenario;
pub mod trace;
pub mod wire;

pub use link::{LinkId, LinkSpec, Shaper};
pub use monitor::{FlowStats, Monitor};
pub use net::{Agent, AgentId, Ctx, Network, NetworkBuilder, NodeId, PacketSpec, Sim};
pub use queue::{CoDelQueue, Discipline, DropTailQueue, FqCoDelQueue, Queue, QueueSpec};
pub use scenario::{LinkProfile, ScenarioAction, ScenarioGen, ScenarioSpec, ScenarioStep};
pub use trace::{Trace, TraceEvent, TraceKind};
pub use wire::{FlowId, MediaChunk, Packet, Payload, PingEcho, StreamFeedback, TcpSegment};
