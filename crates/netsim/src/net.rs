//! The network world: nodes, routing, agents, and the event-loop glue.
//!
//! A [`Network`] is a set of nodes joined by unidirectional [`Link`]s, with
//! static shortest-path routes computed at build time (the testbed topology
//! is tiny and fixed for a whole run, exactly like the paper's). Protocol
//! endpoints are [`Agent`]s bound to nodes; they receive packets and timer
//! callbacks through a [`Ctx`] that queues outgoing actions, keeping the
//! borrow graph simple and the event order deterministic.
//!
//! [`Sim`] couples a [`Network`] with a [`gsrepro_simcore::Engine`] and is
//! the type most users interact with:
//!
//! ```
//! use gsrepro_netsim::{NetworkBuilder, LinkSpec, apps};
//! use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimTime};
//!
//! let mut b = NetworkBuilder::new(42);
//! let server = b.add_node("server");
//! let client = b.add_node("client");
//! b.duplex(server, client, LinkSpec::bottleneck(
//!     BitRate::from_mbps(25), Bytes(100_000), SimDuration::from_millis(8)));
//! let flow = b.flow("cbr");
//! let sink = b.add_agent(client, Box::new(apps::SinkAgent::new()));
//! b.add_agent(server, Box::new(apps::CbrSource::new(
//!     flow, client, sink, BitRate::from_mbps(5), Bytes(1200))));
//! let mut sim = b.build();
//! sim.run_until(SimTime::from_secs(10));
//! let delivered = sim.net.monitor().stats(flow).delivered_bytes;
//! assert!(delivered.as_u64() > 0);
//! ```

use std::any::Any;

use gsrepro_simcore::checks::Checks;
use gsrepro_simcore::rng::rng_for;
use gsrepro_simcore::telemetry::{Recorder, TelemetryConfig};
use gsrepro_simcore::{BitRate, Bytes};
use gsrepro_simcore::{Engine, Scheduler, SimDuration, SimError, SimRng, SimTime, Watchdog, World};
use rand::Rng;

use crate::checks::{self, LinkAudit, NetTotals};
use crate::link::{Link, LinkId, LinkSpec};
use crate::monitor::{DropKind, Monitor};
use crate::queue::QueuedPkt;
use crate::scenario::{ScenarioAction, ScenarioSpec};
use crate::trace::{proto_tag, Trace, TraceEvent, TraceKind};
use crate::wire::{Ecn, FlowId, Packet, PacketPool, Payload, PktRef};

/// Identifies a node (host or router).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Identifies an agent (protocol endpoint) within the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AgentId(pub u32);

/// A protocol endpoint. Implemented by TCP endpoints, game-stream
/// servers/clients, ping apps, and traffic generators.
///
/// Agents are `Any` so results can be read back after a run via
/// [`Network::agent`] / [`Network::agent_mut`].
pub trait Agent: Any {
    /// Called once at t = 0 (or at agent insertion time if added late).
    fn on_start(&mut self, _ctx: &mut Ctx) {}

    /// A packet addressed to this agent arrived at its node.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx);

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx) {}
}

/// What a sending agent must specify; the network stamps the rest
/// (packet id, source node, send time).
#[derive(Clone, Debug)]
pub struct PacketSpec {
    /// Flow for accounting.
    pub flow: FlowId,
    /// Destination node.
    pub dst: NodeId,
    /// Agent at the destination to deliver to.
    pub dst_agent: AgentId,
    /// Total wire size.
    pub size: Bytes,
    /// ECN codepoint the sender stamps on the wire (RFC 3168). ECT packets
    /// are CE-markable by AQMs instead of being dropped.
    pub ecn: Ecn,
    /// Protocol content.
    pub payload: Payload,
}

enum Command {
    Send(PacketSpec),
    Timer {
        agent: AgentId,
        delay: SimDuration,
        token: u64,
    },
}

/// Handed to agents during callbacks; collects outgoing actions.
pub struct Ctx<'a> {
    now: SimTime,
    agent: AgentId,
    node: NodeId,
    rng: &'a mut SimRng,
    cmds: &'a mut Vec<Command>,
    telemetry: &'a mut Recorder,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this agent lives on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This agent's id (used as the reply-to address in payloads).
    pub fn agent_id(&self) -> AgentId {
        self.agent
    }

    /// Send a packet. It is routed and enqueued after the callback returns.
    pub fn send(&mut self, spec: PacketSpec) {
        self.cmds.push(Command::Send(spec));
    }

    /// Arrange for [`Agent::on_timer`] to fire after `delay` with `token`.
    /// Timers cannot be cancelled; agents ignore stale tokens instead.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.cmds.push(Command::Timer {
            agent: self.agent,
            delay,
            token,
        });
    }

    /// Deterministic per-network RNG (for app-level jitter).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The network's telemetry recorder (a no-op unless enabled via
    /// [`NetworkBuilder::telemetry`]). Agents record protocol-level
    /// events — cwnd updates, encoder decisions — through this handle.
    #[inline]
    pub fn telemetry(&mut self) -> &mut Recorder {
        self.telemetry
    }
}

/// Events of the network world.
pub enum NetEvent {
    /// Change a link's shaping rate at a scheduled time (`tc qdisc
    /// change` mid-run — the Carrascosa & Bellalta methodology of limiting
    /// a live stream's link).
    SetLinkRate {
        /// The link to modify.
        link: LinkId,
        /// The new rate; `None` removes shaping.
        rate: Option<BitRate>,
    },
    /// Apply one [`ScenarioAction`] to a link — the generalized live
    /// reconfiguration behind [`Sim::apply_scenario`]. Applications are
    /// recorded as `link_scenario` telemetry events.
    Scenario {
        /// The link to reconfigure.
        link: LinkId,
        /// What changes.
        action: ScenarioAction,
    },
    /// Deliver `Agent::on_start`.
    AgentStart(AgentId),
    /// Deliver `Agent::on_timer`.
    AgentTimer { agent: AgentId, token: u64 },
    /// A shaped link's token bucket may now have enough for its head packet.
    LinkWakeup(LinkId),
    /// A packet finished propagating and arrives at `node`. The packet
    /// body stays in the network's [`PacketPool`]; the event carries only
    /// the 4-byte handle, keeping scheduler entries small.
    Arrive { node: NodeId, pkt: PktRef },
}

struct Node {
    name: String,
    /// Next-hop link for each destination node, indexed by `NodeId`.
    routes: Vec<Option<LinkId>>,
}

/// The complete simulated network.
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    agents: Vec<Option<Box<dyn Agent>>>,
    agent_node: Vec<NodeId>,
    monitor: Monitor,
    trace: Option<Trace>,
    telemetry: Recorder,
    checks: Checks,
    rng: SimRng,
    /// Storage for every packet currently in flight (queued, on the wire,
    /// or scheduled to arrive). Queues, links, and events move [`PktRef`]
    /// handles; the full packet is written once on send and read once at
    /// delivery or drop.
    pool: PacketPool,
    next_pkt_id: u64,
    /// Extra packet copies minted by duplication fault injection — the one
    /// source of pool entries that is not a send, tracked so packet
    /// conservation stays an equality.
    duplicated: u64,
    cmd_buf: Vec<Command>,
    drop_buf: Vec<QueuedPkt>,
    /// Scratch for batched link drains, recycled across activations.
    deliver_buf: Vec<QueuedPkt>,
}

impl Network {
    /// Per-flow statistics.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// The packet trace, if enabled via
    /// [`NetworkBuilder::trace_capacity`].
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    fn record_trace(&mut self, at: SimTime, kind: TraceKind, pkt: &Packet) {
        if let Some(trace) = self.trace.as_mut() {
            trace.record(TraceEvent {
                at,
                kind,
                packet: pkt.id,
                flow: pkt.flow,
                size: pkt.size,
                proto: proto_tag(&pkt.payload),
            });
        }
    }

    /// The telemetry recorder (disabled unless enabled via
    /// [`NetworkBuilder::telemetry`]); read it after a run to export
    /// traces and counters.
    pub fn telemetry(&self) -> &Recorder {
        &self.telemetry
    }

    /// Mutable recorder access (e.g. to stamp run-level counters before
    /// export).
    pub fn telemetry_mut(&mut self) -> &mut Recorder {
        &mut self.telemetry
    }

    /// The invariant-oracle handle (disabled unless enabled via
    /// [`NetworkBuilder::checks`]); read it after a run to report how many
    /// oracle evaluations the run survived.
    pub fn checks(&self) -> &Checks {
        &self.checks
    }

    /// Run the full invariant audit: packet conservation, per-link queue
    /// bounds and token conservation, and the telemetry cross-check. A
    /// no-op when checks are disabled; panics with a structured report on
    /// the first violation. [`Sim::run_until`] calls this automatically at
    /// the end of every enabled run segment; tests may call it directly at
    /// any quiescent point.
    pub fn audit(&mut self, now: SimTime) {
        if !self.checks.is_enabled() {
            return;
        }
        let mut totals = NetTotals {
            duplicated: self.duplicated,
            in_flight: self.pool.len() as u64,
            ..NetTotals::default()
        };
        for (_, st) in self.monitor.flows() {
            totals.sent += st.sent_pkts;
            totals.delivered += st.delivered_pkts;
            totals.queue_drops += st.queue_drop_pkts;
            totals.link_drops += st.link_drop_pkts;
            totals.ce_marked += st.ce_marked_pkts;
        }
        checks::audit_conservation(&mut self.checks, now, &totals);
        for link in &self.links {
            let snap = LinkAudit {
                id: link.id().0,
                backlog_bytes: link.backlog().as_u64(),
                capacity_bytes: link.queue.capacity_bytes().map(|b| b.as_u64()),
                tokens_bitns: link.tokens_bitns(),
                burst_bitns: link.burst_bitns(),
            };
            checks::audit_link(&mut self.checks, now, &snap);
        }
        if let Some(tel) = self.telemetry.telemetry() {
            let counters = tel.counters();
            checks::audit_telemetry(&mut self.checks, now, &counters, &totals);
        }
    }

    /// A link, for inspecting backlog or delivery counters.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Node name (diagnostics).
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0 as usize].name
    }

    /// Downcast an agent to its concrete type to read results after a run.
    ///
    /// # Panics
    /// Panics if the agent is of a different type or currently executing.
    pub fn agent<T: Agent>(&self, id: AgentId) -> &T {
        let a = self.agents[id.0 as usize]
            .as_ref()
            .expect("agent is executing");
        (a.as_ref() as &dyn Any)
            .downcast_ref::<T>()
            .expect("agent type mismatch")
    }

    /// Mutable variant of [`Network::agent`].
    pub fn agent_mut<T: Agent>(&mut self, id: AgentId) -> &mut T {
        let a = self.agents[id.0 as usize]
            .as_mut()
            .expect("agent is executing");
        (a.as_mut() as &mut dyn Any)
            .downcast_mut::<T>()
            .expect("agent type mismatch")
    }

    fn call_agent(
        &mut self,
        id: AgentId,
        sched: &mut Scheduler<NetEvent>,
        f: impl FnOnce(&mut dyn Agent, &mut Ctx),
    ) {
        let mut agent = self.agents[id.0 as usize]
            .take()
            .expect("re-entrant agent call");
        let mut cmds = std::mem::take(&mut self.cmd_buf);
        {
            let mut ctx = Ctx {
                now: sched.now(),
                agent: id,
                node: self.agent_node[id.0 as usize],
                rng: &mut self.rng,
                cmds: &mut cmds,
                telemetry: &mut self.telemetry,
            };
            f(agent.as_mut(), &mut ctx);
        }
        self.agents[id.0 as usize] = Some(agent);
        let src_node = self.agent_node[id.0 as usize];
        for cmd in cmds.drain(..) {
            match cmd {
                Command::Send(spec) => self.send_from(src_node, spec, sched),
                Command::Timer {
                    agent,
                    delay,
                    token,
                } => {
                    sched.schedule_in(delay, NetEvent::AgentTimer { agent, token });
                }
            }
        }
        self.cmd_buf = cmds;
    }

    /// Release a dropped entry's pool slot and account for the drop.
    fn drop_pooled(&mut self, item: QueuedPkt, kind: DropKind, link: LinkId, at: SimTime) {
        self.monitor.on_dropped(item.flow, kind, at);
        match kind {
            DropKind::Queue => {
                self.telemetry
                    .queue_drop(at, item.flow.0, link.0 as u64, item.size.as_u64())
            }
            DropKind::Link => {
                self.telemetry
                    .link_drop(at, item.flow.0, link.0 as u64, item.size.as_u64())
            }
        }
        let pkt = self.pool.take(item.pkt);
        let trace_kind = match kind {
            DropKind::Queue => TraceKind::QueueDrop,
            DropKind::Link => TraceKind::LinkDrop,
        };
        self.record_trace(at, trace_kind, &pkt);
    }

    fn send_from(&mut self, src: NodeId, spec: PacketSpec, sched: &mut Scheduler<NetEvent>) {
        let pkt = Packet {
            id: self.next_pkt_id,
            flow: spec.flow,
            src,
            dst: spec.dst,
            dst_agent: spec.dst_agent,
            size: spec.size,
            sent_at: sched.now(),
            ecn: spec.ecn,
            payload: spec.payload,
        };
        self.next_pkt_id += 1;
        self.monitor.on_sent(pkt.flow, pkt.size, sched.now());
        self.record_trace(sched.now(), TraceKind::Send, &pkt);
        let dst = pkt.dst;
        let pkt = self.pool.insert(pkt);
        if dst == src {
            // Loopback: deliver through the normal arrival path. Same
            // instant → the scheduler's fast lane, no heap traffic.
            sched.schedule_now(NetEvent::Arrive { node: src, pkt });
        } else {
            self.forward(src, pkt, sched);
        }
    }

    fn forward(&mut self, at: NodeId, pkt: PktRef, sched: &mut Scheduler<NetEvent>) {
        let (dst, size, flow, ecn) = {
            let p = self.pool.get(pkt);
            (p.dst, p.size, p.flow, p.ecn)
        };
        let Some(link_id) = self.nodes[at.0 as usize].routes[dst.0 as usize] else {
            panic!(
                "no route from {} to {}",
                self.nodes[at.0 as usize].name, self.nodes[dst.0 as usize].name
            );
        };
        let now = sched.now();
        let item = QueuedPkt {
            pkt,
            size,
            flow,
            ecn,
            enqueued_at: now,
        };
        let link = &mut self.links[link_id.0 as usize];
        match link.offer(item, now) {
            Ok(()) => {
                if self.telemetry.is_enabled() {
                    let backlog = self.links[link_id.0 as usize].backlog().as_u64();
                    self.telemetry.queue_depth(now, link_id.0 as u64, backlog);
                }
                if self.checks.is_enabled() {
                    let link = &self.links[link_id.0 as usize];
                    let backlog = link.backlog().as_u64();
                    let cap = link.queue.capacity_bytes().map(|b| b.as_u64());
                    self.checks.check(
                        cap.is_none_or(|c| backlog <= c),
                        now,
                        "queue-bound",
                        || format!("link {}", link_id.0),
                        || {
                            format!(
                                "backlog {} B exceeds capacity {} B after enqueue",
                                backlog,
                                cap.unwrap_or(0)
                            )
                        },
                    );
                }
                // A pending LinkWakeup means the head packet is waiting on
                // tokens; the packet just queued sits behind it, so pumping
                // now would deliver nothing (token accrual is linear and
                // path-independent, so deferring the refill to the wakeup
                // yields a bit-identical balance). Skip the no-op pump.
                if !self.links[link_id.0 as usize].wakeup_scheduled {
                    self.pump_link(link_id, sched)
                }
            }
            Err(dropped) => self.drop_pooled(dropped, DropKind::Queue, link_id, now),
        }
    }

    /// Apply one scenario action to a link, record it, account any
    /// evicted packets, and pump the link so the change takes effect at
    /// this exact instant.
    fn apply_scenario_action(
        &mut self,
        id: LinkId,
        action: ScenarioAction,
        sched: &mut Scheduler<NetEvent>,
    ) {
        let now = sched.now();
        self.telemetry
            .link_scenario(now, id.0 as u64, action.wire_code());
        let link = &mut self.links[id.0 as usize];
        match action {
            ScenarioAction::Rate(rate) => link.set_rate(rate, now),
            ScenarioAction::Delay(d) => link.set_delay(d),
            ScenarioAction::Loss(p) => link.set_loss_prob(p),
            ScenarioAction::Duplication(p) => link.set_dup_prob(p),
            ScenarioAction::Up(up) => link.set_up(up, now),
            ScenarioAction::QueueLimit(limit) => {
                let mut dropped = std::mem::take(&mut self.drop_buf);
                link.set_queue_limit(limit, &mut dropped);
                for d in dropped.drain(..) {
                    self.drop_pooled(d, DropKind::Queue, id, now);
                }
                self.drop_buf = dropped;
            }
        }
        if self.checks.is_enabled() {
            let link = &self.links[id.0 as usize];
            let (tokens, burst) = (link.tokens_bitns(), link.burst_bitns());
            let backlog = link.backlog().as_u64();
            let cap = link.queue.capacity_bytes().map(|b| b.as_u64());
            self.checks.check(
                tokens <= burst,
                now,
                "token-conservation",
                || format!("link {}", id.0),
                || {
                    format!(
                        "bucket holds {tokens} bit-ns, burst is {burst} bit-ns \
                         after scenario step"
                    )
                },
            );
            self.checks.check(
                cap.is_none_or(|c| backlog <= c),
                now,
                "queue-bound",
                || format!("link {}", id.0),
                || {
                    format!(
                        "backlog {} B exceeds capacity {} B after scenario step",
                        backlog,
                        cap.unwrap_or(0)
                    )
                },
            );
        }
        self.pump_link(id, sched);
    }

    fn pump_link(&mut self, id: LinkId, sched: &mut Scheduler<NetEvent>) {
        let mut dropped = std::mem::take(&mut self.drop_buf);
        let mut out = std::mem::take(&mut self.deliver_buf);
        let now = sched.now();

        // One activation drains everything the token bank covers; the
        // post-drain processing below is per packet and identical in order
        // and randomness to draining one packet per activation.
        let link = &mut self.links[id.0 as usize];
        let wait = link.service_batch(now, usize::MAX, &mut out, &mut dropped);
        let to = link.to();
        let base = link.delay();
        let jitter = link.jitter;
        let loss = link.loss_prob;
        let dup = link.dup_prob;
        let mut last_arrival = link.last_arrival;

        for item in out.drain(..) {
            if loss > 0.0 && self.rng.gen::<f64>() < loss {
                self.drop_pooled(item, DropKind::Link, id, now);
                continue;
            }
            // The AQM CE-marked this packet on dequeue: write the mark back
            // into the pooled packet so it rides to the receiver, and account
            // it once. On multi-hop paths `forward` copies the (already-Ce)
            // codepoint into the next hop's QueuedPkt, so the pool comparison
            // keeps a packet from being counted at every hop.
            if item.ecn == Ecn::Ce {
                let p = self.pool.get_mut(item.pkt);
                if p.ecn != Ecn::Ce {
                    p.ecn = Ecn::Ce;
                    self.monitor.on_marked(item.flow);
                    self.telemetry
                        .ecn_mark(now, item.flow.0, id.0 as u64, item.size.as_u64());
                }
            }
            if self.telemetry.is_enabled() {
                let sojourn = now.saturating_since(item.enqueued_at);
                self.telemetry
                    .queue_sojourn(now, item.flow.0, id.0 as u64, sojourn);
            }
            let extra = if jitter.is_zero() {
                SimDuration::ZERO
            } else {
                SimDuration::from_nanos(self.rng.gen_range(0..=jitter.as_nanos()))
            };
            // FIFO-preserving arrival: path jitter is queue-induced
            // in reality and never reorders a flow; artificial
            // reordering would trip TCP's loss detection.
            let mut arrive_at = now + base + extra;
            if arrive_at < last_arrival {
                arrive_at = last_arrival;
            }
            last_arrival = arrive_at;
            if dup > 0.0 && self.rng.gen::<f64>() < dup {
                // netem-style duplication: the copy follows the
                // original immediately. Duplicates are not counted
                // as "sent" so loss accounting stays truthful; the
                // clone site tracks them so packet conservation
                // stays an equality.
                self.duplicated += 1;
                let copy = self.pool.clone_of(item.pkt);
                sched.schedule_at(
                    arrive_at,
                    NetEvent::Arrive {
                        node: to,
                        pkt: copy,
                    },
                );
            }
            sched.schedule_at(
                arrive_at,
                NetEvent::Arrive {
                    node: to,
                    pkt: item.pkt,
                },
            );
        }

        let link = &mut self.links[id.0 as usize];
        link.last_arrival = last_arrival;
        if let Some(at) = wait {
            if !link.wakeup_scheduled {
                link.wakeup_scheduled = true;
                self.telemetry
                    .link_busy(now, id.0 as u64, at.saturating_since(now));
                sched.schedule_at(at, NetEvent::LinkWakeup(id));
            }
        }
        for d in dropped.drain(..) {
            self.drop_pooled(d, DropKind::Queue, id, now);
        }
        self.drop_buf = dropped;
        self.deliver_buf = out;
    }
}

impl World for Network {
    type Event = NetEvent;

    fn handle(&mut self, event: NetEvent, sched: &mut Scheduler<NetEvent>) {
        self.checks.clock(sched.now());
        match event {
            NetEvent::AgentStart(id) => {
                self.call_agent(id, sched, |a, ctx| a.on_start(ctx));
            }
            NetEvent::AgentTimer { agent, token } => {
                self.call_agent(agent, sched, |a, ctx| a.on_timer(token, ctx));
            }
            NetEvent::LinkWakeup(id) => {
                self.links[id.0 as usize].wakeup_scheduled = false;
                self.pump_link(id, sched);
            }
            NetEvent::SetLinkRate { link, rate } => {
                self.apply_scenario_action(link, ScenarioAction::Rate(rate), sched);
            }
            NetEvent::Scenario { link, action } => {
                self.apply_scenario_action(link, action, sched);
            }
            NetEvent::Arrive { node, pkt } => {
                if self.pool.get(pkt).dst == node {
                    let pkt = self.pool.take(pkt);
                    let owd = pkt.age(sched.now());
                    self.monitor
                        .on_delivered(pkt.flow, pkt.size, owd, sched.now());
                    self.record_trace(sched.now(), TraceKind::Deliver, &pkt);
                    let agent = pkt.dst_agent;
                    self.call_agent(agent, sched, |a, ctx| a.on_packet(pkt, ctx));
                } else {
                    self.forward(node, pkt, sched);
                }
            }
        }
    }
}

/// Builds a [`Network`] and wraps it in a ready-to-run [`Sim`].
pub struct NetworkBuilder {
    seed: u64,
    node_names: Vec<String>,
    link_specs: Vec<(NodeId, NodeId, LinkSpec)>,
    agents: Vec<(NodeId, Box<dyn Agent>)>,
    flow_labels: Vec<String>,
    bin: SimDuration,
    trace_capacity: usize,
    telemetry: Option<TelemetryConfig>,
    checks: bool,
}

impl NetworkBuilder {
    /// Start a topology with the given base RNG seed.
    pub fn new(seed: u64) -> Self {
        NetworkBuilder {
            seed,
            node_names: Vec::new(),
            link_specs: Vec::new(),
            agents: Vec::new(),
            flow_labels: Vec::new(),
            bin: SimDuration::from_millis(500),
            trace_capacity: 0,
            telemetry: None,
            checks: false,
        }
    }

    /// Override the monitor's bitrate bin width (default 0.5 s, as in the
    /// paper).
    pub fn bin_width(mut self, bin: SimDuration) -> Self {
        self.bin = bin;
        self
    }

    /// Enable packet tracing, retaining the most recent `capacity` events
    /// (0 = disabled, the default — tracing every packet of a 9-minute run
    /// is for debugging, not for the measurement harness).
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Enable flight-recorder telemetry (typed per-flow events; see
    /// [`gsrepro_simcore::telemetry`]). Disabled by default: the recorder
    /// then compiles down to a null check on every hot-path site.
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = Some(cfg);
        self
    }

    /// Enable runtime invariant oracles (see [`crate::checks`]). Disabled
    /// by default: the handle then compiles down to a null check on every
    /// hot-path site, exactly like the telemetry recorder. Enabled, the
    /// run panics with a structured report on the first violated
    /// conservation law, and [`Sim::run_until`] audits the whole network
    /// at the end of every run segment. Oracles observe only — they
    /// consume no randomness and schedule nothing, so an enabled run is
    /// bit-identical to a disabled one.
    pub fn checks(mut self, on: bool) -> Self {
        self.checks = on;
        self
    }

    /// Add a node.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(name.into());
        id
    }

    /// Add a unidirectional link.
    pub fn link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> LinkId {
        let id = LinkId(self.link_specs.len() as u32);
        self.link_specs.push((from, to, spec));
        id
    }

    /// Add a pair of links in both directions with the same spec.
    pub fn duplex(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        let ab = self.link(a, b, spec.clone());
        let ba = self.link(b, a, spec);
        (ab, ba)
    }

    /// Register an accounting flow.
    pub fn flow(&mut self, label: impl Into<String>) -> FlowId {
        let id = FlowId(self.flow_labels.len() as u32);
        self.flow_labels.push(label.into());
        id
    }

    /// Bind an agent to a node.
    pub fn add_agent(&mut self, node: NodeId, agent: Box<dyn Agent>) -> AgentId {
        let id = AgentId(self.agents.len() as u32);
        self.agents.push((node, agent));
        id
    }

    /// Compute routes, build the network, and schedule agent starts.
    ///
    /// # Panics
    /// Panics if any node pair with traffic potential is disconnected
    /// (routing uses BFS hop count; ties broken by lower link id).
    pub fn build(self) -> Sim {
        let n = self.node_names.len();
        // Adjacency: node -> (neighbor, link id), in insertion order.
        let mut adj: Vec<Vec<(NodeId, LinkId)>> = vec![Vec::new(); n];
        let mut links = Vec::new();
        for (i, (from, to, spec)) in self.link_specs.iter().enumerate() {
            let id = LinkId(i as u32);
            adj[from.0 as usize].push((*to, id));
            links.push(spec.build(id, *from, *to));
        }

        // BFS from every node to get next-hop tables.
        let mut nodes = Vec::with_capacity(n);
        for (src, name) in self.node_names.iter().enumerate() {
            let mut dist = vec![u32::MAX; n];
            let mut first_hop: Vec<Option<LinkId>> = vec![None; n];
            let mut q = std::collections::VecDeque::new();
            dist[src] = 0;
            q.push_back(src);
            while let Some(u) = q.pop_front() {
                for &(v, l) in &adj[u] {
                    let v = v.0 as usize;
                    if dist[v] == u32::MAX {
                        dist[v] = dist[u] + 1;
                        first_hop[v] = if u == src { Some(l) } else { first_hop[u] };
                        q.push_back(v);
                    }
                }
            }
            nodes.push(Node {
                name: name.clone(),
                routes: first_hop,
            });
        }

        let mut monitor = Monitor::new(self.bin);
        for label in &self.flow_labels {
            monitor.register(label.clone());
        }

        let mut agents = Vec::new();
        let mut agent_node = Vec::new();
        for (node, agent) in self.agents {
            agents.push(Some(agent));
            agent_node.push(node);
        }

        let net = Network {
            nodes,
            links,
            agents,
            agent_node,
            monitor,
            trace: if self.trace_capacity > 0 {
                Some(Trace::new(self.trace_capacity))
            } else {
                None
            },
            telemetry: match self.telemetry {
                Some(cfg) => Recorder::enabled(cfg),
                None => Recorder::disabled(),
            },
            checks: if self.checks {
                Checks::enabled()
            } else {
                Checks::disabled()
            },
            rng: rng_for(self.seed, 0),
            pool: PacketPool::new(),
            next_pkt_id: 0,
            duplicated: 0,
            cmd_buf: Vec::new(),
            drop_buf: Vec::new(),
            deliver_buf: Vec::new(),
        };

        let mut engine = Engine::new();
        for i in 0..net.agents.len() {
            engine
                .scheduler()
                .schedule_at(SimTime::ZERO, NetEvent::AgentStart(AgentId(i as u32)));
        }
        Sim { engine, net }
    }
}

/// A network together with its engine — the top-level simulation handle.
pub struct Sim {
    engine: Engine<Network>,
    /// The network world; inspect monitors, links, and agents through it.
    pub net: Network,
}

impl Sim {
    /// Advance simulated time to `until` (exclusive; see
    /// [`Engine::run_until`]). When invariant oracles are enabled
    /// ([`NetworkBuilder::checks`]), the whole network is audited at the
    /// end of the segment.
    pub fn run_until(&mut self, until: SimTime) {
        self.engine.run_until(&mut self.net, until);
        if self.net.checks.is_enabled() {
            self.net.audit(self.engine.now());
        }
    }

    /// [`Self::run_until`] under a [`Watchdog`]: a runaway or livelocked
    /// run aborts gracefully into a structured [`SimError`] instead of
    /// spinning. The end-of-segment audit only runs on success — an
    /// abandoned simulation is allowed to be mid-flight inconsistent.
    pub fn run_until_guarded(&mut self, until: SimTime, dog: &Watchdog) -> Result<(), SimError> {
        self.engine.run_until_guarded(&mut self.net, until, dog)?;
        if self.net.checks.is_enabled() {
            self.net.audit(self.engine.now());
        }
        Ok(())
    }

    /// Advance simulated time by `dur`.
    pub fn run_for(&mut self, dur: SimDuration) {
        let t = self.engine.now() + dur;
        self.run_until(t);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Events processed so far (engine-health metric).
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }

    /// How many events were scheduled into the past and clamped to `now`
    /// (zero in a well-behaved run; surfaced per run instead of stderr).
    pub fn past_clamps(&self) -> u64 {
        self.engine.past_schedules()
    }

    /// Scheduler occupancy counters for this run (lane/cur/wheel/overflow
    /// placement, cascades, cancels, slab high-watermark).
    pub fn sched_stats(&self) -> gsrepro_simcore::SchedStats {
        self.engine.sched_stats()
    }

    /// Utilization helper: overall goodput of `flow` across `[from, to)`.
    pub fn goodput_mbps(&self, flow: FlowId, from: SimTime, to: SimTime) -> f64 {
        self.net.monitor().stats(flow).mean_goodput_mbps(from, to)
    }

    /// Schedule a link-rate change at `at` (absolute sim time). Emulates
    /// running `tc qdisc change` on the router mid-experiment.
    pub fn schedule_link_rate(&mut self, link: LinkId, rate: Option<BitRate>, at: SimTime) {
        self.engine
            .scheduler()
            .schedule_at(at, NetEvent::SetLinkRate { link, rate });
    }

    /// Schedule one scenario action at `at` (absolute sim time).
    pub fn schedule_scenario_action(&mut self, link: LinkId, action: ScenarioAction, at: SimTime) {
        self.engine
            .scheduler()
            .schedule_at(at, NetEvent::Scenario { link, action });
    }

    /// Schedule a whole disturbance schedule. Steps are ordinary events:
    /// traced and untraced runs stay bit-identical, and the run reproduces
    /// from (scenario, seed).
    pub fn apply_scenario(&mut self, spec: &ScenarioSpec) {
        self.try_apply_scenario(spec)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`Self::apply_scenario`] with validation up front: a spec that
    /// would trip a link-layer assertion mid-run (probability outside
    /// `[0, 1]`, zero shaped rate) is rejected as a structured
    /// [`SimError::InvalidScenario`] before anything is scheduled.
    pub fn try_apply_scenario(&mut self, spec: &ScenarioSpec) -> Result<(), SimError> {
        spec.validate()?;
        for step in &spec.steps {
            self.schedule_scenario_action(step.link, step.action, step.at);
        }
        Ok(())
    }
}

/// Convenience: the rate used for "effectively unshaped" LAN links in specs
/// that need a concrete number.
pub const LAN_RATE: BitRate = BitRate(1_000_000_000);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{CbrSource, SinkAgent};
    use crate::link::Shaper;
    use crate::queue::QueueSpec;

    fn two_node_sim(rate_mbps: u64, cbr_mbps: u64, seed: u64) -> (Sim, FlowId) {
        let mut b = NetworkBuilder::new(seed);
        let s = b.add_node("server");
        let c = b.add_node("client");
        b.link(
            s,
            c,
            LinkSpec {
                shaper: Shaper::rate(BitRate::from_mbps(rate_mbps)),
                delay: SimDuration::from_millis(5),
                queue: QueueSpec::DropTail {
                    limit: Bytes(50_000),
                },
                jitter: SimDuration::ZERO,
                loss_prob: 0.0,
                dup_prob: 0.0,
            },
        );
        b.link(c, s, LinkSpec::lan(SimDuration::from_millis(5)));
        let f = b.flow("cbr");
        let sink = b.add_agent(c, Box::new(SinkAgent::new()));
        b.add_agent(
            s,
            Box::new(CbrSource::new(
                f,
                c,
                sink,
                BitRate::from_mbps(cbr_mbps),
                Bytes(1200),
            )),
        );
        (b.build(), f)
    }

    #[test]
    fn cbr_below_capacity_is_lossless() {
        let (mut sim, f) = two_node_sim(10, 5, 1);
        sim.run_until(SimTime::from_secs(10));
        let st = sim.net.monitor().stats(f);
        assert_eq!(st.dropped_pkts(), 0);
        let gp = st.mean_goodput_mbps(SimTime::from_secs(1), SimTime::from_secs(10));
        assert!((gp - 5.0).abs() < 0.3, "goodput {gp} != 5");
        // One-way delay ≈ propagation (queue stays empty).
        assert!(st.owd.mean() < 7.0, "owd {}", st.owd.mean());
    }

    #[test]
    fn cbr_above_capacity_is_clamped_and_lossy() {
        let (mut sim, f) = two_node_sim(10, 20, 2);
        sim.run_until(SimTime::from_secs(10));
        let st = sim.net.monitor().stats(f);
        let gp = st.mean_goodput_mbps(SimTime::from_secs(1), SimTime::from_secs(10));
        assert!((gp - 10.0).abs() < 0.5, "goodput {gp} should clamp to 10");
        // Half the offered load must drop.
        assert!(st.loss_rate() > 0.4, "loss {}", st.loss_rate());
        // Queue is standing at its limit: OWD ≈ prop + 50 kB / 10 Mb/s = 45 ms.
        assert!(st.owd.mean() > 30.0, "owd {}", st.owd.mean());
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let (mut a, fa) = two_node_sim(10, 20, 7);
        let (mut b2, fb) = two_node_sim(10, 20, 7);
        a.run_until(SimTime::from_secs(5));
        b2.run_until(SimTime::from_secs(5));
        let sa = a.net.monitor().stats(fa);
        let sb = b2.net.monitor().stats(fb);
        assert_eq!(sa.delivered_pkts, sb.delivered_pkts);
        assert_eq!(sa.dropped_pkts(), sb.dropped_pkts());
        assert_eq!(a.events_processed(), b2.events_processed());
    }

    #[test]
    fn multihop_forwarding() {
        let mut b = NetworkBuilder::new(3);
        let s = b.add_node("server");
        let r = b.add_node("router");
        let c = b.add_node("client");
        b.duplex(s, r, LinkSpec::lan(SimDuration::from_millis(2)));
        b.duplex(r, c, LinkSpec::lan(SimDuration::from_millis(3)));
        let f = b.flow("x");
        let sink = b.add_agent(c, Box::new(SinkAgent::new()));
        b.add_agent(
            s,
            Box::new(CbrSource::new(
                f,
                c,
                sink,
                BitRate::from_mbps(1),
                Bytes(1000),
            )),
        );
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(2));
        let st = sim.net.monitor().stats(f);
        assert!(st.delivered_pkts > 0);
        // OWD = 2 + 3 = 5 ms across two unshaped hops.
        assert!((st.owd.mean() - 5.0).abs() < 0.1, "owd {}", st.owd.mean());
        let sink_agent: &SinkAgent = sim.net.agent(sink);
        assert_eq!(sink_agent.received_pkts(), st.delivered_pkts);
    }

    #[test]
    fn link_fault_injection_drops_packets() {
        let mut b = NetworkBuilder::new(11);
        let s = b.add_node("s");
        let c = b.add_node("c");
        b.link(
            s,
            c,
            LinkSpec::lan(SimDuration::from_millis(1)).with_loss(0.3),
        );
        b.link(c, s, LinkSpec::lan(SimDuration::from_millis(1)));
        let f = b.flow("x");
        let sink = b.add_agent(c, Box::new(SinkAgent::new()));
        b.add_agent(
            s,
            Box::new(CbrSource::new(
                f,
                c,
                sink,
                BitRate::from_mbps(2),
                Bytes(1000),
            )),
        );
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(20));
        let st = sim.net.monitor().stats(f);
        let loss = st.link_drop_pkts as f64 / st.sent_pkts as f64;
        assert!((loss - 0.3).abs() < 0.03, "observed loss {loss}");
    }

    #[test]
    fn jitter_spreads_delays() {
        let mut b = NetworkBuilder::new(13);
        let s = b.add_node("s");
        let c = b.add_node("c");
        b.link(
            s,
            c,
            LinkSpec::lan(SimDuration::from_millis(5)).with_jitter(SimDuration::from_millis(10)),
        );
        b.link(c, s, LinkSpec::lan(SimDuration::from_millis(5)));
        let f = b.flow("x");
        let sink = b.add_agent(c, Box::new(SinkAgent::new()));
        b.add_agent(
            s,
            Box::new(CbrSource::new(
                f,
                c,
                sink,
                BitRate::from_mbps(2),
                Bytes(1000),
            )),
        );
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(10));
        let st = sim.net.monitor().stats(f);
        // Mean extra delay ≈ jitter/2 → total ≈ 10 ms.
        assert!((st.owd.mean() - 10.0).abs() < 1.0, "owd {}", st.owd.mean());
        assert!(st.owd.stddev() > 1.0);
    }

    #[test]
    fn link_rate_changes_take_effect() {
        let mut b = NetworkBuilder::new(23);
        let s = b.add_node("s");
        let c = b.add_node("c");
        let bottleneck = b.link(
            s,
            c,
            LinkSpec::bottleneck(
                BitRate::from_mbps(20),
                Bytes(100_000),
                SimDuration::from_millis(2),
            ),
        );
        b.link(c, s, LinkSpec::lan(SimDuration::from_millis(2)));
        let f = b.flow("x");
        let sink = b.add_agent(c, Box::new(SinkAgent::new()));
        // Offer 15 Mb/s throughout.
        b.add_agent(
            s,
            Box::new(CbrSource::new(
                f,
                c,
                sink,
                BitRate::from_mbps(15),
                Bytes(1200),
            )),
        );
        let mut sim = b.build();
        // Cut the link to 5 Mb/s for the middle third.
        sim.schedule_link_rate(
            bottleneck,
            Some(BitRate::from_mbps(5)),
            SimTime::from_secs(10),
        );
        sim.schedule_link_rate(
            bottleneck,
            Some(BitRate::from_mbps(20)),
            SimTime::from_secs(20),
        );
        sim.run_until(SimTime::from_secs(30));
        let st = sim.net.monitor().stats(f);
        let before = st.mean_goodput_mbps(SimTime::from_secs(2), SimTime::from_secs(10));
        let during = st.mean_goodput_mbps(SimTime::from_secs(12), SimTime::from_secs(20));
        let after = st.mean_goodput_mbps(SimTime::from_secs(22), SimTime::from_secs(30));
        assert!((before - 15.0).abs() < 0.5, "before {before}");
        assert!((during - 5.0).abs() < 0.5, "during {during}");
        assert!((after - 15.0).abs() < 1.0, "after {after}");
        assert!(st.dropped_pkts() > 0, "the 5 Mb/s phase must drop");
    }

    #[test]
    fn scenario_steps_apply_and_record() {
        use gsrepro_simcore::telemetry::EventKind;
        let mut b = NetworkBuilder::new(5).telemetry(TelemetryConfig::default());
        let s = b.add_node("s");
        let c = b.add_node("c");
        let bottleneck = b.link(
            s,
            c,
            LinkSpec::bottleneck(
                BitRate::from_mbps(20),
                Bytes(100_000),
                SimDuration::from_millis(2),
            ),
        );
        b.link(c, s, LinkSpec::lan(SimDuration::from_millis(2)));
        let f = b.flow("x");
        let sink = b.add_agent(c, Box::new(SinkAgent::new()));
        b.add_agent(
            s,
            Box::new(CbrSource::new(
                f,
                c,
                sink,
                BitRate::from_mbps(10),
                Bytes(1200),
            )),
        );
        let mut sim = b.build();
        let spec = ScenarioSpec::new()
            .rate(SimTime::from_secs(2), bottleneck, BitRate::from_mbps(5))
            .delay(
                SimTime::from_secs(3),
                bottleneck,
                SimDuration::from_millis(9),
            )
            .loss_window(
                SimTime::from_secs(4),
                SimTime::from_secs(5),
                bottleneck,
                0.5,
            )
            .outage(SimTime::from_secs(6), SimTime::from_secs(7), bottleneck)
            .queue_limit(SimTime::from_secs(8), bottleneck, Bytes(10_000));
        let n_steps = spec.steps.len() as u64;
        sim.apply_scenario(&spec);
        sim.run_until(SimTime::from_secs(10));

        let link = sim.net.link(bottleneck);
        assert_eq!(link.rate(), Some(BitRate::from_mbps(5)));
        assert_eq!(link.delay(), SimDuration::from_millis(9));
        assert!(link.is_up());
        let st = sim.net.monitor().stats(f);
        assert!(st.link_drop_pkts > 0, "loss window must drop packets");
        assert!(st.queue_drop_pkts > 0, "5 Mb/s phase must tail-drop");
        let tel = sim.net.telemetry().telemetry().unwrap();
        assert_eq!(tel.counters().scenario_steps, n_steps);
        let recorded: Vec<_> = tel
            .events()
            .into_iter()
            .filter(|e| e.kind == EventKind::LinkScenario)
            .collect();
        assert_eq!(recorded.len() as u64, n_steps);
        assert!(recorded.iter().all(
            |e| e.flow == gsrepro_simcore::telemetry::GLOBAL_FLOW && e.a == bottleneck.0 as u64
        ));
        // Wire codes, in schedule order: rate, delay, loss on/off, down/up,
        // queue limit.
        let codes: Vec<u64> = recorded.iter().map(|e| e.b).collect();
        assert_eq!(codes, vec![0, 1, 2, 2, 4, 4, 5]);
    }

    #[test]
    fn scenario_outage_pauses_delivery() {
        let mut b = NetworkBuilder::new(9);
        let s = b.add_node("s");
        let c = b.add_node("c");
        let l = b.link(
            s,
            c,
            LinkSpec::bottleneck(
                BitRate::from_mbps(10),
                Bytes(1_000_000),
                SimDuration::from_millis(1),
            ),
        );
        b.link(c, s, LinkSpec::lan(SimDuration::from_millis(1)));
        let f = b.flow("x");
        let sink = b.add_agent(c, Box::new(SinkAgent::new()));
        b.add_agent(
            s,
            Box::new(CbrSource::new(
                f,
                c,
                sink,
                BitRate::from_mbps(5),
                Bytes(1000),
            )),
        );
        let mut sim = b.build();
        sim.apply_scenario(&ScenarioSpec::new().outage(
            SimTime::from_secs(2),
            SimTime::from_secs(4),
            l,
        ));
        sim.run_until(SimTime::from_secs(6));
        let st = sim.net.monitor().stats(f);
        // New arrivals during the outage are rejected at the link and
        // accounted like queue-overflow drops (the queue here is far too
        // large to overflow on its own).
        assert!(st.queue_drop_pkts > 500, "drops {}", st.queue_drop_pkts);
        // Delivery resumes after the outage.
        let after = st.mean_goodput_mbps(SimTime::from_secs(4), SimTime::from_secs(6));
        assert!((after - 5.0).abs() < 0.5, "after-outage goodput {after}");
        // No goodput inside the dark window (minus the sub-ms tail in flight).
        let during = st.mean_goodput_mbps(SimTime::from_millis(2100), SimTime::from_millis(3900));
        assert!(during < 0.1, "during-outage goodput {during}");
    }

    #[test]
    fn delay_step_spares_in_flight_packets() {
        // A delay step must not touch packets already propagating: their
        // arrivals were scheduled with the delay in force at send time.
        let mut b = NetworkBuilder::new(27).trace_capacity(100_000);
        let s = b.add_node("s");
        let c = b.add_node("c");
        let l = b.link(s, c, LinkSpec::lan(SimDuration::from_millis(50)));
        b.link(c, s, LinkSpec::lan(SimDuration::from_millis(1)));
        let f = b.flow("x");
        let sink = b.add_agent(c, Box::new(SinkAgent::new()));
        // 100 pkt/s: sends at 0, 10 ms, 20 ms, ...
        b.add_agent(
            s,
            Box::new(CbrSource::new(
                f,
                c,
                sink,
                BitRate::from_kbps(800),
                Bytes(1000),
            )),
        );
        let mut sim = b.build();
        // At t = 1 s the delay jumps 50 ms -> 200 ms.
        sim.schedule_scenario_action(
            l,
            ScenarioAction::Delay(SimDuration::from_millis(200)),
            SimTime::from_secs(1),
        );
        sim.run_until(SimTime::from_secs(3));
        let trace = sim.net.trace().unwrap();
        let deliveries: Vec<SimTime> = trace
            .events()
            .filter(|e| e.kind == TraceKind::Deliver)
            .map(|e| e.at)
            .collect();
        // Packets sent before 1 s keep the 50 ms delay (last arrives at
        // ~1.04 s); the first post-step send (t = 1.0 s) lands at 1.2 s.
        // Nothing arrives inside the gap.
        let gap = deliveries
            .iter()
            .filter(|t| **t > SimTime::from_millis(1045) && **t < SimTime::from_millis(1195))
            .count();
        assert_eq!(gap, 0, "no arrivals between the two delay regimes");
        let pre = deliveries
            .iter()
            .filter(|t| **t > SimTime::from_secs(1) && **t <= SimTime::from_millis(1045))
            .count();
        assert!(pre > 0, "in-flight packets still arrive at the old delay");
    }

    #[test]
    fn scenario_runs_are_bit_identical() {
        let run = |telemetry: bool| {
            let mut b = NetworkBuilder::new(77);
            if telemetry {
                b = b.telemetry(TelemetryConfig::default());
            }
            let s = b.add_node("s");
            let c = b.add_node("c");
            let l = b.link(
                s,
                c,
                LinkSpec::bottleneck(
                    BitRate::from_mbps(25),
                    Bytes(100_000),
                    SimDuration::from_millis(2),
                ),
            );
            b.link(c, s, LinkSpec::lan(SimDuration::from_millis(2)));
            let f = b.flow("x");
            let sink = b.add_agent(c, Box::new(SinkAgent::new()));
            b.add_agent(
                s,
                Box::new(CbrSource::new(
                    f,
                    c,
                    sink,
                    BitRate::from_mbps(20),
                    Bytes(1200),
                )),
            );
            let mut sim = b.build();
            sim.apply_scenario(
                &ScenarioSpec::new()
                    .rate(SimTime::from_secs(3), l, BitRate::from_mbps(10))
                    .rate(SimTime::from_secs(6), l, BitRate::from_mbps(25))
                    .loss_window(SimTime::from_secs(7), SimTime::from_secs(8), l, 0.02),
            );
            sim.run_until(SimTime::from_secs(10));
            let st = sim.net.monitor().stats(f);
            (st.delivered_pkts, st.dropped_pkts(), sim.events_processed())
        };
        let a = run(false);
        let b2 = run(false);
        let traced = run(true);
        assert_eq!(a, b2, "same scenario + seed must be bit-identical");
        assert_eq!(a, traced, "tracing must not perturb a scenario run");
    }

    #[test]
    fn duplication_fault_injection() {
        let mut b = NetworkBuilder::new(17);
        let s = b.add_node("s");
        let c = b.add_node("c");
        b.link(
            s,
            c,
            LinkSpec::lan(SimDuration::from_millis(1)).with_duplication(0.25),
        );
        b.link(c, s, LinkSpec::lan(SimDuration::from_millis(1)));
        let f = b.flow("x");
        let sink = b.add_agent(c, Box::new(SinkAgent::new()));
        b.add_agent(
            s,
            Box::new(CbrSource::new(
                f,
                c,
                sink,
                BitRate::from_mbps(2),
                Bytes(1000),
            )),
        );
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(20));
        let st = sim.net.monitor().stats(f);
        // Delivered ≈ 1.25 × sent: each duplicate arrives as an extra copy.
        let ratio = st.delivered_pkts as f64 / st.sent_pkts as f64;
        assert!((ratio - 1.25).abs() < 0.03, "duplication ratio {ratio}");
        assert_eq!(st.dropped_pkts(), 0);
    }

    #[test]
    fn trace_records_send_and_delivery() {
        let mut b = NetworkBuilder::new(31).trace_capacity(1000);
        let s = b.add_node("s");
        let c = b.add_node("c");
        b.duplex(s, c, LinkSpec::lan(SimDuration::from_millis(1)));
        let f = b.flow("x");
        let sink = b.add_agent(c, Box::new(SinkAgent::new()));
        b.add_agent(
            s,
            Box::new(CbrSource::new(
                f,
                c,
                sink,
                BitRate::from_kbps(800),
                Bytes(1000),
            )),
        );
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(1));
        let trace = sim.net.trace().expect("tracing enabled");
        let sends = trace
            .events()
            .filter(|e| e.kind == crate::trace::TraceKind::Send)
            .count();
        let delivers = trace
            .events()
            .filter(|e| e.kind == crate::trace::TraceKind::Deliver)
            .count();
        assert!((99..=101).contains(&sends), "sends {sends}");
        // Last packet may still be in flight at the cut-off.
        assert!(delivers >= sends - 1, "delivers {delivers} sends {sends}");
        assert!(trace.to_csv().contains("raw"));
    }

    #[test]
    fn telemetry_records_queue_dynamics_and_drops() {
        use gsrepro_simcore::telemetry::EventKind;
        let mut b = NetworkBuilder::new(2).telemetry(TelemetryConfig::default());
        let s = b.add_node("server");
        let c = b.add_node("client");
        b.link(
            s,
            c,
            LinkSpec {
                shaper: Shaper::rate(BitRate::from_mbps(10)),
                delay: SimDuration::from_millis(5),
                queue: QueueSpec::DropTail {
                    limit: Bytes(50_000),
                },
                jitter: SimDuration::ZERO,
                loss_prob: 0.0,
                dup_prob: 0.0,
            },
        );
        b.link(c, s, LinkSpec::lan(SimDuration::from_millis(5)));
        let f = b.flow("cbr");
        let sink = b.add_agent(c, Box::new(SinkAgent::new()));
        // 20 Mb/s into 10 Mb/s: standing queue, sojourn, and tail drops.
        b.add_agent(
            s,
            Box::new(CbrSource::new(
                f,
                c,
                sink,
                BitRate::from_mbps(20),
                Bytes(1200),
            )),
        );
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(5));
        let tel = sim.net.telemetry().telemetry().expect("telemetry enabled");
        let events = tel.events();
        let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
        assert!(count(EventKind::QueueDepth) > 100, "sampled backlog series");
        assert!(count(EventKind::QueueSojourn) > 100, "sampled sojourns");
        assert!(count(EventKind::QueueDrop) > 0, "tail drops recorded");
        let c = tel.counters();
        assert_eq!(
            c.queue_drops,
            sim.net.monitor().stats(f).queue_drop_pkts,
            "telemetry drop counter must agree with the monitor"
        );
        assert!(c.throttled > 0, "per-packet kinds are sampled");
        // Depth events are link-scope, sojourns belong to the flow.
        assert!(events
            .iter()
            .filter(|e| e.kind == EventKind::QueueDepth)
            .all(|e| e.flow == gsrepro_simcore::telemetry::GLOBAL_FLOW && e.b == 0));
        assert!(events
            .iter()
            .filter(|e| e.kind == EventKind::QueueSojourn)
            .all(|e| e.flow == f.0));
        gsrepro_simcore::telemetry::validate_events(&events).unwrap();
    }

    #[test]
    fn telemetry_disabled_by_default_and_inert() {
        let (mut sim, _) = two_node_sim(10, 20, 2);
        sim.run_until(SimTime::from_secs(2));
        assert!(!sim.net.telemetry().is_enabled());
        assert_eq!(sim.net.telemetry().counters().recorded, 0);
        assert_eq!(sim.past_clamps(), 0);
    }

    /// A sim exercising every oracle input: shaping, scenario re-rates,
    /// loss, duplication, an outage, and a queue-limit shrink.
    fn eventful_sim(checks: bool, telemetry: bool) -> (Sim, FlowId) {
        let mut b = NetworkBuilder::new(19).checks(checks);
        if telemetry {
            b = b.telemetry(TelemetryConfig::default());
        }
        let s = b.add_node("s");
        let c = b.add_node("c");
        let l = b.link(
            s,
            c,
            LinkSpec::bottleneck(
                BitRate::from_mbps(10),
                Bytes(50_000),
                SimDuration::from_millis(2),
            )
            .with_duplication(0.05),
        );
        b.link(c, s, LinkSpec::lan(SimDuration::from_millis(2)));
        let f = b.flow("x");
        let sink = b.add_agent(c, Box::new(SinkAgent::new()));
        b.add_agent(
            s,
            Box::new(CbrSource::new(
                f,
                c,
                sink,
                BitRate::from_mbps(12),
                Bytes(1200),
            )),
        );
        let mut sim = b.build();
        sim.apply_scenario(
            &ScenarioSpec::new()
                .rate(SimTime::from_secs(2), l, BitRate::from_mbps(5))
                .rate(SimTime::from_secs(4), l, BitRate::from_mbps(15))
                .loss_window(SimTime::from_secs(5), SimTime::from_secs(6), l, 0.1)
                .outage(SimTime::from_secs(6), SimTime::from_secs(7), l)
                .queue_limit(SimTime::from_secs(8), l, Bytes(10_000)),
        );
        (sim, f)
    }

    #[test]
    fn checks_enabled_eventful_run_is_clean() {
        let (mut sim, f) = eventful_sim(true, true);
        sim.run_until(SimTime::from_secs(10));
        // Every drop cause and the duplication path actually fired, so the
        // conservation identity was non-trivial...
        let st = sim.net.monitor().stats(f);
        assert!(st.queue_drop_pkts > 0);
        assert!(st.link_drop_pkts > 0);
        assert!(st.delivered_pkts > st.sent_pkts - st.dropped_pkts(), "dups");
        // ...and the oracles ran (per-event clock checks alone are ~1/event).
        assert!(sim.net.checks().performed() > 1000);
    }

    #[test]
    fn checks_do_not_perturb_the_simulation() {
        let digest = |checks: bool| {
            let (mut sim, f) = eventful_sim(checks, false);
            sim.run_until(SimTime::from_secs(10));
            let st = sim.net.monitor().stats(f);
            (
                st.delivered_pkts,
                st.dropped_pkts(),
                st.sent_pkts,
                sim.events_processed(),
            )
        };
        assert_eq!(digest(false), digest(true));
    }

    #[test]
    fn checks_disabled_by_default_and_inert() {
        let (mut sim, _) = two_node_sim(10, 20, 2);
        sim.run_until(SimTime::from_secs(1));
        assert!(!sim.net.checks().is_enabled());
        assert_eq!(sim.net.checks().performed(), 0);
        // An explicit audit on a disabled handle is a no-op.
        let now = sim.now();
        sim.net.audit(now);
        assert_eq!(sim.net.checks().performed(), 0);
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut b = NetworkBuilder::new(32);
        let s = b.add_node("s");
        b.add_agent(s, Box::new(SinkAgent::new()));
        let sim = b.build();
        assert!(sim.net.trace().is_none());
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn disconnected_send_panics() {
        let mut b = NetworkBuilder::new(1);
        let s = b.add_node("s");
        let c = b.add_node("c");
        // Only a reverse link exists; s cannot reach c.
        b.link(c, s, LinkSpec::lan(SimDuration::from_millis(1)));
        let f = b.flow("x");
        let sink = b.add_agent(c, Box::new(SinkAgent::new()));
        b.add_agent(
            s,
            Box::new(CbrSource::new(
                f,
                c,
                sink,
                BitRate::from_mbps(1),
                Bytes(500),
            )),
        );
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(1));
    }
}
