//! Packet-event tracing — the simulator's `tcpdump`.
//!
//! The physical testbed captured every packet with Wireshark; most analyses
//! only need the [`crate::monitor::Monitor`] aggregates, but debugging a
//! protocol (or exporting a trace for external tooling) wants the raw
//! per-packet event stream. [`Trace`] records [`TraceEvent`]s — sends,
//! queue drops, link-loss drops, and deliveries — with bounded memory
//! (a ring buffer), and renders them as text or CSV.
//!
//! Tracing is off by default; enable it per network with
//! [`crate::net::NetworkBuilder::trace_capacity`].

use std::collections::VecDeque;
use std::fmt;

use gsrepro_simcore::{Bytes, SimTime};

use crate::wire::{FlowId, Payload};

/// What happened to a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Handed to the network by an agent.
    Send,
    /// Dropped by a queue (tail drop or AQM).
    QueueDrop,
    /// Dropped by link fault injection.
    LinkDrop,
    /// Arrived at its destination node.
    Deliver,
}

impl TraceKind {
    fn label(self) -> &'static str {
        match self {
            TraceKind::Send => "send",
            TraceKind::QueueDrop => "qdrop",
            TraceKind::LinkDrop => "ldrop",
            TraceKind::Deliver => "deliver",
        }
    }
}

/// One traced packet event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// Packet id.
    pub packet: u64,
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Wire size.
    pub size: Bytes,
    /// Short protocol tag ("tcp seq=...", "media f=...", ...).
    pub proto: String,
}

/// Compact protocol tag for an event line.
pub fn proto_tag(payload: &Payload) -> String {
    match payload {
        Payload::Tcp(seg) => {
            if seg.len == 0 {
                format!("tcp ack={}", seg.ack)
            } else {
                format!("tcp seq={} len={}", seg.seq, seg.len)
            }
        }
        Payload::Media(m) => format!(
            "media f={} c={}/{}",
            m.frame_id, m.chunk_index, m.chunk_count
        ),
        Payload::Feedback(fb) => format!("fb seq={} loss={:.3}", fb.seq, fb.loss),
        Payload::Ping(p) => format!(
            "ping seq={}{}",
            p.seq,
            if p.is_reply { " reply" } else { "" }
        ),
        Payload::Raw => "raw".to_string(),
    }
}

/// Bounded ring buffer of packet events.
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    total_recorded: u64,
}

impl Trace {
    /// A trace retaining at most `capacity` most-recent events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            total_recorded: 0,
        }
    }

    /// Record one event.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(ev);
        self.total_recorded += 1;
    }

    /// Events currently retained (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Events of one flow.
    pub fn for_flow(&self, flow: FlowId) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.flow == flow).collect()
    }

    /// CSV rendering: `t_s,kind,packet,flow,size,proto`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_s,kind,packet,flow,size,proto\n");
        for e in &self.events {
            out.push_str(&format!(
                "{:.9},{},{},{},{},{}\n",
                e.at.as_secs_f64(),
                e.kind.label(),
                e.packet,
                e.flow.0,
                e.size.as_u64(),
                e.proto
            ));
        }
        out
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12.6}s {:>7} pkt={} flow={} {}B {}",
            self.at.as_secs_f64(),
            self.kind.label(),
            self.packet,
            self.flow.0,
            self.size.as_u64(),
            self.proto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::TcpSegment;

    fn ev(at_ms: u64, kind: TraceKind, id: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_millis(at_ms),
            kind,
            packet: id,
            flow: FlowId((id % 2) as u32),
            size: Bytes(1200),
            proto: "raw".into(),
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.record(ev(i, TraceKind::Send, i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_recorded(), 5);
        let ids: Vec<u64> = t.events().map(|e| e.packet).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut t = Trace::new(0);
        t.record(ev(1, TraceKind::Send, 1));
        assert!(t.is_empty());
        assert_eq!(t.total_recorded(), 0);
    }

    #[test]
    fn flow_filter() {
        let mut t = Trace::new(10);
        for i in 0..6 {
            t.record(ev(i, TraceKind::Deliver, i));
        }
        assert_eq!(t.for_flow(FlowId(0)).len(), 3);
        assert_eq!(t.for_flow(FlowId(1)).len(), 3);
        assert_eq!(t.for_flow(FlowId(9)).len(), 0);
    }

    #[test]
    fn csv_and_display() {
        let mut t = Trace::new(4);
        t.record(ev(1, TraceKind::Send, 7));
        t.record(ev(2, TraceKind::QueueDrop, 8));
        let csv = t.to_csv();
        assert!(csv.starts_with("t_s,kind,"));
        assert!(csv.contains("send"));
        assert!(csv.contains("qdrop"));
        let line = format!("{}", t.events().next().expect("event present"));
        assert!(line.contains("pkt=7"));
    }

    #[test]
    fn proto_tags() {
        assert_eq!(proto_tag(&Payload::Raw), "raw");
        assert_eq!(
            proto_tag(&Payload::Tcp(TcpSegment::data(100, 1448))),
            "tcp seq=100 len=1448"
        );
        assert_eq!(
            proto_tag(&Payload::Tcp(TcpSegment::pure_ack(5, 10, None))),
            "tcp ack=5"
        );
    }
}
