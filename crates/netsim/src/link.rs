//! Unidirectional links: token-bucket shaping, propagation delay, fault
//! injection.
//!
//! The paper's bottleneck was created with
//! `tc qdisc ... tbf rate 15mbit burst 1mbit limit 510kbit` layered under a
//! `netem delay`. A [`LinkSpec`] mirrors exactly those knobs: a token-bucket
//! [`Shaper`] (rate + burst), a [`QueueSpec`] (the `limit`), and a one-way
//! propagation `delay` (the `netem` half). Optional random loss and jitter
//! provide the fault injection the smoltcp examples recommend for testing.
//!
//! Token-bucket arithmetic is exact integer math in units of
//! *bit-nanoseconds* (1 byte = 8×10⁹ bit-ns): refills never accumulate
//! rounding drift, so long runs stay deterministic to the nanosecond.

use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimTime};

use crate::net::NodeId;
use crate::queue::{Discipline, QueueSpec, QueuedPkt};

/// Identifies a link within a [`crate::net::Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

/// Rate-limiting policy for a link.
#[derive(Clone, Copy, Debug)]
pub enum Shaper {
    /// No rate limit (packets depart as soon as they are queued). Used for
    /// the testbed's 1 Gb/s LAN segments, which the paper verified are never
    /// the bottleneck.
    Unshaped,
    /// Token bucket: tokens accrue at `rate` up to `burst`; a packet departs
    /// when the bucket holds its full size (`tc tbf` semantics).
    TokenBucket {
        /// Token accrual rate — the link capacity.
        rate: BitRate,
        /// Bucket depth. Must be at least one MTU or large packets would
        /// stall forever; the builder enforces a 2 kB floor.
        burst: Bytes,
    },
}

impl Shaper {
    /// Convenience: a token bucket with a single-MTU burst, i.e. plain
    /// serialization at `rate`.
    pub fn rate(rate: BitRate) -> Self {
        Shaper::TokenBucket {
            rate,
            burst: Bytes(2_000),
        }
    }

    /// The configured rate, if shaped.
    pub fn rate_bps(&self) -> Option<BitRate> {
        match *self {
            Shaper::Unshaped => None,
            Shaper::TokenBucket { rate, .. } => Some(rate),
        }
    }
}

/// Declarative link configuration.
#[derive(Clone, Debug)]
pub struct LinkSpec {
    /// Rate limit.
    pub shaper: Shaper,
    /// One-way propagation delay (the `netem delay` half).
    pub delay: SimDuration,
    /// Buffering policy in front of the shaper.
    pub queue: QueueSpec,
    /// Uniform random extra delay in `[0, jitter]` applied per packet.
    pub jitter: SimDuration,
    /// Independent per-packet drop probability (fault injection).
    pub loss_prob: f64,
    /// Independent per-packet duplication probability (`netem duplicate`);
    /// the copy is delivered back-to-back with the original.
    pub dup_prob: f64,
}

impl LinkSpec {
    /// An unshaped link with the given propagation delay and an effectively
    /// unlimited buffer — a LAN segment.
    pub fn lan(delay: SimDuration) -> Self {
        LinkSpec {
            shaper: Shaper::Unshaped,
            delay,
            queue: QueueSpec::DropTail {
                limit: Bytes(u64::MAX / 2),
            },
            jitter: SimDuration::ZERO,
            loss_prob: 0.0,
            dup_prob: 0.0,
        }
    }

    /// A shaped bottleneck: `rate` capacity, `limit`-byte drop-tail queue,
    /// `delay` one-way propagation — the paper's router configuration.
    pub fn bottleneck(rate: BitRate, limit: Bytes, delay: SimDuration) -> Self {
        LinkSpec {
            shaper: Shaper::rate(rate),
            delay,
            queue: QueueSpec::DropTail { limit },
            jitter: SimDuration::ZERO,
            loss_prob: 0.0,
            dup_prob: 0.0,
        }
    }

    /// Add uniform jitter.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Add independent random loss.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.loss_prob = p;
        self
    }

    /// Add independent random duplication.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplication probability out of range"
        );
        self.dup_prob = p;
        self
    }

    /// Build a standalone [`Link`]. [`crate::net::NetworkBuilder`] calls
    /// this for every topology edge; benches call it directly to measure
    /// the shaper without a network around it.
    pub fn build(&self, id: LinkId, from: NodeId, to: NodeId) -> Link {
        let (rate, burst) = match self.shaper {
            Shaper::Unshaped => (None, Bytes::ZERO),
            Shaper::TokenBucket { rate, burst } => {
                assert!(rate.as_bps() > 0, "shaped link must have a positive rate");
                (Some(rate), Bytes(burst.as_u64().max(2_000)))
            }
        };
        Link {
            id,
            from,
            to,
            rate,
            burst_bitns: bitns(burst),
            tokens_bitns: bitns(burst), // start with a full bucket
            last_refill: SimTime::ZERO,
            delay: self.delay,
            jitter: self.jitter,
            loss_prob: self.loss_prob,
            dup_prob: self.dup_prob,
            queue: self.queue.build(),
            wakeup_scheduled: false,
            last_arrival: SimTime::ZERO,
            up: true,
            delivered_pkts: 0,
            delivered_bytes: Bytes::ZERO,
        }
    }
}

#[inline]
fn bitns(b: Bytes) -> u128 {
    b.bits() as u128 * 1_000_000_000u128
}

/// A built link, created from a [`LinkSpec`] inside
/// [`crate::net::NetworkBuilder`].
pub struct Link {
    pub(crate) id: LinkId,
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    rate: Option<BitRate>,
    burst_bitns: u128,
    tokens_bitns: u128,
    last_refill: SimTime,
    pub(crate) delay: SimDuration,
    pub(crate) jitter: SimDuration,
    pub(crate) loss_prob: f64,
    pub(crate) dup_prob: f64,
    pub(crate) queue: Discipline,
    /// True while a `LinkWakeup` event is in flight, to avoid duplicates.
    pub(crate) wakeup_scheduled: bool,
    /// Latest scheduled arrival time, so jitter never reorders a flow:
    /// real path jitter is queue-induced and FIFO-preserving, and TCP
    /// reacts badly (spurious loss detection) to artificial reordering.
    pub(crate) last_arrival: SimTime,
    /// False while an injected outage is in force (see [`Link::set_up`]).
    up: bool,
    delivered_pkts: u64,
    delivered_bytes: Bytes,
}

impl Link {
    /// This link's id.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// Change the shaping rate at runtime (emulating `tc qdisc change`).
    /// `None` removes the limit. Tokens are conserved across the change:
    /// the bucket is first settled at the *old* rate up to `now`, then the
    /// new rate takes over, with the balance clamped to the burst depth.
    /// No credit is forged (a rate raise cannot mint a burst out of thin
    /// air) and none is destroyed (a cut keeps legitimately banked tokens,
    /// exactly as a real `tc qdisc change` leaves the bucket alone).
    pub(crate) fn set_rate(&mut self, rate: Option<BitRate>, now: SimTime) {
        // Settle the bucket at the rate in force until now. No-op when the
        // link was unshaped (an unshaped link has no meaningful balance).
        self.refill(now);
        if let Some(r) = rate {
            assert!(r.as_bps() > 0, "shaped link must have a positive rate");
            if self.burst_bitns == 0 {
                // Was unshaped: give it the default single-MTU burst.
                self.burst_bitns = bitns(Bytes(2_000));
            }
        }
        self.rate = rate;
        self.last_refill = now;
        self.tokens_bitns = self.tokens_bitns.min(self.burst_bitns);
    }

    /// Change the one-way propagation delay at runtime. Packets already on
    /// the wire keep the delay in force at their send time (their arrival
    /// events are already scheduled); only future departures see the new
    /// value.
    pub(crate) fn set_delay(&mut self, delay: SimDuration) {
        self.delay = delay;
    }

    /// Change the independent per-packet drop probability at runtime.
    pub(crate) fn set_loss_prob(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.loss_prob = p;
    }

    /// Change the independent per-packet duplication probability at runtime.
    pub(crate) fn set_dup_prob(&mut self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplication probability out of range"
        );
        self.dup_prob = p;
    }

    /// Take the link down or bring it back up. While down, new offers are
    /// rejected (the caller accounts them as link drops) and nothing is
    /// serviced; packets already queued stay parked and resume, in order,
    /// when the link comes back. Packets already propagating are unaffected
    /// (they left before the cut). Deterministic: consumes no randomness.
    pub(crate) fn set_up(&mut self, up: bool, now: SimTime) {
        if !up && self.up {
            // Settle the bucket at the cut: tokens accrued while carrying
            // traffic are banked, but the dark period must earn nothing.
            self.refill(now);
        }
        if up && !self.up {
            // Resume accrual from now — downtime contributed no tokens.
            self.last_refill = now;
        }
        self.up = up;
    }

    /// Whether the link is currently up (outages are injected by
    /// [`Link::set_up`]).
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Change the queue's byte limit at runtime. Packets evicted by a
    /// shrink are appended to `dropped`; the caller owns their pool slots
    /// and accounts them as queue drops.
    pub(crate) fn set_queue_limit(&mut self, limit: Bytes, dropped: &mut Vec<QueuedPkt>) {
        self.queue.set_byte_limit(limit, dropped);
    }

    /// Source node.
    pub fn from(&self) -> NodeId {
        self.from
    }

    /// Destination node.
    pub fn to(&self) -> NodeId {
        self.to
    }

    /// One-way propagation delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Configured rate, if shaped.
    pub fn rate(&self) -> Option<BitRate> {
        self.rate
    }

    /// Current queue occupancy in bytes.
    pub fn backlog(&self) -> Bytes {
        self.queue.len_bytes()
    }

    /// Packets delivered onto the wire so far.
    pub fn delivered_pkts(&self) -> u64 {
        self.delivered_pkts
    }

    /// Bytes delivered onto the wire so far.
    pub fn delivered_bytes(&self) -> Bytes {
        self.delivered_bytes
    }

    /// Token-bucket balance in bit-nanoseconds (oracle input; 0 when
    /// unshaped).
    pub(crate) fn tokens_bitns(&self) -> u128 {
        self.tokens_bitns
    }

    /// Token-bucket depth in bit-nanoseconds (oracle input; 0 when
    /// unshaped).
    pub(crate) fn burst_bitns(&self) -> u128 {
        self.burst_bitns
    }

    /// Offer a pooled packet to the link's queue. `Err` is a queue drop;
    /// the caller still owns the entry's pool slot and must release it.
    pub fn offer(&mut self, item: QueuedPkt, now: SimTime) -> Result<(), QueuedPkt> {
        if !self.up {
            return Err(item);
        }
        self.queue.enqueue(item, now)
    }

    fn refill(&mut self, now: SimTime) {
        let Some(rate) = self.rate else { return };
        let dt = now.saturating_since(self.last_refill);
        self.last_refill = now;
        self.tokens_bitns = (self.tokens_bitns + rate.as_bps() as u128 * dt.as_nanos() as u128)
            .min(self.burst_bitns);
    }

    /// Release every packet the bank covers (up to `max`) in one activation.
    ///
    /// Delivered packets are appended to `out`; AQM drops encountered along
    /// the way go to `dropped` (caller owns both sets' pool slots). One
    /// token refill settles the bucket for the whole batch — arithmetically
    /// identical to refilling per packet at a fixed `now`, since the
    /// intra-batch elapsed time is zero.
    ///
    /// Returns `Some(t)` when a head packet remains and the earliest it can
    /// depart is `t` (`t == now` only when `max` capped the drain with
    /// tokens still banked); `None` when the queue drained, the link is
    /// down, or the link is unshaped (an unshaped head never waits).
    pub fn service_batch(
        &mut self,
        now: SimTime,
        max: usize,
        out: &mut Vec<QueuedPkt>,
        dropped: &mut Vec<QueuedPkt>,
    ) -> Option<SimTime> {
        if !self.up || max == 0 {
            // Down: queued packets stay parked until the link returns.
            return None;
        }
        let Some(rate) = self.rate else {
            // Unshaped: everything queued departs immediately.
            let mut n = 0;
            while n < max {
                match self.queue.dequeue(now, dropped) {
                    Some(p) => {
                        self.delivered_pkts += 1;
                        self.delivered_bytes += p.size;
                        out.push(p);
                        n += 1;
                    }
                    None => break,
                }
            }
            return None;
        };

        self.refill(now);
        let mut n = 0;
        loop {
            let head = self.queue.peek_size()?;
            let need = bitns(head);
            if self.tokens_bitns < need {
                let deficit = need - self.tokens_bitns;
                let ns = deficit.div_ceil(rate.as_bps() as u128);
                return Some(now + SimDuration::from_nanos(ns.min(u64::MAX as u128) as u64));
            }
            if n >= max {
                // Capped with tokens still banked: ready again immediately.
                return Some(now);
            }
            match self.queue.dequeue(now, dropped) {
                Some(p) => {
                    // AQM may have dropped the peeked head and returned a
                    // different (possibly larger) packet; charge actual size.
                    let actual = bitns(p.size);
                    self.tokens_bitns = self.tokens_bitns.saturating_sub(actual);
                    self.delivered_pkts += 1;
                    self.delivered_bytes += p.size;
                    out.push(p);
                    n += 1;
                }
                None => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Ecn, FlowId, PktRef};

    /// One-packet view of [`Link::service_batch`], so the pacing tests can
    /// still observe each departure/wait decision individually.
    #[derive(Debug)]
    enum Service {
        Deliver(QueuedPkt),
        Wait(SimTime),
        Idle,
    }

    fn service(l: &mut Link, now: SimTime, dropped: &mut Vec<QueuedPkt>) -> Service {
        let mut out = Vec::new();
        let wait = l.service_batch(now, 1, &mut out, dropped);
        if let Some(p) = out.pop() {
            return Service::Deliver(p);
        }
        match wait {
            Some(t) => Service::Wait(t),
            None => Service::Idle,
        }
    }

    fn pkt(size: u64) -> QueuedPkt {
        QueuedPkt {
            pkt: PktRef(0),
            flow: FlowId(1),
            size: Bytes(size),
            ecn: Ecn::NotEct,
            enqueued_at: SimTime::ZERO,
        }
    }

    fn shaped_link(rate_mbps: u64, burst: u64, limit: u64) -> Link {
        LinkSpec {
            shaper: Shaper::TokenBucket {
                rate: BitRate::from_mbps(rate_mbps),
                burst: Bytes(burst),
            },
            delay: SimDuration::from_millis(1),
            queue: QueueSpec::DropTail {
                limit: Bytes(limit),
            },
            jitter: SimDuration::ZERO,
            loss_prob: 0.0,
            dup_prob: 0.0,
        }
        .build(LinkId(0), NodeId(0), NodeId(1))
    }

    #[test]
    fn unshaped_link_releases_immediately() {
        let mut l =
            LinkSpec::lan(SimDuration::from_millis(2)).build(LinkId(0), NodeId(0), NodeId(1));
        l.offer(pkt(1500), SimTime::ZERO).unwrap();
        let mut dropped = vec![];
        match service(&mut l, SimTime::ZERO, &mut dropped) {
            Service::Deliver(p) => assert_eq!(p.size, Bytes(1500)),
            other => panic!("expected Deliver, got {other:?}"),
        }
        assert!(matches!(
            service(&mut l, SimTime::ZERO, &mut dropped),
            Service::Idle
        ));
    }

    #[test]
    fn token_bucket_paces_at_configured_rate() {
        // 12 Mb/s, minimal burst: after the initial bucket is spent, packets
        // must depart 1 ms apart (1500 B = 12 kbit at 12 Mb/s).
        let mut l = shaped_link(12, 2_000, 1_000_000);
        let mut dropped = vec![];
        for _ in 0..10 {
            l.offer(pkt(1500), SimTime::ZERO).unwrap();
        }
        let mut now = SimTime::ZERO;
        let mut departures = vec![];
        loop {
            match service(&mut l, now, &mut dropped) {
                Service::Deliver(_) => departures.push(now),
                Service::Wait(t) => now = t,
                Service::Idle => break,
            }
        }
        assert_eq!(departures.len(), 10);
        // First departs at t=0 from the initial full bucket (2000 B > 1500 B).
        assert_eq!(departures[0], SimTime::ZERO);
        // Steady state: inter-departure 1 ms.
        for w in departures.windows(2).skip(1) {
            let gap = w[1] - w[0];
            assert_eq!(gap, SimDuration::from_millis(1), "gap was {gap:?}");
        }
    }

    #[test]
    fn throughput_matches_rate_over_long_run() {
        let mut l = shaped_link(25, 2_000, 10_000_000);
        let mut dropped = vec![];
        let n = 5_000u64;
        for _ in 0..n {
            l.offer(pkt(1250), SimTime::ZERO).unwrap();
        }
        let mut now = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        let mut count = 0u64;
        loop {
            match service(&mut l, now, &mut dropped) {
                Service::Deliver(_) => {
                    count += 1;
                    last = now;
                }
                Service::Wait(t) => now = t,
                Service::Idle => break,
            }
        }
        assert_eq!(count, n);
        // n packets of 1250 B = 10 kbit each at 25 Mb/s → 0.4 ms each; the
        // initial 2 kB bucket gives the train up to one burst of head start.
        let expect = SimDuration::from_secs_f64((n - 1) as f64 * 0.0004);
        let err = expect.as_secs_f64() - last.as_secs_f64();
        assert!(
            (0.0..0.00065).contains(&err),
            "finished at {last}, expected ~{expect}"
        );
    }

    #[test]
    fn burst_allows_back_to_back_departures() {
        // 10 kB burst lets ~6 MTU packets leave instantly.
        let mut l = shaped_link(10, 10_000, 1_000_000);
        let mut dropped = vec![];
        for _ in 0..6 {
            l.offer(pkt(1500), SimTime::ZERO).unwrap();
        }
        let mut instant = 0;
        while let Service::Deliver(_) = service(&mut l, SimTime::ZERO, &mut dropped) {
            instant += 1;
        }
        assert_eq!(instant, 6);
    }

    #[test]
    fn queue_overflow_drops() {
        let mut l = shaped_link(1, 2_000, 3_000);
        assert!(l.offer(pkt(1500), SimTime::ZERO).is_ok());
        assert!(l.offer(pkt(1500), SimTime::ZERO).is_ok());
        assert!(l.offer(pkt(1500), SimTime::ZERO).is_err());
        assert_eq!(l.backlog(), Bytes(3_000));
    }

    #[test]
    fn tokens_cap_at_burst() {
        let mut l = shaped_link(10, 2_000, 100_000);
        let mut dropped = vec![];
        // Drain the initial bucket.
        l.offer(pkt(2000), SimTime::ZERO).unwrap();
        assert!(matches!(
            service(&mut l, SimTime::ZERO, &mut dropped),
            Service::Deliver(_)
        ));
        // Wait a long time: bucket refills but caps at burst, so only one
        // 2000-B packet can leave instantly.
        let later = SimTime::from_secs(100);
        l.offer(pkt(2000), later).unwrap();
        l.offer(pkt(2000), later).unwrap();
        assert!(matches!(
            service(&mut l, later, &mut dropped),
            Service::Deliver(_)
        ));
        match service(&mut l, later, &mut dropped) {
            Service::Wait(t) => {
                // 2000 B = 16 kbit at 10 Mb/s = 1.6 ms.
                assert_eq!(t - later, SimDuration::from_micros(1600));
            }
            other => panic!("expected Wait, got {other:?}"),
        }
    }

    #[test]
    fn burst_floor_prevents_stalls() {
        // A burst below one MTU would deadlock; the builder clamps it.
        let l = LinkSpec {
            shaper: Shaper::TokenBucket {
                rate: BitRate::from_mbps(1),
                burst: Bytes(10),
            },
            delay: SimDuration::ZERO,
            queue: QueueSpec::DropTail {
                limit: Bytes(10_000),
            },
            jitter: SimDuration::ZERO,
            loss_prob: 0.0,
            dup_prob: 0.0,
        }
        .build(LinkId(0), NodeId(0), NodeId(1));
        // Clamped to 2 kB: a 1500-B packet can depart.
        assert_eq!(l.burst_bitns, 2_000 * 8 * 1_000_000_000);
    }

    #[test]
    fn re_rate_conserves_tokens() {
        // 10 Mb/s, 2 kB burst. Spend the whole initial bucket at t=0, then
        // let 800 us of credit accrue (10 Mb/s x 800 us = 1000 B) before
        // stepping the rate to 20 Mb/s.
        let mut l = shaped_link(10, 2_000, 100_000);
        let mut dropped = vec![];
        l.offer(pkt(2000), SimTime::ZERO).unwrap();
        assert!(matches!(
            service(&mut l, SimTime::ZERO, &mut dropped),
            Service::Deliver(_)
        ));
        let step = SimTime::from_nanos(800_000);
        l.set_rate(Some(BitRate::from_mbps(20)), step);
        l.offer(pkt(1500), step).unwrap();
        match service(&mut l, step, &mut dropped) {
            Service::Wait(t) => {
                // 1500 B needs 12000 bits; 8000 were banked at the old rate
                // and must survive the change; the 4000-bit deficit at the
                // new 20 Mb/s rate is exactly 200 us. A zeroed bucket would
                // wait 600 us; a forged full burst would deliver instantly.
                assert_eq!(t - step, SimDuration::from_micros(200));
            }
            other => panic!("expected Wait, got {other:?}"),
        }
    }

    #[test]
    fn re_rate_does_not_forge_burst() {
        let mut l = shaped_link(10, 2_000, 100_000);
        let mut dropped = vec![];
        l.offer(pkt(2000), SimTime::ZERO).unwrap();
        assert!(matches!(
            service(&mut l, SimTime::ZERO, &mut dropped),
            Service::Deliver(_)
        ));
        // Bucket is empty; raising the rate at the same instant must not
        // mint credit out of thin air.
        l.set_rate(Some(BitRate::from_mbps(100)), SimTime::ZERO);
        l.offer(pkt(1500), SimTime::ZERO).unwrap();
        match service(&mut l, SimTime::ZERO, &mut dropped) {
            Service::Wait(t) => {
                // 12000 bits at 100 Mb/s = 120 us from an empty bucket.
                assert_eq!(t.as_nanos(), 120_000);
            }
            other => panic!("expected Wait, got {other:?}"),
        }
    }

    #[test]
    fn re_rate_clamps_banked_tokens_to_new_burst() {
        // Bank a full 10 kB bucket, then shrink burst via a fresh spec?
        // Burst is fixed per link; instead check the Unshaped->shaped path:
        // the bucket starts empty (nothing banked while unshaped), so the
        // first packet after shaping begins must wait for serialization.
        let mut l =
            LinkSpec::lan(SimDuration::from_millis(1)).build(LinkId(0), NodeId(0), NodeId(1));
        let now = SimTime::from_secs(5);
        l.set_rate(Some(BitRate::from_mbps(10)), now);
        l.offer(pkt(1500), now).unwrap();
        let mut dropped = vec![];
        match service(&mut l, now, &mut dropped) {
            Service::Wait(t) => assert_eq!(t - now, SimDuration::from_micros(1200)),
            other => panic!("expected Wait, got {other:?}"),
        }
    }

    #[test]
    fn outage_parks_queue_and_rejects_offers() {
        let mut l = shaped_link(10, 2_000, 100_000);
        let mut dropped = vec![];
        l.offer(pkt(1000), SimTime::ZERO).unwrap();
        l.set_up(false, SimTime::ZERO);
        assert!(!l.is_up());
        // New arrivals bounce; the parked packet stays put.
        assert!(l.offer(pkt(500), SimTime::ZERO).is_err());
        assert!(matches!(
            service(&mut l, SimTime::ZERO, &mut dropped),
            Service::Idle
        ));
        assert_eq!(l.backlog(), Bytes(1000));
        // Downtime earns no tokens: after 10 s dark, the parked packet
        // still departs on the pre-outage balance (full initial bucket),
        // but nothing beyond the burst is available.
        let later = SimTime::from_secs(10);
        l.set_up(true, later);
        assert!(l.is_up());
        match service(&mut l, later, &mut dropped) {
            Service::Deliver(p) => assert_eq!(p.size, Bytes(1000)),
            other => panic!("expected Deliver, got {other:?}"),
        }
        // 2000 B burst minus the 1000 B just spent leaves 1000 B: a
        // 1500-B packet must wait 500 B x 8 / 10 Mb/s = 400 us.
        l.offer(pkt(1500), later).unwrap();
        match service(&mut l, later, &mut dropped) {
            Service::Wait(t) => assert_eq!(t - later, SimDuration::from_micros(400)),
            other => panic!("expected Wait, got {other:?}"),
        }
    }

    #[test]
    fn wait_time_is_exact() {
        let mut l = shaped_link(15, 2_000, 100_000);
        let mut dropped = vec![];
        l.offer(pkt(2000), SimTime::ZERO).unwrap();
        assert!(matches!(
            service(&mut l, SimTime::ZERO, &mut dropped),
            Service::Deliver(_)
        ));
        l.offer(pkt(1500), SimTime::ZERO).unwrap();
        match service(&mut l, SimTime::ZERO, &mut dropped) {
            Service::Wait(t) => {
                // Need 1500*8 = 12000 bits at 15 Mb/s = 800 us exactly.
                assert_eq!(t.as_nanos(), 800_000);
                // Serving again at exactly t must deliver.
                assert!(matches!(
                    service(&mut l, t, &mut dropped),
                    Service::Deliver(_)
                ));
            }
            other => panic!("expected Wait, got {other:?}"),
        }
    }
}
