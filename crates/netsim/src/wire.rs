//! Packet and payload definitions ("wire formats").
//!
//! Following the smoltcp convention, wire *formats* live in the network
//! crate while protocol *behaviour* lives in the protocol crates. A
//! [`Packet`] carries one [`Payload`] variant; the enum covers every
//! protocol in the reproduced testbed:
//!
//! * [`TcpSegment`] — the iperf competitor's data/ack segments,
//! * [`MediaChunk`] — one MTU-sized slice of a streamed video frame,
//! * [`StreamFeedback`] — the game client's RTCP-like receiver report,
//! * [`PingEcho`] — the testbed's `ping` RTT probe.
//!
//! Sizes are *wire* sizes: payload plus header overhead, so queue occupancy
//! and link utilization match what `tc tbf` would see.

use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimTime};

use crate::net::{AgentId, NodeId};

/// Identifies one end-to-end flow for accounting (a "5-tuple").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u32);

/// IPv4 + UDP header overhead in bytes (20 + 8).
pub const UDP_HEADER: Bytes = Bytes(28);
/// IPv4 + TCP header overhead in bytes (20 + 20, no options).
pub const TCP_HEADER: Bytes = Bytes(40);
/// Conservative media payload per packet (WebRTC-style ~1200 B to dodge
/// fragmentation, as Stadia/GeForce/Luna all do).
pub const MEDIA_MTU: Bytes = Bytes(1200);
/// Standard Ethernet-derived TCP maximum segment size.
pub const TCP_MSS: Bytes = Bytes(1448);

/// ECN codepoint carried in the (simulated) IP header (RFC 3168 § 5).
///
/// The two ECT codepoints are collapsed into one: the nonce variant is
/// historical and nothing in the testbed distinguishes them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Ecn {
    /// Not ECN-capable transport: AQMs drop this packet under congestion.
    #[default]
    NotEct = 0,
    /// ECN-capable transport: AQMs mark instead of dropping.
    Ect = 1,
    /// Congestion experienced: an AQM marked this packet in transit.
    Ce = 2,
}

/// A simulated packet.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Globally unique packet id (assigned by the network on send).
    pub id: u64,
    /// The flow this packet belongs to, for monitoring.
    pub flow: FlowId,
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Agent at the destination that should receive the packet.
    pub dst_agent: AgentId,
    /// Total wire size (payload + headers).
    pub size: Bytes,
    /// Time the sending agent handed the packet to the network.
    pub sent_at: SimTime,
    /// ECN codepoint. Senders set [`Ecn::Ect`] on ECN-capable flows; an
    /// AQM rewrites it to [`Ecn::Ce`] in place of a drop.
    pub ecn: Ecn,
    /// Protocol content.
    pub payload: Payload,
}

/// A handle to a packet parked in a [`PacketPool`].
///
/// Packets are ~150 bytes (the payload union dominates); moving them
/// through every queue, link, and scheduler hop would memcpy that full
/// width per hop. Instead the pool owns the storage and the hot path moves
/// 4-byte refs plus the few header fields queues actually inspect (see
/// [`crate::queue::QueuedPkt`]). A ref is live from [`PacketPool::insert`]
/// until [`PacketPool::take`]; the network takes a packet out exactly once
/// — at final delivery or at the drop-accounting site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PktRef(pub u32);

/// Slab of in-flight packets; see [`PktRef`].
#[derive(Default)]
pub struct PacketPool {
    slots: Vec<Option<Packet>>,
    free: Vec<u32>,
}

impl PacketPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park a packet, returning its handle. Slots are recycled, so a
    /// steady-state simulation stops allocating once the pool covers the
    /// peak number of packets simultaneously in flight.
    pub fn insert(&mut self, pkt: Packet) -> PktRef {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(pkt);
                PktRef(slot)
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Some(pkt));
                PktRef(slot)
            }
        }
    }

    /// Borrow a parked packet.
    ///
    /// # Panics
    /// Panics if `r` was already taken — a use-after-free of the slot.
    pub fn get(&self, r: PktRef) -> &Packet {
        self.slots[r.0 as usize].as_ref().expect("stale PktRef")
    }

    /// Mutably borrow a parked packet (the CE-marking site rewrites the
    /// ECN codepoint of a packet still in flight).
    ///
    /// # Panics
    /// Panics if `r` was already taken.
    pub fn get_mut(&mut self, r: PktRef) -> &mut Packet {
        self.slots[r.0 as usize].as_mut().expect("stale PktRef")
    }

    /// Remove a packet, freeing its slot. Each ref must be taken exactly
    /// once.
    ///
    /// # Panics
    /// Panics if `r` was already taken.
    pub fn take(&mut self, r: PktRef) -> Packet {
        let pkt = self.slots[r.0 as usize].take().expect("stale PktRef");
        self.free.push(r.0);
        pkt
    }

    /// Duplicate a parked packet into a fresh slot (netem-style
    /// duplication is the one place the simulator truly copies a packet).
    pub fn clone_of(&mut self, r: PktRef) -> PktRef {
        let copy = self.get(r).clone();
        self.insert(copy)
    }

    /// Number of packets currently parked.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True when no packets are in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Protocol content of a packet.
#[derive(Clone, Debug)]
pub enum Payload {
    /// A TCP segment (data, pure ack, or both).
    Tcp(TcpSegment),
    /// A slice of a streamed video frame.
    Media(MediaChunk),
    /// Receiver report from game client to game server.
    Feedback(StreamFeedback),
    /// ICMP-echo-like RTT probe.
    Ping(PingEcho),
    /// Opaque filler (cross traffic, tests).
    Raw,
}

/// A TCP segment. Sequence numbers count bytes, 64-bit so wraparound never
/// complicates the simulation (a real implementation would wrap mod 2^32).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpSegment {
    /// First payload byte carried by this segment.
    pub seq: u64,
    /// Number of payload bytes carried (0 for a pure ack).
    pub len: u32,
    /// Cumulative acknowledgment: next byte expected by the sender of this
    /// segment.
    pub ack: u64,
    /// Receiver advertised window in bytes.
    pub wnd: u64,
    /// Set on SYN segments (connection setup is modelled minimally).
    pub syn: bool,
    /// Set on FIN segments.
    pub fin: bool,
    /// ECN congestion-experienced echo (reserved for AQM extensions).
    pub ece: bool,
    /// Timestamp echo: the `sent_at` of the segment being acknowledged,
    /// used for RTT sampling without retransmission ambiguity (the
    /// simulator stamps each transmission, so Karn's rule is implicit).
    pub ts_echo: Option<SimTime>,
    /// Up to three SACK blocks `(start, end)` describing out-of-order data
    /// held by the receiver, most recent first (RFC 2018 allows 3 blocks
    /// alongside timestamps).
    pub sack: [Option<(u64, u64)>; 3],
}

impl TcpSegment {
    /// A pure cumulative acknowledgment with no SACK information.
    pub fn pure_ack(ack: u64, wnd: u64, ts_echo: Option<SimTime>) -> Self {
        TcpSegment {
            seq: 0,
            len: 0,
            ack,
            wnd,
            syn: false,
            fin: false,
            ece: false,
            ts_echo,
            sack: [None; 3],
        }
    }

    /// A data segment carrying `[seq, seq+len)`.
    pub fn data(seq: u64, len: u32) -> Self {
        TcpSegment {
            seq,
            len,
            ack: 0,
            wnd: 0,
            syn: false,
            fin: false,
            ece: false,
            ts_echo: None,
            sack: [None; 3],
        }
    }
}

/// One MTU-sized chunk of an encoded video frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MediaChunk {
    /// Monotonic per-flow media sequence number (for loss detection).
    pub seq: u64,
    /// Frame this chunk belongs to.
    pub frame_id: u64,
    /// Chunk index within the frame, `0..chunk_count` for data chunks;
    /// parity chunks continue the numbering after the data.
    pub chunk_index: u16,
    /// Number of *data* chunks in the frame.
    pub chunk_count: u16,
    /// Number of parity (FEC) chunks accompanying the frame.
    pub parity_count: u16,
    /// True for a parity chunk (forward error correction).
    pub is_parity: bool,
    /// Capture timestamp of the frame at the server.
    pub frame_ts: SimTime,
    /// True for intra-coded (key) frames, which are larger.
    pub key_frame: bool,
}

/// The game client's periodic receiver report (RTCP-RR-like, 100 ms cadence
/// in all three modelled systems).
#[derive(Clone, Copy, Debug)]
pub struct StreamFeedback {
    /// Report sequence number.
    pub seq: u64,
    /// Goodput observed by the receiver over the report window.
    pub recv_rate: BitRate,
    /// Fraction of media packets lost in the report window (0..=1).
    pub loss: f64,
    /// Most recent one-way delay estimate (clock-synchronized simulation,
    /// so exact).
    pub owd: SimDuration,
    /// Minimum one-way delay seen since stream start (base delay).
    pub owd_min: SimDuration,
    /// Slope of one-way delay over the report window, in ms per second —
    /// the delay-gradient signal Google congestion control uses.
    pub owd_trend_ms_per_s: f64,
    /// Timestamp echo for server-side RTT estimation.
    pub last_media_ts: Option<SimTime>,
}

/// Ping request/response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PingEcho {
    /// Probe sequence number.
    pub seq: u64,
    /// False for the request, true for the reply.
    pub is_reply: bool,
    /// Origin timestamp carried end-to-end so the requester can compute RTT.
    pub t_origin: SimTime,
}

impl Packet {
    /// One-way network delay this packet experienced so far (now − sent).
    pub fn age(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.sent_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_constants_are_standard() {
        assert_eq!(UDP_HEADER.as_u64(), 28);
        assert_eq!(TCP_HEADER.as_u64(), 40);
        // MSS + TCP/IP headers < Ethernet MTU.
        assert!(TCP_MSS.as_u64() + TCP_HEADER.as_u64() <= 1500);
        assert!(MEDIA_MTU.as_u64() + UDP_HEADER.as_u64() <= 1500);
    }

    #[test]
    fn packet_age() {
        let p = Packet {
            id: 0,
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            dst_agent: AgentId(0),
            size: Bytes(100),
            sent_at: SimTime::from_millis(10),
            ecn: Ecn::NotEct,
            payload: Payload::Raw,
        };
        assert_eq!(
            p.age(SimTime::from_millis(25)),
            SimDuration::from_millis(15)
        );
        // Age saturates instead of underflowing.
        assert_eq!(p.age(SimTime::ZERO), SimDuration::ZERO);
    }

    fn raw_pkt(id: u64) -> Packet {
        Packet {
            id,
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            dst_agent: AgentId(0),
            size: Bytes(100),
            sent_at: SimTime::ZERO,
            ecn: Ecn::NotEct,
            payload: Payload::Raw,
        }
    }

    #[test]
    fn pool_recycles_slots() {
        let mut pool = PacketPool::new();
        let a = pool.insert(raw_pkt(1));
        let b = pool.insert(raw_pkt(2));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.get(a).id, 1);
        assert_eq!(pool.take(a).id, 1);
        // The freed slot is reused before the pool grows.
        let c = pool.insert(raw_pkt(3));
        assert_eq!(c.0, a.0);
        assert_eq!(pool.get(b).id, 2);
        assert_eq!(pool.get(c).id, 3);
        pool.take(b);
        pool.take(c);
        assert!(pool.is_empty());
    }

    #[test]
    #[should_panic(expected = "stale PktRef")]
    fn pool_take_twice_panics() {
        let mut pool = PacketPool::new();
        let r = pool.insert(raw_pkt(1));
        pool.take(r);
        pool.take(r);
    }

    #[test]
    fn pool_clone_of_copies_content() {
        let mut pool = PacketPool::new();
        let r = pool.insert(raw_pkt(9));
        let c = pool.clone_of(r);
        assert_ne!(r, c);
        assert_eq!(pool.get(c).id, 9);
        assert_eq!(pool.len(), 2);
    }
}
