//! Declarative time-varying link scenarios.
//!
//! A [`ScenarioSpec`] is a schedule of per-link disturbances — rate steps,
//! delay steps, loss/duplication-probability windows, full outages, and
//! queue-limit changes — each at an absolute simulation time. The engine
//! applies steps through ordinary scheduled events
//! ([`crate::net::NetEvent::Scenario`]), so traced and untraced runs stay
//! bit-identical and any run reproduces from (condition, seed) alone.
//! Every application is recorded as a `link_scenario` telemetry event, so
//! an exported trace proves each disturbance actually happened.
//!
//! Real paths disturb streams by changing themselves, not only by adding
//! competitors: GeForce NOW sessions observed in the wild ride through
//! rate renegotiations and outages, and physical testbeds induce the same
//! with `tc qdisc change`. This module is the simulator's equivalent of
//! running `tc` against a live router mid-experiment.

//! ## Edge-case semantics
//!
//! * **Steps scheduled in the past** (before the sim's clock when the
//!   scenario is applied) are clamped to "now" by the scheduler and
//!   counted in `past_clamps`; a spec applied before the run starts can
//!   therefore use any time ≥ 0. This is deliberate: a schedule is a
//!   *declaration*, and applying it late means "as of now".
//! * **Zero-duration windows** (`from == to`) are a documented no-op:
//!   the open and the close land at the same instant and apply in FIFO
//!   order, so the probability (or outage) is set and immediately reset
//!   before any packet can observe it.
//! * **Overlapping windows** on one link are last-writer-wins: every
//!   step *sets* an absolute value, so the first window's close resets
//!   the probability to zero even if a second window is still "open".
//!   Inverted windows (`to < from`) are rejected at build time.
//! * [`ScenarioSpec::validate`] rejects the inputs that would otherwise
//!   trip an assertion deep inside the link layer mid-run — a
//!   probability outside `[0, 1]` (or NaN) and a zero shaping rate —
//!   converting those panics into a structured
//!   [`SimError::InvalidScenario`].

use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimError, SimRng, SimTime};

use crate::link::LinkId;

/// One live reconfiguration of a link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScenarioAction {
    /// Change the shaping rate (`None` removes the limit). Token-bucket
    /// credit is conserved across the change — no burst is forged and no
    /// banked tokens are destroyed.
    Rate(Option<BitRate>),
    /// Change the one-way propagation delay. Packets already propagating
    /// keep the delay in force at their send time.
    Delay(SimDuration),
    /// Change the independent per-packet drop probability.
    Loss(f64),
    /// Change the independent per-packet duplication probability.
    Duplication(f64),
    /// Take the link down (`false`) or bring it back up (`true`). While
    /// down, arrivals are dropped at the link and queued packets park.
    Up(bool),
    /// Change the queue's byte limit. A shrink evicts newest-first.
    QueueLimit(Bytes),
}

impl ScenarioAction {
    /// Stable wire code carried in the `link_scenario` telemetry event's
    /// `b` payload word.
    pub fn wire_code(&self) -> u64 {
        match self {
            ScenarioAction::Rate(_) => 0,
            ScenarioAction::Delay(_) => 1,
            ScenarioAction::Loss(_) => 2,
            ScenarioAction::Duplication(_) => 3,
            ScenarioAction::Up(_) => 4,
            ScenarioAction::QueueLimit(_) => 5,
        }
    }
}

/// One scheduled disturbance: apply `action` to `link` at `at`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioStep {
    /// Absolute simulation time of the change.
    pub at: SimTime,
    /// The link to reconfigure.
    pub link: LinkId,
    /// What changes.
    pub action: ScenarioAction,
}

/// A declarative per-link disturbance schedule. Build one with the fluent
/// helpers, then hand it to [`crate::net::Sim::apply_scenario`] before
/// (or during) a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScenarioSpec {
    /// The schedule, in insertion order (the engine orders by time).
    pub steps: Vec<ScenarioStep>,
}

impl ScenarioSpec {
    /// An empty schedule.
    pub fn new() -> Self {
        ScenarioSpec::default()
    }

    /// Append an arbitrary step.
    pub fn step(mut self, at: SimTime, link: LinkId, action: ScenarioAction) -> Self {
        self.steps.push(ScenarioStep { at, link, action });
        self
    }

    /// Step the shaping rate at `at`.
    pub fn rate(self, at: SimTime, link: LinkId, rate: BitRate) -> Self {
        self.step(at, link, ScenarioAction::Rate(Some(rate)))
    }

    /// Step the one-way propagation delay at `at`.
    pub fn delay(self, at: SimTime, link: LinkId, delay: SimDuration) -> Self {
        self.step(at, link, ScenarioAction::Delay(delay))
    }

    /// Open a random-loss window: probability `p` from `from` to `to`.
    /// Zero-duration windows (`from == to`) are a documented no-op;
    /// inverted windows are rejected.
    pub fn loss_window(self, from: SimTime, to: SimTime, link: LinkId, p: f64) -> Self {
        assert!(from <= to, "loss window ends before it starts");
        self.step(from, link, ScenarioAction::Loss(p))
            .step(to, link, ScenarioAction::Loss(0.0))
    }

    /// Open a duplication window: probability `p` from `from` to `to`.
    /// Zero-duration windows (`from == to`) are a documented no-op;
    /// inverted windows are rejected.
    pub fn duplication_window(self, from: SimTime, to: SimTime, link: LinkId, p: f64) -> Self {
        assert!(from <= to, "duplication window ends before it starts");
        self.step(from, link, ScenarioAction::Duplication(p)).step(
            to,
            link,
            ScenarioAction::Duplication(0.0),
        )
    }

    /// Full outage from `from` to `to`. Zero-duration outages
    /// (`from == to`) are a documented no-op (down and up apply
    /// back-to-back at the same instant); inverted windows are rejected.
    pub fn outage(self, from: SimTime, to: SimTime, link: LinkId) -> Self {
        assert!(from <= to, "outage ends before it starts");
        self.step(from, link, ScenarioAction::Up(false))
            .step(to, link, ScenarioAction::Up(true))
    }

    /// Change the queue byte limit at `at`.
    pub fn queue_limit(self, at: SimTime, link: LinkId, limit: Bytes) -> Self {
        self.step(at, link, ScenarioAction::QueueLimit(limit))
    }

    /// Times of all steps, sorted ascending — the disturbance instants a
    /// settling-time analysis scans from.
    pub fn disturbance_times(&self) -> Vec<SimTime> {
        let mut ts: Vec<SimTime> = self.steps.iter().map(|s| s.at).collect();
        ts.sort();
        ts
    }

    /// Reject steps that would trip an assertion deep inside the link
    /// layer mid-run: probabilities outside `[0, 1]` (or NaN) and zero
    /// shaping rates. Everything else — past times, zero-duration
    /// windows, overlapping windows, zero queue limits — has documented
    /// semantics (see the module docs) and passes.
    pub fn validate(&self) -> Result<(), SimError> {
        for (i, st) in self.steps.iter().enumerate() {
            let reject = |what: String| {
                Err(SimError::InvalidScenario {
                    detail: format!(
                        "step {i} (link {} at t={}ns): {what}",
                        st.link.0,
                        st.at.as_nanos()
                    ),
                })
            };
            match st.action {
                ScenarioAction::Loss(p) if !(0.0..=1.0).contains(&p) => {
                    return reject(format!("loss probability {p} outside [0, 1]"));
                }
                ScenarioAction::Duplication(p) if !(0.0..=1.0).contains(&p) => {
                    return reject(format!("duplication probability {p} outside [0, 1]"));
                }
                ScenarioAction::Rate(Some(r)) if r.as_bps() == 0 => {
                    return reject("shaped rate of 0 b/s (use an outage instead)".to_string());
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// What the chaos generator may do to one link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkProfile {
    /// The link to disturb.
    pub link: LinkId,
    /// Nominal shaped rate, if the link is shaped. Rate crashes restore
    /// to this; unshaped links (`None`) only get loss/dup/delay/outage
    /// disturbances.
    pub capacity: Option<BitRate>,
    /// Nominal queue byte limit, if the link is shaped. Queue shrinks
    /// restore to this.
    pub queue_bytes: Option<Bytes>,
}

impl LinkProfile {
    /// A shaped link (rate crashes and queue shrinks allowed).
    pub fn shaped(link: LinkId, capacity: BitRate, queue_bytes: Bytes) -> Self {
        LinkProfile {
            link,
            capacity: Some(capacity),
            queue_bytes: Some(queue_bytes),
        }
    }

    /// An unshaped link (loss/dup/delay/outage only).
    pub fn plain(link: LinkId) -> Self {
        LinkProfile {
            link,
            capacity: None,
            queue_bytes: None,
        }
    }
}

/// Scheduler tick width (2^16 ns): the timing wheel's quantum, and the
/// boundary the chaos generator deliberately aims step times at.
const TICK_NS: u64 = 1 << 16;

/// Seeded adversarial schedule generator: samples [`ScenarioSpec`]s no
/// curated grid would pick — stacked rate crashes, outages, loss and
/// duplication windows, queue shrinks, multi-link combinations, and
/// pathological step timings at tick and horizon boundaries. Every
/// sampled spec passes [`ScenarioSpec::validate`] by construction (a
/// property test pins this).
///
/// Distributions (documented in DESIGN.md §11): disturbance count is
/// uniform in `1..=max_disturbances`; each disturbance picks a link
/// uniformly and a kind uniformly from the kinds the link supports;
/// times are a 3:1 mixture of uniform-over-horizon and "pathological"
/// instants (0, tick multiples ±1 ns, the last tick before the
/// horizon); window durations are log-uniform from 1 µs to horizon/4,
/// with a 1-in-8 chance of a zero-duration window; rate crashes divide
/// capacity by 2..=64; queue shrinks divide the limit by 2..=64 with a
/// 1-in-16 chance of a 1-byte limit; loss/dup probabilities are uniform
/// in (0, 0.3] with a 1-in-10 chance of a total-loss window (p = 1).
#[derive(Clone, Debug)]
pub struct ScenarioGen {
    /// End of the schedule: no step is generated at or beyond this.
    pub horizon: SimTime,
    /// Upper bound on generated disturbances (a window counts as one
    /// disturbance but contributes two steps).
    pub max_disturbances: usize,
    /// The links the generator may disturb.
    pub links: Vec<LinkProfile>,
}

impl ScenarioGen {
    /// Sample one adversarial schedule. Consumes only `rng`, so equal
    /// seeds reproduce equal schedules.
    pub fn sample(&self, rng: &mut SimRng) -> ScenarioSpec {
        use rand::Rng;
        assert!(!self.links.is_empty(), "generator needs at least one link");
        assert!(self.max_disturbances > 0, "max_disturbances must be ≥ 1");
        let horizon_ns = self.horizon.as_nanos().max(TICK_NS * 2);
        let n = rng.gen_range(1..=self.max_disturbances);
        let mut spec = ScenarioSpec::new();
        for _ in 0..n {
            let lp = self.links[rng.gen_range(0..self.links.len())];
            let from = self.sample_time(rng, horizon_ns);
            // Kind codes: 0 rate crash, 1 queue shrink (shaped only),
            // 2 outage, 3 loss window, 4 dup window, 5 delay step.
            let kind = if lp.capacity.is_some() {
                rng.gen_range(0..6u32)
            } else {
                rng.gen_range(2..6u32)
            };
            spec = match kind {
                0 => {
                    let cap = lp.capacity.expect("shaped-only kind");
                    let crashed = BitRate::from_bps(
                        (cap.as_bps() / (1u64 << rng.gen_range(1..=6u32))).max(1_000),
                    );
                    let to = self.window_end(rng, from, horizon_ns);
                    spec.rate(from, lp.link, crashed).rate(to, lp.link, cap)
                }
                1 => {
                    let q = lp.queue_bytes.expect("shaped-only kind");
                    let shrunk = if rng.gen_range(0..16u32) == 0 {
                        Bytes(1)
                    } else {
                        Bytes((q.as_u64() / (1u64 << rng.gen_range(1..=6u32))).max(1))
                    };
                    let to = self.window_end(rng, from, horizon_ns);
                    spec.queue_limit(from, lp.link, shrunk)
                        .queue_limit(to, lp.link, q)
                }
                2 => {
                    let to = self.window_end(rng, from, horizon_ns);
                    spec.outage(from, to, lp.link)
                }
                3 => {
                    let p = if rng.gen_range(0..10u32) == 0 {
                        1.0
                    } else {
                        rng.gen_range(0.0..0.3f64).max(1e-6)
                    };
                    let to = self.window_end(rng, from, horizon_ns);
                    spec.loss_window(from, to, lp.link, p)
                }
                4 => {
                    let p = rng.gen_range(0.0..0.3f64).max(1e-6);
                    let to = self.window_end(rng, from, horizon_ns);
                    spec.duplication_window(from, to, lp.link, p)
                }
                _ => {
                    // Log-uniform delay in [0, 100 ms]: exponent-first.
                    let exp = rng.gen_range(0..=7u32); // 10^0..10^7 ns
                    let d = rng.gen_range(1..10u64) * 10u64.pow(exp);
                    spec.delay(from, lp.link, SimDuration::from_nanos(d))
                }
            };
        }
        spec
    }

    /// Step instant: 3:1 uniform vs pathological (tick/horizon aligned).
    fn sample_time(&self, rng: &mut SimRng, horizon_ns: u64) -> SimTime {
        use rand::Rng;
        let ns = if rng.gen_range(0..4u32) == 0 {
            let last_tick = (horizon_ns - 1) / TICK_NS;
            let tick = rng.gen_range(0..=last_tick) * TICK_NS;
            match rng.gen_range(0..3u32) {
                0 => tick,
                1 => tick.saturating_sub(1),
                _ => (tick + 1).min(horizon_ns - 1),
            }
        } else {
            rng.gen_range(0..horizon_ns)
        };
        SimTime::from_nanos(ns)
    }

    /// Window close: zero-duration 1-in-8, else log-uniform duration
    /// from 1 µs up to a quarter horizon, clamped to the horizon.
    fn window_end(&self, rng: &mut SimRng, from: SimTime, horizon_ns: u64) -> SimTime {
        use rand::Rng;
        if rng.gen_range(0..8u32) == 0 {
            return from;
        }
        let max_exp = (horizon_ns / 4).max(2_000).ilog10();
        let exp = rng.gen_range(3..=max_exp);
        let dur = rng.gen_range(1..10u64) * 10u64.pow(exp);
        SimTime::from_nanos((from.as_nanos() + dur).min(horizon_ns - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_steps_in_order() {
        let l = LinkId(3);
        let s = ScenarioSpec::new()
            .rate(SimTime::from_secs(100), l, BitRate::from_mbps(10))
            .outage(SimTime::from_secs(150), SimTime::from_secs(152), l)
            .loss_window(SimTime::from_secs(200), SimTime::from_secs(210), l, 0.05)
            .queue_limit(SimTime::from_secs(250), l, Bytes(10_000));
        assert_eq!(s.steps.len(), 6);
        assert_eq!(
            s.steps[0].action,
            ScenarioAction::Rate(Some(BitRate::from_mbps(10)))
        );
        assert_eq!(s.steps[1].action, ScenarioAction::Up(false));
        assert_eq!(s.steps[2].action, ScenarioAction::Up(true));
        assert_eq!(s.steps[5].action, ScenarioAction::QueueLimit(Bytes(10_000)));
        let ts = s.disturbance_times();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ts[0], SimTime::from_secs(100));
    }

    #[test]
    fn wire_codes_are_stable_and_distinct() {
        let codes = [
            ScenarioAction::Rate(None).wire_code(),
            ScenarioAction::Delay(SimDuration::ZERO).wire_code(),
            ScenarioAction::Loss(0.0).wire_code(),
            ScenarioAction::Duplication(0.0).wire_code(),
            ScenarioAction::Up(true).wire_code(),
            ScenarioAction::QueueLimit(Bytes::ZERO).wire_code(),
        ];
        assert_eq!(codes, [0, 1, 2, 3, 4, 5]);
    }
}
