//! Declarative time-varying link scenarios.
//!
//! A [`ScenarioSpec`] is a schedule of per-link disturbances — rate steps,
//! delay steps, loss/duplication-probability windows, full outages, and
//! queue-limit changes — each at an absolute simulation time. The engine
//! applies steps through ordinary scheduled events
//! ([`crate::net::NetEvent::Scenario`]), so traced and untraced runs stay
//! bit-identical and any run reproduces from (condition, seed) alone.
//! Every application is recorded as a `link_scenario` telemetry event, so
//! an exported trace proves each disturbance actually happened.
//!
//! Real paths disturb streams by changing themselves, not only by adding
//! competitors: GeForce NOW sessions observed in the wild ride through
//! rate renegotiations and outages, and physical testbeds induce the same
//! with `tc qdisc change`. This module is the simulator's equivalent of
//! running `tc` against a live router mid-experiment.

use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimTime};

use crate::link::LinkId;

/// One live reconfiguration of a link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScenarioAction {
    /// Change the shaping rate (`None` removes the limit). Token-bucket
    /// credit is conserved across the change — no burst is forged and no
    /// banked tokens are destroyed.
    Rate(Option<BitRate>),
    /// Change the one-way propagation delay. Packets already propagating
    /// keep the delay in force at their send time.
    Delay(SimDuration),
    /// Change the independent per-packet drop probability.
    Loss(f64),
    /// Change the independent per-packet duplication probability.
    Duplication(f64),
    /// Take the link down (`false`) or bring it back up (`true`). While
    /// down, arrivals are dropped at the link and queued packets park.
    Up(bool),
    /// Change the queue's byte limit. A shrink evicts newest-first.
    QueueLimit(Bytes),
}

impl ScenarioAction {
    /// Stable wire code carried in the `link_scenario` telemetry event's
    /// `b` payload word.
    pub fn wire_code(&self) -> u64 {
        match self {
            ScenarioAction::Rate(_) => 0,
            ScenarioAction::Delay(_) => 1,
            ScenarioAction::Loss(_) => 2,
            ScenarioAction::Duplication(_) => 3,
            ScenarioAction::Up(_) => 4,
            ScenarioAction::QueueLimit(_) => 5,
        }
    }
}

/// One scheduled disturbance: apply `action` to `link` at `at`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioStep {
    /// Absolute simulation time of the change.
    pub at: SimTime,
    /// The link to reconfigure.
    pub link: LinkId,
    /// What changes.
    pub action: ScenarioAction,
}

/// A declarative per-link disturbance schedule. Build one with the fluent
/// helpers, then hand it to [`crate::net::Sim::apply_scenario`] before
/// (or during) a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScenarioSpec {
    /// The schedule, in insertion order (the engine orders by time).
    pub steps: Vec<ScenarioStep>,
}

impl ScenarioSpec {
    /// An empty schedule.
    pub fn new() -> Self {
        ScenarioSpec::default()
    }

    /// Append an arbitrary step.
    pub fn step(mut self, at: SimTime, link: LinkId, action: ScenarioAction) -> Self {
        self.steps.push(ScenarioStep { at, link, action });
        self
    }

    /// Step the shaping rate at `at`.
    pub fn rate(self, at: SimTime, link: LinkId, rate: BitRate) -> Self {
        self.step(at, link, ScenarioAction::Rate(Some(rate)))
    }

    /// Step the one-way propagation delay at `at`.
    pub fn delay(self, at: SimTime, link: LinkId, delay: SimDuration) -> Self {
        self.step(at, link, ScenarioAction::Delay(delay))
    }

    /// Open a random-loss window: probability `p` from `from` to `to`.
    pub fn loss_window(self, from: SimTime, to: SimTime, link: LinkId, p: f64) -> Self {
        self.step(from, link, ScenarioAction::Loss(p))
            .step(to, link, ScenarioAction::Loss(0.0))
    }

    /// Open a duplication window: probability `p` from `from` to `to`.
    pub fn duplication_window(self, from: SimTime, to: SimTime, link: LinkId, p: f64) -> Self {
        self.step(from, link, ScenarioAction::Duplication(p)).step(
            to,
            link,
            ScenarioAction::Duplication(0.0),
        )
    }

    /// Full outage from `from` to `to`.
    pub fn outage(self, from: SimTime, to: SimTime, link: LinkId) -> Self {
        self.step(from, link, ScenarioAction::Up(false))
            .step(to, link, ScenarioAction::Up(true))
    }

    /// Change the queue byte limit at `at`.
    pub fn queue_limit(self, at: SimTime, link: LinkId, limit: Bytes) -> Self {
        self.step(at, link, ScenarioAction::QueueLimit(limit))
    }

    /// Times of all steps, sorted ascending — the disturbance instants a
    /// settling-time analysis scans from.
    pub fn disturbance_times(&self) -> Vec<SimTime> {
        let mut ts: Vec<SimTime> = self.steps.iter().map(|s| s.at).collect();
        ts.sort();
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_steps_in_order() {
        let l = LinkId(3);
        let s = ScenarioSpec::new()
            .rate(SimTime::from_secs(100), l, BitRate::from_mbps(10))
            .outage(SimTime::from_secs(150), SimTime::from_secs(152), l)
            .loss_window(SimTime::from_secs(200), SimTime::from_secs(210), l, 0.05)
            .queue_limit(SimTime::from_secs(250), l, Bytes(10_000));
        assert_eq!(s.steps.len(), 6);
        assert_eq!(
            s.steps[0].action,
            ScenarioAction::Rate(Some(BitRate::from_mbps(10)))
        );
        assert_eq!(s.steps[1].action, ScenarioAction::Up(false));
        assert_eq!(s.steps[2].action, ScenarioAction::Up(true));
        assert_eq!(s.steps[5].action, ScenarioAction::QueueLimit(Bytes(10_000)));
        let ts = s.disturbance_times();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ts[0], SimTime::from_secs(100));
    }

    #[test]
    fn wire_codes_are_stable_and_distinct() {
        let codes = [
            ScenarioAction::Rate(None).wire_code(),
            ScenarioAction::Delay(SimDuration::ZERO).wire_code(),
            ScenarioAction::Loss(0.0).wire_code(),
            ScenarioAction::Duplication(0.0).wire_code(),
            ScenarioAction::Up(true).wire_code(),
            ScenarioAction::QueueLimit(Bytes::ZERO).wire_code(),
        ];
        assert_eq!(codes, [0, 1, 2, 3, 4, 5]);
    }
}
