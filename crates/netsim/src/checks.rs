//! Network-domain invariant oracles.
//!
//! The [`gsrepro_simcore::checks::Checks`] handle owns the when-and-how of
//! oracle evaluation (zero cost disabled, structured panic on violation);
//! this module owns the *what*: the conservation laws a healthy network
//! must satisfy at any quiescent point, audited over plain-data snapshots
//! so the oracles themselves are unit-testable without building a network.
//!
//! * **Packet conservation** — every packet handed to the network is
//!   delivered, dropped, or still in flight; duplicates (the one place the
//!   simulator copies a packet) are counted at the clone site:
//!   `sent + duplicated == delivered + dropped + in-flight`.
//! * **Queue bounds** — no discipline ever holds more bytes than its
//!   configured capacity, including across runtime limit changes.
//! * **Token conservation** — no token bucket ever holds more than its
//!   burst, including across scenario re-rates (`tc qdisc change`).
//! * **Telemetry cross-check** — when the flight recorder is also on, its
//!   drop counters must agree with the monitor's per-flow totals.
//!
//! The full audit runs at the end of every `Sim::run_until` when checks
//! are enabled; the cheap per-event oracles (monotonic clock, queue bound
//! at enqueue, token bound at re-rate) run inline in `net.rs`.

use gsrepro_simcore::checks::Checks;
use gsrepro_simcore::telemetry::Counters;
use gsrepro_simcore::SimTime;

/// Snapshot of one link's auditable state.
#[derive(Clone, Copy, Debug)]
pub struct LinkAudit {
    /// Link id (for the violation report).
    pub id: u32,
    /// Current queue occupancy in bytes.
    pub backlog_bytes: u64,
    /// Configured queue capacity in bytes, if byte-limited.
    pub capacity_bytes: Option<u64>,
    /// Token-bucket balance in bit-nanoseconds (0 when unshaped).
    pub tokens_bitns: u128,
    /// Token-bucket depth in bit-nanoseconds (0 when unshaped).
    pub burst_bitns: u128,
}

/// Network-wide packet totals, summed over every flow.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetTotals {
    /// Packets handed to the network by senders.
    pub sent: u64,
    /// Packets that reached their destination node.
    pub delivered: u64,
    /// Packets dropped at queues (tail drop, AQM, outage rejections,
    /// shrink evictions).
    pub queue_drops: u64,
    /// Packets dropped by link fault injection.
    pub link_drops: u64,
    /// Extra copies minted by duplication fault injection.
    pub duplicated: u64,
    /// Packets currently parked in the pool (queued, on the wire, or
    /// scheduled to arrive).
    pub in_flight: u64,
    /// ECN-capable packets CE-marked by an AQM instead of dropped.
    /// Marked packets still deliver, so this is *not* a term in the
    /// conservation identity — it is cross-checked against telemetry.
    pub ce_marked: u64,
}

/// Audit one link snapshot: queue occupancy within capacity, token balance
/// within burst.
pub fn audit_link(checks: &mut Checks, now: SimTime, l: &LinkAudit) {
    if let Some(cap) = l.capacity_bytes {
        checks.check(
            l.backlog_bytes <= cap,
            now,
            "queue-bound",
            || format!("link {}", l.id),
            || format!("backlog {} B exceeds capacity {} B", l.backlog_bytes, cap),
        );
    }
    checks.check(
        l.tokens_bitns <= l.burst_bitns,
        now,
        "token-conservation",
        || format!("link {}", l.id),
        || {
            format!(
                "bucket holds {} bit-ns, burst is {} bit-ns",
                l.tokens_bitns, l.burst_bitns
            )
        },
    );
}

/// Audit global packet conservation:
/// `sent + duplicated == delivered + dropped + in-flight`.
pub fn audit_conservation(checks: &mut Checks, now: SimTime, t: &NetTotals) {
    let injected = t.sent + t.duplicated;
    let accounted = t.delivered + t.queue_drops + t.link_drops + t.in_flight;
    checks.check(
        injected == accounted,
        now,
        "packet-conservation",
        || "network".into(),
        || {
            format!(
                "sent {} + duplicated {} != delivered {} + queue-drops {} \
                 + link-drops {} + in-flight {}",
                t.sent, t.duplicated, t.delivered, t.queue_drops, t.link_drops, t.in_flight
            )
        },
    );
}

/// Cross-check the flight recorder's drop counters against the monitor's
/// totals (only meaningful when both subsystems are enabled).
pub fn audit_telemetry(checks: &mut Checks, now: SimTime, counters: &Counters, t: &NetTotals) {
    checks.check(
        counters.queue_drops == t.queue_drops,
        now,
        "telemetry-cross-check",
        || "queue drops".into(),
        || {
            format!(
                "telemetry counted {} queue drops, monitor counted {}",
                counters.queue_drops, t.queue_drops
            )
        },
    );
    checks.check(
        counters.link_drops == t.link_drops,
        now,
        "telemetry-cross-check",
        || "link drops".into(),
        || {
            format!(
                "telemetry counted {} link drops, monitor counted {}",
                counters.link_drops, t.link_drops
            )
        },
    );
    checks.check(
        counters.ecn_marks == t.ce_marked,
        now,
        "telemetry-cross-check",
        || "ecn marks".into(),
        || {
            format!(
                "telemetry counted {} CE marks, monitor counted {}",
                counters.ecn_marks, t.ce_marked
            )
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_link() -> LinkAudit {
        LinkAudit {
            id: 0,
            backlog_bytes: 500,
            capacity_bytes: Some(1000),
            tokens_bitns: 10,
            burst_bitns: 20,
        }
    }

    #[test]
    fn clean_snapshots_pass() {
        let mut c = Checks::enabled();
        audit_link(&mut c, SimTime::ZERO, &clean_link());
        audit_conservation(
            &mut c,
            SimTime::ZERO,
            &NetTotals {
                sent: 10,
                delivered: 6,
                queue_drops: 2,
                link_drops: 1,
                duplicated: 1,
                in_flight: 2,
                ce_marked: 0,
            },
        );
        let counters = Counters {
            queue_drops: 2,
            link_drops: 1,
            ecn_marks: 4,
            ..Counters::default()
        };
        audit_telemetry(
            &mut c,
            SimTime::ZERO,
            &counters,
            &NetTotals {
                queue_drops: 2,
                link_drops: 1,
                ce_marked: 4,
                ..NetTotals::default()
            },
        );
        assert_eq!(c.performed(), 6);
    }

    #[test]
    fn unlimited_queue_skips_bound() {
        let mut c = Checks::enabled();
        let l = LinkAudit {
            capacity_bytes: None,
            backlog_bytes: u64::MAX,
            ..clean_link()
        };
        audit_link(&mut c, SimTime::ZERO, &l);
        assert_eq!(c.performed(), 1, "only the token oracle ran");
    }

    #[test]
    #[should_panic(expected = "invariant violation: queue-bound")]
    fn overfull_queue_fires() {
        let mut c = Checks::enabled();
        let l = LinkAudit {
            backlog_bytes: 1001,
            ..clean_link()
        };
        audit_link(&mut c, SimTime::ZERO, &l);
    }

    #[test]
    #[should_panic(expected = "invariant violation: token-conservation")]
    fn minted_tokens_fire() {
        let mut c = Checks::enabled();
        let l = LinkAudit {
            tokens_bitns: 21,
            ..clean_link()
        };
        audit_link(&mut c, SimTime::ZERO, &l);
    }

    #[test]
    #[should_panic(expected = "invariant violation: packet-conservation")]
    fn leaked_packet_fires() {
        let mut c = Checks::enabled();
        audit_conservation(
            &mut c,
            SimTime::from_secs(1),
            &NetTotals {
                sent: 10,
                delivered: 9,
                ..NetTotals::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "invariant violation: telemetry-cross-check")]
    fn mark_counter_disagreement_fires() {
        let mut c = Checks::enabled();
        let counters = Counters {
            ecn_marks: 1,
            ..Counters::default()
        };
        audit_telemetry(&mut c, SimTime::ZERO, &counters, &NetTotals::default());
    }

    #[test]
    #[should_panic(expected = "invariant violation: telemetry-cross-check")]
    fn counter_disagreement_fires() {
        let mut c = Checks::enabled();
        let counters = Counters {
            queue_drops: 3,
            ..Counters::default()
        };
        audit_telemetry(
            &mut c,
            SimTime::ZERO,
            &counters,
            &NetTotals {
                queue_drops: 2,
                ..NetTotals::default()
            },
        );
    }
}
