//! Per-flow measurement — the simulator's Wireshark.
//!
//! The paper computes per-flow bitrates in 0.5 s bins from packet traces
//! ([Figure 2]), loss rates from sent-vs-captured counts, and queueing delay
//! from ping. [`Monitor`] keeps exactly those observables per [`FlowId`]:
//! sent/delivered/dropped counters, a [`TimeBinned`] series of delivered
//! bytes, and an online one-way-delay accumulator.

use gsrepro_simcore::stats::{TimeBinned, Welford};
use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimTime};

use crate::wire::FlowId;

/// Where a packet was lost, for drop accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropKind {
    /// Tail-drop or AQM drop at a queue.
    Queue,
    /// Random loss injected by a link (fault injection).
    Link,
}

/// Accumulated statistics for one flow.
pub struct FlowStats {
    /// Human-readable label ("stadia-video", "iperf-cubic", ...).
    pub label: String,
    /// Packets handed to the network by the sender.
    pub sent_pkts: u64,
    /// Bytes handed to the network by the sender.
    pub sent_bytes: Bytes,
    /// Packets that reached their destination node.
    pub delivered_pkts: u64,
    /// Bytes that reached their destination node.
    pub delivered_bytes: Bytes,
    /// Packets dropped at queues.
    pub queue_drop_pkts: u64,
    /// Packets dropped by link fault injection.
    pub link_drop_pkts: u64,
    /// ECN-capable packets CE-marked by an AQM instead of dropped
    /// (RFC 3168 § 5). Marked packets still deliver, so this is
    /// informational: it does not enter the loss rate.
    pub ce_marked_pkts: u64,
    /// Delivered bytes binned by arrival time (0.5 s bins by default).
    pub delivered_bins: TimeBinned,
    /// Sent packets binned by send time (for windowed loss rates).
    pub sent_bins: TimeBinned,
    /// Dropped packets binned by drop time (for windowed loss rates).
    pub dropped_bins: TimeBinned,
    /// One-way delay of delivered packets.
    pub owd: Welford,
}

impl FlowStats {
    fn new(label: String, bin: SimDuration) -> Self {
        FlowStats {
            label,
            sent_pkts: 0,
            sent_bytes: Bytes::ZERO,
            delivered_pkts: 0,
            delivered_bytes: Bytes::ZERO,
            queue_drop_pkts: 0,
            link_drop_pkts: 0,
            ce_marked_pkts: 0,
            delivered_bins: TimeBinned::new(bin),
            sent_bins: TimeBinned::new(bin),
            dropped_bins: TimeBinned::new(bin),
            owd: Welford::new(),
        }
    }

    /// Total drops from any cause.
    pub fn dropped_pkts(&self) -> u64 {
        self.queue_drop_pkts + self.link_drop_pkts
    }

    /// Fraction of sent packets that were dropped (0 if nothing sent).
    pub fn loss_rate(&self) -> f64 {
        if self.sent_pkts == 0 {
            0.0
        } else {
            self.dropped_pkts() as f64 / self.sent_pkts as f64
        }
    }

    /// Packet loss rate over `[from, to)` from the windowed bins.
    pub fn loss_rate_over(&self, from: SimTime, to: SimTime) -> f64 {
        let sum = |tb: &TimeBinned| {
            let mut acc = 0.0;
            for i in 0..tb.len() {
                let mid = SimTime::ZERO + SimDuration::from_secs_f64(tb.bin_mid_secs(i));
                if mid >= from && mid < to {
                    acc += tb.bin_or_zero(i);
                }
            }
            acc
        };
        let sent = sum(&self.sent_bins);
        if sent <= 0.0 {
            0.0
        } else {
            (sum(&self.dropped_bins) / sent).clamp(0.0, 1.0)
        }
    }

    /// Mean goodput over `[from, to)` in Mb/s, from the delivered-byte bins.
    pub fn mean_goodput_mbps(&self, from: SimTime, to: SimTime) -> f64 {
        let scale = 8.0 / self.delivered_bins.width().as_secs_f64() / 1e6;
        self.delivered_bins.mean_over(from, to, scale)
    }

    /// Goodput of bin `idx` in Mb/s.
    pub fn bin_goodput_mbps(&self, idx: usize) -> f64 {
        let scale = 8.0 / self.delivered_bins.width().as_secs_f64() / 1e6;
        self.delivered_bins.bin_or_zero(idx) * scale
    }

    /// Average goodput over the whole run.
    pub fn overall_goodput(&self, run_len: SimDuration) -> BitRate {
        BitRate::from_delivery(self.delivered_bytes, run_len).unwrap_or(BitRate::ZERO)
    }
}

/// Registry of flows and their statistics.
pub struct Monitor {
    flows: Vec<FlowStats>,
    bin: SimDuration,
}

impl Monitor {
    /// New monitor with the given bitrate bin width (the paper uses 0.5 s).
    pub fn new(bin: SimDuration) -> Self {
        Monitor {
            flows: Vec::new(),
            bin,
        }
    }

    /// Register a flow and get its id.
    pub fn register(&mut self, label: impl Into<String>) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(FlowStats::new(label.into(), self.bin));
        id
    }

    /// Statistics for `flow`.
    pub fn stats(&self, flow: FlowId) -> &FlowStats {
        &self.flows[flow.0 as usize]
    }

    /// All registered flows.
    pub fn flows(&self) -> impl Iterator<Item = (FlowId, &FlowStats)> {
        self.flows
            .iter()
            .enumerate()
            .map(|(i, s)| (FlowId(i as u32), s))
    }

    /// Number of registered flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if no flows are registered.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    pub(crate) fn on_sent(&mut self, flow: FlowId, size: Bytes, now: SimTime) {
        let s = &mut self.flows[flow.0 as usize];
        s.sent_pkts += 1;
        s.sent_bytes += size;
        s.sent_bins.add(now, 1.0);
    }

    pub(crate) fn on_delivered(
        &mut self,
        flow: FlowId,
        size: Bytes,
        owd: SimDuration,
        now: SimTime,
    ) {
        let s = &mut self.flows[flow.0 as usize];
        s.delivered_pkts += 1;
        s.delivered_bytes += size;
        s.delivered_bins.add(now, size.as_u64() as f64);
        s.owd.add(owd.as_millis_f64());
    }

    pub(crate) fn on_marked(&mut self, flow: FlowId) {
        self.flows[flow.0 as usize].ce_marked_pkts += 1;
    }

    pub(crate) fn on_dropped(&mut self, flow: FlowId, kind: DropKind, now: SimTime) {
        let s = &mut self.flows[flow.0 as usize];
        match kind {
            DropKind::Queue => s.queue_drop_pkts += 1,
            DropKind::Link => s.link_drop_pkts += 1,
        }
        s.dropped_bins.add(now, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_count() {
        let mut m = Monitor::new(SimDuration::from_millis(500));
        let f = m.register("game");
        let g = m.register("iperf");
        assert_ne!(f, g);
        assert_eq!(m.len(), 2);

        m.on_sent(f, Bytes(1000), SimTime::ZERO);
        m.on_sent(f, Bytes(1000), SimTime::ZERO);
        m.on_delivered(
            f,
            Bytes(1000),
            SimDuration::from_millis(10),
            SimTime::from_millis(100),
        );
        m.on_dropped(f, DropKind::Queue, SimTime::ZERO);

        let s = m.stats(f);
        assert_eq!(s.sent_pkts, 2);
        assert_eq!(s.delivered_pkts, 1);
        assert_eq!(s.queue_drop_pkts, 1);
        assert_eq!(s.loss_rate(), 0.5);
        assert_eq!(m.stats(g).sent_pkts, 0);
    }

    #[test]
    fn goodput_binning() {
        let mut m = Monitor::new(SimDuration::from_millis(500));
        let f = m.register("x");
        // 625,000 bytes delivered within one 0.5 s bin = 10 Mb/s.
        for i in 0..625 {
            m.on_delivered(
                f,
                Bytes(1000),
                SimDuration::from_millis(5),
                SimTime::from_nanos(i * 100_000),
            );
        }
        let s = m.stats(f);
        assert!((s.bin_goodput_mbps(0) - 10.0).abs() < 1e-9);
        assert_eq!(s.bin_goodput_mbps(1), 0.0);
        let mean = s.mean_goodput_mbps(SimTime::ZERO, SimTime::from_millis(500));
        assert!((mean - 10.0).abs() < 1e-9);
    }

    #[test]
    fn loss_rate_zero_when_nothing_sent() {
        let mut m = Monitor::new(SimDuration::from_secs(1));
        let f = m.register("idle");
        assert_eq!(m.stats(f).loss_rate(), 0.0);
    }

    #[test]
    fn owd_accumulates() {
        let mut m = Monitor::new(SimDuration::from_secs(1));
        let f = m.register("x");
        m.on_delivered(f, Bytes(1), SimDuration::from_millis(10), SimTime::ZERO);
        m.on_delivered(f, Bytes(1), SimDuration::from_millis(20), SimTime::ZERO);
        assert!((m.stats(f).owd.mean() - 15.0).abs() < 1e-12);
    }
}
