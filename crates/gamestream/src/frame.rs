//! Deterministic encoded-frame generation.
//!
//! The paper's methodology plays the same scripted 10-minute Ys VIII
//! session on every run so that gameplay — and hence encoded video — is
//! comparable across runs and systems. [`FrameSource`] gives the simulation
//! the same property: a seeded process produces the identical frame-size
//! sequence for the identical seed, with the structure of a real game
//! encoder:
//!
//! * a frame every 1/fps seconds,
//! * a key (intra-coded) frame every `gop` frames, `key_scale`× larger,
//! * delta frames log-normally jittered around the budget (scene motion),
//! * a slow sinusoidal scene-complexity modulation (walking between calm
//!   and busy areas of the map).
//!
//! Frame sizes track a *target bitrate* supplied per frame by the encoder's
//! rate controller, so the source follows bitrate adaptation immediately —
//! commercial encoders re-quantize within a frame or two.

use gsrepro_simcore::rng::rng_for;
use gsrepro_simcore::{BitRate, Bytes, SimRng};
use rand::Rng;

/// Configuration of the synthetic encoder output.
#[derive(Clone, Debug)]
pub struct FrameSourceConfig {
    /// Frames per second produced by the encoder (the paper's systems all
    /// target 60 f/s).
    pub fps: u32,
    /// Frames per group-of-pictures (key-frame period). 120 = one key frame
    /// every 2 s at 60 f/s.
    pub gop: u32,
    /// Key frames are this many times the size of the average delta frame.
    pub key_scale: f64,
    /// Standard deviation of per-frame size jitter, as a fraction of the
    /// frame budget.
    pub jitter: f64,
    /// Amplitude of the slow scene-complexity sine, as a fraction (0.05 =
    /// ±5%).
    pub scene_amplitude: f64,
    /// Period of the scene-complexity sine, in frames.
    pub scene_period: u32,
}

impl Default for FrameSourceConfig {
    fn default() -> Self {
        FrameSourceConfig {
            fps: 60,
            gop: 120,
            key_scale: 2.5,
            jitter: 0.10,
            scene_amplitude: 0.06,
            scene_period: 600, // 10 s at 60 f/s
        }
    }
}

/// One encoded frame, ready for packetization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Monotonic frame number.
    pub id: u64,
    /// Encoded size.
    pub size: Bytes,
    /// Whether this is an intra-coded (key) frame.
    pub key: bool,
}

/// Deterministic frame generator.
pub struct FrameSource {
    cfg: FrameSourceConfig,
    rng: SimRng,
    next_id: u64,
    /// Normalization so that the long-run mean of (key + delta) sizes hits
    /// the bitrate budget exactly.
    delta_norm: f64,
}

impl FrameSource {
    /// New source; `seed`/`stream` select the deterministic jitter stream.
    pub fn new(cfg: FrameSourceConfig, seed: u64, stream: u64) -> Self {
        // Per GOP: 1 key frame of key_scale·d + (gop−1) delta frames of d,
        // where d = budget·gop / (key_scale + gop − 1).
        let g = cfg.gop as f64;
        let delta_norm = g / (cfg.key_scale + g - 1.0);
        FrameSource {
            cfg,
            rng: rng_for(seed, stream),
            next_id: 0,
            delta_norm,
        }
    }

    /// Frame interval at the nominal (maximum) frame rate.
    pub fn interval(&self) -> gsrepro_simcore::SimDuration {
        Self::interval_for(self.cfg.fps)
    }

    /// Frame interval for an arbitrary frame rate (encoder fps tiers).
    pub fn interval_for(fps: u32) -> gsrepro_simcore::SimDuration {
        gsrepro_simcore::SimDuration::from_nanos(1_000_000_000 / fps.max(1) as u64)
    }

    /// Nominal frames per second.
    pub fn fps(&self) -> u32 {
        self.cfg.fps
    }

    /// Produce the next frame, sized against `target` bitrate at the
    /// nominal frame rate.
    pub fn next_frame(&mut self, target: BitRate) -> Frame {
        let fps = self.cfg.fps;
        self.next_frame_at(target, fps)
    }

    /// Produce the next frame, sized for `fps` frames per second (the
    /// encoder may run a reduced-fps tier at low bitrates).
    pub fn next_frame_at(&mut self, target: BitRate, fps: u32) -> Frame {
        let id = self.next_id;
        self.next_id += 1;

        let budget = target.as_bps() as f64 / 8.0 / fps.max(1) as f64;
        let key = id.is_multiple_of(self.cfg.gop as u64);
        let base = if key {
            budget * self.delta_norm * self.cfg.key_scale
        } else {
            budget * self.delta_norm
        };

        // Scene-complexity modulation: deterministic in frame id.
        let phase = (id % self.cfg.scene_period as u64) as f64 / self.cfg.scene_period as f64;
        let scene = 1.0 + self.cfg.scene_amplitude * (phase * std::f64::consts::TAU).sin();

        // Per-frame jitter, clamped to avoid pathological outliers.
        let j: f64 = 1.0 + self.cfg.jitter * self.rng.gen_range(-1.73..1.73); // uniform, sd≈jitter
        let j = j.clamp(0.5, 1.8);

        let size = (base * scene * j).round().max(200.0) as u64;
        Frame {
            id,
            size: Bytes(size),
            key,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsrepro_simcore::SimDuration;

    #[test]
    fn determinism() {
        let mut a = FrameSource::new(FrameSourceConfig::default(), 1, 2);
        let mut b = FrameSource::new(FrameSourceConfig::default(), 1, 2);
        for _ in 0..1000 {
            assert_eq!(
                a.next_frame(BitRate::from_mbps(20)),
                b.next_frame(BitRate::from_mbps(20))
            );
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = FrameSource::new(FrameSourceConfig::default(), 1, 2);
        let mut b = FrameSource::new(FrameSourceConfig::default(), 1, 3);
        let fa: Vec<_> = (0..100)
            .map(|_| a.next_frame(BitRate::from_mbps(20)).size)
            .collect();
        let fb: Vec<_> = (0..100)
            .map(|_| b.next_frame(BitRate::from_mbps(20)).size)
            .collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn long_run_mean_tracks_target() {
        let mut src = FrameSource::new(FrameSourceConfig::default(), 7, 0);
        let target = BitRate::from_mbps(24);
        let n = 6_000; // 100 s at 60 f/s
        let total: u64 = (0..n).map(|_| src.next_frame(target).size.as_u64()).sum();
        let secs = n as f64 / 60.0;
        let mbps = total as f64 * 8.0 / secs / 1e6;
        assert!(
            (mbps - 24.0).abs() < 0.7,
            "long-run rate {mbps} should track 24 Mb/s"
        );
    }

    #[test]
    fn key_frames_every_gop() {
        let mut src = FrameSource::new(FrameSourceConfig::default(), 7, 0);
        let mut key_ids = vec![];
        for _ in 0..400 {
            let f = src.next_frame(BitRate::from_mbps(20));
            if f.key {
                key_ids.push(f.id);
            }
        }
        assert_eq!(key_ids, vec![0, 120, 240, 360]);
    }

    #[test]
    fn key_frames_are_larger() {
        let mut src = FrameSource::new(FrameSourceConfig::default(), 9, 0);
        let mut key_sum = 0u64;
        let mut key_n = 0u64;
        let mut delta_sum = 0u64;
        let mut delta_n = 0u64;
        for _ in 0..1200 {
            let f = src.next_frame(BitRate::from_mbps(20));
            if f.key {
                key_sum += f.size.as_u64();
                key_n += 1;
            } else {
                delta_sum += f.size.as_u64();
                delta_n += 1;
            }
        }
        let key_avg = key_sum as f64 / key_n as f64;
        let delta_avg = delta_sum as f64 / delta_n as f64;
        assert!(
            key_avg / delta_avg > 2.0,
            "key {key_avg} vs delta {delta_avg}"
        );
    }

    #[test]
    fn rate_changes_apply_immediately() {
        let mut src = FrameSource::new(FrameSourceConfig::default(), 11, 0);
        let f_hi = src.next_frame(BitRate::from_mbps(30));
        // skip key frame influence by comparing delta frames
        let mut hi = 0u64;
        let mut lo = 0u64;
        for _ in 0..50 {
            hi += src.next_frame(BitRate::from_mbps(30)).size.as_u64();
        }
        for _ in 0..50 {
            lo += src.next_frame(BitRate::from_mbps(6)).size.as_u64();
        }
        assert!(hi > 3 * lo, "hi {hi} lo {lo}");
        assert!(f_hi.size.as_u64() > 0);
    }

    #[test]
    fn interval_matches_fps() {
        let src = FrameSource::new(FrameSourceConfig::default(), 1, 0);
        assert_eq!(src.interval(), SimDuration::from_nanos(16_666_666));
        assert_eq!(src.fps(), 60);
    }

    #[test]
    fn frames_never_smaller_than_floor() {
        let mut src = FrameSource::new(FrameSourceConfig::default(), 13, 0);
        for _ in 0..500 {
            let f = src.next_frame(BitRate::from_kbps(1));
            assert!(f.size.as_u64() >= 200);
        }
    }
}
