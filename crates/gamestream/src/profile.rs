//! System profiles: the three commercial systems as parameter sets.
//!
//! Table 1 of the paper gives each system's unconstrained bitrate on the
//! test game (mean, σ over 0.5 s bins): Stadia 27.5 (2.3), GeForce Now
//! 24.5 (1.8), Luna 23.7 (0.9) Mb/s. A [`SystemProfile`] couples that
//! encoder ceiling (and the frame-size variability that produces the σ)
//! with the controller archetype that reproduces the system's measured
//! congestion response.

use gsrepro_simcore::BitRate;

/// Encoder frame-rate policy: commercial encoders trade frame rate for
/// per-frame quality at the bottom of their bitrate range (Stadia's and
/// Luna's low tiers run below 60 f/s), while GeForce Now is known to scale
/// *resolution* and keep the frame rate — the paper's Table 5 shows exactly
/// that split under BBR competition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FpsPolicy {
    /// Below this encoder rate the reduced tier engages; `None` = always
    /// full rate.
    pub threshold: Option<(BitRate, u32)>,
}

impl FpsPolicy {
    /// Always the nominal frame rate (GeForce-style resolution scaling).
    pub const FULL: FpsPolicy = FpsPolicy { threshold: None };

    /// Reduced tier below `rate`.
    pub fn reduced_below(rate: BitRate, fps: u32) -> Self {
        FpsPolicy {
            threshold: Some((rate, fps)),
        }
    }

    /// The frame rate to encode at for the given target rate.
    pub fn fps_for(&self, rate: BitRate, nominal: u32) -> u32 {
        match self.threshold {
            Some((thresh, fps)) if rate < thresh => fps,
            _ => nominal,
        }
    }
}

/// Wire-vs-payload overhead of the media stream: each ≤1200-byte chunk
/// carries 28 bytes of UDP/IP header, so the on-the-wire bitrate the paper
/// measured with Wireshark exceeds the encoder rate by ≈2.3%. Profile
/// ceilings divide Table 1's wire numbers by this factor so the *measured*
/// bitrates land on the paper's.
pub const WIRE_OVERHEAD: f64 = 1228.0 / 1200.0;

fn wire_target(mbps: f64) -> BitRate {
    BitRate::from_mbps_f64(mbps / WIRE_OVERHEAD)
}

use crate::controller::delay::{DelayConservativeConfig, DelayConservativeController};
use crate::controller::gcc::{GccConfig, GccController};
use crate::controller::tfrc::{TfrcConfig, TfrcController};
use crate::controller::RateController;
use crate::frame::{FrameSource, FrameSourceConfig};

/// The three systems measured by the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Google Stadia — GCC-like hybrid (WebRTC).
    Stadia,
    /// NVidia GeForce Now — delay-conservative.
    GeForce,
    /// Amazon Luna — TFRC equation-based.
    Luna,
}

impl SystemKind {
    /// All three systems, in the paper's column order.
    pub const ALL: [SystemKind; 3] = [SystemKind::Stadia, SystemKind::GeForce, SystemKind::Luna];

    /// Label used in condition names and reports.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Stadia => "stadia",
            SystemKind::GeForce => "geforce",
            SystemKind::Luna => "luna",
        }
    }

    /// Default profile for the system.
    pub fn profile(self) -> SystemProfile {
        SystemProfile::new(self)
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A buildable description of one system's streaming stack.
#[derive(Clone, Debug)]
pub struct SystemProfile {
    /// Which system this profiles.
    pub kind: SystemKind,
    /// Encoder ceiling (Table 1 mean).
    pub max_rate: BitRate,
    /// Encoder floor.
    pub min_rate: BitRate,
    /// Frame-generation parameters (jitter calibrated to Table 1 σ).
    pub frames: FrameSourceConfig,
    /// Which controller archetype drives the encoder. Normally matches
    /// `kind`; the ablation benches deliberately mismatch them.
    pub controller: ControllerKind,
    /// Frame-rate tiering at low bitrates.
    pub fps_policy: FpsPolicy,
}

/// Selector for the controller archetype (swappable for ablations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ControllerKind {
    /// GCC-like hybrid (Stadia's default).
    Gcc,
    /// Delay-conservative (GeForce's default).
    DelayConservative,
    /// TFRC equation (Luna's default).
    Tfrc,
}

impl SystemProfile {
    /// The calibrated default profile for `kind`.
    pub fn new(kind: SystemKind) -> Self {
        match kind {
            SystemKind::Stadia => SystemProfile {
                kind,
                max_rate: wire_target(27.5),
                // Stadia's lowest observed tier (720p30-ish): it does not
                // reduce below this even under sustained congestion.
                min_rate: BitRate::from_mbps_f64(6.5),
                frames: FrameSourceConfig {
                    jitter: 0.11,
                    scene_amplitude: 0.07,
                    ..FrameSourceConfig::default()
                },
                controller: ControllerKind::Gcc,
                // The paper's Table 5 shows ≈58-60 f/s at bloated queues
                // even at low bitrates, so the default profile keeps the
                // frame rate and scales quality instead; the tiered policy
                // remains available via `FpsPolicy::reduced_below`.
                fps_policy: FpsPolicy::FULL,
            },
            SystemKind::GeForce => SystemProfile {
                kind,
                max_rate: wire_target(24.5),
                // GeForce's deferential floor — it parks near a low tier
                // rather than collapsing entirely.
                min_rate: BitRate::from_mbps(6),
                frames: FrameSourceConfig {
                    jitter: 0.09,
                    scene_amplitude: 0.06,
                    ..FrameSourceConfig::default()
                },
                controller: ControllerKind::DelayConservative,
                // GeForce scales resolution and holds 60 f/s (paper: "more
                // resilient frame rates").
                fps_policy: FpsPolicy::FULL,
            },
            SystemKind::Luna => SystemProfile {
                kind,
                max_rate: wire_target(23.7),
                min_rate: BitRate::from_mbps(4),
                frames: FrameSourceConfig {
                    jitter: 0.045,
                    scene_amplitude: 0.03,
                    ..FrameSourceConfig::default()
                },
                controller: ControllerKind::Tfrc,
                // See the Stadia note: full rate by default.
                fps_policy: FpsPolicy::FULL,
            },
        }
    }

    /// Swap the controller archetype (ablation experiments).
    pub fn with_controller(mut self, controller: ControllerKind) -> Self {
        self.controller = controller;
        self
    }

    /// Build the rate controller configured for this profile's rate bounds.
    pub fn build_controller(&self) -> Box<dyn RateController> {
        match self.controller {
            ControllerKind::Gcc => Box::new(GccController::new(GccConfig {
                min_rate: self.min_rate,
                max_rate: self.max_rate,
                ..GccConfig::default()
            })),
            ControllerKind::DelayConservative => {
                Box::new(DelayConservativeController::new(DelayConservativeConfig {
                    min_rate: self.min_rate,
                    max_rate: self.max_rate,
                    ..DelayConservativeConfig::default()
                }))
            }
            ControllerKind::Tfrc => Box::new(TfrcController::new(TfrcConfig {
                min_rate: self.min_rate,
                max_rate: self.max_rate,
                ..TfrcConfig::default()
            })),
        }
    }

    /// Build the frame source for this profile.
    pub fn build_source(&self, seed: u64, stream: u64) -> FrameSource {
        FrameSource::new(self.frames.clone(), seed, stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ceilings_map_to_wire_rates() {
        // Encoder ceiling × wire overhead = Table 1's measured bitrate.
        for (kind, wire) in [
            (SystemKind::Stadia, 27.5),
            (SystemKind::GeForce, 24.5),
            (SystemKind::Luna, 23.7),
        ] {
            let on_wire = kind.profile().max_rate.as_mbps() * WIRE_OVERHEAD;
            assert!((on_wire - wire).abs() < 0.01, "{kind}: {on_wire} vs {wire}");
        }
    }

    #[test]
    fn default_controllers_match_archetypes() {
        assert_eq!(
            SystemKind::Stadia.profile().build_controller().name(),
            "gcc"
        );
        assert_eq!(
            SystemKind::GeForce.profile().build_controller().name(),
            "delay-conservative"
        );
        assert_eq!(SystemKind::Luna.profile().build_controller().name(), "tfrc");
    }

    #[test]
    fn ablation_swap() {
        let p = SystemKind::Stadia
            .profile()
            .with_controller(ControllerKind::Tfrc);
        assert_eq!(p.build_controller().name(), "tfrc");
        // Rate bounds follow the profile, not the controller default.
        assert_eq!(p.max_rate, wire_target(27.5));
    }

    #[test]
    fn labels() {
        assert_eq!(SystemKind::Stadia.label(), "stadia");
        assert_eq!(SystemKind::GeForce.to_string(), "geforce");
        assert_eq!(SystemKind::ALL.len(), 3);
    }
}
