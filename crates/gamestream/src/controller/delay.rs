//! Delay-conservative controller (the GeForce Now archetype).
//!
//! The measured GeForce Now *always* yields capacity to a competing TCP
//! flow — roughly half its fair share against Cubic, and even less against
//! BBR (paper §4.1, Figure 3). The behaviour is characteristic of a sender
//! that treats *any* standing queue as a signal to leave:
//!
//! * queueing delay above a low threshold ⇒ gentle but *persistent*
//!   multiplicative decrease (every 100 ms report), so the rate slides
//!   until the queue it contributes to is gone;
//! * even light loss ⇒ decrease;
//! * recovery is a slow additive ramp that only starts after the path has
//!   been clean for a hold period.
//!
//! Against BBR this is ruinous for the game stream: BBR maintains ~1 BDP
//! of standing queue without loss, which sits above the threshold forever,
//! so the controller slides to its floor — reproducing the darkest-blue
//! cells of the paper's Figure 3.

use gsrepro_simcore::{BitRate, SimDuration, SimTime};

use super::{clamp_rate, BackoffReason, ControllerEvent, FeedbackSnapshot, RateController};

/// Tuning knobs for [`DelayConservativeController`].
#[derive(Clone, Debug)]
pub struct DelayConservativeConfig {
    /// Hard floor for the encoder rate.
    pub min_rate: BitRate,
    /// Hard ceiling (the system's unconstrained bitrate).
    pub max_rate: BitRate,
    /// Queueing delay above which the controller decreases.
    pub queue_delay_threshold: SimDuration,
    /// Multiplicative decrease per report while over threshold.
    pub backoff: f64,
    /// Loss fraction above which the controller decreases.
    pub loss_threshold: f64,
    /// Multiplicative decrease per report while losing packets.
    pub loss_backoff: f64,
    /// Additive ramp per second once the path has been clean for `hold`.
    pub ramp_per_sec: BitRate,
    /// Clean time required before ramping up.
    pub hold: SimDuration,
}

impl Default for DelayConservativeConfig {
    fn default() -> Self {
        DelayConservativeConfig {
            min_rate: BitRate::from_mbps(4),
            max_rate: BitRate::from_mbps_f64(24.5),
            queue_delay_threshold: SimDuration::from_millis(12),
            backoff: 0.985,
            loss_threshold: 0.005,
            loss_backoff: 0.93,
            ramp_per_sec: BitRate::from_kbps(1_500),
            hold: SimDuration::from_millis(500),
        }
    }
}

/// Conservative delay-threshold controller.
pub struct DelayConservativeController {
    cfg: DelayConservativeConfig,
    rate: BitRate,
    /// Last time the path showed congestion (delay or loss).
    last_congested: SimTime,
    /// Last report time, for the additive ramp integration.
    last_report: Option<SimTime>,
    /// Decision queued for [`RateController::poll_event`].
    pending: Option<ControllerEvent>,
}

impl DelayConservativeController {
    /// Start at the configured maximum.
    pub fn new(cfg: DelayConservativeConfig) -> Self {
        let rate = cfg.max_rate;
        DelayConservativeController {
            cfg,
            rate,
            last_congested: SimTime::ZERO,
            last_report: None,
            pending: None,
        }
    }
}

impl RateController for DelayConservativeController {
    fn on_feedback(&mut self, fb: &FeedbackSnapshot, now: SimTime) -> BitRate {
        let dt = self
            .last_report
            .map(|t| now.saturating_since(t))
            .unwrap_or(SimDuration::ZERO);
        self.last_report = Some(now);

        let delayed = fb.queue_delay() > self.cfg.queue_delay_threshold;
        let lossy = fb.loss > self.cfg.loss_threshold;

        if delayed || lossy {
            self.last_congested = now;
            let mut next = self.rate;
            if delayed {
                next = next.mul_f64(self.cfg.backoff);
            }
            if lossy {
                next = next.mul_f64(self.cfg.loss_backoff);
            }
            self.rate = clamp_rate(next, self.cfg.min_rate, self.cfg.max_rate);
            self.pending = Some(ControllerEvent::Backoff {
                // Loss is the stronger (rarer) signal: report it when both
                // fire in one window.
                reason: if lossy {
                    BackoffReason::Loss
                } else {
                    BackoffReason::Delay
                },
                rate: self.rate,
            });
        } else if now.saturating_since(self.last_congested) >= self.cfg.hold {
            let add = self.cfg.ramp_per_sec.as_bps() as f64 * dt.as_secs_f64();
            self.rate = clamp_rate(
                BitRate(self.rate.as_bps() + add as u64),
                self.cfg.min_rate,
                self.cfg.max_rate,
            );
        }
        self.rate
    }

    fn current(&self) -> BitRate {
        self.rate
    }

    fn name(&self) -> &'static str {
        "delay-conservative"
    }

    fn poll_event(&mut self) -> Option<ControllerEvent> {
        self.pending.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(loss: f64, queue_ms: u64) -> FeedbackSnapshot {
        FeedbackSnapshot {
            recv_rate: BitRate::from_mbps(10),
            loss,
            owd: SimDuration::from_millis(8 + queue_ms),
            owd_min: SimDuration::from_millis(8),
            trend_ms_per_s: 0.0,
            rtt: SimDuration::from_millis(16 + queue_ms),
        }
    }

    #[test]
    fn persistent_queue_slides_to_floor() {
        let mut c = DelayConservativeController::new(DelayConservativeConfig::default());
        // A BBR competitor holds ~16 ms of standing queue forever.
        let mut r = c.current();
        for i in 0..1200 {
            r = c.on_feedback(&fb(0.0, 16), SimTime::from_millis(i * 100));
        }
        assert_eq!(r, BitRate::from_mbps(4), "must slide to the floor, got {r}");
    }

    #[test]
    fn clean_path_ramps_slowly() {
        let mut c = DelayConservativeController::new(DelayConservativeConfig::default());
        // Push down first.
        for i in 0..100 {
            c.on_feedback(&fb(0.0, 20), SimTime::from_millis(i * 100));
        }
        let low = c.current();
        // 10 s of clean path: ramp = 1.5 Mb/s/s after the 0.5 s hold.
        let mut r = low;
        for i in 0..100 {
            r = c.on_feedback(&fb(0.0, 0), SimTime::from_millis(10_000 + i * 100));
        }
        let gained = r.as_mbps() - low.as_mbps();
        assert!(
            gained > 10.0,
            "should ramp ≈ 14 Mb/s in 9.4 s, got {gained}"
        );
        assert!(gained < 15.0, "ramp must be additive-slow, got {gained}");
    }

    #[test]
    fn hold_delays_recovery() {
        let mut c = DelayConservativeController::new(DelayConservativeConfig::default());
        for i in 0..50 {
            c.on_feedback(&fb(0.0, 20), SimTime::from_millis(i * 100));
        }
        let low = c.current();
        // 0.4 s clean — still within the 0.5 s hold.
        let mut r = low;
        for i in 0..4 {
            r = c.on_feedback(&fb(0.0, 0), SimTime::from_millis(5_000 + i * 100));
        }
        assert_eq!(r, low, "no ramp during hold");
    }

    #[test]
    fn light_loss_decreases() {
        let mut c = DelayConservativeController::new(DelayConservativeConfig::default());
        let r0 = c.current();
        let r = c.on_feedback(&fb(0.02, 0), SimTime::from_millis(100));
        assert!(r < r0, "2% loss must decrease ({r} !< {r0})");
    }

    #[test]
    fn sub_threshold_queue_is_tolerated() {
        let mut c = DelayConservativeController::new(DelayConservativeConfig::default());
        let r0 = c.current();
        for i in 0..50 {
            c.on_feedback(&fb(0.0, 8), SimTime::from_millis(i * 100));
        }
        assert_eq!(c.current(), r0, "8 ms queueing is below the threshold");
    }

    #[test]
    fn bounds_respected() {
        let mut c = DelayConservativeController::new(DelayConservativeConfig::default());
        for i in 0..2_000 {
            let r = c.on_feedback(&fb(0.3, 100), SimTime::from_millis(i * 100));
            assert!(r >= BitRate::from_mbps(4));
        }
        for i in 0..20_000 {
            let r = c.on_feedback(&fb(0.0, 0), SimTime::from_millis(200_000 + i * 100));
            assert!(r <= BitRate::from_mbps_f64(24.5));
        }
    }
}
