//! GCC-like hybrid controller (the Stadia archetype).
//!
//! Google congestion control (as used by WebRTC, which Stadia streams over)
//! combines a **delay-based** estimator at the receiver with a
//! **loss-based** bound at the sender. This model captures the pieces that
//! matter for the paper's observations:
//!
//! * *Overuse detection*: a rising delay trend above an **adaptive
//!   threshold γ** (the real GCC's `K_u`/`K_d` adaptation) ⇒ multiplicative
//!   decrease to `0.85 ×` the received rate, then a hold period until the
//!   queue drains. γ inflates under sustained large trends — GCC's
//!   documented mechanism for coexisting with loss-based flows that
//!   saw-tooth the queue — and decays slowly when the path calms, which
//!   restores full delay sensitivity for a solo stream.
//! * *Probing*: near-exponential increase (8% per report) while the path is
//!   clean, switching to additive increase close to the last known
//!   capacity.
//! * *Loss bounds*: > 10% loss ⇒ decrease proportional to loss; < 2% ⇒
//!   allowed to increase; in between ⇒ hold.
//!
//! The delay path triggers only on *bloated* queues (≥ tens of ms of
//! standing delay with a rising trend): small and medium queues leave the
//! aggressive loss-tolerant prober in charge, which is why the measured
//! Stadia takes more than its fair share from Cubic at 0.5×- and 2×-BDP
//! queues but backs off in 7× buffer bloat. Self-induced overload on a
//! capacity-constrained link (where the queue is too small to trip the
//! delay path) is caught by the sustained mid-band loss rule instead.

use gsrepro_simcore::{BitRate, SimDuration, SimTime};

use super::{clamp_rate, BackoffReason, ControllerEvent, FeedbackSnapshot, RateController};

/// Tuning knobs for [`GccController`].
#[derive(Clone, Debug)]
pub struct GccConfig {
    /// Hard floor for the encoder rate.
    pub min_rate: BitRate,
    /// Hard ceiling (the system's unconstrained bitrate).
    pub max_rate: BitRate,
    /// Absolute queueing delay above which overuse triggers regardless of
    /// the adaptive threshold (buffer-bloat guard).
    pub bloat_queue_delay: SimDuration,
    /// Delay slope (ms/s) that must accompany the bloat guard.
    pub bloat_trend: f64,
    /// Initial adaptive trend threshold γ₀ (ms/s).
    pub gamma_init: f64,
    /// γ growth coefficient when the trend exceeds γ (K_u).
    pub gamma_up: f64,
    /// γ decay coefficient when the trend is below γ (K_d).
    pub gamma_down: f64,
    /// Maximum γ growth per report (outlier clamp).
    pub gamma_step_max: f64,
    /// Queueing-delay noise floor for the adaptive rule.
    pub trend_queue_floor: SimDuration,
    /// Multiplier applied to the *received* rate on overuse.
    pub backoff: f64,
    /// Multiplicative increase per report while probing.
    pub probe_gain: f64,
    /// Additive increase per report once near the estimated capacity.
    pub near_capacity_step: BitRate,
    /// Loss fraction above which the controller must decrease immediately.
    pub loss_high: f64,
    /// Loss fraction below which the controller may increase. Kept tight:
    /// probing on top of measurable loss is how a solo stream ends up
    /// permanently overdriving a capacity constraint.
    pub loss_low: f64,
    /// Mid-band loss floor: loss above this (but below `loss_high`) counts
    /// toward the sustained-loss streak.
    pub loss_mid: f64,
    /// Mid-band loss (between `loss_mid` and `loss_high`) sustained for
    /// this many consecutive reports also forces a decrease — persistent
    /// moderate loss means the encoder itself is overdriving the link.
    pub sustained_loss_reports: u32,
    /// Loss fraction above which the target snaps down to the received
    /// rate (never probing on top of measurable loss).
    pub loss_snap: f64,
    /// Hold time after an overuse decrease before probing resumes.
    pub hold: SimDuration,
}

impl Default for GccConfig {
    fn default() -> Self {
        GccConfig {
            min_rate: BitRate::from_mbps(5),
            max_rate: BitRate::from_mbps_f64(27.5),
            bloat_queue_delay: SimDuration::from_millis(50),
            bloat_trend: 1.0,
            gamma_init: 2.5,
            gamma_up: 0.10,
            gamma_down: 0.008,
            gamma_step_max: 3.0,
            trend_queue_floor: SimDuration::from_millis(4),
            backoff: 0.85,
            probe_gain: 1.08,
            near_capacity_step: BitRate::from_kbps(200),
            loss_high: 0.10,
            loss_low: 0.005,
            loss_mid: 0.03,
            sustained_loss_reports: 10,
            loss_snap: 0.005,
            hold: SimDuration::from_millis(300),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Increase,
    Hold,
}

/// GCC-like delay + loss hybrid.
pub struct GccController {
    cfg: GccConfig,
    rate: BitRate,
    state: State,
    hold_until: SimTime,
    /// Received rate at the last overuse event — "near capacity" marker.
    last_capacity: Option<BitRate>,
    /// Consecutive reports with mid-band loss (> `loss_mid`).
    mid_loss_streak: u32,
    /// Adaptive trend threshold γ (ms/s).
    gamma: f64,
    /// Decision queued for [`RateController::poll_event`].
    pending: Option<ControllerEvent>,
}

impl GccController {
    /// Start at the configured maximum (commercial systems open at their
    /// target quality and adapt down).
    pub fn new(cfg: GccConfig) -> Self {
        let rate = cfg.max_rate;
        let cfg_gamma = cfg.gamma_init;
        GccController {
            cfg,
            rate,
            state: State::Increase,
            hold_until: SimTime::ZERO,
            last_capacity: None,
            mid_loss_streak: 0,
            gamma: cfg_gamma,
            pending: None,
        }
    }
}

impl RateController for GccController {
    fn on_feedback(&mut self, fb: &FeedbackSnapshot, now: SimTime) -> BitRate {
        // Adaptive-threshold overuse (solo/self-congestion sensitivity) or
        // the absolute bloat guard (deep standing queues).
        let adaptive_overuse =
            fb.trend_ms_per_s > self.gamma && fb.queue_delay() > self.cfg.trend_queue_floor;
        let bloat_overuse = fb.queue_delay() > self.cfg.bloat_queue_delay
            && fb.trend_ms_per_s > self.cfg.bloat_trend;
        let overusing = adaptive_overuse || bloat_overuse;

        // γ adaptation (after the decision): sustained large trends inflate
        // the threshold so a saw-toothing loss-based competitor stops
        // registering as overuse; calm paths slowly restore sensitivity.
        let m = fb.trend_ms_per_s.abs();
        if m > self.gamma {
            self.gamma += (self.cfg.gamma_up * (m - self.gamma)).min(self.cfg.gamma_step_max);
        } else {
            self.gamma -= self.cfg.gamma_down * (self.gamma - m);
        }
        self.gamma = self.gamma.clamp(self.cfg.gamma_init, 200.0);

        if fb.loss > self.cfg.loss_mid {
            self.mid_loss_streak += 1;
        } else {
            self.mid_loss_streak = 0;
        }
        let heavy_loss = fb.loss > self.cfg.loss_high
            || (fb.loss > self.cfg.loss_mid
                && self.mid_loss_streak >= self.cfg.sustained_loss_reports);

        if overusing {
            // Delay overuse: multiplicative decrease anchored to what
            // actually got through (never an increase).
            let base = if fb.recv_rate > BitRate::ZERO {
                fb.recv_rate
            } else {
                self.rate
            };
            let target = base.mul_f64(self.cfg.backoff).min(self.rate);
            self.rate = clamp_rate(target, self.cfg.min_rate, self.cfg.max_rate);
            self.last_capacity = Some(base);
            self.state = State::Hold;
            self.hold_until = now + self.cfg.hold;
            self.pending = Some(ControllerEvent::Backoff {
                reason: BackoffReason::Delay,
                rate: self.rate,
            });
            return self.rate;
        }
        if heavy_loss {
            // GCC sender-side loss rule: scale the current rate down
            // proportionally to the observed loss. The delivered rate at
            // the loss event marks the capacity estimate, so subsequent
            // probing turns additive near it instead of barrelling through
            // multiplicatively.
            let target = self.rate.mul_f64(1.0 - 0.5 * fb.loss);
            if fb.recv_rate > BitRate::ZERO {
                self.last_capacity = Some(fb.recv_rate);
            }
            self.rate = clamp_rate(target, self.cfg.min_rate, self.cfg.max_rate);
            self.state = State::Hold;
            self.hold_until = now + self.cfg.hold;
            self.pending = Some(ControllerEvent::Backoff {
                reason: BackoffReason::Loss,
                rate: self.rate,
            });
            return self.rate;
        }

        // Whenever loss is present at all, never send more than the path
        // demonstrably delivers: snap the target down to the received rate.
        // This is what keeps a solo capacity-constrained stream's loss near
        // zero (the paper's solo loss tables) instead of persistently
        // overdriving the link by a probe step.
        if fb.loss > self.cfg.loss_snap && fb.recv_rate > BitRate::ZERO && fb.recv_rate < self.rate
        {
            self.rate = clamp_rate(fb.recv_rate, self.cfg.min_rate, self.cfg.max_rate);
            // The delivered rate marks capacity: probing resumes additively
            // near it instead of overshooting multiplicatively.
            self.last_capacity = Some(fb.recv_rate);
        }

        match self.state {
            State::Hold => {
                // Resume probing once the hold expires and the queue has
                // stopped growing (a draining queue — Cubic's post-loss
                // release — is the reclaim window).
                if now >= self.hold_until && fb.trend_ms_per_s <= 0.5 {
                    self.state = State::Increase;
                }
            }
            State::Increase => {
                if fb.loss < self.cfg.loss_low {
                    let near = self
                        .last_capacity
                        .map(|c| self.rate.as_bps() as f64 >= 0.95 * c.as_bps() as f64)
                        .unwrap_or(false);
                    let next = if near {
                        BitRate(self.rate.as_bps() + self.cfg.near_capacity_step.as_bps())
                    } else {
                        self.rate.mul_f64(self.cfg.probe_gain)
                    };
                    self.rate = clamp_rate(next, self.cfg.min_rate, self.cfg.max_rate);
                }
                // loss_low..loss_high: hold.
            }
        }
        self.rate
    }

    fn current(&self) -> BitRate {
        self.rate
    }

    fn name(&self) -> &'static str {
        "gcc"
    }

    fn poll_event(&mut self) -> Option<ControllerEvent> {
        self.pending.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(recv_mbps: f64, loss: f64, queue_ms: u64, trend: f64) -> FeedbackSnapshot {
        FeedbackSnapshot {
            recv_rate: BitRate::from_mbps_f64(recv_mbps),
            loss,
            owd: SimDuration::from_millis(8 + queue_ms),
            owd_min: SimDuration::from_millis(8),
            trend_ms_per_s: trend,
            rtt: SimDuration::from_millis(16 + queue_ms),
        }
    }

    #[test]
    fn starts_at_max() {
        let c = GccController::new(GccConfig::default());
        assert_eq!(c.current(), BitRate::from_mbps_f64(27.5));
    }

    #[test]
    fn overuse_backs_off_to_received_rate() {
        let mut c = GccController::new(GccConfig::default());
        let r = c.on_feedback(&fb(12.0, 0.0, 60, 5.0), SimTime::from_secs(1));
        assert_eq!(r, BitRate::from_mbps_f64(12.0 * 0.85));
    }

    #[test]
    fn standing_bloat_without_trend_does_not_trigger() {
        let mut c = GccController::new(GccConfig::default());
        // A standing (flat-trend) bloated queue alone does not trigger —
        // only growth does.
        let r = c.on_feedback(&fb(20.0, 0.0, 80, 0.0), SimTime::from_secs(2));
        assert_eq!(r, BitRate::from_mbps_f64(27.5));
    }

    #[test]
    fn gamma_inflation_tolerates_sawtooth_competitor() {
        let mut c = GccController::new(GccConfig::default());
        // A Cubic-like competitor produces sustained ~30 ms/s trends at a
        // 2x-BDP queue (33 ms max). The first exposures trigger overuse,
        // but γ inflates and GCC stops reacting within a couple of
        // seconds, after which it re-probes and holds its rate.
        for i in 0..30 {
            c.on_feedback(&fb(20.0, 0.0, 25, 30.0), SimTime::from_millis(i * 100));
        }
        let settled = c.current();
        // γ has inflated past the competitor's trend: no more decreases.
        let after = c.on_feedback(&fb(20.0, 0.0, 25, 30.0), SimTime::from_millis(3_100));
        assert!(
            after >= settled,
            "γ-adapted controller must stop decreasing"
        );
        // While a *bloated* queue still registers through the guard (the
        // delivered rate has sagged, so the anchored decrease bites).
        let r = c.on_feedback(&fb(12.0, 0.0, 80, 30.0), SimTime::from_millis(3_200));
        assert!(r < after, "bloat guard must still fire at 80 ms queues");
    }

    #[test]
    fn solo_overshoot_is_caught_quickly() {
        let mut c = GccController::new(GccConfig::default());
        // Fresh controller with calm history: a 40 ms/s rising trend at
        // modest queueing (self-induced overdrive) triggers immediately.
        let r = c.on_feedback(&fb(24.0, 0.0, 10, 40.0), SimTime::from_millis(100));
        assert_eq!(r, BitRate::from_mbps_f64(24.0 * 0.85));
    }

    #[test]
    fn sustained_mid_band_loss_forces_decrease() {
        let mut c = GccController::new(GccConfig::default());
        // 5% loss is inside GCC's hold band — but sustained for over a
        // second it must not be tolerated (self-induced overload).
        let mut r = c.current();
        for i in 0..12 {
            r = c.on_feedback(&fb(22.0, 0.05, 2, 0.0), SimTime::from_millis(i * 100));
        }
        assert!(
            r < BitRate::from_mbps_f64(27.5),
            "sustained 5% loss must eventually decrease, got {r}"
        );
    }

    #[test]
    fn heavy_loss_backs_off_even_without_delay() {
        let mut c = GccController::new(GccConfig::default());
        let r = c.on_feedback(&fb(15.0, 0.2, 2, 0.0), SimTime::from_secs(1));
        // 27.5 * (1 - 0.5·0.2) = 24.75
        assert_eq!(r, BitRate::from_mbps_f64(27.5 * 0.9));
    }

    #[test]
    fn probes_multiplicatively_when_clean() {
        let mut c = GccController::new(GccConfig::default());
        // Knock the rate down first.
        c.on_feedback(&fb(10.0, 0.0, 60, 5.0), SimTime::from_millis(0));
        let low = c.current();
        // Wait out the hold, then feed clean reports.
        let mut r = low;
        for i in 0..20 {
            let now = SimTime::from_millis(1_000 + i * 100);
            r = c.on_feedback(&fb(10.0, 0.0, 1, 0.0), now);
        }
        assert!(r.as_mbps() > low.as_mbps() * 1.5, "probe {r} from {low}");
    }

    #[test]
    fn hold_state_blocks_probing() {
        let mut c = GccController::new(GccConfig::default());
        c.on_feedback(&fb(10.0, 0.0, 60, 5.0), SimTime::from_millis(0));
        let low = c.current();
        // Within the hold window, clean feedback must not increase.
        let r = c.on_feedback(&fb(10.0, 0.0, 1, 0.0), SimTime::from_millis(300));
        assert_eq!(r, low);
    }

    #[test]
    fn hold_also_waits_for_trend_to_settle() {
        let mut c = GccController::new(GccConfig::default());
        c.on_feedback(&fb(10.0, 0.0, 60, 5.0), SimTime::from_millis(0));
        let low = c.current();
        // Hold expired but queue still building: stay.
        let r = c.on_feedback(&fb(10.0, 0.0, 30, 3.0), SimTime::from_millis(2_000));
        assert_eq!(r, low);
        // Note: 30 ms queue + trend 3 also re-triggers overuse; use calm
        // trend with queue below threshold instead to test pure hold-exit.
        let r2 = c.on_feedback(&fb(10.0, 0.0, 10, 0.0), SimTime::from_millis(2_100));
        assert!(r2 >= low);
    }

    #[test]
    fn moderate_loss_holds() {
        let mut c = GccController::new(GccConfig::default());
        c.on_feedback(&fb(12.0, 0.0, 60, 5.0), SimTime::from_millis(0));
        let low = c.current();
        // 5% loss with recv above the current rate: no increase, no snap.
        let r = c.on_feedback(&fb(12.0, 0.05, 1, 0.0), SimTime::from_secs(5));
        assert_eq!(r, low, "mid-band loss must hold");
    }

    #[test]
    fn loss_snaps_rate_to_received() {
        let mut c = GccController::new(GccConfig::default());
        // At max (27.5) but only 21 gets through and loss shows it.
        let r = c.on_feedback(&fb(21.0, 0.04, 1, 0.0), SimTime::from_millis(100));
        assert_eq!(r, BitRate::from_mbps_f64(21.0));
    }

    #[test]
    fn gamma_decays_back_on_calm_paths() {
        let mut c = GccController::new(GccConfig::default());
        // Inflate gamma with a noisy period.
        for i in 0..30 {
            c.on_feedback(&fb(20.0, 0.0, 25, 30.0), SimTime::from_millis(i * 100));
        }
        let inflated = c.gamma;
        assert!(inflated > 10.0, "gamma should inflate, got {inflated}");
        // A long calm period decays it back toward the initial threshold.
        for i in 0..3_000 {
            c.on_feedback(
                &fb(20.0, 0.0, 1, 0.0),
                SimTime::from_millis(3_000 + i * 100),
            );
        }
        assert!(
            c.gamma < inflated / 3.0,
            "gamma must decay on calm paths: {} -> {}",
            inflated,
            c.gamma
        );
    }

    #[test]
    fn loss_mid_config_moves_the_sustained_loss_band() {
        // Regression: the mid-band floor used to be hardcoded at 0.03, so
        // ablations overriding the config silently changed nothing. With
        // the floor raised above the offered 5% loss the streak never
        // accumulates and the controller holds; with the floor lowered
        // beneath it the decrease fires — same feedback either way.
        // recv above the current rate keeps the snap-to-received rule out
        // of play, isolating the mid-band streak.
        let run = |loss_mid: f64| {
            let mut c = GccController::new(GccConfig {
                loss_mid,
                ..GccConfig::default()
            });
            let mut r = c.current();
            for i in 0..12 {
                r = c.on_feedback(&fb(30.0, 0.05, 2, 0.0), SimTime::from_millis(i * 100));
            }
            r
        };
        let tolerant = run(0.08);
        let strict = run(0.02);
        assert_eq!(
            tolerant,
            BitRate::from_mbps_f64(27.5),
            "5% loss below the raised floor must hold"
        );
        assert!(
            strict < BitRate::from_mbps_f64(27.5),
            "5% loss above the lowered floor must decrease, got {strict}"
        );
        assert!(strict < tolerant);
    }

    #[test]
    fn loss_snap_config_moves_the_snap_threshold() {
        // Regression: the snap-to-received threshold was hardcoded at
        // 0.005. 4% loss with the path delivering 21 of 27.5 Mb/s snaps
        // under the default but must not once the threshold is above it.
        let mut relaxed = GccController::new(GccConfig {
            loss_snap: 0.06,
            ..GccConfig::default()
        });
        let r = relaxed.on_feedback(&fb(21.0, 0.04, 1, 0.0), SimTime::from_millis(100));
        assert_eq!(
            r,
            BitRate::from_mbps_f64(27.5),
            "loss below the raised snap threshold must not snap"
        );
        let mut strict = GccController::new(GccConfig {
            loss_snap: 0.01,
            ..GccConfig::default()
        });
        let r = strict.on_feedback(&fb(21.0, 0.04, 1, 0.0), SimTime::from_millis(100));
        assert_eq!(r, BitRate::from_mbps_f64(21.0));
    }

    #[test]
    fn never_exceeds_bounds() {
        let mut c = GccController::new(GccConfig::default());
        for i in 0..100 {
            let r = c.on_feedback(&fb(30.0, 0.0, 0, 0.0), SimTime::from_millis(i * 100));
            assert!(r <= BitRate::from_mbps_f64(27.5));
        }
        for i in 0..100 {
            let r = c.on_feedback(&fb(0.5, 0.5, 100, 10.0), SimTime::from_secs(100 + i));
            assert!(r >= BitRate::from_mbps(5));
        }
    }
}
