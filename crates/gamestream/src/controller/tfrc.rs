//! TFRC equation-based controller (the Luna archetype).
//!
//! TCP-Friendly Rate Control (RFC 5348) sets the sending rate to the
//! throughput a TCP Reno flow would achieve at the measured loss-event rate
//! `p` and round-trip time `R`, via the padhye throughput equation:
//!
//! ```text
//! X = s / ( R·sqrt(2·b·p/3) + t_RTO·(3·sqrt(3·b·p/8))·p·(1 + 32·p²) )
//! ```
//!
//! The loss-event rate uses the Weighted Average Loss Interval (WALI)
//! method over the last 8 loss intervals, which is what makes TFRC — and
//! the modelled Luna — *smooth*: it reacts slowly to individual events in
//! both directions. The consequences the paper measures follow directly:
//!
//! * against **Cubic** (loss-based, drains queues after each loss), TFRC
//!   converges near the fair share — the equation is TCP-fair by design;
//! * against **BBR** (loss-blind, keeps the queue occupied), the persistent
//!   loss and inflated RTT push `X` well below fair share, and the WALI
//!   history keeps it low for a long time after the competitor leaves —
//!   the paper's "Luna never recovers from a competing TCP BBR flow at
//!   high capacity".

use gsrepro_simcore::{BitRate, SimDuration, SimTime};

use super::{clamp_rate, BackoffReason, ControllerEvent, FeedbackSnapshot, RateController};

/// Number of loss intervals in the WALI history (RFC 5348 default).
const WALI_INTERVALS: usize = 8;
/// WALI weights, newest interval first.
const WALI_WEIGHTS: [f64; WALI_INTERVALS] = [1.0, 1.0, 1.0, 1.0, 0.8, 0.6, 0.4, 0.2];
/// Packets acknowledged per TCP ack in the equation (b).
const B: f64 = 1.0;

/// Tuning knobs for [`TfrcController`].
#[derive(Clone, Debug)]
pub struct TfrcConfig {
    /// Hard floor for the encoder rate.
    pub min_rate: BitRate,
    /// Hard ceiling (the system's unconstrained bitrate).
    pub max_rate: BitRate,
    /// Nominal packet size `s` used in the equation.
    pub segment_size: f64,
    /// Maximum multiplicative increase per report before any loss has been
    /// seen (TFRC's slow-start-like doubling phase).
    pub lossless_gain: f64,
    /// Maximum multiplicative increase per report once loss history
    /// exists. TFRC's selling point is smoothness: after congestion it
    /// climbs gently even when the equation would allow a jump.
    pub steady_gain: f64,
    /// Queueing delay above which the controller eases off regardless of
    /// loss. Pure TFRC has no delay term, but a cloud-gaming service is
    /// latency-bound: parking 80+ ms of standing queue (which the raw
    /// equation happily does on a bloated solo bottleneck) would be
    /// unplayable. The paper's solo RTT table shows Luna keeps queues low.
    pub delay_guard: SimDuration,
    /// Multiplicative ease per report while over the delay guard.
    pub delay_backoff: f64,
}

impl Default for TfrcConfig {
    fn default() -> Self {
        TfrcConfig {
            min_rate: BitRate::from_mbps(4),
            max_rate: BitRate::from_mbps_f64(23.7),
            segment_size: 1200.0,
            lossless_gain: 1.25,
            steady_gain: 1.06,
            delay_guard: SimDuration::from_millis(50),
            delay_backoff: 0.97,
        }
    }
}

/// Equation-based TCP-friendly rate control.
pub struct TfrcController {
    cfg: TfrcConfig,
    rate: BitRate,
    /// Completed loss intervals, newest first, in packets.
    intervals: Vec<f64>,
    /// Packets received since the last loss event.
    current_interval: f64,
    /// Whether any loss event has occurred yet.
    seen_loss: bool,
    /// Decisions queued for [`RateController::poll_event`].
    pending: Vec<ControllerEvent>,
}

impl TfrcController {
    /// Start at the configured maximum.
    pub fn new(cfg: TfrcConfig) -> Self {
        let rate = cfg.max_rate;
        TfrcController {
            cfg,
            rate,
            intervals: Vec::new(),
            current_interval: 0.0,
            seen_loss: false,
            pending: Vec::new(),
        }
    }

    /// WALI loss-event rate estimate (0 if no loss seen).
    pub fn loss_event_rate(&self) -> f64 {
        if !self.seen_loss {
            return 0.0;
        }
        // Average interval including the open one (RFC 5348 §5.4 takes the
        // max of history-with and history-without the open interval; the
        // open interval only counts when it is already long).
        let mut with_open: Vec<f64> = Vec::with_capacity(WALI_INTERVALS);
        with_open.push(self.current_interval);
        with_open.extend(self.intervals.iter().copied());
        let avg = |v: &[f64]| -> f64 {
            let mut num = 0.0;
            let mut den = 0.0;
            for (i, &x) in v.iter().take(WALI_INTERVALS).enumerate() {
                num += WALI_WEIGHTS[i] * x;
                den += WALI_WEIGHTS[i];
            }
            if den > 0.0 {
                num / den
            } else {
                0.0
            }
        };
        let mean = avg(&self.intervals).max(avg(&with_open));
        if mean <= 0.0 {
            return 0.5;
        }
        (1.0 / mean).min(0.5)
    }

    /// The RFC 5348 throughput equation, bytes/second.
    fn equation(&self, p: f64, rtt: SimDuration) -> f64 {
        let s = self.cfg.segment_size;
        let r = rtt.as_secs_f64().max(1e-4);
        let t_rto = (4.0 * r).max(0.2); // RFC: t_RTO = max(4R, 1s); Linux-ish 200 ms floor
        let term1 = r * (2.0 * B * p / 3.0).sqrt();
        let term2 = t_rto * 3.0 * (3.0 * B * p / 8.0).sqrt() * p * (1.0 + 32.0 * p * p);
        s / (term1 + term2)
    }

    /// Feed the WALI history with one report's worth of loss observations.
    ///
    /// TFRC counts loss *events*, not lost packets: all losses within
    /// roughly one RTT collapse into a single event. The 100 ms report
    /// cadence is ≥ the testbed RTT, so each *lossy report window* closes
    /// exactly one loss interval whose length is the packets accumulated
    /// since the previous lossy window.
    fn update_loss_history(&mut self, fb: &FeedbackSnapshot) {
        // Approximate packets in the report window from the received rate.
        let pkts = (fb.recv_rate.as_bps() as f64 / 8.0 / self.cfg.segment_size * 0.1).max(1.0);
        self.current_interval += pkts;
        if fb.loss > 0.0 {
            self.seen_loss = true;
            let closed = self.current_interval.max(1.0);
            self.intervals.insert(0, closed);
            self.intervals.truncate(WALI_INTERVALS);
            self.current_interval = 0.0;
            self.pending.push(ControllerEvent::LossIntervalClose {
                pkts: closed.round() as u64,
            });
        }
    }
}

impl RateController for TfrcController {
    fn on_feedback(&mut self, fb: &FeedbackSnapshot, _now: SimTime) -> BitRate {
        self.update_loss_history(fb);
        let p = self.loss_event_rate();

        // Latency guard: ease off while the standing queue exceeds the
        // playability bound, whatever the loss picture says.
        if fb.queue_delay() > self.cfg.delay_guard {
            self.rate = clamp_rate(
                self.rate.mul_f64(self.cfg.delay_backoff),
                self.cfg.min_rate,
                self.cfg.max_rate,
            );
            self.pending.push(ControllerEvent::Backoff {
                reason: BackoffReason::Delay,
                rate: self.rate,
            });
            return self.rate;
        }

        if p <= 0.0 {
            // No loss history: multiplicative probe toward the ceiling.
            self.rate = clamp_rate(
                self.rate.mul_f64(self.cfg.lossless_gain),
                self.cfg.min_rate,
                self.cfg.max_rate,
            );
            return self.rate;
        }

        let x_bytes = self.equation(p, fb.rtt);
        let x = BitRate((x_bytes * 8.0).min(u64::MAX as f64 / 2.0) as u64);
        // Decreases apply immediately; increases are slew-limited (RFC
        // 5348 bounds X by 2·X_recv — here a per-report gain — so TFRC
        // stays smooth) and anchored at the received rate so the sender
        // never outruns what the path demonstrably delivers.
        let next = if x > self.rate {
            let recv_cap = fb.recv_rate.mul_f64(1.2).max(self.rate);
            BitRate(x.as_bps().min(recv_cap.as_bps()).max(self.rate.as_bps()))
                .min(self.rate.mul_f64(self.cfg.steady_gain))
        } else {
            x
        };
        self.rate = clamp_rate(next, self.cfg.min_rate, self.cfg.max_rate);
        self.rate
    }

    fn current(&self) -> BitRate {
        self.rate
    }

    fn name(&self) -> &'static str {
        "tfrc"
    }

    fn poll_event(&mut self) -> Option<ControllerEvent> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.pending.remove(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(recv_mbps: f64, loss: f64, rtt_ms: u64) -> FeedbackSnapshot {
        FeedbackSnapshot {
            recv_rate: BitRate::from_mbps_f64(recv_mbps),
            loss,
            owd: SimDuration::from_millis(rtt_ms / 2),
            owd_min: SimDuration::from_millis(8),
            trend_ms_per_s: 0.0,
            rtt: SimDuration::from_millis(rtt_ms),
        }
    }

    #[test]
    fn no_loss_stays_at_max() {
        let mut c = TfrcController::new(TfrcConfig::default());
        for i in 0..50 {
            c.on_feedback(&fb(23.0, 0.0, 17), SimTime::from_millis(i * 100));
        }
        assert_eq!(c.current(), BitRate::from_mbps_f64(23.7));
        assert_eq!(c.loss_event_rate(), 0.0);
    }

    #[test]
    fn equation_matches_reno_throughput_shape() {
        // Sanity-check against the simplified Mathis formula
        // X ≈ s·sqrt(3/2)/ (R·sqrt(p)) for small p.
        let c = TfrcController::new(TfrcConfig::default());
        let p = 0.001;
        let rtt = SimDuration::from_millis(20);
        let x = c.equation(p, rtt);
        let mathis = 1200.0 * (1.5f64 / p).sqrt() / 0.020;
        assert!(
            (x - mathis).abs() / mathis < 0.25,
            "equation {x} vs mathis {mathis}"
        );
    }

    #[test]
    fn higher_loss_means_lower_rate() {
        let c = TfrcController::new(TfrcConfig::default());
        let rtt = SimDuration::from_millis(20);
        assert!(c.equation(0.01, rtt) < c.equation(0.001, rtt));
        assert!(c.equation(0.1, rtt) < c.equation(0.01, rtt));
    }

    #[test]
    fn higher_rtt_means_lower_rate() {
        let c = TfrcController::new(TfrcConfig::default());
        assert!(
            c.equation(0.01, SimDuration::from_millis(100))
                < c.equation(0.01, SimDuration::from_millis(20))
        );
    }

    #[test]
    fn persistent_loss_drives_rate_down() {
        let mut c = TfrcController::new(TfrcConfig::default());
        // 1.5% loss with a 55 ms RTT (BBR-occupied queue at 7x).
        for i in 0..100 {
            c.on_feedback(&fb(10.0, 0.015, 55), SimTime::from_millis(i * 100));
        }
        let r = c.current();
        // Equation: ~1200·sqrt(1.5/0.015)/0.055 ≈ 1.7 Mb/s (floored at 4).
        assert!(r < BitRate::from_mbps(7), "rate {r} must be far below fair");
    }

    #[test]
    fn recovery_after_loss_stops_is_gradual() {
        let mut c = TfrcController::new(TfrcConfig::default());
        for i in 0..100 {
            c.on_feedback(&fb(8.0, 0.01, 40), SimTime::from_millis(i * 100));
        }
        let low = c.current();
        // Loss stops; the WALI history must damp the climb — strictly less
        // than the lossless doubling it would do with a clear history.
        let mut steps_to_max = 0;
        for i in 0..600 {
            let r = c.on_feedback(&fb(20.0, 0.0, 17), SimTime::from_millis(20_000 + i * 100));
            steps_to_max = i;
            if r >= BitRate::from_mbps_f64(23.7) {
                break;
            }
        }
        assert!(low < BitRate::from_mbps(10));
        assert!(
            steps_to_max > 10,
            "WALI history must slow recovery (took {steps_to_max} reports)"
        );
    }

    #[test]
    fn loss_event_rate_tracks_observed_loss() {
        let mut c = TfrcController::new(TfrcConfig::default());
        for i in 0..200 {
            c.on_feedback(&fb(10.0, 0.02, 30), SimTime::from_millis(i * 100));
        }
        let p = c.loss_event_rate();
        assert!(p > 0.005 && p < 0.08, "p = {p} should be near 0.02");
    }

    #[test]
    fn delay_guard_eases_standing_queues() {
        let mut c = TfrcController::new(TfrcConfig::default());
        // 80 ms of queueing with zero loss: the raw equation would stay at
        // max; the latency guard must ease off.
        let fb80 = FeedbackSnapshot {
            recv_rate: BitRate::from_mbps_f64(15.0),
            loss: 0.0,
            owd: SimDuration::from_millis(88),
            owd_min: SimDuration::from_millis(8),
            trend_ms_per_s: 0.0,
            rtt: SimDuration::from_millis(96),
        };
        let r0 = c.current();
        let mut r = r0;
        for i in 0..50 {
            r = c.on_feedback(&fb80, SimTime::from_millis(i * 100));
        }
        assert!(r < r0.mul_f64(0.5), "guard must ease well below max: {r}");
        // Below the guard the controller is unaffected.
        let mut c2 = TfrcController::new(TfrcConfig::default());
        let r2 = c2.on_feedback(&fb(23.0, 0.0, 17), SimTime::from_millis(100));
        assert_eq!(r2, BitRate::from_mbps_f64(23.7));
    }

    #[test]
    fn bounds_respected() {
        let mut c = TfrcController::new(TfrcConfig::default());
        for i in 0..500 {
            let r = c.on_feedback(&fb(1.0, 0.3, 200), SimTime::from_millis(i * 100));
            assert!(r >= BitRate::from_mbps(4));
            assert!(r <= BitRate::from_mbps_f64(23.7));
        }
    }
}
