//! Bitrate controllers — the behavioural core of each modelled system.
//!
//! A [`RateController`] consumes one [`FeedbackSnapshot`] per receiver
//! report (every 100 ms) and returns the encoder's new target bitrate,
//! clamped to the profile's `[min, max]`. The three archetypes:
//!
//! | archetype | module | models | key signal |
//! |---|---|---|---|
//! | GCC-like hybrid | [`gcc`] | Stadia | delay gradient + loss bounds |
//! | delay-conservative | [`delay`] | GeForce Now | absolute queueing delay |
//! | TFRC equation | [`tfrc`] | Luna | loss-event rate + RTT |

pub mod delay;
pub mod gcc;
pub mod tfrc;

use gsrepro_simcore::{BitRate, SimDuration, SimTime};

/// Receiver feedback as seen by a controller, normalized from the wire
/// format ([`gsrepro_netsim::wire::StreamFeedback`]).
#[derive(Clone, Copy, Debug)]
pub struct FeedbackSnapshot {
    /// Goodput the client measured over the report window.
    pub recv_rate: BitRate,
    /// Media packet loss fraction over the window (0..=1).
    pub loss: f64,
    /// Latest one-way delay.
    pub owd: SimDuration,
    /// Minimum one-way delay since stream start (base path delay).
    pub owd_min: SimDuration,
    /// Delay slope over the window, ms/s (positive = queue building).
    pub trend_ms_per_s: f64,
    /// Round-trip estimate available to the server (owd + return path).
    pub rtt: SimDuration,
}

impl FeedbackSnapshot {
    /// Estimated queueing delay: OWD in excess of the base path delay.
    pub fn queue_delay(&self) -> SimDuration {
        self.owd.saturating_sub(self.owd_min)
    }
}

/// Why a controller backed off (exported as the telemetry reason code).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackoffReason {
    /// Delay signal: overuse detector or absolute queueing delay.
    Delay,
    /// Loss signal: loss fraction above the controller's bound.
    Loss,
}

impl BackoffReason {
    /// Telemetry wire code (`ctrl_backoff` event, payload `b`).
    pub fn code(self) -> u64 {
        match self {
            BackoffReason::Delay => 0,
            BackoffReason::Loss => 1,
        }
    }
}

/// A discrete controller decision worth tracing, queued during
/// [`RateController::on_feedback`] and drained by the stream server into
/// the telemetry bus after each report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControllerEvent {
    /// The controller cut its target rate in response to congestion.
    Backoff {
        /// What triggered the cut.
        reason: BackoffReason,
        /// The rate after the cut.
        rate: BitRate,
    },
    /// A TFRC/WALI loss interval closed (loss ended one loss-free run).
    LossIntervalClose {
        /// Length of the closed interval in packets.
        pkts: u64,
    },
}

/// A bitrate controller.
pub trait RateController: Send {
    /// Process one receiver report; returns the new target bitrate.
    fn on_feedback(&mut self, fb: &FeedbackSnapshot, now: SimTime) -> BitRate;

    /// Current target bitrate.
    fn current(&self) -> BitRate;

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Drain the next queued [`ControllerEvent`], if any. Called after
    /// each `on_feedback`; the default records nothing.
    fn poll_event(&mut self) -> Option<ControllerEvent> {
        None
    }
}

/// Clamp helper shared by controllers.
pub(crate) fn clamp_rate(rate: BitRate, min: BitRate, max: BitRate) -> BitRate {
    BitRate(rate.as_bps().clamp(min.as_bps(), max.as_bps()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_delay_saturates() {
        let fb = FeedbackSnapshot {
            recv_rate: BitRate::from_mbps(10),
            loss: 0.0,
            owd: SimDuration::from_millis(5),
            owd_min: SimDuration::from_millis(8),
            trend_ms_per_s: 0.0,
            rtt: SimDuration::from_millis(16),
        };
        assert_eq!(fb.queue_delay(), SimDuration::ZERO);
    }

    #[test]
    fn clamp_rate_bounds() {
        let min = BitRate::from_mbps(5);
        let max = BitRate::from_mbps(25);
        assert_eq!(clamp_rate(BitRate::from_mbps(1), min, max), min);
        assert_eq!(clamp_rate(BitRate::from_mbps(50), min, max), max);
        assert_eq!(
            clamp_rate(BitRate::from_mbps(10), min, max),
            BitRate::from_mbps(10)
        );
    }
}
