//! The game-streaming client agent: frame reassembly, QoE measurement, and
//! receiver reports.
//!
//! The client is also the measurement endpoint for two of the paper's QoE
//! indicators: the **displayed frame rate** (PresentMon in the testbed;
//! here, a frame counts as displayed when every chunk arrives within a
//! display deadline of its capture timestamp) and **media loss** (sequence
//! gaps). Every 100 ms it sends a receiver report upstream carrying the
//! observed goodput, loss fraction, one-way delay, base delay, and delay
//! trend — everything the server's rate controller needs.

use std::collections::BTreeMap;

use gsrepro_netsim::net::{Agent, AgentId, Ctx, NodeId, PacketSpec};
use gsrepro_netsim::wire::{Ecn, FlowId, Packet, Payload, StreamFeedback};
use gsrepro_simcore::stats::TimeBinned;
use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimTime};

const TOK_REPORT: u64 = 0;

/// Wire size of one receiver report.
pub const FEEDBACK_SIZE: Bytes = Bytes(88);

/// Configuration of the client.
#[derive(Clone, Debug)]
pub struct StreamClientConfig {
    /// Flow id for the feedback direction.
    pub feedback_flow: FlowId,
    /// Server node.
    pub server_node: NodeId,
    /// Server agent.
    pub server_agent: AgentId,
    /// Receiver-report cadence (all three systems ≈ 100 ms).
    pub report_interval: SimDuration,
    /// A frame missing data this long past its capture time is skipped.
    pub display_deadline: SimDuration,
}

impl StreamClientConfig {
    /// Standard client: 100 ms reports, 250 ms display deadline.
    pub fn new(feedback_flow: FlowId, server_node: NodeId, server_agent: AgentId) -> Self {
        StreamClientConfig {
            feedback_flow,
            server_node,
            server_agent,
            report_interval: SimDuration::from_millis(100),
            display_deadline: SimDuration::from_millis(250),
        }
    }
}

struct PartialFrame {
    /// Data chunks received.
    received: u16,
    /// Parity chunks received.
    parity_received: u16,
    /// Data chunks in the frame.
    chunk_count: u16,
    frame_ts: SimTime,
}

impl PartialFrame {
    /// The frame can be decoded: with RS-style erasure coding, *any*
    /// `chunk_count` pieces out of the `chunk_count + parity_count` sent
    /// reconstruct the frame.
    fn decodable(&self) -> bool {
        self.received + self.parity_received >= self.chunk_count
    }
}

/// The streaming client agent.
pub struct StreamClient {
    cfg: StreamClientConfig,
    report_seq: u64,

    // Frame assembly.
    partial: BTreeMap<u64, PartialFrame>,
    displayed_frames: u64,
    skipped_frames: u64,
    /// Displayed-frame counts in 1 s bins (the paper's frame-rate metric).
    fps_bins: TimeBinned,

    // Loss tracking via media sequence numbers (FIFO path ⇒ gaps = loss).
    max_seq_seen: Option<u64>,
    window_base_seq: Option<u64>,
    window_received: u64,
    window_bytes: Bytes,

    // Delay tracking.
    owd_min: SimDuration,
    last_owd: SimDuration,
    window_owd: Vec<(f64, f64)>, // (arrival secs, owd ms)
    last_media_ts: Option<SimTime>,

    // Lifetime counters.
    total_packets: u64,
    total_bytes: Bytes,
}

impl StreamClient {
    /// New client.
    pub fn new(cfg: StreamClientConfig) -> Self {
        StreamClient {
            cfg,
            report_seq: 0,
            partial: BTreeMap::new(),
            displayed_frames: 0,
            skipped_frames: 0,
            fps_bins: TimeBinned::new(SimDuration::from_secs(1)),
            max_seq_seen: None,
            window_base_seq: None,
            window_received: 0,
            window_bytes: Bytes::ZERO,
            owd_min: SimDuration::MAX,
            last_owd: SimDuration::ZERO,
            window_owd: Vec::new(),
            last_media_ts: None,
            total_packets: 0,
            total_bytes: Bytes::ZERO,
        }
    }

    /// Frames displayed (complete within deadline).
    pub fn displayed_frames(&self) -> u64 {
        self.displayed_frames
    }

    /// Frames given up on (incomplete past deadline).
    pub fn skipped_frames(&self) -> u64 {
        self.skipped_frames
    }

    /// Displayed-frame counts per 1 s bin.
    pub fn fps_bins(&self) -> &TimeBinned {
        &self.fps_bins
    }

    /// Mean displayed frame rate over `[from, to)`.
    pub fn mean_fps(&self, from: SimTime, to: SimTime) -> f64 {
        self.fps_bins.mean_over(from, to, 1.0)
    }

    /// Media packets received.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Media bytes received.
    pub fn total_bytes(&self) -> Bytes {
        self.total_bytes
    }

    /// Frames currently awaiting missing chunks (diagnostics).
    pub fn partial_frames(&self) -> usize {
        self.partial.len()
    }

    /// Minimum observed one-way delay.
    pub fn owd_min(&self) -> SimDuration {
        self.owd_min
    }

    fn trend_ms_per_s(&self) -> f64 {
        // Least-squares slope of owd(ms) against arrival time(s).
        let n = self.window_owd.len();
        if n < 4 {
            return 0.0;
        }
        let nf = n as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for &(x, y) in &self.window_owd {
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let denom = nf * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            0.0
        } else {
            (nf * sxy - sx * sy) / denom
        }
    }

    fn expire_stale_frames(&mut self, now: SimTime) {
        let deadline = self.cfg.display_deadline;
        let stale: Vec<(u64, bool)> = self
            .partial
            .iter()
            .filter(|(_, f)| now.saturating_since(f.frame_ts) > deadline)
            .map(|(&id, f)| (id, f.decodable()))
            .collect();
        for (id, decodable) in stale {
            self.partial.remove(&id);
            // A decodable frame that merely waited past its deadline for
            // the tail parity still counts as skipped: it missed display.
            let _ = decodable;
            self.skipped_frames += 1;
        }
    }

    fn send_report(&mut self, ctx: &mut Ctx) {
        let interval = self.cfg.report_interval.as_secs_f64();
        let recv_rate = BitRate((self.window_bytes.bits() as f64 / interval) as u64);

        let loss = match (self.window_base_seq, self.max_seq_seen) {
            (Some(base), Some(max)) if max >= base => {
                let expected = max - base + 1;
                if expected == 0 {
                    0.0
                } else {
                    (1.0 - self.window_received as f64 / expected as f64).clamp(0.0, 1.0)
                }
            }
            _ => 0.0,
        };

        let fb = StreamFeedback {
            seq: self.report_seq,
            recv_rate,
            loss,
            owd: self.last_owd,
            owd_min: if self.owd_min == SimDuration::MAX {
                SimDuration::ZERO
            } else {
                self.owd_min
            },
            owd_trend_ms_per_s: self.trend_ms_per_s(),
            last_media_ts: self.last_media_ts,
        };
        self.report_seq += 1;
        ctx.send(PacketSpec {
            flow: self.cfg.feedback_flow,
            dst: self.cfg.server_node,
            dst_agent: self.cfg.server_agent,
            size: FEEDBACK_SIZE,
            ecn: Ecn::NotEct,
            payload: Payload::Feedback(fb),
        });

        // Reset the window.
        self.window_bytes = Bytes::ZERO;
        self.window_received = 0;
        self.window_base_seq = self.max_seq_seen.map(|s| s + 1);
        self.window_owd.clear();
    }
}

impl Agent for StreamClient {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.cfg.report_interval, TOK_REPORT);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let Payload::Media(chunk) = pkt.payload else {
            return;
        };
        let now = ctx.now();

        self.total_packets += 1;
        self.total_bytes += pkt.size;
        self.window_received += 1;
        self.window_bytes += pkt.size;

        // Sequence accounting.
        if self.window_base_seq.is_none() {
            self.window_base_seq = Some(chunk.seq);
        }
        self.max_seq_seen = Some(self.max_seq_seen.map_or(chunk.seq, |m| m.max(chunk.seq)));

        // Delay accounting.
        let owd = pkt.age(now);
        self.last_owd = owd;
        if owd < self.owd_min {
            self.owd_min = owd;
        }
        self.window_owd
            .push((now.as_secs_f64(), owd.as_millis_f64()));
        self.last_media_ts = Some(pkt.sent_at);

        // Frame assembly with FEC-aware decodability.
        let frame = self
            .partial
            .entry(chunk.frame_id)
            .or_insert_with(|| PartialFrame {
                received: 0,
                parity_received: 0,
                chunk_count: chunk.chunk_count,
                frame_ts: chunk.frame_ts,
            });
        if chunk.is_parity {
            frame.parity_received += 1;
        } else {
            frame.received += 1;
        }
        // Decide as soon as enough pieces are in (any `chunk_count` of the
        // data+parity set reconstructs the frame).
        if frame.decodable() {
            let on_time = now.saturating_since(frame.frame_ts) <= self.cfg.display_deadline;
            self.partial.remove(&chunk.frame_id);
            if on_time {
                self.displayed_frames += 1;
                self.fps_bins.add(now, 1.0);
            } else {
                self.skipped_frames += 1;
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        if token == TOK_REPORT {
            self.expire_stale_frames(ctx.now());
            self.send_report(ctx);
            ctx.set_timer(self.cfg.report_interval, TOK_REPORT);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> StreamClient {
        StreamClient::new(StreamClientConfig::new(FlowId(1), NodeId(0), AgentId(0)))
    }

    #[test]
    fn trend_detects_growing_queue() {
        let mut c = client();
        for i in 0..20 {
            // OWD rising 2 ms per 10 ms of time = 200 ms/s slope.
            c.window_owd.push((i as f64 * 0.01, 8.0 + i as f64 * 2.0));
        }
        let t = c.trend_ms_per_s();
        assert!((t - 200.0).abs() < 1.0, "trend {t}");
    }

    #[test]
    fn trend_flat_when_constant() {
        let mut c = client();
        for i in 0..20 {
            c.window_owd.push((i as f64 * 0.01, 8.0));
        }
        assert_eq!(c.trend_ms_per_s(), 0.0);
    }

    #[test]
    fn trend_needs_samples() {
        let mut c = client();
        c.window_owd.push((0.0, 8.0));
        assert_eq!(c.trend_ms_per_s(), 0.0);
    }
}
