//! # gsrepro-gamestream
//!
//! Models of commercial cloud game-streaming systems — the *subject* of
//! Xu & Claypool (IMC '22). The real systems (Google Stadia, NVidia GeForce
//! Now, Amazon Luna) are closed, so each is modelled as a UDP video
//! streamer whose congestion response is an archetype drawn from public
//! analyses of what these systems run:
//!
//! * **Stadia** → [`controller::gcc::GccController`]: a WebRTC/Google-
//!   congestion-control-style hybrid — delay-gradient overuse detection
//!   plus loss bounds, with fast multiplicative probing. Stadia is known to
//!   stream over WebRTC (Carrascosa & Bellalta 2022).
//! * **GeForce Now** → [`controller::delay::DelayConservativeController`]:
//!   a cautious delay-threshold controller with strong backoff and a slow
//!   additive ramp, reproducing GeForce's measured "defers to everyone"
//!   behaviour.
//! * **Luna** → [`controller::tfrc::TfrcController`]: equation-based
//!   TCP-friendly rate control (RFC 5348), reproducing Luna's measured
//!   fairness against Cubic and its starvation against BBR (the TCP
//!   throughput equation collapses when a loss-blind competitor keeps the
//!   queue full).
//!
//! The streaming pipeline itself is shared by all three:
//!
//! * [`frame::FrameSource`] — a deterministic 60 f/s encoded-frame
//!   generator with GOP structure (periodic key frames) and seeded size
//!   jitter, standing in for the scripted, repeatable Ys VIII gameplay;
//! * [`server::StreamServer`] — packetizes each frame into ≤1200-byte
//!   chunks, sends them as a per-frame burst (the "large, frequent packet"
//!   pattern measured for these systems), and adapts its encoder bitrate
//!   from client feedback;
//! * [`client::StreamClient`] — reassembles frames, decides which frames
//!   are displayable (complete before a deadline), measures frame rate,
//!   goodput, loss, and one-way-delay trend, and reports feedback every
//!   100 ms.

pub mod client;
pub mod controller;
pub mod frame;
pub mod profile;
pub mod server;

pub use client::StreamClient;
pub use controller::{FeedbackSnapshot, RateController};
pub use frame::FrameSource;
pub use profile::{SystemKind, SystemProfile};
pub use server::StreamServer;
