//! The game-streaming server agent.
//!
//! Every 1/60 s the server takes one encoded frame from its
//! [`FrameSource`], splits it into ≤[`MEDIA_MTU`]-byte chunks, and paces
//! the chunks across ~90% of the frame interval — the WebRTC-style frame
//! pacing all three modelled systems use, which keeps a solo stream from
//! bursting the bottleneck queue. Receiver reports arriving on the
//! feedback path update the profile's [`RateController`], whose output
//! becomes the encoder target for subsequent frames.

use std::collections::VecDeque;

use gsrepro_netsim::net::{Agent, AgentId, Ctx, NodeId, PacketSpec};
use gsrepro_netsim::wire::{Ecn, FlowId, MediaChunk, Packet, Payload, MEDIA_MTU, UDP_HEADER};
use gsrepro_simcore::stats::Samples;
use gsrepro_simcore::{BitRate, Bytes, SimDuration};

use crate::controller::{ControllerEvent, FeedbackSnapshot, RateController};
use crate::frame::FrameSource;
use crate::profile::FpsPolicy;

/// Forward-error-correction configuration. Real WebRTC-based streamers
/// (Stadia among them) protect media with FEC so isolated packet losses do
/// not cost whole frames. Modelled as systematic erasure coding: one
/// parity chunk per `data_per_parity` data chunks, and a frame is
/// recoverable as long as the number of missing data chunks does not
/// exceed the parity chunks received (Reed-Solomon-style, documented
/// simplification). The encoder budget is scaled down so media + parity
/// together match the controller's target rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FecConfig {
    /// Data chunks per parity chunk (10 → ~10% overhead).
    pub data_per_parity: u16,
}

const TOK_FRAME: u64 = 0;
const TOK_CHUNK: u64 = 1;

/// Pacer rate as a multiple of the encoder target. WebRTC-style senders
/// drain their packet queue at a small multiple of the media rate, so
/// ordinary frames spread across most of a frame interval while oversized
/// key frames smooth across *several* intervals instead of slamming the
/// bottleneck queue with a burst it cannot hold.
const PACER_FACTOR: f64 = 1.15;

/// The streaming server: frame source + packetizer + rate controller.
pub struct StreamServer {
    flow: FlowId,
    client_node: NodeId,
    client_agent: AgentId,
    source: FrameSource,
    controller: Box<dyn RateController>,
    fps_policy: FpsPolicy,
    fec: Option<FecConfig>,
    next_seq: u64,
    frames_sent: u64,
    /// Chunks awaiting their paced transmission slot.
    pending: VecDeque<PacketSpec>,
    /// Gap between paced chunk transmissions for the current frame.
    chunk_spacing: SimDuration,
    /// Whether a TOK_CHUNK timer is outstanding.
    chunk_timer_armed: bool,
    /// (time s, rate Mb/s) at every controller update, for diagnostics.
    rate_trace: Samples,
    last_feedback_seq: Option<u64>,
}

impl StreamServer {
    /// New server streaming to `(client_node, client_agent)` on `flow`.
    pub fn new(
        flow: FlowId,
        client_node: NodeId,
        client_agent: AgentId,
        source: FrameSource,
        controller: Box<dyn RateController>,
    ) -> Self {
        Self::with_fps_policy(
            flow,
            client_node,
            client_agent,
            source,
            controller,
            FpsPolicy::FULL,
        )
    }

    /// New server with an explicit encoder frame-rate policy.
    pub fn with_fps_policy(
        flow: FlowId,
        client_node: NodeId,
        client_agent: AgentId,
        source: FrameSource,
        controller: Box<dyn RateController>,
        fps_policy: FpsPolicy,
    ) -> Self {
        StreamServer {
            flow,
            client_node,
            client_agent,
            source,
            controller,
            fps_policy,
            fec: None,
            next_seq: 0,
            frames_sent: 0,
            pending: VecDeque::new(),
            chunk_spacing: SimDuration::ZERO,
            chunk_timer_armed: false,
            rate_trace: Samples::new(),
            last_feedback_seq: None,
        }
    }

    /// Current encoder target bitrate.
    pub fn current_rate(&self) -> BitRate {
        self.controller.current()
    }

    /// Frames emitted so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Controller rate samples (Mb/s) captured at each feedback.
    pub fn rate_trace(&self) -> &Samples {
        &self.rate_trace
    }

    /// The controller's algorithm name.
    pub fn controller_name(&self) -> &'static str {
        self.controller.name()
    }

    /// Enable forward error correction (builder style).
    pub fn with_fec(mut self, fec: FecConfig) -> Self {
        assert!(fec.data_per_parity > 0, "FEC group must be positive");
        self.fec = Some(fec);
        self
    }

    /// The encoder's current frame rate per the fps policy.
    pub fn current_fps(&self) -> u32 {
        self.fps_policy
            .fps_for(self.controller.current(), self.source.fps())
    }

    fn send_frame(&mut self, ctx: &mut Ctx) {
        let target = self.controller.current();
        let fps = self.fps_policy.fps_for(target, self.source.fps());
        // With FEC the encoder leaves room for the parity overhead so the
        // wire rate still matches the controller target.
        let encode_target = match self.fec {
            Some(f) => target.mul_f64(f.data_per_parity as f64 / (f.data_per_parity as f64 + 1.0)),
            None => target,
        };
        let frame = self.source.next_frame_at(encode_target, fps);
        self.frames_sent += 1;

        let mtu = MEDIA_MTU.as_u64();
        let chunk_count = frame.size.as_u64().div_ceil(mtu).max(1) as u16;
        let now = ctx.now();
        ctx.telemetry()
            .frame(now, self.flow.0, frame.size.as_u64(), chunk_count as u64);
        let parity_count = match self.fec {
            Some(f) => chunk_count.div_ceil(f.data_per_parity),
            None => 0,
        };
        let mut remaining = frame.size.as_u64();
        for idx in 0..chunk_count + parity_count {
            let is_parity = idx >= chunk_count;
            let payload = if is_parity { mtu } else { remaining.min(mtu) };
            if !is_parity {
                remaining -= payload;
            }
            self.pending.push_back(PacketSpec {
                flow: self.flow,
                dst: self.client_node,
                dst_agent: self.client_agent,
                size: Bytes(payload) + UDP_HEADER,
                ecn: Ecn::NotEct,
                payload: Payload::Media(MediaChunk {
                    seq: self.next_seq,
                    frame_id: frame.id,
                    chunk_index: idx,
                    chunk_count,
                    parity_count,
                    is_parity,
                    frame_ts: ctx.now(),
                    key_frame: frame.key,
                }),
            });
            self.next_seq += 1;
        }

        // Continuous pacing at PACER_FACTOR × the current encoder rate:
        // the spacing between chunk transmissions follows the chunk wire
        // size, so the pacer's output rate is independent of frame sizes.
        let pace_rate = target.mul_f64(PACER_FACTOR);
        self.chunk_spacing = pace_rate.tx_time(gsrepro_netsim::wire::MEDIA_MTU + UDP_HEADER);
        if !self.chunk_timer_armed {
            self.send_next_chunk(ctx);
        }
    }

    fn send_next_chunk(&mut self, ctx: &mut Ctx) {
        if let Some(spec) = self.pending.pop_front() {
            ctx.send(spec);
        }
        if !self.pending.is_empty() && !self.chunk_timer_armed {
            self.chunk_timer_armed = true;
            ctx.set_timer(self.chunk_spacing, TOK_CHUNK);
        }
    }
}

impl Agent for StreamServer {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(gsrepro_simcore::SimDuration::ZERO, TOK_FRAME);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let Payload::Feedback(fb) = pkt.payload else {
            return;
        };
        // Ignore duplicated/reordered reports (cannot happen on the FIFO
        // testbed, but the check documents the assumption).
        if let Some(last) = self.last_feedback_seq {
            if fb.seq <= last {
                return;
            }
        }
        self.last_feedback_seq = Some(fb.seq);

        let snapshot = FeedbackSnapshot {
            recv_rate: fb.recv_rate,
            loss: fb.loss,
            owd: fb.owd,
            owd_min: fb.owd_min,
            trend_ms_per_s: fb.owd_trend_ms_per_s,
            // Return path carries no queueing in this testbed, so RTT is
            // the measured downstream OWD plus the base (min) path delay.
            rtt: fb.owd + fb.owd_min,
        };
        let rate = self.controller.on_feedback(&snapshot, ctx.now());
        self.rate_trace.add(rate.as_mbps());
        let now = ctx.now();
        let flow = self.flow.0;
        ctx.telemetry().encoder_rate(now, flow, rate.as_bps());
        while let Some(ev) = self.controller.poll_event() {
            match ev {
                ControllerEvent::Backoff { reason, rate } => {
                    ctx.telemetry()
                        .ctrl_backoff(now, flow, rate.as_bps(), reason.code());
                }
                ControllerEvent::LossIntervalClose { pkts } => {
                    ctx.telemetry().loss_interval(now, flow, pkts);
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        match token {
            TOK_FRAME => {
                self.send_frame(ctx);
                let fps = self.current_fps();
                ctx.set_timer(FrameSource::interval_for(fps), TOK_FRAME);
            }
            TOK_CHUNK => {
                self.chunk_timer_armed = false;
                self.send_next_chunk(ctx);
            }
            _ => {}
        }
    }
}

/// Expected chunk count for a frame of `size` (exposed for tests).
pub fn chunks_for(size: Bytes) -> u16 {
    size.as_u64().div_ceil(MEDIA_MTU.as_u64()).max(1) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_count_rounding() {
        assert_eq!(chunks_for(Bytes(1)), 1);
        assert_eq!(chunks_for(Bytes(1200)), 1);
        assert_eq!(chunks_for(Bytes(1201)), 2);
        assert_eq!(chunks_for(Bytes(60_000)), 50);
        assert_eq!(chunks_for(Bytes(0)), 1);
    }
}
