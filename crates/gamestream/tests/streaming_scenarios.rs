//! End-to-end scenarios for the streaming stack over the simulator:
//! each profile solo at each constraint, controller behaviours through the
//! full server→client→feedback loop, and property tests over capacities.

use gsrepro_gamestream::client::{StreamClient, StreamClientConfig};
use gsrepro_gamestream::profile::ControllerKind;
use gsrepro_gamestream::server::StreamServer;
use gsrepro_gamestream::SystemKind;
use gsrepro_netsim::link::LinkSpec;
use gsrepro_netsim::net::{AgentId, NetworkBuilder, Sim};
use gsrepro_netsim::queue::QueueSpec;
use gsrepro_netsim::wire::FlowId;
use gsrepro_netsim::Shaper;
use gsrepro_simcore::rng::stream_id;
use gsrepro_simcore::{BitRate, SimDuration, SimTime};
use proptest::prelude::*;

struct Built {
    sim: Sim,
    media: FlowId,
    client: AgentId,
    server: AgentId,
}

fn build_stream(
    kind: SystemKind,
    controller: Option<ControllerKind>,
    capacity_mbps: u64,
    queue_mult: f64,
    seed: u64,
) -> Built {
    let capacity = BitRate::from_mbps(capacity_mbps);
    let rtt = SimDuration::from_micros(16_500);
    let queue = capacity.bdp(rtt).mul_f64(queue_mult);

    let mut b = NetworkBuilder::new(seed);
    let s = b.add_node("server");
    let c = b.add_node("client");
    b.link(
        s,
        c,
        LinkSpec {
            shaper: Shaper::rate(capacity),
            delay: SimDuration::from_micros(8_250),
            queue: QueueSpec::DropTail { limit: queue },
            jitter: SimDuration::ZERO,
            loss_prob: 0.0,
            dup_prob: 0.0,
        },
    );
    b.link(c, s, LinkSpec::lan(SimDuration::from_micros(8_250)));

    let media = b.flow("media");
    let feedback = b.flow("feedback");
    let mut profile = kind.profile();
    if let Some(ctrl) = controller {
        profile.controller = ctrl;
    }
    let client = b.add_agent(
        c,
        Box::new(StreamClient::new(StreamClientConfig::new(
            feedback,
            s,
            AgentId(1),
        ))),
    );
    let server = b.add_agent(
        s,
        Box::new(StreamServer::new(
            media,
            c,
            client,
            profile.build_source(seed, stream_id("frames")),
            profile.build_controller(),
        )),
    );
    Built {
        sim: b.build(),
        media,
        client,
        server,
    }
}

#[test]
fn every_profile_settles_under_every_constraint() {
    for kind in SystemKind::ALL {
        for cap in [15u64, 25, 35] {
            let mut tb = build_stream(kind, None, cap, 2.0, 3);
            tb.sim.run_until(SimTime::from_secs(30));
            let st = tb.sim.net.monitor().stats(tb.media);
            let gp = st.mean_goodput_mbps(SimTime::from_secs(15), SimTime::from_secs(30));
            let target = (kind.profile().max_rate.as_mbps() * 1.023).min(cap as f64);
            assert!(
                gp > target * 0.75 && gp < target * 1.08,
                "{kind} at {cap} Mb/s settled at {gp}, target ≈ {target}"
            );
            // Settled streams lose almost nothing (paper's solo loss tables).
            let loss = st.loss_rate_over(SimTime::from_secs(15), SimTime::from_secs(30));
            assert!(loss < 0.015, "{kind} at {cap}: steady loss {loss}");
        }
    }
}

#[test]
fn frame_rate_tracks_delivery_health() {
    // Unconstrained: ~60 f/s displayed.
    let mut tb = build_stream(SystemKind::GeForce, None, 35, 2.0, 5);
    tb.sim.run_until(SimTime::from_secs(20));
    let client: &StreamClient = tb.sim.net.agent(tb.client);
    let fps = client.mean_fps(SimTime::from_secs(5), SimTime::from_secs(20));
    assert!(fps > 57.0, "healthy stream fps {fps}");
    assert!(client.skipped_frames() < client.displayed_frames() / 20);
}

#[test]
fn server_rate_trace_reflects_adaptation() {
    // At 15 Mb/s the encoder must adapt below its 23-27 Mb/s ceiling.
    let mut tb = build_stream(SystemKind::Stadia, None, 15, 2.0, 9);
    tb.sim.run_until(SimTime::from_secs(20));
    let server: &StreamServer = tb.sim.net.agent(tb.server);
    assert!(server.frames_sent() > 1_000);
    // The instantaneous rate may sit mid-probe above the cap at any given
    // snapshot; judge adaptation on the smoothed tail of the trace.
    let trace = server.rate_trace();
    assert!(trace.len() > 100, "feedback loop must be active");
    let tail = &trace.values()[trace.len().saturating_sub(50)..];
    let rate = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(
        rate < 15.5,
        "encoder must adapt under the 15 Mb/s cap: {rate}"
    );
    assert!(rate > 5.0, "encoder should not collapse: {rate}");
}

#[test]
fn client_owd_min_learns_base_delay() {
    let mut tb = build_stream(SystemKind::Luna, None, 25, 2.0, 11);
    tb.sim.run_until(SimTime::from_secs(10));
    let client: &StreamClient = tb.sim.net.agent(tb.client);
    let base = client.owd_min().as_millis_f64();
    // One-way base path = 8.25 ms + one chunk of serialization.
    assert!(base > 8.0 && base < 10.5, "owd_min {base}");
}

#[test]
fn controller_override_changes_behaviour() {
    // The same Stadia envelope driven by the delay-conservative controller
    // must end lower under a self-congesting constraint than with GCC
    // (the conservative law backs off on its own queueing).
    let gp = |ctrl| {
        let mut tb = build_stream(SystemKind::Stadia, Some(ctrl), 25, 7.0, 13);
        tb.sim.run_until(SimTime::from_secs(30));
        tb.sim
            .net
            .monitor()
            .stats(tb.media)
            .mean_goodput_mbps(SimTime::from_secs(15), SimTime::from_secs(30))
    };
    let gcc = gp(ControllerKind::Gcc);
    let cons = gp(ControllerKind::DelayConservative);
    assert!(
        cons < gcc + 1.0,
        "delay-conservative ({cons}) should not out-send GCC ({gcc}) at a constraint"
    );
}

#[test]
fn fec_recovers_frames_under_random_loss() {
    // 3% random wire loss on an otherwise clean link: without FEC most
    // multi-chunk frames lose a packet; with 10% FEC nearly all recover.
    let fps_with = |fec: Option<gsrepro_gamestream::server::FecConfig>| {
        let capacity = BitRate::from_mbps(40);
        let mut b = NetworkBuilder::new(71);
        let s = b.add_node("server");
        let c = b.add_node("client");
        b.link(
            s,
            c,
            LinkSpec::bottleneck(
                capacity,
                capacity.bdp(SimDuration::from_micros(16_500)).mul_f64(2.0),
                SimDuration::from_micros(8_250),
            )
            .with_loss(0.03),
        );
        b.link(c, s, LinkSpec::lan(SimDuration::from_micros(8_250)));
        let media = b.flow("media");
        let feedback = b.flow("feedback");
        let profile = SystemKind::Luna.profile();
        let client = b.add_agent(
            c,
            Box::new(StreamClient::new(StreamClientConfig::new(
                feedback,
                s,
                AgentId(1),
            ))),
        );
        let server = StreamServer::new(
            media,
            c,
            client,
            profile.build_source(71, stream_id("frames")),
            profile.build_controller(),
        );
        let server = match fec {
            Some(f) => server.with_fec(f),
            None => server,
        };
        b.add_agent(s, Box::new(server));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(20));
        let cl: &StreamClient = sim.net.agent(client);
        cl.mean_fps(SimTime::from_secs(5), SimTime::from_secs(20))
    };
    let plain = fps_with(None);
    let fec = fps_with(Some(gsrepro_gamestream::server::FecConfig {
        data_per_parity: 10,
    }));
    // (The unprotected stream also adapts its bitrate down under loss,
    // which partially masks the frame damage — hence "visibly below 60"
    // rather than a collapse.)
    assert!(
        plain < 55.0,
        "3% loss should visibly hurt un-protected fps: {plain}"
    );
    assert!(
        fec > plain + 5.0,
        "FEC must recover frames: {fec} vs {plain}"
    );
    assert!(
        fec > 55.0,
        "FEC-protected stream should stay near 60: {fec}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the capacity and queue, a solo stream never exceeds the
    /// link and the client's loss estimate stays consistent with the
    /// monitor's ground truth.
    #[test]
    fn solo_stream_invariants(
        cap in 8u64..40,
        qmult_pct in 50u64..700,
        seed in 0u64..200,
    ) {
        let qmult = qmult_pct as f64 / 100.0;
        let mut tb = build_stream(SystemKind::Luna, None, cap, qmult, seed);
        tb.sim.run_until(SimTime::from_secs(12));
        let st = tb.sim.net.monitor().stats(tb.media);
        let gp = st.mean_goodput_mbps(SimTime::from_secs(2), SimTime::from_secs(12));
        prop_assert!(gp <= cap as f64 * 1.05 + 0.3, "goodput {} > cap {}", gp, cap);
        // Client packet count equals monitor delivered count.
        let client: &StreamClient = tb.sim.net.agent(tb.client);
        prop_assert_eq!(client.total_packets(), st.delivered_pkts);
        // Displayed + skipped ≈ frames whose chunks were all sent.
        prop_assert!(client.displayed_frames() > 0);
    }
}
