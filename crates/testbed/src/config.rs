//! Experimental conditions and the run timeline (the paper's Table 2).

use gsrepro_gamestream::profile::ControllerKind;
use gsrepro_gamestream::SystemKind;
use gsrepro_netsim::link::LinkId;
use gsrepro_netsim::scenario::ScenarioSpec;
use gsrepro_simcore::rng::{derive_seed, stream_id};
use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimTime};
use gsrepro_tcp::CcaKind;

/// The equalized round-trip time of the paper's testbed: every path was
/// padded with `netem` delay to ≈16.5 ms.
pub const EQUALIZED_RTT: SimDuration = SimDuration::from_micros(16_500);

/// The paper's capacity constraints, Mb/s ("good", "normal", "bad").
pub const CAPACITIES_MBPS: [u64; 3] = [35, 25, 15];

/// The paper's queue sizes in multiples of the BDP.
pub const QUEUE_MULTS: [f64; 3] = [0.5, 2.0, 7.0];

/// The competing congestion-control algorithms.
pub const CCAS: [CcaKind; 2] = [CcaKind::Cubic, CcaKind::Bbr];

/// The queue disciplines of the AQM extension grid.
pub const AQMS: [Aqm; 3] = [Aqm::DropTail, Aqm::CoDel, Aqm::FqCoDel];

/// The competing CCAs of the AQM extension grid: the paper's two plus the
/// ECN-capable BBRv2-style sender.
pub const CCAS_3D: [CcaKind; 3] = [CcaKind::Cubic, CcaKind::Bbr, CcaKind::Bbr2];

/// The 9-minute run: iperf occupies the middle third, and the paper's
/// measurement windows are fixed offsets around the transitions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Timeline {
    /// When the competing TCP flow starts (paper: 185 s).
    pub iperf_start: SimTime,
    /// When the competing TCP flow stops (paper: 370 s).
    pub iperf_stop: SimTime,
    /// End of the trace (paper: 540 s).
    pub end: SimTime,
    /// Window for the game system's *original* bitrate (paper: 125–185 s).
    pub original_window: (SimTime, SimTime),
    /// Window for the *adjusted* bitrate once the game system has settled
    /// against the competitor (paper: 310–370 s).
    pub adjusted_window: (SimTime, SimTime),
    /// Window for fairness computation, excluding the initial response
    /// transient (paper: 220–370 s).
    pub fairness_window: (SimTime, SimTime),
}

impl Timeline {
    /// The paper's exact timeline.
    pub fn paper() -> Self {
        Timeline::scaled(1.0)
    }

    /// The paper's timeline with every instant multiplied by `k`
    /// (0 < k ≤ 1). Used to keep unit/integration tests fast; the full
    /// reproduction uses `k = 1`.
    pub fn scaled(k: f64) -> Self {
        assert!(k > 0.0 && k <= 1.0, "scale must be in (0, 1]");
        let s = |secs: f64| SimTime::ZERO + SimDuration::from_secs_f64(secs * k);
        Timeline {
            iperf_start: s(185.0),
            iperf_stop: s(370.0),
            end: s(540.0),
            original_window: (s(125.0), s(185.0)),
            adjusted_window: (s(310.0), s(370.0)),
            fairness_window: (s(220.0), s(370.0)),
        }
    }

    /// Window after the competitor departs, for recovery measurement.
    pub fn recovery_window(&self) -> (SimTime, SimTime) {
        (self.iperf_stop, self.end)
    }

    /// Maximum measurable response time (competitor active period).
    pub fn max_response(&self) -> SimDuration {
        self.iperf_stop.since(self.iperf_start)
    }

    /// Maximum measurable recovery time.
    pub fn max_recovery(&self) -> SimDuration {
        self.end.since(self.iperf_stop)
    }
}

/// Queue discipline at the bottleneck. The paper's router ran drop-tail;
/// the AQM variants answer its future-work question.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Aqm {
    /// Byte-limited tail drop (the paper's configuration).
    #[default]
    DropTail,
    /// CoDel (RFC 8289) with default target/interval.
    CoDel,
    /// FQ-CoDel (RFC 8290) with default parameters.
    FqCoDel,
}

impl Aqm {
    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Aqm::DropTail => "droptail",
            Aqm::CoDel => "codel",
            Aqm::FqCoDel => "fqcodel",
        }
    }
}

/// A scheduled disturbance of the bottleneck path — the testbed-level
/// face of [`ScenarioSpec`]. The paper's testbed holds the path constant
/// and varies the *competitor*; these scenarios vary the *path* itself
/// (a `tc qdisc change` against the live router), which is how real
/// cloud-gaming sessions experience rate renegotiations and outages.
///
/// Times are absolute simulation times; pair them with the condition's
/// timeline scale. The scenario joins the condition label (and therefore
/// the seed derivation), so scenario runs never share RNG streams with
/// their static baselines.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum PathScenario {
    /// Static path (the paper's baseline).
    #[default]
    None,
    /// Bottleneck rate steps to `rate` at `from` and restores the
    /// condition's capacity at `to`.
    RateStep {
        /// Rate during the window.
        rate: BitRate,
        /// Step-down instant.
        from: SimTime,
        /// Restore instant.
        to: SimTime,
    },
    /// Full bottleneck outage over `[from, to)`.
    Outage {
        /// Cut instant.
        from: SimTime,
        /// Restore instant.
        to: SimTime,
    },
    /// Random-loss window with probability `p` over `[from, to)`.
    LossWindow {
        /// Per-packet drop probability during the window.
        p: f64,
        /// Window open.
        from: SimTime,
        /// Window close.
        to: SimTime,
    },
    /// Bottleneck queue limit becomes `limit` at `from` and restores the
    /// condition's configured size at `to`.
    QueueStep {
        /// Byte limit during the window.
        limit: Bytes,
        /// Shrink instant.
        from: SimTime,
        /// Restore instant.
        to: SimTime,
    },
}

impl PathScenario {
    /// Label suffix, empty for the static path. Stable across runs: it
    /// feeds the seed derivation and trace file names.
    pub fn label_suffix(&self) -> String {
        let secs = |t: SimTime| t.as_secs_f64().to_string();
        match *self {
            PathScenario::None => String::new(),
            PathScenario::RateStep { rate, from, to } => {
                format!("-sr{}-{}-{}", rate.as_mbps(), secs(from), secs(to))
            }
            PathScenario::Outage { from, to } => {
                format!("-sout-{}-{}", secs(from), secs(to))
            }
            PathScenario::LossWindow { p, from, to } => {
                format!("-sloss{}-{}-{}", p, secs(from), secs(to))
            }
            PathScenario::QueueStep { limit, from, to } => {
                format!("-sq{}-{}-{}", limit.as_u64(), secs(from), secs(to))
            }
        }
    }

    /// Lower the scenario onto a concrete bottleneck link. `capacity` and
    /// `queue_bytes` are the condition's static values, restored when a
    /// window closes.
    pub fn spec(&self, bottleneck: LinkId, capacity: BitRate, queue_bytes: Bytes) -> ScenarioSpec {
        match *self {
            PathScenario::None => ScenarioSpec::new(),
            PathScenario::RateStep { rate, from, to } => ScenarioSpec::new()
                .rate(from, bottleneck, rate)
                .rate(to, bottleneck, capacity),
            PathScenario::Outage { from, to } => ScenarioSpec::new().outage(from, to, bottleneck),
            PathScenario::LossWindow { p, from, to } => {
                ScenarioSpec::new().loss_window(from, to, bottleneck, p)
            }
            PathScenario::QueueStep { limit, from, to } => ScenarioSpec::new()
                .queue_limit(from, bottleneck, limit)
                .queue_limit(to, bottleneck, queue_bytes),
        }
    }

    /// The disturbance instants, in order — what a settling-time analysis
    /// scans from.
    pub fn disturbance_times(&self) -> Vec<SimTime> {
        match *self {
            PathScenario::None => vec![],
            PathScenario::RateStep { from, to, .. }
            | PathScenario::Outage { from, to }
            | PathScenario::LossWindow { from, to, .. }
            | PathScenario::QueueStep { from, to, .. } => vec![from, to],
        }
    }
}

/// One experimental condition: a cell in the paper's grid.
#[derive(Clone, Debug)]
pub struct Condition {
    /// Which game system streams.
    pub system: SystemKind,
    /// Controller archetype override (normally `None` = the system's own;
    /// ablation benches set this).
    pub controller_override: Option<ControllerKind>,
    /// Competing TCP congestion control; `None` = no competing flow
    /// (Table 1, Table 3).
    pub cca: Option<CcaKind>,
    /// Bottleneck capacity.
    pub capacity: BitRate,
    /// Bottleneck queue size in BDP multiples.
    pub queue_mult: f64,
    /// Queue discipline at the bottleneck.
    pub aqm: Aqm,
    /// Uniform per-packet jitter on the WAN (server-side) links —
    /// re-injected "Internet weather" for sensitivity analyses. Zero by
    /// default: the paper equalizes paths and our base topology is clean.
    pub wan_jitter: SimDuration,
    /// Scheduled bottleneck disturbance (dynamic-path experiments).
    pub scenario: PathScenario,
    /// Run timeline.
    pub timeline: Timeline,
}

impl Condition {
    /// A condition on the paper's timeline.
    pub fn new(
        system: SystemKind,
        cca: Option<CcaKind>,
        capacity_mbps: u64,
        queue_mult: f64,
    ) -> Self {
        Condition {
            system,
            controller_override: None,
            cca,
            capacity: BitRate::from_mbps(capacity_mbps),
            queue_mult,
            aqm: Aqm::DropTail,
            wan_jitter: SimDuration::ZERO,
            scenario: PathScenario::None,
            timeline: Timeline::paper(),
        }
    }

    /// Add WAN jitter (sensitivity analyses).
    pub fn with_wan_jitter(mut self, jitter: SimDuration) -> Self {
        self.wan_jitter = jitter;
        self
    }

    /// Replace the queue discipline (future-work AQM experiments).
    pub fn with_aqm(mut self, aqm: Aqm) -> Self {
        self.aqm = aqm;
        self
    }

    /// Replace the timeline (e.g. a scaled one for tests).
    pub fn with_timeline(mut self, t: Timeline) -> Self {
        self.timeline = t;
        self
    }

    /// Attach a scheduled bottleneck disturbance (dynamic-path
    /// experiments). The scenario joins the label, so seeds and trace
    /// files stay distinct from the static baseline.
    pub fn with_scenario(mut self, scenario: PathScenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Bottleneck queue limit in bytes: `queue_mult × BDP(capacity, RTT)`.
    pub fn queue_bytes(&self) -> Bytes {
        self.capacity.bdp(EQUALIZED_RTT).mul_f64(self.queue_mult)
    }

    /// Stable label, e.g. `stadia-cubic-b25-q2.0` (AQM suffix when not
    /// drop-tail).
    pub fn label(&self) -> String {
        let cca = self.cca.map(|c| c.label()).unwrap_or("solo");
        let mut label = format!(
            "{}-{}-b{}-q{}",
            self.system.label(),
            cca,
            self.capacity.as_mbps() as u64,
            self.queue_mult
        );
        if self.aqm != Aqm::DropTail {
            label.push('-');
            label.push_str(self.aqm.label());
        }
        if !self.wan_jitter.is_zero() {
            label.push_str(&format!("-j{}us", self.wan_jitter.as_nanos() / 1_000));
        }
        label.push_str(&self.scenario.label_suffix());
        label
    }

    /// Deterministic seed for iteration `iter` of this condition.
    pub fn seed(&self, iter: u32) -> u64 {
        derive_seed(stream_id(&self.label()), iter as u64)
    }

    /// Fair share of the bottleneck for two flows, in Mb/s.
    pub fn fair_share_mbps(&self) -> f64 {
        self.capacity.as_mbps() / 2.0
    }
}

/// Grid builders for the paper's experiment sets.
pub struct Grid;

impl Grid {
    /// The full competing-flow grid: 3 systems × 2 CCAs × 3 capacities ×
    /// 3 queues = 54 conditions (Figures 2-4, Tables 4-5).
    pub fn full(timeline: Timeline) -> Vec<Condition> {
        let mut v = Vec::new();
        // The paper stripes across systems innermost to keep comparisons
        // temporally close; iteration order here mirrors §3.4.
        for &cca in &CCAS {
            for &cap in &CAPACITIES_MBPS {
                for &q in &QUEUE_MULTS {
                    for &sys in &SystemKind::ALL {
                        v.push(Condition::new(sys, Some(cca), cap, q).with_timeline(timeline));
                    }
                }
            }
        }
        v
    }

    /// The solo grid (no competing flow): 3 systems × 3 capacities × 3
    /// queues (Table 3 and the solo loss tables).
    pub fn solo(timeline: Timeline) -> Vec<Condition> {
        let mut v = Vec::new();
        for &cap in &CAPACITIES_MBPS {
            for &q in &QUEUE_MULTS {
                for &sys in &SystemKind::ALL {
                    v.push(Condition::new(sys, None, cap, q).with_timeline(timeline));
                }
            }
        }
        v
    }

    /// Figure 2's slice: capacity 25 Mb/s, all queues, both CCAs.
    pub fn figure2(timeline: Timeline) -> Vec<Condition> {
        let mut v = Vec::new();
        for &cca in &CCAS {
            for &q in &QUEUE_MULTS {
                for &sys in &SystemKind::ALL {
                    v.push(Condition::new(sys, Some(cca), 25, q).with_timeline(timeline));
                }
            }
        }
        v
    }

    /// The 3-D AQM scorecard grid: 3 systems × {Cubic, BBRv1, BBRv2} ×
    /// {drop-tail, CoDel, FQ-CoDel} = 27 conditions, all at the paper's
    /// "normal" point (25 Mb/s, 2× BDP). This is the future-work cube the
    /// paper sketches: does an AQM at the bottleneck — and an ECN-capable
    /// competitor — change who wins?
    pub fn aqm3d(timeline: Timeline) -> Vec<Condition> {
        let mut v = Vec::new();
        for &aqm in &AQMS {
            for &cca in &CCAS_3D {
                for &sys in &SystemKind::ALL {
                    v.push(
                        Condition::new(sys, Some(cca), 25, 2.0)
                            .with_aqm(aqm)
                            .with_timeline(timeline),
                    );
                }
            }
        }
        v
    }

    /// Unconstrained conditions for Table 1: 1 Gb/s bottleneck, no
    /// competitor.
    pub fn table1(timeline: Timeline) -> Vec<Condition> {
        SystemKind::ALL
            .iter()
            .map(|&sys| Condition {
                system: sys,
                controller_override: None,
                cca: None,
                capacity: BitRate::from_gbps(1),
                queue_mult: 2.0,
                aqm: Aqm::DropTail,
                wan_jitter: SimDuration::ZERO,
                scenario: PathScenario::None,
                timeline,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_timeline_values() {
        let t = Timeline::paper();
        assert_eq!(t.iperf_start, SimTime::from_secs(185));
        assert_eq!(t.iperf_stop, SimTime::from_secs(370));
        assert_eq!(t.end, SimTime::from_secs(540));
        assert_eq!(t.max_response(), SimDuration::from_secs(185));
        assert_eq!(t.max_recovery(), SimDuration::from_secs(170));
    }

    #[test]
    fn scaled_timeline_preserves_proportions() {
        let t = Timeline::scaled(0.1);
        assert_eq!(
            t.iperf_start,
            SimTime::ZERO + SimDuration::from_secs_f64(18.5)
        );
        assert_eq!(t.end, SimTime::from_secs(54));
    }

    #[test]
    fn queue_bytes_match_bdp_multiples() {
        let c = Condition::new(SystemKind::Stadia, Some(CcaKind::Cubic), 25, 2.0);
        // BDP(25 Mb/s, 16.5 ms) = 51 562 B → 2x = 103 124 B.
        assert_eq!(c.queue_bytes().as_u64(), 103_124);
        let c = Condition::new(SystemKind::Luna, Some(CcaKind::Bbr), 15, 0.5);
        assert_eq!(
            c.queue_bytes().as_u64(),
            (15_000_000f64 * 0.0165 / 8.0 * 0.5).round() as u64
        );
    }

    #[test]
    fn labels_are_stable_and_unique() {
        let grid = Grid::full(Timeline::paper());
        assert_eq!(grid.len(), 54);
        let labels: std::collections::HashSet<String> = grid.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 54);
    }

    #[test]
    fn seeds_differ_across_iterations_and_conditions() {
        let a = Condition::new(SystemKind::Stadia, Some(CcaKind::Cubic), 25, 2.0);
        let b = Condition::new(SystemKind::Luna, Some(CcaKind::Cubic), 25, 2.0);
        assert_ne!(a.seed(0), a.seed(1));
        assert_ne!(a.seed(0), b.seed(0));
        assert_eq!(a.seed(3), a.seed(3));
    }

    #[test]
    fn scenario_labels_are_distinct_and_change_seeds() {
        let base = Condition::new(SystemKind::Stadia, Some(CcaKind::Cubic), 25, 2.0);
        let step = base.clone().with_scenario(PathScenario::RateStep {
            rate: BitRate::from_mbps(10),
            from: SimTime::from_secs(100),
            to: SimTime::from_secs(200),
        });
        let outage = base.clone().with_scenario(PathScenario::Outage {
            from: SimTime::from_secs(100),
            to: SimTime::from_secs(102),
        });
        assert_eq!(step.label(), "stadia-cubic-b25-q2-sr10-100-200");
        assert_ne!(base.label(), step.label());
        assert_ne!(step.label(), outage.label());
        // Scenario runs must not share RNG streams with their baseline.
        assert_ne!(base.seed(0), step.seed(0));
        assert_ne!(step.seed(0), outage.seed(0));
        assert_eq!(
            step.scenario.disturbance_times(),
            vec![SimTime::from_secs(100), SimTime::from_secs(200)]
        );
    }

    #[test]
    fn scenario_spec_restores_static_values() {
        use gsrepro_netsim::scenario::ScenarioAction;
        let l = LinkId(4);
        let cond =
            Condition::new(SystemKind::Luna, None, 25, 2.0).with_scenario(PathScenario::RateStep {
                rate: BitRate::from_mbps(10),
                from: SimTime::from_secs(100),
                to: SimTime::from_secs(200),
            });
        let spec = cond.scenario.spec(l, cond.capacity, cond.queue_bytes());
        assert_eq!(spec.steps.len(), 2);
        assert_eq!(
            spec.steps[1].action,
            ScenarioAction::Rate(Some(BitRate::from_mbps(25)))
        );
        let qs = PathScenario::QueueStep {
            limit: Bytes(10_000),
            from: SimTime::from_secs(50),
            to: SimTime::from_secs(60),
        };
        let spec = qs.spec(l, cond.capacity, cond.queue_bytes());
        assert_eq!(
            spec.steps[1].action,
            ScenarioAction::QueueLimit(cond.queue_bytes())
        );
    }

    #[test]
    fn solo_grid_size() {
        assert_eq!(Grid::solo(Timeline::paper()).len(), 27);
        assert_eq!(Grid::figure2(Timeline::paper()).len(), 18);
        assert_eq!(Grid::table1(Timeline::paper()).len(), 3);
    }

    #[test]
    fn aqm3d_grid_is_27_unique_cells() {
        let grid = Grid::aqm3d(Timeline::paper());
        assert_eq!(grid.len(), 27);
        let labels: std::collections::HashSet<String> = grid.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 27, "AQM/CCA must be part of the label");
        // Every axis value appears.
        assert!(grid.iter().any(|c| c.aqm == Aqm::FqCoDel));
        assert!(grid.iter().any(|c| c.cca == Some(CcaKind::Bbr2)));
        // Seeds differ between the drop-tail and AQM twins of a cell.
        let dt = &grid[0];
        let twin = grid
            .iter()
            .find(|c| c.system == dt.system && c.cca == dt.cca && c.aqm == Aqm::CoDel)
            .unwrap();
        assert_ne!(dt.seed(0), twin.seed(0));
    }
}
