//! The paper's derived metrics: response time, recovery time,
//! adaptiveness, fairness — plus Jain's index and the harm metric from the
//! future-work discussion.
//!
//! Definitions follow §4.2 of the paper exactly:
//!
//! * **response time** *C*: seconds from the competing flow's arrival until
//!   the game bitrate is within one standard deviation of its *adjusted*
//!   level (measured over the last minute of the competing period);
//! * **recovery time** *E*: seconds from the competing flow's departure
//!   until the bitrate is within one standard deviation of its *original*
//!   level (measured over the minute before arrival);
//! * **adaptiveness** `A = ½(1 − C/Cmax) + ½(1 − E/Emax)`, normalized by
//!   the maxima observed across the compared systems;
//! * **fairness**: `(game − tcp) / capacity` over the stable competing
//!   window, in `[-1, 1]` with 0 = equal share.

use gsrepro_simcore::{SimDuration, SimTime};

use crate::config::{Condition, Timeline};
use crate::runner::RunResult;

/// Centered moving average over `window` bins (window forced odd).
pub fn smooth(bins: &[f64], window: usize) -> Vec<f64> {
    let w = window.max(1) | 1;
    let half = w / 2;
    (0..bins.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(bins.len());
            bins[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Outcome of a response- or recovery-time measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SettleTime {
    /// Seconds until settled (capped at the window length if never).
    pub secs: f64,
    /// True if the bitrate never settled within the window — the paper's
    /// "Stadia never responds or recovers" cases.
    pub never: bool,
}

/// Settling time of any uniformly binned series after a disturbance:
/// seconds from `scan_from` until the 5 s-smoothed series first comes
/// within tolerance of `target_mean`, scanning up to `scan_to`. The
/// tolerance is `target_sd`, floored at 10% of the target (tiny σ over a
/// stable window would otherwise make "settled" unreachable) and at an
/// absolute 0.25. This is the paper's response/recovery rule lifted off
/// the game-bitrate series so dynamic-path analyses can apply it to RTT
/// and frame-rate series too.
///
/// Contract: `secs` is always ≥ 0 and at most the scan-window length.
/// A degenerate window (`scan_to <= scan_from`, e.g. a disturbance at the
/// very end of a trace) contains no bins to settle in, so it returns
/// `never: true` with `secs: 0.0` — it used to leak the *negative*
/// window length instead, which poisoned downstream adaptiveness means.
/// A window narrower than one bin may likewise contain no bin midpoint
/// and then reports `never` with the (sub-bin) window length.
pub fn settle_after(
    bins: &[f64],
    bin_width: SimDuration,
    scan_from: SimTime,
    scan_to: SimTime,
    target_mean: f64,
    target_sd: f64,
) -> SettleTime {
    let (f, t) = (scan_from.as_secs_f64(), scan_to.as_secs_f64());
    if t <= f {
        return SettleTime {
            secs: 0.0,
            never: true,
        };
    }
    let w = bin_width.as_secs_f64();
    let smoothed = smooth(bins, (5.0 / w).round() as usize);
    let tol = target_sd.max(0.1 * target_mean.abs()).max(0.25);
    for (i, &v) in smoothed.iter().enumerate() {
        let mid = (i as f64 + 0.5) * w;
        if mid < f || mid >= t {
            continue;
        }
        if (v - target_mean).abs() <= tol {
            return SettleTime {
                secs: mid - f,
                never: false,
            };
        }
    }
    SettleTime {
        secs: t - f,
        never: true,
    }
}

/// Target mean and σ of a binned series over `[from, to)`, using the same
/// bin-midpoint windowing rule as [`RunResult::game_window`].
fn window_target(bins: &[f64], width: SimDuration, from: SimTime, to: SimTime) -> (f64, f64) {
    let w = width.as_secs_f64();
    let mut s = gsrepro_simcore::stats::Samples::new();
    for (i, &v) in bins.iter().enumerate() {
        let mid = (i as f64 + 0.5) * w;
        if mid >= from.as_secs_f64() && mid < to.as_secs_f64() {
            s.add(v);
        }
    }
    (s.mean(), s.stddev())
}

/// Response time *C* from a borrowed bitrate series (Mb/s per bin) — the
/// allocation-light form the fleet campaign sink uses; identical math to
/// [`response_time`].
pub fn response_time_bins(bins: &[f64], width: SimDuration, tl: &Timeline) -> SettleTime {
    let (mean, sd) = window_target(bins, width, tl.adjusted_window.0, tl.adjusted_window.1);
    settle_after(bins, width, tl.iperf_start, tl.iperf_stop, mean, sd)
}

/// Recovery time *E* from a borrowed bitrate series (Mb/s per bin).
pub fn recovery_time_bins(bins: &[f64], width: SimDuration, tl: &Timeline) -> SettleTime {
    let (mean, sd) = window_target(bins, width, tl.original_window.0, tl.original_window.1);
    settle_after(bins, width, tl.iperf_stop, tl.end, mean, sd)
}

/// Response time *C* for one run.
pub fn response_time(run: &RunResult, tl: &Timeline) -> SettleTime {
    response_time_bins(&run.game_bins_mbps, run.bin_width, tl)
}

/// Recovery time *E* for one run.
pub fn recovery_time(run: &RunResult, tl: &Timeline) -> SettleTime {
    recovery_time_bins(&run.game_bins_mbps, run.bin_width, tl)
}

/// Adaptiveness `A` from response/recovery times and their maxima.
pub fn adaptiveness(c: f64, c_max: f64, e: f64, e_max: f64) -> f64 {
    let part = |x: f64, max: f64| {
        if max <= 0.0 {
            1.0
        } else {
            1.0 - (x / max).clamp(0.0, 1.0)
        }
    };
    0.5 * part(c, c_max) + 0.5 * part(e, e_max)
}

/// Fairness for one run: `(game − tcp) / capacity` over the stable window.
pub fn fairness(run: &RunResult, cond: &Condition) -> f64 {
    let tl = &cond.timeline;
    let game = run
        .game_window(tl.fairness_window.0, tl.fairness_window.1)
        .mean();
    let tcp = run
        .iperf_window(tl.fairness_window.0, tl.fairness_window.1)
        .mean();
    ((game - tcp) / cond.capacity.as_mbps()).clamp(-1.0, 1.0)
}

/// Jain's fairness index over per-flow throughputs.
pub fn jains_index(throughputs: &[f64]) -> f64 {
    let n = throughputs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = throughputs.iter().sum();
    let sumsq: f64 = throughputs.iter().map(|x| x * x).sum();
    if sumsq <= 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sumsq)
}

/// Harm (Ware et al., HotNets '19): how much the competitor degraded the
/// game stream relative to its solo performance. `solo` and `contested`
/// are the same metric measured without and with the competitor; for
/// "more is better" metrics (throughput) harm is `(solo − contested) /
/// solo`; pass `more_is_better = false` for delay-like metrics.
pub fn harm(solo: f64, contested: f64, more_is_better: bool) -> f64 {
    if solo <= 0.0 {
        return 0.0;
    }
    let h = if more_is_better {
        (solo - contested) / solo
    } else {
        (contested - solo) / solo.max(1e-9)
    };
    h.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsrepro_simcore::SimDuration;

    fn fake_run(bins: Vec<f64>, iperf: Vec<f64>) -> RunResult {
        RunResult {
            label: "test".into(),
            iter: 0,
            bin_width: SimDuration::from_millis(500),
            game_bins_mbps: bins,
            iperf_bins_mbps: iperf,
            rtt: vec![],
            fps_bin_width: SimDuration::from_secs(1),
            fps_bins: vec![],
            game_sent_bins: vec![],
            game_dropped_bins: vec![],
            game_loss_rate: 0.0,
            tcp_retransmissions: 0,
            tcp_delivered_bytes: 0,
            tcp_ce_marked: 0,
            tcp_queue_drops: 0,
            encoder_rate_mean: 0.0,
            events_processed: 0,
            past_clamps: 0,
            sched: Default::default(),
            checks_performed: 0,
            telemetry: Default::default(),
            wall_secs: 0.0,
        }
    }

    /// A synthetic timeline: competitor over [20 s, 40 s), trace to 60 s.
    fn tl() -> Timeline {
        let s = |x: u64| SimTime::from_secs(x);
        Timeline {
            iperf_start: s(20),
            iperf_stop: s(40),
            end: s(60),
            original_window: (s(10), s(20)),
            adjusted_window: (s(30), s(40)),
            fairness_window: (s(25), s(40)),
        }
    }

    /// Bitrate 20 before, drops linearly to 10 between 20 s and 20+lag,
    /// stays 10 until 40 s, then climbs back to 20 over `rec` seconds.
    fn synthetic(lag: f64, rec: f64) -> RunResult {
        let mut bins = vec![];
        for i in 0..120 {
            let t = (i as f64 + 0.5) * 0.5;
            let v = if t < 20.0 {
                20.0
            } else if t < 20.0 + lag {
                20.0 - 10.0 * (t - 20.0) / lag
            } else if t < 40.0 {
                10.0
            } else if t < 40.0 + rec {
                10.0 + 10.0 * (t - 40.0) / rec
            } else {
                20.0
            };
            bins.push(v);
        }
        fake_run(bins, vec![0.0; 120])
    }

    #[test]
    fn smooth_preserves_constants() {
        let s = smooth(&[5.0; 20], 9);
        assert!(s.iter().all(|&v| (v - 5.0).abs() < 1e-12));
        assert_eq!(smooth(&[], 5).len(), 0);
    }

    #[test]
    fn settle_after_works_on_arbitrary_series() {
        // 1 s bins: 100 until t = 10 s, linear down to 50 by t = 15 s,
        // flat after — e.g. an RTT series reacting to a rate step.
        let mut bins = vec![];
        for i in 0..40 {
            let t = i as f64 + 0.5;
            bins.push(if t < 10.0 {
                100.0
            } else if t < 15.0 {
                100.0 - 10.0 * (t - 10.0)
            } else {
                50.0
            });
        }
        let st = settle_after(
            &bins,
            SimDuration::from_secs(1),
            SimTime::from_secs(10),
            SimTime::from_secs(40),
            50.0,
            1.0,
        );
        assert!(!st.never);
        assert!(st.secs > 3.0 && st.secs < 10.0, "settle {}", st.secs);

        // A series that never reaches the target is flagged and capped at
        // the scan-window length.
        let st = settle_after(
            &[100.0; 40],
            SimDuration::from_secs(1),
            SimTime::from_secs(10),
            SimTime::from_secs(40),
            50.0,
            1.0,
        );
        assert!(st.never);
        assert!((st.secs - 30.0).abs() < 1e-9);
    }

    #[test]
    fn settle_after_clamps_inverted_windows() {
        let bins = vec![10.0; 40];
        // Inverted window (scan_to < scan_from): no time to settle in.
        // Pre-fix this returned secs = -20 with never = true.
        let st = settle_after(
            &bins,
            SimDuration::from_secs(1),
            SimTime::from_secs(30),
            SimTime::from_secs(10),
            10.0,
            1.0,
        );
        assert!(st.never);
        assert_eq!(st.secs, 0.0, "inverted window must clamp to zero");

        // Empty window (scan_to == scan_from) is equally degenerate.
        let st = settle_after(
            &bins,
            SimDuration::from_secs(1),
            SimTime::from_secs(10),
            SimTime::from_secs(10),
            10.0,
            1.0,
        );
        assert!(st.never && st.secs == 0.0);

        // Sub-bin-width window that straddles no bin midpoint: nothing to
        // scan, so it never settles, with the (tiny, positive) window
        // length as the cap.
        let st = settle_after(
            &bins,
            SimDuration::from_secs(1),
            SimTime::from_millis(10_600),
            SimTime::from_millis(10_900),
            10.0,
            1.0,
        );
        assert!(st.never);
        assert!((st.secs - 0.3).abs() < 1e-9 && st.secs >= 0.0);
    }

    #[test]
    fn bins_settle_helpers_match_run_result_path() {
        let run = synthetic(4.0, 6.0);
        let tl = tl();
        let c = response_time(&run, &tl);
        let cb = response_time_bins(&run.game_bins_mbps, run.bin_width, &tl);
        assert_eq!(c, cb);
        let e = recovery_time(&run, &tl);
        let eb = recovery_time_bins(&run.game_bins_mbps, run.bin_width, &tl);
        assert_eq!(e, eb);
    }

    #[test]
    fn response_time_tracks_lag() {
        let fast = response_time(&synthetic(2.0, 5.0), &tl());
        let slow = response_time(&synthetic(12.0, 5.0), &tl());
        assert!(!fast.never && !slow.never);
        assert!(
            slow.secs > fast.secs + 5.0,
            "slow {} vs fast {}",
            slow.secs,
            fast.secs
        );
    }

    #[test]
    fn recovery_time_tracks_ramp() {
        let fast = recovery_time(&synthetic(2.0, 3.0), &tl());
        let slow = recovery_time(&synthetic(2.0, 15.0), &tl());
        assert!(!fast.never && !slow.never);
        assert!(
            slow.secs > fast.secs + 4.0,
            "slow {} fast {}",
            slow.secs,
            fast.secs
        );
    }

    #[test]
    fn never_settling_is_flagged_and_capped() {
        // Bitrate never approaches the adjusted level: stays at 20
        // throughout while the adjusted target is ~10.
        let mut bins = vec![20.0; 120];
        // adjusted window 30-40 s must still read ~10 to make the target.
        for b in bins.iter_mut().take(80).skip(60) {
            *b = 10.0;
        }
        // ...but the scan window [20, 40) sees 20s until bin 60 (t=30).
        // Use a run where the drop happens exactly at 30 s: response = 10 s.
        let r = fake_run(bins, vec![0.0; 120]);
        let st = response_time(&r, &tl());
        assert!(!st.never);
        // The 5 s centered smoothing delays the detected crossing a bit
        // past the true 10 s step.
        assert!((st.secs - 10.0).abs() < 3.5, "settled at {}", st.secs);

        // Truly never: flat 20, adjusted target extracted from same flat
        // trace is also 20 → settles immediately instead. So force a
        // different shape: constant 20 but adjusted window replaced by 5.
        let mut bins2 = vec![20.0; 120];
        for b in bins2.iter_mut().take(80).skip(60) {
            *b = 5.0;
        }
        // scan [20,40): bins 40..60 are 20 (far from 5), bins 60..80 are 5
        // → settles at t = 30 s → 10 s. For a *never* case cut the trace
        // short so the scan window has no bins near the target.
        let bins3: Vec<f64> = (0..120)
            .map(|i| if (60..80).contains(&i) { 5.0 } else { 20.0 })
            .collect();
        let _ = bins3;
        // Simplest never-case: target mean 5 (adjusted window) but scan
        // values all 20 — make adjusted window outside the scan range.
        let tl2 = Timeline {
            adjusted_window: (SimTime::from_secs(50), SimTime::from_secs(55)),
            ..tl()
        };
        let mut bins4 = vec![20.0; 120];
        for b in bins4.iter_mut().take(110).skip(100) {
            *b = 5.0;
        }
        let r4 = fake_run(bins4, vec![0.0; 120]);
        let st4 = response_time(&r4, &tl2);
        assert!(st4.never);
        assert_eq!(st4.secs, 20.0); // capped at window length
    }

    #[test]
    fn adaptiveness_bounds() {
        assert_eq!(adaptiveness(0.0, 10.0, 0.0, 10.0), 1.0);
        assert_eq!(adaptiveness(10.0, 10.0, 10.0, 10.0), 0.0);
        let a = adaptiveness(5.0, 10.0, 0.0, 10.0);
        assert!((a - 0.75).abs() < 1e-12);
        // Degenerate maxima treated as instantly adaptive.
        assert_eq!(adaptiveness(1.0, 0.0, 1.0, 0.0), 1.0);
    }

    #[test]
    fn fairness_sign_convention() {
        use crate::config::Condition;
        use gsrepro_gamestream::SystemKind;
        use gsrepro_tcp::CcaKind;
        let mut cond = Condition::new(SystemKind::Stadia, Some(CcaKind::Cubic), 20, 2.0);
        cond.timeline = tl();
        // Game 15, TCP 5 → (15-5)/20 = +0.5.
        let r = fake_run(vec![15.0; 120], vec![5.0; 120]);
        assert!((fairness(&r, &cond) - 0.5).abs() < 1e-9);
        // Reverse: −0.5.
        let r = fake_run(vec![5.0; 120], vec![15.0; 120]);
        assert!((fairness(&r, &cond) + 0.5).abs() < 1e-9);
    }

    #[test]
    fn jains_index_properties() {
        // Equal shares: perfectly fair regardless of scale.
        assert_eq!(jains_index(&[10.0, 10.0]), 1.0);
        assert_eq!(jains_index(&[3.5, 3.5, 3.5, 3.5]), 1.0);
        let skew = jains_index(&[19.0, 1.0]);
        assert!(skew < 0.6);
        // Empty input and all-zero input degenerate to fair.
        assert_eq!(jains_index(&[]), 1.0);
        assert_eq!(jains_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jains_index_single_flow_dominant() {
        // One flow holding everything scores exactly 1/n.
        let j3 = jains_index(&[42.0, 0.0, 0.0]);
        assert!((j3 - 1.0 / 3.0).abs() < 1e-12, "got {j3}");
        let j2 = jains_index(&[0.0, 7.5]);
        assert!((j2 - 0.5).abs() < 1e-12, "got {j2}");
        // Near-total dominance approaches the same floor from above.
        let near = jains_index(&[100.0, 0.001, 0.001]);
        assert!(near > 1.0 / 3.0 && near < 0.34, "got {near}");
    }

    #[test]
    fn harm_directions() {
        // Throughput halved → harm 0.5.
        assert!((harm(20.0, 10.0, true) - 0.5).abs() < 1e-12);
        // Delay doubled → harm 1.0.
        assert!((harm(20.0, 40.0, false) - 1.0).abs() < 1e-12);
        // Improvement is not negative harm.
        assert_eq!(harm(20.0, 25.0, true), 0.0);
        assert_eq!(harm(0.0, 10.0, true), 0.0);
    }
}
