//! Fleet-scale campaign engine: run very large {condition × seed} sweeps
//! with flat memory and resumable checkpoints.
//!
//! [`crate::runner::run_many_full`] materialises a [`RunResult`] per
//! session, which is fine for the paper's 15-iteration grids but not for
//! 100k-session fleet sweeps. A campaign instead:
//!
//! 1. splits each condition's iteration range into contiguous **shards**
//!    (`shard_size` sessions each),
//! 2. schedules shards across worker threads with the same work-stealing
//!    panic-isolating scheduler the grid runner uses
//!    ([`crate::runner::run_jobs`]),
//! 3. streams every finished session through [`FleetSample::from_view`]
//!    into one bounded [`MetricSketch`] per (condition, metric) —
//!    sessions are never retained,
//! 4. appends each completed shard's aggregate to a **manifest** file, so
//!    a killed sweep resumes where it left off.
//!
//! # Determinism
//!
//! Floating-point accumulation is order-sensitive, so bit-identical
//! aggregates need a fixed fill and merge order, not just a fixed sample
//! set. The campaign guarantees both:
//!
//! * a shard aggregates its sessions **sequentially in iteration order**,
//!   whichever thread runs it, and every session is seeded from
//!   `(condition label, iteration)` alone;
//! * the final per-condition aggregate merges shard aggregates in
//!   **ascending shard index**, whether a shard was computed this
//!   invocation or replayed from the manifest.
//!
//! Hence `digest()` is identical for 1-thread vs N-thread runs and for
//! killed-then-resumed vs uninterrupted runs — the property
//! `crates/testbed/tests/campaign.rs` and the `ci.sh` fleet gate enforce.
//!
//! # Manifest format (version 1)
//!
//! ```text
//! gsrepro-fleet-manifest v1
//! spec <16-hex-digit FNV-1a digest of the campaign spec>
//! shard <idx> runs=<n> events=<n> nresp=<n> nrec=<n> | <sketch>;<sketch>;...
//! ```
//!
//! `spec` binds the manifest to the exact condition list, iteration
//! count, shard size, checks flag and timeline; resuming with a different
//! spec is refused rather than silently mixing aggregates. Shard lines
//! are appended (and flushed) as shards finish; floats inside sketches
//! are IEEE-754 bit patterns, so replay is exact.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::config::{Condition, Timeline};
use crate::metrics::{recovery_time_bins, response_time_bins};
use crate::runner::{run_condition_with, run_jobs, RunView};
use crate::sketch::MetricSketch;

/// Metric names, in sketch order. Every [`CondAggregate`] holds one
/// sketch per entry.
pub const METRICS: [&str; 7] = [
    "encoder_rate_mbps",
    "goodput_mbps",
    "rtt_ms",
    "fps",
    "loss_rate",
    "response_s",
    "recovery_s",
];

const N_METRICS: usize = METRICS.len();

/// A fleet campaign: which conditions to sweep and how.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Conditions to sweep (each runs `iterations` seeded sessions).
    pub conditions: Vec<Condition>,
    /// Sessions per condition.
    pub iterations: u32,
    /// Sessions per shard (checkpoint granularity). Clamped to ≥ 1.
    pub shard_size: u32,
    /// Worker threads for the shard scheduler.
    pub threads: usize,
    /// Run the invariant oracles on every session.
    pub checks: bool,
    /// Checkpoint manifest path. `None` disables checkpointing (the
    /// campaign still runs, it just can't resume).
    pub manifest: Option<PathBuf>,
    /// Stop scheduling new shards after this many have completed in this
    /// invocation — used by tests and the CI gate to force a mid-sweep
    /// kill + resume. `None` runs to completion.
    pub halt_after_shards: Option<usize>,
}

impl CampaignSpec {
    /// A campaign over `conditions` with sensible defaults (shard size
    /// 32, all cores, no checks, no manifest).
    pub fn new(conditions: Vec<Condition>, iterations: u32) -> Self {
        CampaignSpec {
            conditions,
            iterations,
            shard_size: 32,
            threads: crate::runner::default_threads(),
            checks: false,
            manifest: None,
            halt_after_shards: None,
        }
    }

    fn shard_size(&self) -> u32 {
        self.shard_size.max(1)
    }

    fn shards_per_condition(&self) -> usize {
        (self.iterations as usize).div_ceil(self.shard_size() as usize)
    }

    fn total_shards(&self) -> usize {
        self.conditions.len() * self.shards_per_condition()
    }

    /// Iteration range `[lo, hi)` and condition index of global shard
    /// `idx`.
    fn shard_bounds(&self, idx: usize) -> (usize, u32, u32) {
        let per = self.shards_per_condition();
        let cond = idx / per;
        let lo = (idx % per) as u32 * self.shard_size();
        let hi = (lo + self.shard_size()).min(self.iterations);
        (cond, lo, hi)
    }

    /// FNV-1a digest of everything that determines the sweep's sessions.
    /// Binds a manifest to its spec: resuming under a different spec is
    /// an error, not a silent mix.
    pub fn digest(&self) -> u64 {
        let mut s = String::from("gsrepro-fleet-spec v1\n");
        for c in &self.conditions {
            s.push_str(&format!(
                "cond {} tl={}\n",
                c.label(),
                timeline_bits(&c.timeline)
            ));
        }
        s.push_str(&format!(
            "iters={} shard={} checks={}\n",
            self.iterations,
            self.shard_size(),
            self.checks
        ));
        fnv1a(s.as_bytes())
    }
}

fn timeline_bits(tl: &Timeline) -> String {
    let b = |t: gsrepro_simcore::SimTime| format!("{:016x}", t.as_secs_f64().to_bits());
    format!(
        "{},{},{},{},{},{},{},{},{}",
        b(tl.iperf_start),
        b(tl.iperf_stop),
        b(tl.end),
        b(tl.original_window.0),
        b(tl.original_window.1),
        b(tl.adjusted_window.0),
        b(tl.adjusted_window.1),
        b(tl.fairness_window.0),
        b(tl.fairness_window.1),
    )
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The per-session scalars a campaign aggregates — everything the fleet
/// report needs, extracted from a borrowed [`RunView`] without cloning
/// any per-run series.
#[derive(Clone, Copy, Debug)]
pub struct FleetSample {
    /// Mean encoder target rate over the whole run, Mb/s.
    pub encoder_rate_mbps: f64,
    /// Mean delivered game goodput from the original window to the end,
    /// Mb/s.
    pub goodput_mbps: f64,
    /// Mean game-path RTT, ms.
    pub rtt_ms: f64,
    /// Mean displayed frames per second from the original window on.
    pub fps: f64,
    /// Whole-run game packet loss rate.
    pub loss_rate: f64,
    /// Response time *C* seconds, `None` if the run never settled.
    pub response_s: Option<f64>,
    /// Recovery time *E* seconds, `None` if the run never recovered.
    pub recovery_s: Option<f64>,
    /// Engine events this session processed (deterministic per seed).
    pub events_processed: u64,
}

impl FleetSample {
    /// Extract the fleet scalars from a finished run. The only transient
    /// allocation is one Mb/s bin vector for the settle-time scans; it is
    /// dropped before the next session starts.
    pub fn from_view(view: &RunView) -> Self {
        let tl = &view.cond.timeline;
        let game = view.game_stats();
        let width = game.delivered_bins.width();
        let to_mbps = 8.0 / width.as_secs_f64() / 1e6;
        let bins_mbps: Vec<f64> = game
            .delivered_bins
            .bins()
            .iter()
            .map(|b| b * to_mbps)
            .collect();
        let response = response_time_bins(&bins_mbps, width, tl);
        let recovery = recovery_time_bins(&bins_mbps, width, tl);
        FleetSample {
            encoder_rate_mbps: view.encoder_trace().mean(),
            goodput_mbps: game.mean_goodput_mbps(tl.original_window.0, tl.end),
            rtt_ms: view.ping().rtt_samples().mean(),
            fps: view.fps_bins().mean_over(tl.original_window.0, tl.end, 1.0),
            loss_rate: game.loss_rate(),
            response_s: (!response.never).then_some(response.secs),
            recovery_s: (!recovery.never).then_some(recovery.secs),
            events_processed: view.events_processed,
        }
    }
}

/// Bounded aggregate of one condition's sessions: one [`MetricSketch`]
/// per [`METRICS`] entry plus exact counters. Size is independent of the
/// session count.
#[derive(Clone, Debug)]
pub struct CondAggregate {
    /// Sessions aggregated.
    pub runs: u64,
    /// Total engine events across those sessions.
    pub events_processed: u64,
    /// Sessions whose bitrate never settled after the competitor arrived.
    pub never_response: u64,
    /// Sessions whose bitrate never recovered after the competitor left.
    pub never_recovery: u64,
    sketches: Vec<MetricSketch>,
}

impl Default for CondAggregate {
    fn default() -> Self {
        Self::new()
    }
}

impl CondAggregate {
    /// An empty aggregate.
    pub fn new() -> Self {
        CondAggregate {
            runs: 0,
            events_processed: 0,
            never_response: 0,
            never_recovery: 0,
            sketches: (0..N_METRICS).map(|_| MetricSketch::new()).collect(),
        }
    }

    /// Stream one session in. Settle times only enter their sketches
    /// when the run actually settled; the `never_*` counters carry the
    /// rest (the paper's "never responds / never recovers" fractions).
    pub fn observe(&mut self, s: &FleetSample) {
        self.runs += 1;
        self.events_processed += s.events_processed;
        self.sketches[0].add(s.encoder_rate_mbps);
        self.sketches[1].add(s.goodput_mbps);
        self.sketches[2].add(s.rtt_ms);
        self.sketches[3].add(s.fps);
        self.sketches[4].add(s.loss_rate);
        match s.response_s {
            Some(v) => self.sketches[5].add(v),
            None => self.never_response += 1,
        }
        match s.recovery_s {
            Some(v) => self.sketches[6].add(v),
            None => self.never_recovery += 1,
        }
    }

    /// The sketch for [`METRICS`]`[i]`.
    pub fn metric(&self, i: usize) -> &MetricSketch {
        &self.sketches[i]
    }

    /// The sketch for a metric by name; `None` for unknown names.
    pub fn metric_named(&self, name: &str) -> Option<&MetricSketch> {
        METRICS
            .iter()
            .position(|&m| m == name)
            .map(|i| &self.sketches[i])
    }

    /// Merge another aggregate in. Callers must keep a fixed order (the
    /// campaign merges by ascending shard index) for bit-identical
    /// results.
    pub fn merge(&mut self, other: &CondAggregate) {
        self.runs += other.runs;
        self.events_processed += other.events_processed;
        self.never_response += other.never_response;
        self.never_recovery += other.never_recovery;
        for (a, b) in self.sketches.iter_mut().zip(&other.sketches) {
            a.merge(b);
        }
    }

    /// Exact single-line serialization (manifest shard payload).
    pub fn serialize(&self) -> String {
        let sketches: Vec<String> = self.sketches.iter().map(|s| s.serialize()).collect();
        format!(
            "runs={} events={} nresp={} nrec={} | {}",
            self.runs,
            self.events_processed,
            self.never_response,
            self.never_recovery,
            sketches.join(";")
        )
    }

    /// Parse [`CondAggregate::serialize`] output.
    pub fn deserialize(line: &str) -> Result<Self, String> {
        let (head, tail) = line
            .split_once(" | ")
            .ok_or_else(|| format!("malformed aggregate line {line:?}"))?;
        let mut agg = CondAggregate::new();
        for field in head.split_whitespace() {
            let (key, val) = field
                .split_once('=')
                .ok_or_else(|| format!("malformed aggregate field {field:?}"))?;
            let v: u64 = val.parse().map_err(|e| format!("bad count {val:?}: {e}"))?;
            match key {
                "runs" => agg.runs = v,
                "events" => agg.events_processed = v,
                "nresp" => agg.never_response = v,
                "nrec" => agg.never_recovery = v,
                other => return Err(format!("unknown aggregate field {other:?}")),
            }
        }
        let sketches: Vec<&str> = tail.split(';').collect();
        if sketches.len() != N_METRICS {
            return Err(format!(
                "expected {N_METRICS} sketches, found {}",
                sketches.len()
            ));
        }
        for (i, text) in sketches.iter().enumerate() {
            agg.sketches[i] = MetricSketch::deserialize(text)?;
        }
        Ok(agg)
    }
}

/// Outcome of [`run_campaign`].
#[derive(Debug)]
pub struct CampaignResult {
    /// Per-condition aggregates, in spec order.
    pub conditions: Vec<(Condition, CondAggregate)>,
    /// Shards the sweep consists of in total.
    pub total_shards: usize,
    /// Shards replayed from the manifest instead of being re-run.
    pub resumed_shards: usize,
    /// Shards computed (and checkpointed) by this invocation.
    pub completed_shards: usize,
    /// Shards still pending (> 0 only when `halt_after_shards` fired).
    pub pending_shards: usize,
    /// Sessions simulated by this invocation (excludes resumed shards).
    pub sessions_this_run: u64,
    /// Wall-clock seconds this invocation spent.
    pub wall_secs: f64,
    /// Set when resume found and repaired a torn trailing manifest line
    /// (a checkpoint append cut short by a kill). Holds a human-readable
    /// description of what was recovered.
    pub torn_tail: Option<String>,
}

impl CampaignResult {
    /// True when every shard of the sweep is accounted for.
    pub fn complete(&self) -> bool {
        self.pending_shards == 0
    }

    /// Sessions represented in the aggregates (resumed + fresh).
    pub fn sessions_total(&self) -> u64 {
        self.conditions.iter().map(|(_, a)| a.runs).sum()
    }

    /// Simulated sessions per wall-clock second, this invocation only.
    pub fn sessions_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.sessions_this_run as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// FNV-1a digest of the full aggregate state (labels + exact
    /// serializations; wall clock excluded). Bit-identical across thread
    /// counts and across kill/resume splits — the fleet determinism gate
    /// compares exactly this.
    pub fn digest(&self) -> u64 {
        let mut s = String::new();
        for (cond, agg) in &self.conditions {
            s.push_str(&cond.label());
            s.push(' ');
            s.push_str(&agg.serialize());
            s.push('\n');
        }
        fnv1a(s.as_bytes())
    }
}

const MANIFEST_HEADER: &str = "gsrepro-fleet-manifest v1";

/// Parse one manifest shard line into `(global index, aggregate)`.
fn parse_shard_line(line: &str, total: usize) -> Result<(usize, CondAggregate), String> {
    let rest = line
        .strip_prefix("shard ")
        .ok_or_else(|| format!("unexpected manifest line {line:?}"))?;
    let (idx, payload) = rest
        .split_once(' ')
        .ok_or_else(|| format!("malformed shard line {line:?}"))?;
    let idx: usize = idx
        .parse()
        .map_err(|e| format!("bad shard index {idx:?}: {e}"))?;
    if idx >= total {
        return Err(format!("shard index {idx} out of range"));
    }
    Ok((idx, CondAggregate::deserialize(payload)?))
}

/// Streaming shard merger. Keeps exactly one running [`CondAggregate`]
/// per condition plus a small reorder buffer, so campaign memory is flat
/// in the shard (and therefore session) count: shards that finish out of
/// order wait in the buffer only until the gap before them closes, then
/// fold into the running aggregate in **ascending shard index** — the
/// fixed merge order the bit-identity contract requires. With in-order
/// completion (1 thread, or a resumed prefix) the buffer never holds more
/// than one entry; with N threads it holds O(N) in practice.
struct ShardMerger {
    /// Per condition: the merged contiguous prefix of its shards.
    agg: Vec<CondAggregate>,
    /// Per condition: how many leading shards have been merged.
    next: Vec<usize>,
    /// Out-of-order completions, keyed by global shard index.
    buffered: std::collections::BTreeMap<usize, CondAggregate>,
    /// Shards per condition (maps global index → condition).
    per: usize,
    merged: usize,
}

impl ShardMerger {
    fn new(n_conditions: usize, per: usize) -> Self {
        ShardMerger {
            agg: (0..n_conditions).map(|_| CondAggregate::new()).collect(),
            next: vec![0; n_conditions],
            buffered: std::collections::BTreeMap::new(),
            per,
            merged: 0,
        }
    }

    /// Accept shard `idx`'s aggregate; returns false for duplicates.
    fn push(&mut self, idx: usize, agg: CondAggregate) -> bool {
        let ci = idx / self.per;
        if idx % self.per < self.next[ci] || self.buffered.contains_key(&idx) {
            return false;
        }
        self.buffered.insert(idx, agg);
        // Fold every now-contiguous shard of this condition.
        while let Some(a) = self.buffered.remove(&(ci * self.per + self.next[ci])) {
            self.agg[ci].merge(&a);
            self.next[ci] += 1;
            self.merged += 1;
        }
        true
    }

    /// Shards accepted so far (merged or still buffered).
    fn accounted(&self) -> usize {
        self.merged + self.buffered.len()
    }

    /// Fold any still-buffered shards (ascending index; only halted runs
    /// leave gaps) and return the per-condition aggregates.
    fn finish(mut self) -> Vec<CondAggregate> {
        for (idx, a) in std::mem::take(&mut self.buffered) {
            self.agg[idx / self.per].merge(&a);
        }
        self.agg
    }
}

/// Run (or resume) a fleet campaign. See the module docs for the
/// determinism and manifest contracts.
///
/// Errors on manifest problems (unreadable, wrong spec, corrupt shard
/// lines) and when any shard panics — in the latter case every *other*
/// shard still finishes and checkpoints first, so a fixed bug loses at
/// most the failing shards' work.
pub fn run_campaign(spec: &CampaignSpec) -> Result<CampaignResult, String> {
    let started = Instant::now();
    let total = spec.total_shards();
    let merger = Mutex::new(ShardMerger::new(
        spec.conditions.len(),
        spec.shards_per_condition(),
    ));

    // Replay checkpointed shards, if a manifest exists. Lines stream
    // straight into the merger, so resuming a huge sweep never holds more
    // than the reorder buffer's worth of shard aggregates.
    //
    // Kill-tolerance: the writer appends shard lines with a flush per
    // line, so the only damage a kill can inflict is a *torn tail* — a
    // final shard line that is cut short (fails to parse) or that the
    // file ends on without a newline. Both are recovered by truncating
    // the manifest back to the last complete shard and re-running the
    // torn one. A malformed line with complete lines *after* it cannot
    // come from a torn append and stays a hard error.
    let mut done = vec![false; total];
    let mut resumed = 0usize;
    let mut torn_tail: Option<String> = None;
    if let Some(path) = &spec.manifest {
        if path.exists() {
            use std::io::BufRead as _;
            let f = File::open(path)
                .map_err(|e| format!("cannot read manifest {}: {e}", path.display()))?;
            let mut m = merger.lock().unwrap();
            let mut reader = std::io::BufReader::new(f);
            let mut buf = String::new();
            // Byte offset of the current line's start, and the torn
            // candidate: (truncate-to offset, reason).
            let mut offset: u64 = 0;
            let mut torn: Option<(u64, String)> = None;
            let mut n = 0usize;
            loop {
                buf.clear();
                let read = reader
                    .read_line(&mut buf)
                    .map_err(|e| format!("cannot read manifest: {e}"))?;
                if read == 0 {
                    break;
                }
                if let Some((_, why)) = &torn {
                    return Err(format!(
                        "corrupt manifest {}: {why}, but complete lines follow it, so it \
                         is not a torn append; delete the file or point --manifest \
                         elsewhere",
                        path.display()
                    ));
                }
                let terminated = buf.ends_with('\n');
                let line = buf.trim_end_matches(['\n', '\r']);
                match n {
                    0 if line == MANIFEST_HEADER => {}
                    0 => return Err(format!("not a fleet manifest (first line {line:?})")),
                    1 => match line.strip_prefix("spec ") {
                        Some(hex) if hex == format!("{:016x}", spec.digest()) => {}
                        Some(hex) => {
                            return Err(format!(
                                "manifest belongs to a different campaign (spec {hex}, ours \
                                 {:016x}); delete it or point --manifest elsewhere",
                                spec.digest()
                            ))
                        }
                        None => return Err("manifest is missing its spec line".into()),
                    },
                    _ if line.is_empty() => {}
                    _ => match parse_shard_line(line, total) {
                        Ok((idx, agg)) if terminated => {
                            if m.push(idx, agg) {
                                done[idx] = true;
                                resumed += 1;
                            }
                        }
                        Ok(_) => {
                            torn = Some((
                                offset,
                                format!("line {}: shard line has no trailing newline", n + 1),
                            ));
                        }
                        Err(e) => torn = Some((offset, format!("line {}: {e}", n + 1))),
                    },
                }
                offset += read as u64;
                n += 1;
            }
            if n == 1 {
                return Err("manifest is missing its spec line".into());
            }
            drop(m);
            if let Some((off, why)) = torn {
                let fh = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| format!("cannot truncate manifest {}: {e}", path.display()))?;
                fh.set_len(off)
                    .map_err(|e| format!("cannot truncate manifest {}: {e}", path.display()))?;
                torn_tail = Some(format!(
                    "recovered torn manifest tail ({why}); truncated to the last complete \
                     shard and re-running the rest"
                ));
            }
        }
    }

    // Open the manifest for appending; write the header when fresh.
    let manifest: Option<Mutex<File>> = match &spec.manifest {
        Some(path) => {
            let fresh = !path.exists();
            let mut f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("cannot open manifest {}: {e}", path.display()))?;
            if fresh {
                writeln!(f, "{MANIFEST_HEADER}\nspec {:016x}", spec.digest())
                    .map_err(|e| format!("cannot write manifest header: {e}"))?;
            }
            Some(Mutex::new(f))
        }
        None => None,
    };

    let pending: Vec<usize> = (0..total).filter(|&i| !done[i]).collect();
    let halted = AtomicUsize::new(0);
    let halt_at = spec.halt_after_shards.unwrap_or(usize::MAX);

    // One job per pending shard. A shard runs its sessions sequentially
    // in iteration order (deterministic regardless of which worker takes
    // it), checkpoints under the manifest lock, and folds straight into
    // the streaming merger — the job's return value is just accounting,
    // so memory stays flat however many shards the sweep has. Returns
    // `None` when the halt budget was spent before this shard started.
    let run_shard = |j: usize| -> Option<u64> {
        if halted.fetch_add(1, Ordering::SeqCst) >= halt_at {
            return None;
        }
        let shard_idx = pending[j];
        let (ci, lo, hi) = spec.shard_bounds(shard_idx);
        let cond = &spec.conditions[ci];
        let mut agg = CondAggregate::new();
        for iter in lo..hi {
            run_condition_with(cond, iter, None, spec.checks, |view| {
                agg.observe(&FleetSample::from_view(view));
            });
        }
        if let Some(m) = &manifest {
            let mut f = m.lock().unwrap();
            // Append + flush so a kill right after this point loses
            // nothing; a kill mid-write leaves a torn last line that
            // resume truncates away (re-running just that shard).
            writeln!(f, "shard {} {}", shard_idx, agg.serialize())
                .and_then(|_| f.flush())
                .unwrap_or_else(|e| panic!("manifest write failed: {e}"));
        }
        let runs = agg.runs;
        merger.lock().unwrap().push(shard_idx, agg);
        Some(runs)
    };
    let describe = |j: usize| {
        let (ci, lo, hi) = spec.shard_bounds(pending[j]);
        format!("{} iters {lo}..{hi}", spec.conditions[ci].label())
    };

    let results = run_jobs(pending.len(), spec.threads, run_shard, describe).map_err(|fails| {
        let mut msg = format!("campaign failed: {} shard(s) panicked", fails.len());
        for f in fails.iter().take(5) {
            msg.push_str(&format!("; {f}"));
        }
        msg
    })?;

    let mut completed = 0usize;
    let mut sessions_this_run = 0u64;
    for runs in results.into_iter().flatten() {
        completed += 1;
        sessions_this_run += runs;
    }

    let merger = merger.into_inner().unwrap();
    let pending_shards = total - merger.accounted();
    let conditions: Vec<(Condition, CondAggregate)> = spec
        .conditions
        .iter()
        .cloned()
        .zip(merger.finish())
        .collect();

    Ok(CampaignResult {
        conditions,
        total_shards: total,
        resumed_shards: resumed,
        completed_shards: completed,
        pending_shards,
        sessions_this_run,
        wall_secs: started.elapsed().as_secs_f64(),
        torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsrepro_gamestream::SystemKind;
    use gsrepro_tcp::CcaKind;

    fn tiny_spec() -> CampaignSpec {
        let tl = Timeline::scaled(0.02);
        let conditions = vec![
            Condition::new(SystemKind::Luna, Some(CcaKind::Cubic), 25, 2.0).with_timeline(tl),
            Condition::new(SystemKind::Stadia, Some(CcaKind::Bbr), 25, 2.0).with_timeline(tl),
        ];
        let mut spec = CampaignSpec::new(conditions, 4);
        spec.shard_size = 2;
        spec.threads = 1;
        spec
    }

    #[test]
    fn shard_bounds_cover_the_sweep_exactly() {
        let mut spec = tiny_spec();
        spec.iterations = 5; // not divisible by shard_size=2 → ragged tail
        assert_eq!(spec.shards_per_condition(), 3);
        assert_eq!(spec.total_shards(), 6);
        let mut seen = [0u32; 2 * 5];
        for idx in 0..spec.total_shards() {
            let (ci, lo, hi) = spec.shard_bounds(idx);
            assert!(hi <= 5 && lo < hi);
            for it in lo..hi {
                seen[ci * 5 + it as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "each session exactly once");
    }

    #[test]
    fn aggregate_serialization_round_trips() {
        let mut agg = CondAggregate::new();
        for i in 0..50 {
            agg.observe(&FleetSample {
                encoder_rate_mbps: 10.0 + i as f64 * 0.1,
                goodput_mbps: 9.0 + i as f64 * 0.05,
                rtt_ms: 40.0 + (i % 7) as f64,
                fps: 59.0,
                loss_rate: 0.001 * i as f64,
                response_s: (i % 5 != 0).then_some(3.0 + i as f64 * 0.2),
                recovery_s: None,
                events_processed: 1000 + i,
            });
        }
        let line = agg.serialize();
        let back = CondAggregate::deserialize(&line).expect("parses");
        assert_eq!(back.serialize(), line);
        assert_eq!(back.runs, 50);
        assert_eq!(back.never_response, 10);
        assert_eq!(back.never_recovery, 50);
        assert_eq!(
            back.metric_named("rtt_ms").unwrap().mean().to_bits(),
            agg.metric(2).mean().to_bits()
        );
    }

    #[test]
    fn spec_digest_tracks_spec_changes() {
        let a = tiny_spec();
        let mut b = tiny_spec();
        assert_eq!(a.digest(), b.digest());
        b.iterations += 1;
        assert_ne!(a.digest(), b.digest());
        let mut c = tiny_spec();
        c.conditions.pop();
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn shard_lines_parse_and_reject_garbage() {
        let mut agg = CondAggregate::new();
        agg.observe(&FleetSample {
            encoder_rate_mbps: 10.0,
            goodput_mbps: 9.0,
            rtt_ms: 40.0,
            fps: 60.0,
            loss_rate: 0.0,
            response_s: Some(2.0),
            recovery_s: None,
            events_processed: 5,
        });
        let line = format!("shard 3 {}", agg.serialize());
        let (idx, back) = parse_shard_line(&line, 8).expect("parses");
        assert_eq!(idx, 3);
        assert_eq!(back.serialize(), agg.serialize());
        assert!(parse_shard_line(&line, 3).is_err(), "index out of range");
        assert!(parse_shard_line("garbage", 8).is_err());
        assert!(parse_shard_line("shard x runs=1", 8).is_err());
    }

    #[test]
    fn shard_merger_is_order_insensitive_in_result_and_flat_in_buffering() {
        let mk = |seed: u64| {
            let mut a = CondAggregate::new();
            a.observe(&FleetSample {
                encoder_rate_mbps: seed as f64,
                goodput_mbps: seed as f64 * 0.9,
                rtt_ms: 40.0 + seed as f64,
                fps: 60.0,
                loss_rate: 0.0,
                response_s: Some(seed as f64),
                recovery_s: Some(seed as f64 * 2.0),
                events_processed: seed,
            });
            a
        };
        // In order: buffer drains immediately.
        let mut fwd = ShardMerger::new(2, 3);
        for i in 0..6 {
            assert!(fwd.push(i, mk(i as u64)));
            assert!(fwd.buffered.len() <= 1, "in-order fill stays flat");
        }
        // Adversarial order: same final bits.
        let mut rev = ShardMerger::new(2, 3);
        for i in [5, 2, 0, 4, 1, 3] {
            rev.push(i, mk(i as u64));
        }
        assert!(!rev.push(2, mk(99)), "duplicates are rejected");
        let (f, r) = (fwd.finish(), rev.finish());
        for (a, b) in f.iter().zip(&r) {
            assert_eq!(a.serialize(), b.serialize());
        }
    }
}
