//! Chaos campaigns: seeded adversarial trials against the whole testbed.
//!
//! A trial samples a random experimental condition *and* a random
//! adversarial disturbance schedule ([`gsrepro_netsim::ScenarioGen`]),
//! then runs it twice with every invariant oracle armed and a
//! [`Watchdog`] bounding the event count:
//!
//! * **leg A** establishes the verdict: an oracle violation panics with a
//!   structured report, a runaway or livelocked run comes back as a
//!   structured [`SimError`], and anything else must complete;
//! * **leg B** re-executes the identical trial and the two result digests
//!   are compared bit-for-bit — the *determinism oracle*. Any divergence
//!   (a [`ChaosVerdict::Nondeterminism`]) means a run can no longer be
//!   reproduced from `(condition, seed)` alone, which this repo treats as
//!   a first-class bug.
//!
//! Failures are minimized by a delta-debugging shrinker (fewest schedule
//! steps, then shortest horizon, then a single disturbed link) and
//! serialized to a small text repro (`gsrepro-chaos-repro v1`) that
//! [`Trial::parse`] reads back exactly — f64 fields travel as bit
//! patterns, so a replay is the same simulation to the last bit.
//!
//! The campaign validates *itself* with perturbation knobs
//! ([`Perturbation`]): each knob plants one bug class (a seed skew, a
//! config skew, a starved budget) and the campaign must catch it and
//! shrink it to a minimal repro. `cargo run -p gsrepro-bench --bin chaos`
//! drives all of this from the command line.

use std::panic::{catch_unwind, AssertUnwindSafe};

use gsrepro_gamestream::SystemKind;
use gsrepro_netsim::link::LinkId;
use gsrepro_netsim::{LinkProfile, ScenarioAction, ScenarioGen, ScenarioSpec, ScenarioStep};
use gsrepro_simcore::rng::rng_for;
use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimError, SimTime, Watchdog};
use gsrepro_tcp::CcaKind;

use crate::config::{Aqm, Condition, Timeline};
use crate::runner::{default_threads, run_condition_guarded, run_jobs, RunView};
use crate::topology::{BOTTLENECK_LINK, WAN_GAME_LINK};

/// How one chaos trial ended.
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosVerdict {
    /// Both legs completed, digests agree, no oracle fired.
    Clean,
    /// A runtime invariant oracle fired (structured panic report).
    OracleViolation {
        /// The oracle's report, starting with `invariant violation:`.
        report: String,
    },
    /// The two legs completed but their result digests differ.
    Nondeterminism {
        /// Digest of leg A.
        digest_a: u64,
        /// Digest of leg B.
        digest_b: u64,
    },
    /// The run panicked outside the oracle framework (an internal bug),
    /// or a schedule the generator guarantees valid was rejected.
    Panic {
        /// The panic payload (or rejection), stringified.
        message: String,
    },
    /// The watchdog aborted the run: event budget exhausted or livelock.
    Timeout {
        /// The structured [`SimError`], stringified.
        error: String,
    },
}

impl ChaosVerdict {
    /// Every verdict tag, in histogram order.
    pub const TAGS: [&'static str; 5] = [
        "clean",
        "oracle-violation",
        "nondeterminism",
        "panic",
        "timeout",
    ];

    /// Stable short tag (also the histogram key).
    pub fn tag(&self) -> &'static str {
        Self::TAGS[self.tag_index()]
    }

    /// Index into [`ChaosVerdict::TAGS`].
    pub fn tag_index(&self) -> usize {
        match self {
            ChaosVerdict::Clean => 0,
            ChaosVerdict::OracleViolation { .. } => 1,
            ChaosVerdict::Nondeterminism { .. } => 2,
            ChaosVerdict::Panic { .. } => 3,
            ChaosVerdict::Timeout { .. } => 4,
        }
    }

    /// `true` for [`ChaosVerdict::Clean`].
    pub fn is_clean(&self) -> bool {
        matches!(self, ChaosVerdict::Clean)
    }
}

/// A deliberately planted bug class, used to validate that the campaign
/// catches what it claims to catch (and that the shrinker converges).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Perturbation {
    /// No planted bug: every verdict should be clean.
    None,
    /// If the schedule contains an outage, leg B runs with the *next*
    /// iteration's seed — a stand-in for "some code path consumed
    /// randomness it shouldn't have". Caught as nondeterminism; shrinks
    /// to a single outage.
    SeedSkewOnOutage,
    /// If the schedule contains a queue-limit step, leg B runs with the
    /// queue multiplier skewed by 1% — a stand-in for "a config knob
    /// leaked between runs". The label (and therefore the seed) shifts,
    /// so this is caught as nondeterminism; shrinks to a single
    /// queue-limit step.
    QueueSkewOnShrink,
    /// Run both legs under an event budget of `n` — a stand-in for a
    /// runaway simulation. Caught as a timeout on every trial.
    TinyBudget(u64),
}

impl Perturbation {
    /// Stable label, also the repro-file field value.
    pub fn label(&self) -> String {
        match self {
            Perturbation::None => "none".into(),
            Perturbation::SeedSkewOnOutage => "seed-skew-on-outage".into(),
            Perturbation::QueueSkewOnShrink => "queue-skew-on-shrink".into(),
            Perturbation::TinyBudget(n) => format!("tiny-budget {n}"),
        }
    }

    /// Parse a [`Perturbation::label`] back (also accepts
    /// `tiny-budget=N` for the command line).
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        match s {
            "none" => Ok(Perturbation::None),
            "seed-skew-on-outage" => Ok(Perturbation::SeedSkewOnOutage),
            "queue-skew-on-shrink" => Ok(Perturbation::QueueSkewOnShrink),
            _ => {
                let rest = s
                    .strip_prefix("tiny-budget=")
                    .or_else(|| s.strip_prefix("tiny-budget "))
                    .ok_or_else(|| format!("unknown perturbation {s:?}"))?;
                let n: u64 = rest
                    .trim()
                    .parse()
                    .map_err(|e| format!("tiny-budget wants an event count: {e}"))?;
                Ok(Perturbation::TinyBudget(n))
            }
        }
    }
}

/// One fully-specified chaos trial: everything needed to re-execute it
/// bit-identically. This is also exactly what a repro file stores.
#[derive(Clone, Debug, PartialEq)]
pub struct Trial {
    /// Which game system streams.
    pub system: SystemKind,
    /// Competing TCP congestion control (`None` = solo).
    pub cca: Option<CcaKind>,
    /// Bottleneck capacity, Mb/s.
    pub capacity_mbps: u64,
    /// Bottleneck queue size in BDP multiples.
    pub queue_mult: f64,
    /// Queue discipline at the bottleneck.
    pub aqm: Aqm,
    /// Uniform per-packet WAN jitter.
    pub wan_jitter: SimDuration,
    /// Timeline scale (1.0 = the paper's 9 minutes).
    pub scale: f64,
    /// Iteration index (selects the seed together with the label).
    pub iter: u32,
    /// Watchdog bounds for both legs.
    pub watchdog: Watchdog,
    /// Planted bug class (normally [`Perturbation::None`]).
    pub perturb: Perturbation,
    /// The adversarial disturbance schedule.
    pub schedule: ScenarioSpec,
}

impl Trial {
    /// The trial's experimental condition. The schedule is *not* part of
    /// the condition (and so not part of the seed): shrinking the
    /// schedule never changes which simulation it perturbs.
    pub fn condition(&self) -> Condition {
        Condition::new(self.system, self.cca, self.capacity_mbps, self.queue_mult)
            .with_aqm(self.aqm)
            .with_wan_jitter(self.wan_jitter)
            .with_timeline(Timeline::scaled(self.scale))
    }

    /// Serialize to the `gsrepro-chaos-repro v1` text format. Floats are
    /// stored as bit patterns, so parse∘serialize is the identity.
    pub fn serialize(&self) -> String {
        let mut out = String::from("gsrepro-chaos-repro v1\n");
        out.push_str(&format!("system {}\n", self.system.label()));
        out.push_str(&format!(
            "cca {}\n",
            self.cca.map(|c| c.label()).unwrap_or("solo")
        ));
        out.push_str(&format!("capacity_mbps {}\n", self.capacity_mbps));
        out.push_str(&format!("queue_mult {:016x}\n", self.queue_mult.to_bits()));
        out.push_str(&format!("aqm {}\n", self.aqm.label()));
        out.push_str(&format!("wan_jitter_ns {}\n", self.wan_jitter.as_nanos()));
        out.push_str(&format!("scale {:016x}\n", self.scale.to_bits()));
        out.push_str(&format!("iter {}\n", self.iter));
        out.push_str(&format!("event_budget {}\n", self.watchdog.event_budget));
        out.push_str(&format!(
            "livelock_window {}\n",
            self.watchdog.livelock_window
        ));
        out.push_str(&format!("perturb {}\n", self.perturb.label()));
        out.push_str(&format!("steps {}\n", self.schedule.steps.len()));
        for st in &self.schedule.steps {
            let action = match st.action {
                ScenarioAction::Rate(Some(r)) => format!("rate {}", r.as_bps()),
                ScenarioAction::Rate(None) => "rate none".to_string(),
                ScenarioAction::Delay(d) => format!("delay {}", d.as_nanos()),
                ScenarioAction::Loss(p) => format!("loss {:016x}", p.to_bits()),
                ScenarioAction::Duplication(p) => format!("dup {:016x}", p.to_bits()),
                ScenarioAction::Up(up) => format!("up {}", u8::from(up)),
                ScenarioAction::QueueLimit(b) => format!("queue {}", b.as_u64()),
            };
            out.push_str(&format!(
                "step {} {} {}\n",
                st.at.as_nanos(),
                st.link.0,
                action
            ));
        }
        out
    }

    /// Parse a `gsrepro-chaos-repro v1` file.
    pub fn parse(text: &str) -> Result<Trial, String> {
        let header = text.lines().next().unwrap_or("").trim();
        if header != "gsrepro-chaos-repro v1" {
            return Err(format!(
                "not a chaos repro: first line is {header:?}, want \"gsrepro-chaos-repro v1\""
            ));
        }
        let mut lines = text.lines().enumerate().skip(1);
        let mut field = |want: &str| -> Result<String, String> {
            for (i, line) in lines.by_ref() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let (key, val) = line
                    .split_once(' ')
                    .ok_or_else(|| format!("line {}: expected `{want} <value>`", i + 1))?;
                if key != want {
                    return Err(format!("line {}: expected field {want}, got {key}", i + 1));
                }
                return Ok(val.trim().to_string());
            }
            Err(format!("missing field {want}"))
        };

        let parse_u64 = |what: &str, v: &str| -> Result<u64, String> {
            v.parse::<u64>().map_err(|e| format!("{what} {v:?}: {e}"))
        };
        let parse_bits = |what: &str, v: &str| -> Result<f64, String> {
            u64::from_str_radix(v, 16)
                .map(f64::from_bits)
                .map_err(|e| format!("{what} {v:?}: want f64 bits as 16 hex digits: {e}"))
        };

        let system = match field("system")?.as_str() {
            "stadia" => SystemKind::Stadia,
            "geforce" => SystemKind::GeForce,
            "luna" => SystemKind::Luna,
            other => return Err(format!("unknown system {other:?}")),
        };
        let cca = match field("cca")?.as_str() {
            "solo" => None,
            "reno" => Some(CcaKind::Reno),
            "cubic" => Some(CcaKind::Cubic),
            "bbr" => Some(CcaKind::Bbr),
            "bbr2" => Some(CcaKind::Bbr2),
            "vegas" => Some(CcaKind::Vegas),
            other => return Err(format!("unknown cca {other:?}")),
        };
        let capacity_mbps = parse_u64("capacity_mbps", &field("capacity_mbps")?)?;
        let queue_mult = parse_bits("queue_mult", &field("queue_mult")?)?;
        let aqm = match field("aqm")?.as_str() {
            "droptail" => Aqm::DropTail,
            "codel" => Aqm::CoDel,
            "fqcodel" => Aqm::FqCoDel,
            other => return Err(format!("unknown aqm {other:?}")),
        };
        let wan_jitter =
            SimDuration::from_nanos(parse_u64("wan_jitter_ns", &field("wan_jitter_ns")?)?);
        let scale = parse_bits("scale", &field("scale")?)?;
        let iter = parse_u64("iter", &field("iter")?)? as u32;
        let event_budget = parse_u64("event_budget", &field("event_budget")?)?;
        let livelock_window = parse_u64("livelock_window", &field("livelock_window")?)?;
        let perturb = Perturbation::parse(&field("perturb")?)?;
        let n_steps = parse_u64("steps", &field("steps")?)? as usize;

        let mut steps = Vec::with_capacity(n_steps);
        for _ in 0..n_steps {
            let line = field("step")?;
            let mut tok = line.split_whitespace();
            let mut next = |what: &str| {
                tok.next()
                    .map(str::to_string)
                    .ok_or_else(|| format!("step line {line:?}: missing {what}"))
            };
            let at = SimTime::from_nanos(parse_u64("step time", &next("time")?)?);
            let link = LinkId(parse_u64("step link", &next("link")?)? as u32);
            let kind = next("action")?;
            let action = match kind.as_str() {
                "rate" => {
                    let v = next("rate")?;
                    if v == "none" {
                        ScenarioAction::Rate(None)
                    } else {
                        ScenarioAction::Rate(Some(BitRate::from_bps(parse_u64("rate", &v)?)))
                    }
                }
                "delay" => ScenarioAction::Delay(SimDuration::from_nanos(parse_u64(
                    "delay",
                    &next("delay")?,
                )?)),
                "loss" => ScenarioAction::Loss(parse_bits("loss", &next("loss")?)?),
                "dup" => ScenarioAction::Duplication(parse_bits("dup", &next("dup")?)?),
                "up" => ScenarioAction::Up(parse_u64("up", &next("up")?)? != 0),
                "queue" => ScenarioAction::QueueLimit(Bytes(parse_u64("queue", &next("queue")?)?)),
                other => return Err(format!("unknown step action {other:?}")),
            };
            steps.push(ScenarioStep { at, link, action });
        }

        Ok(Trial {
            system,
            cca,
            capacity_mbps,
            queue_mult,
            aqm,
            wan_jitter,
            scale,
            iter,
            watchdog: Watchdog::new(event_budget, livelock_window),
            perturb,
            schedule: ScenarioSpec { steps },
        })
    }
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// Base seed: trial `i` samples from RNG stream `(seed, i)`.
    pub seed: u64,
    /// Number of trials.
    pub trials: u32,
    /// OS threads for the trial fan-out.
    pub threads: usize,
    /// Timeline scale of every trial (1.0 = the paper's 9 minutes;
    /// campaigns default to 0.05 ≈ 27 s per leg).
    pub scale: f64,
    /// Upper bound on disturbances per schedule.
    pub max_disturbances: usize,
    /// Watchdog bounds for every leg.
    pub watchdog: Watchdog,
    /// Planted bug class (normally [`Perturbation::None`]).
    pub perturb: Perturbation,
    /// Shrink at most this many failures (serially, after the fan-out).
    pub shrink_limit: usize,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            seed: 0xC4A0,
            trials: 1_000,
            threads: default_threads(),
            scale: 0.05,
            max_disturbances: 6,
            watchdog: Watchdog::default(),
            perturb: Perturbation::None,
            shrink_limit: 3,
        }
    }
}

impl ChaosSpec {
    /// Sample trial `index` — condition and schedule together, from one
    /// seeded stream, so the whole campaign reproduces from `seed` alone.
    pub fn sample_trial(&self, index: u32) -> Trial {
        use rand::Rng;
        let mut rng = rng_for(self.seed, index as u64);
        let system = SystemKind::ALL[rng.gen_range(0..SystemKind::ALL.len())];
        let cca = match rng.gen_range(0..6u32) {
            0 => None,
            1 => Some(CcaKind::Reno),
            2 => Some(CcaKind::Cubic),
            3 => Some(CcaKind::Bbr),
            4 => Some(CcaKind::Bbr2),
            _ => Some(CcaKind::Vegas),
        };
        let capacity_mbps = rng.gen_range(5..=40u64);
        let queue_mult = rng.gen_range(0.3..8.0f64);
        let aqm = [Aqm::DropTail, Aqm::CoDel, Aqm::FqCoDel][rng.gen_range(0..3usize)];
        let wan_jitter = if rng.gen_range(0..4u32) == 0 {
            SimDuration::from_micros(rng.gen_range(50..2_000u64))
        } else {
            SimDuration::ZERO
        };

        let cond = Condition::new(system, cca, capacity_mbps, queue_mult);
        let gen = ScenarioGen {
            horizon: Timeline::scaled(self.scale).end,
            max_disturbances: self.max_disturbances,
            links: vec![
                LinkProfile::shaped(BOTTLENECK_LINK, cond.capacity, cond.queue_bytes()),
                LinkProfile::plain(WAN_GAME_LINK),
            ],
        };
        let schedule = gen.sample(&mut rng);

        Trial {
            system,
            cca,
            capacity_mbps,
            queue_mult,
            aqm,
            wan_jitter,
            scale: self.scale,
            iter: index,
            watchdog: self.watchdog,
            perturb: self.perturb,
            schedule,
        }
    }
}

fn fnv_bytes(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

fn fnv_u64(h: &mut u64, v: u64) {
    fnv_bytes(h, &v.to_le_bytes());
}

fn fnv_f64(h: &mut u64, v: f64) {
    fnv_u64(h, v.to_bits());
}

/// FNV-1a digest over everything deterministic a run produces: event and
/// oracle counters, the game flow's packet/byte totals and delivery bins,
/// the competing flow's totals, RTT samples, fps bins and TCP counters —
/// exactly the surfaces the determinism-matrix tests compare, folded to
/// one u64 so two legs compare in O(1) memory.
pub fn digest(view: &RunView) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv_u64(&mut h, view.events_processed);
    fnv_u64(&mut h, view.past_clamps);
    fnv_u64(&mut h, view.checks_performed);

    let g = view.game_stats();
    for v in [
        g.sent_pkts,
        g.delivered_pkts,
        g.queue_drop_pkts,
        g.link_drop_pkts,
        g.ce_marked_pkts,
        g.sent_bytes.as_u64(),
        g.delivered_bytes.as_u64(),
    ] {
        fnv_u64(&mut h, v);
    }
    for &b in g.delivered_bins.bins() {
        fnv_f64(&mut h, b);
    }
    if let Some(s) = view.iperf_stats() {
        for v in [
            s.sent_pkts,
            s.delivered_pkts,
            s.queue_drop_pkts,
            s.link_drop_pkts,
            s.ce_marked_pkts,
        ] {
            fnv_u64(&mut h, v);
        }
    }
    for &v in view.ping().rtt_samples().values() {
        fnv_f64(&mut h, v);
    }
    for &v in view.fps_bins().bins() {
        fnv_f64(&mut h, v);
    }
    let (retx, bytes) = view.tcp_counters();
    fnv_u64(&mut h, retx);
    fnv_u64(&mut h, bytes);
    h
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one leg under full oracles + watchdog; classify every way it can
/// end. `Ok` carries the result digest.
fn run_leg(
    cond: &Condition,
    iter: u32,
    schedule: &ScenarioSpec,
    dog: &Watchdog,
) -> Result<u64, ChaosVerdict> {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        run_condition_guarded(cond, iter, true, schedule, dog, digest)
    }));
    match caught {
        Ok(Ok(d)) => Ok(d),
        Ok(Err(e)) => match e {
            SimError::EventBudgetExceeded { .. } | SimError::Livelock { .. } => {
                Err(ChaosVerdict::Timeout {
                    error: e.to_string(),
                })
            }
            // The generator guarantees valid schedules; a rejection here
            // is a bug in the campaign itself, not a sim timeout.
            SimError::InvalidScenario { .. } => Err(ChaosVerdict::Panic {
                message: format!("generated schedule rejected: {e}"),
            }),
        },
        Err(p) => {
            let message = panic_text(p);
            if message.starts_with("invariant violation") {
                Err(ChaosVerdict::OracleViolation { report: message })
            } else {
                Err(ChaosVerdict::Panic { message })
            }
        }
    }
}

/// Execute one trial: leg A for the verdict, leg B for the determinism
/// oracle. Perturbation knobs skew leg B (or the shared watchdog) to
/// plant the bug class they model.
pub fn run_trial(t: &Trial) -> ChaosVerdict {
    let dog = match t.perturb {
        Perturbation::TinyBudget(n) => Watchdog::new(n, t.watchdog.livelock_window),
        _ => t.watchdog,
    };
    let cond = t.condition();
    let digest_a = match run_leg(&cond, t.iter, &t.schedule, &dog) {
        Ok(d) => d,
        Err(verdict) => return verdict,
    };

    let has_outage = t
        .schedule
        .steps
        .iter()
        .any(|s| s.action == ScenarioAction::Up(false));
    let has_shrink = t
        .schedule
        .steps
        .iter()
        .any(|s| matches!(s.action, ScenarioAction::QueueLimit(_)));
    let (cond_b, iter_b) = match t.perturb {
        Perturbation::SeedSkewOnOutage if has_outage => (cond, t.iter.wrapping_add(1)),
        Perturbation::QueueSkewOnShrink if has_shrink => {
            let mut skewed = t.clone();
            skewed.queue_mult *= 1.01;
            (skewed.condition(), t.iter)
        }
        _ => (cond, t.iter),
    };
    let digest_b = match run_leg(&cond_b, iter_b, &t.schedule, &dog) {
        Ok(d) => d,
        Err(verdict) => return verdict,
    };

    if digest_a != digest_b {
        ChaosVerdict::Nondeterminism { digest_a, digest_b }
    } else {
        ChaosVerdict::Clean
    }
}

/// What the shrinker did to one failure.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShrinkStats {
    /// Candidate trials executed while shrinking.
    pub tests: u32,
    /// Schedule steps before shrinking.
    pub steps_before: usize,
    /// Schedule steps after shrinking.
    pub steps_after: usize,
    /// Timeline scale before shrinking.
    pub scale_before: f64,
    /// Timeline scale after shrinking.
    pub scale_after: f64,
    /// Distinct disturbed links before → after.
    pub links_before: usize,
    /// Distinct disturbed links after shrinking.
    pub links_after: usize,
}

fn distinct_links(spec: &ScenarioSpec) -> usize {
    let mut links: Vec<u32> = spec.steps.iter().map(|s| s.link.0).collect();
    links.sort_unstable();
    links.dedup();
    links.len()
}

/// Minimize a failing trial while preserving its verdict tag: ddmin over
/// schedule steps (fewest steps), then horizon halving (shortest run),
/// then a single-link remap. Returns the minimized trial and stats; the
/// minimized trial is guaranteed to still fail with the same tag.
pub fn shrink(t: &Trial, verdict: &ChaosVerdict) -> (Trial, ShrinkStats) {
    let target = verdict.tag();
    let mut stats = ShrinkStats {
        steps_before: t.schedule.steps.len(),
        scale_before: t.scale,
        links_before: distinct_links(&t.schedule),
        ..ShrinkStats::default()
    };
    let fails = |cand: &Trial, stats: &mut ShrinkStats| {
        stats.tests += 1;
        run_trial(cand).tag() == target
    };
    let with_steps = |base: &Trial, steps: Vec<ScenarioStep>| {
        let mut c = base.clone();
        c.schedule = ScenarioSpec { steps };
        c
    };

    let mut cur = t.clone();

    // Fast path: if the failure needs no schedule at all (a starved
    // budget, a seedless bug), the empty schedule is the minimum.
    let empty = with_steps(&cur, Vec::new());
    if fails(&empty, &mut stats) {
        cur = empty;
    } else {
        // ddmin over steps: repeatedly try dropping chunks (complements),
        // refining the partition when nothing can be dropped.
        let mut n = 2usize;
        while cur.schedule.steps.len() >= 2 {
            let len = cur.schedule.steps.len();
            let n_eff = n.min(len);
            let chunk = len.div_ceil(n_eff);
            let mut reduced = None;
            for i in 0..n_eff {
                let lo = i * chunk;
                let hi = ((i + 1) * chunk).min(len);
                if lo >= hi {
                    continue;
                }
                let mut steps = cur.schedule.steps.clone();
                steps.drain(lo..hi);
                let cand = with_steps(&cur, steps);
                if fails(&cand, &mut stats) {
                    reduced = Some(cand);
                    break;
                }
            }
            match reduced {
                Some(c) => {
                    cur = c;
                    n = 2;
                }
                None if n_eff >= len => break,
                None => n *= 2,
            }
        }
    }

    // Horizon halving: shorter timelines, step times scaled down with
    // them (a step beyond the horizon would never fire). The floor keeps
    // the run long enough to stream at all.
    for _ in 0..6 {
        let next = cur.scale / 2.0;
        if next < 0.01 {
            break;
        }
        let mut cand = cur.clone();
        cand.scale = next;
        for st in &mut cand.schedule.steps {
            st.at = SimTime::from_nanos(st.at.as_nanos() / 2);
        }
        if fails(&cand, &mut stats) {
            cur = cand;
        } else {
            break;
        }
    }

    // Single-link remap: if the minimized schedule still spans several
    // links, try folding everything onto the bottleneck.
    if distinct_links(&cur.schedule) > 1 {
        let mut cand = cur.clone();
        for st in &mut cand.schedule.steps {
            st.link = BOTTLENECK_LINK;
        }
        if fails(&cand, &mut stats) {
            cur = cand;
        }
    }

    stats.steps_after = cur.schedule.steps.len();
    stats.scale_after = cur.scale;
    stats.links_after = distinct_links(&cur.schedule);
    (cur, stats)
}

/// One non-clean trial, with its minimized repro when shrinking ran.
#[derive(Clone, Debug)]
pub struct ChaosFailure {
    /// Trial index within the campaign.
    pub trial: u32,
    /// How it failed.
    pub verdict: ChaosVerdict,
    /// The trial as sampled (replayable as-is).
    pub repro: Trial,
    /// The minimized trial and shrink stats, for the first
    /// [`ChaosSpec::shrink_limit`] failures.
    pub shrunk: Option<(Trial, ShrinkStats)>,
}

/// Campaign outcome: the verdict histogram and every failure.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Trials executed.
    pub trials: u32,
    /// Verdict counts, indexed like [`ChaosVerdict::TAGS`].
    pub counts: [u32; 5],
    /// Every non-clean trial, in trial order.
    pub failures: Vec<ChaosFailure>,
    /// Candidate trials executed by the shrinker, total.
    pub shrink_tests: u32,
}

impl ChaosReport {
    /// `true` when every verdict was clean.
    pub fn all_clean(&self) -> bool {
        self.counts[0] == self.trials
    }

    /// `tag count` pairs with non-zero counts, histogram order.
    pub fn histogram(&self) -> Vec<(&'static str, u32)> {
        ChaosVerdict::TAGS
            .iter()
            .zip(self.counts)
            .filter(|&(_, c)| c > 0)
            .map(|(&t, c)| (t, c))
            .collect()
    }
}

/// Run a whole campaign: fan the trials across threads (each trial is
/// already panic-isolated inside [`run_trial`]), tally verdicts, then
/// shrink the first [`ChaosSpec::shrink_limit`] failures serially.
pub fn run_chaos(spec: &ChaosSpec) -> ChaosReport {
    let outcomes = run_jobs(
        spec.trials as usize,
        spec.threads,
        |i| {
            let t = spec.sample_trial(i as u32);
            let verdict = run_trial(&t);
            (t, verdict)
        },
        |i| format!("chaos trial {i}"),
    )
    .unwrap_or_else(|failures| {
        // run_trial catches every panic a leg can raise; reaching this
        // means the campaign scaffolding itself is broken.
        panic!(
            "chaos campaign scaffolding panicked: {}",
            failures
                .first()
                .map(|f| f.to_string())
                .unwrap_or_else(|| "no failure detail".into())
        )
    });

    let mut report = ChaosReport {
        trials: spec.trials,
        ..ChaosReport::default()
    };
    for (i, (t, verdict)) in outcomes.into_iter().enumerate() {
        report.counts[verdict.tag_index()] += 1;
        if !verdict.is_clean() {
            report.failures.push(ChaosFailure {
                trial: i as u32,
                verdict,
                repro: t,
                shrunk: None,
            });
        }
    }
    for f in report.failures.iter_mut().take(spec.shrink_limit) {
        let (min, stats) = shrink(&f.repro, &f.verdict);
        report.shrink_tests += stats.tests;
        f.shrunk = Some((min, stats));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> ChaosSpec {
        ChaosSpec {
            seed: 7,
            trials: 4,
            threads: 2,
            scale: 0.02, // ≈ 11 s legs
            max_disturbances: 4,
            ..ChaosSpec::default()
        }
    }

    #[test]
    fn sampling_is_deterministic_and_varied() {
        let spec = quick_spec();
        let a = spec.sample_trial(3);
        let b = spec.sample_trial(3);
        assert_eq!(a, b, "same (seed, index) must sample the same trial");
        // Across a few hundred samples the campaign must actually cover
        // the grid: several systems, solo and competing, several kinds.
        let mut systems = std::collections::HashSet::new();
        let mut solos = 0;
        let mut outages = 0;
        for i in 0..200 {
            let t = spec.sample_trial(i);
            systems.insert(t.system.label());
            solos += usize::from(t.cca.is_none());
            outages += usize::from(
                t.schedule
                    .steps
                    .iter()
                    .any(|s| s.action == ScenarioAction::Up(false)),
            );
            assert!(t.schedule.validate().is_ok(), "trial {i} invalid");
        }
        assert_eq!(systems.len(), 3);
        assert!(solos > 0, "no solo conditions sampled");
        assert!(outages > 0, "no outages sampled");
    }

    #[test]
    fn repro_codec_round_trips_exactly() {
        let spec = quick_spec();
        for i in 0..50 {
            let t = spec.sample_trial(i);
            let text = t.serialize();
            let back = Trial::parse(&text).unwrap_or_else(|e| panic!("trial {i}: {e}"));
            assert_eq!(back, t, "trial {i} did not round-trip");
            // And the serialized form itself is a fixed point.
            assert_eq!(back.serialize(), text);
        }
    }

    #[test]
    fn repro_parse_rejects_garbage_with_context() {
        let err = Trial::parse("not a repro\n").unwrap_err();
        assert!(err.contains("not a chaos repro"), "{err}");
        let spec = quick_spec();
        let good = spec.sample_trial(0).serialize();
        let truncated: String = good.lines().take(6).collect::<Vec<_>>().join("\n");
        assert!(Trial::parse(&truncated).is_err());
        let corrupt = good.replace("aqm", "qam");
        let err = Trial::parse(&corrupt).unwrap_err();
        assert!(err.contains("expected field aqm"), "{err}");
    }

    #[test]
    fn clean_trial_is_clean() {
        let spec = quick_spec();
        let t = spec.sample_trial(0);
        assert_eq!(run_trial(&t), ChaosVerdict::Clean);
    }

    #[test]
    fn tiny_budget_is_caught_as_timeout_and_shrinks_to_nothing() {
        let mut t = quick_spec().sample_trial(1);
        t.perturb = Perturbation::TinyBudget(5_000);
        let verdict = run_trial(&t);
        assert_eq!(verdict.tag(), "timeout", "got {verdict:?}");
        // The failure needs no schedule at all, so the shrinker's fast
        // path should reach the empty schedule in one probe.
        let (min, stats) = shrink(&t, &verdict);
        assert_eq!(min.schedule.steps.len(), 0);
        assert!(stats.tests >= 1);
        assert!(min.scale < t.scale, "horizon shrink should also bite");
    }

    #[test]
    fn seed_skew_is_caught_as_nondeterminism_and_shrinks_small() {
        // Find a sampled trial whose schedule contains an outage — the
        // knob only fires there, modelling a bug on that code path.
        let spec = ChaosSpec {
            perturb: Perturbation::SeedSkewOnOutage,
            ..quick_spec()
        };
        let t = (0..500)
            .map(|i| spec.sample_trial(i))
            .find(|t| {
                t.schedule
                    .steps
                    .iter()
                    .any(|s| s.action == ScenarioAction::Up(false))
            })
            .expect("an outage within 500 samples");
        let verdict = run_trial(&t);
        assert_eq!(verdict.tag(), "nondeterminism", "got {verdict:?}");

        let (min, stats) = shrink(&t, &verdict);
        assert!(
            min.schedule.steps.len() <= 3,
            "shrunk to {} steps, want ≤ 3: {:?}",
            min.schedule.steps.len(),
            min.schedule
        );
        // The surviving steps must include the outage that arms the bug.
        assert!(min
            .schedule
            .steps
            .iter()
            .any(|s| s.action == ScenarioAction::Up(false)));
        assert_eq!(stats.steps_after, min.schedule.steps.len());
        // The minimized repro still fails, through the codec round-trip.
        let replayed = Trial::parse(&min.serialize()).unwrap();
        assert_eq!(run_trial(&replayed).tag(), "nondeterminism");
    }

    #[test]
    fn formerly_livelocked_trials_stay_clean() {
        // The first 50-trial campaign (`chaos --trials 50 --seed 42`)
        // caught a real TCP livelock: once a lost segment's
        // retransmission stayed pacing-blocked past MAX_RTO, the RTO
        // deadline re-armed from the stale `sent_at` to an instant
        // already in the past, and the timer fired at the same sim time
        // forever. Fixed by flooring the re-arm anchor at the last
        // expiry (`rto_fired_at` in gsrepro-tcp's endpoint). Keep the
        // two trials that exposed it pinned clean; the labels guard
        // against the sampler drifting underneath the pin.
        let spec = ChaosSpec {
            seed: 42,
            ..ChaosSpec::default()
        };
        for (idx, label) in [
            (36, "stadia-cubic-b7-q5.256697980278779-fqcodel-j764us"),
            (46, "stadia-bbr2-b5-q0.5191966052921324-codel"),
        ] {
            let t = spec.sample_trial(idx);
            assert_eq!(
                t.condition().label(),
                label,
                "sampler drifted; trial {idx} no longer reproduces the pinned condition"
            );
            let verdict = run_trial(&t);
            assert!(verdict.is_clean(), "trial {idx} regressed: {verdict:?}");
        }
    }

    #[test]
    fn small_campaign_is_all_clean_with_histogram() {
        let spec = ChaosSpec {
            trials: 6,
            threads: 3,
            ..quick_spec()
        };
        let report = run_chaos(&spec);
        assert_eq!(report.trials, 6);
        assert!(
            report.all_clean(),
            "unexpected failures: {:?}",
            report
                .failures
                .iter()
                .map(|f| (f.trial, f.verdict.tag()))
                .collect::<Vec<_>>()
        );
        assert_eq!(report.histogram(), vec![("clean", 6)]);
    }
}
