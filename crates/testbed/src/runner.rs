//! Executes experimental conditions across seeded iterations, in parallel.
//!
//! The paper runs every condition 15 times, striping across systems to
//! keep comparisons temporally close. Here runs are independent simulations
//! (no shared Internet weather to stripe against), so the runner simply
//! executes (condition × iteration) jobs across OS threads and aggregates.
//! Iteration `i` of a condition always uses the same derived seed, so any
//! run can be reproduced in isolation.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use gsrepro_gamestream::client::StreamClient;
use gsrepro_gamestream::server::StreamServer;
use gsrepro_netsim::apps::PingAgent;
use gsrepro_netsim::monitor::FlowStats;
use gsrepro_netsim::ScenarioSpec;
use gsrepro_simcore::stats::{Samples, TimeBinned};
use gsrepro_simcore::telemetry::Counters;
use gsrepro_simcore::{SchedStats, SimDuration, SimError, SimTime, TelemetryConfig, Watchdog};
use gsrepro_tcp::TcpSender;

use crate::config::Condition;
use crate::topology;

/// Everything measured in one run of one condition.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Condition label this run belongs to.
    pub label: String,
    /// Iteration index (selects the seed).
    pub iter: u32,
    /// Monitor bin width for the bitrate series.
    pub bin_width: SimDuration,
    /// Game goodput per bin, Mb/s.
    pub game_bins_mbps: Vec<f64>,
    /// Competing TCP goodput per bin, Mb/s (empty for solo runs).
    pub iperf_bins_mbps: Vec<f64>,
    /// Ping RTT samples: (reply time s, RTT ms).
    pub rtt: Vec<(f64, f64)>,
    /// Bin width of the frame-rate series (the client's fps bins).
    pub fps_bin_width: SimDuration,
    /// Displayed frames per fps bin, scaled to frames/s.
    pub fps_bins: Vec<f64>,
    /// Game media packets sent per bin.
    pub game_sent_bins: Vec<f64>,
    /// Game media packets dropped per bin.
    pub game_dropped_bins: Vec<f64>,
    /// Total game media loss rate over the run.
    pub game_loss_rate: f64,
    /// TCP retransmissions (competing runs).
    pub tcp_retransmissions: u64,
    /// TCP bytes delivered (competing runs).
    pub tcp_delivered_bytes: u64,
    /// CE marks the AQM placed on the competing TCP flow (ECN-capable
    /// senders over CoDel/FQ-CoDel; always 0 for drop-tail or Not-ECT).
    pub tcp_ce_marked: u64,
    /// Queue/AQM drops suffered by the competing TCP flow.
    pub tcp_queue_drops: u64,
    /// Final encoder rate trace mean, Mb/s (diagnostics).
    pub encoder_rate_mean: f64,
    /// Engine events handled by this run (deterministic per seed).
    pub events_processed: u64,
    /// Events scheduled in the past and clamped to "now" by the engine.
    pub past_clamps: u64,
    /// Scheduler occupancy counters (deterministic per seed): where events
    /// landed (lane/cur/wheel/overflow), cascade volume, cancels, and the
    /// event-slab high-watermark.
    pub sched: SchedStats,
    /// Invariant-oracle evaluations performed (0 when checks are off). A
    /// run that returns at all had zero violations — a violated oracle
    /// panics with a structured report instead of completing — so this
    /// counts evidence, not failures.
    pub checks_performed: u64,
    /// Telemetry counters for this run (all zero when tracing is off).
    pub telemetry: Counters,
    /// Wall-clock seconds the simulation took (NOT deterministic; excluded
    /// from reproducibility comparisons).
    pub wall_secs: f64,
}

impl RunResult {
    fn window_bins(&self, bins: &[f64], from: SimTime, to: SimTime) -> Samples {
        let w = self.bin_width.as_secs_f64();
        let mut s = Samples::new();
        for (i, &v) in bins.iter().enumerate() {
            let mid = (i as f64 + 0.5) * w;
            if mid >= from.as_secs_f64() && mid < to.as_secs_f64() {
                s.add(v);
            }
        }
        s
    }

    /// Game goodput samples (Mb/s per bin) within `[from, to)`.
    pub fn game_window(&self, from: SimTime, to: SimTime) -> Samples {
        self.window_bins(&self.game_bins_mbps, from, to)
    }

    /// Competing-TCP goodput samples within `[from, to)`.
    pub fn iperf_window(&self, from: SimTime, to: SimTime) -> Samples {
        self.window_bins(&self.iperf_bins_mbps, from, to)
    }

    /// RTT samples within `[from, to)` (ms).
    pub fn rtt_window(&self, from: SimTime, to: SimTime) -> Samples {
        let mut s = Samples::new();
        for &(t, v) in &self.rtt {
            if t >= from.as_secs_f64() && t < to.as_secs_f64() {
                s.add(v);
            }
        }
        s
    }

    /// Mean displayed frame rate within `[from, to)`.
    pub fn fps_window(&self, from: SimTime, to: SimTime) -> Samples {
        let w = self.fps_bin_width.as_secs_f64();
        let mut s = Samples::new();
        for (i, &v) in self.fps_bins.iter().enumerate() {
            let mid = (i as f64 + 0.5) * w;
            if mid >= from.as_secs_f64() && mid < to.as_secs_f64() {
                s.add(v);
            }
        }
        s
    }

    /// Game media loss rate within `[from, to)`.
    pub fn game_loss_window(&self, from: SimTime, to: SimTime) -> f64 {
        let w = self.bin_width.as_secs_f64();
        let (mut sent, mut dropped) = (0.0, 0.0);
        for i in 0..self.game_sent_bins.len().max(self.game_dropped_bins.len()) {
            let mid = (i as f64 + 0.5) * w;
            if mid >= from.as_secs_f64() && mid < to.as_secs_f64() {
                sent += self.game_sent_bins.get(i).copied().unwrap_or(0.0);
                dropped += self.game_dropped_bins.get(i).copied().unwrap_or(0.0);
            }
        }
        if sent <= 0.0 {
            0.0
        } else {
            (dropped / sent).clamp(0.0, 1.0)
        }
    }
}

/// All runs of one condition.
#[derive(Clone, Debug)]
pub struct ConditionResult {
    /// The condition.
    pub condition: Condition,
    /// One result per iteration.
    pub runs: Vec<RunResult>,
}

impl ConditionResult {
    /// Per-run means of game goodput over a window (one sample per run).
    pub fn game_means(&self, from: SimTime, to: SimTime) -> Vec<f64> {
        self.runs
            .iter()
            .map(|r| r.game_window(from, to).mean())
            .collect()
    }

    /// Per-run means of competing-TCP goodput over a window.
    pub fn iperf_means(&self, from: SimTime, to: SimTime) -> Vec<f64> {
        self.runs
            .iter()
            .map(|r| r.iperf_window(from, to).mean())
            .collect()
    }

    /// Pooled RTT samples over a window across all runs.
    pub fn rtt_pooled(&self, from: SimTime, to: SimTime) -> Samples {
        let mut s = Samples::new();
        for r in &self.runs {
            for v in r.rtt_window(from, to).values() {
                s.add(*v);
            }
        }
        s
    }

    /// Pooled frame-rate samples over a window across all runs.
    pub fn fps_pooled(&self, from: SimTime, to: SimTime) -> Samples {
        let mut s = Samples::new();
        for r in &self.runs {
            for v in r.fps_window(from, to).values() {
                s.add(*v);
            }
        }
        s
    }

    /// Mean game loss rate over a window across runs.
    pub fn loss_mean(&self, from: SimTime, to: SimTime) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs
            .iter()
            .map(|r| r.game_loss_window(from, to))
            .sum::<f64>()
            / self.runs.len() as f64
    }

    /// Telemetry counters merged across all runs of the condition.
    pub fn telemetry(&self) -> Counters {
        let mut c = Counters::default();
        for r in &self.runs {
            c.merge(&r.telemetry);
        }
        c
    }

    /// Cross-run mean ± 95% CI of the game bitrate for each time bin
    /// (Figure 2's plotted series).
    pub fn game_series_ci(&self) -> Vec<(f64, f64, f64)> {
        let n_bins = self
            .runs
            .iter()
            .map(|r| r.game_bins_mbps.len())
            .max()
            .unwrap_or(0);
        let w = self
            .runs
            .first()
            .map(|r| r.bin_width.as_secs_f64())
            .unwrap_or(0.5);
        (0..n_bins)
            .map(|i| {
                let vals: Vec<f64> = self
                    .runs
                    .iter()
                    .map(|r| r.game_bins_mbps.get(i).copied().unwrap_or(0.0))
                    .collect();
                let (mean, ci) = gsrepro_simcore::stats::mean_ci95(&vals);
                ((i as f64 + 0.5) * w, mean, ci)
            })
            .collect()
    }
}

/// Where and how per-run telemetry traces are exported.
#[derive(Clone, Debug)]
pub struct TraceSpec {
    /// Directory receiving one `<label>-i<iter>.csv` and `.jsonl` per run.
    pub dir: PathBuf,
    /// Recorder configuration (ring capacity, sampling interval).
    pub config: TelemetryConfig,
}

impl TraceSpec {
    /// Trace into `dir` with the default recorder configuration.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TraceSpec {
            dir: dir.into(),
            config: TelemetryConfig::default(),
        }
    }
}

/// Run a single iteration of a condition to completion.
pub fn run_condition(cond: &Condition, iter: u32) -> RunResult {
    run_condition_traced(cond, iter, None)
}

/// [`run_condition`] with optional flight-recorder tracing. The recorder
/// only observes — results are bit-identical to an untraced run — and the
/// per-flow rings are flushed to `<trace.dir>/<label>-i<iter>.{csv,jsonl}`
/// before returning.
pub fn run_condition_traced(cond: &Condition, iter: u32, trace: Option<&TraceSpec>) -> RunResult {
    run_condition_full(cond, iter, trace, false)
}

/// [`run_condition_traced`], optionally with runtime invariant oracles.
/// With `checks` on, the network audits packet/token conservation, queue
/// bounds and telemetry agreement throughout the run, and the runner adds
/// a testbed-level oracle on top: every encoder rate the streaming server
/// ever targeted must lie within the system profile's advertised band. A
/// violated oracle panics with a structured report; checked runs are
/// otherwise bit-identical to unchecked ones.
pub fn run_condition_full(
    cond: &Condition,
    iter: u32,
    trace: Option<&TraceSpec>,
    checks: bool,
) -> RunResult {
    run_condition_with(cond, iter, trace, checks, |view| view.to_result())
}

/// Borrowed view over a finished run: everything a metrics consumer needs,
/// still inside the live testbed, with **no per-bin vector cloned**.
///
/// [`run_condition_full`] materializes a full [`RunResult`] from it (and
/// pays the clones); the fleet campaign layer ([`crate::campaign`])
/// instead reduces the view to a handful of per-session scalars and lets
/// the whole simulation drop — that is what keeps a 100k-session sweep
/// memory-flat.
pub struct RunView<'a> {
    /// The condition that ran.
    pub cond: &'a Condition,
    /// Iteration index (selects the seed).
    pub iter: u32,
    tb: &'a topology::Testbed,
    /// Engine events handled by this run (deterministic per seed).
    pub events_processed: u64,
    /// Events scheduled in the past and clamped to "now".
    pub past_clamps: u64,
    /// Scheduler occupancy counters.
    pub sched: SchedStats,
    /// Invariant-oracle evaluations performed (0 when checks are off).
    pub checks_performed: u64,
    /// Telemetry counters (all zero when tracing is off).
    pub telemetry: Counters,
    /// Wall-clock seconds the simulation took (not deterministic).
    pub wall_secs: f64,
}

impl RunView<'_> {
    /// Monitor statistics of the game media flow (borrow; includes the
    /// delivered/sent/dropped [`TimeBinned`] series).
    pub fn game_stats(&self) -> &FlowStats {
        self.tb.sim.net.monitor().stats(self.tb.game_flow)
    }

    /// Monitor statistics of the competing TCP flow, when one ran.
    pub fn iperf_stats(&self) -> Option<&FlowStats> {
        self.tb
            .iperf_flow
            .map(|f| self.tb.sim.net.monitor().stats(f))
    }

    /// The ping agent (borrow; RTT samples in milliseconds).
    pub fn ping(&self) -> &PingAgent {
        self.tb.sim.net.agent(self.tb.ping)
    }

    /// The client's displayed-frames-per-second bins (borrow).
    pub fn fps_bins(&self) -> &TimeBinned {
        let client: &StreamClient = self.tb.sim.net.agent(self.tb.client);
        client.fps_bins()
    }

    /// The server's encoder target-rate trace, Mb/s (borrow).
    pub fn encoder_trace(&self) -> &Samples {
        let server: &StreamServer = self.tb.sim.net.agent(self.tb.server);
        server.rate_trace()
    }

    /// `(retransmissions, delivered bytes)` of the competing TCP sender
    /// (zeros for solo runs).
    pub fn tcp_counters(&self) -> (u64, u64) {
        match self.tb.tcp_sender {
            Some(id) => {
                let s: &TcpSender = self.tb.sim.net.agent(id);
                (s.retransmissions(), s.delivered_bytes())
            }
            None => (0, 0),
        }
    }

    /// Materialize the full per-run record (clones every per-bin series).
    pub fn to_result(&self) -> RunResult {
        let game_stats = self.game_stats();
        let bin_width = game_stats.delivered_bins.width();
        let to_mbps = 8.0 / bin_width.as_secs_f64() / 1e6;

        let game_bins_mbps: Vec<f64> = game_stats
            .delivered_bins
            .bins()
            .iter()
            .map(|b| b * to_mbps)
            .collect();
        let game_sent_bins = game_stats.sent_bins.bins().to_vec();
        let game_dropped_bins = game_stats.dropped_bins.bins().to_vec();
        let game_loss_rate = game_stats.loss_rate();

        let iperf_bins_mbps: Vec<f64> = self
            .iperf_stats()
            .map(|s| {
                s.delivered_bins
                    .bins()
                    .iter()
                    .map(|b| b * to_mbps)
                    .collect()
            })
            .unwrap_or_default();

        let rtt: Vec<(f64, f64)> = self.ping().rtt_with_times();
        let fps_bin_width = self.fps_bins().width();
        let fps_bins = self.fps_bins().bins().to_vec();
        let encoder_rate_mean = self.encoder_trace().mean();
        let (tcp_retransmissions, tcp_delivered_bytes) = self.tcp_counters();
        let (tcp_ce_marked, tcp_queue_drops) = self
            .iperf_stats()
            .map(|s| (s.ce_marked_pkts, s.queue_drop_pkts))
            .unwrap_or((0, 0));

        RunResult {
            label: self.cond.label(),
            iter: self.iter,
            bin_width,
            game_bins_mbps,
            iperf_bins_mbps,
            rtt,
            fps_bin_width,
            fps_bins,
            game_sent_bins,
            game_dropped_bins,
            game_loss_rate,
            tcp_retransmissions,
            tcp_delivered_bytes,
            tcp_ce_marked,
            tcp_queue_drops,
            encoder_rate_mean,
            events_processed: self.events_processed,
            past_clamps: self.past_clamps,
            sched: self.sched,
            checks_performed: self.checks_performed,
            telemetry: self.telemetry,
            wall_secs: self.wall_secs,
        }
    }
}

/// Run one iteration of a condition and reduce it through `sink` while the
/// testbed is still alive. The sink receives a [`RunView`] borrowing the
/// simulation state; whatever it returns is the run's only retained
/// output. This is the primitive both [`run_condition_full`] (sink =
/// "clone everything into a [`RunResult`]") and the fleet campaign layer
/// (sink = "stream a few scalars into bounded sketches") build on.
pub fn run_condition_with<R>(
    cond: &Condition,
    iter: u32,
    trace: Option<&TraceSpec>,
    checks: bool,
    sink: impl FnOnce(&RunView) -> R,
) -> R {
    // Unguarded runs cannot fail structurally: no chaos schedule to
    // reject, no watchdog to trip.
    match run_condition_core(cond, iter, trace, checks, None, sink) {
        Ok(out) => out,
        Err(e) => unreachable!("unguarded run returned {e}"),
    }
}

/// [`run_condition_with`] hardened for adversarial trials: applies an
/// extra chaos [`ScenarioSpec`] on top of the condition's own scenario,
/// and runs the whole simulation under a [`Watchdog`]. Invalid schedules
/// and runaway or livelocked runs come back as structured
/// [`SimError`]s instead of panicking or hanging the fleet; invariant-
/// oracle violations still panic (the campaign layer catches and
/// classifies those).
pub fn run_condition_guarded<R>(
    cond: &Condition,
    iter: u32,
    checks: bool,
    chaos: &ScenarioSpec,
    dog: &Watchdog,
    sink: impl FnOnce(&RunView) -> R,
) -> Result<R, SimError> {
    run_condition_core(cond, iter, None, checks, Some((chaos, dog)), sink)
}

/// Shared core of the guarded and unguarded run paths. With `guard`
/// `None` this is byte-for-byte the old unguarded loop (bit-identity
/// pinned by the determinism matrix tests).
fn run_condition_core<R>(
    cond: &Condition,
    iter: u32,
    trace: Option<&TraceSpec>,
    checks: bool,
    guard: Option<(&ScenarioSpec, &Watchdog)>,
    sink: impl FnOnce(&RunView) -> R,
) -> Result<R, SimError> {
    let started = std::time::Instant::now();
    let mut tb = topology::build_full(cond, iter, trace.map(|t| t.config), checks);
    // Run slightly past the end so the final bins fill.
    let until = cond.timeline.end + SimDuration::from_secs(1);
    match guard {
        None => tb.sim.run_until(until),
        Some((chaos, dog)) => {
            tb.sim.try_apply_scenario(chaos)?;
            tb.sim.run_until_guarded(until, dog)?;
        }
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let events_processed = tb.sim.events_processed();
    let past_clamps = tb.sim.past_clamps();
    let sched = tb.sim.sched_stats();
    let checks_performed = tb.sim.net.checks().performed();

    // Stamp `past_clamps` into the recorder's counters *before* the sink
    // takes its immutable borrows; the export files are written after the
    // sink returns, so the recorder never races a read.
    let mut telemetry = Counters::default();
    if trace.is_some() {
        if let Some(tel) = tb.sim.net.telemetry_mut().telemetry_mut() {
            tel.counters_mut().past_clamps = past_clamps;
            telemetry = tel.counters();
        }
    }

    if checks {
        // Controller-sanity oracle: whatever the rate controller did under
        // congestion, every target it set must stay inside the profile's
        // advertised band (the clamp every controller is supposed to
        // apply). Small epsilon for the Mb/s float conversion.
        let server: &StreamServer = tb.sim.net.agent(tb.server);
        let profile = cond.system.profile();
        let lo = profile.min_rate.as_mbps();
        let hi = profile.max_rate.as_mbps();
        let now = tb.sim.now();
        for &mbps in server.rate_trace().values() {
            if mbps < lo - 1e-6 || mbps > hi + 1e-6 {
                gsrepro_simcore::checks::fail(
                    now,
                    "encoder-bounds",
                    format!("{} encoder", cond.system.label()),
                    format!("rate {mbps:.3} Mb/s outside profile band [{lo:.3}, {hi:.3}] Mb/s"),
                );
            }
        }
    }

    let out = {
        let view = RunView {
            cond,
            iter,
            tb: &tb,
            events_processed,
            past_clamps,
            sched,
            checks_performed,
            telemetry,
            wall_secs,
        };
        sink(&view)
    };

    if let Some(spec) = trace {
        if let Some(tel) = tb.sim.net.telemetry_mut().telemetry_mut() {
            let stem = format!("{}-i{}", cond.label(), iter);
            let csv_path = spec.dir.join(format!("{stem}.csv"));
            std::fs::write(&csv_path, tel.to_csv())
                .unwrap_or_else(|e| panic!("writing trace {}: {e}", csv_path.display()));
            let jsonl_path = spec.dir.join(format!("{stem}.jsonl"));
            std::fs::write(&jsonl_path, tel.to_jsonl())
                .unwrap_or_else(|e| panic!("writing trace {}: {e}", jsonl_path.display()));
        }
    }
    Ok(out)
}

/// Aggregate engine-throughput numbers for one grid of runs.
#[derive(Clone, Copy, Debug)]
pub struct GridPerf {
    /// Total (condition × iteration) runs.
    pub runs: usize,
    /// Engine events handled across all runs.
    pub events_processed: u64,
    /// Sum of per-run wall times (CPU-seconds of simulation, roughly).
    pub run_wall_secs: f64,
    /// Wall-clock seconds for the whole grid (less than `run_wall_secs`
    /// when runs execute in parallel).
    pub grid_wall_secs: f64,
}

impl GridPerf {
    /// Engine events per wall second, summed over workers.
    pub fn events_per_sec(&self) -> f64 {
        if self.run_wall_secs > 0.0 {
            self.events_processed as f64 / self.run_wall_secs
        } else {
            0.0
        }
    }
}

/// Sum the perf counters of already-collected results. `grid_wall_secs` is
/// taken by the caller; [`run_many`] fills it with the grid's elapsed time.
pub fn grid_perf(results: &[ConditionResult], grid_wall_secs: f64) -> GridPerf {
    let mut runs = 0;
    let mut events = 0u64;
    let mut wall = 0.0;
    for cr in results {
        for r in &cr.runs {
            runs += 1;
            events += r.events_processed;
            wall += r.wall_secs;
        }
    }
    GridPerf {
        runs,
        events_processed: events,
        run_wall_secs: wall,
        grid_wall_secs,
    }
}

/// Run `iterations` seeded runs of every condition, using up to `threads`
/// OS threads. Results preserve the input condition order. After the grid
/// completes, an aggregate throughput line (total events, events/sec, wall
/// time) is logged to stderr; use [`grid_perf`] to recompute it from the
/// returned results.
pub fn run_many(conditions: &[Condition], iterations: u32, threads: usize) -> Vec<ConditionResult> {
    run_many_traced(conditions, iterations, threads, None)
}

/// [`run_many`] with optional flight-recorder tracing: every run exports
/// its per-flow trace into `trace.dir` (created if missing).
pub fn run_many_traced(
    conditions: &[Condition],
    iterations: u32,
    threads: usize,
    trace: Option<&TraceSpec>,
) -> Vec<ConditionResult> {
    run_many_full(conditions, iterations, threads, trace, false)
}

/// [`run_many_traced`], optionally with runtime invariant oracles enabled
/// in every run (see [`run_condition_full`]).
///
/// A run that panics (an oracle violation, an internal bug) no longer
/// takes the whole grid down opaquely: every job runs under
/// [`run_jobs`]'s panic isolation, the remaining jobs finish, and the
/// final panic names each failing `(condition, iteration)` pair.
pub fn run_many_full(
    conditions: &[Condition],
    iterations: u32,
    threads: usize,
    trace: Option<&TraceSpec>,
    checks: bool,
) -> Vec<ConditionResult> {
    if let Some(spec) = trace {
        std::fs::create_dir_all(&spec.dir)
            .unwrap_or_else(|e| panic!("creating trace dir {}: {e}", spec.dir.display()));
    }
    let grid_started = std::time::Instant::now();
    let jobs: Vec<(usize, u32)> = (0..conditions.len())
        .flat_map(|c| (0..iterations).map(move |i| (c, i)))
        .collect();

    let runs = run_jobs(
        jobs.len(),
        threads,
        |j| {
            let (c, i) = jobs[j];
            run_condition_full(&conditions[c], i, trace, checks)
        },
        |j| {
            let (c, i) = jobs[j];
            format!("{} iter {i}", conditions[c].label())
        },
    )
    .unwrap_or_else(|failures| {
        let shown: Vec<String> = failures
            .iter()
            .take(5)
            .map(|f| format!("{}: {}", f.label, f.message))
            .collect();
        panic!(
            "grid failed: {} of {} runs panicked — {}{}",
            failures.len(),
            jobs.len(),
            shown.join("; "),
            if failures.len() > 5 { "; …" } else { "" },
        )
    });

    // `jobs` is condition-major with the iteration innermost and
    // `run_jobs` preserves job order, so results regroup by simple takes.
    let mut it = runs.into_iter();
    let out: Vec<ConditionResult> = conditions
        .iter()
        .map(|cond| ConditionResult {
            condition: cond.clone(),
            runs: it.by_ref().take(iterations as usize).collect(),
        })
        .collect();
    let perf = grid_perf(&out, grid_started.elapsed().as_secs_f64());
    if grid_log_enabled() {
        eprintln!(
            "grid: {} runs, {} events in {:.2} s wall ({:.2}M events/s)",
            perf.runs,
            perf.events_processed,
            perf.grid_wall_secs,
            perf.events_per_sec() / 1e6,
        );
    }
    out
}

/// Whether [`run_many_full`] logs its aggregate throughput line. Off by
/// default so `cargo test -q` output and fleet campaigns (thousands of
/// grids) stay clean; the bench binaries switch it on.
static GRID_LOG: AtomicBool = AtomicBool::new(false);

/// Enable or disable the per-grid stderr throughput line.
pub fn set_grid_log(on: bool) {
    GRID_LOG.store(on, Ordering::Relaxed);
}

fn grid_log_enabled() -> bool {
    GRID_LOG.load(Ordering::Relaxed)
}

/// One job that panicked inside [`run_jobs`].
#[derive(Clone, Debug)]
pub struct JobFailure {
    /// Job index in submission order.
    pub index: usize,
    /// Human-readable job description (e.g. `stadia-cubic-b25-q2 iter 3`).
    pub label: String,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (job {}): {}", self.label, self.index, self.message)
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute `n` independent jobs across up to `threads` OS threads,
/// pulling from a shared queue (idle workers steal whatever job is next).
/// Results come back in job order.
///
/// Each job runs under `catch_unwind`: one panicking job no longer
/// poisons a shared mutex and kills every other worker with an opaque
/// `expect` — the rest of the queue drains normally and the error lists
/// every failure with its `describe(index)` label. The runner and the
/// fleet campaign engine both schedule through this.
pub fn run_jobs<T, R, D>(
    n: usize,
    threads: usize,
    run: R,
    describe: D,
) -> Result<Vec<T>, Vec<JobFailure>>
where
    T: Send,
    R: Fn(usize) -> T + Sync,
    D: Fn(usize) -> String + Sync,
{
    let next = AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<Result<T, JobFailure>>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();

    let workers = threads.max(1).min(n.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= n {
                    break;
                }
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(j)))
                    .map_err(|p| JobFailure {
                        index: j,
                        label: describe(j),
                        message: panic_message(p.as_ref()),
                    });
                // Storing a finished value cannot panic, so the mutex can
                // only be "poisoned" by a concurrent describe() failure;
                // recover the guard either way.
                *slots[j].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
            });
        }
    });

    let mut ok = Vec::with_capacity(n);
    let mut failures = Vec::new();
    for slot in slots {
        let outcome = slot
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .expect("every claimed job stores an outcome");
        match outcome {
            Ok(v) => ok.push(v),
            Err(f) => failures.push(f),
        }
    }
    if failures.is_empty() {
        Ok(ok)
    } else {
        Err(failures)
    }
}

/// Default thread count: leave one core for the OS.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Condition, Timeline};
    use gsrepro_gamestream::SystemKind;
    use gsrepro_tcp::CcaKind;

    fn quick_cond() -> Condition {
        Condition::new(SystemKind::Luna, Some(CcaKind::Cubic), 15, 2.0)
            .with_timeline(Timeline::scaled(0.06)) // ~32 s runs
    }

    #[test]
    fn run_is_deterministic() {
        let cond = quick_cond();
        let a = run_condition(&cond, 0);
        let b = run_condition(&cond, 0);
        assert_eq!(a.game_bins_mbps, b.game_bins_mbps);
        assert_eq!(a.iperf_bins_mbps, b.iperf_bins_mbps);
        assert_eq!(a.rtt, b.rtt);
    }

    #[test]
    fn iterations_differ() {
        let cond = quick_cond();
        let a = run_condition(&cond, 0);
        let b = run_condition(&cond, 1);
        assert_ne!(a.game_bins_mbps, b.game_bins_mbps);
    }

    #[test]
    fn parallel_matches_serial() {
        let cond = quick_cond();
        let serial = run_condition(&cond, 0);
        let many = run_many(&[cond], 2, 4);
        assert_eq!(many.len(), 1);
        assert_eq!(many[0].runs.len(), 2);
        assert_eq!(many[0].runs[0].game_bins_mbps, serial.game_bins_mbps);
    }

    #[test]
    fn run_jobs_preserves_order_and_parallelism() {
        let out = run_jobs(8, 4, |j| j * 10, |j| format!("job-{j}")).expect("no failures");
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        // Degenerate cases.
        assert_eq!(run_jobs(0, 4, |j| j, |_| String::new()).unwrap(), vec![]);
    }

    #[test]
    fn run_jobs_reports_failing_jobs_and_finishes_the_rest() {
        // Pre-fix, one panicking run poisoned the shared results mutex and
        // every other worker died on "runner mutex poisoned" with no hint
        // of which (condition, iteration) failed. Now: the panicking jobs
        // are named, and all healthy jobs still complete.
        let err = run_jobs(
            6,
            2,
            |j| {
                if j == 2 || j == 5 {
                    panic!("oracle violated in job {j}");
                }
                j
            },
            |j| format!("luna-cubic-b25-q2 iter {j}"),
        )
        .expect_err("two jobs panic");
        assert_eq!(err.len(), 2);
        assert_eq!(err[0].index, 2);
        assert_eq!(err[0].label, "luna-cubic-b25-q2 iter 2");
        assert!(err[0].message.contains("oracle violated in job 2"));
        assert_eq!(err[1].index, 5);
        assert!(format!("{}", err[1]).contains("iter 5"));
    }

    #[test]
    fn run_view_matches_run_result() {
        // The sink API must observe exactly what the materialized
        // RunResult records — same borrowed series, no perturbation.
        let cond = quick_cond();
        let full = run_condition(&cond, 0);
        let (goodput_bins, rtt_mean, fps_sum, encoder_mean, events) =
            run_condition_with(&cond, 0, None, false, |v| {
                (
                    v.game_stats().delivered_bins.len(),
                    v.ping().rtt_samples().mean(),
                    v.fps_bins().bins().iter().sum::<f64>(),
                    v.encoder_trace().mean(),
                    v.events_processed,
                )
            });
        assert_eq!(goodput_bins, full.game_bins_mbps.len());
        let full_rtt_mean = full.rtt.iter().map(|&(_, v)| v).sum::<f64>() / full.rtt.len() as f64;
        assert!((rtt_mean - full_rtt_mean).abs() < 1e-9);
        assert_eq!(fps_sum, full.fps_bins.iter().sum::<f64>());
        assert_eq!(encoder_mean, full.encoder_rate_mean);
        assert_eq!(events, full.events_processed);
    }

    #[test]
    fn fps_window_respects_bin_width() {
        let mut r = run_condition(&quick_cond(), 0);
        assert!(r.fps_bin_width > SimDuration::ZERO);
        // Re-bin by hand: with 500 ms bins, [0, 2 s) must select exactly 4.
        r.fps_bins = vec![60.0; 10];
        r.fps_bin_width = SimDuration::from_millis(500);
        let s = r.fps_window(SimTime::ZERO, SimTime::from_secs(2));
        assert_eq!(s.len(), 4);
        assert_eq!(s.mean(), 60.0);
    }

    #[test]
    fn tracing_does_not_perturb_the_simulation() {
        use gsrepro_simcore::telemetry::{parse_csv, parse_jsonl, validate_events, EventKind};

        let cond = quick_cond();
        let plain = run_condition(&cond, 0);

        let dir = std::env::temp_dir().join(format!("gsrepro-trace-test-{}", std::process::id()));
        let spec = TraceSpec::new(&dir);
        let traced = {
            let out = run_many_traced(std::slice::from_ref(&cond), 1, 1, Some(&spec));
            out.into_iter().next().unwrap().runs.remove(0)
        };

        // The recorder is a pure observer: every deterministic output of
        // the run must be bit-identical with tracing on.
        assert_eq!(plain.game_bins_mbps, traced.game_bins_mbps);
        assert_eq!(plain.iperf_bins_mbps, traced.iperf_bins_mbps);
        assert_eq!(plain.rtt, traced.rtt);
        assert_eq!(plain.fps_bins, traced.fps_bins);
        assert_eq!(plain.events_processed, traced.events_processed);
        assert!(traced.telemetry.recorded > 0, "traced run recorded nothing");

        // And the exported files round-trip through both codecs.
        let stem = dir.join(format!("{}-i0", cond.label()));
        let csv = std::fs::read_to_string(stem.with_extension("csv")).unwrap();
        let from_csv = parse_csv(&csv).unwrap();
        validate_events(&from_csv).unwrap();
        let jsonl = std::fs::read_to_string(stem.with_extension("jsonl")).unwrap();
        let from_jsonl = parse_jsonl(&jsonl).unwrap();
        assert_eq!(from_csv, from_jsonl);
        assert!(from_csv.iter().any(|e| e.kind == EventKind::Cwnd));
        assert!(from_csv.iter().any(|e| e.kind == EventKind::EncoderRate));
        assert!(from_csv.iter().any(|e| e.kind == EventKind::QueueDepth));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tracing_does_not_perturb_an_ecn_marked_run() {
        use crate::config::Aqm;
        use gsrepro_simcore::telemetry::{parse_jsonl, EventKind};

        // BBRv2 over CoDel: an ECN-capable sender on a marking AQM, so
        // the run exercises the CE/ECE signal path end to end while the
        // recorder watches.
        let cond = Condition::new(SystemKind::Luna, Some(CcaKind::Bbr2), 15, 2.0)
            .with_timeline(Timeline::scaled(0.06))
            .with_aqm(Aqm::CoDel);
        let plain = run_condition(&cond, 0);
        assert!(plain.tcp_ce_marked > 0, "run produced no CE marks");

        let dir = std::env::temp_dir().join(format!("gsrepro-ecn-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = TraceSpec::new(&dir);
        let traced = run_condition_traced(&cond, 0, Some(&spec));

        // The recorder observes marks; it must not change them (or any
        // other deterministic output of the run).
        assert_eq!(plain.game_bins_mbps, traced.game_bins_mbps);
        assert_eq!(plain.iperf_bins_mbps, traced.iperf_bins_mbps);
        assert_eq!(plain.rtt, traced.rtt);
        assert_eq!(plain.fps_bins, traced.fps_bins);
        assert_eq!(plain.tcp_ce_marked, traced.tcp_ce_marked);
        assert_eq!(plain.tcp_queue_drops, traced.tcp_queue_drops);
        assert_eq!(plain.events_processed, traced.events_processed);

        // Telemetry's mark counter agrees with the monitor-derived field,
        // and every mark made it into the exported trace.
        assert_eq!(traced.telemetry.ecn_marks, traced.tcp_ce_marked);
        let jsonl =
            std::fs::read_to_string(dir.join(format!("{}-i0.jsonl", cond.label()))).unwrap();
        let marks = parse_jsonl(&jsonl)
            .unwrap()
            .iter()
            .filter(|e| e.kind == EventKind::EcnMark)
            .count() as u64;
        assert_eq!(
            marks, traced.tcp_ce_marked,
            "trace must carry every CE mark"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scenario_run_is_deterministic_and_trace_transparent() {
        use crate::config::PathScenario;
        use gsrepro_simcore::telemetry::{parse_jsonl, EventKind};
        use gsrepro_simcore::BitRate;

        // Solo Stadia on a 25 Mb/s path that steps down to 10 Mb/s across
        // the middle of the run, then restores.
        let tl = Timeline::scaled(0.12); // ~65 s runs
        let frac = |f: f64| SimTime::from_millis((tl.end.as_secs_f64() * f * 1000.0) as u64);
        let cond = Condition::new(SystemKind::Stadia, None, 25, 2.0)
            .with_timeline(tl)
            .with_scenario(PathScenario::RateStep {
                rate: BitRate::from_mbps(10),
                from: frac(0.35),
                to: frac(0.70),
            });

        // Deterministic: two untraced runs are bit-identical.
        let plain = run_condition(&cond, 0);
        let again = run_condition(&cond, 0);
        assert_eq!(plain.game_bins_mbps, again.game_bins_mbps);
        assert_eq!(plain.rtt, again.rtt);
        assert_eq!(plain.events_processed, again.events_processed);

        // Trace-transparent: scenario steps ride the ordinary event queue,
        // so the traced run is bit-identical too.
        let dir =
            std::env::temp_dir().join(format!("gsrepro-scenario-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = TraceSpec::new(&dir);
        let traced = run_condition_traced(&cond, 0, Some(&spec));
        assert_eq!(plain.game_bins_mbps, traced.game_bins_mbps);
        assert_eq!(plain.rtt, traced.rtt);
        assert_eq!(plain.events_processed, traced.events_processed);

        // Both schedule applications were recorded in the trace.
        assert_eq!(traced.telemetry.scenario_steps, 2);
        // Scenario labels contain dots (fractional seconds), so build the
        // full file name rather than going through `with_extension`.
        let jsonl =
            std::fs::read_to_string(dir.join(format!("{}-i0.jsonl", cond.label()))).unwrap();
        let events = parse_jsonl(&jsonl).unwrap();
        let steps = events
            .iter()
            .filter(|e| e.kind == EventKind::LinkScenario)
            .count();
        assert_eq!(steps, 2, "trace must carry both scenario steps");
        std::fs::remove_dir_all(&dir).ok();

        // And the stream actually responded: bitrate near the 25 Mb/s
        // capacity before the step, pinned under 10 Mb/s while constrained.
        let pre = plain.game_window(frac(0.15), frac(0.35)).mean();
        let during = plain.game_window(frac(0.55), frac(0.70)).mean();
        assert!(pre > 15.0, "pre-step bitrate {pre}");
        assert!(during < 11.5, "constrained bitrate {during}");
        assert!(
            during < pre - 5.0,
            "rate step must bite: pre {pre} during {during}"
        );
    }

    #[test]
    fn window_helpers() {
        let cond = quick_cond();
        let r = run_condition(&cond, 0);
        let t = cond.timeline;
        // The game streams before the competitor arrives.
        let orig = r.game_window(t.original_window.0, t.original_window.1);
        assert!(orig.mean() > 5.0, "pre-competitor bitrate {}", orig.mean());
        // Loss accounting is sane.
        let loss = r.game_loss_window(t.fairness_window.0, t.fairness_window.1);
        assert!((0.0..=1.0).contains(&loss));
        // RTT samples exist in the window.
        assert!(!r
            .rtt_window(t.original_window.0, t.original_window.1)
            .is_empty());
    }
}
