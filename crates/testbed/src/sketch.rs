//! Bounded online metric aggregates for fleet campaigns.
//!
//! A 100k-session sweep cannot retain a [`crate::runner::RunResult`] per
//! session; instead every finished run streams a handful of scalars into
//! one [`MetricSketch`] per (condition, metric). A sketch is fixed-size —
//! a log-linear histogram (HDR-histogram style: 32 sub-buckets per power
//! of two, ≤ ~1.6% relative quantile error) plus an exact
//! [`Welford`] mean/variance and exact min/max — so campaign memory is
//! flat in the session count.
//!
//! Determinism contract: sketches are filled **per shard** in iteration
//! order and merged in **shard-index order** (see [`crate::campaign`]),
//! and [`MetricSketch::serialize`] stores every float as its IEEE-754 bit
//! pattern. A checkpointed-and-resumed campaign therefore reproduces the
//! uninterrupted campaign's aggregates bit-identically, as does a 1-thread
//! vs N-thread run.

use gsrepro_simcore::stats::Welford;

/// Sub-bucket resolution: 2^5 = 32 buckets per power of two.
const SUB_BITS: u32 = 5;
const SUBS: usize = 1 << SUB_BITS;
/// Smallest resolved magnitude: 2^MIN_EXP (≈ 9.5e-7). Smaller positive
/// values land in the first bucket.
const MIN_EXP: i32 = -20;
/// One past the largest resolved exponent: values ≥ 2^MAX_EXP (≈ 1.1e12)
/// clamp into the last bucket.
const MAX_EXP: i32 = 40;
const OCTAVES: usize = (MAX_EXP - MIN_EXP) as usize;
const BUCKETS: usize = OCTAVES * SUBS;

/// Streaming distribution sketch: log-linear histogram + exact moments.
#[derive(Clone, Debug)]
pub struct MetricSketch {
    count: u64,
    /// Samples ≤ 0 (settle times clamp at 0; rates/RTTs are positive).
    zeros: u64,
    min: f64,
    max: f64,
    w: Welford,
    buckets: Vec<u64>,
}

impl Default for MetricSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        MetricSketch {
            count: 0,
            zeros: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            w: Welford::new(),
            buckets: vec![0; BUCKETS],
        }
    }

    fn bucket_index(v: f64) -> usize {
        debug_assert!(v > 0.0);
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if exp < MIN_EXP {
            return 0;
        }
        if exp >= MAX_EXP {
            return BUCKETS - 1;
        }
        let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        (exp - MIN_EXP) as usize * SUBS + sub
    }

    /// Lower edge of bucket `idx`.
    fn bucket_lo(idx: usize) -> f64 {
        let exp = MIN_EXP + (idx / SUBS) as i32;
        let frac = (idx % SUBS) as f64 / SUBS as f64;
        (1.0 + frac) * f64::powi(2.0, exp)
    }

    /// Upper edge of bucket `idx`.
    fn bucket_hi(idx: usize) -> f64 {
        if (idx + 1).is_multiple_of(SUBS) {
            f64::powi(2.0, MIN_EXP + (idx / SUBS) as i32 + 1)
        } else {
            Self::bucket_lo(idx + 1)
        }
    }

    /// Record one observation. NaN is ignored (and must not occur in a
    /// deterministic run); values ≤ 0 count in a dedicated zero bucket.
    pub fn add(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.w.add(v);
        if v <= 0.0 {
            self.zeros += 1;
        } else {
            self.buckets[Self::bucket_index(v)] += 1;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sample mean.
    pub fn mean(&self) -> f64 {
        self.w.mean()
    }

    /// Exact sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.w.stddev()
    }

    /// Exact minimum (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) from the histogram, clamped
    /// into the exact `[min, max]` envelope; 0 if empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        if target <= self.zeros {
            // The zero bucket holds everything ≤ 0; report its worst case.
            return self.min.min(0.0).max(self.min);
        }
        let mut seen = self.zeros;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= target {
                let mid = (Self::bucket_lo(i) + Self::bucket_hi(i)) / 2.0;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge `other` into `self`. Bucket counts add exactly; the Welford
    /// merge is floating-point order-sensitive, so callers must merge in a
    /// fixed order (the campaign merges shards by ascending shard index).
    pub fn merge(&mut self, other: &MetricSketch) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.zeros += other.zeros;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.w.merge(&other.w);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Exact textual serialization (single line, no spaces inside fields):
    /// floats as hex bit patterns, histogram as sparse `idx:count` pairs.
    /// `deserialize` round-trips bit-identically — the campaign manifest
    /// and the aggregate digest are built from this.
    pub fn serialize(&self) -> String {
        let (wn, wmean, wm2) = self.w.parts();
        let mut s = format!(
            "c={},z={},min={:016x},max={:016x},wn={},wm={:016x},wv={:016x}",
            self.count,
            self.zeros,
            self.min.to_bits(),
            self.max.to_bits(),
            wn,
            wmean.to_bits(),
            wm2.to_bits(),
        );
        for (i, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                s.push_str(&format!(",{i}:{c}"));
            }
        }
        s
    }

    /// Parse [`MetricSketch::serialize`] output.
    pub fn deserialize(s: &str) -> Result<Self, String> {
        let mut out = MetricSketch::new();
        let mut wn = 0u64;
        let mut wmean = 0.0f64;
        let mut wm2 = 0.0f64;
        for field in s.split(',') {
            let (key, val) = field
                .split_once(['=', ':'])
                .ok_or_else(|| format!("malformed sketch field {field:?}"))?;
            let parse_u64 = |v: &str| {
                v.parse::<u64>()
                    .map_err(|e| format!("bad integer {v:?}: {e}"))
            };
            let parse_bits = |v: &str| {
                u64::from_str_radix(v, 16)
                    .map(f64::from_bits)
                    .map_err(|e| format!("bad float bits {v:?}: {e}"))
            };
            match key {
                "c" => out.count = parse_u64(val)?,
                "z" => out.zeros = parse_u64(val)?,
                "min" => out.min = parse_bits(val)?,
                "max" => out.max = parse_bits(val)?,
                "wn" => wn = parse_u64(val)?,
                "wm" => wmean = parse_bits(val)?,
                "wv" => wm2 = parse_bits(val)?,
                idx => {
                    let i: usize = idx
                        .parse()
                        .map_err(|e| format!("bad bucket index {idx:?}: {e}"))?;
                    if i >= BUCKETS {
                        return Err(format!("bucket index {i} out of range"));
                    }
                    out.buckets[i] = parse_u64(val)?;
                }
            }
        }
        out.w = Welford::from_parts(wn, wmean, wm2);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_is_all_zero() {
        let s = MetricSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let mut s = MetricSketch::new();
        for i in 1..=10_000 {
            s.add(i as f64 / 100.0); // 0.01 .. 100.0
        }
        assert_eq!(s.count(), 10_000);
        assert!((s.mean() - 50.005).abs() < 1e-9, "mean is exact");
        // Histogram quantiles within the sketch's relative error.
        for (q, expect) in [(0.5, 50.0), (0.95, 95.0), (0.99, 99.0)] {
            let got = s.quantile(q);
            assert!(
                (got - expect).abs() / expect < 0.03,
                "q{q}: got {got}, expect {expect}"
            );
        }
        assert_eq!(s.min(), 0.01);
        assert_eq!(s.max(), 100.0);
        assert_eq!(s.quantile(1.0), 100.0);
    }

    #[test]
    fn zero_and_negative_samples_are_counted() {
        let mut s = MetricSketch::new();
        s.add(0.0);
        s.add(-1.0);
        s.add(2.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), -1.0);
        let q = s.quantile(0.1);
        assert!(q <= 0.0, "low quantile stays in the zero bucket: {q}");
    }

    #[test]
    fn extreme_values_clamp_into_edge_buckets() {
        let mut s = MetricSketch::new();
        s.add(1e-12);
        s.add(1e300);
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), 1e300);
        // Quantiles stay inside the exact envelope even though the
        // histogram buckets saturated.
        assert!(s.quantile(0.99) <= 1e300);
    }

    #[test]
    fn serialization_round_trips_bit_identically() {
        let mut s = MetricSketch::new();
        for i in 0..1000 {
            s.add((i as f64).sqrt() * 0.731 + 0.001);
        }
        s.add(0.0);
        let text = s.serialize();
        let back = MetricSketch::deserialize(&text).expect("parses");
        assert_eq!(back.serialize(), text, "round trip is exact");
        assert_eq!(back.mean().to_bits(), s.mean().to_bits());
        assert_eq!(back.stddev().to_bits(), s.stddev().to_bits());
        assert_eq!(back.quantile(0.95).to_bits(), s.quantile(0.95).to_bits());
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(MetricSketch::deserialize("nonsense").is_err());
        assert!(MetricSketch::deserialize("c=1,z=0,9999999:4").is_err());
    }

    #[test]
    fn sequential_equals_merged_in_fixed_order() {
        // Shard-and-merge must reproduce the sequential fill exactly when
        // shards cover contiguous ranges and merge in shard order.
        let vals: Vec<f64> = (0..600).map(|i| (i % 97) as f64 * 0.37 + 0.2).collect();
        let mut seq = MetricSketch::new();
        for &v in &vals {
            seq.add(v);
        }
        let mut shards = Vec::new();
        for chunk in vals.chunks(100) {
            let mut s = MetricSketch::new();
            for &v in chunk {
                s.add(v);
            }
            shards.push(s);
        }
        let mut merged = MetricSketch::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.count(), seq.count());
        assert_eq!(merged.serialize(), {
            // Histogram and min/max are order-independent; the Welford
            // moments only match to float tolerance under different
            // association, so compare them separately.
            let mut seq2 = seq.clone();
            seq2.w = merged.w.clone();
            seq2.serialize()
        });
        assert!((merged.mean() - seq.mean()).abs() < 1e-9);
        // But two *identical* merge sequences are bit-identical — the
        // determinism property the campaign relies on.
        let mut merged2 = MetricSketch::new();
        for s in &shards {
            merged2.merge(s);
        }
        assert_eq!(merged.serialize(), merged2.serialize());
    }
}
