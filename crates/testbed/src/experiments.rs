//! One entry point per table and figure of the paper.
//!
//! Each function runs (or reuses) the relevant condition grid and reduces
//! it to the paper's artifact. The returned structs carry the numbers; the
//! `Display`/`csv` methods render them for terminals and plotting scripts.
//!
//! | paper artifact | function | grid |
//! |---|---|---|
//! | Table 1 (unconstrained bitrates) | [`table1`] | [`Grid::table1`] |
//! | Figure 2 (bitrate vs time, B25) | [`figure2`] | [`Grid::figure2`] |
//! | Figure 3 (fairness heatmaps) | [`figure3`] | full grid |
//! | Figure 4 (adaptiveness vs fairness) | [`figure4`] | full grid |
//! | Table 3 (RTT, solo) | [`table3`] | solo grid |
//! | Table 4 (RTT, competing) | [`table4`] | full grid |
//! | Table 5 (frame rate, competing) | [`table5`] | full grid |
//! | Tech-report loss tables | [`loss_tables`] | solo + full grid |

use std::fmt;

use gsrepro_gamestream::SystemKind;
use gsrepro_simcore::stats::mean_ci95;
use gsrepro_tcp::CcaKind;

use crate::config::{Aqm, Grid, Timeline, CAPACITIES_MBPS, CCAS, QUEUE_MULTS};
use crate::metrics;
use crate::report::{heat_glyph, mean_sd, mean_sd2, Csv, TextTable};
use crate::runner::{run_many_full, ConditionResult, TraceSpec};

/// How much work to spend: iteration count, parallelism, timeline.
#[derive(Clone, Debug)]
pub struct ExperimentOpts {
    /// Runs per condition (the paper uses 15).
    pub iterations: u32,
    /// Worker threads.
    pub threads: usize,
    /// Timeline (full paper timeline, or scaled for smoke tests).
    pub timeline: Timeline,
    /// Export per-run flight-recorder traces (`--trace <dir>`).
    pub trace: Option<TraceSpec>,
    /// Run with invariant oracles enabled (`--checks`): every run audits
    /// packet/token conservation, queue bounds and encoder-rate sanity,
    /// panicking with a structured report on the first violation.
    pub checks: bool,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            iterations: 15,
            threads: crate::runner::default_threads(),
            timeline: Timeline::paper(),
            trace: None,
            checks: false,
        }
    }
}

impl ExperimentOpts {
    /// A cheap configuration for CI smoke tests: short timeline, few runs.
    pub fn smoke() -> Self {
        ExperimentOpts {
            iterations: 2,
            threads: crate::runner::default_threads(),
            timeline: Timeline::scaled(0.08),
            trace: None,
            checks: false,
        }
    }

    /// A medium configuration for the bench binaries' default mode.
    pub fn quick() -> Self {
        ExperimentOpts {
            iterations: 5,
            threads: crate::runner::default_threads(),
            timeline: Timeline::paper(),
            trace: None,
            checks: false,
        }
    }
}

/// Results of the full competing-flow grid, shared by Figures 3-4 and
/// Tables 4-5 so the 54 × N runs execute once.
pub struct GridResults {
    /// One entry per condition, in [`Grid::full`] order.
    pub results: Vec<ConditionResult>,
    /// The options the grid ran with.
    pub opts: ExperimentOpts,
}

/// Run the full grid (3 systems × 2 CCAs × 3 capacities × 3 queues).
pub fn run_full_grid(opts: ExperimentOpts) -> GridResults {
    let conditions = Grid::full(opts.timeline);
    GridResults {
        results: run_many_full(
            &conditions,
            opts.iterations,
            opts.threads,
            opts.trace.as_ref(),
            opts.checks,
        ),
        opts,
    }
}

/// Run the solo grid (no competing flow).
pub fn run_solo_grid(opts: ExperimentOpts) -> GridResults {
    let conditions = Grid::solo(opts.timeline);
    GridResults {
        results: run_many_full(
            &conditions,
            opts.iterations,
            opts.threads,
            opts.trace.as_ref(),
            opts.checks,
        ),
        opts,
    }
}

/// Run the 3-D AQM scorecard grid (3 systems × 3 CCAs × 3 AQMs at the
/// paper's 25 Mb/s / 2× BDP point).
pub fn run_aqm3d_grid(opts: ExperimentOpts) -> GridResults {
    let conditions = Grid::aqm3d(opts.timeline);
    GridResults {
        results: run_many_full(
            &conditions,
            opts.iterations,
            opts.threads,
            opts.trace.as_ref(),
            opts.checks,
        ),
        opts,
    }
}

impl GridResults {
    /// Find a cell of the 3-D AQM grid by its (system, cca, aqm) axes.
    pub fn get_aqm(&self, system: SystemKind, cca: CcaKind, aqm: Aqm) -> Option<&ConditionResult> {
        self.results.iter().find(|r| {
            r.condition.system == system && r.condition.cca == Some(cca) && r.condition.aqm == aqm
        })
    }

    /// Find the condition result for a cell.
    pub fn get(
        &self,
        system: SystemKind,
        cca: Option<CcaKind>,
        capacity_mbps: u64,
        queue_mult: f64,
    ) -> Option<&ConditionResult> {
        self.results.iter().find(|r| {
            r.condition.system == system
                && r.condition.cca == cca
                && r.condition.capacity.as_mbps() as u64 == capacity_mbps
                && (r.condition.queue_mult - queue_mult).abs() < 1e-9
        })
    }
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// Table 1: unconstrained steady-state bitrates.
pub struct Table1 {
    /// (system, mean Mb/s, sd) over pooled 0.5 s bins in the steady window.
    pub rows: Vec<(SystemKind, f64, f64)>,
}

/// Run Table 1: each system on a 1 Gb/s link, no competitor.
pub fn table1(opts: ExperimentOpts) -> Table1 {
    let conditions = Grid::table1(opts.timeline);
    let results = run_many_full(
        &conditions,
        opts.iterations,
        opts.threads,
        opts.trace.as_ref(),
        opts.checks,
    );
    let tl = opts.timeline;
    let rows = results
        .iter()
        .map(|r| {
            let mut pooled = gsrepro_simcore::stats::Samples::new();
            for run in &r.runs {
                for v in run
                    .game_window(tl.original_window.0, tl.original_window.1)
                    .values()
                {
                    pooled.add(*v);
                }
            }
            (r.condition.system, pooled.mean(), pooled.stddev())
        })
        .collect();
    Table1 { rows }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(vec!["System", "Bitrate (Mb/s)"]);
        for &(sys, mean, sd) in &self.rows {
            t.row(vec![sys.label().to_string(), mean_sd(mean, sd)]);
        }
        write!(f, "{}", t.render())
    }
}

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

/// One point of a bitrate time series: (time s, mean Mb/s, 95% CI).
pub type SeriesPoint = (f64, f64, f64);

/// One panel of Figure 2: a system × CCA at 25 Mb/s, one line per queue.
pub struct Figure2Panel {
    /// The streamed system.
    pub system: SystemKind,
    /// The competing congestion control.
    pub cca: CcaKind,
    /// (queue multiple, bitrate series).
    pub series: Vec<(f64, Vec<SeriesPoint>)>,
}

/// Figure 2: game bitrate over time at the 25 Mb/s constraint.
pub struct Figure2 {
    /// Six panels in the paper's order (Cubic row then BBR row).
    pub panels: Vec<Figure2Panel>,
    /// Timeline used (for the iperf start/stop markers).
    pub timeline: Timeline,
}

/// Run Figure 2's slice of the grid.
pub fn figure2(opts: ExperimentOpts) -> Figure2 {
    let conditions = Grid::figure2(opts.timeline);
    let results = run_many_full(
        &conditions,
        opts.iterations,
        opts.threads,
        opts.trace.as_ref(),
        opts.checks,
    );
    let mut panels = Vec::new();
    for &cca in &CCAS {
        for &sys in &SystemKind::ALL {
            let mut series = Vec::new();
            for &q in &QUEUE_MULTS {
                if let Some(cr) = results.iter().find(|r| {
                    r.condition.system == sys
                        && r.condition.cca == Some(cca)
                        && (r.condition.queue_mult - q).abs() < 1e-9
                }) {
                    series.push((q, cr.game_series_ci()));
                }
            }
            panels.push(Figure2Panel {
                system: sys,
                cca,
                series,
            });
        }
    }
    Figure2 {
        panels,
        timeline: opts.timeline,
    }
}

impl Figure2 {
    /// CSV: `system,cca,queue,t,mean,ci`.
    pub fn csv(&self) -> String {
        let mut csv = Csv::new(&["system", "cca", "queue_bdp", "t_s", "mean_mbps", "ci95"]);
        for p in &self.panels {
            for (q, pts) in &p.series {
                for &(t, m, ci) in pts {
                    csv.row(&[
                        p.system.label().into(),
                        p.cca.label().into(),
                        format!("{q}"),
                        format!("{t:.2}"),
                        format!("{m:.4}"),
                        format!("{ci:.4}"),
                    ]);
                }
            }
        }
        csv.finish()
    }
}

impl fmt::Display for Figure2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tl = &self.timeline;
        writeln!(
            f,
            "Figure 2 — bitrate vs time, 25 Mb/s; competitor active {:.0}-{:.0} s",
            tl.iperf_start.as_secs_f64(),
            tl.iperf_stop.as_secs_f64()
        )?;
        for p in &self.panels {
            writeln!(f, "\n[{} vs {}]", p.system, p.cca)?;
            let mut t = TextTable::new(vec!["queue", "before", "during", "after"]);
            for (q, pts) in &p.series {
                let phase = |from: f64, to: f64| {
                    let vals: Vec<f64> = pts
                        .iter()
                        .filter(|&&(x, _, _)| x >= from && x < to)
                        .map(|&(_, m, _)| m)
                        .collect();
                    if vals.is_empty() {
                        0.0
                    } else {
                        vals.iter().sum::<f64>() / vals.len() as f64
                    }
                };
                let before = phase(
                    tl.original_window.0.as_secs_f64(),
                    tl.iperf_start.as_secs_f64(),
                );
                let during = phase(
                    tl.fairness_window.0.as_secs_f64(),
                    tl.iperf_stop.as_secs_f64(),
                );
                let after = phase(
                    (tl.iperf_stop.as_secs_f64() + tl.end.as_secs_f64()) / 2.0,
                    tl.end.as_secs_f64(),
                );
                t.row(vec![
                    format!("{q}x"),
                    format!("{before:.1}"),
                    format!("{during:.1}"),
                    format!("{after:.1}"),
                ]);
            }
            write!(f, "{}", t.render())?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------------

/// One heatmap cell of Figure 3.
pub struct Figure3Cell {
    /// System.
    pub system: SystemKind,
    /// Competitor CCA.
    pub cca: CcaKind,
    /// Capacity (Mb/s).
    pub capacity: u64,
    /// Queue size (BDP multiples).
    pub queue: f64,
    /// `(game − tcp) / capacity`, averaged across runs.
    pub ratio: f64,
}

/// Figure 3: normalized bitrate-difference heatmaps.
pub struct Figure3 {
    /// All 54 cells.
    pub cells: Vec<Figure3Cell>,
}

/// Reduce a full grid to Figure 3.
pub fn figure3(grid: &GridResults) -> Figure3 {
    let mut cells = Vec::new();
    for cr in &grid.results {
        let Some(cca) = cr.condition.cca else {
            continue;
        };
        let ratios: Vec<f64> = cr
            .runs
            .iter()
            .map(|r| metrics::fairness(r, &cr.condition))
            .collect();
        let (mean, _) = mean_ci95(&ratios);
        cells.push(Figure3Cell {
            system: cr.condition.system,
            cca,
            capacity: cr.condition.capacity.as_mbps() as u64,
            queue: cr.condition.queue_mult,
            ratio: mean,
        });
    }
    Figure3 { cells }
}

impl Figure3 {
    /// Cell lookup.
    pub fn cell(&self, system: SystemKind, cca: CcaKind, capacity: u64, queue: f64) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| {
                c.system == system
                    && c.cca == cca
                    && c.capacity == capacity
                    && (c.queue - queue).abs() < 1e-9
            })
            .map(|c| c.ratio)
    }

    /// CSV: `system,cca,capacity,queue,ratio`.
    pub fn csv(&self) -> String {
        let mut csv = Csv::new(&["system", "cca", "capacity_mbps", "queue_bdp", "ratio"]);
        for c in &self.cells {
            csv.row(&[
                c.system.label().into(),
                c.cca.label().into(),
                c.capacity.to_string(),
                format!("{}", c.queue),
                format!("{:.4}", c.ratio),
            ]);
        }
        csv.finish()
    }
}

impl fmt::Display for Figure3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3 — (game − TCP) bitrate ÷ capacity; + = game wins, − = TCP wins"
        )?;
        for &cca in &CCAS {
            writeln!(f, "\n== competing with {} ==", cca)?;
            for &sys in &SystemKind::ALL {
                writeln!(f, "\n  {} vs {}", sys, cca)?;
                let mut t = TextTable::new(vec!["cap \\ queue", "0.5x", "2x", "7x"]);
                for &cap in &CAPACITIES_MBPS {
                    let mut row = vec![format!("{cap} Mb/s")];
                    for &q in &QUEUE_MULTS {
                        let v = self.cell(sys, cca, cap, q).unwrap_or(f64::NAN);
                        row.push(format!("{:+.2} {}", v, heat_glyph(v)));
                    }
                    t.row(row);
                }
                for line in t.render().lines() {
                    writeln!(f, "    {line}")?;
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------------

/// One scatter point of Figure 4.
pub struct Figure4Point {
    /// System.
    pub system: SystemKind,
    /// Competitor CCA.
    pub cca: CcaKind,
    /// Capacity (Mb/s).
    pub capacity: u64,
    /// Queue (BDP multiples).
    pub queue: f64,
    /// Fairness (x-axis).
    pub fairness: f64,
    /// Adaptiveness A (y-axis).
    pub adaptiveness: f64,
    /// Mean response time C, seconds.
    pub response_s: f64,
    /// Mean recovery time E, seconds.
    pub recovery_s: f64,
    /// Fraction of runs that never responded.
    pub never_responded: f64,
    /// Fraction of runs that never recovered.
    pub never_recovered: f64,
}

/// Figure 4: adaptiveness vs fairness scatter.
pub struct Figure4 {
    /// All points (18 per CCA).
    pub points: Vec<Figure4Point>,
}

/// Reduce a full grid to Figure 4.
pub fn figure4(grid: &GridResults) -> Figure4 {
    struct Raw {
        system: SystemKind,
        cca: CcaKind,
        capacity: u64,
        queue: f64,
        fairness: f64,
        c: f64,
        e: f64,
        nr: f64,
        nv: f64,
    }
    let mut raws = Vec::new();
    for cr in &grid.results {
        let Some(cca) = cr.condition.cca else {
            continue;
        };
        let tl = &cr.condition.timeline;
        let mut cs = Vec::new();
        let mut es = Vec::new();
        let mut fair = Vec::new();
        let mut never_c = 0.0;
        let mut never_e = 0.0;
        for r in &cr.runs {
            let c = metrics::response_time(r, tl);
            let e = metrics::recovery_time(r, tl);
            cs.push(c.secs);
            es.push(e.secs);
            if c.never {
                never_c += 1.0;
            }
            if e.never {
                never_e += 1.0;
            }
            fair.push(metrics::fairness(r, &cr.condition));
        }
        let n = cr.runs.len().max(1) as f64;
        raws.push(Raw {
            system: cr.condition.system,
            cca,
            capacity: cr.condition.capacity.as_mbps() as u64,
            queue: cr.condition.queue_mult,
            fairness: fair.iter().sum::<f64>() / n,
            c: cs.iter().sum::<f64>() / n,
            e: es.iter().sum::<f64>() / n,
            nr: never_c / n,
            nv: never_e / n,
        });
    }

    // Normalize per CCA panel by the maximum response/recovery across all
    // systems and conditions, as the paper does.
    let mut points = Vec::new();
    for &cca in &CCAS {
        let panel: Vec<&Raw> = raws.iter().filter(|r| r.cca == cca).collect();
        let c_max = panel.iter().map(|r| r.c).fold(0.0, f64::max);
        let e_max = panel.iter().map(|r| r.e).fold(0.0, f64::max);
        for r in panel {
            points.push(Figure4Point {
                system: r.system,
                cca,
                capacity: r.capacity,
                queue: r.queue,
                fairness: r.fairness,
                adaptiveness: metrics::adaptiveness(r.c, c_max, r.e, e_max),
                response_s: r.c,
                recovery_s: r.e,
                never_responded: r.nr,
                never_recovered: r.nv,
            });
        }
    }
    Figure4 { points }
}

impl Figure4 {
    /// Mean (fairness, adaptiveness) of a system's cloud of points per CCA.
    pub fn centroid(&self, system: SystemKind, cca: CcaKind) -> (f64, f64) {
        let pts: Vec<&Figure4Point> = self
            .points
            .iter()
            .filter(|p| p.system == system && p.cca == cca)
            .collect();
        if pts.is_empty() {
            return (0.0, 0.0);
        }
        let n = pts.len() as f64;
        (
            pts.iter().map(|p| p.fairness).sum::<f64>() / n,
            pts.iter().map(|p| p.adaptiveness).sum::<f64>() / n,
        )
    }

    /// CSV: one row per point.
    pub fn csv(&self) -> String {
        let mut csv = Csv::new(&[
            "system",
            "cca",
            "capacity_mbps",
            "queue_bdp",
            "fairness",
            "adaptiveness",
            "response_s",
            "recovery_s",
            "never_responded",
            "never_recovered",
        ]);
        for p in &self.points {
            csv.row(&[
                p.system.label().into(),
                p.cca.label().into(),
                p.capacity.to_string(),
                format!("{}", p.queue),
                format!("{:.4}", p.fairness),
                format!("{:.4}", p.adaptiveness),
                format!("{:.2}", p.response_s),
                format!("{:.2}", p.recovery_s),
                format!("{:.2}", p.never_responded),
                format!("{:.2}", p.never_recovered),
            ]);
        }
        csv.finish()
    }
}

impl fmt::Display for Figure4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4 — adaptiveness (0..1, higher better) vs fairness (0 = equal share)"
        )?;
        for &cca in &CCAS {
            writeln!(f, "\n== vs {} ==", cca)?;
            let mut t =
                TextTable::new(vec!["system", "fairness", "adaptiveness", "C (s)", "E (s)"]);
            for &sys in &SystemKind::ALL {
                let (fx, ay) = self.centroid(sys, cca);
                let pts: Vec<&Figure4Point> = self
                    .points
                    .iter()
                    .filter(|p| p.system == sys && p.cca == cca)
                    .collect();
                let n = pts.len().max(1) as f64;
                let c = pts.iter().map(|p| p.response_s).sum::<f64>() / n;
                let e = pts.iter().map(|p| p.recovery_s).sum::<f64>() / n;
                t.row(vec![
                    sys.label().to_string(),
                    format!("{fx:+.2}"),
                    format!("{ay:.2}"),
                    format!("{c:.0}"),
                    format!("{e:.0}"),
                ]);
            }
            write!(f, "{}", t.render())?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Tables 3, 4, 5 and loss tables
// ---------------------------------------------------------------------------

/// A (capacity × queue × system [× cca]) table of "mean (sd)" strings with
/// the raw numbers kept alongside.
pub struct QoeTable {
    /// Table title.
    pub title: String,
    /// Rows: (capacity, queue, system, cca label or "-", mean, sd).
    pub rows: Vec<(u64, f64, SystemKind, String, f64, f64)>,
}

impl QoeTable {
    /// Look up a cell's mean.
    pub fn mean(&self, capacity: u64, queue: f64, system: SystemKind, cca: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.0 == capacity && (r.1 - queue).abs() < 1e-9 && r.2 == system && r.3 == cca)
            .map(|r| r.4)
    }

    /// CSV form.
    pub fn csv(&self) -> String {
        let mut csv = Csv::new(&["capacity_mbps", "queue_bdp", "system", "cca", "mean", "sd"]);
        for (cap, q, sys, cca, m, sd) in &self.rows {
            csv.row(&[
                cap.to_string(),
                format!("{q}"),
                sys.label().into(),
                cca.clone(),
                format!("{m:.3}"),
                format!("{sd:.3}"),
            ]);
        }
        csv.finish()
    }
}

impl fmt::Display for QoeTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let mut t = TextTable::new(vec!["capacity", "queue", "system", "cca", "mean (sd)"]);
        for (cap, q, sys, cca, m, sd) in &self.rows {
            t.row(vec![
                format!("{cap} Mb/s"),
                format!("{q}x"),
                sys.label().to_string(),
                cca.clone(),
                if *m >= 10.0 {
                    mean_sd(*m, *sd)
                } else {
                    mean_sd2(*m, *sd)
                },
            ]);
        }
        write!(f, "{}", t.render())
    }
}

/// Table 3: RTT without a competing flow. Measured over what would be the
/// competitor window (steady gameplay).
pub fn table3(solo: &GridResults) -> QoeTable {
    let mut rows = Vec::new();
    for cr in &solo.results {
        let tl = &cr.condition.timeline;
        let s = cr.rtt_pooled(tl.iperf_start, tl.iperf_stop);
        rows.push((
            cr.condition.capacity.as_mbps() as u64,
            cr.condition.queue_mult,
            cr.condition.system,
            "-".to_string(),
            s.mean(),
            s.stddev(),
        ));
    }
    QoeTable {
        title: "Table 3 — RTT (ms) without a competing TCP flow".into(),
        rows,
    }
}

/// Table 4: RTT with a competing flow, measured while it runs.
pub fn table4(grid: &GridResults) -> QoeTable {
    let mut rows = Vec::new();
    for cr in &grid.results {
        let Some(cca) = cr.condition.cca else {
            continue;
        };
        let tl = &cr.condition.timeline;
        let s = cr.rtt_pooled(tl.iperf_start, tl.iperf_stop);
        rows.push((
            cr.condition.capacity.as_mbps() as u64,
            cr.condition.queue_mult,
            cr.condition.system,
            cca.label().to_string(),
            s.mean(),
            s.stddev(),
        ));
    }
    QoeTable {
        title: "Table 4 — RTT (ms) with a competing TCP flow".into(),
        rows,
    }
}

/// Table 5: displayed frame rate with a competing flow.
pub fn table5(grid: &GridResults) -> QoeTable {
    let mut rows = Vec::new();
    for cr in &grid.results {
        let Some(cca) = cr.condition.cca else {
            continue;
        };
        let tl = &cr.condition.timeline;
        let s = cr.fps_pooled(tl.iperf_start, tl.iperf_stop);
        rows.push((
            cr.condition.capacity.as_mbps() as u64,
            cr.condition.queue_mult,
            cr.condition.system,
            cca.label().to_string(),
            s.mean(),
            s.stddev(),
        ));
    }
    QoeTable {
        title: "Table 5 — frame rate (f/s) with a competing TCP flow".into(),
        rows,
    }
}

/// One cell of the 3-D AQM scorecard: QoE of the game stream and fate of
/// the competitor at a fixed (25 Mb/s, 2× BDP) bottleneck.
pub struct Aqm3dRow {
    /// Streaming system.
    pub system: SystemKind,
    /// Competing CCA.
    pub cca: CcaKind,
    /// Bottleneck queue discipline.
    pub aqm: Aqm,
    /// Game goodput during the competitor window, Mb/s.
    pub game_mbps: f64,
    /// Competitor goodput during its window, Mb/s.
    pub iperf_mbps: f64,
    /// Mean RTT during the competitor window, ms.
    pub rtt_ms: f64,
    /// Mean displayed frame rate during the competitor window, f/s.
    pub fps: f64,
    /// Game media loss during the competitor window, percent.
    pub loss_pct: f64,
    /// CE marks on the competitor across all runs (ECN path evidence).
    pub ce_marks: u64,
    /// Competitor retransmissions across all runs.
    pub tcp_retx: u64,
    /// Competitor queue/AQM drops across all runs.
    pub tcp_drops: u64,
}

/// The 27-cell table behind the 3-D AQM scorecard.
pub struct Aqm3dTable {
    /// One row per (AQM, CCA, system) cell, in [`Grid::aqm3d`] order.
    pub rows: Vec<Aqm3dRow>,
}

/// Reduce the 3-D AQM grid to its per-cell QoE rows.
pub fn aqm3d(grid: &GridResults) -> Aqm3dTable {
    let mut rows = Vec::new();
    for cr in &grid.results {
        let Some(cca) = cr.condition.cca else {
            continue;
        };
        let tl = &cr.condition.timeline;
        let (from, to) = (tl.iperf_start, tl.iperf_stop);
        let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
        rows.push(Aqm3dRow {
            system: cr.condition.system,
            cca,
            aqm: cr.condition.aqm,
            game_mbps: mean(cr.game_means(from, to)),
            iperf_mbps: mean(cr.iperf_means(from, to)),
            rtt_ms: cr.rtt_pooled(from, to).mean(),
            fps: cr.fps_pooled(from, to).mean(),
            loss_pct: cr.loss_mean(from, to) * 100.0,
            ce_marks: cr.runs.iter().map(|r| r.tcp_ce_marked).sum(),
            tcp_retx: cr.runs.iter().map(|r| r.tcp_retransmissions).sum(),
            tcp_drops: cr.runs.iter().map(|r| r.tcp_queue_drops).sum(),
        });
    }
    Aqm3dTable { rows }
}

impl Aqm3dTable {
    /// Cell lookup.
    pub fn get(&self, system: SystemKind, cca: CcaKind, aqm: Aqm) -> Option<&Aqm3dRow> {
        self.rows
            .iter()
            .find(|r| r.system == system && r.cca == cca && r.aqm == aqm)
    }

    /// CSV: one row per cell, stable order — the bench's diffable output.
    pub fn csv(&self) -> String {
        let mut csv = Csv::new(&[
            "system",
            "cca",
            "aqm",
            "game_mbps",
            "iperf_mbps",
            "rtt_ms",
            "fps",
            "loss_pct",
            "ce_marks",
            "tcp_retx",
            "tcp_drops",
        ]);
        for r in &self.rows {
            csv.row(&[
                r.system.label().into(),
                r.cca.label().into(),
                r.aqm.label().into(),
                format!("{:.4}", r.game_mbps),
                format!("{:.4}", r.iperf_mbps),
                format!("{:.4}", r.rtt_ms),
                format!("{:.4}", r.fps),
                format!("{:.4}", r.loss_pct),
                r.ce_marks.to_string(),
                r.tcp_retx.to_string(),
                r.tcp_drops.to_string(),
            ]);
        }
        csv.finish()
    }
}

impl fmt::Display for Aqm3dTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "3-D AQM scorecard — 25 Mb/s, 2x BDP; measured while the competitor runs"
        )?;
        let mut t = TextTable::new(vec![
            "aqm", "cca", "system", "game", "iperf", "RTT ms", "f/s", "loss %", "CE", "retx",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.aqm.label().to_string(),
                r.cca.label().to_string(),
                r.system.label().to_string(),
                format!("{:.1}", r.game_mbps),
                format!("{:.1}", r.iperf_mbps),
                format!("{:.1}", r.rtt_ms),
                format!("{:.1}", r.fps),
                format!("{:.2}", r.loss_pct),
                r.ce_marks.to_string(),
                r.tcp_retx.to_string(),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

/// Tech-report loss tables: game media loss with/without the competitor.
pub fn loss_tables(solo: &GridResults, grid: &GridResults) -> (QoeTable, QoeTable) {
    let mut solo_rows = Vec::new();
    for cr in &solo.results {
        let tl = &cr.condition.timeline;
        let loss = cr.loss_mean(tl.iperf_start, tl.iperf_stop) * 100.0;
        solo_rows.push((
            cr.condition.capacity.as_mbps() as u64,
            cr.condition.queue_mult,
            cr.condition.system,
            "-".to_string(),
            loss,
            0.0,
        ));
    }
    let mut comp_rows = Vec::new();
    for cr in &grid.results {
        let Some(cca) = cr.condition.cca else {
            continue;
        };
        let tl = &cr.condition.timeline;
        let loss = cr.loss_mean(tl.iperf_start, tl.iperf_stop) * 100.0;
        comp_rows.push((
            cr.condition.capacity.as_mbps() as u64,
            cr.condition.queue_mult,
            cr.condition.system,
            cca.label().to_string(),
            loss,
            0.0,
        ));
    }
    (
        QoeTable {
            title: "Loss (%) without a competing TCP flow".into(),
            rows: solo_rows,
        },
        QoeTable {
            title: "Loss (%) with a competing TCP flow".into(),
            rows: comp_rows,
        },
    )
}

/// The technical report's response/recovery breakdown: per-condition mean
/// response time C and recovery time E (Figure 4 shows only the combined
/// adaptiveness; the report tabulates the parts).
/// One row of the response/recovery table: (capacity, queue, system, cca,
/// mean C s, never-responded fraction, mean E s, never-recovered fraction).
pub type ResponseRecoveryRow = (u64, f64, SystemKind, CcaKind, f64, f64, f64, f64);

pub struct ResponseRecoveryTable {
    /// One row per condition.
    pub rows: Vec<ResponseRecoveryRow>,
}

/// Compute the response/recovery breakdown from a full grid.
pub fn response_recovery(grid: &GridResults) -> ResponseRecoveryTable {
    let mut rows = Vec::new();
    for cr in &grid.results {
        let Some(cca) = cr.condition.cca else {
            continue;
        };
        let tl = &cr.condition.timeline;
        let n = cr.runs.len().max(1) as f64;
        let mut c_sum = 0.0;
        let mut e_sum = 0.0;
        let mut c_never = 0.0;
        let mut e_never = 0.0;
        for r in &cr.runs {
            let c = crate::metrics::response_time(r, tl);
            let e = crate::metrics::recovery_time(r, tl);
            c_sum += c.secs;
            e_sum += e.secs;
            if c.never {
                c_never += 1.0;
            }
            if e.never {
                e_never += 1.0;
            }
        }
        rows.push((
            cr.condition.capacity.as_mbps() as u64,
            cr.condition.queue_mult,
            cr.condition.system,
            cca,
            c_sum / n,
            c_never / n,
            e_sum / n,
            e_never / n,
        ));
    }
    ResponseRecoveryTable { rows }
}

impl fmt::Display for ResponseRecoveryTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Response time C (competitor arrival → settled) and recovery time E\n\
             (departure → original bitrate), per condition; '!' fraction never settled"
        )?;
        let mut t = TextTable::new(vec![
            "capacity", "queue", "system", "cca", "C (s)", "C never", "E (s)", "E never",
        ]);
        for &(cap, q, sys, cca, c, cn, e, en) in &self.rows {
            t.row(vec![
                format!("{cap} Mb/s"),
                format!("{q}x"),
                sys.label().to_string(),
                cca.label().to_string(),
                format!("{c:.1}"),
                format!("{cn:.2}"),
                format!("{e:.1}"),
                format!("{en:.2}"),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

/// Harm analysis (the paper's future-work suggestion, after Ware et al.,
/// HotNets '19): how much did the competitor damage the game stream's
/// throughput, delay, and frame rate relative to its solo performance
/// under the same network condition?
pub struct HarmTable {
    /// Rows: (capacity, queue, system, cca, throughput harm, delay harm,
    /// frame-rate harm), all in [0, ∞) with 0 = no harm.
    pub rows: Vec<(u64, f64, SystemKind, CcaKind, f64, f64, f64)>,
}

/// Compute harm by pairing each competing condition with its solo twin.
pub fn harm_table(solo: &GridResults, grid: &GridResults) -> HarmTable {
    let mut rows = Vec::new();
    for cr in &grid.results {
        let Some(cca) = cr.condition.cca else {
            continue;
        };
        let cap = cr.condition.capacity.as_mbps() as u64;
        let q = cr.condition.queue_mult;
        let Some(solo_cr) = solo.get(cr.condition.system, None, cap, q) else {
            continue;
        };
        let tl = &cr.condition.timeline;
        let window = (tl.iperf_start, tl.iperf_stop);

        let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let solo_tp = mean(solo_cr.game_means(window.0, window.1));
        let cont_tp = mean(cr.game_means(window.0, window.1));
        let solo_rtt = solo_cr.rtt_pooled(window.0, window.1).mean();
        let cont_rtt = cr.rtt_pooled(window.0, window.1).mean();
        let solo_fps = solo_cr.fps_pooled(window.0, window.1).mean();
        let cont_fps = cr.fps_pooled(window.0, window.1).mean();

        rows.push((
            cap,
            q,
            cr.condition.system,
            cca,
            crate::metrics::harm(solo_tp, cont_tp, true),
            crate::metrics::harm(solo_rtt, cont_rtt, false),
            crate::metrics::harm(solo_fps, cont_fps, true),
        ));
    }
    HarmTable { rows }
}

impl fmt::Display for HarmTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Harm analysis (Ware et al.): damage to the game stream relative to solo"
        )?;
        let mut t = TextTable::new(vec![
            "capacity",
            "queue",
            "system",
            "cca",
            "tput harm",
            "delay harm",
            "fps harm",
        ]);
        for &(cap, q, sys, cca, ht, hd, hf) in &self.rows {
            t.row(vec![
                format!("{cap} Mb/s"),
                format!("{q}x"),
                sys.label().to_string(),
                cca.label().to_string(),
                format!("{ht:.2}"),
                format!("{hd:.2}"),
                format!("{hf:.2}"),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

/// Table 2 is the configuration itself; echo it for completeness.
pub fn table2_text() -> String {
    let mut t = TextTable::new(vec!["Parameter", "Values"]);
    t.row(vec!["Game system", "Stadia, GeForce, or Luna"]);
    t.row(vec!["Game", "Ys VIII (scripted; simulated frame source)"]);
    t.row(vec!["Capacity limit", "15, 25, or 35 Mb/s"]);
    t.row(vec!["Queue size", "0.5x, 2x, or 7x BDP"]);
    t.row(vec!["Competing TCP flow", "Cubic or BBR"]);
    t.row(vec!["Trace length", "9 minutes (3 with iperf)"]);
    t.row(vec!["Iterations", "15 runs per condition"]);
    format!("Table 2 — experimental parameters\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_echoes_parameters() {
        let s = table2_text();
        assert!(s.contains("15, 25, or 35"));
        assert!(s.contains("0.5x, 2x, or 7x BDP"));
    }

    #[test]
    fn smoke_table1_orders_systems() {
        let mut opts = ExperimentOpts::smoke();
        opts.iterations = 1;
        let t1 = table1(opts);
        assert_eq!(t1.rows.len(), 3);
        let get = |k: SystemKind| t1.rows.iter().find(|r| r.0 == k).expect("row exists").1;
        let stadia = get(SystemKind::Stadia);
        let geforce = get(SystemKind::GeForce);
        let luna = get(SystemKind::Luna);
        // Unconstrained ordering from Table 1: Stadia > GeForce > Luna.
        assert!(
            stadia > geforce && geforce > luna,
            "{stadia} {geforce} {luna}"
        );
        // And the absolute levels are near the paper's. (The smoke
        // timeline's short window does not average over whole scene-sine
        // periods, so allow a generous band; the full-timeline bench
        // matches within a few tenths.)
        assert!((stadia - 27.5).abs() < 2.5, "stadia {stadia}");
        assert!((luna - 23.7).abs() < 2.5, "luna {luna}");
        let rendered = format!("{t1}");
        assert!(rendered.contains("stadia"));
    }
}
