//! The Ware BBRv1 inflight-cap fairness model, and the *model oracle*
//! that validates the simulator against it.
//!
//! Every other verification tier in this repo (golden trajectory
//! fixtures, the scorecard snapshots, the conformance kit) checks the
//! simulator against *its own past output*. This module checks it
//! against independently derived theory: Ware et al.'s closed-form
//! model of a BBRv1 flow competing with loss-based flows in a deep
//! drop-tail queue (*"Modeling BBR's Interactions with Loss-Based
//! Congestion Control"*, IMC '19 — `ware_model.py` in SNIPPETS.md).
//!
//! # The model
//!
//! At a full drop-tail queue of `q` bytes over a bottleneck of capacity
//! `c` and base RTT `l` (so BDP `b = c·l`, queue multiple `X = q/b`),
//! with one BBRv1 flow against synchronized loss-based competitors
//! holding aggregate share `p`:
//!
//! * throughput share equals queue share (FIFO drain), so the
//!   loss-based flows hold `p·q` of the queue and BBR `(1−p)·q`;
//! * BBR's bandwidth estimate is its delivery rate, `(1−p)·c`;
//! * BBR's RTprop estimate is inflated by the competitors' standing
//!   queue, which PROBE_RTT cannot drain: `l + p·q/c`;
//! * BBR in ProbeBW holds `cwnd_gain = 2` times its estimated BDP in
//!   flight: `inflight_cap = 2·(1−p)·(c·l + p·q)` — in the deep-queue
//!   limit `q ≫ c·l` this is the snippet's `2·p·(1−p)·q`;
//! * at convergence that cap equals BBR's actual outstanding data, its
//!   share of the wire plus its share of the queue:
//!   `cwnd_share = (1−p)·(q + c·l)`.
//!
//! Equating cap and share gives the quadratic
//!
//! ```text
//! 2q·p² − (3q − b)·p + (q − b) = 0
//! ```
//!
//! whose discriminant is exactly `(q + b)²`, so the roots are
//!
//! ```text
//! p = 1              (unstable: BBR starved — its bandwidth estimate
//!                     and cap collapse together, no restoring force)
//! p* = (q − b)/(2q)  = (1 − 1/X)/2   (the stable root)
//! ```
//!
//! The stable root says the loss-based share *grows with queue depth*,
//! from nothing at `X = 1` toward the fair ½ as `X → ∞`, while BBR
//! holds `(1 + 1/X)/2` — exactly the paper's observation that deep
//! buffers favour loss-based senders and shallow buffers favour BBR.
//!
//! # The oracle
//!
//! [`run_model_oracle`] sweeps bulk-Cubic-vs-bulk-BBR cells over queue
//! multiples × capacities × base RTTs on the real simulator (two nodes,
//! one shaped drop-tail bottleneck — no game stream), measures the
//! converged throughput shares from the monitor layer, and grades each
//! cell [`CellVerdict::Within`] / [`CellVerdict::Diverged`] /
//! [`CellVerdict::Inapplicable`] (naming the failed precondition).
//! [`model_scorecard`] folds the grid into scorecard claims, pinned by
//! the `model_oracle` snapshot fixture.

use gsrepro_netsim::net::NetworkBuilder;
use gsrepro_netsim::queue::QueueSpec;
use gsrepro_netsim::{LinkSpec, Shaper};
use gsrepro_simcore::rng::{derive_seed, stream_id};
use gsrepro_simcore::{BitRate, SimDuration, SimTime};
use gsrepro_tcp::cca::bbr::Bbr;
use gsrepro_tcp::{CcaKind, TcpReceiver, TcpSender, TcpSenderConfig};

use crate::metrics::jains_index;
use crate::report::TextTable;
use crate::runner;
use crate::scorecard::{graded, Claim, Scorecard, Verdict};

/// Queue multiple below which the deep-queue premise (`q ≫ BDP`) is
/// considered violated and the model inapplicable. At `X = 2` the
/// first-order BDP correction retained in the stable root is already
/// half of `q`; below that the model's "queue share ≈ throughput share"
/// picture stops describing the dynamics at all (BBR simply paces past
/// the loss-based flows).
pub const DEEP_QUEUE_MIN_MULT: f64 = 2.0;

/// Minimum full-queue drain time `q/c` (seconds) for the fluid model to
/// apply. The model treats Cubic's sawtooth and BBR's ProbeBW cycle as
/// fast relative to the standing-queue timescale; when the whole queue
/// drains in a few tens of milliseconds, simulated Cubic's real-time
/// (RTT-independent) window growth refills it faster than the fluid
/// equilibrium assumes and out-competes the prediction. Empirically the
/// crossover sits between 33 ms (measured share saturates near 0.45
/// regardless of X) and 66 ms (measured within 0.07 of p*); 50 ms
/// splits it with margin on both sides. See EXPERIMENTS.md.
pub const MIN_QUEUE_DRAIN_SECS: f64 = 0.050;

/// Documented tolerance on the absolute loss-based-share error
/// `|measured − p*|` for a cell to count as within-model. Rationale
/// (see EXPERIMENTS.md "Model oracle"): the model idealizes PROBE_RTT
/// as never draining the competitors' queue share and Cubic as holding
/// the queue exactly full, while the simulated flows breathe around
/// both — the observed error across the clean applicable grid tops out
/// at 0.080, while the smallest interesting CCA mistuning (cwnd_gain
/// 2 → 3) moves measured shares by ≥ 0.11 and gain 4 by ≥ 0.18, so
/// 0.10 separates model noise from real regressions.
pub const MODEL_TOLERANCE: f64 = 0.10;

/// Inputs the model predicts from: one bottleneck cell plus the flow
/// population competing through it.
#[derive(Clone, Copy, Debug)]
pub struct ModelInput {
    /// Bottleneck capacity `c`.
    pub capacity: BitRate,
    /// Base (unloaded) round-trip time `l`.
    pub base_rtt: SimDuration,
    /// Queue size as a multiple `X` of the BDP `c·l`.
    pub queue_mult: f64,
    /// Number of synchronized loss-based competitors.
    pub n_loss: u32,
    /// Number of BBR flows (the model is derived for exactly one).
    pub n_bbr: u32,
}

impl ModelInput {
    /// Queue capacity `q = X·c·l` in bytes.
    pub fn queue_bytes(&self) -> f64 {
        self.capacity.bdp(self.base_rtt).as_u64() as f64 * self.queue_mult
    }

    /// BDP `b = c·l` in bytes.
    pub fn bdp_bytes(&self) -> f64 {
        self.capacity.bdp(self.base_rtt).as_u64() as f64
    }

    /// Time to drain the full queue at line rate, `q/c` in seconds —
    /// `X·l`, the standing-queue timescale the fluid model lives on.
    pub fn queue_drain_secs(&self) -> f64 {
        self.queue_bytes() * 8.0 / (self.capacity.as_mbps() * 1e6)
    }
}

/// A validity precondition of the Ware model. Cells that violate one
/// still run and report measurements, but their verdict is
/// [`CellVerdict::Inapplicable`] naming the first failed precondition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precondition {
    /// `q ≫ BDP`: the queue must be deep (`X ≥ 2`) for queue share to
    /// stand in for throughput share.
    DeepQueue,
    /// The full-queue drain time `q/c` must reach
    /// [`MIN_QUEUE_DRAIN_SECS`] for the fluid-timescale picture to hold.
    QueueDrainsFast,
    /// The closed form is derived for exactly one BBR flow; several BBR
    /// flows contest each other's bandwidth estimates.
    SingleBbrFlow,
    /// At least one loss-based competitor must exist (and the runner
    /// starts all competitors together, satisfying the synchronized-
    /// losses assumption by construction).
    SynchronizedLossCompetitor,
}

impl Precondition {
    /// Stable snapshot label.
    pub fn label(self) -> &'static str {
        match self {
            Precondition::DeepQueue => "queue-not-deep",
            Precondition::QueueDrainsFast => "queue-drains-fast",
            Precondition::SingleBbrFlow => "multiple-bbr-flows",
            Precondition::SynchronizedLossCompetitor => "no-loss-based-competitor",
        }
    }
}

/// Evaluate every precondition; empty means the model applies.
pub fn failed_preconditions(input: &ModelInput) -> Vec<Precondition> {
    let mut failed = Vec::new();
    if input.queue_mult < DEEP_QUEUE_MIN_MULT {
        failed.push(Precondition::DeepQueue);
    }
    if input.queue_drain_secs() < MIN_QUEUE_DRAIN_SECS {
        failed.push(Precondition::QueueDrainsFast);
    }
    if input.n_bbr != 1 {
        failed.push(Precondition::SingleBbrFlow);
    }
    if input.n_loss == 0 {
        failed.push(Precondition::SynchronizedLossCompetitor);
    }
    failed
}

/// Both roots of the equilibrium quadratic `2q·p² − (3q−b)·p + (q−b) = 0`.
#[derive(Clone, Copy, Debug)]
pub struct Roots {
    /// The stable equilibrium `p* = (q − b)/(2q)`.
    pub stable: f64,
    /// The unstable root (`p = 1`, BBR starved).
    pub unstable: f64,
}

/// Solve the equilibrium quadratic for the loss-based share, returning
/// both roots. Solved with the explicit quadratic formula; the
/// discriminant `(3q−b)² − 8q(q−b)` simplifies to `(q+b)²` exactly, so
/// the roots are always real for `q, b > 0`.
pub fn solve_loss_share(queue_bytes: f64, bdp_bytes: f64) -> Roots {
    let (q, b) = (queue_bytes, bdp_bytes);
    let a2 = 2.0 * q;
    let a1 = -(3.0 * q - b);
    let a0 = q - b;
    let disc = (a1 * a1 - 4.0 * a2 * a0).max(0.0);
    let s = disc.sqrt();
    let r1 = (-a1 + s) / (2.0 * a2);
    let r2 = (-a1 - s) / (2.0 * a2);
    // The larger root is p = 1 (BBR starved): a perturbation from it has
    // no restoring force because BBR's bandwidth estimate and inflight
    // cap collapse together. The smaller root is the attractor.
    Roots {
        stable: r1.min(r2),
        unstable: r1.max(r2),
    }
}

/// The model's per-cell prediction.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Aggregate loss-based share `p*` at convergence (each of the `N`
    /// synchronized competitors gets `p*/N`).
    pub loss_share: f64,
    /// BBR's share `1 − p*`.
    pub bbr_share: f64,
    /// BBR's inflight cap at convergence in the deep-queue form the
    /// snippet uses, `2·p·(1−p)·q` bytes.
    pub inflight_cap_bytes: f64,
    /// Preconditions the cell violates; empty means the prediction is
    /// quantitatively meaningful.
    pub failed: Vec<Precondition>,
}

/// Predict the convergence shares for a cell. The share is computed for
/// every cell (it is just algebra); `failed` records whether the model
/// claims validity there.
pub fn predict(input: &ModelInput) -> Prediction {
    let q = input.queue_bytes();
    let roots = solve_loss_share(q, input.bdp_bytes());
    // Outside the valid region (X < 1) the stable root goes negative;
    // clamp to the boundary so shares stay physical. Applicable cells
    // (X ≥ 2) never clamp.
    let p = roots.stable.clamp(0.0, 1.0);
    Prediction {
        loss_share: p,
        bbr_share: 1.0 - p,
        inflight_cap_bytes: 2.0 * p * (1.0 - p) * q,
        failed: failed_preconditions(input),
    }
}

/// One bulk-vs-bulk cell of the oracle grid: `n_cubic` Cubic senders
/// against one BBR sender through a shaped drop-tail bottleneck. No
/// game stream — this isolates the CCA dynamics the model describes.
#[derive(Clone, Copy, Debug)]
pub struct BulkCell {
    /// Bottleneck capacity in Mb/s.
    pub capacity_mbps: u64,
    /// Base RTT.
    pub base_rtt: SimDuration,
    /// Queue multiple `X`.
    pub queue_mult: f64,
    /// Number of Cubic competitors (all start at t = 0, synchronized).
    pub n_cubic: u32,
}

impl BulkCell {
    /// Stable cell label; also the seed stream, so every cell draws an
    /// independent, reproducible randomness stream.
    pub fn label(&self) -> String {
        format!(
            "model/c{}q{}r{}n{}",
            self.capacity_mbps,
            self.queue_mult,
            self.base_rtt.as_millis_f64(),
            self.n_cubic
        )
    }

    /// Deterministic seed derived from the label.
    pub fn seed(&self) -> u64 {
        derive_seed(stream_id(&self.label()), 0)
    }

    /// The model inputs this cell realizes.
    pub fn model_input(&self) -> ModelInput {
        ModelInput {
            capacity: BitRate::from_mbps(self.capacity_mbps),
            base_rtt: self.base_rtt,
            queue_mult: self.queue_mult,
            n_loss: self.n_cubic,
            n_bbr: 1,
        }
    }
}

/// Measured outcome of one bulk cell run.
#[derive(Clone, Debug)]
pub struct BulkMeasurement {
    /// Aggregate Cubic goodput share over the convergence window.
    pub loss_share: f64,
    /// BBR goodput share.
    pub bbr_share: f64,
    /// Per-flow goodputs (Cubic flows first, BBR last), Mb/s.
    pub goodputs_mbps: Vec<f64>,
    /// Jain's fairness index over the per-flow goodputs.
    pub jain: f64,
    /// Bottleneck utilization over the convergence window.
    pub utilization: f64,
    /// Invariant-oracle evaluations survived (0 when checks are off).
    pub checks_performed: u64,
}

/// Run one bulk cell for `duration` and measure converged shares over
/// the second half (BBR's PROBE_RTT cycle is 10 s, so the window must
/// cover several cycles — [`OracleSpec::paper`] uses 120 s runs).
/// `bbr_cwnd_gain` injects a perturbed controller in place of stock
/// BBR (`None` = stock `cwnd_gain = 2`); the regression tests use it to
/// prove the oracle catches a mis-tuned CCA.
pub fn run_bulk_cell(
    cell: &BulkCell,
    duration: SimDuration,
    checks: bool,
    bbr_cwnd_gain: Option<f64>,
) -> BulkMeasurement {
    let capacity = BitRate::from_mbps(cell.capacity_mbps);
    let queue = capacity.bdp(cell.base_rtt).mul_f64(cell.queue_mult);
    let one_way = cell.base_rtt.mul_f64(0.5);

    let mut b = NetworkBuilder::new(cell.seed()).checks(checks);
    let servers = b.add_node("servers");
    let client = b.add_node("client");
    b.link(
        servers,
        client,
        LinkSpec {
            shaper: Shaper::rate(capacity),
            delay: one_way,
            queue: QueueSpec::DropTail { limit: queue },
            jitter: SimDuration::ZERO,
            loss_prob: 0.0,
            dup_prob: 0.0,
        },
    );
    b.link(client, servers, LinkSpec::lan(one_way));

    let stop = SimTime::ZERO + duration;
    let mut flows = Vec::new();
    for i in 0..cell.n_cubic {
        let data = b.flow(format!("cubic{i}"));
        let acks = b.flow(format!("cack{i}"));
        let recv = gsrepro_netsim::net::AgentId(i * 2 + 1);
        let cfg = TcpSenderConfig::new(data, client, recv, CcaKind::Cubic)
            .active_during(SimTime::ZERO, stop);
        let s = b.add_agent(servers, Box::new(TcpSender::new(cfg)));
        b.add_agent(client, Box::new(TcpReceiver::new(acks, servers, s)));
        flows.push(data);
    }
    let data = b.flow("bbr");
    let acks = b.flow("back");
    let recv = gsrepro_netsim::net::AgentId(cell.n_cubic * 2 + 1);
    let cfg =
        TcpSenderConfig::new(data, client, recv, CcaKind::Bbr).active_during(SimTime::ZERO, stop);
    let mss = cfg.mss.as_u64();
    let sender = match bbr_cwnd_gain {
        Some(g) => TcpSender::with_controller(cfg, Box::new(Bbr::with_cwnd_gain(mss, g))),
        None => TcpSender::new(cfg),
    };
    let s = b.add_agent(servers, Box::new(sender));
    b.add_agent(client, Box::new(TcpReceiver::new(acks, servers, s)));
    flows.push(data);

    let mut sim = b.build();
    sim.run_until(stop);

    let from = SimTime::ZERO + duration.mul_f64(0.5);
    let goodputs: Vec<f64> = flows
        .iter()
        .map(|&f| sim.goodput_mbps(f, from, stop))
        .collect();
    let bbr = *goodputs.last().expect("bbr flow present");
    let cubic: f64 = goodputs[..goodputs.len() - 1].iter().sum();
    let total = (cubic + bbr).max(f64::MIN_POSITIVE);
    BulkMeasurement {
        loss_share: cubic / total,
        bbr_share: bbr / total,
        jain: jains_index(&goodputs),
        utilization: (cubic + bbr) / capacity.as_mbps(),
        goodputs_mbps: goodputs,
        checks_performed: sim.net.checks().performed(),
    }
}

/// Per-cell verdict of the oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellVerdict {
    /// Preconditions hold and `|measured − p*| ≤` [`MODEL_TOLERANCE`].
    Within,
    /// Preconditions hold but the measurement disagrees with the model —
    /// either the simulator or the model is wrong about this cell.
    Diverged,
    /// A validity precondition failed; the named one is the first.
    Inapplicable(Precondition),
}

impl CellVerdict {
    /// Stable snapshot label.
    pub fn label(self) -> String {
        match self {
            CellVerdict::Within => "within".to_string(),
            CellVerdict::Diverged => "diverged".to_string(),
            CellVerdict::Inapplicable(p) => format!("inapplicable({})", p.label()),
        }
    }
}

/// One graded cell of the oracle grid.
#[derive(Clone, Debug)]
pub struct OracleCell {
    /// The cell that ran.
    pub cell: BulkCell,
    /// Model prediction (with precondition evaluation).
    pub prediction: Prediction,
    /// Simulator measurement.
    pub measured: BulkMeasurement,
    /// `|measured.loss_share − prediction.loss_share|`.
    pub abs_err: f64,
    /// The verdict.
    pub verdict: CellVerdict,
}

/// Grid specification for the oracle sweep.
#[derive(Clone, Debug)]
pub struct OracleSpec {
    /// Queue multiples to sweep.
    pub queue_mults: Vec<f64>,
    /// Capacities (Mb/s) to sweep.
    pub capacities_mbps: Vec<u64>,
    /// Base RTTs to sweep.
    pub base_rtts: Vec<SimDuration>,
    /// Per-cell run length.
    pub duration: SimDuration,
    /// Run with the invariant oracles auditing every cell.
    pub checks: bool,
    /// Worker threads (0 = all available).
    pub threads: usize,
    /// Perturbed BBR `cwnd_gain` (`None` = stock 2.0).
    pub bbr_cwnd_gain: Option<f64>,
}

impl OracleSpec {
    /// The full grid: the ISSUE's {0.5, 1, 2, 4, 8}×BDP sweep at two
    /// capacities and two base RTTs (including the paper's equalized
    /// 16.5 ms), 120 s per cell.
    pub fn paper() -> Self {
        OracleSpec {
            queue_mults: vec![0.5, 1.0, 2.0, 4.0, 8.0],
            capacities_mbps: vec![15, 25],
            base_rtts: vec![
                SimDuration::from_micros(16_500),
                SimDuration::from_micros(33_000),
            ],
            duration: SimDuration::from_secs(120),
            checks: false,
            threads: 0,
            bbr_cwnd_gain: None,
        }
    }

    /// CI-sized grid: one capacity/RTT but all five queue multiples, so
    /// the within / queue-not-deep / queue-drains-fast verdict paths are
    /// all exercised. Runs keep the full 120 s — the convergence window
    /// is physics, not budget (at 60 s the X = 4 cell is still ≈ 0.1
    /// short of its converged share).
    pub fn smoke() -> Self {
        OracleSpec {
            capacities_mbps: vec![25],
            base_rtts: vec![SimDuration::from_micros(16_500)],
            ..Self::paper()
        }
    }

    /// The cells this spec sweeps, in deterministic row order.
    pub fn cells(&self) -> Vec<BulkCell> {
        let mut out = Vec::new();
        for &cap in &self.capacities_mbps {
            for &rtt in &self.base_rtts {
                for &q in &self.queue_mults {
                    out.push(BulkCell {
                        capacity_mbps: cap,
                        base_rtt: rtt,
                        queue_mult: q,
                        n_cubic: 1,
                    });
                }
            }
        }
        out
    }
}

/// The graded oracle grid.
#[derive(Clone, Debug)]
pub struct OracleReport {
    /// All cells, in [`OracleSpec::cells`] order.
    pub cells: Vec<OracleCell>,
}

/// Grade one measured cell against the model.
pub fn grade_cell(cell: &BulkCell, measured: BulkMeasurement) -> OracleCell {
    let prediction = predict(&cell.model_input());
    let abs_err = (measured.loss_share - prediction.loss_share).abs();
    let verdict = match prediction.failed.first() {
        Some(&p) => CellVerdict::Inapplicable(p),
        None if abs_err <= MODEL_TOLERANCE => CellVerdict::Within,
        None => CellVerdict::Diverged,
    };
    OracleCell {
        cell: *cell,
        prediction,
        measured,
        abs_err,
        verdict,
    }
}

/// Run the oracle grid: every cell simulated (in parallel), measured,
/// and graded against the model. Deterministic for a fixed spec — cell
/// seeds derive from cell labels and grading is pure arithmetic.
pub fn run_model_oracle(spec: &OracleSpec) -> OracleReport {
    let cells = spec.cells();
    let threads = if spec.threads == 0 {
        runner::default_threads()
    } else {
        spec.threads
    };
    let results = runner::run_jobs(
        cells.len(),
        threads,
        |i| {
            let m = run_bulk_cell(&cells[i], spec.duration, spec.checks, spec.bbr_cwnd_gain);
            grade_cell(&cells[i], m)
        },
        |i| cells[i].label(),
    )
    .unwrap_or_else(|failures| {
        let mut msg = String::from("model-oracle cells panicked:\n");
        for f in &failures {
            msg.push_str(&format!("  {}: {}\n", f.label, f.message));
        }
        panic!("{msg}");
    });
    OracleReport { cells: results }
}

impl OracleReport {
    /// Cells where the model claims validity.
    pub fn applicable(&self) -> impl Iterator<Item = &OracleCell> {
        self.cells.iter().filter(|c| c.prediction.failed.is_empty())
    }

    /// Number of applicable cells that diverged.
    pub fn diverged(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.verdict == CellVerdict::Diverged)
            .count()
    }

    /// The full measurement table (floats included — deterministic for a
    /// fixed spec, but not pinned as a fixture; the fixture pins
    /// [`OracleReport::verdict_lines`]).
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "cell", "X", "pred p", "meas p", "|err|", "jain", "util", "verdict",
        ]);
        for c in &self.cells {
            t.row(vec![
                format!(
                    "c{} r{:.1}ms",
                    c.cell.capacity_mbps,
                    c.cell.base_rtt.as_millis_f64()
                ),
                format!("{:.1}", c.cell.queue_mult),
                format!("{:.3}", c.prediction.loss_share),
                format!("{:.3}", c.measured.loss_share),
                format!("{:.3}", c.abs_err),
                format!("{:.3}", c.measured.jain),
                format!("{:.2}", c.measured.utilization),
                c.verdict.label(),
            ]);
        }
        t
    }

    /// Stable per-cell verdict lines — the snapshot payload. Includes
    /// the closed-form prediction (exact arithmetic, safe to pin) but
    /// not the measured floats (threshold-graded into the verdict, so
    /// the line only changes when a cell genuinely flips).
    pub fn verdict_lines(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&format!(
                "c{}-r{:.1}ms-x{:.1} pred={:.4} {}\n",
                c.cell.capacity_mbps,
                c.cell.base_rtt.as_millis_f64(),
                c.cell.queue_mult,
                c.prediction.loss_share,
                c.verdict.label()
            ));
        }
        out
    }
}

/// Distinct (capacity, base RTT) groups of a report, in grid order.
fn cell_groups(report: &OracleReport) -> Vec<(u64, SimDuration)> {
    let mut groups: Vec<(u64, SimDuration)> = report
        .cells
        .iter()
        .map(|c| (c.cell.capacity_mbps, c.cell.base_rtt))
        .collect();
    groups.dedup();
    groups
}

/// One metric over a group's *applicable* cells, as (queue multiple,
/// value) sorted by queue multiple.
fn group_series(
    report: &OracleReport,
    cap: u64,
    rtt: SimDuration,
    metric: impl Fn(&OracleCell) -> f64,
) -> Vec<(f64, f64)> {
    let mut series: Vec<(f64, f64)> = report
        .applicable()
        .filter(|c| c.cell.capacity_mbps == cap && c.cell.base_rtt == rtt)
        .map(|c| (c.cell.queue_mult, metric(c)))
        .collect();
    series.sort_by(|a, b| a.0.total_cmp(&b.0));
    series
}

/// Fold the oracle grid into scorecard claims alongside the paper
/// claims: model agreement, monotonicity, the shallow-queue crossover,
/// and fairness-index behaviour.
pub fn model_scorecard(report: &OracleReport) -> Scorecard {
    let mut claims = Vec::new();

    {
        let n = report.applicable().count();
        let ok = report
            .applicable()
            .filter(|c| c.verdict == CellVerdict::Within)
            .count();
        let worst = report
            .applicable()
            .map(|c| c.abs_err)
            .fold(0.0f64, f64::max);
        claims.push(Claim {
            id: "MODEL-deep-within",
            statement: "deep-queue (X ≥ 2) Cubic-vs-BBR shares match the Ware stable root",
            verdict: graded(ok as f64 / n.max(1) as f64, 0.99, 0.66),
            evidence: format!("{ok}/{n} cells within ±{MODEL_TOLERANCE}; worst |err| {worst:.3}"),
        });
    }
    {
        // Measured loss-based share must grow with queue depth within
        // each (capacity, RTT) group — the model's central monotone
        // prediction, checked on the measurements themselves.
        let mut ok = 0;
        let mut n = 0;
        for (cap, rtt) in cell_groups(report) {
            let shares = group_series(report, cap, rtt, |c| c.measured.loss_share);
            for w in shares.windows(2) {
                n += 1;
                if w[1].1 >= w[0].1 - 0.05 {
                    ok += 1;
                }
            }
        }
        claims.push(Claim {
            id: "MODEL-share-monotone",
            statement: "measured loss-based share grows with queue depth (deep cells)",
            verdict: graded(ok as f64 / n.max(1) as f64, 0.99, 0.66),
            evidence: format!("{ok}/{n} adjacent deep-cell pairs non-decreasing"),
        });
    }
    {
        // Below the validity region the crossover the paper leans on:
        // shallow queues starve the loss-based flow, BBR dominates.
        let mut ok = 0;
        let mut n = 0;
        for c in &report.cells {
            if c.cell.queue_mult < DEEP_QUEUE_MIN_MULT {
                n += 1;
                if c.measured.bbr_share > 0.5 {
                    ok += 1;
                }
            }
        }
        claims.push(Claim {
            id: "MODEL-shallow-bbr-dominates",
            statement: "below the validity region (X < 2) BBR takes the majority share",
            verdict: graded(ok as f64 / n.max(1) as f64, 0.99, 0.5),
            evidence: format!("{ok}/{n} shallow cells BBR-majority"),
        });
    }
    {
        // Jain's index must improve with queue depth: the model predicts
        // shares of (p*, 1−p*) → J = 1/(2(p² + (1−p)²)/(p+(1−p))²)
        // rising toward 1 as X grows.
        let mut ok = 0;
        let mut n = 0;
        for (cap, rtt) in cell_groups(report) {
            let jains = group_series(report, cap, rtt, |c| c.measured.jain);
            for w in jains.windows(2) {
                n += 1;
                if w[1].1 >= w[0].1 - 0.05 {
                    ok += 1;
                }
            }
        }
        claims.push(Claim {
            id: "MODEL-jain-improves",
            statement: "Jain's index improves as queues deepen (shares approach fair)",
            verdict: graded(ok as f64 / n.max(1) as f64, 0.99, 0.5),
            evidence: format!("{ok}/{n} deep-cell steps non-decreasing in Jain"),
        });
    }
    {
        // Structural: every cell carries a verdict, and inapplicable
        // verdicts appear exactly on the cells whose preconditions fail.
        let consistent = report.cells.iter().all(|c| {
            matches!(c.verdict, CellVerdict::Inapplicable(_)) == !c.prediction.failed.is_empty()
        });
        claims.push(Claim {
            id: "MODEL-preconditions-enforced",
            statement: "verdicts are inapplicable exactly where a precondition fails",
            verdict: if consistent {
                Verdict::Pass
            } else {
                Verdict::Fail
            },
            evidence: format!("{} cells consistent", report.cells.len()),
        });
    }

    Scorecard { claims }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn input(x: f64) -> ModelInput {
        // 33 ms base RTT: X = 2 already clears the 50 ms drain floor.
        ModelInput {
            capacity: BitRate::from_mbps(25),
            base_rtt: SimDuration::from_micros(33_000),
            queue_mult: x,
            n_loss: 1,
            n_bbr: 1,
        }
    }

    #[test]
    fn stable_root_closed_form() {
        // p* = (1 − 1/X)/2 at X = 2, 4, 8.
        for (x, want) in [(2.0, 0.25), (4.0, 0.375), (8.0, 0.4375)] {
            let p = predict(&input(x)).loss_share;
            assert!((p - want).abs() < 1e-12, "X={x}: {p} vs {want}");
        }
    }

    #[test]
    fn unstable_root_is_one() {
        let i = input(4.0);
        let r = solve_loss_share(i.queue_bytes(), i.bdp_bytes());
        assert!((r.unstable - 1.0).abs() < 1e-12);
    }

    #[test]
    fn preconditions_named() {
        assert_eq!(
            failed_preconditions(&input(0.5)),
            vec![Precondition::DeepQueue, Precondition::QueueDrainsFast]
        );
        assert!(failed_preconditions(&input(2.0)).is_empty());
        // Deep in BDP multiples but draining in 33 ms: the fluid-
        // timescale precondition catches what the X threshold alone
        // would admit.
        let fast = ModelInput {
            base_rtt: SimDuration::from_micros(16_500),
            queue_mult: 2.0,
            ..input(2.0)
        };
        assert_eq!(
            failed_preconditions(&fast),
            vec![Precondition::QueueDrainsFast]
        );
        let mut i = input(4.0);
        i.n_bbr = 2;
        assert_eq!(failed_preconditions(&i), vec![Precondition::SingleBbrFlow]);
        i.n_bbr = 1;
        i.n_loss = 0;
        assert_eq!(
            failed_preconditions(&i),
            vec![Precondition::SynchronizedLossCompetitor]
        );
    }

    #[test]
    fn grade_cell_thresholds() {
        let cell = BulkCell {
            capacity_mbps: 25,
            base_rtt: SimDuration::from_micros(16_500),
            queue_mult: 4.0,
            n_cubic: 1,
        };
        let m = |share: f64| BulkMeasurement {
            loss_share: share,
            bbr_share: 1.0 - share,
            goodputs_mbps: vec![share * 25.0, (1.0 - share) * 25.0],
            jain: jains_index(&[share, 1.0 - share]),
            utilization: 1.0,
            checks_performed: 0,
        };
        // p* = 0.375 at X = 4.
        assert_eq!(grade_cell(&cell, m(0.375)).verdict, CellVerdict::Within);
        assert_eq!(grade_cell(&cell, m(0.70)).verdict, CellVerdict::Diverged);
        let shallow = BulkCell {
            queue_mult: 0.5,
            ..cell
        };
        assert_eq!(
            grade_cell(&shallow, m(0.05)).verdict,
            CellVerdict::Inapplicable(Precondition::DeepQueue)
        );
    }

    proptest! {
        /// For all valid inputs the stable root is a proper share,
        /// strictly inside (0, 1).
        #[test]
        fn share_in_unit_interval(
            x in 2.0f64..64.0,
            cap in 5u64..200,
            rtt_us in 2_000u64..200_000,
            n in 1u32..8,
        ) {
            let i = ModelInput {
                capacity: BitRate::from_mbps(cap),
                base_rtt: SimDuration::from_micros(rtt_us),
                queue_mult: x,
                n_loss: n,
                n_bbr: 1,
            };
            let p = predict(&i).loss_share;
            prop_assert!(p > 0.0 && p < 1.0, "p = {p}");
        }

        /// The solved share is monotone non-decreasing in the queue
        /// multiple X.
        #[test]
        fn share_monotone_in_queue_mult(
            x in 2.0f64..64.0,
            dx in 0.0f64..32.0,
            cap in 5u64..200,
            rtt_us in 2_000u64..200_000,
        ) {
            let p_lo = predict(&input_with(cap, rtt_us, x)).loss_share;
            let p_hi = predict(&input_with(cap, rtt_us, x + dx)).loss_share;
            prop_assert!(p_hi >= p_lo - 1e-12, "p({x}) = {p_lo} > p({}) = {p_hi}", x + dx);
        }

        /// Plugging the solved share back into the snippet's cap formula
        /// `2·p·(1−p)·q` reproduces the exposed cap within 1e-9, and the
        /// two sides of the full equilibrium balance to the same
        /// precision (relative).
        #[test]
        fn cap_roundtrip(
            x in 2.0f64..64.0,
            cap in 5u64..200,
            rtt_us in 2_000u64..200_000,
        ) {
            let i = input_with(cap, rtt_us, x);
            let pred = predict(&i);
            let (p, q, b) = (pred.loss_share, i.queue_bytes(), i.bdp_bytes());
            let cap_again = 2.0 * p * (1.0 - p) * q;
            prop_assert!(
                (cap_again - pred.inflight_cap_bytes).abs()
                    <= 1e-9 * pred.inflight_cap_bytes.max(1.0)
            );
            // Full equilibrium: 2(1−p)(b + pq) = (1−p)(q + b).
            let lhs = 2.0 * (1.0 - p) * (b + p * q);
            let rhs = (1.0 - p) * (q + b);
            prop_assert!((lhs - rhs).abs() <= 1e-9 * rhs.max(1.0), "{lhs} vs {rhs}");
        }
    }

    fn input_with(cap: u64, rtt_us: u64, x: f64) -> ModelInput {
        ModelInput {
            capacity: BitRate::from_mbps(cap),
            base_rtt: SimDuration::from_micros(rtt_us),
            queue_mult: x,
            n_loss: 1,
            n_bbr: 1,
        }
    }
}
