//! # gsrepro-testbed
//!
//! The experiment harness that reproduces every table and figure of
//! Xu & Claypool, *"Measurement of Cloud-based Game Streaming System
//! Response to Competing TCP Cubic or TCP BBR Flows"* (IMC '22), on the
//! simulated testbed.
//!
//! * [`config`] — experimental conditions (Table 2): capacity ∈ {15, 25,
//!   35} Mb/s, queue ∈ {0.5×, 2×, 7×} BDP, competitor ∈ {Cubic, BBR},
//!   system ∈ {Stadia, GeForce, Luna}, and the 9-minute timeline with the
//!   competing flow in the middle third;
//! * [`topology`] — builds the testbed network for one condition (game
//!   server, iperf server, router with the shaped bottleneck, clients,
//!   RTT equalized at 16.5 ms as in the paper);
//! * [`runner`] — executes conditions for many seeded iterations, in
//!   parallel across OS threads, collecting per-run series;
//! * [`metrics`] — response time, recovery time, adaptiveness *A*,
//!   fairness (normalized bitrate difference), plus the harm metric from
//!   the paper's future-work section;
//! * [`experiments`] — one entry point per table/figure (Table 1, Figure
//!   2, Figure 3, Figure 4, Tables 3-5, the tech-report loss tables);
//! * [`ablation`] — the DESIGN.md ablations: controller-archetype swap,
//!   BBR in-flight-cap sweep, AQM sweep;
//! * [`report`] — ASCII tables/heatmaps and CSV emission;
//! * [`model`] — the Ware BBRv1 inflight-cap fairness model and the
//!   model oracle: closed-form Cubic-vs-BBR convergence shares, with
//!   validity preconditions, graded against measured bulk-flow grids;
//! * [`sketch`] — bounded log-linear percentile sketches for streaming
//!   aggregation;
//! * [`campaign`] — the fleet engine: shard 100k-session sweeps across
//!   cores, stream metrics into sketches (flat memory), and checkpoint
//!   shards to a resumable manifest with bit-identical aggregates;
//! * [`chaos`] — adversarial trial campaigns: random conditions ×
//!   random disturbance schedules under full oracles, a watchdog and a
//!   determinism oracle, with delta-debugging shrinking to minimal,
//!   replayable repro files.

pub mod ablation;
pub mod campaign;
pub mod chaos;
pub mod config;
pub mod experiments;
pub mod metrics;
pub mod model;
pub mod report;
pub mod runner;
pub mod scorecard;
pub mod sketch;
pub mod topology;

pub use campaign::{run_campaign, CampaignResult, CampaignSpec, CondAggregate, FleetSample};
pub use chaos::{run_chaos, ChaosReport, ChaosSpec, ChaosVerdict, Perturbation, Trial};
pub use config::{Aqm, Condition, Grid, Timeline};
pub use gsrepro_gamestream::SystemKind;
pub use gsrepro_tcp::CcaKind;
pub use model::{model_scorecard, run_model_oracle, CellVerdict, OracleReport, OracleSpec};
pub use runner::{run_condition, run_many, ConditionResult, RunResult};
pub use sketch::MetricSketch;
