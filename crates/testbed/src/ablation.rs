//! Ablation experiments for the design decisions DESIGN.md calls out.
//!
//! * **D2 — controller archetypes**: swap the controller among the three
//!   system profiles. If the paper's fairness pattern follows the control
//!   law rather than the profile's bitrate envelope, a Stadia-envelope
//!   stream driven by TFRC must behave like Luna, and so on.
//! * **D3 — BBR's in-flight cap**: vary BBR's PROBE_BW `cwnd_gain`. The
//!   paper attributes the halved RTTs at 7×-BDP queues (Table 4, BBR
//!   columns) to the 2×BDP cap; without the cap the BBR column should
//!   collapse toward the Cubic column.
//! * **D1 — queue discipline**: re-run a bloated-queue condition under
//!   CoDel and FQ-CoDel (the paper's future-work AQM question).

use std::fmt;

use gsrepro_gamestream::profile::ControllerKind;
use gsrepro_gamestream::SystemKind;
use gsrepro_netsim::net::{AgentId, NetworkBuilder};
use gsrepro_netsim::queue::QueueSpec;
use gsrepro_netsim::{LinkSpec, Shaper};
use gsrepro_simcore::{BitRate, SimDuration, SimTime};
use gsrepro_tcp::{Bbr, CcaKind, TcpReceiver, TcpSender, TcpSenderConfig};

use crate::config::{Aqm, Condition, Timeline, EQUALIZED_RTT};
use crate::metrics;
use crate::report::TextTable;
use crate::runner::run_many;

/// One cell of the controller-swap ablation.
pub struct SwapCell {
    /// The system profile (bitrate envelope, frame statistics).
    pub profile: SystemKind,
    /// The controller archetype actually driving the encoder.
    pub controller: ControllerKind,
    /// Competitor.
    pub cca: CcaKind,
    /// Mean fairness across runs.
    pub fairness: f64,
}

/// D2: every profile × every controller × both CCAs at 25 Mb/s, 2×-BDP.
pub struct ControllerSwap {
    /// All 18 cells.
    pub cells: Vec<SwapCell>,
}

/// Run the controller-swap ablation.
pub fn controller_swap(timeline: Timeline, iterations: u32, threads: usize) -> ControllerSwap {
    let controllers = [
        ControllerKind::Gcc,
        ControllerKind::DelayConservative,
        ControllerKind::Tfrc,
    ];
    let mut conditions = Vec::new();
    for &cca in &[CcaKind::Cubic, CcaKind::Bbr] {
        for &profile in &SystemKind::ALL {
            for &ctrl in &controllers {
                let mut c = Condition::new(profile, Some(cca), 25, 2.0).with_timeline(timeline);
                c.controller_override = Some(ctrl);
                conditions.push(c);
            }
        }
    }
    let results = run_many(&conditions, iterations, threads);
    let cells = results
        .iter()
        .map(|cr| {
            let n = cr.runs.len().max(1) as f64;
            let fairness = cr
                .runs
                .iter()
                .map(|r| metrics::fairness(r, &cr.condition))
                .sum::<f64>()
                / n;
            SwapCell {
                profile: cr.condition.system,
                controller: cr.condition.controller_override.expect("override set"),
                cca: cr.condition.cca.expect("competing condition"),
                fairness,
            }
        })
        .collect();
    ControllerSwap { cells }
}

impl ControllerSwap {
    /// Fairness of (profile, controller, cca).
    pub fn fairness(
        &self,
        profile: SystemKind,
        controller: ControllerKind,
        cca: CcaKind,
    ) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.profile == profile && c.controller == controller && c.cca == cca)
            .map(|c| c.fairness)
    }

    /// The headline check: does fairness cluster by controller rather than
    /// by profile? Returns (mean spread within controller groups, mean
    /// spread within profile groups); the first should be smaller.
    pub fn clustering(&self, cca: CcaKind) -> (f64, f64) {
        let spread = |groups: Vec<Vec<f64>>| -> f64 {
            let mut total = 0.0;
            let mut n = 0;
            for g in groups {
                if g.len() < 2 {
                    continue;
                }
                let mean = g.iter().sum::<f64>() / g.len() as f64;
                total += g.iter().map(|v| (v - mean).abs()).sum::<f64>() / g.len() as f64;
                n += 1;
            }
            if n == 0 {
                0.0
            } else {
                total / n as f64
            }
        };
        let by_controller: Vec<Vec<f64>> = [
            ControllerKind::Gcc,
            ControllerKind::DelayConservative,
            ControllerKind::Tfrc,
        ]
        .iter()
        .map(|&ctrl| {
            self.cells
                .iter()
                .filter(|c| c.controller == ctrl && c.cca == cca)
                .map(|c| c.fairness)
                .collect()
        })
        .collect();
        let by_profile: Vec<Vec<f64>> = SystemKind::ALL
            .iter()
            .map(|&p| {
                self.cells
                    .iter()
                    .filter(|c| c.profile == p && c.cca == cca)
                    .map(|c| c.fairness)
                    .collect()
            })
            .collect();
        (spread(by_controller), spread(by_profile))
    }
}

impl fmt::Display for ControllerSwap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "D2 ablation — fairness at 25 Mb/s, 2x BDP, by profile × controller"
        )?;
        for &cca in &[CcaKind::Cubic, CcaKind::Bbr] {
            writeln!(f, "\nvs {cca}:")?;
            let mut t = TextTable::new(vec!["profile \\ controller", "gcc", "delay-cons", "tfrc"]);
            for &p in &SystemKind::ALL {
                let mut row = vec![p.label().to_string()];
                for ctrl in [
                    ControllerKind::Gcc,
                    ControllerKind::DelayConservative,
                    ControllerKind::Tfrc,
                ] {
                    let v = self.fairness(p, ctrl, cca).unwrap_or(f64::NAN);
                    row.push(format!("{v:+.2}"));
                }
                t.row(row);
            }
            write!(f, "{}", t.render())?;
            let (by_ctrl, by_prof) = self.clustering(cca);
            writeln!(
                f,
                "spread within controller columns {by_ctrl:.3} vs within profile rows {by_prof:.3} \
                 (columns should be tighter: behaviour follows the control law)"
            )?;
        }
        Ok(())
    }
}

/// D3: BBR `cwnd_gain` vs a Cubic competitor at a bloated queue.
pub struct CwndGainCell {
    /// PROBE_BW cwnd gain.
    pub gain: f64,
    /// BBR goodput share of capacity.
    pub bbr_share: f64,
    /// Mean RTT (ms) during coexistence.
    pub rtt_ms: f64,
}

/// Run the D3 ablation: two TCP flows (Cubic vs BBR-with-gain) on the
/// testbed bottleneck at `queue_mult` × BDP.
pub fn bbr_cwnd_gain(gains: &[f64], queue_mult: f64, secs: u64, seed: u64) -> Vec<CwndGainCell> {
    let capacity = BitRate::from_mbps(25);
    let queue = capacity.bdp(EQUALIZED_RTT).mul_f64(queue_mult);
    gains
        .iter()
        .map(|&gain| {
            let mut b = NetworkBuilder::new(seed);
            let s = b.add_node("servers");
            let c = b.add_node("client");
            b.link(
                s,
                c,
                LinkSpec {
                    shaper: Shaper::rate(capacity),
                    delay: SimDuration::from_micros(8_250),
                    queue: QueueSpec::DropTail { limit: queue },
                    jitter: SimDuration::ZERO,
                    loss_prob: 0.0,
                    dup_prob: 0.0,
                },
            );
            b.link(c, s, LinkSpec::lan(SimDuration::from_micros(8_250)));
            let cubic_f = b.flow("cubic");
            let cubic_a = b.flow("cubic-ack");
            let bbr_f = b.flow("bbr");
            let bbr_a = b.flow("bbr-ack");
            let cubic_cfg = TcpSenderConfig::new(cubic_f, c, AgentId(1), CcaKind::Cubic);
            let cubic_tx = b.add_agent(s, Box::new(TcpSender::new(cubic_cfg)));
            b.add_agent(c, Box::new(TcpReceiver::new(cubic_a, s, cubic_tx)));
            let bbr_cfg = TcpSenderConfig::new(bbr_f, c, AgentId(3), CcaKind::Bbr);
            let mss = bbr_cfg.mss.as_u64();
            let bbr_tx = b.add_agent(
                s,
                Box::new(TcpSender::with_controller(
                    bbr_cfg,
                    Box::new(Bbr::with_cwnd_gain(mss, gain)),
                )),
            );
            b.add_agent(c, Box::new(TcpReceiver::new(bbr_a, s, bbr_tx)));
            let mut sim = b.build();
            sim.run_until(SimTime::from_secs(secs));
            let from = SimTime::from_secs(secs / 3);
            let to = SimTime::from_secs(secs);
            let bbr_gp = sim.goodput_mbps(bbr_f, from, to);
            // RTT = downstream OWD (queueing happens there) + clean
            // 8.25 ms return path.
            let rtt = sim.net.monitor().stats(cubic_f).owd.mean() + 8.25;
            CwndGainCell {
                gain,
                bbr_share: bbr_gp / capacity.as_mbps(),
                rtt_ms: rtt,
            }
        })
        .collect()
}

/// D1: the paper's drop-tail vs CoDel vs FQ-CoDel at a bloated queue.
pub struct AqmCell {
    /// Queue discipline.
    pub aqm: Aqm,
    /// System.
    pub system: SystemKind,
    /// Mean fairness.
    pub fairness: f64,
    /// Mean RTT during competition (ms).
    pub rtt_ms: f64,
}

/// Run the AQM ablation for all systems vs Cubic at 7×-BDP.
pub fn aqm_sweep(timeline: Timeline, iterations: u32, threads: usize) -> Vec<AqmCell> {
    let mut conditions = Vec::new();
    for &aqm in &[Aqm::DropTail, Aqm::CoDel, Aqm::FqCoDel] {
        for &sys in &SystemKind::ALL {
            conditions.push(
                Condition::new(sys, Some(CcaKind::Cubic), 25, 7.0)
                    .with_aqm(aqm)
                    .with_timeline(timeline),
            );
        }
    }
    let results = run_many(&conditions, iterations, threads);
    results
        .iter()
        .map(|cr| {
            let n = cr.runs.len().max(1) as f64;
            let fairness = cr
                .runs
                .iter()
                .map(|r| metrics::fairness(r, &cr.condition))
                .sum::<f64>()
                / n;
            let tl = &cr.condition.timeline;
            let rtt = cr.rtt_pooled(tl.iperf_start, tl.iperf_stop).mean();
            AqmCell {
                aqm: cr.condition.aqm,
                system: cr.condition.system,
                fairness,
                rtt_ms: rtt,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cwnd_gain_controls_standing_queue() {
        // Higher cwnd gain → more in flight → higher shares/queueing at a
        // bloated buffer. The standard 2.0 must sit between a sub-BDP gain
        // and an aggressive 4.0.
        let cells = bbr_cwnd_gain(&[1.0, 2.0, 4.0], 7.0, 40, 5);
        assert_eq!(cells.len(), 3);
        assert!(
            cells[0].bbr_share < cells[2].bbr_share + 0.05,
            "share should not decrease with gain: {} vs {}",
            cells[0].bbr_share,
            cells[2].bbr_share
        );
        for c in &cells {
            assert!(c.rtt_ms > 16.0, "RTT {} must include queueing", c.rtt_ms);
            assert!((0.0..=1.0).contains(&c.bbr_share));
        }
    }

    #[test]
    fn controller_swap_smoke() {
        let swap = controller_swap(Timeline::scaled(0.06), 1, crate::runner::default_threads());
        assert_eq!(swap.cells.len(), 18);
        // Every (profile, controller, cca) cell exists.
        for &p in &SystemKind::ALL {
            for ctrl in [
                ControllerKind::Gcc,
                ControllerKind::DelayConservative,
                ControllerKind::Tfrc,
            ] {
                assert!(swap.fairness(p, ctrl, CcaKind::Cubic).is_some());
                assert!(swap.fairness(p, ctrl, CcaKind::Bbr).is_some());
            }
        }
        let rendered = format!("{swap}");
        assert!(rendered.contains("gcc"));
    }
}
