//! Builds the simulated testbed for one experimental condition.
//!
//! The paper's physical layout (Figure 1): game client and iperf client on
//! a 1 Gb/s LAN behind a Raspberry Pi router; the router's downstream link
//! carries the `tbf` rate limit + byte-limited queue and `netem` delay;
//! game and iperf servers sit across the campus network/Internet, with
//! per-path `netem` padding so every flow sees ≈16.5 ms RTT.
//!
//! Simulated equivalent:
//!
//! ```text
//!  game_server ──4ms──▸ router ══bottleneck (rate, queue, 4.25ms)══▸ switch ──0──▸ game_client
//!  iperf_server ─4ms──▸ router                                        switch ──0──▸ iperf_client
//!  (upstream links are unshaped with matching delays: RTT = 16.5 ms)
//! ```
//!
//! The downstream bottleneck is the only shaped link, shared by both
//! flows — exactly the contended resource of the paper's experiments.

use gsrepro_gamestream::client::{StreamClient, StreamClientConfig};
use gsrepro_gamestream::server::StreamServer;
use gsrepro_netsim::apps::{EchoTo, PingAgent};
use gsrepro_netsim::link::LinkId;
use gsrepro_netsim::net::{AgentId, NetworkBuilder, Sim};
use gsrepro_netsim::queue::QueueSpec;
use gsrepro_netsim::wire::FlowId;
use gsrepro_netsim::LinkSpec;
use gsrepro_simcore::rng::stream_id;
use gsrepro_simcore::{SimDuration, TelemetryConfig};
use gsrepro_tcp::{TcpReceiver, TcpSender, TcpSenderConfig};

use crate::config::{Aqm, Condition};

/// Handles into a built testbed, used to extract results after the run.
pub struct Testbed {
    /// The simulation itself.
    pub sim: Sim,
    /// Game media flow (downstream).
    pub game_flow: FlowId,
    /// Game feedback flow (upstream).
    pub feedback_flow: FlowId,
    /// iperf data flow (downstream); absent for solo conditions.
    pub iperf_flow: Option<FlowId>,
    /// Ping flow.
    pub ping_flow: FlowId,
    /// The streaming server agent.
    pub server: AgentId,
    /// The streaming client agent.
    pub client: AgentId,
    /// The TCP sender agent, if a competitor is configured.
    pub tcp_sender: Option<AgentId>,
    /// The ping agent at the game client.
    pub ping: AgentId,
    /// The bottleneck link id (for backlog inspection).
    pub bottleneck: LinkId,
}

/// Ping cadence. The testbed scripts ran the stock `ping` (1 s); we probe
/// 5× faster for tighter per-window statistics, which adds only ~420 b/s.
pub const PING_INTERVAL: SimDuration = SimDuration::from_millis(200);

/// The game-server → router WAN link, fixed by construction order (it is
/// the first link the builder creates; asserted in [`build_full`]). The
/// chaos campaign disturbs it as the "Internet weather" leg.
pub const WAN_GAME_LINK: LinkId = LinkId(0);

/// The shaped bottleneck link, fixed by construction order (two WAN
/// duplexes = links 0–3, then the bottleneck; asserted in [`build_full`]).
pub const BOTTLENECK_LINK: LinkId = LinkId(4);

/// Build the testbed network for `cond`, seeded for iteration `iter`.
pub fn build(cond: &Condition, iter: u32) -> Testbed {
    build_with(cond, iter, None)
}

/// [`build`], optionally with an enabled telemetry recorder. Tracing must
/// not perturb the simulation: the recorder only observes, so a traced and
/// an untraced run of the same seed produce identical results.
pub fn build_with(cond: &Condition, iter: u32, telemetry: Option<TelemetryConfig>) -> Testbed {
    build_full(cond, iter, telemetry, false)
}

/// [`build_with`], optionally with runtime invariant oracles enabled. Like
/// tracing, the oracles only observe (they consume no randomness and
/// schedule nothing), so a checked run is bit-identical to an unchecked
/// one — it just panics with a structured report if a conservation law
/// breaks mid-run.
pub fn build_full(
    cond: &Condition,
    iter: u32,
    telemetry: Option<TelemetryConfig>,
    checks: bool,
) -> Testbed {
    let seed = cond.seed(iter);
    let mut b = NetworkBuilder::new(seed).checks(checks);
    if let Some(cfg) = telemetry {
        b = b.telemetry(cfg);
    }

    let game_server = b.add_node("game-server");
    let iperf_server = b.add_node("iperf-server");
    let router = b.add_node("router");
    let switch = b.add_node("switch");
    let game_client = b.add_node("game-client");
    let iperf_client = b.add_node("iperf-client");

    // Server-side paths: 4 ms each way (campus/Internet padding), with
    // optional jitter standing in for Internet weather.
    let wan = SimDuration::from_millis(4);
    let wan_spec = LinkSpec::lan(wan).with_jitter(cond.wan_jitter);
    b.duplex(game_server, router, wan_spec.clone());
    b.duplex(iperf_server, router, wan_spec);

    // The bottleneck: shaped downstream, unshaped upstream; 4.25 ms each
    // way completes the 16.5 ms RTT budget.
    let half = SimDuration::from_micros(4_250);
    let bottleneck = b.link(
        router,
        switch,
        LinkSpec {
            shaper: gsrepro_netsim::Shaper::rate(cond.capacity),
            delay: half,
            queue: match cond.aqm {
                Aqm::DropTail => QueueSpec::DropTail {
                    limit: cond.queue_bytes(),
                },
                Aqm::CoDel => QueueSpec::codel_default(cond.queue_bytes()),
                Aqm::FqCoDel => QueueSpec::fq_codel_default(cond.queue_bytes()),
            },
            jitter: SimDuration::ZERO,
            loss_prob: 0.0,
            dup_prob: 0.0,
        },
    );
    b.link(switch, router, LinkSpec::lan(half));
    assert_eq!(
        bottleneck, BOTTLENECK_LINK,
        "link wiring changed: update the id map"
    );

    // LAN segments to the clients: negligible delay, never the bottleneck.
    b.duplex(switch, game_client, LinkSpec::lan(SimDuration::ZERO));
    b.duplex(switch, iperf_client, LinkSpec::lan(SimDuration::ZERO));

    // Flows.
    let game_flow = b.flow(format!("{}-media", cond.system.label()));
    let feedback_flow = b.flow("feedback");
    let ping_flow = b.flow("ping");
    let (iperf_flow, ack_flow) = match cond.cca {
        Some(cca) => (
            Some(b.flow(format!("iperf-{}", cca.label()))),
            Some(b.flow("iperf-ack")),
        ),
        None => (None, None),
    };

    // Agents. Ids are assigned in insertion order; capture them as we go.
    let mut profile = cond.system.profile();
    if let Some(ctrl) = cond.controller_override {
        profile.controller = ctrl;
    }

    // Agent 0: stream client (knows the server's agent id = 1 ahead of
    // time; ids are deterministic by construction order).
    let client_agent_id = AgentId(0);
    let server_agent_id = AgentId(1);
    let client = b.add_agent(
        game_client,
        Box::new(StreamClient::new(StreamClientConfig::new(
            feedback_flow,
            game_server,
            server_agent_id,
        ))),
    );
    assert_eq!(
        client, client_agent_id,
        "agent wiring changed: update the id map"
    );

    let source = profile.build_source(seed, stream_id("frames"));
    let controller = profile.build_controller();
    let server = b.add_agent(
        game_server,
        Box::new(StreamServer::with_fps_policy(
            game_flow,
            game_client,
            client_agent_id,
            source,
            controller,
            profile.fps_policy,
        )),
    );
    assert_eq!(
        server, server_agent_id,
        "agent wiring changed: update the id map"
    );

    // Agent 2: ping at the game client; agent 3: echo responder at the
    // game server (the paper pings the game server from the client).
    let ping = b.add_agent(
        game_client,
        Box::new(PingAgent::new(
            ping_flow,
            game_server,
            AgentId(3),
            PING_INTERVAL,
        )),
    );
    b.add_agent(game_server, Box::new(EchoTo::new(ping_flow, ping)));

    // Agents 4/5: the TCP pair, when competing.
    let tcp_sender = match (cond.cca, iperf_flow, ack_flow) {
        (Some(cca), Some(data), Some(acks)) => {
            let receiver_id = AgentId(5);
            let cfg = TcpSenderConfig::new(data, iperf_client, receiver_id, cca)
                .active_during(cond.timeline.iperf_start, cond.timeline.iperf_stop);
            let sender = b.add_agent(iperf_server, Box::new(TcpSender::new(cfg)));
            let receiver = b.add_agent(
                iperf_client,
                Box::new(TcpReceiver::new(acks, iperf_server, sender)),
            );
            assert_eq!(
                receiver, receiver_id,
                "agent wiring changed: update the id map"
            );
            Some(sender)
        }
        _ => None,
    };

    // Lower the condition's path scenario onto the bottleneck. Steps ride
    // the ordinary event queue, so a scenario run is as deterministic (and
    // as trace-transparent) as a static one.
    let mut sim = b.build();
    sim.apply_scenario(
        &cond
            .scenario
            .spec(bottleneck, cond.capacity, cond.queue_bytes()),
    );

    Testbed {
        sim,
        game_flow,
        feedback_flow,
        iperf_flow,
        ping_flow,
        server,
        client,
        tcp_sender,
        ping,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Timeline;
    use gsrepro_gamestream::SystemKind;
    use gsrepro_simcore::SimTime;
    use gsrepro_tcp::CcaKind;

    #[test]
    fn rtt_is_equalized_at_16_5_ms() {
        // Solo run: ping should report ~16.5 ms when the queue is empty.
        let cond = super::super::config::Condition::new(SystemKind::Luna, None, 35, 2.0)
            .with_timeline(Timeline::scaled(0.05));
        let mut tb = build(&cond, 0);
        tb.sim.run_until(SimTime::from_secs(10));
        let ping: &PingAgent = tb.sim.net.agent(tb.ping);
        let mean = ping.rtt_samples().mean();
        assert!(
            (mean - 16.5).abs() < 3.0,
            "equalized RTT should be ≈16.5 ms, got {mean}"
        );
    }

    #[test]
    fn solo_condition_has_no_tcp_agents() {
        let cond = super::super::config::Condition::new(SystemKind::Stadia, None, 25, 2.0)
            .with_timeline(Timeline::scaled(0.05));
        let tb = build(&cond, 0);
        assert!(tb.tcp_sender.is_none());
        assert!(tb.iperf_flow.is_none());
    }

    #[test]
    fn competing_condition_wires_tcp() {
        let cond =
            super::super::config::Condition::new(SystemKind::Stadia, Some(CcaKind::Cubic), 25, 2.0)
                .with_timeline(Timeline::scaled(0.05));
        let tb = build(&cond, 0);
        assert!(tb.tcp_sender.is_some());
        assert!(tb.iperf_flow.is_some());
    }

    #[test]
    fn game_stream_flows_end_to_end() {
        let cond = super::super::config::Condition::new(SystemKind::GeForce, None, 35, 2.0)
            .with_timeline(Timeline::scaled(0.05));
        let mut tb = build(&cond, 0);
        tb.sim.run_until(SimTime::from_secs(5));
        let st = tb.sim.net.monitor().stats(tb.game_flow);
        let gp = st.mean_goodput_mbps(SimTime::from_secs(2), SimTime::from_secs(5));
        assert!(
            (gp - 24.5).abs() < 3.0,
            "unconstrained GeForce should stream ≈24.5 Mb/s, got {gp}"
        );
        let client: &StreamClient = tb.sim.net.agent(tb.client);
        let fps = client.mean_fps(SimTime::from_secs(2), SimTime::from_secs(5));
        assert!(fps > 55.0, "uncongested fps {fps}");
    }
}
