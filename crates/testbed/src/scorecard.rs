//! Claim-by-claim verification of the paper's findings.
//!
//! The paper's contribution is a set of comparative findings, not absolute
//! numbers. This module encodes each finding as a checkable predicate over
//! the experiment grids and reports PASS / PARTIAL / FAIL — the honest
//! summary of how much of the paper this reproduction reproduces, computed
//! from data rather than hand-written.

use std::fmt;

use gsrepro_gamestream::SystemKind;
use gsrepro_tcp::CcaKind;

use crate::config::{Aqm, CAPACITIES_MBPS, CCAS_3D, EQUALIZED_RTT, QUEUE_MULTS};
use crate::experiments::{aqm3d, figure3, figure4, GridResults};
use crate::metrics;
use crate::report::TextTable;

/// How well a claim reproduced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The claim holds as stated.
    Pass,
    /// The direction holds but magnitudes or a minority of cells deviate.
    Partial,
    /// The claim does not hold in this reproduction.
    Fail,
}

impl Verdict {
    /// Rendered name ("PASS", "PARTIAL", "FAIL").
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "PASS",
            Verdict::Partial => "PARTIAL",
            Verdict::Fail => "FAIL",
        }
    }
}

/// One verified claim.
pub struct Claim {
    /// Short identifier ("F3-stadia-cubic", ...).
    pub id: &'static str,
    /// The paper's statement being checked.
    pub statement: &'static str,
    /// Outcome.
    pub verdict: Verdict,
    /// Measured evidence (one line).
    pub evidence: String,
}

/// The full scorecard.
pub struct Scorecard {
    /// All verified claims.
    pub claims: Vec<Claim>,
}

impl Scorecard {
    /// The claim-id → verdict matrix as stable, diffable text — the part
    /// of the scorecard worth pinning as a golden snapshot. Verdicts are
    /// already threshold-graded, so unlike the float evidence strings they
    /// only change when a finding genuinely flips.
    pub fn verdict_matrix(&self) -> String {
        let mut out = String::new();
        for c in &self.claims {
            out.push_str(c.id);
            out.push(' ');
            out.push_str(c.verdict.label());
            out.push('\n');
        }
        out
    }

    /// Count of (pass, partial, fail).
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for c in &self.claims {
            match c.verdict {
                Verdict::Pass => t.0 += 1,
                Verdict::Partial => t.1 += 1,
                Verdict::Fail => t.2 += 1,
            }
        }
        t
    }
}

/// Fraction-based verdict: PASS above `pass_at`, PARTIAL above `partial_at`.
/// Shared with the model-oracle scorecard in [`crate::model`].
pub(crate) fn graded(frac: f64, pass_at: f64, partial_at: f64) -> Verdict {
    if frac >= pass_at {
        Verdict::Pass
    } else if frac >= partial_at {
        Verdict::Partial
    } else {
        Verdict::Fail
    }
}

/// Build the scorecard from a solo grid and a competing grid.
pub fn scorecard(solo: &GridResults, grid: &GridResults) -> Scorecard {
    let mut claims = Vec::new();
    let f3 = figure3(grid);
    let f4 = figure4(grid);

    // -- Table 1: unconstrained bitrate ordering ---------------------------
    // (checked against the profiles' calibration rather than a separate
    // unconstrained run; the table1 binary reports the measured values.)

    // -- Solo behaviour ----------------------------------------------------
    {
        let mut ok = 0;
        let mut n = 0;
        let mut worst: f64 = 0.0;
        for cr in &solo.results {
            let tl = &cr.condition.timeline;
            let loss = cr.loss_mean(tl.iperf_start, tl.iperf_stop);
            n += 1;
            if loss < 0.02 {
                ok += 1;
            }
            worst = worst.max(loss);
        }
        claims.push(Claim {
            id: "solo-loss",
            statement: "without a competing flow, loss rates are near zero",
            verdict: graded(ok as f64 / n.max(1) as f64, 0.95, 0.8),
            evidence: format!("{ok}/{n} solo cells < 2% loss; worst {:.1}%", worst * 100.0),
        });
    }
    {
        let mut ok = 0;
        let mut n = 0;
        for cr in &solo.results {
            let tl = &cr.condition.timeline;
            let rtt = cr.rtt_pooled(tl.iperf_start, tl.iperf_stop).mean();
            n += 1;
            if (14.0..40.0).contains(&rtt) {
                ok += 1;
            }
        }
        claims.push(Claim {
            id: "solo-rtt",
            statement: "solo RTTs stay low (≈16-35 ms), never at the queue limit",
            verdict: graded(ok as f64 / n.max(1) as f64, 0.95, 0.8),
            evidence: format!("{ok}/{n} solo cells in 14-40 ms"),
        });
    }

    // -- Figure 3: fairness pattern ----------------------------------------
    let cell = |sys, cca, cap, q| f3.cell(sys, cca, cap, q).unwrap_or(f64::NAN);
    {
        // Stadia vs Cubic: more than fair at small/medium queues.
        let mut ok = 0;
        for &cap in &CAPACITIES_MBPS {
            for &q in &[0.5, 2.0] {
                if cell(SystemKind::Stadia, CcaKind::Cubic, cap, q) > 0.0 {
                    ok += 1;
                }
            }
        }
        claims.push(Claim {
            id: "F3-stadia-cubic",
            statement: "Stadia takes more than its fair share from Cubic (small/medium queues)",
            verdict: graded(ok as f64 / 6.0, 0.99, 0.66),
            evidence: format!("{ok}/6 cells warm"),
        });
    }
    {
        // Stadia / Luna cool at 7x vs Cubic.
        let mut ok = 0;
        for &cap in &CAPACITIES_MBPS {
            for sys in [SystemKind::Stadia, SystemKind::Luna] {
                if cell(sys, CcaKind::Cubic, cap, 7.0) < 0.0 {
                    ok += 1;
                }
            }
        }
        claims.push(Claim {
            id: "F3-bloat-cool",
            statement: "large (7x) queues flip Stadia and Luna below fair vs Cubic",
            verdict: graded(ok as f64 / 6.0, 0.99, 0.66),
            evidence: format!("{ok}/6 cells cool at 7x"),
        });
    }
    {
        // GeForce always below fair, vs both CCAs.
        let mut ok = 0;
        let mut n = 0;
        for &cca in &[CcaKind::Cubic, CcaKind::Bbr] {
            for &cap in &CAPACITIES_MBPS {
                for &q in &QUEUE_MULTS {
                    n += 1;
                    if cell(SystemKind::GeForce, cca, cap, q) < 0.0 {
                        ok += 1;
                    }
                }
            }
        }
        claims.push(Claim {
            id: "F3-geforce-defers",
            statement: "GeForce always gets less than its fair share",
            verdict: graded(ok as f64 / n as f64, 0.99, 0.8),
            evidence: format!("{ok}/{n} cells cool"),
        });
    }
    {
        // Luna ≈ fair vs Cubic at 0.5x/2x.
        let mut ok = 0;
        for &cap in &CAPACITIES_MBPS {
            for &q in &[0.5, 2.0] {
                if cell(SystemKind::Luna, CcaKind::Cubic, cap, q).abs() < 0.2 {
                    ok += 1;
                }
            }
        }
        claims.push(Claim {
            id: "F3-luna-cubic-fair",
            statement: "Luna shares roughly fairly with Cubic (small/medium queues)",
            verdict: graded(ok as f64 / 6.0, 0.99, 0.66),
            evidence: format!("{ok}/6 cells within ±0.2 of fair"),
        });
    }
    {
        // Luna loses its fair share vs BBR.
        let mut ok = 0;
        let mut n = 0;
        for &cap in &CAPACITIES_MBPS {
            for &q in &QUEUE_MULTS {
                n += 1;
                if cell(SystemKind::Luna, CcaKind::Bbr, cap, q) < 0.05 {
                    ok += 1;
                }
            }
        }
        claims.push(Claim {
            id: "F3-luna-bbr",
            statement: "Luna loses its fair share to BBR",
            verdict: graded(ok as f64 / n as f64, 0.99, 0.6),
            evidence: format!("{ok}/{n} cells at/below fair"),
        });
    }
    {
        // Luna-BBR coolest at small queue + high capacity.
        let coolest = cell(SystemKind::Luna, CcaKind::Bbr, 35, 0.5);
        let mut is_min = true;
        for &cap in &CAPACITIES_MBPS {
            for &q in &QUEUE_MULTS {
                if cell(SystemKind::Luna, CcaKind::Bbr, cap, q) < coolest - 1e-9 {
                    is_min = false;
                }
            }
        }
        claims.push(Claim {
            id: "F3-luna-bbr-coolest",
            statement: "Luna vs BBR is coolest at the small queue and high capacity",
            verdict: if is_min {
                Verdict::Pass
            } else {
                Verdict::Partial
            },
            evidence: format!("cell(35, 0.5x) = {coolest:+.2}"),
        });
    }
    {
        // Stadia more fair vs BBR than vs Cubic (mean |fairness| smaller).
        let mean_abs = |cca| {
            let mut s = 0.0;
            let mut n = 0.0;
            for &cap in &CAPACITIES_MBPS {
                for &q in &QUEUE_MULTS {
                    s += cell(SystemKind::Stadia, cca, cap, q).abs();
                    n += 1.0;
                }
            }
            s / n
        };
        let cubic = mean_abs(CcaKind::Cubic);
        let bbr = mean_abs(CcaKind::Bbr);
        claims.push(Claim {
            id: "F3-stadia-bbr-fairer",
            statement: "Stadia is more fair competing with BBR than with Cubic",
            verdict: if bbr < cubic {
                Verdict::Pass
            } else if bbr < cubic * 1.15 {
                Verdict::Partial
            } else {
                Verdict::Fail
            },
            evidence: format!("mean |fairness|: bbr {bbr:.2} vs cubic {cubic:.2}"),
        });
    }
    {
        // Stadia vs BBR at 7x is warmer than vs Cubic at 7x.
        let mut ok = 0;
        for &cap in &CAPACITIES_MBPS {
            let c7 = cell(SystemKind::Stadia, CcaKind::Cubic, cap, 7.0);
            let b7 = cell(SystemKind::Stadia, CcaKind::Bbr, cap, 7.0);
            if b7 > c7 {
                ok += 1;
            }
        }
        claims.push(Claim {
            id: "F3-stadia-7x-warmer-bbr",
            statement: "at 7x queues Stadia is warmer vs BBR than vs Cubic (BBR's inflight cap)",
            verdict: graded(ok as f64 / 3.0, 0.99, 0.5),
            evidence: format!("{ok}/3 capacities"),
        });
    }

    // -- Table 4: RTT signatures -------------------------------------------
    {
        // vs Cubic, RTT ≈ base + full-queue delay.
        let mut ok = 0;
        let mut n = 0;
        for cr in &grid.results {
            if cr.condition.cca != Some(CcaKind::Cubic) {
                continue;
            }
            let tl = &cr.condition.timeline;
            let rtt = cr.rtt_pooled(tl.iperf_start, tl.iperf_stop).mean();
            let qdelay = cr
                .condition
                .capacity
                .tx_time(cr.condition.queue_bytes())
                .as_millis_f64();
            let limit = EQUALIZED_RTT.as_millis_f64() + qdelay;
            n += 1;
            // "Consistently at the limit dictated by the queue size":
            // within 35% of it for medium/large queues, above base always.
            if cr.condition.queue_mult >= 2.0 {
                if rtt > 0.6 * limit && rtt < 1.1 * limit {
                    ok += 1;
                }
            } else if rtt > EQUALIZED_RTT.as_millis_f64() {
                ok += 1;
            }
        }
        claims.push(Claim {
            id: "T4-cubic-queue-limit",
            statement: "with Cubic competing, RTT sits near the queue-size limit",
            verdict: graded(ok as f64 / n.max(1) as f64, 0.9, 0.7),
            evidence: format!("{ok}/{n} cells near limit"),
        });
    }
    {
        // vs BBR at 7x, RTT about half of the Cubic value.
        let mut ratios = Vec::new();
        for &sys in &SystemKind::ALL {
            for &cap in &CAPACITIES_MBPS {
                let get = |cca| {
                    grid.get(sys, Some(cca), cap, 7.0).map(|cr| {
                        let tl = &cr.condition.timeline;
                        cr.rtt_pooled(tl.iperf_start, tl.iperf_stop).mean()
                    })
                };
                if let (Some(c), Some(b)) = (get(CcaKind::Cubic), get(CcaKind::Bbr)) {
                    if c > 0.0 {
                        ratios.push(b / c);
                    }
                }
            }
        }
        let ok = ratios.iter().filter(|&&r| (0.3..0.8).contains(&r)).count();
        let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        claims.push(Claim {
            id: "T4-bbr-half-rtt",
            statement: "at 7x queues, RTT vs BBR is about half the RTT vs Cubic",
            verdict: graded(ok as f64 / ratios.len().max(1) as f64, 0.85, 0.5),
            evidence: format!("{ok}/{} ratios in 0.3-0.8, mean {mean:.2}", ratios.len()),
        });
    }

    // -- Figure 4 / response dynamics ---------------------------------------
    {
        // Response is generally faster than recovery.
        let mut faster = 0;
        let mut n = 0;
        for cr in &grid.results {
            if cr.condition.cca.is_none() {
                continue;
            }
            let tl = &cr.condition.timeline;
            let mut c_sum = 0.0;
            let mut e_sum = 0.0;
            for r in &cr.runs {
                c_sum += metrics::response_time(r, tl).secs;
                e_sum += metrics::recovery_time(r, tl).secs;
            }
            n += 1;
            if c_sum <= e_sum {
                faster += 1;
            }
        }
        claims.push(Claim {
            id: "F4-response-lt-recovery",
            statement: "response to a flow's arrival is faster than recovery after it leaves",
            verdict: graded(faster as f64 / n.max(1) as f64, 0.7, 0.5),
            evidence: format!("{faster}/{n} conditions respond faster than they recover"),
        });
    }
    {
        // GeForce has the lowest adaptiveness centroid per panel... paper:
        // "Stadia has generally the best adaptiveness".
        let mut stadia_best = 0;
        for &cca in &[CcaKind::Cubic, CcaKind::Bbr] {
            let a = |sys| f4.centroid(sys, cca).1;
            if a(SystemKind::Stadia) >= a(SystemKind::GeForce) - 0.05 {
                stadia_best += 1;
            }
        }
        claims.push(Claim {
            id: "F4-stadia-adaptive",
            statement: "Stadia is among the most adaptive systems",
            verdict: graded(stadia_best as f64 / 2.0, 0.99, 0.5),
            evidence: format!("Stadia ≥ GeForce adaptiveness in {stadia_best}/2 panels"),
        });
    }

    // -- Table 5: frame rates -----------------------------------------------
    {
        // Frame rates ≥ ~50 vs Cubic.
        let mut ok = 0;
        let mut n = 0;
        for cr in &grid.results {
            if cr.condition.cca != Some(CcaKind::Cubic) {
                continue;
            }
            let tl = &cr.condition.timeline;
            let fps = cr.fps_pooled(tl.iperf_start, tl.iperf_stop).mean();
            n += 1;
            if fps >= 48.0 {
                ok += 1;
            }
        }
        claims.push(Claim {
            id: "T5-cubic-fps-high",
            statement: "competing with Cubic, frame rates stay high (≈50+ f/s)",
            verdict: graded(ok as f64 / n.max(1) as f64, 0.9, 0.7),
            evidence: format!("{ok}/{n} cells ≥ 48 f/s"),
        });
    }
    {
        // Frame rates degrade vs BBR at small/medium queues; GeForce most
        // resilient.
        let mean_fps = |sys, cca, q| {
            let mut s = 0.0f64;
            let mut n = 0.0f64;
            for &cap in &CAPACITIES_MBPS {
                if let Some(cr) = grid.get(sys, Some(cca), cap, q) {
                    let tl = &cr.condition.timeline;
                    s += cr.fps_pooled(tl.iperf_start, tl.iperf_stop).mean();
                    n += 1.0;
                }
            }
            s / n.max(1.0)
        };
        let mut degrade = 0;
        for &sys in &SystemKind::ALL {
            for &q in &[0.5, 2.0] {
                if mean_fps(sys, CcaKind::Bbr, q) < mean_fps(sys, CcaKind::Cubic, q) - 2.0 {
                    degrade += 1;
                }
            }
        }
        let gf_best = [0.5, 2.0].iter().all(|&q| {
            mean_fps(SystemKind::GeForce, CcaKind::Bbr, q)
                >= mean_fps(SystemKind::Stadia, CcaKind::Bbr, q) - 1.0
        });
        claims.push(Claim {
            id: "T5-bbr-fps-degrades",
            statement: "frame rates degrade vs BBR at small/medium queues; GeForce most resilient",
            verdict: match (degrade >= 5, gf_best) {
                (true, true) => Verdict::Pass,
                (true, false) | (false, true) => Verdict::Partial,
                _ => Verdict::Fail,
            },
            evidence: format!(
                "{degrade}/6 (system, queue) pairs degrade; GeForce ≥ Stadia: {gf_best}"
            ),
        });
    }

    Scorecard { claims }
}

/// Build the 3-D AQM scorecard from an [`crate::config::Grid::aqm3d`] run:
/// the paper's future-work cube, graded as claims about what an AQM at the
/// bottleneck — and an ECN-capable BBRv2 competitor — should change.
pub fn aqm_scorecard(grid: &GridResults) -> Scorecard {
    let t = aqm3d(grid);
    let mut claims = Vec::new();
    let systems = SystemKind::ALL;

    // CoDel keeps the standing queue (and therefore RTT) below drop-tail
    // for every (system, cca) pair — the core AQM promise.
    {
        let mut ok = 0;
        let mut n = 0;
        for &sys in &systems {
            for &cca in &CCAS_3D {
                let (Some(dt), Some(cd)) =
                    (t.get(sys, cca, Aqm::DropTail), t.get(sys, cca, Aqm::CoDel))
                else {
                    continue;
                };
                n += 1;
                if cd.rtt_ms < dt.rtt_ms {
                    ok += 1;
                }
            }
        }
        claims.push(Claim {
            id: "AQM-codel-cuts-rtt",
            statement: "CoDel lowers competing-window RTT below drop-tail in every cell",
            verdict: graded(ok as f64 / n.max(1) as f64, 0.99, 0.7),
            evidence: format!("{ok}/{n} (system, cca) pairs lower"),
        });
    }

    // BBRv2 over CoDel: the ECN path must carry the congestion signal —
    // CE marks present, and (marks being gentler than drops) queue delay
    // still below the drop-tail twin.
    {
        let mut marked = 0;
        let mut lower_rtt = 0;
        let mut n = 0;
        for &sys in &systems {
            let (Some(dt), Some(cd)) = (
                t.get(sys, CcaKind::Bbr2, Aqm::DropTail),
                t.get(sys, CcaKind::Bbr2, Aqm::CoDel),
            ) else {
                continue;
            };
            n += 1;
            if cd.ce_marks > 0 {
                marked += 1;
            }
            if cd.rtt_ms < dt.rtt_ms {
                lower_rtt += 1;
            }
        }
        claims.push(Claim {
            id: "AQM-bbr2-ecn-marks",
            statement: "an ECN-capable BBRv2 competitor gets CE-marked by CoDel",
            verdict: graded(marked as f64 / n.max(1) as f64, 0.99, 0.5),
            evidence: format!("{marked}/{n} systems with CE marks"),
        });
        claims.push(Claim {
            id: "AQM-bbr2-codel-delay",
            statement: "BBRv2-vs-CoDel cells show reduced queue delay vs drop-tail",
            verdict: graded(lower_rtt as f64 / n.max(1) as f64, 0.99, 0.5),
            evidence: format!("{lower_rtt}/{n} systems lower RTT under CoDel"),
        });
    }

    // ECN means the marked flow needs no loss to yield: BBRv2 over the
    // AQMs retransmits (far) less than over drop-tail.
    {
        let mut ok = 0;
        let mut n = 0;
        for &sys in &systems {
            for aqm in [Aqm::CoDel, Aqm::FqCoDel] {
                let (Some(dt), Some(aq)) = (
                    t.get(sys, CcaKind::Bbr2, Aqm::DropTail),
                    t.get(sys, CcaKind::Bbr2, aqm),
                ) else {
                    continue;
                };
                n += 1;
                if aq.tcp_retx <= dt.tcp_retx {
                    ok += 1;
                }
            }
        }
        claims.push(Claim {
            id: "AQM-bbr2-fewer-retx",
            statement: "marking instead of dropping leaves BBRv2 with no extra retransmissions",
            verdict: graded(ok as f64 / n.max(1) as f64, 0.99, 0.66),
            evidence: format!("{ok}/{n} AQM cells at/below the drop-tail count"),
        });
    }

    // FQ-CoDel isolates the game flow from the competitor: frame rates at
    // least hold relative to the shared drop-tail queue, for every CCA.
    {
        let mut ok = 0;
        let mut n = 0;
        for &sys in &systems {
            for &cca in &CCAS_3D {
                let (Some(dt), Some(fq)) = (
                    t.get(sys, cca, Aqm::DropTail),
                    t.get(sys, cca, Aqm::FqCoDel),
                ) else {
                    continue;
                };
                n += 1;
                if fq.fps >= dt.fps - 2.0 {
                    ok += 1;
                }
            }
        }
        claims.push(Claim {
            id: "AQM-fq-isolates-fps",
            statement: "FQ-CoDel's per-flow queues keep frame rates at or above drop-tail",
            verdict: graded(ok as f64 / n.max(1) as f64, 0.9, 0.6),
            evidence: format!("{ok}/{n} cells hold frame rate"),
        });
    }

    // Drop-tail is the only discipline that ever CE-marks nothing; the
    // ECN accounting must stay silent there even with BBRv2 competing.
    {
        let mut clean = 0;
        let mut n = 0;
        for &sys in &systems {
            for &cca in &CCAS_3D {
                if let Some(dt) = t.get(sys, cca, Aqm::DropTail) {
                    n += 1;
                    if dt.ce_marks == 0 {
                        clean += 1;
                    }
                }
            }
        }
        claims.push(Claim {
            id: "AQM-droptail-never-marks",
            statement: "drop-tail cells never CE-mark (ECN is an AQM behaviour)",
            verdict: graded(clean as f64 / n.max(1) as f64, 0.99, 0.99),
            evidence: format!("{clean}/{n} drop-tail cells mark-free"),
        });
    }

    Scorecard { claims }
}

impl fmt::Display for Scorecard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (p, pa, fa) = self.tally();
        writeln!(
            f,
            "Scorecard — {} claims: {p} PASS, {pa} PARTIAL, {fa} FAIL\n",
            self.claims.len()
        )?;
        let mut t = TextTable::new(vec!["id", "verdict", "claim", "evidence"]);
        for c in &self.claims {
            t.row(vec![
                c.id.to_string(),
                c.verdict.label().to_string(),
                c.statement.to_string(),
                c.evidence.clone(),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Timeline;
    use crate::experiments::{run_full_grid, run_solo_grid, ExperimentOpts};

    #[test]
    fn scorecard_smoke() {
        let mut opts = ExperimentOpts::smoke();
        opts.iterations = 1;
        opts.timeline = Timeline::scaled(0.06);
        let solo = run_solo_grid(opts.clone());
        let grid = run_full_grid(opts);
        let sc = scorecard(&solo, &grid);
        assert!(sc.claims.len() >= 12);
        let (p, pa, fa) = sc.tally();
        assert_eq!(p + pa + fa, sc.claims.len());
        // Even on a smoke run the structural claims must not all fail.
        assert!(fa < sc.claims.len() / 2, "scorecard: {sc}");
        let rendered = format!("{sc}");
        assert!(rendered.contains("PASS"));
    }

    #[test]
    fn graded_thresholds() {
        assert_eq!(graded(1.0, 0.9, 0.5), Verdict::Pass);
        assert_eq!(graded(0.7, 0.9, 0.5), Verdict::Partial);
        assert_eq!(graded(0.2, 0.9, 0.5), Verdict::Fail);
    }
}
