//! Tier-1 integration tests for the model oracle: the perturbation
//! regression (a mis-tuned BBR must flip a clean cell to diverged) and
//! grid determinism (two oracle runs are bit-identical).
//!
//! Cells here use 15 Mb/s / 33 ms — the cheapest condition that clears
//! both the deep-queue and the fluid-timescale preconditions — so the
//! suite stays debug-runnable; the full grid runs in release via the
//! `model_oracle` bench binary and the snapshot test.

use gsrepro_simcore::SimDuration;
use gsrepro_testbed::model::{
    grade_cell, run_bulk_cell, run_model_oracle, BulkCell, CellVerdict, OracleSpec,
};

fn cheap_cell() -> BulkCell {
    BulkCell {
        capacity_mbps: 15,
        base_rtt: SimDuration::from_micros(33_000),
        queue_mult: 2.0,
        n_cubic: 1,
    }
}

/// The planted-CCA regression: stock BBR (`cwnd_gain = 2`) lands within
/// the Ware tolerance; doubling the ProbeBW inflight cap (`cwnd_gain =
/// 4`) crushes the Cubic competitor far below the stable root and the
/// oracle must call it. This is the check that the golden fixtures
/// structurally cannot make — they would happily pin the mis-tuned
/// trajectory as the new truth.
#[test]
fn perturbed_cwnd_gain_flips_cell_to_diverged() {
    let cell = cheap_cell();
    let dur = SimDuration::from_secs(120);

    let stock = grade_cell(&cell, run_bulk_cell(&cell, dur, false, None));
    assert_eq!(
        stock.verdict,
        CellVerdict::Within,
        "stock BBR should match the model at X=2/33ms; |err| = {:.3}",
        stock.abs_err
    );

    let perturbed = grade_cell(&cell, run_bulk_cell(&cell, dur, false, Some(4.0)));
    assert_eq!(
        perturbed.verdict,
        CellVerdict::Diverged,
        "cwnd_gain = 4 must diverge from the gain-2 prediction; measured \
         share {:.3} vs predicted {:.3}",
        perturbed.measured.loss_share,
        perturbed.prediction.loss_share
    );
    // And in the direction the model says: a larger inflight cap takes
    // share *from* the loss-based flow.
    assert!(
        perturbed.measured.loss_share < stock.measured.loss_share,
        "larger cap should shrink the Cubic share"
    );
}

fn tiny_spec() -> OracleSpec {
    OracleSpec {
        queue_mults: vec![0.5, 2.0],
        capacities_mbps: vec![15],
        base_rtts: vec![SimDuration::from_micros(33_000)],
        duration: SimDuration::from_secs(15),
        checks: true,
        threads: 2,
        bbr_cwnd_gain: None,
    }
}

/// Two runs of the oracle grid are bit-identical — cell seeds derive
/// from cell labels, grading is pure arithmetic, and the parallel
/// runner assembles results in deterministic order.
#[test]
fn oracle_grid_two_runs_bit_identical() {
    let spec = tiny_spec();
    let a = run_model_oracle(&spec);
    let b = run_model_oracle(&spec);

    assert_eq!(a.table().render(), b.table().render());
    assert_eq!(a.verdict_lines(), b.verdict_lines());
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        // Bitwise equality on the raw floats, not a tolerance.
        assert_eq!(ca.measured.goodputs_mbps, cb.measured.goodputs_mbps);
        assert_eq!(
            ca.measured.loss_share.to_bits(),
            cb.measured.loss_share.to_bits()
        );
        assert_eq!(ca.measured.checks_performed, cb.measured.checks_performed);
    }
}

/// Structural guarantees of the grid: every cell carries a verdict with
/// preconditions evaluated, shares are a partition, Jain's index is
/// well-formed, and `checks: true` really audits every cell.
#[test]
fn every_cell_graded_with_preconditions() {
    let report = run_model_oracle(&tiny_spec());
    assert_eq!(report.cells.len(), 2);
    for c in &report.cells {
        match c.verdict {
            CellVerdict::Inapplicable(_) => assert!(!c.prediction.failed.is_empty()),
            _ => assert!(c.prediction.failed.is_empty()),
        }
        assert!((c.measured.loss_share + c.measured.bbr_share - 1.0).abs() < 1e-12);
        assert!(c.measured.jain > 0.0 && c.measured.jain <= 1.0);
        assert!(
            c.measured.checks_performed > 0,
            "checks were requested but did not run for {}",
            c.cell.label()
        );
    }
    // The shallow cell names the deep-queue precondition.
    assert_eq!(
        report.cells[0].verdict.label(),
        "inapplicable(queue-not-deep)"
    );
}
