//! Golden model-oracle snapshot: per-cell verdicts and the model
//! scorecard matrix of the smoke grid, pinned as a committed fixture.
//!
//! Unlike the trajectory and scorecard fixtures — which pin the
//! simulator against its own past output — the payload here records how
//! the simulator agrees with *independently derived theory* (the Ware
//! inflight-cap model, see `testbed::model`). A CCA regression that
//! shifts convergence shares flips a `within` to `diverged` in the
//! diff. Measured floats are deliberately not pinned; the closed-form
//! predictions are (they are exact arithmetic).
//!
//! Regenerate after an intentional behaviour change with:
//!
//! ```text
//! GSREPRO_BLESS=1 cargo test --release -p gsrepro-testbed \
//!     --test model_snapshot -- --ignored
//! ```
//!
//! The test is `#[ignore]`d because the smoke grid is five 120 s cells
//! under full invariant checks; ci.sh runs it in release.

use std::path::PathBuf;

use gsrepro_tcp::conformance::bless_requested;
use gsrepro_testbed::model::{model_scorecard, run_model_oracle, OracleSpec};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/model_oracle.txt")
}

#[test]
#[ignore = "runs the smoke oracle grid under checks; ci.sh runs it in release"]
fn model_oracle_matches_snapshot() {
    let mut spec = OracleSpec::smoke();
    spec.checks = true;
    let report = run_model_oracle(&spec);
    let sc = model_scorecard(&report);
    let payload = format!("{}\n{}", report.verdict_lines(), sc.verdict_matrix());
    assert!(
        report.cells.iter().all(|c| c.measured.checks_performed > 0),
        "invariant oracles must audit every cell"
    );

    let path = fixture_path();
    if bless_requested() {
        std::fs::write(&path, &payload)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        panic!("model-oracle snapshot blessed — rerun without GSREPRO_BLESS");
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading {}: {e} (bless the snapshot with GSREPRO_BLESS=1)",
            path.display()
        )
    });
    assert_eq!(
        expected, payload,
        "model-oracle verdicts drifted from the committed snapshot; a \
         `within` → `diverged` flip means the simulated CCA dynamics no \
         longer match the Ware model — investigate before re-blessing \
         with GSREPRO_BLESS=1"
    );
}
