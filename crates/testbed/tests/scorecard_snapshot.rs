//! Golden scorecard snapshot: the verdict matrix of the smoke-scale
//! reproduction, pinned as a committed fixture.
//!
//! The scorecard is the repo's "does this still reproduce the paper"
//! summary; this test freezes its claim-id → verdict matrix for a fixed
//! smoke configuration so a regression in any experiment shows up as a
//! readable diff (`F3-luna-bbr PASS` → `FAIL`) instead of a silent drift.
//! Float evidence strings are deliberately not pinned — verdicts are
//! threshold-graded and only flip when a finding genuinely changes.
//!
//! The grids run with the invariant oracles enabled, so this test doubles
//! as an oracle-clean smoke of the full condition grid.
//!
//! Regenerate after an intentional behaviour change with:
//!
//! ```text
//! GSREPRO_BLESS=1 cargo test --release -p gsrepro-testbed \
//!     --test scorecard_snapshot -- --ignored
//! ```
//!
//! and review the fixture diff like any other code change. The test is
//! `#[ignore]`d because it runs two full smoke grids (~all conditions);
//! ci.sh runs it in release.

use std::path::PathBuf;

use gsrepro_tcp::conformance::bless_requested;
use gsrepro_testbed::config::Timeline;
use gsrepro_testbed::experiments::{run_aqm3d_grid, run_full_grid, run_solo_grid, ExperimentOpts};
use gsrepro_testbed::scorecard::{aqm_scorecard, scorecard};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/scorecard.txt")
}

#[test]
#[ignore = "runs two smoke grids; ci.sh runs it in release"]
fn scorecard_verdicts_match_snapshot() {
    let mut opts = ExperimentOpts::smoke();
    opts.iterations = 1;
    opts.timeline = Timeline::scaled(0.06);
    opts.checks = true;
    let solo = run_solo_grid(opts.clone());
    let grid = run_full_grid(opts);
    let sc = scorecard(&solo, &grid);
    let matrix = sc.verdict_matrix();
    assert!(!matrix.is_empty(), "scorecard produced no claims");

    let path = fixture_path();
    if bless_requested() {
        std::fs::write(&path, &matrix)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        panic!("scorecard snapshot blessed — rerun without GSREPRO_BLESS");
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading {}: {e} (bless the snapshot with GSREPRO_BLESS=1)",
            path.display()
        )
    });
    assert_eq!(
        expected, matrix,
        "scorecard verdicts drifted from the committed snapshot; if the \
         change is intentional, re-bless with GSREPRO_BLESS=1 and review \
         the fixture diff"
    );
}

fn fixture3d_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/scorecard3d.txt")
}

#[test]
#[ignore = "runs the 27-cell AQM grid; ci.sh runs it in release"]
fn aqm_scorecard_verdicts_match_snapshot() {
    let mut opts = ExperimentOpts::smoke();
    opts.iterations = 1;
    opts.timeline = Timeline::scaled(0.06);
    opts.checks = true;
    let grid = run_aqm3d_grid(opts);
    let sc = aqm_scorecard(&grid);
    let matrix = sc.verdict_matrix();
    assert!(!matrix.is_empty(), "AQM scorecard produced no claims");

    let path = fixture3d_path();
    if bless_requested() {
        std::fs::write(&path, &matrix)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        panic!("AQM scorecard snapshot blessed — rerun without GSREPRO_BLESS");
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading {}: {e} (bless the snapshot with GSREPRO_BLESS=1)",
            path.display()
        )
    });
    assert_eq!(
        expected, matrix,
        "AQM scorecard verdicts drifted from the committed snapshot; if \
         the change is intentional, re-bless with GSREPRO_BLESS=1 and \
         review the fixture diff"
    );
}
