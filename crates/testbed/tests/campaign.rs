//! Fleet campaign determinism gates: a killed-then-resumed campaign and
//! a differently-threaded campaign must reproduce the uninterrupted
//! single-threaded aggregates bit-identically.

use std::path::PathBuf;

use gsrepro_testbed::campaign::{run_campaign, CampaignSpec, METRICS};
use gsrepro_testbed::{CcaKind, Condition, SystemKind, Timeline};

fn spec(manifest: Option<PathBuf>, threads: usize) -> CampaignSpec {
    let tl = Timeline::scaled(0.02);
    let conditions = vec![
        Condition::new(SystemKind::Luna, Some(CcaKind::Cubic), 25, 2.0).with_timeline(tl),
        Condition::new(SystemKind::Stadia, Some(CcaKind::Bbr), 25, 2.0).with_timeline(tl),
    ];
    let mut s = CampaignSpec::new(conditions, 4);
    s.shard_size = 2;
    s.threads = threads;
    s.manifest = manifest;
    s
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsrepro-campaign-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn resumed_campaign_is_bit_identical_to_uninterrupted() {
    // Ground truth: no manifest, straight through.
    let baseline = run_campaign(&spec(None, 1)).expect("baseline runs");
    assert!(baseline.complete());
    assert_eq!(baseline.sessions_total(), 8);
    assert_eq!(baseline.resumed_shards, 0);

    // Same sweep, but killed after 1 of 4 shards.
    let path = scratch("resume.manifest");
    let _ = std::fs::remove_file(&path);
    let mut halted = spec(Some(path.clone()), 1);
    halted.halt_after_shards = Some(1);
    let partial = run_campaign(&halted).expect("halted run succeeds");
    assert!(!partial.complete());
    assert_eq!(partial.completed_shards, 1);
    assert_eq!(partial.pending_shards, 3);
    assert_eq!(partial.sessions_this_run, 2);

    // The manifest holds exactly the finished shard.
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.starts_with("gsrepro-fleet-manifest v1\nspec "));
    assert_eq!(text.lines().filter(|l| l.starts_with("shard ")).count(), 1);

    // Resume to completion.
    let resumed = run_campaign(&spec(Some(path.clone()), 1)).expect("resume succeeds");
    assert!(resumed.complete());
    assert_eq!(resumed.resumed_shards, 1);
    assert_eq!(resumed.completed_shards, 3);
    assert_eq!(resumed.sessions_this_run, 6);
    assert_eq!(resumed.sessions_total(), 8);

    assert_eq!(
        resumed.digest(),
        baseline.digest(),
        "kill + resume must reproduce the uninterrupted aggregates exactly"
    );
    // Spot-check a non-trivial float the digest covers.
    for ((_, a), (_, b)) in resumed.conditions.iter().zip(&baseline.conditions) {
        for i in 0..METRICS.len() {
            assert_eq!(a.metric(i).mean().to_bits(), b.metric(i).mean().to_bits());
            assert_eq!(
                a.metric(i).quantile(0.95).to_bits(),
                b.metric(i).quantile(0.95).to_bits()
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn thread_count_does_not_change_the_digest() {
    let one = run_campaign(&spec(None, 1)).expect("1-thread runs");
    let four = run_campaign(&spec(None, 4)).expect("4-thread runs");
    assert_eq!(one.sessions_total(), four.sessions_total());
    assert_eq!(
        one.digest(),
        four.digest(),
        "shard-ordered merge must make aggregates thread-count invariant"
    );
}

#[test]
fn torn_manifest_tail_is_recovered_bit_identically() {
    let baseline = run_campaign(&spec(None, 1)).expect("baseline runs");

    // Checkpoint one shard, then tear its manifest line in half — the
    // damage a kill mid-append actually inflicts.
    let path = scratch("torn.manifest");
    let _ = std::fs::remove_file(&path);
    let mut halted = spec(Some(path.clone()), 1);
    halted.halt_after_shards = Some(2);
    run_campaign(&halted).expect("halted run succeeds");
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().filter(|l| l.starts_with("shard ")).count(), 2);
    let cut = text.rfind("shard ").unwrap() + 20;
    std::fs::write(&path, &text[..cut]).unwrap();

    // Resume: the torn line is truncated away, its shard re-runs, and
    // the aggregates still match the uninterrupted ground truth.
    let resumed = run_campaign(&spec(Some(path.clone()), 1)).expect("recovery succeeds");
    assert!(resumed.complete());
    assert_eq!(resumed.resumed_shards, 1, "only the intact shard resumes");
    assert_eq!(resumed.completed_shards, 3);
    let why = resumed.torn_tail.as_deref().expect("recovery is reported");
    assert!(why.contains("torn manifest tail"), "{why}");
    assert_eq!(
        resumed.digest(),
        baseline.digest(),
        "torn-tail recovery must reproduce the uninterrupted aggregates exactly"
    );

    // The repaired manifest now holds every shard and resumes cleanly.
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().filter(|l| l.starts_with("shard ")).count(), 4);
    assert!(text.ends_with('\n'));
    let clean = run_campaign(&spec(Some(path.clone()), 1)).expect("replay succeeds");
    assert_eq!(clean.resumed_shards, 4);
    assert_eq!(clean.torn_tail, None);
    assert_eq!(clean.digest(), baseline.digest());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unterminated_final_shard_line_is_re_run() {
    // A kill exactly between the payload and its newline leaves a line
    // that parses but would corrupt the next append; it must be treated
    // as torn, not resumed.
    let path = scratch("unterminated.manifest");
    let _ = std::fs::remove_file(&path);
    let mut halted = spec(Some(path.clone()), 1);
    halted.halt_after_shards = Some(1);
    run_campaign(&halted).expect("halted run succeeds");
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, text.trim_end_matches('\n')).unwrap();

    let resumed = run_campaign(&spec(Some(path.clone()), 1)).expect("recovery succeeds");
    assert_eq!(resumed.resumed_shards, 0, "the unterminated shard re-runs");
    assert_eq!(resumed.completed_shards, 4);
    assert!(resumed.torn_tail.as_deref().unwrap().contains("newline"));
    assert_eq!(
        resumed.digest(),
        run_campaign(&spec(None, 1)).unwrap().digest()
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mid_file_manifest_corruption_is_a_hard_error() {
    let path = scratch("midfile.manifest");
    let _ = std::fs::remove_file(&path);
    let mut halted = spec(Some(path.clone()), 1);
    halted.halt_after_shards = Some(2);
    run_campaign(&halted).expect("halted run succeeds");

    // Mangle the FIRST shard line, keeping a complete one after it:
    // that cannot be a torn append, so resume must refuse to guess.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut mangled_one = false;
    let out: Vec<String> = text
        .lines()
        .map(|l| {
            if l.starts_with("shard ") && !mangled_one {
                mangled_one = true;
                "shard 0 runs=borked".to_string()
            } else {
                l.to_string()
            }
        })
        .collect();
    std::fs::write(&path, out.join("\n") + "\n").unwrap();

    let err = run_campaign(&spec(Some(path.clone()), 1)).unwrap_err();
    assert!(err.contains("complete lines follow"), "{err}");
    assert!(err.contains("not a torn append"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn foreign_manifest_is_refused() {
    let path = scratch("foreign.manifest");
    std::fs::write(&path, "gsrepro-fleet-manifest v1\nspec 0000000000000000\n").unwrap();
    let err = run_campaign(&spec(Some(path.clone()), 1)).unwrap_err();
    assert!(err.contains("different campaign"), "{err}");
    let _ = std::fs::remove_file(&path);
}
