//! Regression tests for the testbed's reproducibility guarantees: the same
//! (condition, iteration) seed must produce bit-identical results, and the
//! thread count used to execute a grid must never leak into the numbers.
//! These pin the invariants the scheduler fast lane and the packet pool
//! must preserve — any hidden ordering or shared-state dependency shows up
//! here as a diff.

use gsrepro_gamestream::SystemKind;
use gsrepro_simcore::{BitRate, SimTime};
use gsrepro_tcp::CcaKind;
use gsrepro_testbed::config::{Condition, PathScenario, Timeline};
use gsrepro_testbed::runner::{
    run_condition, run_condition_full, run_many, run_many_full, RunResult,
};

fn quick_cond(system: SystemKind, cca: CcaKind) -> Condition {
    Condition::new(system, Some(cca), 15, 2.0).with_timeline(Timeline::scaled(0.06))
}

/// Compare every deterministic field of two runs. `wall_secs` is wall-clock
/// measurement and is deliberately excluded.
fn assert_runs_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.label, b.label, "{what}: label");
    assert_eq!(a.iter, b.iter, "{what}: iter");
    assert_eq!(a.game_bins_mbps, b.game_bins_mbps, "{what}: game bins");
    assert_eq!(a.iperf_bins_mbps, b.iperf_bins_mbps, "{what}: iperf bins");
    assert_eq!(a.rtt, b.rtt, "{what}: rtt samples");
    assert_eq!(a.fps_bins, b.fps_bins, "{what}: fps bins");
    assert_eq!(a.game_sent_bins, b.game_sent_bins, "{what}: sent bins");
    assert_eq!(
        a.game_dropped_bins, b.game_dropped_bins,
        "{what}: dropped bins"
    );
    assert_eq!(a.game_loss_rate, b.game_loss_rate, "{what}: loss rate");
    assert_eq!(
        a.tcp_retransmissions, b.tcp_retransmissions,
        "{what}: tcp retransmissions"
    );
    assert_eq!(
        a.tcp_delivered_bytes, b.tcp_delivered_bytes,
        "{what}: tcp delivered bytes"
    );
    assert_eq!(
        a.encoder_rate_mean, b.encoder_rate_mean,
        "{what}: encoder rate"
    );
    assert_eq!(
        a.events_processed, b.events_processed,
        "{what}: events processed"
    );
}

#[test]
fn same_seed_is_bit_identical() {
    let cond = quick_cond(SystemKind::Luna, CcaKind::Cubic);
    let a = run_condition(&cond, 0);
    let b = run_condition(&cond, 0);
    assert_runs_identical(&a, &b, "repeat run, iter 0");
    assert!(a.events_processed > 0, "run must process events");
    assert!(a.wall_secs > 0.0, "run must record wall time");
}

#[test]
fn thread_count_never_changes_results() {
    // A small mixed grid: two systems × two CCAs exercises both TCP paths
    // and both media envelopes through the parallel runner.
    let conditions = vec![
        quick_cond(SystemKind::Luna, CcaKind::Cubic),
        quick_cond(SystemKind::Stadia, CcaKind::Bbr),
    ];
    let serial = run_many(&conditions, 2, 1);
    let parallel = run_many(&conditions, 2, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.condition.label(), p.condition.label());
        assert_eq!(s.runs.len(), p.runs.len());
        for (sr, pr) in s.runs.iter().zip(&p.runs) {
            let what = format!("{} iter {}", sr.label, sr.iter);
            assert_runs_identical(sr, pr, &what);
        }
    }
}

/// A scenario condition for the matrix below: Stadia vs BBR on a path
/// that steps down to 10 Mb/s across the middle of the (scaled) run.
fn scenario_cond() -> Condition {
    let tl = Timeline::scaled(0.06);
    let frac = |f: f64| SimTime::from_millis((tl.end.as_secs_f64() * f * 1000.0) as u64);
    Condition::new(SystemKind::Stadia, Some(CcaKind::Bbr), 25, 2.0)
        .with_timeline(tl)
        .with_scenario(PathScenario::RateStep {
            rate: BitRate::from_mbps(10),
            from: frac(0.35),
            to: frac(0.70),
        })
}

/// The full determinism matrix: {static, scenario} × {checks off, on} ×
/// {1, 4 worker threads}. The invariant oracles only observe — they
/// consume no randomness and schedule no events — so a checked run must
/// be bit-identical to an unchecked one; the only permitted difference
/// is the audit-evidence counter. Likewise the thread count used to
/// execute a grid must never leak into the numbers, with or without the
/// oracles watching.
#[test]
fn checks_and_threads_never_change_results() {
    // Per-run axis: checks on vs off, static and scenario paths.
    for cond in [
        quick_cond(SystemKind::Luna, CcaKind::Cubic),
        scenario_cond(),
    ] {
        let plain = run_condition_full(&cond, 0, None, false);
        let checked = run_condition_full(&cond, 0, None, true);
        let what = format!("{} checks on/off", cond.label());
        assert_runs_identical(&plain, &checked, &what);
        assert_eq!(
            plain.checks_performed, 0,
            "{what}: unchecked run must not audit"
        );
        assert!(
            checked.checks_performed > 0,
            "{what}: checked run gathered no audit evidence"
        );
    }

    // Grid axis: every (threads, checks) cell matches the serial
    // unchecked baseline, run for run.
    let conditions = vec![
        quick_cond(SystemKind::Luna, CcaKind::Cubic),
        scenario_cond(),
    ];
    let baseline = run_many_full(&conditions, 2, 1, None, false);
    for (threads, checks) in [(1, true), (4, false), (4, true)] {
        let cell = run_many_full(&conditions, 2, threads, None, checks);
        assert_eq!(baseline.len(), cell.len());
        for (b, o) in baseline.iter().zip(&cell) {
            assert_eq!(b.condition.label(), o.condition.label());
            for (br, or) in b.runs.iter().zip(&o.runs) {
                let what = format!(
                    "{} iter {} ({threads} threads, checks={checks})",
                    br.label, br.iter
                );
                assert_runs_identical(br, or, &what);
            }
        }
    }
}
