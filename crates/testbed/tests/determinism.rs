//! Regression tests for the testbed's reproducibility guarantees: the same
//! (condition, iteration) seed must produce bit-identical results, and the
//! thread count used to execute a grid must never leak into the numbers.
//! These pin the invariants the scheduler fast lane and the packet pool
//! must preserve — any hidden ordering or shared-state dependency shows up
//! here as a diff.

use gsrepro_gamestream::SystemKind;
use gsrepro_tcp::CcaKind;
use gsrepro_testbed::config::{Condition, Timeline};
use gsrepro_testbed::runner::{run_condition, run_many, RunResult};

fn quick_cond(system: SystemKind, cca: CcaKind) -> Condition {
    Condition::new(system, Some(cca), 15, 2.0).with_timeline(Timeline::scaled(0.06))
}

/// Compare every deterministic field of two runs. `wall_secs` is wall-clock
/// measurement and is deliberately excluded.
fn assert_runs_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.label, b.label, "{what}: label");
    assert_eq!(a.iter, b.iter, "{what}: iter");
    assert_eq!(a.game_bins_mbps, b.game_bins_mbps, "{what}: game bins");
    assert_eq!(a.iperf_bins_mbps, b.iperf_bins_mbps, "{what}: iperf bins");
    assert_eq!(a.rtt, b.rtt, "{what}: rtt samples");
    assert_eq!(a.fps_bins, b.fps_bins, "{what}: fps bins");
    assert_eq!(a.game_sent_bins, b.game_sent_bins, "{what}: sent bins");
    assert_eq!(
        a.game_dropped_bins, b.game_dropped_bins,
        "{what}: dropped bins"
    );
    assert_eq!(a.game_loss_rate, b.game_loss_rate, "{what}: loss rate");
    assert_eq!(
        a.tcp_retransmissions, b.tcp_retransmissions,
        "{what}: tcp retransmissions"
    );
    assert_eq!(
        a.tcp_delivered_bytes, b.tcp_delivered_bytes,
        "{what}: tcp delivered bytes"
    );
    assert_eq!(
        a.encoder_rate_mean, b.encoder_rate_mean,
        "{what}: encoder rate"
    );
    assert_eq!(
        a.events_processed, b.events_processed,
        "{what}: events processed"
    );
}

#[test]
fn same_seed_is_bit_identical() {
    let cond = quick_cond(SystemKind::Luna, CcaKind::Cubic);
    let a = run_condition(&cond, 0);
    let b = run_condition(&cond, 0);
    assert_runs_identical(&a, &b, "repeat run, iter 0");
    assert!(a.events_processed > 0, "run must process events");
    assert!(a.wall_secs > 0.0, "run must record wall time");
}

#[test]
fn thread_count_never_changes_results() {
    // A small mixed grid: two systems × two CCAs exercises both TCP paths
    // and both media envelopes through the parallel runner.
    let conditions = vec![
        quick_cond(SystemKind::Luna, CcaKind::Cubic),
        quick_cond(SystemKind::Stadia, CcaKind::Bbr),
    ];
    let serial = run_many(&conditions, 2, 1);
    let parallel = run_many(&conditions, 2, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.condition.label(), p.condition.label());
        assert_eq!(s.runs.len(), p.runs.len());
        for (sr, pr) in s.runs.iter().zip(&p.runs) {
            let what = format!("{} iter {}", sr.label, sr.iter);
            assert_runs_identical(sr, pr, &what);
        }
    }
}
