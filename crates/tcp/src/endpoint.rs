//! TCP sender and receiver agents.
//!
//! [`TcpSender`] is a bulk-data sender (the paper's iperf server): an
//! unlimited application source, window- and optionally pacing-limited,
//! with SACK-based loss recovery and an RFC 6298 retransmission timer.
//! [`TcpReceiver`] is the iperf client: it acks every arriving segment
//! immediately, echoing the segment's transmit timestamp and up to three
//! SACK blocks.
//!
//! Segment sizes on the wire are payload + [`TCP_HEADER`]; pure acks carry
//! [`ACK_SIZE`] bytes (header + timestamp/SACK options).

use std::collections::BTreeMap;

use gsrepro_netsim::net::{Agent, AgentId, Ctx, NodeId, PacketSpec};
use gsrepro_netsim::wire::{Ecn, FlowId, Packet, Payload, TcpSegment, TCP_HEADER, TCP_MSS};
use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimTime};

use crate::cca::{AckInfo, CcaKind, CongestionControl};

/// Wire size of a pure ack (TCP/IP header + timestamp and SACK options).
pub const ACK_SIZE: Bytes = Bytes(60);

/// Minimum retransmission timeout (Linux: 200 ms).
const MIN_RTO: SimDuration = SimDuration::from_millis(200);
/// Maximum retransmission timeout.
const MAX_RTO: SimDuration = SimDuration::from_secs(60);
/// Initial RTO before any RTT sample (RFC 6298: 1 s).
const INITIAL_RTO: SimDuration = SimDuration::from_secs(1);

/// Segments released back-to-back per pacing slot. Linux fq pacing emits
/// small bursts (TSO autosizing, quantum ≥ 2 segments) rather than perfect
/// per-packet spacing; the clustering matters at full drop-tail queues,
/// where a burst's trailing segments absorb the drops that a perfectly
/// paced stream would spread onto its neighbours.
const PACE_QUANTUM: u64 = 2;

const TOK_START: u64 = 0;
const TOK_RTO: u64 = 1;
const TOK_PACE: u64 = 2;

/// Configuration for a [`TcpSender`].
#[derive(Clone, Debug)]
pub struct TcpSenderConfig {
    /// Flow id for the data direction (downstream accounting).
    pub flow: FlowId,
    /// Receiver's node.
    pub dst: NodeId,
    /// Receiver's agent.
    pub dst_agent: AgentId,
    /// Congestion-control algorithm.
    pub cca: CcaKind,
    /// Maximum segment size (payload bytes). Default [`TCP_MSS`].
    pub mss: Bytes,
    /// When the bulk transfer starts (the paper starts iperf at 185 s).
    pub start_at: SimTime,
    /// When the sender stops offering new data (370 s in the paper).
    pub stop_at: SimTime,
}

impl TcpSenderConfig {
    /// Bulk transfer running over `[start, stop)` with standard MSS.
    pub fn new(flow: FlowId, dst: NodeId, dst_agent: AgentId, cca: CcaKind) -> Self {
        TcpSenderConfig {
            flow,
            dst,
            dst_agent,
            cca,
            mss: TCP_MSS,
            start_at: SimTime::ZERO,
            stop_at: SimTime::MAX,
        }
    }

    /// Restrict the transfer to `[start, stop)`.
    pub fn active_during(mut self, start: SimTime, stop: SimTime) -> Self {
        self.start_at = start;
        self.stop_at = stop;
        self
    }
}

// A tracked transmission. SACKed segments are removed from tracking
// immediately (simulated receivers never renege on SACKs, so the sender
// will never need to retransmit them), which keeps the tracked set bounded
// by the in-flight window even when a loss hole stalls the cumulative ack
// for a long time.
struct SentSeg {
    seq: u64,
    len: u64,
    sent_at: SimTime,
    delivered_at_send: u64,
    delivered_time_at_send: SimTime,
    lost: bool,
    retx: u32,
}

/// Bulk-data TCP sender agent.
pub struct TcpSender {
    cfg: TcpSenderConfig,
    cca: Box<dyn CongestionControl>,

    running: bool,
    /// `None` = unlimited bulk data (iperf). `Some(budget)` = application-
    /// limited: only bytes queued via [`TcpSender::queue_app_bytes`] may be
    /// sent. Used by request/response applications such as DASH video.
    app_budget: Option<u64>,
    next_seq: u64,
    snd_una: u64,
    segs: Vec<SentSeg>,
    lost_count: usize,

    delivered: u64,
    next_round_delivered: u64,
    round: u64,

    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rtt: SimDuration,
    rto_backoff: u32,
    rto_deadline: SimTime,
    /// Fire time of the earliest pending RTO timer, [`SimTime::MAX`] when
    /// none. Timers are not cancellable, so when the deadline moves
    /// *earlier* than every pending timer a new one is set and later
    /// firings are discarded as stale against this field.
    rto_timer_at: SimTime,
    /// Instant of the last genuine RTO expiry. The next deadline anchors
    /// at `max(oldest sent_at, this) + cur_rto()`: after a timeout the
    /// backed-off timer restarts from the expiry (RFC 6298 § 5.5-5.6, as
    /// Linux does), never from a transmission already more than one RTO
    /// old. Without the floor, a lost segment whose retransmission stays
    /// pacing-blocked past MAX_RTO re-arms a zero-delay timer from its
    /// stale `sent_at` on every expiry — an unbounded same-instant RTO
    /// loop that livelocks the simulation (found by a chaos campaign).
    rto_fired_at: SimTime,

    dupacks: u32,
    recovery_point: u64,
    /// Highest sequence covered by any SACK block seen (monotonic).
    highest_sacked: u64,

    pace_next: SimTime,
    pace_timer_armed: bool,

    /// Anchor for short-timescale ("ack clock") delivery-rate samples:
    /// (time, delivered) at the start of the current burst window.
    burst_anchor: Option<(SimTime, u64)>,

    // Lifetime statistics.
    retransmissions: u64,
    rto_events: u64,
    fast_retransmit_events: u64,
}

impl TcpSender {
    /// Create a sender; the controller is built from `cfg.cca`.
    pub fn new(cfg: TcpSenderConfig) -> Self {
        let cca = cfg.cca.build(cfg.mss.as_u64());
        Self::with_controller(cfg, cca)
    }

    /// Create a sender with an explicitly constructed controller (ablation
    /// experiments use this to vary controller parameters beyond what
    /// [`CcaKind`] exposes). `cfg.cca` is kept only as a label.
    pub fn with_controller(cfg: TcpSenderConfig, cca: Box<dyn CongestionControl>) -> Self {
        TcpSender {
            cfg,
            cca,
            running: false,
            app_budget: None,
            next_seq: 0,
            snd_una: 0,
            segs: Vec::new(),
            lost_count: 0,
            delivered: 0,
            next_round_delivered: 0,
            round: 0,
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rtt: SimDuration::MAX,
            rto_backoff: 0,
            rto_deadline: SimTime::MAX,
            rto_timer_at: SimTime::MAX,
            rto_fired_at: SimTime::ZERO,
            dupacks: 0,
            recovery_point: 0,
            highest_sacked: 0,
            pace_next: SimTime::ZERO,
            pace_timer_armed: false,
            burst_anchor: None,
            retransmissions: 0,
            rto_events: 0,
            fast_retransmit_events: 0,
        }
    }

    /// Switch to application-limited mode: the sender only transmits bytes
    /// that have been queued with [`TcpSender::queue_app_bytes`]. Call
    /// before the simulation starts.
    pub fn set_app_limited(&mut self) {
        self.app_budget = Some(0);
    }

    /// Queue `bytes` of application data for transmission (app-limited
    /// mode only; a no-op in bulk mode, which is already unlimited).
    /// Returns the new outstanding budget.
    pub fn queue_app_bytes(&mut self, bytes: u64) -> u64 {
        match self.app_budget.as_mut() {
            Some(b) => {
                *b += bytes;
                *b
            }
            None => 0,
        }
    }

    /// Unsent application budget (app-limited mode).
    pub fn app_budget(&self) -> u64 {
        self.app_budget.unwrap_or(0)
    }

    /// The sender's configuration.
    pub fn config(&self) -> &TcpSenderConfig {
        &self.cfg
    }

    /// Kick the send loop. Wrapper applications call this after queueing
    /// new app bytes — an idle sender has no pending ack or timer to wake
    /// it otherwise.
    pub fn poke(&mut self, ctx: &mut Ctx) {
        self.try_send(ctx);
    }

    /// Bytes acknowledged as delivered end-to-end.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered
    }

    /// Total retransmitted segments.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Retransmission-timeout episodes.
    pub fn rto_events(&self) -> u64 {
        self.rto_events
    }

    /// Fast-retransmit (recovery) episodes.
    pub fn fast_retransmit_events(&self) -> u64 {
        self.fast_retransmit_events
    }

    /// Smoothed RTT, if measured.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Minimum RTT observed.
    pub fn min_rtt(&self) -> SimDuration {
        self.min_rtt
    }

    /// Segments currently tracked (in flight, SACKed, or awaiting
    /// retransmission).
    pub fn tracked_segments(&self) -> usize {
        self.segs.len()
    }

    /// Current congestion window (bytes).
    pub fn cwnd(&self) -> u64 {
        self.cca.cwnd()
    }

    /// The congestion controller (diagnostics).
    pub fn cca(&self) -> &dyn CongestionControl {
        self.cca.as_ref()
    }

    fn mss(&self) -> u64 {
        self.cfg.mss.as_u64()
    }

    fn cur_rto(&self) -> SimDuration {
        let base = match self.srtt {
            Some(srtt) => srtt + self.rttvar * 4,
            None => INITIAL_RTO,
        };
        let backed = base * (1u64 << self.rto_backoff.min(8));
        backed.clamp(MIN_RTO, MAX_RTO)
    }

    fn pipe(&self) -> u64 {
        self.segs.iter().filter(|s| !s.lost).map(|s| s.len).sum()
    }

    fn in_recovery(&self) -> bool {
        self.snd_una < self.recovery_point
    }

    fn update_rtt(&mut self, sample: SimDuration) {
        if sample < self.min_rtt {
            self.min_rtt = sample;
        }
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                // RFC 6298: beta = 1/4, alpha = 1/8.
                let delta = if srtt > sample {
                    srtt - sample
                } else {
                    sample - srtt
                };
                self.rttvar = (self.rttvar * 3 + delta) / 4;
                self.srtt = Some((srtt * 7 + sample) / 8);
            }
        }
    }

    fn arm_rto(&mut self, ctx: &mut Ctx, deadline: SimTime) {
        self.rto_deadline = deadline;
        // A pending timer at or before the deadline will fire in time and
        // re-check the deadline then. But if every pending timer fires
        // *after* the new deadline (e.g. the backoff just reset while a
        // heavily backed-off timer is in flight), the timeout would fire
        // late — set an earlier timer and let the stale one no-op.
        if deadline < self.rto_timer_at {
            self.rto_timer_at = deadline;
            let delay = deadline.saturating_since(ctx.now());
            ctx.set_timer(delay, TOK_RTO);
        }
    }

    /// RFC 6298 semantics: the retransmission timer covers the *oldest*
    /// outstanding (un-SACKed) transmission. Anchoring the deadline there —
    /// rather than pushing it out on every ack — guarantees that a hole
    /// whose retransmissions keep getting dropped still triggers an RTO
    /// about one RTO after its last (re)transmission, no matter how much
    /// later data is being SACKed around it.
    fn rearm_rto_from_oldest(&mut self, ctx: &mut Ctx) {
        let oldest = self.segs.iter().map(|s| s.sent_at).min();
        match oldest {
            Some(t) => {
                // Floor at the last expiry: a timeout restarts the
                // backed-off timer from the expiry itself (see
                // `rto_fired_at`), so an expiry instant is never re-armed.
                let deadline = t.max(self.rto_fired_at) + self.cur_rto();
                self.arm_rto(ctx, deadline);
            }
            None => self.rto_deadline = SimTime::MAX,
        }
    }

    fn send_segment(&mut self, ctx: &mut Ctx, seq: u64, len: u64, is_retx: bool) {
        // ECN-capable controllers negotiate ECT on data segments so AQMs
        // mark instead of drop (RFC 3168 § 6.1.1); pure acks stay Not-ECT.
        let ecn = if self.cca.ecn_capable() {
            Ecn::Ect
        } else {
            Ecn::NotEct
        };
        ctx.send(PacketSpec {
            flow: self.cfg.flow,
            dst: self.cfg.dst,
            dst_agent: self.cfg.dst_agent,
            size: Bytes(len) + TCP_HEADER,
            ecn,
            payload: Payload::Tcp(TcpSegment::data(seq, len as u32)),
        });
        if is_retx {
            self.retransmissions += 1;
        }
    }

    fn try_send(&mut self, ctx: &mut Ctx) {
        if !self.running {
            return;
        }
        let now = ctx.now();
        let cwnd = self.cca.cwnd();
        let pacing = self.cca.pacing_rate();
        let mut pipe = self.pipe();
        let mut quantum_left = PACE_QUANTUM;

        loop {
            // Pacing gate: a burst of up to PACE_QUANTUM segments is
            // released per slot; the slot itself opens at pace_next.
            if pacing.is_some() {
                let slot_open = now >= self.pace_next;
                let burst_spent = quantum_left == 0;
                if (!slot_open && quantum_left == PACE_QUANTUM) || burst_spent {
                    if !self.pace_timer_armed && self.pace_next > now {
                        self.pace_timer_armed = true;
                        ctx.set_timer(self.pace_next.saturating_since(now), TOK_PACE);
                    }
                    break;
                }
            }

            // Priority 1: retransmit a lost segment.
            let mut sent_len = None;
            if self.lost_count > 0 {
                if let Some(i) = self.segs.iter().position(|s| s.lost) {
                    let len = self.segs[i].len;
                    if pipe + len > cwnd {
                        break;
                    }
                    let seq = self.segs[i].seq;
                    self.segs[i].lost = false;
                    self.segs[i].retx += 1;
                    self.segs[i].sent_at = now;
                    self.segs[i].delivered_at_send = self.delivered;
                    self.segs[i].delivered_time_at_send = now;
                    self.lost_count -= 1;
                    self.send_segment(ctx, seq, len, true);
                    sent_len = Some(len);
                }
            }

            // Priority 2: new data.
            if sent_len.is_none() {
                if now >= self.cfg.stop_at {
                    break;
                }
                let len = match self.app_budget {
                    None => self.mss(),
                    Some(budget) => {
                        // App-limited: send full segments while the budget
                        // lasts, then a final runt, then stop.
                        if budget == 0 {
                            break;
                        }
                        budget.min(self.mss())
                    }
                };
                if pipe + len > cwnd {
                    break;
                }
                if let Some(b) = self.app_budget.as_mut() {
                    *b -= len;
                }
                let seq = self.next_seq;
                self.next_seq += len;
                self.segs.push(SentSeg {
                    seq,
                    len,
                    sent_at: now,
                    delivered_at_send: self.delivered,
                    delivered_time_at_send: now,
                    lost: false,
                    retx: 0,
                });
                self.send_segment(ctx, seq, len, false);
                sent_len = Some(len);
            }

            let len = sent_len.expect("a segment was sent on this path");
            pipe += len;
            if let Some(rate) = pacing {
                let gap = rate.tx_time(Bytes(len) + TCP_HEADER);
                self.pace_next = self.pace_next.max(now) + gap;
                quantum_left -= 1;
            }
        }

        let _ = now;
        self.rearm_rto_from_oldest(ctx);
    }

    fn process_ack(&mut self, seg: TcpSegment, now: SimTime, ctx: &mut Ctx) {
        let old_una = self.snd_una;
        let mut newly_delivered: u64 = 0;
        let mut rtt_sample: Option<SimDuration> = None;
        // Rate-sample bookkeeping from the newest acked segment:
        // (delivered_at_send, delivered_time_at_send, was_retransmitted).
        // Samples off retransmitted segments are discarded (Karn's rule
        // applied to rate sampling): when a long-standing hole fills, one
        // cumulative ack can cover megabytes, and dividing that by the
        // retransmission's short flight time would produce a wildly
        // inflated bandwidth sample that sends BBR's cwnd to the moon.
        let mut newest_acked: Option<(u64, SimTime, bool)> = None;
        let mut round_start = false;

        if let Some(ts) = seg.ts_echo {
            rtt_sample = Some(now.saturating_since(ts));
        }

        // Cumulative ack: remove fully-acked segments.
        if seg.ack > self.snd_una {
            self.snd_una = seg.ack;
            self.dupacks = 0;
            self.rto_backoff = 0;
            let mut i = 0;
            while i < self.segs.len() {
                let s = &self.segs[i];
                if s.seq + s.len <= seg.ack {
                    newly_delivered += s.len;
                    if s.lost {
                        self.lost_count -= 1;
                    }
                    if newest_acked.is_none_or(|(d, _, _)| s.delivered_at_send > d) {
                        newest_acked =
                            Some((s.delivered_at_send, s.delivered_time_at_send, s.retx > 0));
                    }
                    if s.delivered_at_send >= self.next_round_delivered {
                        round_start = true;
                    }
                    self.segs.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }

        // SACK blocks: account the newly delivered segments and drop them
        // from tracking (see the `SentSeg` note — receivers never renege).
        // Because sacked segments are removed at once, re-advertised blocks
        // on later acks find nothing and cost nothing.
        self.highest_sacked = seg
            .sack
            .iter()
            .flatten()
            .map(|&(_, end)| end)
            .fold(self.highest_sacked, u64::max);
        let mut i = 0;
        while i < self.segs.len() {
            let s = &self.segs[i];
            let covered = seg
                .sack
                .iter()
                .flatten()
                .any(|&(start, end)| s.seq >= start && s.seq + s.len <= end);
            if covered {
                if s.lost {
                    self.lost_count -= 1;
                }
                newly_delivered += s.len;
                if s.delivered_at_send >= self.next_round_delivered {
                    round_start = true;
                }
                if newest_acked.is_none_or(|(d, _, _)| s.delivered_at_send > d) {
                    newest_acked =
                        Some((s.delivered_at_send, s.delivered_time_at_send, s.retx > 0));
                }
                self.segs.swap_remove(i);
            } else {
                i += 1;
            }
        }

        self.delivered += newly_delivered;
        if round_start {
            self.round += 1;
            self.next_round_delivered = self.delivered;
        }

        // Duplicate-ack counting (cumulative ack unchanged, nothing new).
        if seg.ack == old_una && newly_delivered == 0 && !self.segs.is_empty() {
            self.dupacks += 1;
        }

        // Loss detection: SACK distance (≈ RFC 6675 DupThresh) or 3 dupacks
        // for the segment at snd_una. A segment that was already
        // retransmitted is only re-marked once a smoothed RTT has passed
        // since that retransmission (a RACK-style reordering window) —
        // otherwise the stale SACK hole above it would re-mark it on every
        // ack and the sender would spray duplicates of the same segment.
        let mss = self.mss();
        let rtt_gate = self.srtt.unwrap_or(INITIAL_RTO);
        let highest_sacked = self.highest_sacked;
        let mut newly_lost = false;
        for s in self.segs.iter_mut() {
            if s.lost {
                continue;
            }
            let sack_hole = highest_sacked >= s.seq + s.len + 2 * mss;
            let dup_trigger = self.dupacks >= 3 && s.seq == self.snd_una;
            let gate_open = s.retx == 0 || now.saturating_since(s.sent_at) >= rtt_gate;
            if (sack_hole || dup_trigger) && gate_open {
                s.lost = true;
                self.lost_count += 1;
                newly_lost = true;
            }
        }
        if newly_lost && !self.in_recovery() {
            self.recovery_point = self.next_seq;
            self.fast_retransmit_events += 1;
            let pipe = self.pipe();
            self.cca.on_congestion_event(now, pipe);
            ctx.telemetry()
                .fast_retransmit(now, self.cfg.flow.0, self.cca.cwnd());
        }

        if let Some(r) = rtt_sample {
            self.update_rtt(r);
        }

        // ECE echo (RFC 3168 § 6.1): the receiver saw CE since its last
        // clean ack. Dispatched on every ECE-bearing ack; per-round gating
        // is the controller's job (see `CongestionControl::on_ecn`).
        if seg.ece {
            self.cca.on_ecn(now, self.pipe());
        }

        if newly_delivered > 0 {
            // Flight-spanning rate sample (delivery-rate-estimation draft):
            // delivered delta since the newest acked segment was sent, over
            // the elapsed time. Smooth, but blind to short-timescale drain
            // bursts.
            let flight_rate = newest_acked.and_then(|(d_at, t_at, was_retx)| {
                if was_retx {
                    return None;
                }
                let interval = now.saturating_since(t_at);
                if interval < SimDuration::from_millis(1) {
                    return None;
                }
                BitRate::from_delivery(Bytes(self.delivered - d_at), interval)
            });

            // Ack-clock rate sample: bytes delivered over the last few
            // back-to-back acks. When this flow's packets drain the
            // bottleneck consecutively (e.g. in a competitor's pacing
            // gaps), this measures close to the *link* rate — the spiky
            // samples that keep real BBRv1's windowed-max bandwidth filter
            // (and so its 2×BDP in-flight cap) high while competing, the
            // overestimation/standing-queue behaviour measured by Hock et
            // al. Guarded against hole-fill cumacks, whose byte jumps are
            // not wire-rate evidence (Karn's rule again).
            let mss = self.mss();
            let hole_fill = newly_delivered > 2 * mss || newest_acked.is_some_and(|(_, _, r)| r);
            let mut delivery_rate = flight_rate;
            if hole_fill {
                self.burst_anchor = None;
            } else {
                match self.burst_anchor {
                    None => self.burst_anchor = Some((now, self.delivered)),
                    Some((t, d)) => {
                        let dt = now.saturating_since(t);
                        if dt > SimDuration::from_millis(100) {
                            self.burst_anchor = Some((now, self.delivered));
                        } else if self.delivered - d >= 4 * mss
                            && dt >= SimDuration::from_micros(200)
                        {
                            let burst = BitRate::from_delivery(Bytes(self.delivered - d), dt);
                            delivery_rate = match (delivery_rate, burst) {
                                (Some(f), Some(b)) => Some(f.max(b)),
                                (None, b) => b,
                                (f, None) => f,
                            };
                            self.burst_anchor = Some((now, self.delivered));
                        }
                    }
                }
            }
            let info = AckInfo {
                now,
                bytes_acked: newly_delivered,
                rtt: rtt_sample,
                srtt: self.srtt.unwrap_or(INITIAL_RTO),
                min_rtt: self.min_rtt,
                delivered: self.delivered,
                delivery_rate,
                in_flight: self.pipe(),
                round_start,
                round: self.round,
                app_limited: false,
            };
            self.cca.on_ack(&info);
            if ctx.telemetry().is_enabled() {
                let flow = self.cfg.flow.0;
                let tel = ctx.telemetry();
                tel.cwnd(now, flow, self.cca.cwnd(), self.cca.ssthresh());
                if let Some(rate) = self.cca.pacing_rate() {
                    tel.pacing(now, flow, rate.as_bps());
                }
            }
        }

        // Refresh the RTO clock from the oldest outstanding transmission.
        self.rearm_rto_from_oldest(ctx);

        self.try_send(ctx);
    }

    fn on_rto_fire(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        if now < self.rto_timer_at {
            // Stale firing: the deadline moved earlier after this timer was
            // set, and a newer, earlier timer is still pending.
            return;
        }
        self.rto_timer_at = SimTime::MAX;
        if self.segs.is_empty() || self.rto_deadline == SimTime::MAX {
            return;
        }
        if now < self.rto_deadline {
            // The deadline moved out while the timer was in flight; re-arm.
            self.rto_timer_at = self.rto_deadline;
            ctx.set_timer(self.rto_deadline.saturating_since(now), TOK_RTO);
            return;
        }
        // Genuine timeout: everything outstanding is presumed lost.
        self.rto_fired_at = now;
        self.rto_events += 1;
        self.cca.on_rto(now);
        for s in self.segs.iter_mut() {
            if !s.lost {
                s.lost = true;
                self.lost_count += 1;
            }
        }
        self.dupacks = 0;
        self.recovery_point = self.next_seq;
        self.rto_backoff += 1;
        ctx.telemetry().rto(
            now,
            self.cfg.flow.0,
            self.cur_rto(),
            self.rto_backoff as u64,
        );
        let deadline = now + self.cur_rto();
        self.arm_rto(ctx, deadline);
        self.try_send(ctx);
    }
}

impl Agent for TcpSender {
    fn on_start(&mut self, ctx: &mut Ctx) {
        let delay = self.cfg.start_at.saturating_since(ctx.now());
        ctx.set_timer(delay, TOK_START);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        if let Payload::Tcp(seg) = pkt.payload {
            if seg.len == 0 {
                self.process_ack(seg, ctx.now(), ctx);
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        match token {
            TOK_START => {
                self.running = true;
                self.pace_next = ctx.now();
                self.try_send(ctx);
            }
            TOK_RTO => self.on_rto_fire(ctx),
            TOK_PACE => {
                self.pace_timer_armed = false;
                self.try_send(ctx);
            }
            _ => {}
        }
    }
}

/// TCP receiver agent: acks with timestamp echo and SACK. By default every
/// data segment is acked immediately; [`TcpReceiver::with_delayed_acks`]
/// switches to Linux-style delayed acks (ack every second full segment, or
/// after 40 ms, whichever first — out-of-order data is always acked at
/// once so loss recovery is never delayed).
pub struct TcpReceiver {
    ack_flow: FlowId,
    peer_node: NodeId,
    peer_agent: AgentId,
    rcv_nxt: u64,
    /// Out-of-order ranges, keyed by start, non-overlapping.
    ooo: BTreeMap<u64, u64>,
    bytes_received: u64,
    segments_received: u64,
    delayed_acks: bool,
    /// Segments received since the last ack was sent (delayed-ack mode).
    unacked_segments: u32,
    /// Timestamp to echo when the delayed-ack timer fires.
    pending_ts: Option<SimTime>,
    /// Most recent data seq, for SACK block ordering on a delayed ack.
    pending_recent_seq: u64,
    delack_timer_armed: bool,
    /// A CE-marked data segment arrived since the last ack went out; the
    /// next ack (immediate or delayed) echoes it as ECE (RFC 3168 § 6.1).
    ce_pending: bool,
    /// Total CE-marked data segments seen (diagnostics).
    ce_received: u64,
}

/// Delayed-ack timeout (Linux: ~40 ms).
const DELACK_TIMEOUT: SimDuration = SimDuration::from_millis(40);
const TOK_DELACK: u64 = 10;

impl TcpReceiver {
    /// Acks are sent on `ack_flow` to `(peer_node, peer_agent)`.
    pub fn new(ack_flow: FlowId, peer_node: NodeId, peer_agent: AgentId) -> Self {
        TcpReceiver {
            ack_flow,
            peer_node,
            peer_agent,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            bytes_received: 0,
            segments_received: 0,
            delayed_acks: false,
            unacked_segments: 0,
            pending_ts: None,
            pending_recent_seq: 0,
            delack_timer_armed: false,
            ce_pending: false,
            ce_received: 0,
        }
    }

    /// Enable Linux-style delayed acks.
    pub fn with_delayed_acks(mut self) -> Self {
        self.delayed_acks = true;
        self
    }

    /// In-order bytes received so far.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Total data segments received (including out of order).
    pub fn segments_received(&self) -> u64 {
        self.segments_received
    }

    /// Next expected sequence number.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// CE-marked data segments seen so far.
    pub fn ce_received(&self) -> u64 {
        self.ce_received
    }

    fn insert_ooo(&mut self, start: u64, end: u64) {
        // Merge [start, end) into the range set.
        let mut start = start;
        let mut end = end;
        // Merge with a predecessor that overlaps or touches.
        if let Some((&ps, &pe)) = self.ooo.range(..=start).next_back() {
            if pe >= start {
                start = ps;
                end = end.max(pe);
                self.ooo.remove(&ps);
            }
        }
        // Merge with successors.
        let succs: Vec<u64> = self
            .ooo
            .range(start..)
            .take_while(|&(&s, _)| s <= end)
            .map(|(&s, _)| s)
            .collect();
        for s in succs {
            let e = self.ooo.remove(&s).expect("key just observed");
            end = end.max(e);
        }
        self.ooo.insert(start, end);
    }

    fn sack_blocks(&self, recent_seq: u64) -> [Option<(u64, u64)>; 3] {
        let mut blocks = [None; 3];
        let mut idx = 0;
        // RFC 2018: the block containing the most recently received segment
        // goes first.
        for (&s, &e) in &self.ooo {
            if recent_seq >= s && recent_seq < e {
                blocks[0] = Some((s, e));
                idx = 1;
                break;
            }
        }
        for (&s, &e) in &self.ooo {
            if idx >= 3 {
                break;
            }
            if blocks[0] == Some((s, e)) {
                continue;
            }
            blocks[idx] = Some((s, e));
            idx += 1;
        }
        blocks
    }
}

impl Agent for TcpReceiver {
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        if token == TOK_DELACK {
            self.delack_timer_armed = false;
            if let Some(ts) = self.pending_ts {
                let seq = self.pending_recent_seq;
                self.send_ack(ctx, Some(ts), seq);
            }
        }
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let Payload::Tcp(seg) = pkt.payload else {
            return;
        };
        if seg.len == 0 {
            return;
        }
        self.segments_received += 1;
        // Latch CE before any ack path (including the delayed-ack early
        // return) so no mark is ever lost.
        if pkt.ecn == Ecn::Ce {
            self.ce_pending = true;
            self.ce_received += 1;
        }
        let start = seg.seq;
        let end = seg.seq + seg.len as u64;

        if start <= self.rcv_nxt {
            if end > self.rcv_nxt {
                self.bytes_received += end - self.rcv_nxt;
                self.rcv_nxt = end;
                // Pull any now-contiguous out-of-order data.
                while let Some((&s, &e)) = self.ooo.iter().next() {
                    if s <= self.rcv_nxt {
                        if e > self.rcv_nxt {
                            self.bytes_received += e - self.rcv_nxt;
                            self.rcv_nxt = e;
                        }
                        self.ooo.remove(&s);
                    } else {
                        break;
                    }
                }
            }
            // else: pure duplicate, still ack it.
        } else {
            self.insert_ooo(start, end);
        }

        // Delayed-ack gate: in-order data may wait for a second segment or
        // the 40 ms timer; anything out of order (or filling a hole) must
        // be acked immediately so the sender's loss detection stays sharp.
        self.unacked_segments += 1;
        let in_order_simple = start <= self.rcv_nxt && self.ooo.is_empty();
        if self.delayed_acks && in_order_simple && self.unacked_segments < 2 {
            self.pending_ts = Some(pkt.sent_at);
            self.pending_recent_seq = start;
            if !self.delack_timer_armed {
                self.delack_timer_armed = true;
                ctx.set_timer(DELACK_TIMEOUT, TOK_DELACK);
            }
            return;
        }
        self.send_ack(ctx, Some(pkt.sent_at), start);
    }
}

impl TcpReceiver {
    fn send_ack(&mut self, ctx: &mut Ctx, ts: Option<SimTime>, recent_seq: u64) {
        self.unacked_segments = 0;
        self.pending_ts = None;
        let mut ack = TcpSegment::pure_ack(self.rcv_nxt, u64::MAX / 2, ts);
        ack.sack = self.sack_blocks(recent_seq);
        // Echo-and-clear: the simulator's ack path is lossy too, but the
        // sender reacts at most once per round anyway, so a lost ECE costs
        // one gating window, not correctness.
        ack.ece = self.ce_pending;
        self.ce_pending = false;
        ctx.send(PacketSpec {
            flow: self.ack_flow,
            dst: self.peer_node,
            dst_agent: self.peer_agent,
            size: ACK_SIZE,
            ecn: Ecn::NotEct,
            payload: Payload::Tcp(ack),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsrepro_netsim::link::LinkSpec;
    use gsrepro_netsim::net::{NetworkBuilder, Sim};
    use gsrepro_netsim::queue::QueueSpec;
    use gsrepro_netsim::Shaper;

    /// Build server --bottleneck--> client with an ack path back.
    /// Returns (sim, data flow, sender agent id).
    fn tcp_sim(
        cca: CcaKind,
        rate_mbps: u64,
        queue_bytes: u64,
        owd_ms: u64,
        seed: u64,
    ) -> (Sim, FlowId, AgentId) {
        let mut b = NetworkBuilder::new(seed);
        let server = b.add_node("server");
        let client = b.add_node("client");
        b.link(
            server,
            client,
            LinkSpec {
                shaper: Shaper::rate(BitRate::from_mbps(rate_mbps)),
                delay: SimDuration::from_millis(owd_ms),
                queue: QueueSpec::DropTail {
                    limit: Bytes(queue_bytes),
                },
                jitter: SimDuration::ZERO,
                loss_prob: 0.0,
                dup_prob: 0.0,
            },
        );
        b.link(
            client,
            server,
            LinkSpec::lan(SimDuration::from_millis(owd_ms)),
        );
        let data = b.flow("tcp-data");
        let acks = b.flow("tcp-ack");
        // Agent ids are assigned in insertion order: sender = 0, receiver = 1.
        let sender_cfg = TcpSenderConfig::new(data, client, AgentId(1), cca);
        let sender = b.add_agent(server, Box::new(TcpSender::new(sender_cfg)));
        b.add_agent(client, Box::new(TcpReceiver::new(acks, server, sender)));
        (b.build(), data, sender)
    }

    #[test]
    fn cubic_saturates_the_link() {
        let (mut sim, data, _) = tcp_sim(CcaKind::Cubic, 25, 100_000, 8, 1);
        sim.run_until(SimTime::from_secs(30));
        let gp = sim.goodput_mbps(data, SimTime::from_secs(5), SimTime::from_secs(30));
        assert!(gp > 23.0, "cubic goodput {gp} must approach 25 Mb/s");
        assert!(gp < 25.5, "goodput {gp} cannot exceed capacity");
    }

    #[test]
    fn reno_saturates_the_link() {
        let (mut sim, data, _) = tcp_sim(CcaKind::Reno, 15, 60_000, 8, 2);
        sim.run_until(SimTime::from_secs(30));
        let gp = sim.goodput_mbps(data, SimTime::from_secs(5), SimTime::from_secs(30));
        assert!(gp > 13.5, "reno goodput {gp} must approach 15 Mb/s");
    }

    #[test]
    fn bbr_saturates_without_filling_queue() {
        let (mut sim, data, sender) = tcp_sim(CcaKind::Bbr, 25, 400_000, 8, 3);
        sim.run_until(SimTime::from_secs(30));
        let gp = sim.goodput_mbps(data, SimTime::from_secs(5), SimTime::from_secs(30));
        assert!(gp > 22.0, "bbr goodput {gp} must approach 25 Mb/s");
        // BBR caps in-flight at ~2 BDP, so OWD stays far below the 128 ms
        // this 400 kB queue would add if filled (Cubic fills it).
        let st = sim.net.monitor().stats(data);
        assert!(
            st.owd.mean() < 40.0,
            "BBR should not sustain a full queue; owd = {} ms",
            st.owd.mean()
        );
        let s: &TcpSender = sim.net.agent(sender);
        assert_eq!(s.cca().name(), "bbr");
    }

    #[test]
    fn cubic_fills_large_queue() {
        let (mut sim, data, _) = tcp_sim(CcaKind::Cubic, 25, 400_000, 8, 4);
        sim.run_until(SimTime::from_secs(30));
        let st = sim.net.monitor().stats(data);
        // 400 kB at 25 Mb/s = 128 ms of queueing when full; Cubic rides near
        // full, so mean OWD must be large.
        assert!(
            st.owd.mean() > 60.0,
            "cubic should bloat the queue; owd = {} ms",
            st.owd.mean()
        );
    }

    #[test]
    fn vegas_keeps_queue_nearly_empty() {
        let (mut sim, data, _) = tcp_sim(CcaKind::Vegas, 25, 400_000, 8, 5);
        sim.run_until(SimTime::from_secs(30));
        let st = sim.net.monitor().stats(data);
        assert!(
            st.owd.mean() < 15.0,
            "vegas targets a few queued packets; owd = {} ms",
            st.owd.mean()
        );
        let gp = sim.goodput_mbps(data, SimTime::from_secs(5), SimTime::from_secs(30));
        assert!(gp > 20.0, "vegas goodput {gp}");
    }

    /// Like [`tcp_sim`] but with a CoDel AQM at the bottleneck. Returns
    /// (sim, data flow, sender agent, receiver agent).
    fn tcp_sim_codel(
        cca: CcaKind,
        rate_mbps: u64,
        queue_bytes: u64,
        owd_ms: u64,
        seed: u64,
    ) -> (Sim, FlowId, AgentId, AgentId) {
        let mut b = NetworkBuilder::new(seed);
        let server = b.add_node("server");
        let client = b.add_node("client");
        b.link(
            server,
            client,
            LinkSpec {
                shaper: Shaper::rate(BitRate::from_mbps(rate_mbps)),
                delay: SimDuration::from_millis(owd_ms),
                queue: QueueSpec::codel_default(Bytes(queue_bytes)),
                jitter: SimDuration::ZERO,
                loss_prob: 0.0,
                dup_prob: 0.0,
            },
        );
        b.link(
            client,
            server,
            LinkSpec::lan(SimDuration::from_millis(owd_ms)),
        );
        let data = b.flow("tcp-data");
        let acks = b.flow("tcp-ack");
        let sender_cfg = TcpSenderConfig::new(data, client, AgentId(1), cca);
        let sender = b.add_agent(server, Box::new(TcpSender::new(sender_cfg)));
        let recv = b.add_agent(client, Box::new(TcpReceiver::new(acks, server, sender)));
        (b.build(), data, sender, recv)
    }

    #[test]
    fn bbr2_over_codel_is_marked_not_dropped() {
        // The full ECN loop: bbr2 negotiates ECT, CoDel CE-marks at the
        // control-law cadence instead of dropping, the receiver echoes ECE,
        // and the sender backs off — so the flow sees congestion signals
        // without a single retransmission.
        let (mut sim, data, sender, recv) = tcp_sim_codel(CcaKind::Bbr2, 25, 400_000, 8, 6);
        sim.run_until(SimTime::from_secs(30));
        let st = sim.net.monitor().stats(data);
        assert!(
            st.ce_marked_pkts > 0,
            "CoDel must CE-mark an ECT flow under load"
        );
        assert_eq!(
            st.queue_drop_pkts, 0,
            "ECT traffic must not be AQM-dropped ({} drops)",
            st.queue_drop_pkts
        );
        let s: &TcpSender = sim.net.agent(sender);
        assert_eq!(s.cca().name(), "bbr2");
        assert_eq!(
            s.retransmissions(),
            0,
            "no drops means nothing to retransmit"
        );
        let r: &TcpReceiver = sim.net.agent(recv);
        assert!(r.ce_received() > 0, "marks must reach the receiver");
        assert!(
            r.ce_received() <= st.ce_marked_pkts,
            "receiver saw {} CE, path marked {}",
            r.ce_received(),
            st.ce_marked_pkts
        );
        // CoDel + an inflight-bounded sender keeps standing delay low.
        assert!(
            st.owd.mean() < 30.0,
            "bbr2-over-CoDel owd = {} ms",
            st.owd.mean()
        );
        let gp = sim.goodput_mbps(data, SimTime::from_secs(5), SimTime::from_secs(30));
        assert!(gp > 20.0, "bbr2 goodput {gp} must stay near 25 Mb/s");
    }

    #[test]
    fn non_ecn_cca_over_codel_sees_drops_not_marks() {
        // Cubic never negotiates ECT, so the same AQM must fall back to
        // dropping: zero CE marks, some queue drops.
        let (mut sim, data, _, recv) = tcp_sim_codel(CcaKind::Cubic, 25, 400_000, 8, 7);
        sim.run_until(SimTime::from_secs(30));
        let st = sim.net.monitor().stats(data);
        assert_eq!(st.ce_marked_pkts, 0, "Not-ECT traffic must never be marked");
        assert!(
            st.queue_drop_pkts > 0,
            "CoDel must drop a Not-ECT cubic flow"
        );
        let r: &TcpReceiver = sim.net.agent(recv);
        assert_eq!(r.ce_received(), 0);
    }

    #[test]
    fn losses_are_recovered_exactly() {
        // Random 1% wire loss: receiver must still see a contiguous stream,
        // i.e. everything the app counts was really delivered in order.
        let mut b = NetworkBuilder::new(17);
        let server = b.add_node("server");
        let client = b.add_node("client");
        b.link(
            server,
            client,
            LinkSpec::bottleneck(
                BitRate::from_mbps(10),
                Bytes(50_000),
                SimDuration::from_millis(10),
            )
            .with_loss(0.01),
        );
        b.link(client, server, LinkSpec::lan(SimDuration::from_millis(10)));
        let data = b.flow("d");
        let acks = b.flow("a");
        let cfg = TcpSenderConfig::new(data, client, AgentId(1), CcaKind::Cubic);
        let sender = b.add_agent(server, Box::new(TcpSender::new(cfg)));
        let recv = b.add_agent(client, Box::new(TcpReceiver::new(acks, server, sender)));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(20));
        let s: &TcpSender = sim.net.agent(sender);
        assert!(
            s.retransmissions() > 0,
            "1% loss must cause retransmissions"
        );
        let r: &TcpReceiver = sim.net.agent(recv);
        assert!(r.bytes_received() > 1_000_000);
        // The sender's delivered counter and receiver's in-order byte count
        // agree within one window.
        let gap = s.delivered_bytes() as i64 - r.bytes_received() as i64;
        assert!(
            gap.abs() < 1_000_000,
            "delivered {} vs received {}",
            s.delivered_bytes(),
            r.bytes_received()
        );
    }

    #[test]
    fn two_cubic_flows_share_fairly() {
        let mut b = NetworkBuilder::new(21);
        let server = b.add_node("server");
        let client = b.add_node("client");
        b.link(
            server,
            client,
            LinkSpec::bottleneck(
                BitRate::from_mbps(20),
                Bytes(80_000),
                SimDuration::from_millis(8),
            ),
        );
        b.link(client, server, LinkSpec::lan(SimDuration::from_millis(8)));
        let mut flows = vec![];
        for i in 0..2 {
            let data = b.flow(format!("d{i}"));
            let acks = b.flow(format!("a{i}"));
            let recv_id = AgentId(i * 2 + 1);
            let cfg = TcpSenderConfig::new(data, client, recv_id, CcaKind::Cubic);
            let sender = b.add_agent(server, Box::new(TcpSender::new(cfg)));
            b.add_agent(client, Box::new(TcpReceiver::new(acks, server, sender)));
            flows.push(data);
        }
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(60));
        let g1 = sim.goodput_mbps(flows[0], SimTime::from_secs(20), SimTime::from_secs(60));
        let g2 = sim.goodput_mbps(flows[1], SimTime::from_secs(20), SimTime::from_secs(60));
        let jfi = (g1 + g2).powi(2) / (2.0 * (g1 * g1 + g2 * g2));
        assert!(
            jfi > 0.9,
            "intra-protocol fairness: JFI {jfi} (g1={g1}, g2={g2})"
        );
        assert!(g1 + g2 > 18.0, "link underutilized: {g1}+{g2}");
    }

    #[test]
    fn sender_respects_active_window() {
        let mut b = NetworkBuilder::new(23);
        let server = b.add_node("server");
        let client = b.add_node("client");
        b.link(
            server,
            client,
            LinkSpec::bottleneck(
                BitRate::from_mbps(10),
                Bytes(40_000),
                SimDuration::from_millis(5),
            ),
        );
        b.link(client, server, LinkSpec::lan(SimDuration::from_millis(5)));
        let data = b.flow("d");
        let acks = b.flow("a");
        let cfg = TcpSenderConfig::new(data, client, AgentId(1), CcaKind::Cubic)
            .active_during(SimTime::from_secs(5), SimTime::from_secs(10));
        let sender = b.add_agent(server, Box::new(TcpSender::new(cfg)));
        b.add_agent(client, Box::new(TcpReceiver::new(acks, server, sender)));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(20));
        let st = sim.net.monitor().stats(data);
        assert_eq!(
            st.mean_goodput_mbps(SimTime::ZERO, SimTime::from_secs(5)),
            0.0
        );
        let active = st.mean_goodput_mbps(SimTime::from_secs(6), SimTime::from_secs(10));
        assert!(active > 8.0, "active-phase goodput {active}");
        let after = st.mean_goodput_mbps(SimTime::from_secs(11), SimTime::from_secs(20));
        assert!(after < 0.1, "post-stop goodput {after}");
    }

    #[test]
    fn receiver_reassembles_out_of_order() {
        let mut r = TcpReceiver::new(FlowId(0), NodeId(0), AgentId(0));
        r.insert_ooo(1000, 2000);
        r.insert_ooo(3000, 4000);
        r.insert_ooo(2000, 3000); // bridges the gap
        assert_eq!(r.ooo.len(), 1);
        assert_eq!(r.ooo.get(&1000), Some(&4000));
        // Overlapping insert merges too.
        r.insert_ooo(500, 1500);
        assert_eq!(r.ooo.len(), 1);
        assert_eq!(r.ooo.get(&500), Some(&4000));
    }

    #[test]
    fn sack_block_ordering_puts_recent_first() {
        let mut r = TcpReceiver::new(FlowId(0), NodeId(0), AgentId(0));
        r.insert_ooo(1000, 2000);
        r.insert_ooo(5000, 6000);
        r.insert_ooo(9000, 10_000);
        let blocks = r.sack_blocks(5500);
        assert_eq!(blocks[0], Some((5000, 6000)));
        assert!(blocks[1].is_some() && blocks[2].is_some());
    }

    #[test]
    fn app_limited_sender_respects_budget() {
        let mut b = NetworkBuilder::new(41);
        let server = b.add_node("server");
        let client = b.add_node("client");
        b.link(
            server,
            client,
            LinkSpec::bottleneck(
                BitRate::from_mbps(50),
                Bytes(200_000),
                SimDuration::from_millis(5),
            ),
        );
        b.link(client, server, LinkSpec::lan(SimDuration::from_millis(5)));
        let data = b.flow("d");
        let acks = b.flow("a");
        let cfg = TcpSenderConfig::new(data, client, AgentId(1), CcaKind::Cubic);
        let mut sender_agent = TcpSender::new(cfg);
        sender_agent.set_app_limited();
        sender_agent.queue_app_bytes(500_000);
        let sender = b.add_agent(server, Box::new(sender_agent));
        b.add_agent(client, Box::new(TcpReceiver::new(acks, server, sender)));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(10));
        let s: &TcpSender = sim.net.agent(sender);
        // Exactly the budget is delivered, nothing more.
        assert_eq!(s.delivered_bytes(), 500_000);
        assert_eq!(s.app_budget(), 0);
        let st = sim.net.monitor().stats(data);
        // And the sender went idle long before the end (10 s at 50 Mb/s
        // could carry 60+ MB).
        assert!(st.sent_bytes.as_u64() < 700_000);
    }

    #[test]
    fn rto_rearms_earlier_after_backoff_reset() {
        // Regression: `arm_rto` used to be a pure no-op while a timer was
        // pending. After a long outage escalates the backoff, the pending
        // timer sits minutes out; when the path heals and an ack resets the
        // backoff, the recomputed (much earlier) deadline must get its own
        // timer — otherwise a second loss episode stalls until the stale
        // backed-off timer finally fires.
        let mut b = NetworkBuilder::new(31);
        let server = b.add_node("server");
        let client = b.add_node("client");
        let fwd = b.link(
            server,
            client,
            LinkSpec::bottleneck(
                BitRate::from_mbps(10),
                Bytes(40_000),
                SimDuration::from_millis(5),
            ),
        );
        b.link(client, server, LinkSpec::lan(SimDuration::from_millis(5)));
        let data = b.flow("d");
        let acks = b.flow("a");
        let cfg = TcpSenderConfig::new(data, client, AgentId(1), CcaKind::Cubic);
        let sender = b.add_agent(server, Box::new(TcpSender::new(cfg)));
        b.add_agent(client, Box::new(TcpReceiver::new(acks, server, sender)));
        let mut sim = b.build();
        // Outage #1 (7 s) escalates the backoff: in-outage RTOs fire at
        // ~2.2 through ~6.6 s, leaving a backed-off timer pending at
        // ~10.85 s. When the link heals at 9 s the parked queue delivers,
        // the acks reset the backoff, and the flow resumes — but under the
        // old no-op arm that ~10.85 s timer is still the only one pending.
        // Outage #2 (9.3 → 9.8 s) also nukes the queue, so parked packets
        // cannot carry SACK recovery; only the RTO can restart the flow.
        // The fixed arm keeps a timer tracking the ~200 ms deadline, so
        // RTOs fire on time during the outage and the flow resumes by
        // ~10 s; the stale arm stayed dark until the ~10.85 s firing.
        sim.apply_scenario(
            &gsrepro_netsim::ScenarioSpec::new()
                .outage(SimTime::from_secs(2), SimTime::from_secs(9), fwd)
                .outage(
                    SimTime::from_millis(9_300),
                    SimTime::from_millis(9_800),
                    fwd,
                )
                .queue_limit(SimTime::from_millis(9_350), fwd, Bytes(0))
                .queue_limit(SimTime::from_millis(9_800), fwd, Bytes(40_000)),
        );
        sim.run_until(SimTime::from_secs(12));
        let st = sim.net.monitor().stats(data);
        let resumed =
            st.mean_goodput_mbps(SimTime::from_millis(10_000), SimTime::from_millis(10_800));
        assert!(
            resumed > 2.0,
            "flow must resume within ~2 RTOs of outage #2 ending, got {resumed} Mb/s"
        );
        let s: &TcpSender = sim.net.agent(sender);
        assert!(s.rto_events() >= 2, "rto events {}", s.rto_events());
    }

    #[test]
    fn rto_recovers_from_total_blackout() {
        // A tiny queue and a huge burst of loss: ensure RTO fires and the
        // flow still completes data afterwards.
        let mut b = NetworkBuilder::new(29);
        let server = b.add_node("server");
        let client = b.add_node("client");
        b.link(
            server,
            client,
            LinkSpec::bottleneck(
                BitRate::from_mbps(5),
                Bytes(6_000),
                SimDuration::from_millis(20),
            )
            .with_loss(0.08),
        );
        b.link(client, server, LinkSpec::lan(SimDuration::from_millis(20)));
        let data = b.flow("d");
        let acks = b.flow("a");
        let cfg = TcpSenderConfig::new(data, client, AgentId(1), CcaKind::Reno);
        let sender = b.add_agent(server, Box::new(TcpSender::new(cfg)));
        b.add_agent(client, Box::new(TcpReceiver::new(acks, server, sender)));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(60));
        let s: &TcpSender = sim.net.agent(sender);
        assert!(
            s.delivered_bytes() > 5_000_000,
            "delivered {}",
            s.delivered_bytes()
        );
    }
}
