//! TCP Vegas (Brakmo & Peterson, 1994) — the delay-based baseline.
//!
//! Vegas compares expected throughput (`cwnd / base_rtt`) with actual
//! throughput (`cwnd / rtt`) once per round trip. The difference, expressed
//! in segments of queue occupancy, is held between `ALPHA` and `BETA` by
//! additive ±1-segment adjustments — keeping only a couple of packets in
//! the bottleneck queue. Turkovic et al. (2019) use Vegas as the
//! delay-based representative when studying inter-CCA interactions; it is
//! included here for the same role in the extension benches.

use gsrepro_simcore::{BitRate, SimDuration, SimTime};

use super::{AckInfo, CongestionControl, INITIAL_WINDOW_SEGMENTS};

/// Lower bound on queued segments.
const ALPHA: f64 = 2.0;
/// Upper bound on queued segments.
const BETA: f64 = 4.0;
/// Slow-start exit threshold on queued segments.
const GAMMA: f64 = 1.0;

/// TCP Vegas congestion control.
pub struct Vegas {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Lower bound on queued segments (standard: [`ALPHA`]).
    alpha: f64,
    /// Upper bound on queued segments (standard: [`BETA`]). See
    /// [`Vegas::with_band`].
    beta: f64,
    base_rtt: SimDuration,
    /// Minimum RTT observed within the current round.
    round_min_rtt: SimDuration,
    round_start_time: SimTime,
    in_slow_start: bool,
}

impl Vegas {
    /// New controller with the Linux initial window.
    pub fn new(mss: u64) -> Self {
        Self::with_band(mss, ALPHA, BETA)
    }

    /// New controller with a custom (α, β) queue-occupancy band — a
    /// conformance-kit perturbation knob (the golden fixtures must detect
    /// a shifted band).
    pub fn with_band(mss: u64, alpha: f64, beta: f64) -> Self {
        Vegas {
            mss,
            cwnd: INITIAL_WINDOW_SEGMENTS * mss,
            ssthresh: u64::MAX,
            alpha,
            beta,
            base_rtt: SimDuration::MAX,
            round_min_rtt: SimDuration::MAX,
            round_start_time: SimTime::ZERO,
            in_slow_start: true,
        }
    }

    /// Segments of data estimated queued at the bottleneck.
    fn diff_segments(&self, rtt: SimDuration) -> f64 {
        if self.base_rtt == SimDuration::MAX || rtt.is_zero() {
            return 0.0;
        }
        let w = self.cwnd as f64 / self.mss as f64;
        let expected = w / self.base_rtt.as_secs_f64();
        let actual = w / rtt.as_secs_f64();
        (expected - actual) * self.base_rtt.as_secs_f64()
    }
}

impl CongestionControl for Vegas {
    fn on_ack(&mut self, ack: &AckInfo) {
        if let Some(rtt) = ack.rtt {
            if rtt < self.base_rtt {
                self.base_rtt = rtt;
            }
            if rtt < self.round_min_rtt {
                self.round_min_rtt = rtt;
            }
        }

        if !ack.round_start {
            // Vegas adjusts once per round trip.
            if self.in_slow_start {
                // Slow start still grows per ack (every other round in the
                // original; simplified to standard doubling here).
                self.cwnd += ack.bytes_acked;
            }
            return;
        }

        let rtt = if self.round_min_rtt == SimDuration::MAX {
            ack.srtt
        } else {
            self.round_min_rtt
        };
        self.round_min_rtt = SimDuration::MAX;
        self.round_start_time = ack.now;
        let diff = self.diff_segments(rtt);

        if self.in_slow_start {
            if diff > GAMMA {
                // Queue building: leave slow start and correct.
                self.in_slow_start = false;
                self.ssthresh = self.cwnd;
                self.cwnd = (self.cwnd - (diff as u64).saturating_mul(self.mss)).max(2 * self.mss);
            }
            return;
        }

        if diff < self.alpha {
            self.cwnd += self.mss;
        } else if diff > self.beta {
            self.cwnd = self.cwnd.saturating_sub(self.mss).max(2 * self.mss);
        }
        // alpha ≤ diff ≤ beta: hold.
    }

    fn on_congestion_event(&mut self, _now: SimTime, _in_flight: u64) {
        self.cwnd = (self.cwnd * 3 / 4).max(2 * self.mss);
        self.ssthresh = self.cwnd;
        self.in_slow_start = false;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = 2 * self.mss;
        self.in_slow_start = false;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn pacing_rate(&self) -> Option<BitRate> {
        None
    }

    fn in_slow_start(&self) -> bool {
        self.in_slow_start
    }

    fn name(&self) -> &'static str {
        "vegas"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1448;

    fn ack(now_ms: u64, rtt_ms: u64, round: u64, round_start: bool) -> AckInfo {
        AckInfo {
            now: SimTime::from_millis(now_ms),
            bytes_acked: MSS,
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            srtt: SimDuration::from_millis(rtt_ms),
            min_rtt: SimDuration::from_millis(20),
            delivered: 0,
            delivery_rate: None,
            in_flight: 0,
            round_start,
            round,
            app_limited: false,
        }
    }

    #[test]
    fn holds_window_when_queue_in_band() {
        let mut v = Vegas::new(MSS);
        v.in_slow_start = false;
        v.base_rtt = SimDuration::from_millis(20);
        let w0 = v.cwnd();
        // 10 segments in cwnd; diff = w*(1 - base/rtt)... choose rtt so
        // diff lands between ALPHA and BETA: w=10, rtt=26.67 → diff = 2.5.
        for r in 1..10 {
            v.on_ack(&ack(r * 27, 27, r, true));
        }
        // diff = 10 * (1 - 20/27) = 2.59 → in [2, 4] → hold.
        assert_eq!(v.cwnd(), w0);
    }

    #[test]
    fn grows_when_queue_below_alpha() {
        let mut v = Vegas::new(MSS);
        v.in_slow_start = false;
        v.base_rtt = SimDuration::from_millis(20);
        let w0 = v.cwnd();
        // rtt == base → diff 0 < ALPHA → +1 MSS per round.
        for r in 1..5 {
            v.on_ack(&ack(r * 20, 20, r, true));
        }
        assert_eq!(v.cwnd(), w0 + 4 * MSS);
    }

    #[test]
    fn shrinks_when_queue_above_beta() {
        let mut v = Vegas::new(MSS);
        v.in_slow_start = false;
        v.base_rtt = SimDuration::from_millis(20);
        let w0 = v.cwnd();
        // w=10, rtt=50 → diff = 10·(1 − 20/50) = 6 > BETA → −1 MSS per
        // round; still > BETA at w=9 (5.4) and w=8 (4.8).
        for r in 1..4 {
            v.on_ack(&ack(r * 50, 50, r, true));
        }
        assert_eq!(v.cwnd(), w0 - 3 * MSS);
    }

    #[test]
    fn slow_start_exits_on_queue_buildup() {
        let mut v = Vegas::new(MSS);
        assert!(v.in_slow_start());
        v.on_ack(&ack(20, 20, 1, true)); // establishes base_rtt = 20
                                         // Grow during the round at base RTT.
        for _ in 0..20 {
            v.on_ack(&ack(25, 20, 1, false));
        }
        let grown = v.cwnd();
        assert!(grown > 10 * MSS);
        // The next round's samples show queueing (40 ms ≫ base): Vegas
        // evaluates a round using the min RTT observed *within* it.
        v.on_ack(&ack(60, 40, 2, true));
        for _ in 0..3 {
            v.on_ack(&ack(80, 40, 2, false));
        }
        v.on_ack(&ack(100, 40, 3, true)); // round 3 start: evaluates round 2
        assert!(!v.in_slow_start());
        assert!(v.cwnd() < grown);
    }

    #[test]
    fn loss_reduces_by_quarter() {
        let mut v = Vegas::new(MSS);
        v.cwnd = 40 * MSS;
        v.on_congestion_event(SimTime::from_secs(1), 0);
        assert_eq!(v.cwnd(), 30 * MSS);
    }

    #[test]
    fn cwnd_floors_at_two_mss() {
        // At w = 2 the Vegas diff can never exceed BETA (diff < w), so the
        // floor is only reachable through loss events — and must hold there.
        let mut v = Vegas::new(MSS);
        v.on_rto(SimTime::from_secs(5));
        assert_eq!(v.cwnd(), 2 * MSS);
        v.on_congestion_event(SimTime::from_secs(6), 0);
        assert_eq!(v.cwnd(), 2 * MSS);
        // And small windows grow back: diff = 2·(1 − 10/100) = 1.8 < ALPHA.
        v.base_rtt = SimDuration::from_millis(10);
        v.on_ack(&ack(100, 100, 1, true));
        v.on_ack(&ack(200, 100, 2, true));
        assert_eq!(v.cwnd(), 3 * MSS);
    }
}
