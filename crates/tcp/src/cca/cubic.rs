//! TCP Cubic (Ha, Rhee & Xu, 2008) — the Linux default and one of the two
//! competitors in the paper's experiments.
//!
//! The window grows along the cubic `W(t) = C·(t − K)³ + W_max` centred on
//! the window at the last congestion event, giving fast recovery toward
//! `W_max`, a plateau around it, and aggressive probing beyond it. The
//! implementation follows the paper and the Linux `tcp_cubic.c` structure:
//!
//! * β = 0.7 multiplicative decrease (`BETA`),
//! * C = 0.4 scaling constant (`C`),
//! * fast convergence (release capacity when the new `W_max` is below the
//!   previous one),
//! * a TCP-friendly region that never grows slower than an equivalent
//!   AIMD flow with the same loss rate.

use gsrepro_simcore::{BitRate, SimTime};

use super::{AckInfo, CongestionControl, INITIAL_WINDOW_SEGMENTS};

/// Multiplicative decrease factor.
const BETA: f64 = 0.7;
/// Cubic scaling constant (units: segments/second³).
const C: f64 = 0.4;

/// TCP Cubic congestion control.
pub struct Cubic {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Multiplicative decrease factor (standard: [`BETA`]). See
    /// [`Cubic::with_beta`].
    beta: f64,

    /// Window (in segments) at the last congestion event, after fast
    /// convergence.
    w_last_max: f64,
    /// Start of the current growth epoch.
    epoch_start: Option<SimTime>,
    /// Window (segments) at epoch start.
    w_epoch: f64,
    /// Time (seconds from epoch start) at which the cubic reaches
    /// `w_last_max`.
    k: f64,
    /// Reno-equivalent window estimate for the TCP-friendly region
    /// (segments).
    w_tcp: f64,
    /// Byte accumulator implementing "cwnd += MSS every cnt acked segments".
    acked_accum: f64,
}

impl Cubic {
    /// New controller with the Linux initial window.
    pub fn new(mss: u64) -> Self {
        Self::with_beta(mss, BETA)
    }

    /// New controller with a custom multiplicative-decrease factor — a
    /// conformance-kit perturbation knob: the golden step-response fixtures
    /// must detect a wrong β, so the kit runs this constructor with e.g.
    /// β = 0.5 and asserts the trace diverges from the committed fixture.
    pub fn with_beta(mss: u64, beta: f64) -> Self {
        Cubic {
            mss,
            cwnd: INITIAL_WINDOW_SEGMENTS * mss,
            ssthresh: u64::MAX,
            beta,
            w_last_max: 0.0,
            epoch_start: None,
            w_epoch: 0.0,
            k: 0.0,
            w_tcp: 0.0,
            acked_accum: 0.0,
        }
    }

    /// Current `K` (diagnostics/tests).
    pub fn k_secs(&self) -> f64 {
        self.k
    }

    fn segments(&self) -> f64 {
        self.cwnd as f64 / self.mss as f64
    }

    fn cubic_update(&mut self, ack: &AckInfo) {
        let w = self.segments();
        let now = ack.now;

        if self.epoch_start.is_none() {
            self.epoch_start = Some(now);
            self.w_epoch = w;
            self.k = if w < self.w_last_max {
                ((self.w_last_max - w) / C).cbrt()
            } else {
                0.0
            };
            // The cubic's origin is the larger of current and last-max.
            if self.w_last_max < w {
                self.w_last_max = w;
            }
            self.w_tcp = w;
        }

        // Target one RTT ahead, as Linux does (t + srtt).
        let t = (now + ack.srtt)
            .since(self.epoch_start.expect("set above"))
            .as_secs_f64();
        let target = self.w_last_max + C * (t - self.k).powi(3);

        // Segments to ack per 1-segment increase.
        let cnt = if target > w {
            (w / (target - w)).max(0.01)
        } else {
            100.0 * w // plateau: crawl
        };

        // TCP-friendly region (average AIMD rate with β = 0.7):
        // W_tcp grows by 3(1−β)/(1+β) segments per RTT.
        self.w_tcp += 3.0 * (1.0 - self.beta) / (1.0 + self.beta)
            * (ack.bytes_acked as f64 / self.cwnd as f64);
        let cnt = if self.w_tcp > w {
            cnt.min(w / (self.w_tcp - w))
        } else {
            cnt
        };

        self.acked_accum += ack.bytes_acked as f64 / self.mss as f64;
        if self.acked_accum >= cnt {
            let inc = (self.acked_accum / cnt).floor();
            self.acked_accum -= inc * cnt;
            self.cwnd += (inc as u64) * self.mss;
        }
    }
}

impl CongestionControl for Cubic {
    fn on_ack(&mut self, ack: &AckInfo) {
        let mut bytes = ack.bytes_acked;
        if self.cwnd < self.ssthresh {
            // RFC 5681 §3.1 / ABC: slow start may grow cwnd at most up to
            // ssthresh. A stretch/cumulative ack that crosses the
            // threshold contributes the remainder to congestion
            // avoidance instead of overshooting.
            let room = self.ssthresh - self.cwnd;
            let in_ss = bytes.min(room);
            self.cwnd += in_ss;
            bytes -= in_ss;
            if bytes == 0 {
                return;
            }
        }
        let mut rest = *ack;
        rest.bytes_acked = bytes;
        self.cubic_update(&rest);
    }

    fn on_congestion_event(&mut self, _now: SimTime, _in_flight: u64) {
        let w = self.segments();
        // Fast convergence: if this max is below the previous one, the
        // available capacity shrank — release more.
        self.w_last_max = if w < self.w_last_max {
            w * (2.0 - self.beta) / 2.0
        } else {
            w
        };
        self.cwnd = ((self.cwnd as f64 * self.beta) as u64).max(2 * self.mss);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
        self.acked_accum = 0.0;
    }

    fn on_rto(&mut self, _now: SimTime) {
        let w = self.segments();
        self.w_last_max = if w < self.w_last_max {
            w * (2.0 - self.beta) / 2.0
        } else {
            w
        };
        self.ssthresh = ((self.cwnd as f64 * self.beta) as u64).max(2 * self.mss);
        self.cwnd = self.mss;
        self.epoch_start = None;
        self.acked_accum = 0.0;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn pacing_rate(&self) -> Option<BitRate> {
        None
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn name(&self) -> &'static str {
        "cubic"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cca::testutil::drive_acks;
    use gsrepro_simcore::SimDuration;

    const MSS: u64 = 1448;
    const RTT: SimDuration = SimDuration::from_millis(20);
    const RATE: BitRate = BitRate(10_000_000);

    /// Acks per round used by these synthetic drives (16 acks every 20 ms).
    const APR: u64 = 16;

    #[test]
    fn slow_start_then_loss_sets_ssthresh() {
        let mut c = Cubic::new(MSS);
        assert!(c.in_slow_start());
        drive_acks(&mut c, MSS, 100, APR, RTT, RATE, SimTime::ZERO, 0, 0);
        let before = c.cwnd();
        c.on_congestion_event(SimTime::from_secs(1), before);
        assert!(!c.in_slow_start());
        let expect = (before as f64 * BETA) as u64;
        assert_eq!(c.cwnd(), expect);
    }

    #[test]
    fn k_matches_formula() {
        let mut c = Cubic::new(MSS);
        // Get to a known window, suffer a loss, then ack once to open an
        // epoch.
        drive_acks(&mut c, MSS, 90, APR, RTT, RATE, SimTime::ZERO, 0, 0);
        let w_loss = c.cwnd() as f64 / MSS as f64;
        c.on_congestion_event(SimTime::from_secs(2), c.cwnd());
        drive_acks(
            &mut c,
            MSS,
            1,
            APR,
            RTT,
            RATE,
            SimTime::from_secs(2),
            100,
            1_000_000,
        );
        // K = cbrt((W_max − W)/C), W = β·W_max.
        let expect_k = ((w_loss - BETA * w_loss) / C).cbrt();
        assert!(
            (c.k_secs() - expect_k).abs() < 0.2,
            "K = {}, expected ≈ {}",
            c.k_secs(),
            expect_k
        );
    }

    #[test]
    fn recovers_toward_w_max_within_k_seconds() {
        let mut c = Cubic::new(MSS);
        drive_acks(&mut c, MSS, 200, APR, RTT, RATE, SimTime::ZERO, 0, 0);
        let w_max = c.cwnd();
        c.on_congestion_event(SimTime::from_secs(5), w_max);
        // Drive acks for well past K seconds of simulated time (4 000 acks
        // at 16/round and 20 ms rounds = 5 s).
        drive_acks(
            &mut c,
            MSS,
            4_000,
            APR,
            RTT,
            RATE,
            SimTime::from_secs(5),
            300,
            10_000_000,
        );
        assert!(
            c.cwnd() >= w_max * 7 / 10,
            "cwnd {} should re-approach w_max {}",
            c.cwnd(),
            w_max
        );
    }

    #[test]
    fn fast_convergence_shrinks_w_max_on_consecutive_losses() {
        let mut c = Cubic::new(MSS);
        drive_acks(&mut c, MSS, 100, APR, RTT, RATE, SimTime::ZERO, 0, 0);
        c.on_congestion_event(SimTime::from_secs(1), c.cwnd());
        let w_max_1 = c.w_last_max;
        // Immediate second loss at a smaller window.
        c.on_congestion_event(SimTime::from_secs(1), c.cwnd());
        assert!(
            c.w_last_max < w_max_1,
            "fast convergence must lower w_max ({} !< {})",
            c.w_last_max,
            w_max_1
        );
    }

    #[test]
    fn growth_is_convex_beyond_k() {
        // Past the inflection point K, cubic growth accelerates: equal
        // spans of time further beyond K must add more window.
        let mut c = Cubic::new(MSS);
        drive_acks(&mut c, MSS, 400, APR, RTT, RATE, SimTime::ZERO, 0, 0);
        c.on_congestion_event(SimTime::from_secs(5), c.cwnd());
        // Open the epoch and learn K.
        let (mut t, mut r) = drive_acks(
            &mut c,
            MSS,
            1,
            APR,
            RTT,
            RATE,
            SimTime::from_secs(5),
            100,
            1_000_000,
        );
        let k = c.k_secs();
        // Run up to roughly K.
        let acks_to_k = ((k / 0.02) as u64) * APR;
        let (t1, r1) = drive_acks(&mut c, MSS, acks_to_k, APR, RTT, RATE, t, r, 2_000_000);
        t = t1;
        r = r1;
        // Window growth over [K, K+3 s] vs [K+3 s, K+6 s].
        let per_3s = 150 * APR;
        let w0 = c.cwnd();
        let (t2, r2) = drive_acks(&mut c, MSS, per_3s, APR, RTT, RATE, t, r, 4_000_000);
        let grow_1 = c.cwnd() - w0;
        let w1 = c.cwnd();
        drive_acks(&mut c, MSS, per_3s, APR, RTT, RATE, t2, r2, 8_000_000);
        let grow_2 = c.cwnd() - w1;
        assert!(
            grow_2 > grow_1,
            "convex region must accelerate: {grow_2} !> {grow_1}"
        );
    }

    #[test]
    fn stretch_ack_splits_at_ssthresh() {
        // Reach congestion avoidance once so ssthresh is finite, then RTO
        // back into slow start.
        let mut c = Cubic::new(MSS);
        drive_acks(&mut c, MSS, 100, APR, RTT, RATE, SimTime::ZERO, 0, 0);
        c.on_rto(SimTime::from_secs(1));
        let ssthresh = c.ssthresh();
        assert!(c.in_slow_start());
        assert!(ssthresh < u64::MAX && c.cwnd() == MSS);

        // One stretch ack covering far more than the slow-start headroom.
        let stretch = ssthresh - c.cwnd() + 40 * MSS;
        c.on_ack(&AckInfo {
            now: SimTime::from_secs(2),
            bytes_acked: stretch,
            rtt: Some(RTT),
            srtt: RTT,
            min_rtt: RTT,
            delivered: 1_000_000,
            delivery_rate: Some(RATE),
            in_flight: ssthresh,
            round_start: true,
            round: 50,
            app_limited: false,
        });
        // Slow start must stop exactly at ssthresh; the excess 40 MSS goes
        // through cubic_update, which grows by at most a couple of
        // segments — nowhere near the 40-segment overshoot of the bug.
        assert!(
            c.cwnd() >= ssthresh,
            "ack must reach ssthresh: {} < {ssthresh}",
            c.cwnd()
        );
        assert!(
            c.cwnd() <= ssthresh + 4 * MSS,
            "slow start overshot ssthresh: cwnd {} vs ssthresh {ssthresh}",
            c.cwnd()
        );
        assert!(!c.in_slow_start());

        // The excess reached cubic_update: an epoch is now open.
        assert!(c.epoch_start.is_some(), "excess bytes must open the epoch");
    }

    #[test]
    fn stretch_ack_below_ssthresh_stays_in_slow_start() {
        let mut c = Cubic::new(MSS);
        drive_acks(&mut c, MSS, 100, APR, RTT, RATE, SimTime::ZERO, 0, 0);
        c.on_rto(SimTime::from_secs(1));
        let w0 = c.cwnd();
        let bytes = (c.ssthresh() - w0) / 2;
        c.on_ack(&AckInfo {
            now: SimTime::from_secs(2),
            bytes_acked: bytes,
            rtt: Some(RTT),
            srtt: RTT,
            min_rtt: RTT,
            delivered: 500_000,
            delivery_rate: Some(RATE),
            in_flight: w0,
            round_start: true,
            round: 50,
            app_limited: false,
        });
        assert_eq!(c.cwnd(), w0 + bytes, "full ack credited in slow start");
        assert!(c.in_slow_start());
        assert!(c.epoch_start.is_none(), "no epoch below ssthresh");
    }

    #[test]
    fn rto_resets_to_one_segment() {
        let mut c = Cubic::new(MSS);
        drive_acks(&mut c, MSS, 100, APR, RTT, RATE, SimTime::ZERO, 0, 0);
        c.on_rto(SimTime::from_secs(3));
        assert_eq!(c.cwnd(), MSS);
        assert!(c.in_slow_start());
    }

    #[test]
    fn tcp_friendly_region_dominates_at_small_windows() {
        // At small windows and large RTT the cubic term is tiny; growth
        // should track the Reno-equivalent rate instead of stalling.
        let mut c = Cubic::new(MSS);
        c.on_congestion_event(SimTime::from_secs(1), c.cwnd());
        let w0 = c.cwnd();
        drive_acks(
            &mut c,
            MSS,
            300,
            8,
            SimDuration::from_millis(100),
            BitRate::from_mbps(1),
            SimTime::from_secs(1),
            10,
            100_000,
        );
        assert!(c.cwnd() > w0, "window must keep growing in friendly region");
    }
}
