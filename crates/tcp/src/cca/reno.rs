//! TCP NewReno: the classic AIMD baseline.
//!
//! Slow start doubles the window every round trip; congestion avoidance adds
//! one MSS per round trip; a congestion event halves the window (β = 0.5).
//! Included as the simplest reference point for the testbed's validation
//! suite — every other controller's behaviour is checked against Reno's.

use gsrepro_simcore::{BitRate, SimTime};

use super::{AckInfo, CongestionControl, INITIAL_WINDOW_SEGMENTS};

/// Multiplicative decrease factor.
const BETA: f64 = 0.5;

/// NewReno congestion control.
pub struct Reno {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Multiplicative decrease factor (standard: [`BETA`]). See
    /// [`Reno::with_beta`].
    beta: f64,
    /// Byte accumulator for the one-MSS-per-RTT additive increase.
    acked_accum: u64,
}

impl Reno {
    /// New controller with the Linux initial window.
    pub fn new(mss: u64) -> Self {
        Self::with_beta(mss, BETA)
    }

    /// New controller with a custom multiplicative-decrease factor — a
    /// conformance-kit perturbation knob (the golden AIMD fixtures must
    /// detect a wrong β).
    pub fn with_beta(mss: u64, beta: f64) -> Self {
        Reno {
            mss,
            cwnd: INITIAL_WINDOW_SEGMENTS * mss,
            ssthresh: u64::MAX,
            beta,
            acked_accum: 0,
        }
    }

    fn decrease(&self) -> u64 {
        ((self.cwnd as f64 * self.beta) as u64).max(2 * self.mss)
    }
}

impl CongestionControl for Reno {
    fn on_ack(&mut self, ack: &AckInfo) {
        if self.cwnd < self.ssthresh {
            // Slow start: one MSS per acked MSS.
            self.cwnd += ack.bytes_acked;
        } else {
            // Congestion avoidance: cwnd += MSS per cwnd bytes acked.
            self.acked_accum += ack.bytes_acked;
            if self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd += self.mss;
            }
        }
    }

    fn on_congestion_event(&mut self, _now: SimTime, _in_flight: u64) {
        self.ssthresh = self.decrease();
        self.cwnd = self.ssthresh;
        self.acked_accum = 0;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = self.decrease();
        self.cwnd = self.mss;
        self.acked_accum = 0;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn pacing_rate(&self) -> Option<BitRate> {
        None
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn name(&self) -> &'static str {
        "reno"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsrepro_simcore::SimDuration;

    const MSS: u64 = 1448;

    fn ack(bytes: u64) -> AckInfo {
        AckInfo {
            now: SimTime::from_secs(1),
            bytes_acked: bytes,
            rtt: Some(SimDuration::from_millis(20)),
            srtt: SimDuration::from_millis(20),
            min_rtt: SimDuration::from_millis(20),
            delivered: 0,
            delivery_rate: None,
            in_flight: 0,
            round_start: false,
            round: 0,
            app_limited: false,
        }
    }

    #[test]
    fn starts_with_iw10() {
        let r = Reno::new(MSS);
        assert_eq!(r.cwnd(), 10 * MSS);
        assert!(r.in_slow_start());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut r = Reno::new(MSS);
        let start = r.cwnd();
        // Ack a full window: cwnd should double.
        for _ in 0..10 {
            r.on_ack(&ack(MSS));
        }
        assert_eq!(r.cwnd(), 2 * start);
    }

    #[test]
    fn congestion_event_halves() {
        let mut r = Reno::new(MSS);
        for _ in 0..100 {
            r.on_ack(&ack(MSS));
        }
        let before = r.cwnd();
        r.on_congestion_event(SimTime::from_secs(1), before);
        assert_eq!(r.cwnd(), before / 2);
        assert!(!r.in_slow_start());
    }

    #[test]
    fn additive_increase_after_loss() {
        let mut r = Reno::new(MSS);
        r.on_congestion_event(SimTime::from_secs(1), r.cwnd());
        let w = r.cwnd();
        // One full window of acks adds exactly one MSS.
        let acks_per_window = w / MSS;
        for _ in 0..acks_per_window {
            r.on_ack(&ack(MSS));
        }
        assert_eq!(r.cwnd(), w + MSS);
    }

    #[test]
    fn rto_collapses_to_one_mss() {
        let mut r = Reno::new(MSS);
        for _ in 0..50 {
            r.on_ack(&ack(MSS));
        }
        r.on_rto(SimTime::from_secs(2));
        assert_eq!(r.cwnd(), MSS);
        assert!(r.in_slow_start());
    }

    #[test]
    fn cwnd_never_below_two_mss_after_loss() {
        let mut r = Reno::new(MSS);
        r.on_rto(SimTime::from_secs(1));
        r.on_congestion_event(SimTime::from_secs(1), MSS);
        assert!(r.cwnd() >= 2 * MSS);
    }
}
