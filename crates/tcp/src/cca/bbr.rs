//! TCP BBR v1 (Cardwell et al., CACM 2017) — the second competitor in the
//! paper's experiments, as shipped in Linux 4.9–5.4.
//!
//! BBR models the path with two estimates — bottleneck bandwidth (`btl_bw`,
//! a windowed max of delivery-rate samples over 10 round trips) and
//! round-trip propagation time (`rt_prop`, a windowed min over 10 seconds) —
//! and sets:
//!
//! * pacing rate = `pacing_gain × btl_bw`,
//! * cwnd = `cwnd_gain × BDP`, with `cwnd_gain = 2` — **the in-flight cap
//!   the paper leans on** to explain why competing BBR keeps 7x-BDP queues
//!   only ~1 BDP full (Section 4.3, Table 4: ≈55 ms vs ≈110 ms RTTs).
//!
//! The four-state machine is implemented as published: STARTUP (gain
//! 2/ln 2 ≈ 2.885 until bandwidth plateaus for three rounds), DRAIN
//! (inverse gain until in-flight ≤ BDP), PROBE_BW (eight-phase gain cycle
//! `[1.25, 0.75, 1, 1, 1, 1, 1, 1]`, one phase per `rt_prop`), and
//! PROBE_RTT (cwnd = 4 segments for 200 ms every 10 s).
//!
//! Loss is *not* a congestion signal for BBR v1 — `on_congestion_event` is
//! a no-op — which is precisely why the paper finds game systems lose more
//! capacity to BBR than to Cubic.

use gsrepro_simcore::{BitRate, SimDuration, SimTime};

use super::{AckInfo, CongestionControl, INITIAL_WINDOW_SEGMENTS};

/// STARTUP/DRAIN gain: 2/ln2.
const HIGH_GAIN: f64 = 2.885;
/// PROBE_BW pacing-gain cycle.
const CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Rounds of bandwidth plateau before declaring the pipe full.
const FULL_BW_ROUNDS: u32 = 3;
/// btl_bw max-filter window, in round trips.
const BW_WINDOW_ROUNDS: u64 = 10;
/// rt_prop min-filter window.
const RTPROP_WINDOW: SimDuration = SimDuration::from_secs(10);
/// Time spent at minimal cwnd in PROBE_RTT.
const PROBE_RTT_DURATION: SimDuration = SimDuration::from_millis(200);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Startup,
    Drain,
    ProbeBw,
    ProbeRtt,
}

/// TCP BBR v1 congestion control.
pub struct Bbr {
    mss: u64,
    mode: Mode,

    /// Max-filter samples: (round, rate).
    bw_samples: Vec<(u64, BitRate)>,
    btl_bw: BitRate,

    /// Windowed-min filter for rt_prop: a monotonic deque of (time, rtt)
    /// candidates over the last [`RTPROP_WINDOW`]. Using a *windowed* min
    /// (per the BBR paper) rather than a sticky lifetime min matters
    /// enormously in competition: when another flow holds a standing queue
    /// that never drains, the windowed min *inflates* to include that
    /// queue, the 2×BDP in-flight cap grows with it, and BBR presses the
    /// queue — the standing-queue/RTT-inflation behaviour Hock et al.
    /// measured for real BBRv1 and the reason the paper's game systems
    /// lose capacity to BBR.
    rt_samples: std::collections::VecDeque<(SimTime, SimDuration)>,
    rt_prop: SimDuration,
    /// Lifetime minimum RTT — the "true" propagation floor.
    true_min: SimDuration,
    /// Last time a sample touched the floor; staleness beyond the window
    /// triggers PROBE_RTT.
    last_near_min: SimTime,

    pacing_gain: f64,
    cwnd_gain: f64,
    cycle_index: usize,
    cycle_stamp: SimTime,

    full_bw: BitRate,
    full_bw_count: u32,
    filled_pipe: bool,

    probe_rtt_done_stamp: Option<SimTime>,
    /// Minimum RTT observed while in PROBE_RTT; becomes the new rt_prop.
    probe_min: SimDuration,
    prior_cwnd: u64,

    cwnd: u64,
    pacing_rate: Option<BitRate>,
    /// cwnd gain used in PROBE_BW (standard: 2.0). See `with_cwnd_gain`.
    probe_bw_cwnd_gain: f64,
}

impl Bbr {
    /// New controller with the Linux initial window and the standard
    /// `cwnd_gain = 2` in-flight cap.
    pub fn new(mss: u64) -> Self {
        Self::with_cwnd_gain(mss, 2.0)
    }

    /// New controller with a custom PROBE_BW `cwnd_gain` — the DESIGN.md
    /// D3 ablation knob. The paper attributes BBR's bounded queueing at
    /// bloated buffers (Table 4's ≈55 ms vs ≈110 ms RTTs) to the 2×BDP
    /// in-flight cap; varying the gain tests that attribution.
    pub fn with_cwnd_gain(mss: u64, probe_bw_cwnd_gain: f64) -> Self {
        Bbr {
            probe_bw_cwnd_gain,
            mss,
            mode: Mode::Startup,
            bw_samples: Vec::new(),
            btl_bw: BitRate::ZERO,
            rt_samples: std::collections::VecDeque::new(),
            rt_prop: SimDuration::MAX,
            true_min: SimDuration::MAX,
            last_near_min: SimTime::ZERO,
            pacing_gain: HIGH_GAIN,
            cwnd_gain: HIGH_GAIN,
            cycle_index: 0,
            cycle_stamp: SimTime::ZERO,
            full_bw: BitRate::ZERO,
            full_bw_count: 0,
            filled_pipe: false,
            probe_rtt_done_stamp: None,
            probe_min: SimDuration::MAX,
            prior_cwnd: INITIAL_WINDOW_SEGMENTS * mss,
            cwnd: INITIAL_WINDOW_SEGMENTS * mss,
            pacing_rate: None,
        }
    }

    /// Current state name (diagnostics).
    pub fn mode_name(&self) -> &'static str {
        match self.mode {
            Mode::Startup => "startup",
            Mode::Drain => "drain",
            Mode::ProbeBw => "probe_bw",
            Mode::ProbeRtt => "probe_rtt",
        }
    }

    /// Current bottleneck-bandwidth estimate.
    pub fn btl_bw(&self) -> BitRate {
        self.btl_bw
    }

    /// Current propagation-delay estimate.
    pub fn rt_prop(&self) -> SimDuration {
        self.rt_prop
    }

    fn bdp_bytes(&self) -> u64 {
        if self.rt_prop == SimDuration::MAX {
            return INITIAL_WINDOW_SEGMENTS * self.mss;
        }
        self.btl_bw.bdp(self.rt_prop).as_u64().max(self.mss)
    }

    fn min_cwnd(&self) -> u64 {
        4 * self.mss
    }

    fn update_btl_bw(&mut self, ack: &AckInfo) {
        if let Some(rate) = ack.delivery_rate {
            // App-limited samples can only raise the estimate.
            if !ack.app_limited || rate > self.btl_bw {
                self.bw_samples.push((ack.round, rate));
            }
        }
        // Evict samples older than the window and recompute the max.
        let min_round = ack.round.saturating_sub(BW_WINDOW_ROUNDS);
        self.bw_samples.retain(|&(r, _)| r >= min_round);
        self.btl_bw = self
            .bw_samples
            .iter()
            .map(|&(_, r)| r)
            .max()
            .unwrap_or(BitRate::ZERO);
    }

    fn check_full_pipe(&mut self, ack: &AckInfo) {
        if self.filled_pipe || !ack.round_start || ack.app_limited {
            return;
        }
        // Still growing ≥ 25%?
        if self.btl_bw.as_bps() as f64 >= self.full_bw.as_bps() as f64 * 1.25 {
            self.full_bw = self.btl_bw;
            self.full_bw_count = 0;
            return;
        }
        self.full_bw_count += 1;
        if self.full_bw_count >= FULL_BW_ROUNDS {
            self.filled_pipe = true;
        }
    }

    fn advance_cycle(&mut self, now: SimTime, in_flight: u64) {
        let elapsed = now.saturating_since(self.cycle_stamp);
        let gain = CYCLE[self.cycle_index];
        let mut advance = elapsed > self.rt_prop;
        // Leaving the 0.75 phase early once the queue is drained, and the
        // 1.25 phase only after it had a chance to fill — per the BBR draft.
        if gain == 0.75 && in_flight <= self.bdp_bytes() {
            advance = true;
        }
        if gain == 1.25
            && elapsed > self.rt_prop
            && in_flight < (self.bdp_bytes() as f64 * 1.25) as u64
        {
            // Wait for inflight to reach the probe target unless time's up.
            advance = elapsed > self.rt_prop * 2;
        }
        if advance {
            self.cycle_index = (self.cycle_index + 1) % CYCLE.len();
            self.cycle_stamp = now;
        }
        self.pacing_gain = CYCLE[self.cycle_index];
    }

    fn handle_probe_rtt(&mut self, ack: &AckInfo) {
        match self.probe_rtt_done_stamp {
            None => {
                if ack.in_flight <= self.min_cwnd() {
                    self.probe_rtt_done_stamp = Some(ack.now + PROBE_RTT_DURATION);
                }
            }
            Some(done) => {
                if ack.now >= done {
                    // Adopt the delay measured with a drained pipe and
                    // reset the windowed filter around it.
                    if self.probe_min < SimDuration::MAX {
                        self.rt_prop = self.probe_min;
                        self.true_min = self.true_min.min(self.probe_min);
                        self.rt_samples.clear();
                        self.rt_samples.push_back((ack.now, self.probe_min));
                    }
                    // Whatever we measured counts as a fresh floor probe.
                    self.last_near_min = ack.now;
                    self.cwnd = self.prior_cwnd.max(self.min_cwnd());
                    self.mode = if self.filled_pipe {
                        self.enter_probe_bw(ack.now);
                        Mode::ProbeBw
                    } else {
                        self.pacing_gain = HIGH_GAIN;
                        self.cwnd_gain = HIGH_GAIN;
                        Mode::Startup
                    };
                    self.probe_rtt_done_stamp = None;
                }
            }
        }
    }

    fn enter_probe_bw(&mut self, now: SimTime) {
        self.mode = Mode::ProbeBw;
        self.cwnd_gain = self.probe_bw_cwnd_gain;
        // Start in a random-ish phase in real BBR; deterministic here:
        // begin at the neutral phase after the probe pair.
        self.cycle_index = 2;
        self.cycle_stamp = now;
        self.pacing_gain = CYCLE[self.cycle_index];
    }
}

impl CongestionControl for Bbr {
    fn on_ack(&mut self, ack: &AckInfo) {
        let was_probe_rtt = self.mode == Mode::ProbeRtt;
        // rt_prop windowed-min filter (monotonic deque, O(1) amortized).
        if let Some(rtt) = ack.rtt {
            while self.rt_samples.back().is_some_and(|&(_, r)| r >= rtt) {
                self.rt_samples.pop_back();
            }
            self.rt_samples.push_back((ack.now, rtt));
            while self
                .rt_samples
                .front()
                .is_some_and(|&(t, _)| ack.now.saturating_since(t) > RTPROP_WINDOW)
            {
                self.rt_samples.pop_front();
            }
            self.rt_prop = self.rt_samples.front().map(|&(_, r)| r).unwrap_or(rtt);
            if rtt < self.true_min {
                self.true_min = rtt;
            }
            // Floor refresh: only a sample at (or below) the lifetime
            // minimum proves the queue drained; anything above it leaves
            // the PROBE_RTT countdown running (Linux: `rtt <= min_rtt`).
            if rtt <= self.true_min {
                self.last_near_min = ack.now;
            }
            if self.mode == Mode::ProbeRtt {
                self.probe_min = self.probe_min.min(rtt);
            }
        }

        self.update_btl_bw(ack);
        self.check_full_pipe(ack);

        match self.mode {
            Mode::Startup => {
                if self.filled_pipe {
                    self.mode = Mode::Drain;
                    self.pacing_gain = 1.0 / HIGH_GAIN;
                    self.cwnd_gain = HIGH_GAIN;
                }
            }
            Mode::Drain => {
                if ack.in_flight <= self.bdp_bytes() {
                    self.enter_probe_bw(ack.now);
                }
            }
            Mode::ProbeBw => {
                self.advance_cycle(ack.now, ack.in_flight);
            }
            Mode::ProbeRtt => {}
        }

        // Enter PROBE_RTT when no near-floor sample has been seen for a
        // whole window: the pipe needs draining to re-measure.
        if self.mode != Mode::ProbeRtt
            && ack.now.saturating_since(self.last_near_min) > RTPROP_WINDOW
        {
            self.mode = Mode::ProbeRtt;
            self.prior_cwnd = self.cwnd;
            self.pacing_gain = 1.0;
            self.cwnd_gain = 1.0;
            self.probe_rtt_done_stamp = None;
            self.probe_min = SimDuration::MAX;
        }
        if self.mode == Mode::ProbeRtt {
            self.handle_probe_rtt(ack);
        }

        // Set cwnd and pacing rate from the model.
        if self.mode == Mode::ProbeRtt {
            self.cwnd = self.min_cwnd();
        } else {
            let target = (self.cwnd_gain * self.bdp_bytes() as f64) as u64;
            let mut next = target.max(self.min_cwnd());
            if was_probe_rtt {
                // This ack just exited PROBE_RTT and `self.cwnd` holds the
                // restored pre-probe window. Honor the restore even when
                // the bandwidth model deflated during the probe (e.g. an
                // in-probe timeout collapsed delivery); the model target
                // takes back over from the next ack on.
                next = next.max(self.cwnd);
            }
            self.cwnd = next;
        }
        if self.btl_bw > BitRate::ZERO {
            self.pacing_rate = Some(self.btl_bw.mul_f64(self.pacing_gain));
        }
    }

    fn on_congestion_event(&mut self, _now: SimTime, _in_flight: u64) {
        // BBR v1 does not react to packet loss.
    }

    fn on_rto(&mut self, _now: SimTime) {
        // Conservation on timeout: collapse to one segment; the model
        // rebuilds the window on the next acks. During PROBE_RTT the
        // operating cwnd is the pinned 4-segment floor, and `prior_cwnd`
        // already holds the pre-probe window that the probe exit must
        // restore — overwriting it here would make a timeout inside a
        // probe permanently forget the real window (Linux guards its
        // `bbr_save_cwnd` the same way).
        if self.mode != Mode::ProbeRtt {
            self.prior_cwnd = self.cwnd;
        }
        self.cwnd = self.mss;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn pacing_rate(&self) -> Option<BitRate> {
        self.pacing_rate
    }

    fn in_slow_start(&self) -> bool {
        self.mode == Mode::Startup
    }

    fn name(&self) -> &'static str {
        "bbr"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1448;

    fn ack_at(
        now: SimTime,
        rtt_ms: u64,
        rate: BitRate,
        in_flight: u64,
        round: u64,
        round_start: bool,
        delivered: u64,
    ) -> AckInfo {
        AckInfo {
            now,
            bytes_acked: MSS,
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            srtt: SimDuration::from_millis(rtt_ms),
            min_rtt: SimDuration::from_millis(rtt_ms),
            delivered,
            delivery_rate: Some(rate),
            in_flight,
            round_start,
            round,
            app_limited: false,
        }
    }

    /// Drive BBR to a steady 10 Mb/s, 20 ms path. Returns (time, round).
    fn warm_up(b: &mut Bbr) -> (SimTime, u64) {
        let rate = BitRate::from_mbps(10);
        let mut now = SimTime::ZERO;
        let mut round = 0;
        let mut delivered = 0;
        for i in 0..400u64 {
            let round_start = i % 16 == 0;
            if round_start {
                round += 1;
                now += SimDuration::from_millis(20);
            }
            delivered += MSS;
            // Report an in-flight just below the 25 kB BDP so DRAIN can
            // complete once the pipe-full check fires.
            b.on_ack(&ack_at(
                now,
                20,
                rate,
                24_000,
                round,
                round_start,
                delivered,
            ));
        }
        (now, round)
    }

    #[test]
    fn startup_exits_on_bandwidth_plateau() {
        let mut b = Bbr::new(MSS);
        assert_eq!(b.mode_name(), "startup");
        warm_up(&mut b);
        assert_ne!(b.mode_name(), "startup", "plateaued bw must exit startup");
        assert!(b.filled_pipe);
    }

    #[test]
    fn estimates_converge_to_path() {
        let mut b = Bbr::new(MSS);
        warm_up(&mut b);
        assert_eq!(b.rt_prop(), SimDuration::from_millis(20));
        assert_eq!(b.btl_bw(), BitRate::from_mbps(10));
    }

    #[test]
    fn cwnd_is_capped_at_twice_bdp_in_probe_bw() {
        let mut b = Bbr::new(MSS);
        warm_up(&mut b);
        assert_eq!(b.mode_name(), "probe_bw");
        // BDP = 10 Mb/s * 20 ms = 25 000 B; cwnd_gain = 2.
        let bdp = 25_000u64;
        assert!(
            b.cwnd() <= 2 * bdp + MSS && b.cwnd() >= 2 * bdp - MSS,
            "cwnd {} should be ≈ 2×BDP {}",
            b.cwnd(),
            2 * bdp
        );
    }

    #[test]
    fn loss_is_ignored() {
        let mut b = Bbr::new(MSS);
        warm_up(&mut b);
        let before = b.cwnd();
        b.on_congestion_event(SimTime::from_secs(10), before / 2);
        assert_eq!(b.cwnd(), before, "BBRv1 must not reduce cwnd on loss");
    }

    #[test]
    fn pacing_cycles_through_gains() {
        let mut b = Bbr::new(MSS);
        let (mut now, mut round) = warm_up(&mut b);
        let rate = BitRate::from_mbps(10);
        let mut delivered = 1_000_000;
        let mut gains = std::collections::BTreeSet::new();
        for i in 0..400u64 {
            let round_start = i % 16 == 0;
            if round_start {
                round += 1;
                now += SimDuration::from_millis(20);
            }
            delivered += MSS;
            b.on_ack(&ack_at(
                now,
                20,
                rate,
                50_000,
                round,
                round_start,
                delivered,
            ));
            let p = b.pacing_rate().unwrap().as_bps() as f64 / rate.as_bps() as f64;
            gains.insert((p * 100.0).round() as i64);
        }
        assert!(gains.contains(&125), "must probe at 1.25x, saw {gains:?}");
        assert!(gains.contains(&75), "must drain at 0.75x, saw {gains:?}");
        assert!(gains.contains(&100), "must cruise at 1x, saw {gains:?}");
    }

    #[test]
    fn probe_rtt_fires_after_ten_seconds() {
        let mut b = Bbr::new(MSS);
        let (t0, mut round) = warm_up(&mut b);
        let rate = BitRate::from_mbps(10);
        let mut delivered = 1_000_000;
        let mut saw_probe_rtt = false;
        let mut min_cwnd_seen = u64::MAX;
        // >20 simulated seconds with RTT stuck at 21 ms (> rt_prop, so the
        // min filter never refreshes and must go stale).
        let mut now = t0;
        for i in 0..2_000u64 {
            let round_start = i % 2 == 0;
            if round_start {
                round += 1;
                now += SimDuration::from_millis(21);
            }
            delivered += MSS;
            b.on_ack(&ack_at(
                now,
                21,
                rate,
                4 * MSS,
                round,
                round_start,
                delivered,
            ));
            if b.mode_name() == "probe_rtt" {
                saw_probe_rtt = true;
                min_cwnd_seen = min_cwnd_seen.min(b.cwnd());
            }
        }
        assert!(saw_probe_rtt, "PROBE_RTT must trigger after 10 s");
        assert_eq!(min_cwnd_seen, 4 * MSS);
        // And it must leave PROBE_RTT afterwards.
        assert_eq!(b.mode_name(), "probe_bw");
    }

    #[test]
    fn rto_inside_probe_rtt_keeps_prior_cwnd() {
        // Regression: `on_rto` used to unconditionally save the operating
        // cwnd into `prior_cwnd`. Inside PROBE_RTT the operating cwnd is
        // the pinned 4-segment floor, so a timeout there overwrote the
        // saved pre-probe window; the probe exit then "restored" the floor
        // instead of the real window (Linux guards `bbr_save_cwnd` against
        // exactly this).
        let mut b = Bbr::new(MSS);
        let (t0, mut round) = warm_up(&mut b);
        let mut now = t0;
        let mut delivered = 1_000_000;
        let rate_full = BitRate::from_mbps(10);
        // Starve the rt_prop floor (21 ms > the 20 ms min) until the
        // 10 s window lapses and PROBE_RTT engages.
        let mut pre_probe = 0;
        for i in 0..2_000u64 {
            let round_start = i % 2 == 0;
            if round_start {
                round += 1;
                now += SimDuration::from_millis(21);
            }
            delivered += MSS;
            let before = b.cwnd();
            b.on_ack(&ack_at(
                now,
                21,
                rate_full,
                50_000,
                round,
                round_start,
                delivered,
            ));
            if b.mode_name() == "probe_rtt" {
                pre_probe = before;
                break;
            }
        }
        assert_eq!(b.mode_name(), "probe_rtt");
        assert!(pre_probe > 30_000, "pre-probe cwnd {pre_probe}");

        // While the pipe drains, an RTO strikes and delivery collapses to
        // 1 Mb/s; enough rounds pass to flush every 10 Mb/s sample out of
        // the bandwidth window, so the model alone can no longer justify
        // the old window.
        let rate_low = BitRate::from_mbps(1);
        b.on_rto(now);
        for i in 0..2 * (BW_WINDOW_ROUNDS + 2) {
            let round_start = i % 2 == 0;
            if round_start {
                round += 1;
                now += SimDuration::from_millis(21);
            }
            delivered += MSS;
            b.on_ack(&ack_at(
                now,
                20,
                rate_low,
                50_000,
                round,
                round_start,
                delivered,
            ));
        }
        assert_eq!(b.mode_name(), "probe_rtt");
        assert!(b.btl_bw() <= rate_low, "bw window must have flushed");

        // Drain in-flight to the floor so the 200 ms dwell can elapse and
        // the probe exits.
        let mut exited = false;
        for i in 0..40u64 {
            let round_start = i % 2 == 0;
            if round_start {
                round += 1;
                now += SimDuration::from_millis(21);
            }
            delivered += MSS;
            b.on_ack(&ack_at(
                now,
                20,
                rate_low,
                4 * MSS,
                round,
                round_start,
                delivered,
            ));
            if b.mode_name() != "probe_rtt" {
                exited = true;
                break;
            }
        }
        assert!(exited, "PROBE_RTT must complete");
        // The exit must restore the pre-probe window, not the probe floor.
        assert!(
            b.cwnd() >= pre_probe,
            "exit cwnd {} must restore pre-probe cwnd {pre_probe}",
            b.cwnd()
        );
    }

    #[test]
    fn rto_collapses_then_model_rebuilds() {
        let mut b = Bbr::new(MSS);
        let (now, round) = warm_up(&mut b);
        b.on_rto(now);
        assert_eq!(b.cwnd(), MSS);
        // One ack later the model-based cwnd is restored.
        b.on_ack(&ack_at(
            now + SimDuration::from_millis(20),
            20,
            BitRate::from_mbps(10),
            MSS,
            round + 1,
            true,
            2_000_000,
        ));
        assert!(b.cwnd() > 10 * MSS);
    }

    #[test]
    fn rt_prop_windowed_min_inflates_with_standing_queue() {
        // C1 (DESIGN.md): when every RTT sample for > 10 s includes a
        // competitor's standing queue, the windowed min must rise to it —
        // the Hock et al. RTT-inflation behaviour — instead of staying
        // anchored at the long-gone empty-path minimum.
        let mut b = Bbr::new(MSS);
        warm_up(&mut b); // rt_prop = 20 ms
        assert_eq!(b.rt_prop(), SimDuration::from_millis(20));
        let rate = BitRate::from_mbps(10);
        let mut now = SimTime::from_secs(30);
        let mut delivered = 2_000_000;
        let mut round = 200;
        // 15 s of RTT stuck at 45 ms (standing queue), feeding an inflight
        // high enough that PROBE_RTT never completes its drain.
        for i in 0..1_500u64 {
            if i % 2 == 0 {
                round += 1;
                now += SimDuration::from_millis(20);
            }
            delivered += MSS;
            b.on_ack(&ack_at(now, 45, rate, 60_000, round, i % 2 == 0, delivered));
        }
        assert!(
            b.rt_prop() >= SimDuration::from_millis(40),
            "windowed min must inflate to the standing level, got {:?}",
            b.rt_prop()
        );
        // Let the (synthetic) PROBE_RTT drain complete, then the cwnd
        // target reflects the inflated BDP.
        for _ in 0..40u64 {
            now += SimDuration::from_millis(20);
            round += 1;
            delivered += MSS;
            b.on_ack(&ack_at(now, 45, rate, 2 * MSS, round, true, delivered));
        }
        assert!(
            b.cwnd() > 2 * 24_000,
            "cwnd {} should track the inflated BDP",
            b.cwnd()
        );
    }

    #[test]
    fn custom_cwnd_gain_scales_target() {
        let mut a = Bbr::with_cwnd_gain(MSS, 2.0);
        let mut b = Bbr::with_cwnd_gain(MSS, 4.0);
        warm_up(&mut a);
        warm_up(&mut b);
        assert_eq!(a.mode_name(), "probe_bw");
        assert_eq!(b.mode_name(), "probe_bw");
        assert!(
            b.cwnd() > a.cwnd() * 3 / 2,
            "gain 4 target {} should far exceed gain 2 target {}",
            b.cwnd(),
            a.cwnd()
        );
    }

    #[test]
    fn bw_filter_forgets_old_samples() {
        let mut b = Bbr::new(MSS);
        warm_up(&mut b); // 10 Mb/s history
                         // Path slows to 2 Mb/s: after > 10 rounds the estimate must drop.
        let rate = BitRate::from_mbps(2);
        let mut now = SimTime::from_secs(60);
        let mut delivered = 2_000_000;
        for r in 0..15u64 {
            now += SimDuration::from_millis(20);
            delivered += MSS;
            b.on_ack(&ack_at(now, 20, rate, 20_000, 100 + r, true, delivered));
        }
        assert_eq!(b.btl_bw(), BitRate::from_mbps(2));
    }
}
