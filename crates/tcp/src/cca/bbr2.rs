//! BBR v2-style congestion control — the "modern bottleneck" sender the
//! paper's 2022 measurements predate.
//!
//! Same model core as [`super::bbr`] (windowed-max bandwidth, windowed-min
//! propagation delay, STARTUP → DRAIN → steady state), plus the three v2
//! mechanisms that change behaviour against AQMs:
//!
//! * **Inflight bounds.** `inflight_hi` is a robust long-term ceiling
//!   learned in PROBE_UP (raised while probing draws no loss/ECN, latched
//!   at the level where trouble appeared); `inflight_lo` is a cautious
//!   short-term cap cut multiplicatively on each loss or ECN round and
//!   reset at the start of every probe cycle. Outside active probing the
//!   window keeps [`HEADROOM`] under `inflight_hi`, which is what keeps a
//!   CoDel standing queue shallow.
//! * **Loss and ECN as signals.** Unlike v1, `on_congestion_event` cuts
//!   `inflight_lo` by [`BETA`] and latches `inflight_hi`; `on_ecn` (the
//!   RFC 3168 ECE echo, at most one cut per propagation delay) does the
//!   same without waiting for a drop, so against a marking AQM the sender
//!   yields *before* the queue overflows.
//! * **PROBE_UP / DOWN / CRUISE / REFRACTORY cycling** replaces the v1
//!   eight-phase gain cycle: drain below target (DOWN at gain 0.9), cruise
//!   with headroom (CRUISE at 1.0 for [`CRUISE_WAIT`]), refill the pipe
//!   with bounds relaxed (REFRACTORY for one `rt_prop`), then probe above
//!   the ceiling (UP at 1.25).
//!
//! The reference shapes are Linux `tcp_bbr2.c` and the s2n-quic BBRv2
//! recovery module; this is a deterministic simulator-grade distillation
//! (no per-packet ECN alpha EWMA, fixed probe interval instead of a
//! randomized 2–3 s), with every simplification documented where it lives.

use gsrepro_simcore::{BitRate, SimDuration, SimTime};

use super::{AckInfo, CongestionControl, INITIAL_WINDOW_SEGMENTS};

/// STARTUP gain: 2/ln2, as in v1.
const HIGH_GAIN: f64 = 2.885;
/// Multiplicative decrease applied to `inflight_lo` on loss or ECN
/// (Linux `BBR_BETA` ≈ 0.7).
const BETA: f64 = 0.7;
/// Fraction of `inflight_hi` usable outside PROBE_UP/REFRACTORY, leaving
/// space for other flows and keeping the AQM below its drop point.
const HEADROOM: f64 = 0.85;
/// PROBE_UP pacing gain.
const UP_GAIN: f64 = 1.25;
/// PROBE_DOWN pacing gain (v2 drains gently at 0.9, not v1's 0.75).
const DOWN_GAIN: f64 = 0.9;
/// Rounds of bandwidth plateau before declaring the pipe full.
const FULL_BW_ROUNDS: u32 = 3;
/// btl_bw max-filter window, in round trips.
const BW_WINDOW_ROUNDS: u64 = 10;
/// rt_prop min-filter window.
const RTPROP_WINDOW: SimDuration = SimDuration::from_secs(10);
/// Time spent at the reduced window in PROBE_RTT.
const PROBE_RTT_DURATION: SimDuration = SimDuration::from_millis(200);
/// How long CRUISE holds before the next bandwidth probe. Real BBRv2
/// randomizes 2–3 s; the simulator needs determinism, so the low edge is
/// used verbatim.
const CRUISE_WAIT: SimDuration = SimDuration::from_secs(2);

/// PROBE_BW sub-phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Drain the probe's queue contribution: pacing gain 0.9 until
    /// in-flight falls to the BDP target.
    Down,
    /// Steady cruise at gain 1.0, window held [`HEADROOM`] under
    /// `inflight_hi`.
    Cruise,
    /// One `rt_prop` of refill with `inflight_lo` reset and full
    /// `inflight_hi` available, so the coming probe starts from a full
    /// pipe rather than a headroom deficit.
    Refractory,
    /// Probe above the ceiling at gain 1.25, raising `inflight_hi` while
    /// the path absorbs it without loss or ECN.
    Up,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Startup,
    Drain,
    ProbeBw(Phase),
    ProbeRtt,
}

/// BBR v2-style congestion control.
pub struct Bbr2 {
    mss: u64,
    mode: Mode,

    /// Max-filter samples: (round, rate).
    bw_samples: Vec<(u64, BitRate)>,
    btl_bw: BitRate,

    /// Windowed-min rt_prop filter (monotonic deque), as in v1.
    rt_samples: std::collections::VecDeque<(SimTime, SimDuration)>,
    rt_prop: SimDuration,
    true_min: SimDuration,
    last_near_min: SimTime,

    pacing_gain: f64,
    cwnd_gain: f64,
    /// When the current PROBE_BW phase began.
    phase_stamp: SimTime,

    full_bw: BitRate,
    full_bw_count: u32,
    filled_pipe: bool,

    probe_rtt_done_stamp: Option<SimTime>,
    probe_min: SimDuration,
    prior_cwnd: u64,

    /// Long-term inflight ceiling; `u64::MAX` until first learned.
    inflight_hi: u64,
    /// Short-term inflight cap after loss/ECN; `u64::MAX` when relaxed.
    inflight_lo: u64,
    /// Last time an ECN cut was applied (one cut per `rt_prop`).
    last_ecn_cut: SimTime,
    /// Lifetime count of ECN-driven cuts (diagnostics / telemetry).
    ecn_cuts: u64,
    /// Lifetime count of loss-driven cuts (diagnostics).
    loss_cuts: u64,

    cwnd: u64,
    pacing_rate: Option<BitRate>,
    /// Multiplicative-decrease factor (standard [`BETA`]). See
    /// [`Bbr2::with_beta`].
    beta: f64,
}

impl Bbr2 {
    /// New controller with the Linux initial window and the standard
    /// `beta = 0.7` decrease.
    pub fn new(mss: u64) -> Self {
        Self::with_beta(mss, BETA)
    }

    /// New controller with a custom loss/ECN decrease factor — the
    /// conformance kit's perturbation knob: a one-line "bug" (say 0.9
    /// instead of 0.7) must fail the golden step-response diff.
    pub fn with_beta(mss: u64, beta: f64) -> Self {
        Bbr2 {
            mss,
            mode: Mode::Startup,
            bw_samples: Vec::new(),
            btl_bw: BitRate::ZERO,
            rt_samples: std::collections::VecDeque::new(),
            rt_prop: SimDuration::MAX,
            true_min: SimDuration::MAX,
            last_near_min: SimTime::ZERO,
            pacing_gain: HIGH_GAIN,
            cwnd_gain: HIGH_GAIN,
            phase_stamp: SimTime::ZERO,
            full_bw: BitRate::ZERO,
            full_bw_count: 0,
            filled_pipe: false,
            probe_rtt_done_stamp: None,
            probe_min: SimDuration::MAX,
            prior_cwnd: INITIAL_WINDOW_SEGMENTS * mss,
            inflight_hi: u64::MAX,
            inflight_lo: u64::MAX,
            last_ecn_cut: SimTime::ZERO,
            ecn_cuts: 0,
            loss_cuts: 0,
            cwnd: INITIAL_WINDOW_SEGMENTS * mss,
            pacing_rate: None,
            beta,
        }
    }

    /// Current state name (diagnostics).
    pub fn mode_name(&self) -> &'static str {
        match self.mode {
            Mode::Startup => "startup",
            Mode::Drain => "drain",
            Mode::ProbeBw(Phase::Down) => "probe_down",
            Mode::ProbeBw(Phase::Cruise) => "cruise",
            Mode::ProbeBw(Phase::Refractory) => "refractory",
            Mode::ProbeBw(Phase::Up) => "probe_up",
            Mode::ProbeRtt => "probe_rtt",
        }
    }

    /// Current bottleneck-bandwidth estimate.
    pub fn btl_bw(&self) -> BitRate {
        self.btl_bw
    }

    /// Current propagation-delay estimate.
    pub fn rt_prop(&self) -> SimDuration {
        self.rt_prop
    }

    /// Long-term inflight ceiling (`u64::MAX` until first learned).
    pub fn inflight_hi(&self) -> u64 {
        self.inflight_hi
    }

    /// Short-term inflight cap (`u64::MAX` when relaxed).
    pub fn inflight_lo(&self) -> u64 {
        self.inflight_lo
    }

    /// ECN-driven cuts applied so far.
    pub fn ecn_cuts(&self) -> u64 {
        self.ecn_cuts
    }

    fn bdp_bytes(&self) -> u64 {
        if self.rt_prop == SimDuration::MAX {
            return INITIAL_WINDOW_SEGMENTS * self.mss;
        }
        self.btl_bw.bdp(self.rt_prop).as_u64().max(self.mss)
    }

    fn min_cwnd(&self) -> u64 {
        4 * self.mss
    }

    /// The inflight cap in force right now: the short-term `inflight_lo`
    /// and the long-term `inflight_hi`, the latter discounted by
    /// [`HEADROOM`] except while actively refilling or probing.
    fn inflight_cap(&self) -> u64 {
        let hi = if self.inflight_hi == u64::MAX {
            u64::MAX
        } else {
            match self.mode {
                Mode::ProbeBw(Phase::Up) | Mode::ProbeBw(Phase::Refractory) => self.inflight_hi,
                _ => (self.inflight_hi as f64 * HEADROOM) as u64,
            }
        };
        self.inflight_lo.min(hi)
    }

    /// Shared loss/ECN reaction: cut the short-term cap by `beta` of the
    /// current in-flight and latch the long-term ceiling at the level
    /// where the signal appeared; an active probe ends immediately.
    fn cut_bounds(&mut self, now: SimTime, in_flight: u64) {
        let cut = ((in_flight as f64 * self.beta) as u64).max(self.min_cwnd());
        self.inflight_lo = self.inflight_lo.min(cut);
        let latch = in_flight.max(self.min_cwnd());
        self.inflight_hi = self.inflight_hi.min(latch);
        if let Mode::ProbeBw(Phase::Up) = self.mode {
            self.enter_phase(Phase::Down, now);
        }
        // v2 exits STARTUP on congestion: the pipe is demonstrably full.
        if self.mode == Mode::Startup {
            self.filled_pipe = true;
        }
    }

    fn update_btl_bw(&mut self, ack: &AckInfo) {
        if let Some(rate) = ack.delivery_rate {
            if !ack.app_limited || rate > self.btl_bw {
                self.bw_samples.push((ack.round, rate));
            }
        }
        let min_round = ack.round.saturating_sub(BW_WINDOW_ROUNDS);
        self.bw_samples.retain(|&(r, _)| r >= min_round);
        self.btl_bw = self
            .bw_samples
            .iter()
            .map(|&(_, r)| r)
            .max()
            .unwrap_or(BitRate::ZERO);
    }

    fn check_full_pipe(&mut self, ack: &AckInfo) {
        if self.filled_pipe || !ack.round_start || ack.app_limited {
            return;
        }
        if self.btl_bw.as_bps() as f64 >= self.full_bw.as_bps() as f64 * 1.25 {
            self.full_bw = self.btl_bw;
            self.full_bw_count = 0;
            return;
        }
        self.full_bw_count += 1;
        if self.full_bw_count >= FULL_BW_ROUNDS {
            self.filled_pipe = true;
        }
    }

    fn enter_phase(&mut self, phase: Phase, now: SimTime) {
        self.mode = Mode::ProbeBw(phase);
        self.phase_stamp = now;
        self.cwnd_gain = 2.0;
        self.pacing_gain = match phase {
            Phase::Down => DOWN_GAIN,
            Phase::Cruise | Phase::Refractory => 1.0,
            Phase::Up => UP_GAIN,
        };
        if phase == Phase::Refractory {
            // Fresh probe cycle: the short-term caution from the previous
            // cycle's losses/marks has served its purpose.
            self.inflight_lo = u64::MAX;
        }
    }

    fn advance_probe(&mut self, ack: &AckInfo) {
        let Mode::ProbeBw(phase) = self.mode else {
            return;
        };
        let elapsed = ack.now.saturating_since(self.phase_stamp);
        let rt = if self.rt_prop == SimDuration::MAX {
            SimDuration::from_millis(100)
        } else {
            self.rt_prop
        };
        match phase {
            Phase::Down => {
                if ack.in_flight <= self.bdp_bytes() || elapsed > rt * 2 {
                    self.enter_phase(Phase::Cruise, ack.now);
                }
            }
            Phase::Cruise => {
                if elapsed > CRUISE_WAIT {
                    self.enter_phase(Phase::Refractory, ack.now);
                }
            }
            Phase::Refractory => {
                if elapsed > rt {
                    self.enter_phase(Phase::Up, ack.now);
                }
            }
            Phase::Up => {
                // Raise the ceiling while probing fills it without
                // triggering loss/ECN (which would end the phase via
                // `cut_bounds`).
                if self.inflight_hi != u64::MAX
                    && ack.in_flight >= (self.inflight_hi as f64 * 0.9) as u64
                {
                    self.inflight_hi = self.inflight_hi.saturating_add(ack.bytes_acked);
                }
                let target = (self.bdp_bytes() as f64 * UP_GAIN) as u64;
                if elapsed > rt && ack.in_flight >= target {
                    self.enter_phase(Phase::Down, ack.now);
                }
            }
        }
    }

    fn handle_probe_rtt(&mut self, ack: &AckInfo) {
        match self.probe_rtt_done_stamp {
            None => {
                if ack.in_flight <= self.probe_rtt_cwnd() {
                    self.probe_rtt_done_stamp = Some(ack.now + PROBE_RTT_DURATION);
                }
            }
            Some(done) => {
                if ack.now >= done {
                    if self.probe_min < SimDuration::MAX {
                        self.rt_prop = self.probe_min;
                        self.true_min = self.true_min.min(self.probe_min);
                        self.rt_samples.clear();
                        self.rt_samples.push_back((ack.now, self.probe_min));
                    }
                    self.last_near_min = ack.now;
                    self.cwnd = self.prior_cwnd.max(self.min_cwnd());
                    if self.filled_pipe {
                        self.enter_phase(Phase::Down, ack.now);
                    } else {
                        self.mode = Mode::Startup;
                        self.pacing_gain = HIGH_GAIN;
                        self.cwnd_gain = HIGH_GAIN;
                    }
                    self.probe_rtt_done_stamp = None;
                }
            }
        }
    }

    /// v2 dwells at half a BDP (not v1's 4 segments): enough drain to
    /// expose the floor without fully stalling the flow.
    fn probe_rtt_cwnd(&self) -> u64 {
        (self.bdp_bytes() / 2).max(self.min_cwnd())
    }
}

impl CongestionControl for Bbr2 {
    fn on_ack(&mut self, ack: &AckInfo) {
        let was_probe_rtt = self.mode == Mode::ProbeRtt;
        if let Some(rtt) = ack.rtt {
            while self.rt_samples.back().is_some_and(|&(_, r)| r >= rtt) {
                self.rt_samples.pop_back();
            }
            self.rt_samples.push_back((ack.now, rtt));
            while self
                .rt_samples
                .front()
                .is_some_and(|&(t, _)| ack.now.saturating_since(t) > RTPROP_WINDOW)
            {
                self.rt_samples.pop_front();
            }
            self.rt_prop = self.rt_samples.front().map(|&(_, r)| r).unwrap_or(rtt);
            if rtt < self.true_min {
                self.true_min = rtt;
            }
            if rtt <= self.true_min {
                self.last_near_min = ack.now;
            }
            if self.mode == Mode::ProbeRtt {
                self.probe_min = self.probe_min.min(rtt);
            }
        }

        self.update_btl_bw(ack);
        self.check_full_pipe(ack);

        match self.mode {
            Mode::Startup => {
                if self.filled_pipe {
                    self.mode = Mode::Drain;
                    self.pacing_gain = 1.0 / HIGH_GAIN;
                    self.cwnd_gain = HIGH_GAIN;
                }
            }
            Mode::Drain => {
                if ack.in_flight <= self.bdp_bytes() {
                    self.enter_phase(Phase::Cruise, ack.now);
                }
            }
            Mode::ProbeBw(_) => self.advance_probe(ack),
            Mode::ProbeRtt => {}
        }

        if self.mode != Mode::ProbeRtt
            && ack.now.saturating_since(self.last_near_min) > RTPROP_WINDOW
        {
            self.mode = Mode::ProbeRtt;
            self.prior_cwnd = self.cwnd;
            self.pacing_gain = 1.0;
            self.cwnd_gain = 1.0;
            self.probe_rtt_done_stamp = None;
            self.probe_min = SimDuration::MAX;
        }
        if self.mode == Mode::ProbeRtt {
            self.handle_probe_rtt(ack);
        }

        if self.mode == Mode::ProbeRtt {
            self.cwnd = self.probe_rtt_cwnd();
        } else {
            let target = (self.cwnd_gain * self.bdp_bytes() as f64) as u64;
            let mut next = target.min(self.inflight_cap()).max(self.min_cwnd());
            if was_probe_rtt {
                // Honor the restored pre-probe window on the exit ack, as
                // in v1; the model retakes control from the next ack.
                next = next.max(self.cwnd);
            }
            self.cwnd = next;
        }
        if self.btl_bw > BitRate::ZERO {
            self.pacing_rate = Some(self.btl_bw.mul_f64(self.pacing_gain));
        }
    }

    fn on_congestion_event(&mut self, now: SimTime, in_flight: u64) {
        self.loss_cuts += 1;
        self.cut_bounds(now, in_flight);
        self.cwnd = self.cwnd.min(self.inflight_cap()).max(self.min_cwnd());
    }

    fn on_rto(&mut self, now: SimTime) {
        // Conservation on timeout, as in v1: collapse and let the model
        // rebuild; PROBE_RTT guards `prior_cwnd` the same way.
        if self.mode != Mode::ProbeRtt {
            self.prior_cwnd = self.cwnd;
        }
        self.loss_cuts += 1;
        self.cut_bounds(now, self.cwnd);
        self.cwnd = self.mss;
    }

    fn on_ecn(&mut self, now: SimTime, in_flight: u64) {
        // One multiplicative cut per propagation delay: a whole ack train
        // carrying ECE reports one congested round, not N events (the
        // per-round gating Linux implements via its ECN alpha round).
        let gate = if self.rt_prop == SimDuration::MAX {
            SimDuration::from_millis(1)
        } else {
            self.rt_prop
        };
        if self.ecn_cuts > 0 && now.saturating_since(self.last_ecn_cut) < gate {
            return;
        }
        self.last_ecn_cut = now;
        self.ecn_cuts += 1;
        self.cut_bounds(now, in_flight);
        self.cwnd = self.cwnd.min(self.inflight_cap()).max(self.min_cwnd());
    }

    fn ecn_capable(&self) -> bool {
        true
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn pacing_rate(&self) -> Option<BitRate> {
        self.pacing_rate
    }

    fn in_slow_start(&self) -> bool {
        self.mode == Mode::Startup
    }

    fn name(&self) -> &'static str {
        "bbr2"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1448;

    fn ack_at(
        now: SimTime,
        rtt_ms: u64,
        rate: BitRate,
        in_flight: u64,
        round: u64,
        round_start: bool,
        delivered: u64,
    ) -> AckInfo {
        AckInfo {
            now,
            bytes_acked: MSS,
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            srtt: SimDuration::from_millis(rtt_ms),
            min_rtt: SimDuration::from_millis(rtt_ms),
            delivered,
            delivery_rate: Some(rate),
            in_flight,
            round_start,
            round,
            app_limited: false,
        }
    }

    /// Drive to a steady 10 Mb/s, 20 ms path (BDP = 25 kB). Returns
    /// (time, round).
    fn warm_up(b: &mut Bbr2) -> (SimTime, u64) {
        let rate = BitRate::from_mbps(10);
        let mut now = SimTime::ZERO;
        let mut round = 0;
        let mut delivered = 0;
        for i in 0..400u64 {
            let round_start = i % 16 == 0;
            if round_start {
                round += 1;
                now += SimDuration::from_millis(20);
            }
            delivered += MSS;
            b.on_ack(&ack_at(
                now,
                20,
                rate,
                24_000,
                round,
                round_start,
                delivered,
            ));
        }
        (now, round)
    }

    #[test]
    fn startup_exits_and_estimates_converge() {
        let mut b = Bbr2::new(MSS);
        assert_eq!(b.mode_name(), "startup");
        warm_up(&mut b);
        assert!(b.filled_pipe);
        assert_ne!(b.mode_name(), "startup");
        assert_eq!(b.rt_prop(), SimDuration::from_millis(20));
        assert_eq!(b.btl_bw(), BitRate::from_mbps(10));
    }

    #[test]
    fn loss_cuts_inflight_lo_by_beta_and_latches_hi() {
        let mut b = Bbr2::new(MSS);
        warm_up(&mut b);
        assert_eq!(b.inflight_lo(), u64::MAX);
        let in_flight = 40_000;
        b.on_congestion_event(SimTime::from_secs(10), in_flight);
        assert_eq!(b.inflight_lo(), (in_flight as f64 * BETA) as u64);
        assert_eq!(b.inflight_hi(), in_flight);
        assert!(b.cwnd() <= b.inflight_lo());
    }

    #[test]
    fn ecn_cuts_like_loss_but_gated_per_round() {
        let mut b = Bbr2::new(MSS);
        warm_up(&mut b);
        let t = SimTime::from_secs(10);
        b.on_ecn(t, 40_000);
        assert_eq!(b.ecn_cuts(), 1);
        let lo_after_first = b.inflight_lo();
        assert_eq!(lo_after_first, 28_000);
        // A second ECE within the same rt_prop is the same congested
        // round: no further cut.
        b.on_ecn(t + SimDuration::from_millis(5), 20_000);
        assert_eq!(b.ecn_cuts(), 1);
        assert_eq!(b.inflight_lo(), lo_after_first);
        // After a full rt_prop the next ECE counts again.
        b.on_ecn(t + SimDuration::from_millis(25), 20_000);
        assert_eq!(b.ecn_cuts(), 2);
        assert_eq!(b.inflight_lo(), 14_000);
    }

    #[test]
    fn ecn_during_startup_declares_pipe_full() {
        let mut b = Bbr2::new(MSS);
        assert_eq!(b.mode_name(), "startup");
        b.on_ecn(SimTime::from_millis(50), 20_000);
        assert!(b.filled_pipe, "ECN in startup must end the search");
    }

    #[test]
    fn beta_knob_discriminates() {
        // The conformance kit's perturbation: beta 0.9 instead of 0.7
        // must leave a measurably larger short-term cap.
        let mut std = Bbr2::new(MSS);
        let mut loose = Bbr2::with_beta(MSS, 0.9);
        warm_up(&mut std);
        warm_up(&mut loose);
        std.on_congestion_event(SimTime::from_secs(10), 40_000);
        loose.on_congestion_event(SimTime::from_secs(10), 40_000);
        assert!(loose.inflight_lo() > std.inflight_lo());
    }

    #[test]
    fn probe_cycle_visits_all_phases_and_refractory_resets_lo() {
        let mut b = Bbr2::new(MSS);
        let (mut now, mut round) = warm_up(&mut b);
        // Plant a short-term cap to watch Refractory clear it.
        b.on_congestion_event(now, 40_000);
        assert_ne!(b.inflight_lo(), u64::MAX);
        let rate = BitRate::from_mbps(10);
        let mut delivered = 1_000_000;
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..2_000u64 {
            let round_start = i % 2 == 0;
            if round_start {
                round += 1;
                now += SimDuration::from_millis(20);
            }
            delivered += MSS;
            // Keep in-flight near the cap so UP's exit condition can fire.
            let inflight = b.cwnd();
            b.on_ack(&ack_at(
                now,
                20,
                rate,
                inflight,
                round,
                round_start,
                delivered,
            ));
            seen.insert(b.mode_name());
            if b.mode_name() == "refractory" {
                assert_eq!(b.inflight_lo(), u64::MAX, "refractory must relax lo");
            }
        }
        for phase in ["probe_down", "cruise", "refractory", "probe_up"] {
            assert!(seen.contains(phase), "never visited {phase}; saw {seen:?}");
        }
    }

    #[test]
    fn cruise_keeps_headroom_under_inflight_hi() {
        let mut b = Bbr2::new(MSS);
        let (mut now, mut round) = warm_up(&mut b);
        b.on_congestion_event(now, 40_000); // inflight_hi = 40 000
        let rate = BitRate::from_mbps(10);
        let mut delivered = 1_000_000;
        // Walk until CRUISE and check the cap there.
        for i in 0..400u64 {
            let round_start = i % 2 == 0;
            if round_start {
                round += 1;
                now += SimDuration::from_millis(20);
            }
            delivered += MSS;
            b.on_ack(&ack_at(
                now,
                20,
                rate,
                20_000,
                round,
                round_start,
                delivered,
            ));
            if b.mode_name() == "cruise" {
                assert!(
                    b.cwnd() <= (40_000f64 * HEADROOM) as u64,
                    "cruise cwnd {} must stay under {:.0}% of inflight_hi",
                    b.cwnd(),
                    HEADROOM * 100.0
                );
                return;
            }
        }
        panic!("never reached cruise");
    }

    #[test]
    fn probe_up_raises_inflight_hi_without_signals() {
        let mut b = Bbr2::new(MSS);
        let (mut now, mut round) = warm_up(&mut b);
        b.on_congestion_event(now, 30_000);
        let hi0 = b.inflight_hi();
        let rate = BitRate::from_mbps(10);
        let mut delivered = 1_000_000;
        for i in 0..2_000u64 {
            let round_start = i % 2 == 0;
            if round_start {
                round += 1;
                now += SimDuration::from_millis(20);
            }
            delivered += MSS;
            // Report in-flight pressed against the ceiling while probing.
            let inflight = b.inflight_hi().min(60_000);
            b.on_ack(&ack_at(
                now,
                20,
                rate,
                inflight,
                round,
                round_start,
                delivered,
            ));
        }
        assert!(
            b.inflight_hi() > hi0,
            "clean probes must raise hi: {} -> {}",
            hi0,
            b.inflight_hi()
        );
    }

    #[test]
    fn rto_collapses_then_model_rebuilds_within_bounds() {
        let mut b = Bbr2::new(MSS);
        let (now, round) = warm_up(&mut b);
        let pre = b.cwnd();
        b.on_rto(now);
        assert_eq!(b.cwnd(), MSS);
        b.on_ack(&ack_at(
            now + SimDuration::from_millis(20),
            20,
            BitRate::from_mbps(10),
            MSS,
            round + 1,
            true,
            2_000_000,
        ));
        assert!(b.cwnd() > 4 * MSS, "model must rebuild");
        assert!(
            b.cwnd() <= (pre as f64 * BETA) as u64 + MSS,
            "rebuild {} must respect the post-RTO cap (pre {pre})",
            b.cwnd()
        );
    }

    #[test]
    fn probe_rtt_dwells_at_half_bdp() {
        let mut b = Bbr2::new(MSS);
        let (t0, mut round) = warm_up(&mut b);
        let rate = BitRate::from_mbps(10);
        let mut delivered = 1_000_000;
        let mut now = t0;
        let mut saw = false;
        let mut min_seen = u64::MAX;
        for i in 0..2_000u64 {
            let round_start = i % 2 == 0;
            if round_start {
                round += 1;
                now += SimDuration::from_millis(21);
            }
            delivered += MSS;
            b.on_ack(&ack_at(
                now,
                21,
                rate,
                4 * MSS,
                round,
                round_start,
                delivered,
            ));
            if b.mode_name() == "probe_rtt" {
                saw = true;
                min_seen = min_seen.min(b.cwnd());
            }
        }
        assert!(saw, "PROBE_RTT must trigger after the window lapses");
        // Half of the ~26 kB BDP (21 ms floor), not v1's 4-segment floor.
        assert!(
            min_seen > 4 * MSS && min_seen <= 16_000,
            "dwell cwnd {min_seen}"
        );
        assert_ne!(b.mode_name(), "probe_rtt", "must exit afterwards");
    }

    #[test]
    fn ecn_capable_and_named() {
        let b = Bbr2::new(MSS);
        assert!(b.ecn_capable());
        assert_eq!(b.name(), "bbr2");
        assert!(b.in_slow_start());
    }
}
