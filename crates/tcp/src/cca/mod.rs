//! The congestion-control interface and its implementations.
//!
//! A [`CongestionControl`] consumes per-ack information ([`AckInfo`]) and
//! congestion notifications, and exposes a congestion window plus an
//! optional pacing rate. The sender machinery in
//! [`crate::endpoint::TcpSender`] is identical for every algorithm, so
//! differences in behaviour between, say, Cubic and BBR are attributable to
//! the control law alone — the property the paper's comparison rests on.

pub mod bbr;
pub mod bbr2;
pub mod cubic;
pub mod reno;
pub mod vegas;

use gsrepro_simcore::{BitRate, SimDuration, SimTime};

/// Everything a controller may want to know about one acknowledgment.
#[derive(Clone, Copy, Debug)]
pub struct AckInfo {
    /// Arrival time of the ack.
    pub now: SimTime,
    /// Bytes newly acknowledged (cumulatively or via SACK) by this ack.
    pub bytes_acked: u64,
    /// RTT sample from the timestamp echo, when available.
    pub rtt: Option<SimDuration>,
    /// Smoothed RTT maintained by the sender.
    pub srtt: SimDuration,
    /// Minimum RTT observed over the connection's lifetime.
    pub min_rtt: SimDuration,
    /// Total bytes delivered (cum-acked + SACKed) so far.
    pub delivered: u64,
    /// Delivery-rate sample for the acked segment, if computable.
    pub delivery_rate: Option<BitRate>,
    /// Bytes estimated in flight *after* processing this ack.
    pub in_flight: u64,
    /// True when this ack starts a new round trip (the first packet sent
    /// after the previous round's `delivered` milestone has been acked).
    pub round_start: bool,
    /// Monotonic round-trip counter.
    pub round: u64,
    /// True if the sender had no data to send when the acked segment was
    /// transmitted (rate samples taken then should not lower bw estimates).
    pub app_limited: bool,
}

/// A congestion-control algorithm.
pub trait CongestionControl: Send {
    /// Process one acknowledgment (new data was acked or SACKed).
    fn on_ack(&mut self, ack: &AckInfo);

    /// A loss-based congestion event: fast retransmit has fired for a new
    /// recovery episode. Called once per episode, not per lost segment.
    fn on_congestion_event(&mut self, now: SimTime, in_flight: u64);

    /// The retransmission timer fired — the most severe congestion signal.
    fn on_rto(&mut self, now: SimTime);

    /// An ack carried an ECE echo: the path CE-marked at least one of this
    /// flow's packets since the last clean ack (RFC 3168 § 6.1). Called on
    /// every ECE-bearing ack; controllers that react once per round (BBRv2)
    /// gate internally. Default no-op so loss-based controllers that never
    /// negotiate ECN (Reno/Cubic/Vegas here) are untouched.
    fn on_ecn(&mut self, _now: SimTime, _in_flight: u64) {}

    /// True if this controller wants its data packets sent ECT so AQMs
    /// mark instead of drop. Only controllers that implement [`on_ecn`]
    /// should opt in.
    ///
    /// [`on_ecn`]: CongestionControl::on_ecn
    fn ecn_capable(&self) -> bool {
        false
    }

    /// Current congestion window in bytes.
    fn cwnd(&self) -> u64;

    /// Slow-start threshold in bytes, for telemetry. `u64::MAX` means "no
    /// threshold yet"; controllers without one (BBR) keep the default.
    fn ssthresh(&self) -> u64 {
        u64::MAX
    }

    /// Pacing rate, if this controller paces (BBR does; loss-based
    /// controllers here are ack-clocked and return `None`).
    fn pacing_rate(&self) -> Option<BitRate>;

    /// True while in slow start (diagnostics only).
    fn in_slow_start(&self) -> bool;

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Downcast support for diagnostics and tests.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Selector for constructing controllers from experiment configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CcaKind {
    /// Classic NewReno AIMD.
    Reno,
    /// TCP Cubic (Linux default since 2.6.19).
    Cubic,
    /// TCP BBR v1 (as deployed circa Linux 4.9-5.4).
    Bbr,
    /// BBR v2-style: inflight bounds with loss- and ECN-driven reductions.
    Bbr2,
    /// TCP Vegas (delay-based baseline).
    Vegas,
}

impl CcaKind {
    /// Instantiate the controller with the given MSS.
    pub fn build(self, mss: u64) -> Box<dyn CongestionControl> {
        match self {
            CcaKind::Reno => Box::new(reno::Reno::new(mss)),
            CcaKind::Cubic => Box::new(cubic::Cubic::new(mss)),
            CcaKind::Bbr => Box::new(bbr::Bbr::new(mss)),
            CcaKind::Bbr2 => Box::new(bbr2::Bbr2::new(mss)),
            CcaKind::Vegas => Box::new(vegas::Vegas::new(mss)),
        }
    }

    /// Name used in condition labels ("cubic", "bbr", ...).
    pub fn label(self) -> &'static str {
        match self {
            CcaKind::Reno => "reno",
            CcaKind::Cubic => "cubic",
            CcaKind::Bbr => "bbr",
            CcaKind::Bbr2 => "bbr2",
            CcaKind::Vegas => "vegas",
        }
    }
}

impl std::fmt::Display for CcaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Linux's initial congestion window (RFC 6928): 10 segments.
pub const INITIAL_WINDOW_SEGMENTS: u64 = 10;

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for driving a controller through synthetic acks.
    use super::*;

    /// Feed `n` acks of one MSS each, grouped into rounds of
    /// `acks_per_round`; the clock advances by `rtt` at each round start.
    /// Returns the final (time, round).
    #[allow(clippy::too_many_arguments)]
    pub fn drive_acks(
        cca: &mut dyn CongestionControl,
        mss: u64,
        n: u64,
        acks_per_round: u64,
        rtt: SimDuration,
        rate: BitRate,
        mut now: SimTime,
        round0: u64,
        delivered0: u64,
    ) -> (SimTime, u64) {
        let per_round = acks_per_round.max(1);
        let mut delivered = delivered0;
        let mut round = round0;
        for i in 0..n {
            delivered += mss;
            let round_start = i % per_round == 0;
            if round_start {
                round += 1;
                now += rtt;
            }
            cca.on_ack(&AckInfo {
                now,
                bytes_acked: mss,
                rtt: Some(rtt),
                srtt: rtt,
                min_rtt: rtt,
                delivered,
                delivery_rate: Some(rate),
                in_flight: cca.cwnd().saturating_sub(mss),
                round_start,
                round,
                app_limited: false,
            });
        }
        (now, round)
    }
}
