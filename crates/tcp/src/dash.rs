//! DASH-like adaptive video over TCP — the paper's "HTTP-based streaming
//! (e.g., Netflix)" future-work competitor.
//!
//! A [`DashServer`] wraps a [`TcpSender`] in application-limited mode and
//! drives it with the classic segment-fetch pattern: the (modelled) client
//! keeps a playout buffer of a few segments; whenever the buffer has room,
//! the next `segment_duration` of video is fetched at the bitrate ladder
//! rung chosen from a throughput estimate; when the buffer is full the
//! connection goes idle — producing DASH's characteristic ON/OFF traffic
//! instead of iperf's relentless bulk download.
//!
//! The client's buffer state is modelled inside the server agent (the
//! receiver side is a standard [`crate::TcpReceiver`]); this keeps the
//! request logic in one place and is equivalent for the traffic pattern,
//! which is all the testbed observes.

use gsrepro_netsim::net::{Agent, Ctx};
use gsrepro_netsim::wire::Packet;
use gsrepro_simcore::{BitRate, SimDuration, SimTime};

use crate::endpoint::{TcpSender, TcpSenderConfig};

/// Timer token namespace for the wrapper (the inner sender uses 0..=2).
const TOK_TICK: u64 = 100;

/// Configuration of the DASH session.
#[derive(Clone, Debug)]
pub struct DashConfig {
    /// Bitrate ladder, ascending (e.g. 1.5 / 3 / 6 / 12 Mb/s as a typical
    /// HD ladder).
    pub ladder: Vec<BitRate>,
    /// Content seconds per segment (DASH commonly 2-6 s).
    pub segment_duration: SimDuration,
    /// Playout buffer target; fetching pauses above this.
    pub buffer_target: SimDuration,
    /// EWMA weight for the throughput estimate (0..1, applied per fetch).
    pub ewma: f64,
    /// Safety factor: pick the highest rung below `safety × estimate`.
    pub safety: f64,
}

impl Default for DashConfig {
    fn default() -> Self {
        DashConfig {
            ladder: vec![
                BitRate::from_mbps_f64(1.5),
                BitRate::from_mbps(3),
                BitRate::from_mbps(6),
                BitRate::from_mbps(12),
            ],
            segment_duration: SimDuration::from_secs(4),
            buffer_target: SimDuration::from_secs(12),
            ewma: 0.3,
            safety: 0.8,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FetchState {
    /// Waiting for buffer room.
    Idle,
    /// A segment fetch is outstanding.
    Fetching,
}

/// A DASH video session (sender side), wrapping an app-limited TCP sender.
pub struct DashServer {
    sender: TcpSender,
    cfg: DashConfig,
    state: FetchState,
    level: usize,
    /// Delivered-bytes mark at which the current fetch completes.
    fetch_target: u64,
    fetch_started: SimTime,
    /// Modelled client playout buffer (content seconds).
    buffer: SimDuration,
    last_tick: SimTime,
    throughput_est_mbps: f64,
    segments_fetched: u64,
    level_history: Vec<usize>,
    stall_time: SimDuration,
}

impl DashServer {
    /// Wrap `sender_cfg` into a DASH session. The inner sender is switched
    /// to app-limited mode automatically.
    pub fn new(sender_cfg: TcpSenderConfig, cfg: DashConfig) -> Self {
        assert!(!cfg.ladder.is_empty(), "bitrate ladder cannot be empty");
        let mut sender = TcpSender::new(sender_cfg);
        sender.set_app_limited();
        DashServer {
            sender,
            cfg,
            state: FetchState::Idle,
            level: 0,
            fetch_target: 0,
            fetch_started: SimTime::ZERO,
            buffer: SimDuration::ZERO,
            last_tick: SimTime::ZERO,
            throughput_est_mbps: 0.0,
            segments_fetched: 0,
            level_history: Vec::new(),
            stall_time: SimDuration::ZERO,
        }
    }

    /// Segments fetched so far.
    pub fn segments_fetched(&self) -> u64 {
        self.segments_fetched
    }

    /// Ladder index chosen for each fetched segment.
    pub fn level_history(&self) -> &[usize] {
        &self.level_history
    }

    /// Current throughput estimate (Mb/s).
    pub fn throughput_estimate_mbps(&self) -> f64 {
        self.throughput_est_mbps
    }

    /// Total time the modelled player spent stalled (buffer empty while
    /// not fetching fast enough).
    pub fn stall_time(&self) -> SimDuration {
        self.stall_time
    }

    /// Current playout buffer level.
    pub fn buffer_level(&self) -> SimDuration {
        self.buffer
    }

    /// Access the inner TCP sender (e.g. for retransmission counters).
    pub fn sender(&self) -> &TcpSender {
        &self.sender
    }

    fn segment_bytes(&self, level: usize) -> u64 {
        (self.cfg.ladder[level].as_bps() as f64 / 8.0 * self.cfg.segment_duration.as_secs_f64())
            as u64
    }

    fn pick_level(&self) -> usize {
        let budget = self.throughput_est_mbps * self.cfg.safety;
        let mut pick = 0;
        for (i, r) in self.cfg.ladder.iter().enumerate() {
            if r.as_mbps() <= budget {
                pick = i;
            }
        }
        pick
    }

    fn start_fetch(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        self.level = self.pick_level();
        let bytes = self.segment_bytes(self.level);
        self.fetch_target = self.sender.delivered_bytes() + bytes;
        self.fetch_started = now;
        self.sender.queue_app_bytes(bytes);
        self.sender.poke(ctx);
        self.state = FetchState::Fetching;
    }

    fn tick(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        // The session is inert before the configured start (a viewer who
        // has not pressed play buffers nothing and stalls nothing).
        if now < self.sender.config().start_at {
            self.last_tick = now;
            return;
        }
        let wall = now.saturating_since(self.last_tick);
        self.last_tick = now;

        // Drain the playout buffer in real time; count stalls.
        if self.segments_fetched > 0 || self.state == FetchState::Fetching {
            if self.buffer >= wall {
                self.buffer -= wall;
            } else {
                self.stall_time += wall - self.buffer;
                self.buffer = SimDuration::ZERO;
            }
        }

        match self.state {
            FetchState::Fetching => {
                if self.sender.delivered_bytes() >= self.fetch_target {
                    // Fetch complete: update the throughput estimate.
                    let dur = now.saturating_since(self.fetch_started).as_secs_f64();
                    if dur > 0.0 {
                        let mbps = self.segment_bytes(self.level) as f64 * 8.0 / dur / 1e6;
                        self.throughput_est_mbps = if self.segments_fetched == 0 {
                            mbps
                        } else {
                            self.cfg.ewma * mbps + (1.0 - self.cfg.ewma) * self.throughput_est_mbps
                        };
                    }
                    self.segments_fetched += 1;
                    self.level_history.push(self.level);
                    self.buffer += self.cfg.segment_duration;
                    self.state = FetchState::Idle;
                }
            }
            FetchState::Idle => {
                if self.buffer < self.cfg.buffer_target {
                    self.start_fetch(ctx);
                }
            }
        }
    }
}

impl Agent for DashServer {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.sender.on_start(ctx);
        self.last_tick = ctx.now();
        ctx.set_timer(SimDuration::from_millis(100), TOK_TICK);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        self.sender.on_packet(pkt, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        if token >= TOK_TICK {
            self.tick(ctx);
            ctx.set_timer(SimDuration::from_millis(100), TOK_TICK);
        } else {
            self.sender.on_timer(token, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CcaKind, TcpReceiver};
    use gsrepro_netsim::link::LinkSpec;
    use gsrepro_netsim::net::{AgentId, NetworkBuilder};
    use gsrepro_simcore::Bytes;

    fn run_dash(rate_mbps: u64, secs: u64) -> (u64, Vec<usize>, f64, SimDuration) {
        let mut b = NetworkBuilder::new(3);
        let s = b.add_node("cdn");
        let c = b.add_node("client");
        b.link(
            s,
            c,
            LinkSpec::bottleneck(
                BitRate::from_mbps(rate_mbps),
                Bytes(80_000),
                SimDuration::from_millis(10),
            ),
        );
        b.link(c, s, LinkSpec::lan(SimDuration::from_millis(10)));
        let data = b.flow("dash");
        let acks = b.flow("dash-ack");
        let cfg = TcpSenderConfig::new(data, c, AgentId(1), CcaKind::Cubic);
        let dash = b.add_agent(s, Box::new(DashServer::new(cfg, DashConfig::default())));
        b.add_agent(c, Box::new(TcpReceiver::new(acks, s, dash)));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(secs));
        let d: &DashServer = sim.net.agent(dash);
        (
            d.segments_fetched(),
            d.level_history().to_vec(),
            sim.goodput_mbps(data, SimTime::from_secs(5), SimTime::from_secs(secs)),
            d.stall_time(),
        )
    }

    #[test]
    fn fast_link_climbs_the_ladder_and_goes_on_off() {
        let (segments, levels, goodput, stalls) = run_dash(50, 120);
        assert!(segments >= 25, "segments {segments}");
        // Reaches the top rung (12 Mb/s) on a 50 Mb/s link.
        assert_eq!(*levels.last().expect("fetched at least one"), 3);
        // ON/OFF: long-run average ≈ top rung, far below link rate.
        assert!(goodput < 16.0, "dash must not behave like bulk: {goodput}");
        assert!(goodput > 6.0, "dash should sustain the top rung: {goodput}");
        assert!(stalls < SimDuration::from_secs(5), "stalls {stalls}");
    }

    #[test]
    fn slow_link_stays_low_on_the_ladder() {
        let (segments, levels, _goodput, _) = run_dash(2, 120);
        assert!(segments >= 10, "segments {segments}");
        let top_picks = levels.iter().filter(|&&l| l >= 2).count();
        assert!(
            top_picks <= 2,
            "a 2 Mb/s link cannot sustain ≥6 Mb/s rungs (picked {top_picks}x)"
        );
    }

    #[test]
    fn ladder_choice_respects_safety_factor() {
        let cfg = TcpSenderConfig::new(
            gsrepro_netsim::wire::FlowId(0),
            gsrepro_netsim::NodeId(0),
            AgentId(0),
            CcaKind::Cubic,
        );
        let mut d = DashServer::new(cfg, DashConfig::default());
        d.throughput_est_mbps = 8.0; // 0.8 × 8 = 6.4 → the 6 Mb/s rung
        assert_eq!(d.pick_level(), 2);
        d.throughput_est_mbps = 100.0;
        assert_eq!(d.pick_level(), 3);
        d.throughput_est_mbps = 0.1;
        assert_eq!(d.pick_level(), 0);
    }
}
