//! # gsrepro-tcp
//!
//! TCP endpoints for the simulated testbed, with pluggable congestion
//! control. This is the "iperf + Linux kernel 5.4" half of Xu & Claypool's
//! experiment: a bulk-download TCP flow whose congestion control is either
//! **Cubic** (the Linux default, Ha et al. 2008) or **BBR v1** (Cardwell et
//! al. 2017). **Reno** and **Vegas** are included as baselines — Vegas being
//! the delay-based representative that related work (Turkovic et al. 2019)
//! compares against.
//!
//! The sender ([`TcpSender`]) implements:
//!
//! * byte-sequence bulk transfer with an unlimited application source,
//! * RFC 6298 RTT estimation and retransmission timeout with backoff,
//! * SACK-based loss detection (RFC 2018/6675-style: a segment is lost when
//!   data ≥ 3 segments above it has been SACKed, or on three duplicate
//!   acks), fast retransmit, and NewReno-style recovery episodes,
//! * delivery-rate sampling for rate-based controllers (BBR),
//! * optional pacing driven by the controller's pacing rate.
//!
//! The receiver ([`TcpReceiver`]) acknowledges every segment immediately,
//! echoes the data segment's transmit timestamp (giving the sender exact,
//! Karn-safe RTT samples), and reports up to three SACK blocks.
//!
//! Connection management (SYN/FIN) is intentionally minimal: experiment
//! flows start in slow start with the Linux initial window of 10 segments
//! at a configured time, exactly like starting `iperf` mid-run.

pub mod cca;
pub mod conformance;
pub mod dash;
pub mod endpoint;

pub use cca::{bbr::Bbr, bbr2::Bbr2, cubic::Cubic, reno::Reno, vegas::Vegas};
pub use cca::{AckInfo, CcaKind, CongestionControl};
pub use conformance::{AckRun, AckScript, TracePoint};
pub use dash::{DashConfig, DashServer};
pub use endpoint::{TcpReceiver, TcpSender, TcpSenderConfig};
