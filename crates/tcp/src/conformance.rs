//! CCA conformance kit: scripted-ack step responses against golden
//! fixtures.
//!
//! A congestion controller is a pure state machine over the ack stream, so
//! its behaviour can be pinned exactly: feed it a canned sequence of acks,
//! losses and timeouts ([`AckScript`]), sample the window trajectory
//! ([`TracePoint`]), and diff the result against a committed fixture file.
//! The fixtures under `crates/tcp/tests/fixtures/cca/` are the expected
//! step responses:
//!
//! * **Cubic** — slow start, one loss epoch, then the RFC 8312 cubic
//!   recovery curve through and past the inflection point `K`,
//! * **BBR v1** — STARTUP → DRAIN → PROBE_BW with the 8-phase gain cycle
//!   visible in the pacing column, then a stale-floor leg that must enter
//!   PROBE_RTT (cwnd pinned to 4 segments) and exit back to PROBE_BW,
//! * **BBR v2** — STARTUP → DRAIN → the PROBE_BW cruise/refractory/up
//!   cycle, a loss episode that cuts `inflight_lo` by β = 0.7 and latches
//!   `inflight_hi`, a pair of back-to-back ECN echoes (the second must be
//!   a no-op under the per-round gate), and a PROBE_RTT dwell at half-BDP,
//! * **Reno** — slow-start doubling, the β = 0.5 halving, and the
//!   1-MSS-per-RTT AIMD slope,
//! * **Vegas** — base-RTT acquisition, slow-start exit on queue build-up,
//!   and ±1-segment corrections around the (α, β) occupancy band.
//!
//! Comparison is tolerance-based ([`REL_TOL`]) so the fixtures survive
//! last-bit libm differences across platforms, but tight enough that a
//! one-line bug — a wrong Cubic β, a skipped PROBE_RTT floor, a shifted
//! Vegas band — produces a diff. The kit proves that by construction: the
//! conformance tests run each controller with a perturbed constant
//! ([`Cubic::with_beta`], [`Reno::with_beta`], [`Vegas::with_band`],
//! [`Bbr::with_cwnd_gain`], [`Bbr2::with_beta`]) and assert the fixture
//! check *fails*.
//!
//! Regenerate fixtures with `GSREPRO_BLESS=1 cargo test -p gsrepro-tcp`,
//! or `conformance --bless` (the bench binary), then review the diff like
//! any other code change.

use std::fmt::Write as _;
use std::path::Path;

use gsrepro_simcore::{BitRate, SimDuration, SimTime};

use crate::cca::{AckInfo, CcaKind, CongestionControl};

/// MSS used by every standard script (the testbed's Ethernet MSS).
pub const STANDARD_MSS: u64 = 1448;

/// Relative tolerance for window/pacing comparison: loose enough for
/// cross-platform float noise, tight enough to catch any constant that is
/// actually wrong (the smallest perturbation the kit must detect shifts
/// trajectories by whole segments).
pub const REL_TOL: f64 = 1e-3;

/// Environment variable that switches fixture checks into bless mode.
pub const BLESS_ENV: &str = "GSREPRO_BLESS";

/// How a scripted run reports bytes in flight to the controller.
#[derive(Clone, Copy, Debug)]
pub enum InFlight {
    /// `cwnd − MSS`, as an ack-clocked sender that keeps the window full
    /// would report. The default.
    Tracked,
    /// A fixed value — used to steer BBR's DRAIN exit and PROBE_RTT dwell,
    /// which key on in-flight relative to BDP and the 4-segment floor.
    Fixed(u64),
}

/// One homogeneous stretch of acks: `acks` acknowledgments of one MSS
/// each, grouped into rounds of `acks_per_round`, with the clock advancing
/// by `rtt` at each round start.
#[derive(Clone, Copy, Debug)]
pub struct AckRun {
    /// Total acks in this run.
    pub acks: u64,
    /// Acks per round trip (the window in segments, roughly).
    pub acks_per_round: u64,
    /// RTT sample carried by every ack (also srtt and the per-round clock
    /// step).
    pub rtt: SimDuration,
    /// Delivery-rate sample carried by every ack.
    pub rate: BitRate,
    /// In-flight reporting policy.
    pub in_flight: InFlight,
    /// Sample the trace every this many rounds (≥ 1). The last round of
    /// the run is always sampled.
    pub sample_every: u64,
}

impl AckRun {
    /// A run with tracked in-flight, sampled every round.
    pub fn new(acks: u64, acks_per_round: u64, rtt: SimDuration, rate: BitRate) -> Self {
        AckRun {
            acks,
            acks_per_round,
            rtt,
            rate,
            in_flight: InFlight::Tracked,
            sample_every: 1,
        }
    }

    /// Report a fixed in-flight instead of tracking the window.
    pub fn with_in_flight(mut self, bytes: u64) -> Self {
        self.in_flight = InFlight::Fixed(bytes);
        self
    }

    /// Thin the trace to one sample per `rounds` rounds.
    pub fn with_sampling(mut self, rounds: u64) -> Self {
        self.sample_every = rounds.max(1);
        self
    }
}

/// One step of a script.
#[derive(Clone, Copy, Debug)]
enum Step {
    Run(AckRun),
    /// A fast-retransmit congestion episode (`on_congestion_event`).
    Loss,
    /// A retransmission timeout (`on_rto`).
    Rto,
    /// An ECE-bearing ack (`on_ecn`) reporting `in_flight` bytes.
    Ecn(u64),
}

/// A deterministic scripted-ack drive for a [`CongestionControl`].
///
/// The script owns the sender-side bookkeeping a controller expects —
/// monotonic time, round counting, cumulative delivered bytes — so two
/// runs of the same script are bit-identical inputs.
#[derive(Clone, Debug)]
pub struct AckScript {
    mss: u64,
    steps: Vec<Step>,
}

impl AckScript {
    /// Empty script for a controller using `mss`-byte segments.
    pub fn new(mss: u64) -> Self {
        AckScript {
            mss,
            steps: Vec::new(),
        }
    }

    /// Append a stretch of acks.
    pub fn run(mut self, run: AckRun) -> Self {
        self.steps.push(Step::Run(run));
        self
    }

    /// Append a loss episode (fast retransmit).
    pub fn loss(mut self) -> Self {
        self.steps.push(Step::Loss);
        self
    }

    /// Append a retransmission timeout.
    pub fn rto(mut self) -> Self {
        self.steps.push(Step::Rto);
        self
    }

    /// Append an ECN congestion echo reporting `in_flight` bytes.
    pub fn ecn(mut self, in_flight: u64) -> Self {
        self.steps.push(Step::Ecn(in_flight));
        self
    }

    /// Drive `cca` through the script and return the sampled trajectory.
    pub fn drive(&self, cca: &mut dyn CongestionControl) -> Vec<TracePoint> {
        let mut now = SimTime::ZERO;
        let mut round: u64 = 0;
        let mut delivered: u64 = 0;
        let mut trace = vec![TracePoint::sample(now, "init", cca)];
        for step in &self.steps {
            match *step {
                Step::Loss => {
                    cca.on_congestion_event(now, cca.cwnd());
                    trace.push(TracePoint::sample(now, "loss", cca));
                }
                Step::Rto => {
                    cca.on_rto(now);
                    trace.push(TracePoint::sample(now, "rto", cca));
                }
                Step::Ecn(in_flight) => {
                    cca.on_ecn(now, in_flight);
                    trace.push(TracePoint::sample(now, "ecn", cca));
                }
                Step::Run(r) => {
                    let per_round = r.acks_per_round.max(1);
                    let mut rounds_done: u64 = 0;
                    let mut sampled_round = false;
                    for i in 0..r.acks {
                        let round_start = i % per_round == 0;
                        if round_start {
                            round += 1;
                            now += r.rtt;
                            rounds_done += 1;
                            sampled_round = false;
                        }
                        delivered += self.mss;
                        let in_flight = match r.in_flight {
                            InFlight::Tracked => cca.cwnd().saturating_sub(self.mss),
                            InFlight::Fixed(b) => b,
                        };
                        cca.on_ack(&AckInfo {
                            now,
                            bytes_acked: self.mss,
                            rtt: Some(r.rtt),
                            srtt: r.rtt,
                            min_rtt: r.rtt,
                            delivered,
                            delivery_rate: Some(r.rate),
                            in_flight,
                            round_start,
                            round,
                            app_limited: false,
                        });
                        let round_complete = (i + 1) % per_round == 0 || i + 1 == r.acks;
                        if round_complete
                            && !sampled_round
                            && (rounds_done.is_multiple_of(r.sample_every) || i + 1 == r.acks)
                        {
                            trace.push(TracePoint::sample(now, "round", cca));
                            sampled_round = true;
                        }
                    }
                }
            }
        }
        trace
    }
}

/// One sampled point of a controller's trajectory.
#[derive(Clone, Debug, PartialEq)]
pub struct TracePoint {
    /// Simulated time of the sample, in seconds.
    pub t_secs: f64,
    /// What produced the sample: `init`, `round`, `loss`, or `rto`.
    pub event: String,
    /// Congestion window, bytes.
    pub cwnd: u64,
    /// Slow-start threshold, bytes (`u64::MAX` = not yet set).
    pub ssthresh: u64,
    /// Pacing rate, bits/s, for controllers that pace.
    pub pacing_bps: Option<u64>,
    /// The controller's slow-start flag.
    pub slow_start: bool,
}

impl TracePoint {
    fn sample(now: SimTime, event: &str, cca: &dyn CongestionControl) -> Self {
        TracePoint {
            t_secs: now.as_secs_f64(),
            event: event.to_string(),
            cwnd: cca.cwnd(),
            ssthresh: cca.ssthresh(),
            pacing_bps: cca.pacing_rate().map(|r| r.as_bps()),
            slow_start: cca.in_slow_start(),
        }
    }
}

/// Render a trace as the diffable fixture text.
pub fn render(name: &str, mss: u64, trace: &[TracePoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# conformance trace: {name}");
    let _ = writeln!(out, "# mss: {mss}");
    let _ = writeln!(out, "# columns: t_s event cwnd ssthresh pacing_bps ss");
    for p in trace {
        let ssthresh = if p.ssthresh == u64::MAX {
            "max".to_string()
        } else {
            p.ssthresh.to_string()
        };
        let pacing = match p.pacing_bps {
            Some(bps) => bps.to_string(),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:.6} {} {} {} {} {}",
            p.t_secs,
            p.event,
            p.cwnd,
            ssthresh,
            pacing,
            u8::from(p.slow_start),
        );
    }
    out
}

/// Parse fixture text back into a trace.
pub fn parse(text: &str) -> Result<Vec<TracePoint>, String> {
    let mut trace = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 6 {
            return Err(format!(
                "fixture line {}: expected 6 fields, got {}: {line:?}",
                lineno + 1,
                fields.len()
            ));
        }
        let bad = |what: &str| format!("fixture line {}: bad {what}: {line:?}", lineno + 1);
        trace.push(TracePoint {
            t_secs: fields[0].parse().map_err(|_| bad("time"))?,
            event: fields[1].to_string(),
            cwnd: fields[2].parse().map_err(|_| bad("cwnd"))?,
            ssthresh: if fields[3] == "max" {
                u64::MAX
            } else {
                fields[3].parse().map_err(|_| bad("ssthresh"))?
            },
            pacing_bps: if fields[4] == "-" {
                None
            } else {
                Some(fields[4].parse().map_err(|_| bad("pacing"))?)
            },
            slow_start: match fields[5] {
                "0" => false,
                "1" => true,
                _ => return Err(bad("slow-start flag")),
            },
        });
    }
    Ok(trace)
}

fn within_tol(expected: u64, actual: u64, rel_tol: f64) -> bool {
    if expected == actual {
        return true;
    }
    // `max` sentinels only match exactly.
    if expected == u64::MAX || actual == u64::MAX {
        return false;
    }
    let diff = expected.abs_diff(actual) as f64;
    diff <= rel_tol * (expected.max(actual) as f64)
}

/// Compare an actual trace against the expected one, within `rel_tol` on
/// cwnd/ssthresh/pacing. Returns a description of the first mismatch.
pub fn compare(expected: &[TracePoint], actual: &[TracePoint], rel_tol: f64) -> Result<(), String> {
    if expected.len() != actual.len() {
        return Err(format!(
            "trace length mismatch: expected {} points, got {}",
            expected.len(),
            actual.len()
        ));
    }
    for (i, (e, a)) in expected.iter().zip(actual).enumerate() {
        let mismatch = |what: &str| {
            Err(format!(
                "trace point {i} (t = {:.6} s, event {}): {what} mismatch\n  expected: {e:?}\n  actual  : {a:?}",
                e.t_secs, e.event
            ))
        };
        if (e.t_secs - a.t_secs).abs() > 1e-9 {
            return mismatch("time");
        }
        if e.event != a.event {
            return mismatch("event");
        }
        if !within_tol(e.cwnd, a.cwnd, rel_tol) {
            return mismatch("cwnd");
        }
        if !within_tol(e.ssthresh, a.ssthresh, rel_tol) {
            return mismatch("ssthresh");
        }
        match (e.pacing_bps, a.pacing_bps) {
            (None, None) => {}
            (Some(ep), Some(ap)) if within_tol(ep, ap, rel_tol) => {}
            _ => return mismatch("pacing"),
        }
        if e.slow_start != a.slow_start {
            return mismatch("slow-start");
        }
    }
    Ok(())
}

/// The committed step-response script for one controller.
///
/// These are the scripts the golden fixtures were blessed from; changing
/// one invalidates the fixture (the length check fails loudly).
pub fn standard_script(kind: CcaKind) -> AckScript {
    let mss = STANDARD_MSS;
    let rtt = SimDuration::from_millis(20);
    let rate = BitRate::from_mbps(10);
    match kind {
        CcaKind::Reno => AckScript::new(mss)
            // Slow-start doubling from IW10.
            .run(AckRun::new(100, 16, rtt, rate))
            .loss()
            // The 1-MSS-per-RTT AIMD slope.
            .run(AckRun::new(1_600, 32, rtt, rate).with_sampling(5))
            .rto()
            // Slow-start again up to the halved ssthresh.
            .run(AckRun::new(200, 16, rtt, rate).with_sampling(2)),
        CcaKind::Cubic => AckScript::new(mss)
            // Slow start, then one loss opens the cubic epoch.
            .run(AckRun::new(200, 16, rtt, rate))
            .loss()
            // The RFC 8312 recovery curve: concave toward W_max (≈ K s),
            // plateau, then the convex probe beyond it.
            .run(AckRun::new(4_000, 16, rtt, rate).with_sampling(10))
            .rto()
            .run(AckRun::new(200, 16, rtt, rate).with_sampling(2)),
        CcaKind::Bbr => AckScript::new(mss)
            // STARTUP until the bandwidth plateaus, DRAIN to BDP (in-flight
            // reported just under the 25 kB BDP), into PROBE_BW.
            .run(AckRun::new(400, 16, rtt, rate).with_in_flight(24_000))
            // Gain cycling: pacing must visit 1.25×, 0.75× and 1× phases.
            .run(AckRun::new(400, 16, rtt, rate).with_in_flight(50_000))
            // Stale floor: every RTT sample sits 1 ms above the 20 ms
            // minimum, so the near-floor timestamp goes stale. This leg
            // stops just short of the 10 s staleness window (450 rounds
            // at 21 ms = 9.45 s), sampled coarsely.
            .run(
                AckRun::new(900, 2, SimDuration::from_millis(21), rate)
                    .with_in_flight(4 * mss)
                    .with_sampling(25),
            )
            // The window lapses in here: PROBE_RTT entry, the 4-segment
            // cwnd floor through the 200 ms dwell (in-flight already at
            // the floor lets it start immediately), and the exit that
            // restores the pre-probe window — sampled every round so the
            // floor is pinned in the fixture.
            .run(AckRun::new(120, 2, SimDuration::from_millis(21), rate).with_in_flight(4 * mss)),
        CcaKind::Bbr2 => AckScript::new(mss)
            // STARTUP until the bandwidth plateaus, DRAIN to BDP, into the
            // PROBE_BW cruise (in-flight just under the 25 kB BDP).
            .run(AckRun::new(400, 16, rtt, rate).with_in_flight(24_000))
            // Through CRUISE (2 s hold), REFRACTORY (inflight_lo reset)
            // and PROBE_UP (inflight_hi growth while in-flight rides near
            // the ceiling).
            .run(AckRun::new(400, 16, rtt, rate).with_in_flight(30_000))
            // A loss episode: inflight_lo cut to β × in-flight and
            // inflight_hi latched — the new cap shows in the cwnd column.
            .loss()
            .run(AckRun::new(100, 16, rtt, rate).with_in_flight(20_000))
            // An ECN echo takes the same β cut through the ECN path; the
            // immediate second echo lands inside the per-round gate and
            // must leave the window untouched.
            .ecn(24_000)
            .ecn(10_000)
            .run(AckRun::new(100, 16, rtt, rate).with_in_flight(20_000))
            // Stale floor: 21 ms samples let the 20 ms rt_prop floor age
            // out (stops just short of the 10 s window), then the lapse…
            .run(
                AckRun::new(900, 2, SimDuration::from_millis(21), rate)
                    .with_in_flight(4 * mss)
                    .with_sampling(25),
            )
            // …drives PROBE_RTT: a half-BDP dwell (v2, not v1's 4-segment
            // floor) and the exit restore, sampled every round.
            .run(AckRun::new(120, 2, SimDuration::from_millis(21), rate).with_in_flight(4 * mss)),
        CcaKind::Vegas => AckScript::new(mss)
            // Acquire base_rtt = 20 ms and grow through slow start.
            .run(AckRun::new(60, 10, rtt, rate))
            // Queue builds (30 ms): slow-start exit and correction.
            .run(AckRun::new(40, 10, SimDuration::from_millis(30), rate))
            // Heavy queue (50 ms): −1 MSS per round toward the band.
            .run(AckRun::new(150, 10, SimDuration::from_millis(50), rate).with_sampling(2))
            // Queue gone (20 ms = base): +1 MSS per round.
            .run(AckRun::new(100, 10, rtt, rate).with_sampling(2))
            .loss()
            .rto()
            .run(AckRun::new(60, 10, rtt, rate).with_sampling(2))
            // Mild queue (26 ms): diff sits around 2 segments — inside the
            // standard (α=2, β=4) hold band but above a mis-shifted one,
            // so only here does a wrong band change the trajectory.
            .run(AckRun::new(80, 10, SimDuration::from_millis(26), rate).with_sampling(2)),
    }
}

/// Run `kind`'s standard script on a freshly built controller.
pub fn run_standard(kind: CcaKind) -> Vec<TracePoint> {
    let mut cca = kind.build(STANDARD_MSS);
    standard_script(kind).drive(cca.as_mut())
}

/// Check one controller's trace against its fixture file; in bless mode
/// (re)write the fixture instead.
pub fn check_trace_against_fixture(
    kind: CcaKind,
    trace: &[TracePoint],
    fixture: &Path,
    bless: bool,
) -> Result<(), String> {
    if bless {
        if let Some(dir) = fixture.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        std::fs::write(fixture, render(kind.label(), STANDARD_MSS, trace))
            .map_err(|e| format!("writing {}: {e}", fixture.display()))?;
        return Ok(());
    }
    let text = std::fs::read_to_string(fixture).map_err(|e| {
        format!(
            "reading {}: {e} (bless fixtures with {BLESS_ENV}=1)",
            fixture.display()
        )
    })?;
    let expected = parse(&text)?;
    compare(&expected, trace, REL_TOL)
}

/// Run `kind`'s standard script and check (or bless) its fixture in
/// `fixture_dir` (`<dir>/<label>.txt`).
pub fn check_fixture(kind: CcaKind, fixture_dir: &Path, bless: bool) -> Result<(), String> {
    let trace = run_standard(kind);
    let fixture = fixture_dir.join(format!("{}.txt", kind.label()));
    check_trace_against_fixture(kind, &trace, &fixture, bless)
}

/// Whether the bless environment variable is set (to anything non-empty
/// other than `0`).
pub fn bless_requested() -> bool {
    std::env::var(BLESS_ENV).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// All five controllers, in fixture order.
pub const ALL_KINDS: [CcaKind; 5] = [
    CcaKind::Reno,
    CcaKind::Cubic,
    CcaKind::Bbr,
    CcaKind::Bbr2,
    CcaKind::Vegas,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_drive_is_deterministic() {
        let a = run_standard(CcaKind::Cubic);
        let b = run_standard(CcaKind::Cubic);
        assert_eq!(a, b);
    }

    #[test]
    fn render_parse_roundtrip() {
        for kind in ALL_KINDS {
            let trace = run_standard(kind);
            let text = render(kind.label(), STANDARD_MSS, &trace);
            let back = parse(&text).expect("rendered fixture must parse");
            compare(&trace, &back, 0.0).expect("roundtrip must be exact");
        }
    }

    #[test]
    fn compare_flags_cwnd_drift_beyond_tolerance() {
        let trace = run_standard(CcaKind::Reno);
        let mut bumped = trace.clone();
        let last = bumped.last_mut().unwrap();
        last.cwnd += (last.cwnd / 100).max(2); // +1 %, well past 0.1 %
        let err = compare(&trace, &bumped, REL_TOL).unwrap_err();
        assert!(err.contains("cwnd"), "got: {err}");
    }

    #[test]
    fn compare_accepts_sub_tolerance_noise() {
        let trace = run_standard(CcaKind::Bbr);
        let mut nudged = trace.clone();
        for p in &mut nudged {
            if p.cwnd > 10_000 {
                p.cwnd += 1; // last-bit float noise scale
            }
        }
        compare(&trace, &nudged, REL_TOL).expect("1-byte drift is within tolerance");
    }

    #[test]
    fn compare_flags_length_mismatch() {
        let trace = run_standard(CcaKind::Vegas);
        let short = &trace[..trace.len() - 1];
        assert!(compare(&trace, short, REL_TOL).is_err());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("0.1 round 100").is_err());
        assert!(parse("x round 100 max - 1").is_err());
        assert!(parse("0.1 round 100 max - 2").is_err());
    }

    #[test]
    fn bbr_standard_script_reaches_probe_rtt_floor() {
        // The script must actually exercise the PROBE_RTT cwnd floor —
        // otherwise the fixture can't catch a skipped floor.
        let trace = run_standard(CcaKind::Bbr);
        let floor = 4 * STANDARD_MSS;
        assert!(
            trace.iter().any(|p| p.cwnd == floor),
            "no sample at the 4-segment PROBE_RTT floor"
        );
        // And it must exit the probe: the last sample is back above it.
        assert!(trace.last().unwrap().cwnd > floor);
    }

    #[test]
    fn bbr2_standard_script_gates_back_to_back_ecn() {
        let trace = run_standard(CcaKind::Bbr2);
        let ecns: Vec<usize> = trace
            .iter()
            .enumerate()
            .filter_map(|(i, p)| (p.event == "ecn").then_some(i))
            .collect();
        assert_eq!(ecns.len(), 2, "script has two ECN steps");
        // The first echo cuts the window…
        assert!(
            trace[ecns[0]].cwnd < trace[ecns[0] - 1].cwnd,
            "first ECN echo must cut cwnd"
        );
        // …the immediate second echo sits inside the per-round gate.
        assert_eq!(
            trace[ecns[1]].cwnd, trace[ecns[0]].cwnd,
            "gated second echo must be a no-op"
        );
    }

    #[test]
    fn bbr2_standard_script_dwells_at_half_bdp() {
        // PROBE_RTT in v2 parks at bdp/2 (12.5 kB at 10 Mb/s × 20 ms),
        // not v1's 4-segment floor.
        let trace = run_standard(CcaKind::Bbr2);
        let half_bdp = 12_500;
        assert!(
            trace
                .iter()
                .any(|p| p.cwnd.abs_diff(half_bdp) <= STANDARD_MSS),
            "no sample near the half-BDP PROBE_RTT dwell"
        );
        assert!(trace.last().unwrap().cwnd > half_bdp + STANDARD_MSS);
    }

    #[test]
    fn cubic_standard_script_shows_loss_epoch() {
        let trace = run_standard(CcaKind::Cubic);
        let loss = trace
            .iter()
            .position(|p| p.event == "loss")
            .expect("script has a loss step");
        let before = trace[loss - 1].cwnd;
        let at = trace[loss].cwnd;
        // β = 0.7 drop at the event, then recovery back toward W_max.
        assert_eq!(at, (before as f64 * 0.7) as u64);
        assert!(trace.iter().skip(loss).any(|p| p.cwnd >= before * 9 / 10));
    }
}
