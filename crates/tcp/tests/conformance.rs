//! CCA conformance suite: golden step-response fixtures plus
//! bug-injection checks.
//!
//! Each controller is driven through its committed script
//! ([`conformance::standard_script`]) and diffed against the fixture under
//! `tests/fixtures/cca/`. Regenerate with:
//!
//! ```text
//! GSREPRO_BLESS=1 cargo test -p gsrepro-tcp --test conformance
//! ```
//!
//! The `detects_*` tests are the kit's own proof of power: they re-run the
//! scripts with one constant perturbed (wrong Cubic/Reno β, shifted Vegas
//! band, wrong BBR cwnd gain) and assert the fixture check *fails*. A
//! fixture that can't catch a one-line bug is decoration, not a test.

use std::path::PathBuf;

use gsrepro_tcp::cca::CcaKind;
use gsrepro_tcp::conformance::{
    self, bless_requested, check_fixture, check_trace_against_fixture, standard_script, ALL_KINDS,
    STANDARD_MSS,
};
use gsrepro_tcp::{Bbr, Bbr2, Cubic, Reno, Vegas};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/cca")
}

#[test]
fn golden_fixtures_match_all_controllers() {
    let bless = bless_requested();
    for kind in ALL_KINDS {
        check_fixture(kind, &fixture_dir(), bless)
            .unwrap_or_else(|e| panic!("{kind} conformance: {e}"));
    }
    assert!(!bless, "fixtures blessed — rerun without GSREPRO_BLESS");
}

/// Drive a perturbed controller through `kind`'s standard script and
/// assert the fixture diff catches it.
fn assert_detected(kind: CcaKind, cca: &mut dyn gsrepro_tcp::CongestionControl, what: &str) {
    let trace = standard_script(kind).drive(cca);
    let fixture = fixture_dir().join(format!("{}.txt", kind.label()));
    let verdict = check_trace_against_fixture(kind, &trace, &fixture, false);
    assert!(
        verdict.is_err(),
        "{what} slipped past the {kind} fixture undetected"
    );
}

#[test]
fn detects_wrong_cubic_beta() {
    let mut c = Cubic::with_beta(STANDARD_MSS, 0.5);
    assert_detected(CcaKind::Cubic, &mut c, "Cubic β = 0.5 (should be 0.7)");
}

#[test]
fn detects_wrong_reno_beta() {
    let mut r = Reno::with_beta(STANDARD_MSS, 0.8);
    assert_detected(CcaKind::Reno, &mut r, "Reno β = 0.8 (should be 0.5)");
}

#[test]
fn detects_shifted_vegas_band() {
    let mut v = Vegas::with_band(STANDARD_MSS, 0.5, 1.5);
    assert_detected(
        CcaKind::Vegas,
        &mut v,
        "Vegas band (0.5, 1.5) (should be (2, 4))",
    );
}

#[test]
fn detects_wrong_bbr_cwnd_gain() {
    let mut b = Bbr::with_cwnd_gain(STANDARD_MSS, 4.0);
    assert_detected(CcaKind::Bbr, &mut b, "BBR cwnd gain 4 (should be 2)");
}

#[test]
fn detects_wrong_bbr2_beta() {
    let mut b = Bbr2::with_beta(STANDARD_MSS, 0.9);
    assert_detected(CcaKind::Bbr2, &mut b, "BBRv2 β = 0.9 (should be 0.7)");
}

#[test]
fn fixtures_are_freshly_rendered() {
    // The committed text must be byte-for-byte what `render` produces for
    // the parsed trace — guards against hand-edited fixtures drifting from
    // the format (tolerances live in `compare`, not in the file).
    for kind in ALL_KINDS {
        let path = fixture_dir().join(format!("{}.txt", kind.label()));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let trace = conformance::parse(&text).expect("fixture must parse");
        let rerendered = conformance::render(kind.label(), STANDARD_MSS, &trace);
        assert_eq!(
            text, rerendered,
            "{kind} fixture is not canonically formatted"
        );
    }
}
