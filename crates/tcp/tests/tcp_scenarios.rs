//! Scenario and property tests for the TCP stack: reliability under
//! arbitrary loss, congestion-control comparisons, and endpoint behaviour
//! the unit tests don't cover.

use gsrepro_netsim::link::LinkSpec;
use gsrepro_netsim::net::{AgentId, NetworkBuilder, Sim};
use gsrepro_netsim::queue::QueueSpec;
use gsrepro_netsim::wire::FlowId;
use gsrepro_netsim::Shaper;
use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimTime};
use gsrepro_tcp::{Bbr, CcaKind, TcpReceiver, TcpSender, TcpSenderConfig};
use proptest::prelude::*;

struct Built {
    sim: Sim,
    data: FlowId,
    sender: AgentId,
    recv: AgentId,
}

fn build(
    cca: CcaKind,
    rate_mbps: u64,
    queue_bytes: u64,
    owd_ms: u64,
    loss: f64,
    seed: u64,
) -> Built {
    let mut b = NetworkBuilder::new(seed);
    let s = b.add_node("server");
    let c = b.add_node("client");
    b.link(
        s,
        c,
        LinkSpec {
            shaper: Shaper::rate(BitRate::from_mbps(rate_mbps)),
            delay: SimDuration::from_millis(owd_ms),
            queue: QueueSpec::DropTail {
                limit: Bytes(queue_bytes),
            },
            jitter: SimDuration::ZERO,
            loss_prob: loss,
            dup_prob: 0.0,
        },
    );
    b.link(c, s, LinkSpec::lan(SimDuration::from_millis(owd_ms)));
    let data = b.flow("data");
    let acks = b.flow("acks");
    let cfg = TcpSenderConfig::new(data, c, AgentId(1), cca);
    let sender = b.add_agent(s, Box::new(TcpSender::new(cfg)));
    let recv = b.add_agent(c, Box::new(TcpReceiver::new(acks, s, sender)));
    Built {
        sim: b.build(),
        data,
        sender,
        recv,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Reliability: whatever the loss rate and queue size, the receiver's
    /// in-order byte count equals the sender's delivered counter within
    /// one window, and both make progress.
    #[test]
    fn reliable_delivery_under_random_loss(
        loss in 0.0f64..0.12,
        queue in 8_000u64..120_000,
        rate in 5u64..30,
        seed in 0u64..500,
    ) {
        let mut tb = build(CcaKind::Cubic, rate, queue, 8, loss, seed);
        tb.sim.run_until(SimTime::from_secs(20));
        let s: &TcpSender = tb.sim.net.agent(tb.sender);
        let r: &TcpReceiver = tb.sim.net.agent(tb.recv);
        prop_assert!(r.bytes_received() > 100_000, "no progress: {}", r.bytes_received());
        let gap = s.delivered_bytes() as i64 - r.bytes_received() as i64;
        prop_assert!(
            gap.abs() < 2_000_000,
            "sender delivered {} vs receiver {}", s.delivered_bytes(), r.bytes_received()
        );
        // Receiver never sees a byte twice in-order: rcv_nxt equals the
        // in-order count exactly (stream starts at 0).
        prop_assert_eq!(r.rcv_nxt(), r.bytes_received());
    }

    /// Goodput never exceeds the link under any CCA.
    #[test]
    fn goodput_bounded(
        cca_idx in 0usize..4,
        rate in 5u64..40,
        seed in 0u64..100,
    ) {
        let cca = [CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr, CcaKind::Vegas][cca_idx];
        let mut tb = build(cca, rate, 60_000, 8, 0.0, seed);
        tb.sim.run_until(SimTime::from_secs(15));
        let gp = tb.sim.goodput_mbps(tb.data, SimTime::from_secs(2), SimTime::from_secs(15));
        prop_assert!(gp <= rate as f64 * 1.03 + 0.3, "{cca:?} goodput {gp} > {rate}");
    }
}

#[test]
fn vegas_and_bbr_keep_queues_shorter_than_cubic() {
    // At a bloated queue, the delay-aware controllers must hold OWD far
    // below Cubic's.
    let owd = |cca| {
        let mut tb = build(cca, 20, 300_000, 8, 0.0, 42);
        tb.sim.run_until(SimTime::from_secs(30));
        tb.sim.net.monitor().stats(tb.data).owd.mean()
    };
    let cubic = owd(CcaKind::Cubic);
    let vegas = owd(CcaKind::Vegas);
    let bbr = owd(CcaKind::Bbr);
    assert!(cubic > 60.0, "cubic should bloat: {cubic}");
    assert!(vegas < cubic / 3.0, "vegas {vegas} vs cubic {cubic}");
    assert!(bbr < cubic * 0.8, "bbr {bbr} vs cubic {cubic}");
}

#[test]
fn all_ccas_survive_a_capacity_drop() {
    // Run 10 s at 20 Mb/s... then the "path" changes by re-running at
    // 4 Mb/s with the same CCA: every controller must still converge (no
    // deadlock, no collapse) — exercised as separate runs because links
    // are static in this simulator.
    for cca in [CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr, CcaKind::Vegas] {
        for rate in [20, 4] {
            let mut tb = build(cca, rate, 40_000, 10, 0.0, 7);
            tb.sim.run_until(SimTime::from_secs(15));
            let gp = tb
                .sim
                .goodput_mbps(tb.data, SimTime::from_secs(5), SimTime::from_secs(15));
            assert!(
                gp > rate as f64 * 0.6,
                "{cca:?} at {rate} Mb/s achieved only {gp}"
            );
        }
    }
}

#[test]
fn bbr_cwnd_gain_knob_scales_queueing() {
    // D3 ablation support: a larger PROBE_BW cwnd gain holds more in
    // flight and thus more standing queue (higher OWD) on a solo path.
    let owd_for = |gain: f64| {
        let mut b = NetworkBuilder::new(9);
        let s = b.add_node("s");
        let c = b.add_node("c");
        b.link(
            s,
            c,
            LinkSpec::bottleneck(
                BitRate::from_mbps(20),
                Bytes(400_000),
                SimDuration::from_millis(10),
            ),
        );
        b.link(c, s, LinkSpec::lan(SimDuration::from_millis(10)));
        let data = b.flow("d");
        let acks = b.flow("a");
        let cfg = TcpSenderConfig::new(data, c, AgentId(1), CcaKind::Bbr);
        let mss = cfg.mss.as_u64();
        let sender = b.add_agent(
            s,
            Box::new(TcpSender::with_controller(
                cfg,
                Box::new(Bbr::with_cwnd_gain(mss, gain)),
            )),
        );
        b.add_agent(c, Box::new(TcpReceiver::new(acks, s, sender)));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(20));
        sim.net.monitor().stats(data).owd.mean()
    };
    let low = owd_for(1.25);
    let high = owd_for(4.0);
    // Solo, steady-state pacing (1× btl_bw) bounds in-flight, so the cwnd
    // cap only binds during probe transients — the effect is directional
    // but small here. (In competition the cap binds hard; the D3 ablation
    // binary measures that case.)
    assert!(
        high > low + 1.0,
        "gain 4 should queue measurably more than 1.25: {high} vs {low}"
    );
}

#[test]
fn sack_recovery_beats_rto_only_behaviour() {
    // With 3% loss, SACK-based fast recovery must keep retransmissions a
    // small multiple of the actual losses (no spurious storms) and RTO
    // events rare relative to fast retransmits.
    let mut tb = build(CcaKind::Cubic, 15, 50_000, 10, 0.03, 21);
    tb.sim.run_until(SimTime::from_secs(30));
    let s: &TcpSender = tb.sim.net.agent(tb.sender);
    let st = tb.sim.net.monitor().stats(tb.data);
    let losses = st.dropped_pkts();
    assert!(losses > 50, "loss injection inactive? {losses}");
    assert!(
        s.retransmissions() < losses * 2,
        "retransmissions {} should be within 2x of losses {}",
        s.retransmissions(),
        losses
    );
    assert!(
        s.fast_retransmit_events() > s.rto_events(),
        "fast recovery ({}) should dominate RTOs ({})",
        s.fast_retransmit_events(),
        s.rto_events()
    );
}

#[test]
fn delayed_acks_halve_ack_traffic_without_hurting_goodput() {
    let run = |delack: bool| {
        let mut b = NetworkBuilder::new(55);
        let s = b.add_node("server");
        let c = b.add_node("client");
        b.link(
            s,
            c,
            LinkSpec::bottleneck(
                BitRate::from_mbps(20),
                Bytes(80_000),
                SimDuration::from_millis(8),
            ),
        );
        b.link(c, s, LinkSpec::lan(SimDuration::from_millis(8)));
        let data = b.flow("d");
        let acks = b.flow("a");
        let cfg = TcpSenderConfig::new(data, c, AgentId(1), CcaKind::Cubic);
        let sender = b.add_agent(s, Box::new(TcpSender::new(cfg)));
        let recv = TcpReceiver::new(acks, s, sender);
        let recv = if delack {
            recv.with_delayed_acks()
        } else {
            recv
        };
        b.add_agent(c, Box::new(recv));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(20));
        let gp = sim.goodput_mbps(data, SimTime::from_secs(5), SimTime::from_secs(20));
        let ack_pkts = sim.net.monitor().stats(acks).sent_pkts;
        let data_pkts = sim.net.monitor().stats(data).sent_pkts;
        (gp, ack_pkts as f64 / data_pkts as f64)
    };
    let (gp_imm, ratio_imm) = run(false);
    let (gp_del, ratio_del) = run(true);
    assert!(
        ratio_imm > 0.95,
        "immediate acks: ~1 ack/segment, got {ratio_imm}"
    );
    assert!(
        ratio_del < 0.65,
        "delayed acks should roughly halve ack count, got {ratio_del}"
    );
    assert!(
        gp_del > gp_imm * 0.9,
        "delayed acks must not tank goodput: {gp_del} vs {gp_imm}"
    );
}

#[test]
fn two_bbr_flows_converge_to_fair_share() {
    let mut b = NetworkBuilder::new(77);
    let s = b.add_node("server");
    let c = b.add_node("client");
    b.link(
        s,
        c,
        LinkSpec::bottleneck(
            BitRate::from_mbps(24),
            Bytes(100_000),
            SimDuration::from_millis(8),
        ),
    );
    b.link(c, s, LinkSpec::lan(SimDuration::from_millis(8)));
    let mut flows = vec![];
    for i in 0..2u32 {
        let data = b.flow(format!("d{i}"));
        let acks = b.flow(format!("a{i}"));
        let recv_id = AgentId(i * 2 + 1);
        let cfg = TcpSenderConfig::new(data, c, recv_id, CcaKind::Bbr);
        let sender = b.add_agent(s, Box::new(TcpSender::new(cfg)));
        b.add_agent(c, Box::new(TcpReceiver::new(acks, s, sender)));
        flows.push(data);
    }
    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(60));
    let g1 = sim.goodput_mbps(flows[0], SimTime::from_secs(20), SimTime::from_secs(60));
    let g2 = sim.goodput_mbps(flows[1], SimTime::from_secs(20), SimTime::from_secs(60));
    let jfi = (g1 + g2).powi(2) / (2.0 * (g1 * g1 + g2 * g2));
    assert!(jfi > 0.9, "BBR intra-fairness JFI {jfi} ({g1} vs {g2})");
    assert!(g1 + g2 > 20.0, "utilization {g1}+{g2}");
}
