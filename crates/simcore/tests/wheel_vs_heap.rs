//! Differential test: the hierarchical timing-wheel scheduler against a
//! naive `BinaryHeap` reference model.
//!
//! The wheel trades a single ordered heap for per-level slot chains, a
//! sorted `cur` bucket, a same-instant fast lane, and an overflow heap —
//! four containers whose hand-offs (cascades, overflow folds, lane/bucket
//! ordering at equal times) are exactly where ordering bugs hide. The
//! reference model has none of those moving parts: one heap ordered by
//! `(time, seq)`, lazy cancellation. Any workload must produce the same
//! pop sequence and the same cancel results on both.
//!
//! Workloads are random op streams mixing:
//! * plain and cancellable schedules at delays spanning every wheel level
//!   plus the overflow horizon (beyond 2^52 ns),
//! * same-instant bursts (`schedule_now` and zero delays),
//! * past timestamps (which clamp to `now`),
//! * cancels of live, already-fired, and already-cancelled handles,
//! * interleaved pops that advance `now` mid-stream.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use gsrepro_simcore::{Engine, Scheduler, SimDuration, SimTime, TimerHandle, World};
use proptest::prelude::*;

/// World that records each delivery as `(time ns, tag)`.
struct Log {
    fired: Vec<(u64, u32)>,
}

impl World for Log {
    type Event = u32;
    fn handle(&mut self, event: u32, sched: &mut Scheduler<u32>) {
        self.fired.push((sched.now().as_nanos(), event));
    }
}

/// The pre-wheel scheduler, reduced to its essence: one `BinaryHeap`
/// ordered by `(time, seq)`, cancellation by forgetting the seq.
struct RefModel {
    now: u64,
    seq: u64,
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// Live events by seq; absence means fired or cancelled.
    pending: HashMap<u64, u32>,
    fired: Vec<(u64, u32)>,
}

impl RefModel {
    fn new() -> Self {
        RefModel {
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            pending: HashMap::new(),
            fired: Vec::new(),
        }
    }

    /// Mirrors `schedule_at`'s past clamp; returns the seq as a handle.
    fn schedule(&mut self, at: u64, tag: u32) -> u64 {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.pending.insert(seq, tag);
        seq
    }

    fn cancel(&mut self, seq: u64) -> Option<u32> {
        self.pending.remove(&seq)
    }

    fn pop(&mut self) -> bool {
        while let Some(Reverse((t, seq))) = self.heap.pop() {
            if let Some(tag) = self.pending.remove(&seq) {
                self.now = t;
                self.fired.push((t, tag));
                return true;
            }
        }
        false
    }
}

/// One step of the random workload.
#[derive(Clone, Debug)]
enum Op {
    /// Schedule at `now + dt` (plain).
    At { dt: u64 },
    /// Schedule at `now + dt`, keep the handle for later cancels.
    Cancellable { dt: u64 },
    /// Schedule at `now - dt` (clamps to `now`).
    Past { dt: u64 },
    /// Same-instant fast lane.
    Now,
    /// Cancel the `idx % handles.len()`-th handle ever issued (may target
    /// a fired or already-cancelled timer — both must agree it's dead).
    Cancel { idx: usize },
    /// Fire the next pending event, advancing `now`.
    Pop,
}

/// Spread a raw draw over delays that exercise every wheel level, the
/// same-instant lane, and the overflow heap (the wheel horizon is 2^52 ns).
fn decode_delay(raw: u64) -> u64 {
    let v = raw >> 3;
    match raw % 6 {
        0 => 0,                                  // same tick / lane
        1 => 1 + v % 999,                        // level-0 ticks
        2 => 1_000 + v % 999_000,                // µs — low levels
        3 => 1_000_000 + v % 999_000_000,        // ms — mid levels
        4 => 1_000_000_000 + v % 59_000_000_000, // seconds — high levels
        _ => (1u64 << 51) + v % (1u64 << 52),    // straddles the horizon
    }
}

/// Decode one `(selector, raw, idx)` tuple into an op. The selector mix is
/// weighted so streams stay busy: schedules outnumber pops slightly, so a
/// backlog builds and the final drain crosses container boundaries.
fn decode_op(sel: u8, raw: u64, idx: u8) -> Op {
    match sel {
        0..=4 => Op::At {
            dt: decode_delay(raw),
        },
        5..=8 => Op::Cancellable {
            dt: decode_delay(raw),
        },
        9 => Op::Past {
            dt: decode_delay(raw),
        },
        10..=11 => Op::Now,
        12..=13 => Op::Cancel { idx: idx as usize },
        _ => Op::Pop,
    }
}

/// Run one op stream through both schedulers and compare everything
/// observable: cancel results step by step, pop liveness, then the full
/// drain order.
fn run_differential(ops: &[Op]) {
    let mut eng: Engine<Log> = Engine::new();
    let mut log = Log { fired: Vec::new() };
    let mut model = RefModel::new();
    let mut handles: Vec<TimerHandle> = Vec::new();
    let mut model_handles: Vec<u64> = Vec::new();
    let mut tag: u32 = 0;

    for op in ops {
        match *op {
            Op::At { dt } => {
                let at = eng.scheduler().now() + SimDuration::from_nanos(dt);
                eng.scheduler().schedule_at(at, tag);
                model.schedule(model.now.saturating_add(dt), tag);
                tag += 1;
            }
            Op::Cancellable { dt } => {
                let at = eng.scheduler().now() + SimDuration::from_nanos(dt);
                let h = eng.scheduler().schedule_cancellable_at(at, tag);
                handles.push(h);
                let m = model.schedule(model.now.saturating_add(dt), tag);
                model_handles.push(m);
                tag += 1;
            }
            Op::Past { dt } => {
                let now = eng.scheduler().now().as_nanos();
                let at = SimTime::from_nanos(now.saturating_sub(dt));
                eng.scheduler().schedule_at(at, tag);
                model.schedule(model.now.saturating_sub(dt), tag);
                tag += 1;
            }
            Op::Now => {
                eng.scheduler().schedule_now(tag);
                model.schedule(model.now, tag);
                tag += 1;
            }
            Op::Cancel { idx } => {
                if handles.is_empty() {
                    continue;
                }
                let i = idx % handles.len();
                let got = eng.scheduler().cancel(handles[i]);
                let want = model.cancel(model_handles[i]);
                assert_eq!(got, want, "cancel of handle {i} diverged");
            }
            Op::Pop => {
                let fired = eng.step(&mut log);
                let want = model.pop();
                assert_eq!(fired, want, "pop liveness diverged");
            }
        }
    }

    // Drain both completely; the full (time, tag) sequence must match.
    eng.run_to_completion(&mut log);
    while model.pop() {}
    assert_eq!(log.fired, model.fired, "drain order diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn wheel_matches_heap_reference(
        raw_ops in prop::collection::vec((0u8..16, any::<u64>(), 0u8..64), 1..400),
    ) {
        let ops: Vec<Op> = raw_ops
            .iter()
            .map(|&(sel, raw, idx)| decode_op(sel, raw, idx))
            .collect();
        run_differential(&ops);
    }
}

/// Regression shape for the lane/bucket ordering hazard: a wheel entry
/// whose time becomes `now` (via a pop at the same instant) must fire
/// before a lane entry scheduled later, even though the lane is cheaper
/// to consult. Kept as a fixed case so the hazard is exercised on every
/// run, not only when the fuzzer stumbles into it.
#[test]
fn wheel_entry_at_now_beats_younger_lane_entry() {
    let ops = vec![
        Op::At { dt: 70_000 }, // two entries, same future tick
        Op::At { dt: 70_000 },
        Op::Pop, // now jumps to their time; one still pending
        Op::Now, // lane entry, younger seq
        Op::Pop, // must be the pending wheel entry, not the lane
        Op::Pop,
    ];
    run_differential(&ops);
}
