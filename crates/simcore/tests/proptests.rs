//! Property-based tests for the DES engine's core invariants.

use gsrepro_simcore::stats::{mean_ci95, Histogram, Samples, TimeBinned, Welford};
use gsrepro_simcore::{BitRate, Bytes, Engine, Scheduler, SimDuration, SimTime, World};
use proptest::prelude::*;

/// A world that records event delivery order.
struct Recorder {
    log: Vec<(u64, u32)>, // (time ns, tag)
}

impl World for Recorder {
    type Event = u32;
    fn handle(&mut self, event: u32, sched: &mut Scheduler<u32>) {
        self.log.push((sched.now().as_nanos(), event));
    }
}

proptest! {
    /// Events always fire in nondecreasing time order, and same-time
    /// events in scheduling order.
    #[test]
    fn engine_delivers_in_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            eng.scheduler().schedule_at(SimTime::from_nanos(t), i as u32);
        }
        eng.run_to_completion(&mut w);
        prop_assert_eq!(w.log.len(), times.len());
        for pair in w.log.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time went backwards");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO violated for same-time events");
            }
        }
    }

    /// run_until partitions time: no event at/after the boundary fires.
    #[test]
    fn run_until_half_open(times in prop::collection::vec(0u64..1000, 1..100), cut in 0u64..1000) {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            eng.scheduler().schedule_at(SimTime::from_nanos(t), i as u32);
        }
        eng.run_until(&mut w, SimTime::from_nanos(cut));
        let fired = w.log.len();
        let expected = times.iter().filter(|&&t| t < cut).count();
        prop_assert_eq!(fired, expected);
    }

    /// tx_time × rate round-trips to the byte count within rounding.
    #[test]
    fn tx_time_consistency(rate_kbps in 1u64..1_000_000, bytes in 1u64..100_000) {
        let r = BitRate::from_kbps(rate_kbps);
        let t = r.tx_time(Bytes(bytes));
        let back = r.bytes_in(t);
        // Rounding loses at most one byte plus 1ns worth of rate.
        let slack = 2 + rate_kbps / 8_000_000 + 1;
        prop_assert!(
            back.as_u64() <= bytes && bytes - back.as_u64() <= slack,
            "bytes {} -> {} (slack {})", bytes, back.as_u64(), slack
        );
    }

    /// BDP is monotonic in both rate and RTT.
    #[test]
    fn bdp_monotonic(r1 in 1u64..1_000, r2 in 1u64..1_000, ms in 1u64..1_000) {
        let (lo, hi) = (r1.min(r2), r1.max(r2));
        let d = SimDuration::from_millis(ms);
        prop_assert!(
            BitRate::from_mbps(lo).bdp(d) <= BitRate::from_mbps(hi).bdp(d)
        );
        prop_assert!(
            BitRate::from_mbps(lo).bdp(d) <= BitRate::from_mbps(lo).bdp(d * 2)
        );
    }

    /// Welford mean/σ agree with naive two-pass computation.
    #[test]
    fn welford_matches_naive(data in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut w = Welford::new();
        for &x in &data {
            w.add(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() < 1e-5 * (1.0 + var));
    }

    /// Histogram conserves the sample count and quantiles are ordered.
    #[test]
    fn histogram_invariants(data in prop::collection::vec(0f64..100.0, 1..300)) {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for &x in &data {
            h.add(x);
        }
        prop_assert_eq!(h.count(), data.len() as u64);
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), data.len() as u64);
        prop_assert!(h.quantile(0.25) <= h.quantile(0.75) + 1e-9);
    }

    /// TimeBinned conserves mass: sum of bins = sum of inputs.
    #[test]
    fn binning_conserves_mass(
        points in prop::collection::vec((0u64..100_000u64, 0f64..1e6), 1..200)
    ) {
        let mut tb = TimeBinned::new(SimDuration::from_millis(500));
        let mut total = 0.0;
        for &(at_us, v) in &points {
            tb.add(SimTime::from_nanos(at_us * 1_000), v);
            total += v;
        }
        let binned: f64 = tb.bins().iter().sum();
        prop_assert!((binned - total).abs() < 1e-6 * (1.0 + total));
    }

    /// CI half-width shrinks (weakly) with more of the same data.
    #[test]
    fn ci_shrinks_with_n(base in prop::collection::vec(0f64..100.0, 4..20)) {
        let (_, hw1) = mean_ci95(&base);
        let mut doubled = base.clone();
        doubled.extend_from_slice(&base);
        let (_, hw2) = mean_ci95(&doubled);
        prop_assert!(hw2 <= hw1 + 1e-9, "CI grew: {} -> {}", hw1, hw2);
    }

    /// Quantile is within the sample range and monotone in q.
    #[test]
    fn samples_quantile_bounds(data in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let mut s = Samples::new();
        for &x in &data {
            s.add(x);
        }
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let v = s.quantile(q);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
        prop_assert!(s.quantile(0.2) <= s.quantile(0.8) + 1e-9);
    }
}
